/**
 * @file
 * Regression tests pinning every number the paper's evaluation quotes
 * (sections V.D and VI.G). These are the reproduction's headline
 * results; EXPERIMENTS.md records the same values.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "fmea/openContrail.hh"
#include "model/hwCentric.hh"
#include "model/swCentric.hh"

namespace
{

using namespace sdnav::model;
using sdnav::availabilityToDowntimeMinutesPerYear;
using sdnav::fmea::Plane;
namespace fmea = sdnav::fmea;
namespace topology = sdnav::topology;

double
minutesPerYearDowntime(double availability)
{
    return availabilityToDowntimeMinutesPerYear(availability);
}

// ----- Section V.D: HW-centric spot values -----------------------------

TEST(PaperHw, SmallAndMediumAvailabilityAtDefaults)
{
    // "with role availability A_C = 0.9995, Controller availability
    // is 0.999989 for the Small and Medium topologies".
    HwParams params;
    EXPECT_NEAR(hwSmallAvailability(params), 0.999989, 5e-7);
    EXPECT_NEAR(hwMediumAvailability(params), 0.999989, 5e-7);
}

TEST(PaperHw, LargeAvailabilityAtDefaults)
{
    // "...and 0.9999990 for the Large topology" (quoted loosely in
    // the paper as 0.999999/0.9999999; the consistent value, matching
    // the quoted 5 minutes/year savings, is ~0.9999987).
    HwParams params;
    EXPECT_NEAR(hwLargeAvailability(params), 0.9999987, 2e-7);
}

TEST(PaperHw, ThirdRackSavesAboutFiveMinutesPerYear)
{
    // "Controller availability increases from 0.999989 to 0.9999999
    // (a savings of 5 minutes/year in downtime)".
    HwParams params;
    double saved =
        minutesPerYearDowntime(hwMediumAvailability(params)) -
        minutesPerYearDowntime(hwLargeAvailability(params));
    EXPECT_NEAR(saved, 5.0, 0.5);
}

TEST(PaperHw, SmallRangeAcrossFigure3Sweep)
{
    // "As the role availability A_C ranges between 0.999 and 1.0, the
    // Small and Medium availabilities range between 0.999986 and
    // 0.999990".
    HwParams lo_params, hi_params;
    lo_params.roleAvailability = 0.999;
    hi_params.roleAvailability = 1.0;
    EXPECT_NEAR(hwSmallAvailability(lo_params), 0.999986, 1e-6);
    EXPECT_NEAR(hwSmallAvailability(hi_params), 0.999990, 1e-6);
}

TEST(PaperHw, LargeRangeAcrossFigure3Sweep)
{
    // "...while Large availability ranges between 0.999996 and
    // 0.9999999".
    HwParams lo_params, hi_params;
    lo_params.roleAvailability = 0.999;
    hi_params.roleAvailability = 1.0;
    EXPECT_NEAR(hwLargeAvailability(lo_params), 0.999996, 1e-6);
    EXPECT_GT(hwLargeAvailability(hi_params), 0.9999989);
}

TEST(PaperHw, TwoRacksAreWorseThanOne)
{
    // "contrary to expectation, adding a second rack slightly reduces
    // availability" — exact comparison, not the eq. (6) truncation.
    HwParams params;
    double small =
        hwExactAvailability(topology::smallTopology(), params);
    double medium =
        hwExactAvailability(topology::mediumTopology(), params);
    EXPECT_LT(medium, small);
    double large =
        hwExactAvailability(topology::largeTopology(), params);
    EXPECT_GT(large, small);
}

// ----- Section VI.G: SW-centric spot values ----------------------------

struct SwSpot
{
    const char *name;
    topology::ReferenceKind kind;
    SupervisorPolicy policy;
    double cpMinutes; // Paper's CP downtime, minutes/year.
    double dpMinutes; // Paper's DP downtime, minutes/year.
};

class PaperSwSpots : public testing::TestWithParam<SwSpot>
{};

TEST_P(PaperSwSpots, ControlPlaneDowntimeMatches)
{
    const SwSpot &spot = GetParam();
    auto catalog = fmea::openContrail3();
    auto topo = topology::referenceTopology(spot.kind);
    SwAvailabilityModel model(catalog, topo, spot.policy);
    double cp = model.controlPlaneAvailability(SwParams{});
    EXPECT_NEAR(minutesPerYearDowntime(cp), spot.cpMinutes, 0.1)
        << spot.name;
}

TEST_P(PaperSwSpots, DataPlaneDowntimeMatches)
{
    const SwSpot &spot = GetParam();
    auto catalog = fmea::openContrail3();
    auto topo = topology::referenceTopology(spot.kind);
    SwAvailabilityModel model(catalog, topo, spot.policy);
    double dp = model.hostDataPlaneAvailability(SwParams{});
    EXPECT_NEAR(minutesPerYearDowntime(dp), spot.dpMinutes, 0.5)
        << spot.name;
}

INSTANTIATE_TEST_SUITE_P(
    Options, PaperSwSpots,
    testing::Values(
        // Paper: CP DT 5.9 (1S), 6.6 (2S), 0.7 (1L), 1.4 (2L) m/y;
        // DP DT 26 (1S), 131 (2S), 21 (1L), 126 (2L) m/y.
        SwSpot{"1S", topology::ReferenceKind::Small,
               SupervisorPolicy::NotRequired, 5.9, 26.3},
        SwSpot{"2S", topology::ReferenceKind::Small,
               SupervisorPolicy::Required, 6.6, 131.4},
        SwSpot{"1L", topology::ReferenceKind::Large,
               SupervisorPolicy::NotRequired, 0.7, 21.0},
        SwSpot{"2L", topology::ReferenceKind::Large,
               SupervisorPolicy::Required, 1.4, 126.1}),
    [](const testing::TestParamInfo<SwSpot> &param_info) {
        return std::string(param_info.param.name);
    });

TEST(PaperSw, CpExceedsQuotedFloorsAtDefaults)
{
    // "A_CP exceeds 0.999987 for the Small topology and 0.999997 for
    // the Large topology".
    auto catalog = fmea::openContrail3();
    SwParams params;
    double small_cp =
        SwAvailabilityModel(catalog, topology::smallTopology(),
                            SupervisorPolicy::Required)
            .controlPlaneAvailability(params);
    EXPECT_GT(small_cp, 0.999987);
    double large_cp =
        SwAvailabilityModel(catalog, topology::largeTopology(),
                            SupervisorPolicy::Required)
            .controlPlaneAvailability(params);
    EXPECT_GT(large_cp, 0.999997);
}

TEST(PaperSw, DpFloorsAtDefaults)
{
    // "A_DP = 0.99975+ for both topologies when the vRouter
    // supervisor is required, and 0.99995+ when not".
    auto catalog = fmea::openContrail3();
    SwParams params;
    for (auto kind : {topology::ReferenceKind::Small,
                      topology::ReferenceKind::Large}) {
        auto topo = topology::referenceTopology(kind);
        double with_sup =
            SwAvailabilityModel(catalog, topo,
                                SupervisorPolicy::Required)
                .hostDataPlaneAvailability(params);
        double without_sup =
            SwAvailabilityModel(catalog, topo,
                                SupervisorPolicy::NotRequired)
                .hostDataPlaneAvailability(params);
        EXPECT_GT(with_sup, 0.99975);
        EXPECT_LT(with_sup, 0.9998);
        EXPECT_GT(without_sup, 0.99995);
    }
}

TEST(PaperSw, SupervisorMultipliesDpDowntimeFiveToSixFold)
{
    // "Requiring the supervisor increases downtime by 5x from 26 to
    // 131 m/y in the Small topology and by 6x from 21 to 126 m/y in
    // the Large topology."
    auto catalog = fmea::openContrail3();
    SwParams params;
    auto small = topology::smallTopology();
    double s1 = SwAvailabilityModel(catalog, small,
                                    SupervisorPolicy::NotRequired)
                    .hostDataPlaneAvailability(params);
    double s2 = SwAvailabilityModel(catalog, small,
                                    SupervisorPolicy::Required)
                    .hostDataPlaneAvailability(params);
    double ratio_small = minutesPerYearDowntime(s2) /
                         minutesPerYearDowntime(s1);
    EXPECT_NEAR(ratio_small, 5.0, 0.3);

    auto large = topology::largeTopology();
    double l1 = SwAvailabilityModel(catalog, large,
                                    SupervisorPolicy::NotRequired)
                    .hostDataPlaneAvailability(params);
    double l2 = SwAvailabilityModel(catalog, large,
                                    SupervisorPolicy::Required)
                    .hostDataPlaneAvailability(params);
    double ratio_large = minutesPerYearDowntime(l2) /
                         minutesPerYearDowntime(l1);
    EXPECT_NEAR(ratio_large, 6.0, 0.3);
}

TEST(PaperSw, LowReliabilityExtremeConvergence)
{
    // At x = -1 (A = 0.9998, A_S = 0.998): "Small and Large
    // availabilities converge to 0.9976 (supervisor required) or to
    // 0.9996 (supervisor not required)" for the DP.
    auto catalog = fmea::openContrail3();
    SwParams params = SwParams{}.withDowntimeShift(-1.0);
    for (auto kind : {topology::ReferenceKind::Small,
                      topology::ReferenceKind::Large}) {
        auto topo = topology::referenceTopology(kind);
        double dp2 = SwAvailabilityModel(catalog, topo,
                                         SupervisorPolicy::Required)
                         .hostDataPlaneAvailability(params);
        EXPECT_NEAR(dp2, 0.9976, 2e-4);
        double dp1 = SwAvailabilityModel(catalog, topo,
                                         SupervisorPolicy::NotRequired)
                         .hostDataPlaneAvailability(params);
        EXPECT_NEAR(dp1, 0.9996, 2e-4);
    }
}

TEST(PaperSw, HighReliabilityExtremeConvergence)
{
    // At x = +1 (A = 0.999998, A_S = 0.99998): DP converges to
    // 0.999976 (required) or 0.999996 (not required); CP converges to
    // ~0.99999 for Small (the rack) and ~0.9999998+ for Large.
    // The quoted DP values are the Large-topology limits; the Small
    // topology sits exactly one rack-unavailability (1e-5) below them
    // (the "5 m/y due to rack separation" the paper notes).
    auto catalog = fmea::openContrail3();
    SwParams params = SwParams{}.withDowntimeShift(1.0);
    auto large = topology::largeTopology();
    double dp2 = SwAvailabilityModel(catalog, large,
                                     SupervisorPolicy::Required)
                     .hostDataPlaneAvailability(params);
    EXPECT_NEAR(dp2, 0.999976, 3e-6);
    double dp1 = SwAvailabilityModel(catalog, large,
                                     SupervisorPolicy::NotRequired)
                     .hostDataPlaneAvailability(params);
    EXPECT_NEAR(dp1, 0.999996, 3e-6);
    auto small = topology::smallTopology();
    double dp2_small =
        SwAvailabilityModel(catalog, small, SupervisorPolicy::Required)
            .hostDataPlaneAvailability(params);
    EXPECT_NEAR(dp2 - dp2_small, 1e-5, 1e-6);
    double small_cp =
        SwAvailabilityModel(catalog, topology::smallTopology(),
                            SupervisorPolicy::Required)
            .controlPlaneAvailability(params);
    EXPECT_NEAR(small_cp, 0.99999, 2e-6);
    double large_cp =
        SwAvailabilityModel(catalog, topology::largeTopology(),
                            SupervisorPolicy::Required)
            .controlPlaneAvailability(params);
    EXPECT_GT(large_cp, 0.9999997);
}

TEST(PaperSw, ThirdRackSavesFiveMinutesOfSharedDpDowntime)
{
    // "Again, the third rack in the Large topology saves 5 m/y of SDP
    // downtime."
    auto catalog = fmea::openContrail3();
    SwParams params;
    double sdp_small =
        SwAvailabilityModel(catalog, topology::smallTopology(),
                            SupervisorPolicy::NotRequired)
            .sharedDataPlaneAvailability(params);
    double sdp_large =
        SwAvailabilityModel(catalog, topology::largeTopology(),
                            SupervisorPolicy::NotRequired)
            .sharedDataPlaneAvailability(params);
    double saved = minutesPerYearDowntime(sdp_small) -
                   minutesPerYearDowntime(sdp_large);
    EXPECT_NEAR(saved, 5.0, 0.6);
}

} // anonymous namespace
