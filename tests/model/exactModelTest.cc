/**
 * @file
 * Tests for the exact process-level structure-function builder.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "fmea/openContrail.hh"
#include "model/exactModel.hh"

namespace
{

using namespace sdnav::model;
using sdnav::fmea::Plane;
namespace fmea = sdnav::fmea;
namespace topology = sdnav::topology;

TEST(ExactModel, ComponentInventorySmallControlPlane)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    SwParams params;
    auto system = buildExactSystem(catalog, topo,
                                   SupervisorPolicy::NotRequired,
                                   params, Plane::ControlPlane);
    // 1 rack + 3 hosts + 3 VMs + 54 processes (18 per node).
    EXPECT_EQ(system.componentCount(), 61u);
}

TEST(ExactModel, SupervisorsAddedOnlyWhenRequired)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    SwParams params;
    auto without = buildExactSystem(catalog, topo,
                                    SupervisorPolicy::NotRequired,
                                    params, Plane::ControlPlane);
    auto with = buildExactSystem(catalog, topo,
                                 SupervisorPolicy::Required, params,
                                 Plane::ControlPlane);
    // 12 node-role supervisors appear.
    EXPECT_EQ(with.componentCount(), without.componentCount() + 12u);
}

TEST(ExactModel, DataPlaneAddsLocalProcesses)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::largeTopology();
    SwParams params;
    auto cp = buildExactSystem(catalog, topo,
                               SupervisorPolicy::NotRequired, params,
                               Plane::ControlPlane);
    auto dp = buildExactSystem(catalog, topo,
                               SupervisorPolicy::NotRequired, params,
                               Plane::DataPlane);
    // DP adds vrouter-agent and vrouter-dpdk.
    EXPECT_EQ(dp.componentCount(), cp.componentCount() + 2u);
    auto dp2 = buildExactSystem(catalog, topo,
                                SupervisorPolicy::Required, params,
                                Plane::DataPlane);
    // Plus 12 supervisors plus the vRouter supervisor.
    EXPECT_EQ(dp2.componentCount(), cp.componentCount() + 2u + 13u);
}

TEST(ExactModel, SharedInfrastructureIsShared)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    SwParams params;
    auto system = buildExactSystem(catalog, topo,
                                   SupervisorPolicy::NotRequired,
                                   params, Plane::ControlPlane);
    EXPECT_TRUE(system.hasSharedComponents());
}

TEST(ExactModel, PerfectComponentsYieldPerfectPlanes)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    SwParams params;
    params.processAvailability = 1.0;
    params.manualProcessAvailability = 1.0;
    params.vmAvailability = 1.0;
    params.hostAvailability = 1.0;
    params.rackAvailability = 1.0;
    EXPECT_DOUBLE_EQ(
        exactPlaneAvailability(catalog, topo,
                               SupervisorPolicy::Required, params,
                               Plane::ControlPlane),
        1.0);
    EXPECT_DOUBLE_EQ(
        exactPlaneAvailability(catalog, topo,
                               SupervisorPolicy::Required, params,
                               Plane::DataPlane),
        1.0);
}

TEST(ExactModel, DeadRackKillsSmallTopology)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    SwParams params;
    params.rackAvailability = 0.0;
    EXPECT_DOUBLE_EQ(
        exactPlaneAvailability(catalog, topo,
                               SupervisorPolicy::NotRequired, params,
                               Plane::ControlPlane),
        0.0);
}

TEST(ExactModel, LargeSurvivesOneDeadRackProbabilistically)
{
    // In the Large topology a single rack loss leaves a "2 of 2"
    // database quorum, so availability with A_R < 1 stays high.
    auto catalog = fmea::openContrail3();
    auto topo = topology::largeTopology();
    SwParams params;
    params.rackAvailability = 0.9;
    double cp = exactPlaneAvailability(catalog, topo,
                                       SupervisorPolicy::NotRequired,
                                       params, Plane::ControlPlane);
    // Two simultaneous rack failures (~2.7%) dominate the loss.
    EXPECT_GT(cp, 0.96);
    EXPECT_LT(cp, 0.999);
}

TEST(ExactModel, MonteCarloAgreesWithBddOnSmallCp)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    SwParams params;
    // Exaggerated failure probabilities so Monte Carlo resolves the
    // differences with modest sample counts.
    params.processAvailability = 0.95;
    params.manualProcessAvailability = 0.9;
    params.vmAvailability = 0.97;
    params.hostAvailability = 0.98;
    params.rackAvailability = 0.99;
    auto system = buildExactSystem(catalog, topo,
                                   SupervisorPolicy::Required, params,
                                   Plane::ControlPlane);
    double exact = system.availabilityExact();
    sdnav::prob::Rng rng(2024);
    auto mc = system.availabilityMonteCarlo(400000, rng);
    EXPECT_TRUE(mc.brackets(exact))
        << mc.estimate << " +- " << 2 * mc.standardError << " vs "
        << exact;
}

TEST(ExactModel, BddStaysCompact)
{
    // The structure functions must compile to manageable BDDs with
    // the shared-infrastructure-first ordering.
    auto catalog = fmea::openContrail3();
    SwParams params;
    for (auto kind : {topology::ReferenceKind::Small,
                      topology::ReferenceKind::Medium,
                      topology::ReferenceKind::Large}) {
        auto topo = topology::referenceTopology(kind);
        auto system = buildExactSystem(catalog, topo,
                                       SupervisorPolicy::Required,
                                       params, Plane::ControlPlane);
        sdnav::bdd::BddManager manager;
        auto root = system.compile(manager);
        EXPECT_LT(manager.nodeCount(root), 200000u)
            << topology::referenceKindName(kind);
    }
}

TEST(ExactModel, RoleMismatchRejected)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology(2);
    SwParams params;
    EXPECT_THROW(buildExactSystem(catalog, topo,
                                  SupervisorPolicy::Required, params,
                                  Plane::ControlPlane),
                 sdnav::ModelError);
}

TEST(ExactPlaneModelTest, BuildOnceMatchesPerPointReconstruction)
{
    // The compiled model re-evaluated over a parameter grid must
    // match a full per-point rebuild of the structure function to
    // floating-point identity (the BDD is the same; only the
    // per-class probabilities change).
    auto catalog = fmea::openContrail3();
    for (auto kind : {topology::ReferenceKind::Small,
                      topology::ReferenceKind::Large}) {
        auto topo = topology::referenceTopology(kind);
        for (auto plane : {Plane::ControlPlane, Plane::DataPlane}) {
            ExactPlaneModel engine(catalog, topo,
                                   SupervisorPolicy::Required, plane);
            SwParams base;
            for (double shift : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
                SwParams params = base.withDowntimeShift(shift);
                double rebuilt = exactPlaneAvailability(
                    catalog, topo, SupervisorPolicy::Required, params,
                    plane);
                EXPECT_NEAR(engine.availability(params), rebuilt,
                            1e-15)
                    << topology::referenceKindName(kind) << " shift "
                    << shift;
            }
        }
    }
}

TEST(ExactPlaneModelTest, ScratchAndScratchlessAgreeBitExactly)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::largeTopology();
    ExactPlaneModel engine(catalog, topo, SupervisorPolicy::Required,
                           Plane::ControlPlane);
    sdnav::bdd::ProbabilityScratch scratch;
    SwParams base;
    for (double shift : {-1.0, 0.0, 1.0}) {
        SwParams params = base.withDowntimeShift(shift);
        EXPECT_EQ(engine.availability(params),
                  engine.availability(params, scratch));
    }
}

TEST(ExactPlaneModelTest, RepeatedEvaluationDoesNotGrowBdd)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ExactPlaneModel engine(catalog, topo, SupervisorPolicy::Required,
                           Plane::ControlPlane);
    std::size_t nodes = engine.totalBddNodes();
    sdnav::bdd::ProbabilityScratch scratch;
    SwParams base;
    for (int i = 0; i < 200; ++i) {
        engine.availability(base.withDowntimeShift(0.01 * i - 1.0),
                            scratch);
    }
    EXPECT_EQ(engine.totalBddNodes(), nodes);
}

TEST(ExactPlaneModelTest, ReorderedModelMatchesDefaultAvailability)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::mediumTopology();
    ExactPlaneModel plain(catalog, topo, SupervisorPolicy::Required,
                          Plane::ControlPlane);
    ExactPlaneModel::Options options;
    options.reorderBdd = true;
    ExactPlaneModel sifted(catalog, topo, SupervisorPolicy::Required,
                           Plane::ControlPlane, options);
    SwParams base;
    for (double shift : {-1.0, 0.0, 1.0}) {
        SwParams params = base.withDowntimeShift(shift);
        // 1e-12, not 1e-15: the sifted diagram evaluates the same
        // polynomial in a different association order.
        EXPECT_NEAR(plain.availability(params),
                    sifted.availability(params), 1e-12)
            << "shift " << shift;
    }
    // Sifting may only shrink or keep the reachable diagram.
    EXPECT_LE(sifted.bddNodeCount(), plain.bddNodeCount());
}

TEST(ExactPlaneModelTest, InvalidParamsRejected)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ExactPlaneModel engine(catalog, topo, SupervisorPolicy::Required,
                           Plane::ControlPlane);
    SwParams params;
    params.processAvailability = 1.5;
    EXPECT_THROW(engine.availability(params), sdnav::ModelError);
}

} // anonymous namespace
