/**
 * @file
 * Randomized (seeded, reproducible) cross-validation: generate random
 * controller catalogs and random deployment topologies, then require
 * the SW-centric conditioning engine and the exact BDD structure
 * function to agree to near machine precision. This fuzzes corners
 * no hand-written case covers: odd role counts, empty-plane roles,
 * multi-member blocks, irregular sharing.
 */

#include <string>

#include <gtest/gtest.h>

#include "model/exactModel.hh"
#include "model/swCentric.hh"
#include "prob/rng.hh"

namespace
{

using namespace sdnav::model;
using sdnav::fmea::Plane;
namespace fmea = sdnav::fmea;
namespace topology = sdnav::topology;
using sdnav::prob::Rng;

fmea::QuorumClass
randomQuorum(Rng &rng, bool allow_majority)
{
    switch (rng.uniformInt(allow_majority ? 3 : 2)) {
      case 0:
        return fmea::QuorumClass::None;
      case 1:
        return fmea::QuorumClass::AnyOne;
      default:
        return fmea::QuorumClass::Majority;
    }
}

fmea::ControllerCatalog
randomCatalog(Rng &rng)
{
    std::size_t role_count = 1 + rng.uniformInt(4);
    fmea::ControllerCatalog catalog("random");
    for (std::size_t r = 0; r < role_count; ++r) {
        fmea::RoleSpec role;
        role.name = "Role" + std::to_string(r);
        role.tag = static_cast<char>('A' + r);
        std::size_t procs = 1 + rng.uniformInt(5);
        // Optionally group some DP processes into a shared block.
        bool dp_block = rng.uniformInt(2) == 0 && procs >= 2;
        for (std::size_t p = 0; p < procs; ++p) {
            fmea::ProcessSpec proc;
            proc.name = "p" + std::to_string(r) + "_" +
                        std::to_string(p);
            proc.restart = rng.uniformInt(2) == 0
                ? fmea::RestartMode::Auto
                : fmea::RestartMode::Manual;
            proc.cpQuorum = randomQuorum(rng, true);
            proc.dpQuorum = randomQuorum(rng, true);
            if (dp_block && p < 2 &&
                proc.dpQuorum != fmea::QuorumClass::None) {
                proc.dpQuorum = fmea::QuorumClass::AnyOne;
                proc.dpBlock = "blk" + std::to_string(r);
            }
            role.processes.push_back(std::move(proc));
        }
        catalog.addRole(std::move(role));
    }
    std::size_t host_procs = rng.uniformInt(3);
    for (std::size_t p = 0; p < host_procs; ++p) {
        catalog.addHostProcess(
            {"h" + std::to_string(p),
             rng.uniformInt(2) == 0 ? fmea::RestartMode::Auto
                                    : fmea::RestartMode::Manual,
             rng.uniformInt(4) != 0, ""});
    }
    catalog.validate();
    return catalog;
}

topology::DeploymentTopology
randomTopology(Rng &rng, std::size_t role_count)
{
    std::size_t nodes = 1 + 2 * rng.uniformInt(2); // 1 or 3.
    topology::DeploymentTopology topo("random", role_count, nodes);
    std::size_t racks = 1 + rng.uniformInt(3);
    for (std::size_t r = 0; r < racks; ++r)
        topo.addRack();
    // One to three hosts per node, roles distributed randomly over
    // that node's hosts; VMs shared or dedicated at random.
    for (std::size_t node = 0; node < nodes; ++node) {
        std::size_t host_count = 1 + rng.uniformInt(2);
        std::vector<std::size_t> hosts;
        for (std::size_t h = 0; h < host_count; ++h)
            hosts.push_back(topo.addHost(rng.uniformInt(racks)));
        bool shared_vm = rng.uniformInt(2) == 0;
        if (shared_vm) {
            std::vector<topology::RoleInstance> placements;
            for (std::size_t role = 0; role < role_count; ++role)
                placements.push_back({role, node});
            topo.addVm(hosts[rng.uniformInt(hosts.size())],
                       std::move(placements));
        } else {
            for (std::size_t role = 0; role < role_count; ++role) {
                topo.addVm(hosts[rng.uniformInt(hosts.size())],
                           {{role, node}});
            }
        }
    }
    topo.validate();
    return topo;
}

class RandomizedCrossValidation : public testing::TestWithParam<int>
{};

TEST_P(RandomizedCrossValidation, EngineMatchesExactBdd)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    auto catalog = randomCatalog(rng);
    auto topo = randomTopology(rng, catalog.roles().size());

    SwParams params;
    params.processAvailability = 0.8 + 0.19 * rng.uniform();
    params.manualProcessAvailability = 0.7 + 0.29 * rng.uniform();
    params.vmAvailability = 0.9 + 0.099 * rng.uniform();
    params.hostAvailability = 0.9 + 0.099 * rng.uniform();
    params.rackAvailability = 0.95 + 0.049 * rng.uniform();

    for (auto policy : {SupervisorPolicy::NotRequired,
                        SupervisorPolicy::Required}) {
        SwAvailabilityModel engine(catalog, topo, policy);
        for (auto plane : {Plane::ControlPlane, Plane::DataPlane}) {
            // A plane with no quorum-relevant blocks anywhere is
            // legitimate for random catalogs; the exact model
            // rejects it while the engine reports certainty —
            // skip those.
            bool has_blocks =
                !catalog.allPlaneBlocks(plane).empty() ||
                (plane == Plane::DataPlane &&
                 (catalog.requiredHostProcessCount() > 0 ||
                  policy == SupervisorPolicy::Required));
            if (!has_blocks)
                continue;
            double closed = engine.planeAvailability(params, plane);
            double exact = exactPlaneAvailability(catalog, topo,
                                                  policy, params,
                                                  plane);
            EXPECT_NEAR(closed, exact, 1e-11)
                << "seed=" << GetParam() << " policy="
                << supervisorPolicyTag(policy) << " plane="
                << (plane == Plane::ControlPlane ? "CP" : "DP");
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedCrossValidation,
                         testing::Range(1, 41));

} // anonymous namespace
