/**
 * @file
 * Tests for the HW-centric closed forms (paper eqs. 3, 6, 8) against
 * the exact RBD evaluation and the paper's approximations.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "model/hwCentric.hh"
#include "model/swCentric.hh"
#include "prob/kofn.hh"

namespace
{

using namespace sdnav::model;
namespace topology = sdnav::topology;

HwParams
paperParams()
{
    return HwParams{}; // Defaults are the paper's values.
}

TEST(HwClosedForms, SmallMatchesExactRbd)
{
    HwParams params = paperParams();
    double closed = hwSmallAvailability(params);
    double exact =
        hwExactAvailability(topology::smallTopology(), params);
    EXPECT_NEAR(closed, exact, 1e-12);
}

TEST(HwClosedForms, MediumMatchesExactRbdToFirstOrder)
{
    // Eq. (6) carries the paper's (4 - 3A_H - A_R) simplification;
    // the residual is O((1-A_H)(1-A_R)).
    HwParams params = paperParams();
    double closed = hwMediumAvailability(params);
    double exact =
        hwExactAvailability(topology::mediumTopology(), params);
    EXPECT_NEAR(closed, exact, 1e-8);
}

TEST(HwClosedForms, LargeMatchesExactRbd)
{
    HwParams params = paperParams();
    double closed = hwLargeAvailability(params);
    double exact =
        hwExactAvailability(topology::largeTopology(), params);
    EXPECT_NEAR(closed, exact, 1e-12);
}

TEST(HwClosedForms, ExactAgreementAcrossParameterGrid)
{
    for (double ac : {0.999, 0.9995, 0.99999}) {
        for (double ah : {0.999, 0.9999}) {
            HwParams params = paperParams();
            params.roleAvailability = ac;
            params.hostAvailability = ah;
            EXPECT_NEAR(
                hwSmallAvailability(params),
                hwExactAvailability(topology::smallTopology(), params),
                1e-12)
                << "ac=" << ac << " ah=" << ah;
            EXPECT_NEAR(
                hwLargeAvailability(params),
                hwExactAvailability(topology::largeTopology(), params),
                1e-12)
                << "ac=" << ac << " ah=" << ah;
        }
    }
}

TEST(HwClosedForms, DispatchesByKind)
{
    HwParams params = paperParams();
    EXPECT_DOUBLE_EQ(hwAvailability(topology::ReferenceKind::Small,
                                    params),
                     hwSmallAvailability(params));
    EXPECT_DOUBLE_EQ(hwAvailability(topology::ReferenceKind::Medium,
                                    params),
                     hwMediumAvailability(params));
    EXPECT_DOUBLE_EQ(hwAvailability(topology::ReferenceKind::Large,
                                    params),
                     hwLargeAvailability(params));
}

TEST(HwApproximations, TrackTheClosedForms)
{
    // The paper's A ~= A_{2/3} intuition: within ~1e-7 at defaults.
    HwParams params = paperParams();
    EXPECT_NEAR(hwSmallApproximation(params),
                hwSmallAvailability(params), 1e-7);
    EXPECT_NEAR(hwMediumApproximation(params),
                hwMediumAvailability(params), 1e-7);
    EXPECT_NEAR(hwLargeApproximation(params),
                hwLargeAvailability(params), 1e-7);
}

TEST(HwApproximations, ClosedFormOfSmallApproximation)
{
    HwParams params = paperParams();
    double alpha = params.roleAvailability * params.vmAvailability *
                   params.hostAvailability;
    EXPECT_NEAR(hwSmallApproximation(params),
                sdnav::prob::kOfN(2, 3, alpha) *
                    params.rackAvailability,
                1e-15);
}

TEST(HwModel, PerfectPartsGivePerfectController)
{
    HwParams params;
    params.roleAvailability = 1.0;
    params.vmAvailability = 1.0;
    params.hostAvailability = 1.0;
    params.rackAvailability = 1.0;
    EXPECT_DOUBLE_EQ(hwSmallAvailability(params), 1.0);
    EXPECT_DOUBLE_EQ(hwMediumAvailability(params), 1.0);
    EXPECT_DOUBLE_EQ(hwLargeAvailability(params), 1.0);
}

TEST(HwModel, DeadRoleKillsController)
{
    HwParams params = paperParams();
    params.roleAvailability = 0.0;
    EXPECT_DOUBLE_EQ(hwSmallAvailability(params), 0.0);
    EXPECT_DOUBLE_EQ(hwLargeAvailability(params), 0.0);
}

TEST(HwModel, MonotoneInEveryParameter)
{
    HwParams lo = paperParams();
    for (auto field :
         {&HwParams::roleAvailability, &HwParams::vmAvailability,
          &HwParams::hostAvailability, &HwParams::rackAvailability}) {
        HwParams hi = lo;
        hi.*field = std::min(1.0, lo.*field + 0.0004);
        EXPECT_GE(hwSmallAvailability(hi), hwSmallAvailability(lo));
        EXPECT_GE(hwMediumAvailability(hi), hwMediumAvailability(lo));
        EXPECT_GE(hwLargeAvailability(hi), hwLargeAvailability(lo));
    }
}

TEST(HwModel, ValidationRejectsBadParams)
{
    HwParams params = paperParams();
    params.roleAvailability = 1.5;
    EXPECT_THROW(params.validate(), sdnav::ModelError);
    EXPECT_THROW(hwSmallAvailability(params), sdnav::ModelError);
}

TEST(HwExactSystem, ComponentInventorySmall)
{
    auto system =
        hwExactSystem(topology::smallTopology(), paperParams());
    // 1 rack + 3 hosts + 3 VMs + 12 role instances.
    EXPECT_EQ(system.componentCount(), 19u);
    EXPECT_TRUE(system.hasSharedComponents());
}

TEST(HwExactSystem, ComponentInventoryLarge)
{
    auto system =
        hwExactSystem(topology::largeTopology(), paperParams());
    // 3 racks + 12 hosts + 12 VMs + 12 role instances.
    EXPECT_EQ(system.componentCount(), 39u);
}

TEST(HwExactSystem, ProfileMismatchRejected)
{
    HwQuorumProfile profile;
    profile.anyOneRoles = 2; // roleCount 3 != topology's 4.
    EXPECT_THROW(
        hwExactSystem(topology::smallTopology(), paperParams(),
                      profile),
        sdnav::ModelError);
}

TEST(HwExactSystem, AllMajorityProfileIsStricter)
{
    HwParams params = paperParams();
    HwQuorumProfile all_majority{0, 4};
    HwQuorumProfile paper_profile{3, 1};
    double strict = hwExactAvailability(topology::largeTopology(),
                                        params, all_majority);
    double loose = hwExactAvailability(topology::largeTopology(),
                                       params, paper_profile);
    EXPECT_LT(strict, loose);
}

TEST(HwCatalogBridge, SwEngineReproducesHwClosedForms)
{
    // Feeding the degenerate HW catalog through the SW-centric engine
    // must reproduce section V exactly (the two models are one
    // framework).
    HwParams params = paperParams();
    auto catalog = hwCentricCatalog();
    SwParams sw = hwToSwParams(params);
    double engine_small = swAvailability(
        catalog, topology::smallTopology(), SupervisorPolicy::NotRequired,
        sw, sdnav::fmea::Plane::ControlPlane);
    EXPECT_NEAR(engine_small, hwSmallAvailability(params), 1e-12);
    double engine_large = swAvailability(
        catalog, topology::largeTopology(), SupervisorPolicy::NotRequired,
        sw, sdnav::fmea::Plane::ControlPlane);
    EXPECT_NEAR(engine_large, hwLargeAvailability(params), 1e-12);
}

TEST(HwCatalogBridge, MediumAgreesWithExactNotTruncatedForm)
{
    HwParams params = paperParams();
    auto catalog = hwCentricCatalog();
    SwParams sw = hwToSwParams(params);
    double engine = swAvailability(
        catalog, topology::mediumTopology(),
        SupervisorPolicy::NotRequired, sw,
        sdnav::fmea::Plane::ControlPlane);
    double exact =
        hwExactAvailability(topology::mediumTopology(), params);
    EXPECT_NEAR(engine, exact, 1e-12);
}

} // anonymous namespace
