/**
 * @file
 * Tests for the SW-centric availability engine: structural behavior,
 * policies, topologies, and hand-computable special cases.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "fmea/openContrail.hh"
#include "model/swCentric.hh"
#include "prob/kofn.hh"

namespace
{

using namespace sdnav::model;
using sdnav::fmea::Plane;
namespace fmea = sdnav::fmea;
namespace topology = sdnav::topology;

fmea::ControllerCatalog
singleProcessCatalog(fmea::QuorumClass quorum,
                     fmea::RestartMode mode = fmea::RestartMode::Auto)
{
    fmea::ControllerCatalog catalog("single");
    fmea::RoleSpec role;
    role.name = "Solo";
    role.tag = 'S';
    role.processes = {{"p", mode, quorum, fmea::QuorumClass::None, "",
                       "", ""}};
    catalog.addRole(std::move(role));
    return catalog;
}

SwParams
perfectPlatform()
{
    SwParams params;
    params.vmAvailability = 1.0;
    params.hostAvailability = 1.0;
    params.rackAvailability = 1.0;
    return params;
}

TEST(SwEngine, SingleAnyOneProcessOnPerfectPlatform)
{
    // With perfect infrastructure and no supervisor requirement, a
    // "1 of 3" process block is exactly A_{1/3}(A).
    auto catalog = singleProcessCatalog(fmea::QuorumClass::AnyOne);
    auto topo = topology::smallTopology(1);
    SwParams params = perfectPlatform();
    SwAvailabilityModel model(catalog, topo,
                              SupervisorPolicy::NotRequired);
    EXPECT_NEAR(model.controlPlaneAvailability(params),
                sdnav::prob::kOfN(1, 3, params.processAvailability),
                1e-15);
}

TEST(SwEngine, SingleMajorityProcessOnPerfectPlatform)
{
    auto catalog = singleProcessCatalog(fmea::QuorumClass::Majority);
    auto topo = topology::smallTopology(1);
    SwParams params = perfectPlatform();
    SwAvailabilityModel model(catalog, topo,
                              SupervisorPolicy::NotRequired);
    EXPECT_NEAR(model.controlPlaneAvailability(params),
                sdnav::prob::kOfN(2, 3, params.processAvailability),
                1e-15);
}

TEST(SwEngine, ManualProcessUsesManualAvailability)
{
    auto catalog = singleProcessCatalog(fmea::QuorumClass::Majority,
                                        fmea::RestartMode::Manual);
    auto topo = topology::smallTopology(1);
    SwParams params = perfectPlatform();
    SwAvailabilityModel model(catalog, topo,
                              SupervisorPolicy::NotRequired);
    EXPECT_NEAR(
        model.controlPlaneAvailability(params),
        sdnav::prob::kOfN(2, 3, params.manualProcessAvailability),
        1e-15);
}

TEST(SwEngine, SupervisorRequiredAddsSeriesTerm)
{
    // One "1 of 1" process on one node with perfect platform: policy
    // Required multiplies by A_S.
    auto catalog = singleProcessCatalog(fmea::QuorumClass::AnyOne);
    auto topo = topology::smallTopology(1, 1);
    SwParams params = perfectPlatform();
    SwAvailabilityModel without(catalog, topo,
                                SupervisorPolicy::NotRequired);
    SwAvailabilityModel with(catalog, topo, SupervisorPolicy::Required);
    EXPECT_NEAR(without.controlPlaneAvailability(params),
                params.processAvailability, 1e-15);
    EXPECT_NEAR(with.controlPlaneAvailability(params),
                params.processAvailability *
                    params.manualProcessAvailability,
                1e-15);
}

TEST(SwEngine, RackFactorsThroughOnSmall)
{
    // In the Small topology, the single rack is a pure series factor.
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    SwParams base;
    SwAvailabilityModel model(catalog, topo,
                              SupervisorPolicy::NotRequired);
    double with_rack = model.controlPlaneAvailability(base);
    SwParams no_rack = base;
    no_rack.rackAvailability = 1.0;
    double without_rack = model.controlPlaneAvailability(no_rack);
    EXPECT_NEAR(with_rack, without_rack * base.rackAvailability,
                1e-12);
}

TEST(SwEngine, PolicyRequiredNeverImprovesAvailability)
{
    auto catalog = fmea::openContrail3();
    for (auto kind : {topology::ReferenceKind::Small,
                      topology::ReferenceKind::Medium,
                      topology::ReferenceKind::Large}) {
        auto topo = topology::referenceTopology(kind);
        SwParams params;
        SwAvailabilityModel scen1(catalog, topo,
                                  SupervisorPolicy::NotRequired);
        SwAvailabilityModel scen2(catalog, topo,
                                  SupervisorPolicy::Required);
        EXPECT_GE(scen1.controlPlaneAvailability(params),
                  scen2.controlPlaneAvailability(params));
        EXPECT_GE(scen1.hostDataPlaneAvailability(params),
                  scen2.hostDataPlaneAvailability(params));
    }
}

TEST(SwEngine, LocalDataPlaneClosedForm)
{
    // A_LDP = A^K (scenario 1) or A^K * A_S (scenario 2), K = 2.
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    SwParams params;
    SwAvailabilityModel scen1(catalog, topo,
                              SupervisorPolicy::NotRequired);
    SwAvailabilityModel scen2(catalog, topo,
                              SupervisorPolicy::Required);
    double a = params.processAvailability;
    double as = params.manualProcessAvailability;
    EXPECT_NEAR(scen1.localDataPlaneAvailability(params), a * a,
                1e-15);
    EXPECT_NEAR(scen2.localDataPlaneAvailability(params), a * a * as,
                1e-15);
}

TEST(SwEngine, HostDpIsSharedTimesLocal)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::largeTopology();
    SwParams params;
    SwAvailabilityModel model(catalog, topo,
                              SupervisorPolicy::Required);
    EXPECT_NEAR(model.hostDataPlaneAvailability(params),
                model.sharedDataPlaneAvailability(params) *
                    model.localDataPlaneAvailability(params),
                1e-15);
}

TEST(SwEngine, PlaneAvailabilityDispatch)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    SwParams params;
    SwAvailabilityModel model(catalog, topo,
                              SupervisorPolicy::NotRequired);
    EXPECT_DOUBLE_EQ(model.planeAvailability(params,
                                             Plane::ControlPlane),
                     model.controlPlaneAvailability(params));
    EXPECT_DOUBLE_EQ(model.planeAvailability(params, Plane::DataPlane),
                     model.hostDataPlaneAvailability(params));
}

TEST(SwEngine, SharedElementCounts)
{
    auto catalog = fmea::openContrail3();
    // Small: 3 shared VMs + 3 shared hosts + 1 shared rack.
    SwAvailabilityModel small(catalog, topology::smallTopology(),
                              SupervisorPolicy::NotRequired);
    EXPECT_EQ(small.sharedElementCount(), 7u);
    // Medium: VMs dedicated; 3 hosts + 2 racks shared.
    SwAvailabilityModel medium(catalog, topology::mediumTopology(),
                               SupervisorPolicy::NotRequired);
    EXPECT_EQ(medium.sharedElementCount(), 5u);
    // Large: only the 3 racks are shared.
    SwAvailabilityModel large(catalog, topology::largeTopology(),
                              SupervisorPolicy::NotRequired);
    EXPECT_EQ(large.sharedElementCount(), 3u);
}

TEST(SwEngine, RoleCountMismatchRejected)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology(3); // 3 roles, catalog has 4.
    EXPECT_THROW(SwAvailabilityModel(catalog, topo,
                                     SupervisorPolicy::NotRequired),
                 sdnav::ModelError);
}

TEST(SwEngine, MonotoneInProcessAvailability)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::largeTopology();
    SwAvailabilityModel model(catalog, topo,
                              SupervisorPolicy::Required);
    double prev_cp = 0.0, prev_dp = 0.0;
    for (double shift : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
        SwParams params = SwParams{}.withDowntimeShift(shift);
        double cp = model.controlPlaneAvailability(params);
        double dp = model.hostDataPlaneAvailability(params);
        EXPECT_GT(cp, prev_cp);
        EXPECT_GT(dp, prev_dp);
        prev_cp = cp;
        prev_dp = dp;
    }
}

TEST(SwEngine, DataPlaneSurvivesDatabaseLoss)
{
    // The paper's key decoupling: Database quorum loss halts the CP
    // but not the host DP. Make manual processes (i.e. Database)
    // nearly dead and watch only the CP collapse.
    auto catalog = fmea::openContrail3();
    auto topo = topology::largeTopology();
    SwParams params = perfectPlatform();
    params.manualProcessAvailability = 0.01;
    SwAvailabilityModel model(catalog, topo,
                              SupervisorPolicy::NotRequired);
    EXPECT_LT(model.controlPlaneAvailability(params), 0.01);
    EXPECT_GT(model.sharedDataPlaneAvailability(params), 0.999);
}

TEST(SwEngine, ControlBlockRequiresColocation)
{
    // DP control block {control+dns+named} needs all three on ONE
    // node: with a perfect platform, its availability through the
    // engine is A_{1/3}(A^3), strictly less than requiring any
    // control + any dns + any named (A_{1/3}(A)^3).
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    SwParams params = perfectPlatform();
    params.processAvailability = 0.9; // Exaggerate for contrast.
    params.manualProcessAvailability = 0.9;
    SwAvailabilityModel model(catalog, topo,
                              SupervisorPolicy::NotRequired);
    double shared = model.sharedDataPlaneAvailability(params);
    double block = sdnav::prob::kOfN(1, 3, std::pow(0.9, 3));
    double discovery = sdnav::prob::kOfN(1, 3, 0.9);
    EXPECT_NEAR(shared, block * discovery, 1e-12);
    double wrong_model = std::pow(sdnav::prob::kOfN(1, 3, 0.9), 3) *
                         discovery;
    EXPECT_LT(shared, wrong_model);
}

TEST(SwEngine, ConvenienceWrapperMatchesClass)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    SwParams params;
    SwAvailabilityModel model(catalog, topo,
                              SupervisorPolicy::Required);
    EXPECT_DOUBLE_EQ(
        swAvailability(catalog, topo, SupervisorPolicy::Required,
                       params, Plane::ControlPlane),
        model.controlPlaneAvailability(params));
}

TEST(SwParams, DowntimeShiftLockStep)
{
    SwParams params;
    SwParams shifted = params.withDowntimeShift(-1.0);
    EXPECT_NEAR(shifted.processAvailability, 0.9998, 1e-12);
    EXPECT_NEAR(shifted.manualProcessAvailability, 0.998, 1e-12);
    // Platform untouched.
    EXPECT_DOUBLE_EQ(shifted.vmAvailability, params.vmAvailability);
    EXPECT_DOUBLE_EQ(shifted.rackAvailability,
                     params.rackAvailability);
}

TEST(SwParams, FromTimingsMatchesPaper)
{
    sdnav::prob::ProcessTimings timings{5000.0, 0.1, 1.0};
    SwParams params = SwParams::fromTimings(timings);
    EXPECT_NEAR(params.processAvailability, 0.99998, 1e-8);
    EXPECT_NEAR(params.manualProcessAvailability, 0.9998, 1e-7);
}

TEST(SupervisorPolicyTag, MatchesPaperNaming)
{
    EXPECT_EQ(supervisorPolicyTag(SupervisorPolicy::NotRequired), '1');
    EXPECT_EQ(supervisorPolicyTag(SupervisorPolicy::Required), '2');
}

} // anonymous namespace
