/**
 * @file
 * Cross-validation: the SW-centric conditioning engine and the exact
 * BDD structure-function evaluation are independent derivations of
 * the same quantity and must agree to near machine precision, across
 * catalogs, topologies, policies, planes, and parameter ranges.
 */

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "fmea/openContrail.hh"
#include "model/exactModel.hh"
#include "model/swCentric.hh"

namespace
{

using namespace sdnav::model;
using sdnav::fmea::Plane;
namespace fmea = sdnav::fmea;
namespace topology = sdnav::topology;

using Config = std::tuple<topology::ReferenceKind, SupervisorPolicy,
                          fmea::Plane, double>;

class EngineVsExact : public testing::TestWithParam<Config>
{};

TEST_P(EngineVsExact, OpenContrailAgreesToMachinePrecision)
{
    auto [kind, policy, plane, shift] = GetParam();
    auto catalog = fmea::openContrail3();
    auto topo = topology::referenceTopology(kind);
    SwParams params = SwParams{}.withDowntimeShift(shift);

    SwAvailabilityModel engine(catalog, topo, policy);
    double closed = engine.planeAvailability(params, plane);
    double exact =
        exactPlaneAvailability(catalog, topo, policy, params, plane);
    EXPECT_NEAR(closed, exact, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    FullGrid, EngineVsExact,
    testing::Combine(
        testing::Values(topology::ReferenceKind::Small,
                        topology::ReferenceKind::Medium,
                        topology::ReferenceKind::Large),
        testing::Values(SupervisorPolicy::NotRequired,
                        SupervisorPolicy::Required),
        testing::Values(Plane::ControlPlane, Plane::DataPlane),
        testing::Values(-1.0, 0.0, 1.0)));

TEST(EngineVsExactStress, ExaggeratedFailureRates)
{
    // Push every component availability far from 1 so any structural
    // discrepancy between the two paths is amplified.
    auto catalog = fmea::openContrail3();
    SwParams params;
    params.processAvailability = 0.9;
    params.manualProcessAvailability = 0.8;
    params.vmAvailability = 0.93;
    params.hostAvailability = 0.95;
    params.rackAvailability = 0.97;
    for (auto kind : {topology::ReferenceKind::Small,
                      topology::ReferenceKind::Medium,
                      topology::ReferenceKind::Large}) {
        auto topo = topology::referenceTopology(kind);
        for (auto policy : {SupervisorPolicy::NotRequired,
                            SupervisorPolicy::Required}) {
            for (auto plane :
                 {Plane::ControlPlane, Plane::DataPlane}) {
                SwAvailabilityModel engine(catalog, topo, policy);
                double closed =
                    engine.planeAvailability(params, plane);
                double exact = exactPlaneAvailability(
                    catalog, topo, policy, params, plane);
                EXPECT_NEAR(closed, exact, 1e-11)
                    << topology::referenceKindName(kind) << " policy "
                    << supervisorPolicyTag(policy);
            }
        }
    }
}

TEST(EngineVsExact, AlternativeCatalogsAgree)
{
    SwParams params;
    params.processAvailability = 0.995;
    params.manualProcessAvailability = 0.98;
    for (auto *catalog_fn :
         {&fmea::raftStyleController, &fmea::fragileController}) {
        auto catalog = (*catalog_fn)();
        std::size_t roles = catalog.roles().size();
        for (auto policy : {SupervisorPolicy::NotRequired,
                            SupervisorPolicy::Required}) {
            for (auto plane :
                 {Plane::ControlPlane, Plane::DataPlane}) {
                auto topo = topology::largeTopology(roles);
                SwAvailabilityModel engine(catalog, topo, policy);
                double closed =
                    engine.planeAvailability(params, plane);
                double exact = exactPlaneAvailability(
                    catalog, topo, policy, params, plane);
                EXPECT_NEAR(closed, exact, 1e-12)
                    << catalog.name();
            }
        }
    }
}

TEST(EngineVsExact, FiveNodeClusterAgrees)
{
    // The 2N+1 generalization: N = 2 (5 nodes, quorum 3). The BDD of
    // OpenContrail's 16-block control plane grows combinatorially
    // with cluster size, so the 5-node CP check uses the leaner Raft
    // catalog (6 blocks) and the OpenContrail check covers the DP
    // (2 shared blocks); Monte Carlo covers the rest (see below).
    SwParams params;
    params.processAvailability = 0.99;
    params.manualProcessAvailability = 0.97;
    {
        auto catalog = fmea::raftStyleController();
        auto topo = topology::largeTopology(catalog.roles().size(), 5);
        SwAvailabilityModel engine(catalog, topo,
                                   SupervisorPolicy::Required);
        double closed =
            engine.planeAvailability(params, Plane::ControlPlane);
        double exact = exactPlaneAvailability(
            catalog, topo, SupervisorPolicy::Required, params,
            Plane::ControlPlane);
        EXPECT_NEAR(closed, exact, 1e-12) << "raft 5-node CP";
    }
    {
        auto catalog = fmea::openContrail3();
        auto topo = topology::smallTopology(4, 5);
        SwAvailabilityModel engine(catalog, topo,
                                   SupervisorPolicy::Required);
        double closed =
            engine.planeAvailability(params, Plane::DataPlane);
        double exact = exactPlaneAvailability(
            catalog, topo, SupervisorPolicy::Required, params,
            Plane::DataPlane);
        EXPECT_NEAR(closed, exact, 1e-12) << "OpenContrail 5-node DP";
    }
}

TEST(EngineVsMonteCarlo, FiveNodeOpenContrailControlPlane)
{
    // The full OpenContrail 5-node CP, validated statistically (the
    // BDD route is impractical there; see FiveNodeClusterAgrees).
    auto catalog = fmea::openContrail3();
    auto topo = topology::largeTopology(4, 5);
    SwParams params;
    params.processAvailability = 0.97;
    params.manualProcessAvailability = 0.93;
    params.vmAvailability = 0.98;
    params.hostAvailability = 0.99;
    params.rackAvailability = 0.995;
    SwAvailabilityModel engine(catalog, topo,
                               SupervisorPolicy::Required);
    double closed =
        engine.planeAvailability(params, Plane::ControlPlane);
    auto system = buildExactSystem(catalog, topo,
                                   SupervisorPolicy::Required, params,
                                   Plane::ControlPlane);
    sdnav::prob::Rng rng(424242);
    auto mc = system.availabilityMonteCarlo(300000, rng);
    EXPECT_TRUE(mc.brackets(closed))
        << mc.estimate << " +- " << 2 * mc.standardError << " vs "
        << closed;
}

TEST(EngineVsExact, CustomMixedTopologyAgrees)
{
    // A deliberately irregular layout: node 0's roles share a VM,
    // node 1 has per-role VMs on one host, node 2 is fully dedicated;
    // two racks.
    auto catalog = fmea::openContrail3();
    topology::DeploymentTopology topo("mixed", 4, 3);
    std::size_t r0 = topo.addRack();
    std::size_t r1 = topo.addRack();
    // Node 0: Small-style.
    std::size_t h0 = topo.addHost(r0);
    topo.addVm(h0, {{0, 0}, {1, 0}, {2, 0}, {3, 0}});
    // Node 1: Medium-style.
    std::size_t h1 = topo.addHost(r0);
    for (std::size_t role = 0; role < 4; ++role)
        topo.addVm(h1, {{role, 1}});
    // Node 2: Large-style.
    for (std::size_t role = 0; role < 4; ++role) {
        std::size_t h = topo.addHost(r1);
        topo.addVm(h, {{role, 2}});
    }
    topo.validate();

    SwParams params;
    params.processAvailability = 0.98;
    params.manualProcessAvailability = 0.95;
    params.vmAvailability = 0.99;
    params.hostAvailability = 0.985;
    params.rackAvailability = 0.995;
    for (auto policy : {SupervisorPolicy::NotRequired,
                        SupervisorPolicy::Required}) {
        for (auto plane : {Plane::ControlPlane, Plane::DataPlane}) {
            SwAvailabilityModel engine(catalog, topo, policy);
            double closed = engine.planeAvailability(params, plane);
            double exact = exactPlaneAvailability(catalog, topo,
                                                  policy, params,
                                                  plane);
            EXPECT_NEAR(closed, exact, 1e-12);
        }
    }
}

TEST(EngineVsMonteCarlo, StatisticalAgreementOnDataPlane)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::mediumTopology();
    SwParams params;
    params.processAvailability = 0.97;
    params.manualProcessAvailability = 0.93;
    params.vmAvailability = 0.96;
    params.hostAvailability = 0.98;
    params.rackAvailability = 0.99;
    SwAvailabilityModel engine(catalog, topo,
                               SupervisorPolicy::Required);
    double closed =
        engine.planeAvailability(params, Plane::DataPlane);
    auto system = buildExactSystem(catalog, topo,
                                   SupervisorPolicy::Required, params,
                                   Plane::DataPlane);
    sdnav::prob::Rng rng(777);
    auto mc = system.availabilityMonteCarlo(300000, rng);
    EXPECT_TRUE(mc.brackets(closed))
        << mc.estimate << " +- " << 2 * mc.standardError << " vs "
        << closed;
}

} // anonymous namespace
