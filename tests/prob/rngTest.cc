/**
 * @file
 * Tests for the xoshiro256** RNG wrapper.
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "prob/rng.hh"

namespace
{

using sdnav::prob::Rng;
using sdnav::prob::splitMix64;

TEST(SplitMix64, ReferenceSequence)
{
    // Reference values for seed 1234567 from the published SplitMix64
    // algorithm.
    std::uint64_t state = 1234567;
    std::uint64_t first = splitMix64(state);
    std::uint64_t second = splitMix64(state);
    EXPECT_NE(first, second);
    // The state advances by the golden-ratio increment.
    EXPECT_EQ(state, 1234567 + 2 * 0x9e3779b97f4a7c15ULL);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(3.0, 7.0);
        EXPECT_GE(u, 3.0);
        EXPECT_LT(u, 7.0);
    }
    EXPECT_THROW(rng.uniform(2.0, 1.0), sdnav::ModelError);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(5000.0);
    // Standard error is 5000/sqrt(n) ~ 11.
    EXPECT_NEAR(sum / n, 5000.0, 60.0);
}

TEST(Rng, ExponentialIsPositive)
{
    Rng rng(19);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.exponential(1.0), 0.0);
    EXPECT_THROW(rng.exponential(0.0), sdnav::ModelError);
}

TEST(Rng, UniformIntStaysInBound)
{
    Rng rng(23);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 3000; ++i) {
        std::uint64_t v = rng.uniformInt(3);
        EXPECT_LT(v, 3u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u); // All values hit.
    EXPECT_THROW(rng.uniformInt(0), sdnav::ModelError);
}

TEST(Rng, UniformIntIsRoughlyUniform)
{
    Rng rng(29);
    int counts[5] = {0, 0, 0, 0, 0};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(5)];
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c), n / 5.0, 600.0);
}

TEST(Rng, DerivedStreamsAreIndependent)
{
    Rng master(99);
    Rng s0 = master.deriveStream(0);
    Rng s1 = master.deriveStream(1);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (s0.next() == s1.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, DerivedStreamsAreReproducible)
{
    Rng master(99);
    Rng a = master.deriveStream(5);
    Rng b = Rng(99).deriveStream(5);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DerivedStreamsDistinctAcrossManyIndices)
{
    // The replication layer seeds replication r from stream r; the
    // first outputs across a wide index range must all differ.
    Rng master(0xc0ffee);
    std::set<std::uint64_t> first_outputs;
    for (std::uint64_t i = 0; i < 256; ++i)
        first_outputs.insert(master.deriveStream(i).next());
    EXPECT_EQ(first_outputs.size(), 256u);
}

TEST(Rng, DeriveStreamIgnoresGeneratorPosition)
{
    // Parallel reproducibility requires derivation from the
    // construction seed only, independent of how many values the
    // master has already produced.
    Rng fresh(7);
    Rng advanced(7);
    for (int i = 0; i < 1000; ++i)
        advanced.next();
    Rng a = fresh.deriveStream(3);
    Rng b = advanced.deriveStream(3);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedAccessorReturnsConstructionSeed)
{
    EXPECT_EQ(Rng(42).seed(), 42u);
    // Re-seeding from the accessor reproduces the stream.
    Rng derived = Rng(99).deriveStream(4);
    Rng reseeded(derived.seed());
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(derived.next(), reseeded.next());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator)
{
    static_assert(Rng::min() == 0);
    static_assert(Rng::max() == ~0ULL);
    Rng rng(1);
    EXPECT_NE(rng(), rng());
}

} // anonymous namespace
