/**
 * @file
 * Tests for the paper's eq. (1) block availability A_{m/n}(alpha).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "prob/kofn.hh"

namespace
{

using namespace sdnav::prob;

TEST(KofN, ClosedFormsThePaperUses)
{
    double a = 0.9995;
    // A_{1/2} = 1 - (1-a)^2 = a(2-a).
    EXPECT_NEAR(kOfN(1, 2, a), a * (2.0 - a), 1e-15);
    // A_{2/2} = a^2.
    EXPECT_NEAR(kOfN(2, 2, a), a * a, 1e-15);
    // A_{1/3} = 1 - (1-a)^3.
    EXPECT_NEAR(kOfN(1, 3, a), 1.0 - std::pow(1.0 - a, 3), 1e-15);
    // A_{2/3} = 3a^2 - 2a^3 = a^2(3 - 2a).
    EXPECT_NEAR(kOfN(2, 3, a), a * a * (3.0 - 2.0 * a), 1e-15);
}

TEST(KofN, PaperConventionMGreaterThanNIsZero)
{
    EXPECT_DOUBLE_EQ(kOfN(2, 1, 0.999), 0.0);
    EXPECT_DOUBLE_EQ(kOfN(4, 3, 1.0), 0.0);
}

TEST(KofN, ZeroOfAnythingIsCertain)
{
    EXPECT_DOUBLE_EQ(kOfN(0, 3, 0.1), 1.0);
    EXPECT_DOUBLE_EQ(kOfN(0, 0, 0.0), 1.0);
}

TEST(KofN, OneOfOneIsTheElement)
{
    for (double a : {0.0, 0.37, 0.99998, 1.0})
        EXPECT_DOUBLE_EQ(kOfN(1, 1, a), a);
}

TEST(KofN, PerfectElementsGivePerfectBlock)
{
    EXPECT_DOUBLE_EQ(kOfN(3, 5, 1.0), 1.0);
}

TEST(KofN, DeadElementsGiveDeadBlock)
{
    EXPECT_DOUBLE_EQ(kOfN(1, 5, 0.0), 0.0);
}

TEST(KofN, SeriesAndParallelSpecialCases)
{
    double a = 0.98;
    // n-of-n is series; 1-of-n is parallel.
    EXPECT_NEAR(kOfN(4, 4, a), std::pow(a, 4), 1e-15);
    EXPECT_NEAR(kOfN(1, 4, a), 1.0 - std::pow(1.0 - a, 4), 1e-15);
}

TEST(KofNDerivative, MatchesFiniteDifference)
{
    for (unsigned n = 1; n <= 6; ++n) {
        for (unsigned m = 1; m <= n; ++m) {
            for (double a : {0.2, 0.5, 0.9, 0.999}) {
                double h = 1e-6;
                double fd =
                    (kOfN(m, n, a + h) - kOfN(m, n, a - h)) / (2.0 * h);
                EXPECT_NEAR(kOfNDerivative(m, n, a), fd, 1e-5)
                    << "m=" << m << " n=" << n << " a=" << a;
            }
        }
    }
}

TEST(KofNDerivative, ZeroForDegenerateBlocks)
{
    EXPECT_DOUBLE_EQ(kOfNDerivative(0, 3, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(kOfNDerivative(4, 3, 0.5), 0.0);
}

TEST(Quorum, SizesOf2NPlus1Clusters)
{
    EXPECT_EQ(clusterSize(1), 3u);
    EXPECT_EQ(quorumSize(1), 2u);
    EXPECT_EQ(clusterSize(2), 5u);
    EXPECT_EQ(quorumSize(2), 3u);
    EXPECT_EQ(clusterSize(4), 9u);
    EXPECT_EQ(quorumSize(4), 5u);
}

TEST(Quorum, AvailabilityMatchesKofN)
{
    double a = 0.9998;
    EXPECT_DOUBLE_EQ(quorumAvailability(1, a), kOfN(2, 3, a));
    EXPECT_DOUBLE_EQ(quorumAvailability(2, a), kOfN(3, 5, a));
}

TEST(Quorum, LargerClustersAreMoreAvailableForGoodElements)
{
    // With element availability > 1/2, adding failure tolerance helps.
    double a = 0.999;
    double prev = 0.0;
    for (unsigned f = 1; f <= 5; ++f) {
        double q = quorumAvailability(f, a);
        EXPECT_GT(q, prev);
        prev = q;
    }
}

TEST(Quorum, LargerClustersHurtForBadElements)
{
    // With element availability < 1/2 quorum gets harder to hold.
    double a = 0.4;
    double prev = 1.0;
    for (unsigned f = 1; f <= 5; ++f) {
        double q = quorumAvailability(f, a);
        EXPECT_LT(q, prev);
        prev = q;
    }
}

// Parameterized property sweep across (m, n).
class KofNProperty
    : public testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(KofNProperty, BoundedAndMonotone)
{
    auto [m, n] = GetParam();
    double prev = -1.0;
    for (int i = 0; i <= 20; ++i) {
        double a = static_cast<double>(i) / 20.0;
        double v = kOfN(m, n, a);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
        EXPECT_GE(v + 1e-15, prev); // Monotone in alpha.
        prev = v;
    }
}

TEST_P(KofNProperty, ComplementIdentity)
{
    // P[at least m up] + P[at least n-m+1 down] = 1, i.e.
    // A_{m/n}(a) = 1 - A_{n-m+1/n}(1-a) for 1 <= m <= n.
    auto [m, n] = GetParam();
    if (m == 0 || m > n)
        return;
    for (double a : {0.1, 0.37, 0.9}) {
        EXPECT_NEAR(kOfN(m, n, a),
                    1.0 - kOfN(n - m + 1, n, 1.0 - a), 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KofNProperty,
    testing::Combine(testing::Values(0u, 1u, 2u, 3u, 5u),
                     testing::Values(1u, 2u, 3u, 5u, 9u)));

} // anonymous namespace
