/**
 * @file
 * Tests for the sampling distributions.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "prob/distributions.hh"

namespace
{

using namespace sdnav::prob;

double
sampleMean(const Distribution &dist, int n, std::uint64_t seed)
{
    Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += dist.sample(rng);
    return sum / n;
}

TEST(Exponential, MeanMatches)
{
    ExponentialDistribution dist(100.0);
    EXPECT_DOUBLE_EQ(dist.mean(), 100.0);
    EXPECT_NEAR(sampleMean(dist, 100000, 1), 100.0, 1.5);
}

TEST(Exponential, RejectsNonPositiveMean)
{
    EXPECT_THROW(ExponentialDistribution(0.0), sdnav::ModelError);
    EXPECT_THROW(ExponentialDistribution(-1.0), sdnav::ModelError);
}

TEST(Exponential, DescribeAndClone)
{
    ExponentialDistribution dist(5000.0);
    EXPECT_EQ(dist.describe(), "exp(mean=5000)");
    auto copy = dist.clone();
    EXPECT_DOUBLE_EQ(copy->mean(), 5000.0);
}

TEST(Deterministic, AlwaysSameValue)
{
    DeterministicDistribution dist(0.55);
    Rng rng(2);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(dist.sample(rng), 0.55);
    EXPECT_DOUBLE_EQ(dist.mean(), 0.55);
}

TEST(Deterministic, ZeroAllowedNegativeRejected)
{
    EXPECT_NO_THROW(DeterministicDistribution(0.0));
    EXPECT_THROW(DeterministicDistribution(-0.1), sdnav::ModelError);
}

TEST(Uniform, BoundsAndMean)
{
    UniformDistribution dist(2.0, 6.0);
    EXPECT_DOUBLE_EQ(dist.mean(), 4.0);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        double v = dist.sample(rng);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 6.0);
    }
    EXPECT_NEAR(sampleMean(dist, 100000, 4), 4.0, 0.02);
}

TEST(Uniform, RejectsInvertedRange)
{
    EXPECT_THROW(UniformDistribution(5.0, 1.0), sdnav::ModelError);
}

TEST(Weibull, MeanMatchesAnalytic)
{
    WeibullDistribution dist(2.0, 100.0);
    // mean = scale * Gamma(1.5) = 100 * 0.886226...
    EXPECT_NEAR(dist.mean(), 88.6227, 1e-3);
    EXPECT_NEAR(sampleMean(dist, 200000, 5), dist.mean(), 0.5);
}

TEST(Weibull, WithMeanHitsTarget)
{
    for (double shape : {0.7, 1.0, 2.0, 3.5}) {
        auto dist = WeibullDistribution::withMean(shape, 5000.0);
        EXPECT_NEAR(dist.mean(), 5000.0, 1e-6) << "shape=" << shape;
    }
}

TEST(Weibull, ShapeOneIsExponential)
{
    // Weibull(k=1) has the exponential's CV of 1.
    auto dist = WeibullDistribution::withMean(1.0, 50.0);
    Rng rng(6);
    double sum = 0.0, ss = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double v = dist.sample(rng);
        sum += v;
        ss += v * v;
    }
    double mean = sum / n;
    double var = ss / n - mean * mean;
    EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.02);
}

TEST(LogNormal, WithMeanHitsTargetMeanAndCv)
{
    auto dist = LogNormalDistribution::withMean(200.0, 0.5);
    EXPECT_NEAR(dist.mean(), 200.0, 1e-9);
    Rng rng(7);
    double sum = 0.0, ss = 0.0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        double v = dist.sample(rng);
        sum += v;
        ss += v * v;
    }
    double mean = sum / n;
    double var = ss / n - mean * mean;
    EXPECT_NEAR(mean, 200.0, 1.5);
    EXPECT_NEAR(std::sqrt(var) / mean, 0.5, 0.02);
}

TEST(LogNormal, SamplesArePositive)
{
    LogNormalDistribution dist(0.0, 1.0);
    Rng rng(8);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(dist.sample(rng), 0.0);
}

TEST(AllDistributions, CloneIsDeepAndPolymorphic)
{
    std::vector<std::unique_ptr<Distribution>> dists;
    dists.push_back(std::make_unique<ExponentialDistribution>(10.0));
    dists.push_back(std::make_unique<DeterministicDistribution>(3.0));
    dists.push_back(std::make_unique<UniformDistribution>(1.0, 2.0));
    dists.push_back(std::make_unique<WeibullDistribution>(2.0, 10.0));
    dists.push_back(std::make_unique<LogNormalDistribution>(1.0, 0.5));
    for (const auto &d : dists) {
        auto copy = d->clone();
        EXPECT_DOUBLE_EQ(copy->mean(), d->mean());
        EXPECT_EQ(copy->describe(), d->describe());
    }
}

} // anonymous namespace
