/**
 * @file
 * Tests for exact combinatorics.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "prob/combinatorics.hh"

namespace
{

using namespace sdnav::prob;

TEST(Binomial, SmallValues)
{
    EXPECT_EQ(binomialCoefficient(0, 0), 1u);
    EXPECT_EQ(binomialCoefficient(3, 0), 1u);
    EXPECT_EQ(binomialCoefficient(3, 1), 3u);
    EXPECT_EQ(binomialCoefficient(3, 2), 3u);
    EXPECT_EQ(binomialCoefficient(3, 3), 1u);
    EXPECT_EQ(binomialCoefficient(5, 2), 10u);
}

TEST(Binomial, KGreaterThanNIsZero)
{
    EXPECT_EQ(binomialCoefficient(3, 4), 0u);
    EXPECT_EQ(binomialCoefficient(0, 1), 0u);
}

TEST(Binomial, LargeExactValue)
{
    // C(62, 31) is the largest central coefficient we support.
    EXPECT_EQ(binomialCoefficient(62, 31), 465428353255261088ULL);
    EXPECT_EQ(binomialCoefficient(52, 5), 2598960u);
}

TEST(Binomial, RejectsOversizedN)
{
    EXPECT_THROW(binomialCoefficient(63, 1), sdnav::ModelError);
}

TEST(Binomial, PascalIdentityHolds)
{
    for (unsigned n = 1; n <= 20; ++n) {
        for (unsigned k = 1; k <= n; ++k) {
            EXPECT_EQ(binomialCoefficient(n, k),
                      binomialCoefficient(n - 1, k - 1) +
                          binomialCoefficient(n - 1, k))
                << "n=" << n << " k=" << k;
        }
    }
}

TEST(BinomialPmf, SumsToOne)
{
    for (double p : {0.0, 0.3, 0.99998, 1.0}) {
        double sum = 0.0;
        for (unsigned k = 0; k <= 10; ++k)
            sum += binomialPmf(10, k, p);
        EXPECT_NEAR(sum, 1.0, 1e-12) << "p=" << p;
    }
}

TEST(BinomialPmf, DegenerateCases)
{
    EXPECT_DOUBLE_EQ(binomialPmf(5, 0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(binomialPmf(5, 5, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(binomialPmf(5, 3, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(binomialPmf(5, 6, 0.5), 0.0);
}

TEST(BinomialTail, MatchesDirectSum)
{
    double p = 0.97;
    for (unsigned m = 0; m <= 6; ++m) {
        double direct = 0.0;
        for (unsigned k = m; k <= 5; ++k)
            direct += binomialPmf(5, k, p);
        EXPECT_NEAR(binomialTailAtLeast(5, m, p), direct, 1e-15);
    }
}

TEST(BinomialTail, AtLeastZeroIsCertain)
{
    EXPECT_DOUBLE_EQ(binomialTailAtLeast(7, 0, 0.123), 1.0);
}

TEST(BinomialTail, MoreThanNIsImpossible)
{
    EXPECT_DOUBLE_EQ(binomialTailAtLeast(3, 4, 0.9), 0.0);
}

// Property sweep: the tail is monotone in p and antitone in m.
class BinomialTailProperty
    : public testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(BinomialTailProperty, MonotoneInP)
{
    auto [n, m] = GetParam();
    double prev = -1.0;
    for (double p = 0.0; p <= 1.0001; p += 0.05) {
        double v = binomialTailAtLeast(n, m, std::min(p, 1.0));
        EXPECT_GE(v + 1e-15, prev);
        prev = v;
    }
}

TEST_P(BinomialTailProperty, AntitoneInM)
{
    auto [n, m] = GetParam();
    if (m == 0)
        return;
    for (double p : {0.1, 0.5, 0.9}) {
        EXPECT_LE(binomialTailAtLeast(n, m, p),
                  binomialTailAtLeast(n, m - 1, p) + 1e-15);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BinomialTailProperty,
    testing::Combine(testing::Values(1u, 2u, 3u, 5u, 9u),
                     testing::Values(0u, 1u, 2u, 3u)));

} // anonymous namespace
