/**
 * @file
 * Tests for the special functions (regularized incomplete gamma and
 * the truncated Weibull mean).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "prob/rng.hh"
#include "prob/special.hh"

namespace
{

using namespace sdnav::prob;

TEST(IncompleteGamma, BoundaryValues)
{
    EXPECT_DOUBLE_EQ(regularizedLowerIncompleteGamma(1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(
        regularizedLowerIncompleteGamma(
            2.5, std::numeric_limits<double>::infinity()),
        1.0);
}

TEST(IncompleteGamma, ShapeOneIsExponentialCdf)
{
    for (double x : {0.1, 0.5, 1.0, 3.0, 10.0, 50.0}) {
        EXPECT_NEAR(regularizedLowerIncompleteGamma(1.0, x),
                    1.0 - std::exp(-x), 1e-14)
            << "x=" << x;
    }
}

TEST(IncompleteGamma, ShapeHalfIsErf)
{
    // P(1/2, x) = erf(sqrt(x)).
    for (double x : {0.01, 0.25, 1.0, 4.0, 9.0}) {
        EXPECT_NEAR(regularizedLowerIncompleteGamma(0.5, x),
                    std::erf(std::sqrt(x)), 1e-13)
            << "x=" << x;
    }
}

TEST(IncompleteGamma, IntegerShapeIsPoissonTail)
{
    // P(n, x) = 1 - sum_{k<n} e^-x x^k / k!.
    double x = 2.5;
    int n = 4;
    double poisson_head = 0.0, term = std::exp(-x);
    for (int k = 0; k < n; ++k) {
        poisson_head += term;
        term *= x / (k + 1);
    }
    EXPECT_NEAR(regularizedLowerIncompleteGamma(n, x),
                1.0 - poisson_head, 1e-13);
}

TEST(IncompleteGamma, MonotoneInX)
{
    for (double a : {0.3, 1.0, 2.7, 10.0}) {
        double prev = -1.0;
        for (double x = 0.0; x < 40.0; x += 0.5) {
            double p = regularizedLowerIncompleteGamma(a, x);
            EXPECT_GE(p, prev - 1e-15);
            EXPECT_GE(p, 0.0);
            EXPECT_LE(p, 1.0);
            prev = p;
        }
    }
}

TEST(IncompleteGamma, ContinuousAcrossMethodBoundary)
{
    // The series/continued-fraction switch at x = a + 1 must be
    // seamless.
    for (double a : {0.4, 1.0, 3.0, 12.0}) {
        double left =
            regularizedLowerIncompleteGamma(a, a + 1.0 - 1e-9);
        double right =
            regularizedLowerIncompleteGamma(a, a + 1.0 + 1e-9);
        EXPECT_NEAR(left, right, 1e-8) << "a=" << a;
    }
}

TEST(IncompleteGamma, InputValidation)
{
    EXPECT_THROW(regularizedLowerIncompleteGamma(0.0, 1.0),
                 sdnav::ModelError);
    EXPECT_THROW(regularizedLowerIncompleteGamma(1.0, -1.0),
                 sdnav::ModelError);
}

TEST(WeibullTruncatedMean, ExponentialClosedForm)
{
    // shape 1: integral_0^T e^{-t/s} dt = s (1 - e^{-T/s}).
    double s = 5000.0;
    for (double period : {100.0, 5000.0, 50000.0}) {
        EXPECT_NEAR(weibullTruncatedMean(1.0, s, period),
                    s * (1.0 - std::exp(-period / s)),
                    1e-8 * s)
            << "T=" << period;
    }
}

TEST(WeibullTruncatedMean, FullMeanAtLargePeriod)
{
    // T >> scale recovers the full Weibull mean s Gamma(1 + 1/k).
    for (double shape : {0.7, 1.0, 2.0, 3.5}) {
        double scale = 1000.0;
        double mean = scale * std::tgamma(1.0 + 1.0 / shape);
        EXPECT_NEAR(weibullTruncatedMean(shape, scale, 1e9), mean,
                    1e-7 * mean)
            << "shape=" << shape;
    }
}

TEST(WeibullTruncatedMean, MatchesMonteCarloOfMinXT)
{
    // E[min(X, T)] estimated by sampling.
    double shape = 2.0, scale = 100.0, period = 80.0;
    Rng rng(5);
    double sum = 0.0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        double x = scale * std::pow(-std::log1p(-u), 1.0 / shape);
        sum += std::min(x, period);
    }
    EXPECT_NEAR(weibullTruncatedMean(shape, scale, period), sum / n,
                0.2);
}

TEST(WeibullTruncatedMean, ZeroPeriodIsZero)
{
    EXPECT_DOUBLE_EQ(weibullTruncatedMean(2.0, 100.0, 0.0), 0.0);
}

TEST(WeibullTruncatedMean, MonotoneAndBoundedByPeriod)
{
    double prev = 0.0;
    for (double period = 10.0; period <= 500.0; period += 10.0) {
        double v = weibullTruncatedMean(0.8, 100.0, period);
        EXPECT_GE(v, prev);
        EXPECT_LE(v, period);
        prev = v;
    }
}

} // anonymous namespace
