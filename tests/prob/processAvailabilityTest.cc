/**
 * @file
 * Tests for the supervisor-coupling derivations of paper section
 * VI.A, including the paper's quoted intermediate values.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "prob/processAvailability.hh"

namespace
{

using namespace sdnav::prob;

ProcessTimings
paperTimings()
{
    // F = 5000 h, R = 0.1 h, R_S = 1 h.
    return ProcessTimings{5000.0, 0.1, 1.0};
}

TEST(ProcessTimings, PaperAvailabilities)
{
    ProcessTimings t = paperTimings();
    EXPECT_NEAR(t.supervisedAvailability(), 0.99998, 1e-8);
    EXPECT_NEAR(t.unsupervisedAvailability(), 0.9998, 1e-7);
}

TEST(ProcessTimings, ValidationRejectsBadValues)
{
    ProcessTimings t = paperTimings();
    t.mtbfHours = 0.0;
    EXPECT_THROW(t.validate(), sdnav::ModelError);
    t = paperTimings();
    t.autoRestartHours = -0.1;
    EXPECT_THROW(t.validate(), sdnav::ModelError);
    t = paperTimings();
    t.manualRestartHours = -1.0;
    EXPECT_THROW(t.validate(), sdnav::ModelError);
}

TEST(Scenario1, PaperEffectiveRestartTime)
{
    // Paper: with a 10 h exposure window, R* = 0.102 h (approx).
    ProcessTimings t = paperTimings();
    double r_star = scenario1EffectiveRestartHours(t, 10.0);
    EXPECT_NEAR(r_star, 0.1018, 1e-4);
}

TEST(Scenario1, PaperEffectiveAvailabilityUnchanged)
{
    // Paper: A* ~= 0.99998 — not measurably impacted.
    ProcessTimings t = paperTimings();
    double a_star = scenario1EffectiveAvailability(t, 10.0);
    EXPECT_NEAR(a_star, 0.99998, 1e-6);
}

TEST(Scenario1, ZeroWindowRecoversSupervisedAvailability)
{
    ProcessTimings t = paperTimings();
    EXPECT_DOUBLE_EQ(scenario1EffectiveAvailability(t, 0.0),
                     t.supervisedAvailability());
}

TEST(Scenario1, HugeWindowDegradesTowardManual)
{
    ProcessTimings t = paperTimings();
    double a_star = scenario1EffectiveAvailability(t, 1e9);
    EXPECT_NEAR(a_star, t.unsupervisedAvailability(), 1e-9);
}

TEST(Scenario1, RestartTimeIsMonotoneInWindow)
{
    ProcessTimings t = paperTimings();
    double prev = 0.0;
    for (double w : {0.0, 1.0, 10.0, 100.0, 1000.0}) {
        double r = scenario1EffectiveRestartHours(t, w);
        EXPECT_GE(r, prev);
        prev = r;
    }
}

TEST(Scenario2, PaperEffectiveValues)
{
    // Paper: F* = 2500 h, R* = 0.55 h, A* ~= 0.9998.
    ProcessTimings t = paperTimings();
    EXPECT_NEAR(scenario2EffectiveMtbfHours(5000.0, 5000.0), 2500.0,
                1e-9);
    EXPECT_NEAR(scenario2EffectiveRestartHours(t, 5000.0), 0.55, 1e-12);
    EXPECT_NEAR(scenario2EffectiveAvailability(t, 5000.0), 0.9998,
                2e-5);
}

TEST(Scenario2, ProcessInheritsSupervisorAvailability)
{
    // The paper's punchline: under scenario 2 the effective process
    // availability is approximately A_S.
    ProcessTimings t = paperTimings();
    double a_star = scenario2EffectiveAvailability(t, 5000.0);
    double a_s = t.unsupervisedAvailability();
    EXPECT_NEAR(a_star, a_s, 5e-5);
}

TEST(Scenario2, ReliableSupervisorRecoversProcessAvailability)
{
    // As the supervisor's MTBF grows, A* -> A.
    ProcessTimings t = paperTimings();
    double a_star = scenario2EffectiveAvailability(t, 1e12);
    EXPECT_NEAR(a_star, t.supervisedAvailability(), 1e-9);
}

TEST(Scenario2, UnequalRatesWeightRestartTimes)
{
    // Supervisor failing 4x less often than the process: the manual
    // restart weight is 1/5.
    ProcessTimings t = paperTimings();
    double r_star = scenario2EffectiveRestartHours(t, 20000.0);
    double expected = (0.8 * 0.1 + 0.2 * 1.0);
    EXPECT_NEAR(r_star, expected, 1e-12);
}

TEST(Scenario2, RejectsNonPositiveSupervisorMtbf)
{
    ProcessTimings t = paperTimings();
    EXPECT_THROW(scenario2EffectiveMtbfHours(5000.0, 0.0),
                 sdnav::ModelError);
    EXPECT_THROW(scenario2EffectiveRestartHours(t, -1.0),
                 sdnav::ModelError);
}

} // anonymous namespace
