/**
 * @file
 * Tests for topology JSON serialization.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "topology/topologyIo.hh"

namespace
{

using namespace sdnav::topology;
using sdnav::ModelError;

void
expectSameLayout(const DeploymentTopology &a,
                 const DeploymentTopology &b)
{
    EXPECT_EQ(a.roleCount(), b.roleCount());
    EXPECT_EQ(a.clusterSize(), b.clusterSize());
    EXPECT_EQ(a.rackCount(), b.rackCount());
    EXPECT_EQ(a.hostCount(), b.hostCount());
    EXPECT_EQ(a.vmCount(), b.vmCount());
    for (std::size_t role = 0; role < a.roleCount(); ++role) {
        for (std::size_t node = 0; node < a.clusterSize(); ++node) {
            EXPECT_EQ(a.vmOf(role, node), b.vmOf(role, node));
            EXPECT_EQ(a.hostOf(role, node), b.hostOf(role, node));
            EXPECT_EQ(a.rackOf(role, node), b.rackOf(role, node));
        }
    }
}

TEST(TopologyIo, ReferenceTopologiesRoundTrip)
{
    for (auto kind : {ReferenceKind::Small, ReferenceKind::Medium,
                      ReferenceKind::Large}) {
        DeploymentTopology original = referenceTopology(kind);
        DeploymentTopology copy =
            topologyFromJson(topologyToJson(original));
        expectSameLayout(original, copy);
    }
}

TEST(TopologyIo, CustomTopologyRoundTrips)
{
    DeploymentTopology topo("mixed", 2, 2);
    std::size_t r0 = topo.addRack();
    std::size_t r1 = topo.addRack();
    std::size_t h0 = topo.addHost(r0);
    std::size_t h1 = topo.addHost(r1);
    topo.addVm(h0, {{0, 0}, {1, 0}});
    topo.addVm(h1, {{0, 1}});
    topo.addVm(h1, {{1, 1}});
    topo.validate();
    DeploymentTopology copy = topologyFromJson(topologyToJson(topo));
    expectSameLayout(topo, copy);
    EXPECT_EQ(copy.name(), "mixed");
    EXPECT_TRUE(copy.vmIsShared(0));
    EXPECT_FALSE(copy.vmIsShared(1));
}

TEST(TopologyIo, ReferenceFormDocument)
{
    auto value = sdnav::json::parse(
        R"({"reference": "large", "roles": 4, "nodes": 5})");
    DeploymentTopology topo = topologyFromJson(value);
    EXPECT_EQ(topo.clusterSize(), 5u);
    EXPECT_EQ(topo.rackCount(), 5u);
    EXPECT_EQ(topo.hostCount(), 20u);
}

TEST(TopologyIo, ReferenceFormDefaults)
{
    auto value = sdnav::json::parse(R"({"reference": "small"})");
    DeploymentTopology topo = topologyFromJson(value);
    EXPECT_EQ(topo.roleCount(), 4u);
    EXPECT_EQ(topo.clusterSize(), 3u);
}

TEST(TopologyIo, MalformedDocumentsRejected)
{
    using sdnav::json::parse;
    EXPECT_THROW(topologyFromJson(parse("[]")), ModelError);
    EXPECT_THROW(topologyFromJson(parse(R"({"reference":"huge"})")),
                 ModelError);
    // Incomplete placements fail validation.
    EXPECT_THROW(topologyFromJson(parse(
                     R"({"roles":2,"nodes":2,"racks":1,
                        "hosts":[0],
                        "vms":[{"host":0,"placements":[[0,0]]}]})")),
                 ModelError);
    // Non-integer indices.
    EXPECT_THROW(topologyFromJson(parse(
                     R"({"roles":1,"nodes":1,"racks":1,
                        "hosts":[0.5],
                        "vms":[{"host":0,"placements":[[0,0]]}]})")),
                 ModelError);
    // Bad placement arity.
    EXPECT_THROW(topologyFromJson(parse(
                     R"({"roles":1,"nodes":1,"racks":1,
                        "hosts":[0],
                        "vms":[{"host":0,"placements":[[0]]}]})")),
                 ModelError);
}

TEST(TopologyIo, FileRoundTrip)
{
    std::string path = testing::TempDir() + "/sdnav_topo_test.json";
    saveTopology(mediumTopology(), path);
    DeploymentTopology loaded = loadTopology(path);
    expectSameLayout(mediumTopology(), loaded);
    std::remove(path.c_str());
    EXPECT_THROW(loadTopology(path), ModelError);
}

} // anonymous namespace
