/**
 * @file
 * Tests for the deployment topologies of paper section IV.
 */

#include <set>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "topology/deployment.hh"

namespace
{

using namespace sdnav::topology;

TEST(SmallTopology, MatchesPaperFigure2)
{
    DeploymentTopology topo = smallTopology();
    EXPECT_EQ(topo.roleCount(), 4u);
    EXPECT_EQ(topo.clusterSize(), 3u);
    EXPECT_EQ(topo.rackCount(), 1u);
    EXPECT_EQ(topo.hostCount(), 3u);
    EXPECT_EQ(topo.vmCount(), 3u);
    EXPECT_TRUE(topo.hasSharedVms());
    // Every role of node i shares VM i on host i.
    for (std::size_t role = 0; role < 4; ++role) {
        for (std::size_t node = 0; node < 3; ++node) {
            EXPECT_EQ(topo.vmOf(role, node), node);
            EXPECT_EQ(topo.hostOf(role, node), node);
            EXPECT_EQ(topo.rackOf(role, node), 0u);
        }
    }
}

TEST(MediumTopology, MatchesPaperFigure2)
{
    DeploymentTopology topo = mediumTopology();
    EXPECT_EQ(topo.rackCount(), 2u);
    EXPECT_EQ(topo.hostCount(), 3u);
    EXPECT_EQ(topo.vmCount(), 12u);
    EXPECT_FALSE(topo.hasSharedVms());
    // H1, H2 in rack 1; H3 in rack 2 (paper's layout).
    EXPECT_EQ(topo.rackOfHost(0), 0u);
    EXPECT_EQ(topo.rackOfHost(1), 0u);
    EXPECT_EQ(topo.rackOfHost(2), 1u);
    // Node i's VMs all live on host i.
    for (std::size_t role = 0; role < 4; ++role) {
        for (std::size_t node = 0; node < 3; ++node)
            EXPECT_EQ(topo.hostOf(role, node), node);
    }
}

TEST(LargeTopology, MatchesPaperFigure2)
{
    DeploymentTopology topo = largeTopology();
    EXPECT_EQ(topo.rackCount(), 3u);
    EXPECT_EQ(topo.hostCount(), 12u);
    EXPECT_EQ(topo.vmCount(), 12u);
    EXPECT_FALSE(topo.hasSharedVms());
    // Each node's four hosts share the node's rack.
    for (std::size_t role = 0; role < 4; ++role) {
        for (std::size_t node = 0; node < 3; ++node) {
            EXPECT_EQ(topo.rackOf(role, node), node);
        }
    }
    // All 12 hosts are distinct.
    std::set<std::size_t> hosts;
    for (std::size_t role = 0; role < 4; ++role)
        for (std::size_t node = 0; node < 3; ++node)
            hosts.insert(topo.hostOf(role, node));
    EXPECT_EQ(hosts.size(), 12u);
}

TEST(ReferenceTopology, DispatchesByKind)
{
    EXPECT_EQ(referenceTopology(ReferenceKind::Small).name(), "Small");
    EXPECT_EQ(referenceTopology(ReferenceKind::Medium).name(),
              "Medium");
    EXPECT_EQ(referenceTopology(ReferenceKind::Large).name(), "Large");
    EXPECT_EQ(referenceKindName(ReferenceKind::Medium), "Medium");
}

TEST(Topologies, GeneralizeToLargerClusters)
{
    DeploymentTopology topo = largeTopology(4, 5);
    EXPECT_EQ(topo.clusterSize(), 5u);
    EXPECT_EQ(topo.rackCount(), 5u);
    EXPECT_EQ(topo.hostCount(), 20u);
    topo.validate();

    DeploymentTopology small = smallTopology(6, 5);
    EXPECT_EQ(small.vmCount(), 5u);
    EXPECT_EQ(small.vmPlacements(0).size(), 6u);
    small.validate();
}

TEST(MediumTopology, QuorumOfNodesSharesRackOne)
{
    DeploymentTopology topo = mediumTopology(4, 5);
    // 3 of 5 hosts in rack 0, 2 in rack 1.
    unsigned in_rack0 = 0;
    for (std::size_t h = 0; h < topo.hostCount(); ++h) {
        if (topo.rackOfHost(h) == 0)
            ++in_rack0;
    }
    EXPECT_EQ(in_rack0, 3u);
}

TEST(RackSweep, DistributesNodesRoundRobin)
{
    DeploymentTopology one = rackSweepTopology(1);
    EXPECT_EQ(one.rackCount(), 1u);
    for (std::size_t node = 0; node < 3; ++node)
        EXPECT_EQ(one.rackOf(0, node), 0u);

    DeploymentTopology two = rackSweepTopology(2);
    EXPECT_EQ(two.rackOf(0, 0), 0u);
    EXPECT_EQ(two.rackOf(0, 1), 1u);
    EXPECT_EQ(two.rackOf(0, 2), 0u);

    DeploymentTopology three = rackSweepTopology(3);
    EXPECT_EQ(three.rackCount(), 3u);
    for (std::size_t node = 0; node < 3; ++node)
        EXPECT_EQ(three.rackOf(0, node), node);
}

TEST(CustomTopology, BuilderValidations)
{
    DeploymentTopology topo("custom", 2, 2);
    std::size_t rack = topo.addRack();
    std::size_t host = topo.addHost(rack);
    EXPECT_THROW(topo.addHost(9), sdnav::ModelError);
    EXPECT_THROW(topo.addVm(9, {{0, 0}}), sdnav::ModelError);
    EXPECT_THROW(topo.addVm(host, {}), sdnav::ModelError);
    EXPECT_THROW(topo.addVm(host, {{5, 0}}), sdnav::ModelError);
    EXPECT_THROW(topo.addVm(host, {{0, 5}}), sdnav::ModelError);
    topo.addVm(host, {{0, 0}, {0, 1}, {1, 0}});
    // Double placement rejected.
    EXPECT_THROW(topo.addVm(host, {{0, 0}}), sdnav::ModelError);
    // Incomplete placement fails validation.
    EXPECT_THROW(topo.validate(), sdnav::ModelError);
    topo.addVm(host, {{1, 1}});
    EXPECT_NO_THROW(topo.validate());
}

TEST(CustomTopology, QueriesRejectUnplacedInstances)
{
    DeploymentTopology topo("partial", 1, 2);
    std::size_t rack = topo.addRack();
    std::size_t host = topo.addHost(rack);
    topo.addVm(host, {{0, 0}});
    EXPECT_EQ(topo.vmOf(0, 0), 0u);
    EXPECT_THROW(topo.vmOf(0, 1), sdnav::ModelError);
    EXPECT_THROW(topo.vmOf(3, 0), sdnav::ModelError);
}

TEST(Topology, DescribeIsHumanReadable)
{
    DeploymentTopology topo = smallTopology();
    std::string text = topo.describe();
    EXPECT_NE(text.find("Small"), std::string::npos);
    EXPECT_NE(text.find("VM0"), std::string::npos);
    EXPECT_NE(text.find("rack0"), std::string::npos);
}

TEST(Topology, ConstructorValidation)
{
    EXPECT_THROW(DeploymentTopology("x", 0, 3), sdnav::ModelError);
    EXPECT_THROW(DeploymentTopology("x", 4, 0), sdnav::ModelError);
}

} // anonymous namespace
