/**
 * @file
 * The OpenContrail 3.x catalog must reproduce the paper's Tables
 * I-III exactly.
 */

#include <gtest/gtest.h>

#include "fmea/openContrail.hh"

namespace
{

using namespace sdnav::fmea;

TEST(OpenContrail, RoleInventory)
{
    ControllerCatalog catalog = openContrail3();
    ASSERT_EQ(catalog.roles().size(), 4u);
    EXPECT_EQ(catalog.role(0).name, "Config");
    EXPECT_EQ(catalog.role(1).name, "Control");
    EXPECT_EQ(catalog.role(2).name, "Analytics");
    EXPECT_EQ(catalog.role(3).name, "Database");
    EXPECT_EQ(catalog.role(0).tag, 'G');
    EXPECT_EQ(catalog.role(3).tag, 'D');
}

TEST(OpenContrail, ProcessCountsPerRole)
{
    ControllerCatalog catalog = openContrail3();
    EXPECT_EQ(catalog.role(0).processes.size(), 6u); // Config
    EXPECT_EQ(catalog.role(1).processes.size(), 3u); // Control
    EXPECT_EQ(catalog.role(2).processes.size(), 5u); // Analytics
    EXPECT_EQ(catalog.role(3).processes.size(), 4u); // Database
}

TEST(OpenContrail, TableTwoRestartModeCounts)
{
    // Paper Table II: Auto 6/3/4/0, Manual 0/0/1/4.
    ControllerCatalog catalog = openContrail3();
    unsigned expected_auto[] = {6, 3, 4, 0};
    unsigned expected_manual[] = {0, 0, 1, 4};
    for (std::size_t r = 0; r < 4; ++r) {
        RestartCounts counts = catalog.restartCounts(r);
        EXPECT_EQ(counts.autoRestart, expected_auto[r]) << "role " << r;
        EXPECT_EQ(counts.manualRestart, expected_manual[r])
            << "role " << r;
    }
}

TEST(OpenContrail, TableThreeControlPlaneCounts)
{
    // Paper Table III SDN CP: M = 0/0/0/4, N = 6/1/5/0, sums 4 and 12.
    ControllerCatalog catalog = openContrail3();
    unsigned expected_m[] = {0, 0, 0, 4};
    unsigned expected_n[] = {6, 1, 5, 0};
    for (std::size_t r = 0; r < 4; ++r) {
        QuorumCounts counts = catalog.quorumCounts(r, Plane::ControlPlane);
        EXPECT_EQ(counts.majority, expected_m[r]) << "role " << r;
        EXPECT_EQ(counts.anyOne, expected_n[r]) << "role " << r;
    }
    EXPECT_EQ(catalog.totalMajorityBlocks(Plane::ControlPlane), 4u);
    EXPECT_EQ(catalog.totalAnyOneBlocks(Plane::ControlPlane), 12u);
}

TEST(OpenContrail, TableThreeDataPlaneCounts)
{
    // Paper Table III Host DP: M = 0 everywhere, N = 1 (Config,
    // discovery) and 1 (Control, the {control+dns+named} block).
    ControllerCatalog catalog = openContrail3();
    unsigned expected_n[] = {1, 1, 0, 0};
    for (std::size_t r = 0; r < 4; ++r) {
        QuorumCounts counts = catalog.quorumCounts(r, Plane::DataPlane);
        EXPECT_EQ(counts.majority, 0u) << "role " << r;
        EXPECT_EQ(counts.anyOne, expected_n[r]) << "role " << r;
    }
    EXPECT_EQ(catalog.totalMajorityBlocks(Plane::DataPlane), 0u);
    EXPECT_EQ(catalog.totalAnyOneBlocks(Plane::DataPlane), 2u);
}

TEST(OpenContrail, ControlDnsNamedFormOneDpBlock)
{
    ControllerCatalog catalog = openContrail3();
    auto blocks = catalog.planeBlocks(1, Plane::DataPlane);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].name, "control+dns+named");
    EXPECT_EQ(blocks[0].memberProcesses.size(), 3u);
    EXPECT_EQ(blocks[0].quorum, QuorumClass::AnyOne);
}

TEST(OpenContrail, ControlPlaneBlocksAreAllSingletons)
{
    ControllerCatalog catalog = openContrail3();
    for (std::size_t r = 0; r < 4; ++r) {
        for (const QuorumBlock &block :
             catalog.planeBlocks(r, Plane::ControlPlane)) {
            EXPECT_EQ(block.memberProcesses.size(), 1u)
                << block.name;
        }
    }
}

TEST(OpenContrail, DatabaseProcessesAreManualMajority)
{
    ControllerCatalog catalog = openContrail3();
    for (const ProcessSpec &proc : catalog.role(3).processes) {
        EXPECT_EQ(proc.restart, RestartMode::Manual) << proc.name;
        EXPECT_EQ(proc.cpQuorum, QuorumClass::Majority) << proc.name;
        EXPECT_EQ(proc.dpQuorum, QuorumClass::None) << proc.name;
    }
}

TEST(OpenContrail, RedisIsTheOnlyManualAnalyticsProcess)
{
    ControllerCatalog catalog = openContrail3();
    for (const ProcessSpec &proc : catalog.role(2).processes) {
        if (proc.name == "redis")
            EXPECT_EQ(proc.restart, RestartMode::Manual);
        else
            EXPECT_EQ(proc.restart, RestartMode::Auto) << proc.name;
    }
}

TEST(OpenContrail, VRouterProcessesAreBothRequired)
{
    // Paper: K = 2 (vrouter-agent and vrouter-dpdk, both "1 of 1").
    ControllerCatalog catalog = openContrail3();
    EXPECT_EQ(catalog.hostProcesses().size(), 2u);
    EXPECT_EQ(catalog.requiredHostProcessCount(), 2u);
    EXPECT_EQ(catalog.hostProcesses()[0].name, "vrouter-agent");
    EXPECT_EQ(catalog.hostProcesses()[1].name, "vrouter-dpdk");
}

TEST(OpenContrail, DiscoveryIsDpRelevantConfigProcess)
{
    ControllerCatalog catalog = openContrail3();
    auto blocks = catalog.planeBlocks(0, Plane::DataPlane);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].name, "discovery");
}

TEST(OpenContrail, EveryProcessHasFailureEffectProse)
{
    ControllerCatalog catalog = openContrail3();
    for (const RoleSpec &role : catalog.roles()) {
        for (const ProcessSpec &proc : role.processes)
            EXPECT_FALSE(proc.failureEffect.empty()) << proc.name;
    }
    for (const HostProcessSpec &proc : catalog.hostProcesses())
        EXPECT_FALSE(proc.failureEffect.empty()) << proc.name;
}

TEST(AlternativeCatalogs, ValidateAndDiffer)
{
    ControllerCatalog raft = raftStyleController();
    EXPECT_EQ(raft.roles().size(), 2u);
    EXPECT_GT(raft.totalMajorityBlocks(Plane::ControlPlane), 0u);

    ControllerCatalog fragile = fragileController();
    EXPECT_EQ(fragile.roles().size(), 1u);
    // Fragile controller's DP depends on majority quorums: worst case.
    EXPECT_GT(fragile.totalMajorityBlocks(Plane::DataPlane), 0u);
}

} // anonymous namespace
