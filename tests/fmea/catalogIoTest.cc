/**
 * @file
 * Tests for catalog JSON serialization.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "fmea/catalogIo.hh"
#include "fmea/openContrail.hh"

namespace
{

using namespace sdnav::fmea;
using sdnav::ModelError;

TEST(CatalogIo, EnumStringsRoundTrip)
{
    for (auto mode : {RestartMode::Auto, RestartMode::Manual}) {
        EXPECT_EQ(restartModeFromString(restartModeToString(mode)),
                  mode);
    }
    for (auto quorum : {QuorumClass::None, QuorumClass::AnyOne,
                        QuorumClass::Majority}) {
        EXPECT_EQ(quorumClassFromString(quorumClassToString(quorum)),
                  quorum);
    }
    EXPECT_THROW(restartModeFromString("sometimes"), ModelError);
    EXPECT_THROW(quorumClassFromString("all"), ModelError);
}

TEST(CatalogIo, OpenContrailRoundTripsExactly)
{
    ControllerCatalog original = openContrail3();
    ControllerCatalog copy =
        catalogFromJson(catalogToJson(original));

    EXPECT_EQ(copy.name(), original.name());
    ASSERT_EQ(copy.roles().size(), original.roles().size());
    for (std::size_t r = 0; r < original.roles().size(); ++r) {
        const RoleSpec &a = original.role(r);
        const RoleSpec &b = copy.role(r);
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.tag, b.tag);
        ASSERT_EQ(a.processes.size(), b.processes.size());
        for (std::size_t p = 0; p < a.processes.size(); ++p) {
            EXPECT_EQ(a.processes[p].name, b.processes[p].name);
            EXPECT_EQ(a.processes[p].restart, b.processes[p].restart);
            EXPECT_EQ(a.processes[p].cpQuorum,
                      b.processes[p].cpQuorum);
            EXPECT_EQ(a.processes[p].dpQuorum,
                      b.processes[p].dpQuorum);
            EXPECT_EQ(a.processes[p].dpBlock, b.processes[p].dpBlock);
            EXPECT_EQ(a.processes[p].failureEffect,
                      b.processes[p].failureEffect);
        }
    }
    ASSERT_EQ(copy.hostProcesses().size(),
              original.hostProcesses().size());
    for (std::size_t p = 0; p < original.hostProcesses().size(); ++p) {
        EXPECT_EQ(copy.hostProcesses()[p].name,
                  original.hostProcesses()[p].name);
        EXPECT_EQ(copy.hostProcesses()[p].requiredForDp,
                  original.hostProcesses()[p].requiredForDp);
    }
}

TEST(CatalogIo, DerivedTablesSurviveRoundTrip)
{
    ControllerCatalog copy =
        catalogFromJson(catalogToJson(openContrail3()));
    // Table III sums must be intact, block grouping included.
    EXPECT_EQ(copy.totalMajorityBlocks(Plane::ControlPlane), 4u);
    EXPECT_EQ(copy.totalAnyOneBlocks(Plane::ControlPlane), 12u);
    EXPECT_EQ(copy.totalAnyOneBlocks(Plane::DataPlane), 2u);
    auto blocks = copy.planeBlocks(1, Plane::DataPlane);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].memberProcesses.size(), 3u);
}

TEST(CatalogIo, MinimalDocumentWithDefaults)
{
    auto value = sdnav::json::parse(R"({
        "name": "mini",
        "roles": [
          { "name": "Core",
            "processes": [ { "name": "p", "cp": "any-one" } ] }
        ]
    })");
    ControllerCatalog catalog = catalogFromJson(value);
    EXPECT_EQ(catalog.name(), "mini");
    EXPECT_EQ(catalog.role(0).processes[0].restart, RestartMode::Auto);
    EXPECT_EQ(catalog.role(0).processes[0].dpQuorum,
              QuorumClass::None);
    EXPECT_TRUE(catalog.hostProcesses().empty());
}

TEST(CatalogIo, MalformedDocumentsRejected)
{
    EXPECT_THROW(catalogFromJson(sdnav::json::parse("[]")),
                 ModelError);
    EXPECT_THROW(catalogFromJson(sdnav::json::parse(R"({"name":"x"})")),
                 ModelError);
    // A role without a name.
    EXPECT_THROW(
        catalogFromJson(sdnav::json::parse(
            R"({"name":"x","roles":[{"processes":[]}]})")),
        ModelError);
    // Invalid quorum string.
    EXPECT_THROW(
        catalogFromJson(sdnav::json::parse(
            R"({"name":"x","roles":[{"name":"R","processes":
                [{"name":"p","cp":"some"}]}]})")),
        ModelError);
}

TEST(CatalogIo, ValidationRunsOnLoad)
{
    // Duplicate process names must be rejected by validate().
    EXPECT_THROW(
        catalogFromJson(sdnav::json::parse(
            R"({"name":"x","roles":[{"name":"R","processes":
                [{"name":"p"},{"name":"p"}]}]})")),
        ModelError);
}

TEST(CatalogIo, FileRoundTrip)
{
    std::string path = testing::TempDir() + "/sdnav_catalog_test.json";
    saveCatalog(raftStyleController(), path);
    ControllerCatalog loaded = loadCatalog(path);
    EXPECT_EQ(loaded.name(), "Raft-style monolithic controller");
    EXPECT_EQ(loaded.roles().size(), 2u);
    std::remove(path.c_str());
    EXPECT_THROW(loadCatalog(path), ModelError);
}

} // anonymous namespace
