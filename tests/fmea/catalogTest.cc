/**
 * @file
 * Tests for the controller catalog machinery.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "fmea/catalog.hh"

namespace
{

using namespace sdnav::fmea;

ControllerCatalog
tinyCatalog()
{
    ControllerCatalog catalog("tiny");
    RoleSpec role;
    role.name = "Core";
    role.tag = 'X';
    role.processes = {
        {"alpha", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "", ""},
        {"beta", RestartMode::Manual, QuorumClass::Majority,
         QuorumClass::None, "", "", ""},
        {"gamma", RestartMode::Auto, QuorumClass::None,
         QuorumClass::AnyOne, "pair", "", ""},
        {"delta", RestartMode::Auto, QuorumClass::None,
         QuorumClass::AnyOne, "pair", "", ""},
    };
    catalog.addRole(std::move(role));
    catalog.addHostProcess({"fwd", RestartMode::Auto, true, ""});
    catalog.addHostProcess({"helper", RestartMode::Auto, false, ""});
    return catalog;
}

TEST(RequiredCount, QuorumClassesAtClusterSizes)
{
    EXPECT_EQ(requiredCount(QuorumClass::None, 3), 0u);
    EXPECT_EQ(requiredCount(QuorumClass::AnyOne, 3), 1u);
    EXPECT_EQ(requiredCount(QuorumClass::Majority, 3), 2u);
    EXPECT_EQ(requiredCount(QuorumClass::Majority, 5), 3u);
    EXPECT_EQ(requiredCount(QuorumClass::Majority, 9), 5u);
    EXPECT_EQ(requiredCount(QuorumClass::Majority, 1), 1u);
    EXPECT_THROW(requiredCount(QuorumClass::AnyOne, 0),
                 sdnav::ModelError);
}

TEST(QuorumNotation, RendersPaperStyle)
{
    EXPECT_EQ(quorumNotation(QuorumClass::None, 3), "0 of 3");
    EXPECT_EQ(quorumNotation(QuorumClass::AnyOne, 3), "1 of 3");
    EXPECT_EQ(quorumNotation(QuorumClass::Majority, 3), "2 of 3");
    EXPECT_EQ(quorumNotation(QuorumClass::Majority, 5), "3 of 5");
}

TEST(Catalog, RoleAccessors)
{
    ControllerCatalog catalog = tinyCatalog();
    EXPECT_EQ(catalog.name(), "tiny");
    EXPECT_EQ(catalog.roles().size(), 1u);
    EXPECT_EQ(catalog.role(0).name, "Core");
    EXPECT_THROW(catalog.role(1), sdnav::ModelError);
}

TEST(Catalog, RequiredHostProcessCountHonorsFlag)
{
    ControllerCatalog catalog = tinyCatalog();
    EXPECT_EQ(catalog.requiredHostProcessCount(), 1u);
}

TEST(Catalog, CpBlocksAreSingletons)
{
    ControllerCatalog catalog = tinyCatalog();
    auto blocks = catalog.planeBlocks(0, Plane::ControlPlane);
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_EQ(blocks[0].name, "alpha");
    EXPECT_EQ(blocks[0].quorum, QuorumClass::AnyOne);
    EXPECT_EQ(blocks[0].memberProcesses.size(), 1u);
    EXPECT_EQ(blocks[1].name, "beta");
    EXPECT_EQ(blocks[1].quorum, QuorumClass::Majority);
}

TEST(Catalog, DpBlockGroupsSharedMembers)
{
    ControllerCatalog catalog = tinyCatalog();
    auto blocks = catalog.planeBlocks(0, Plane::DataPlane);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].name, "pair");
    ASSERT_EQ(blocks[0].memberProcesses.size(), 2u);
    EXPECT_EQ(blocks[0].memberProcesses[0], 2u);
    EXPECT_EQ(blocks[0].memberProcesses[1], 3u);
}

TEST(Catalog, InconsistentBlockQuorumRejected)
{
    ControllerCatalog catalog("bad");
    RoleSpec role;
    role.name = "R";
    role.processes = {
        {"a", RestartMode::Auto, QuorumClass::None, QuorumClass::AnyOne,
         "blk", "", ""},
        {"b", RestartMode::Auto, QuorumClass::None,
         QuorumClass::Majority, "blk", "", ""},
    };
    catalog.addRole(std::move(role));
    EXPECT_THROW(catalog.planeBlocks(0, Plane::DataPlane),
                 sdnav::ModelError);
    EXPECT_THROW(catalog.validate(), sdnav::ModelError);
}

TEST(Catalog, RestartCounts)
{
    ControllerCatalog catalog = tinyCatalog();
    RestartCounts counts = catalog.restartCounts(0);
    EXPECT_EQ(counts.autoRestart, 3u);
    EXPECT_EQ(counts.manualRestart, 1u);
}

TEST(Catalog, QuorumCountsPerPlane)
{
    ControllerCatalog catalog = tinyCatalog();
    QuorumCounts cp = catalog.quorumCounts(0, Plane::ControlPlane);
    EXPECT_EQ(cp.majority, 1u);
    EXPECT_EQ(cp.anyOne, 1u);
    QuorumCounts dp = catalog.quorumCounts(0, Plane::DataPlane);
    EXPECT_EQ(dp.majority, 0u);
    EXPECT_EQ(dp.anyOne, 1u);
}

TEST(Catalog, TotalsAcrossRoles)
{
    ControllerCatalog catalog = tinyCatalog();
    EXPECT_EQ(catalog.totalMajorityBlocks(Plane::ControlPlane), 1u);
    EXPECT_EQ(catalog.totalAnyOneBlocks(Plane::ControlPlane), 1u);
    EXPECT_EQ(catalog.totalAnyOneBlocks(Plane::DataPlane), 1u);
}

TEST(Catalog, ValidateRejectsDuplicates)
{
    ControllerCatalog catalog("dups");
    RoleSpec role;
    role.name = "R";
    role.processes = {
        {"same", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "", ""},
        {"same", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "", ""},
    };
    catalog.addRole(std::move(role));
    EXPECT_THROW(catalog.validate(), sdnav::ModelError);

    ControllerCatalog catalog2("dup-roles");
    RoleSpec a;
    a.name = "R";
    a.processes = {{"p", RestartMode::Auto, QuorumClass::AnyOne,
                    QuorumClass::None, "", "", ""}};
    catalog2.addRole(a);
    catalog2.addRole(a);
    EXPECT_THROW(catalog2.validate(), sdnav::ModelError);
}

TEST(Catalog, ValidateRejectsEmptyCatalogAndNames)
{
    ControllerCatalog empty("empty");
    EXPECT_THROW(empty.validate(), sdnav::ModelError);
    ControllerCatalog catalog("x");
    RoleSpec role;
    EXPECT_THROW(catalog.addRole(role), sdnav::ModelError);
    EXPECT_THROW(catalog.addHostProcess({"", RestartMode::Auto, true,
                                         ""}),
                 sdnav::ModelError);
}

TEST(Catalog, DuplicateHostProcessRejected)
{
    ControllerCatalog catalog = tinyCatalog();
    catalog.addHostProcess({"fwd", RestartMode::Auto, true, ""});
    EXPECT_THROW(catalog.validate(), sdnav::ModelError);
}

TEST(Catalog, BlockOrderingFollowsDeclaration)
{
    // The shared block appears at the position of its first member.
    ControllerCatalog catalog("order");
    RoleSpec role;
    role.name = "R";
    role.processes = {
        {"first", RestartMode::Auto, QuorumClass::None,
         QuorumClass::AnyOne, "grp", "", ""},
        {"solo", RestartMode::Auto, QuorumClass::None,
         QuorumClass::AnyOne, "", "", ""},
        {"second", RestartMode::Auto, QuorumClass::None,
         QuorumClass::AnyOne, "grp", "", ""},
    };
    catalog.addRole(std::move(role));
    auto blocks = catalog.planeBlocks(0, Plane::DataPlane);
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_EQ(blocks[0].name, "grp");
    EXPECT_EQ(blocks[0].memberProcesses.size(), 2u);
    EXPECT_EQ(blocks[1].name, "solo");
}

} // anonymous namespace
