/**
 * @file
 * Tests for the OpenDaylight-like and ONOS-like catalogs, including
 * cross-validation of the analysis pipeline on their shapes.
 */

#include <gtest/gtest.h>

#include "fmea/otherControllers.hh"
#include "model/exactModel.hh"
#include "model/swCentric.hh"

namespace
{

using namespace sdnav::fmea;
namespace model = sdnav::model;
namespace topology = sdnav::topology;

TEST(OpenDaylightLike, CatalogShape)
{
    ControllerCatalog catalog = openDaylightLike();
    ASSERT_EQ(catalog.roles().size(), 2u);
    EXPECT_EQ(catalog.role(0).name, "Controller");
    EXPECT_EQ(catalog.role(1).name, "Frontend");
    EXPECT_EQ(catalog.requiredHostProcessCount(), 2u);
}

TEST(OpenDaylightLike, QuorumCounts)
{
    ControllerCatalog catalog = openDaylightLike();
    QuorumCounts cp = catalog.quorumCounts(0, Plane::ControlPlane);
    EXPECT_EQ(cp.majority, 1u); // mdsal-shard.
    EXPECT_EQ(cp.anyOne, 2u);   // karaf and openflow-plugin (the
                                // co-location block applies to the
                                // DP only).
    QuorumCounts dp = catalog.quorumCounts(0, Plane::DataPlane);
    EXPECT_EQ(dp.majority, 0u);
    EXPECT_EQ(dp.anyOne, 1u); // The {karaf+plugin} block.
}

TEST(OpenDaylightLike, KarafAndPluginFormDpBlock)
{
    ControllerCatalog catalog = openDaylightLike();
    auto blocks = catalog.planeBlocks(0, Plane::DataPlane);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0].name, "node-core");
    EXPECT_EQ(blocks[0].memberProcesses.size(), 2u);
}

TEST(OnosLike, CatalogShape)
{
    ControllerCatalog catalog = onosLike();
    ASSERT_EQ(catalog.roles().size(), 3u);
    EXPECT_EQ(catalog.role(0).name, "Atomix");
    EXPECT_EQ(catalog.totalMajorityBlocks(Plane::ControlPlane), 1u);
    EXPECT_EQ(catalog.requiredHostProcessCount(), 1u);
}

TEST(OtherControllers, EngineMatchesExactModel)
{
    model::SwParams params;
    params.processAvailability = 0.995;
    params.manualProcessAvailability = 0.98;
    for (auto *make : {&openDaylightLike, &onosLike}) {
        ControllerCatalog catalog = (*make)();
        std::size_t roles = catalog.roles().size();
        for (auto kind : {topology::ReferenceKind::Small,
                          topology::ReferenceKind::Large}) {
            auto topo = topology::referenceTopology(kind, roles);
            for (auto plane :
                 {Plane::ControlPlane, Plane::DataPlane}) {
                model::SwAvailabilityModel engine(
                    catalog, topo, model::SupervisorPolicy::Required);
                double closed =
                    engine.planeAvailability(params, plane);
                double exact = model::exactPlaneAvailability(
                    catalog, topo, model::SupervisorPolicy::Required,
                    params, plane);
                EXPECT_NEAR(closed, exact, 1e-12) << catalog.name();
            }
        }
    }
}

TEST(OtherControllers, OnosDpBeatsContrailStyleTwoProcessHosts)
{
    // One required host process vs two: ONOS-like DP availability is
    // strictly higher on identical parameters.
    model::SwParams params;
    ControllerCatalog odl = openDaylightLike();
    ControllerCatalog onos = onosLike();
    model::SwAvailabilityModel odl_model(
        odl, topology::largeTopology(odl.roles().size()),
        model::SupervisorPolicy::Required);
    model::SwAvailabilityModel onos_model(
        onos, topology::largeTopology(onos.roles().size()),
        model::SupervisorPolicy::Required);
    EXPECT_GT(onos_model.localDataPlaneAvailability(params),
              odl_model.localDataPlaneAvailability(params));
}

TEST(OtherControllers, QuorumStoreSetsTheCpFloor)
{
    // Degrading only the majority-quorum store (via A_S for ONOS's
    // auto-restart Atomix? Atomix is auto => A) — use process
    // availability: dropping A must hit the ONOS CP through Atomix
    // pairs.
    model::SwParams good;
    model::SwParams bad = good;
    bad.processAvailability = 0.999;
    ControllerCatalog onos = onosLike();
    model::SwAvailabilityModel m(
        onos, topology::largeTopology(onos.roles().size()),
        model::SupervisorPolicy::NotRequired);
    EXPECT_LT(m.controlPlaneAvailability(bad),
              m.controlPlaneAvailability(good));
}

} // anonymous namespace
