/**
 * @file
 * Tests for the table/report renderers that regenerate the paper's
 * Tables I-III.
 */

#include <gtest/gtest.h>

#include "fmea/openContrail.hh"
#include "fmea/report.hh"

namespace
{

using namespace sdnav::fmea;

TEST(TableOne, ListsEveryProcessRow)
{
    ControllerCatalog catalog = openContrail3();
    auto table = nodeProcessTable(catalog);
    // 18 node processes + 2 vRouter processes.
    EXPECT_EQ(table.rowCount(), 20u);
    std::string out = table.str();
    EXPECT_NE(out.find("config-api"), std::string::npos);
    EXPECT_NE(out.find("zookeeper"), std::string::npos);
    EXPECT_NE(out.find("vrouter-dpdk"), std::string::npos);
}

TEST(TableOne, ShowsPaperQuorumNotation)
{
    ControllerCatalog catalog = openContrail3();
    std::string out = nodeProcessTable(catalog).str();
    EXPECT_NE(out.find("2 of 3"), std::string::npos); // Database rows.
    EXPECT_NE(out.find("1 of 3"), std::string::npos);
    EXPECT_NE(out.find("0 of 3"), std::string::npos);
    EXPECT_NE(out.find("1 of 1"), std::string::npos); // vRouter rows.
}

TEST(TableOne, ScalesQuorumNotationWithClusterSize)
{
    ControllerCatalog catalog = openContrail3();
    std::string out = nodeProcessTable(catalog, 5).str();
    EXPECT_NE(out.find("3 of 5"), std::string::npos);
    EXPECT_EQ(out.find("2 of 3"), std::string::npos);
}

TEST(TableTwo, MatchesPaperCounts)
{
    ControllerCatalog catalog = openContrail3();
    std::string out = restartModeTable(catalog).str();
    // The Auto row: 6 3 4 0; the Manual row: 0 0 1 4.
    EXPECT_NE(out.find("Auto"), std::string::npos);
    EXPECT_NE(out.find("Manual"), std::string::npos);
    EXPECT_NE(out.find("6"), std::string::npos);
    auto auto_pos = out.find("Auto");
    auto manual_pos = out.find("Manual");
    EXPECT_LT(auto_pos, manual_pos);
}

TEST(TableThree, IncludesSumsRow)
{
    ControllerCatalog catalog = openContrail3();
    auto table = quorumTypeTable(catalog);
    // 4 role rows + 1 sums row.
    EXPECT_EQ(table.rowCount(), 5u);
    std::string out = table.str();
    EXPECT_NE(out.find("Sums"), std::string::npos);
    EXPECT_NE(out.find("Config G"), std::string::npos);
    EXPECT_NE(out.find("Database D"), std::string::npos);
}

TEST(FmeaReport, ContainsRolesProcessesAndEffects)
{
    ControllerCatalog catalog = openContrail3();
    std::string report = fmeaReport(catalog);
    EXPECT_NE(report.find("FMEA report: OpenContrail 3.x"),
              std::string::npos);
    EXPECT_NE(report.find("Role Config (G)"), std::string::npos);
    EXPECT_NE(report.find("BGP forwarding tables are flushed"),
              std::string::npos);
    EXPECT_NE(report.find("DP block 'control+dns+named'"),
              std::string::npos);
    EXPECT_NE(report.find("Per-host vRouter processes"),
              std::string::npos);
}

TEST(FmeaReport, WorksForAlternativeCatalogs)
{
    std::string report = fmeaReport(raftStyleController());
    EXPECT_NE(report.find("raft-consensus"), std::string::npos);
    EXPECT_NE(report.find("manual restart"), std::string::npos);
}

} // anonymous namespace
