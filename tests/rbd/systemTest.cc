/**
 * @file
 * Tests for RbdSystem: the three evaluation engines must agree with
 * each other and with hand-computed values, and the importance
 * measures must identify the structural weak links.
 */

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "rbd/system.hh"

namespace
{

using namespace sdnav::rbd;

RbdSystem
twoOfThreeSystem(double a)
{
    RbdSystem system;
    ComponentId c0 = system.addComponent("c0", a);
    ComponentId c1 = system.addComponent("c1", a);
    ComponentId c2 = system.addComponent("c2", a);
    system.setRoot(kOfN(2, {component(c0), component(c1),
                            component(c2)}));
    return system;
}

TEST(RbdSystem, SeriesFormula)
{
    RbdSystem system;
    ComponentId a = system.addComponent("a", 0.9);
    ComponentId b = system.addComponent("b", 0.8);
    system.setRoot(series({component(a), component(b)}));
    EXPECT_NEAR(system.availabilityFormula(), 0.72, 1e-15);
    EXPECT_NEAR(system.availabilityExact(), 0.72, 1e-15);
}

TEST(RbdSystem, ParallelFormula)
{
    RbdSystem system;
    ComponentId a = system.addComponent("a", 0.9);
    ComponentId b = system.addComponent("b", 0.8);
    system.setRoot(parallel({component(a), component(b)}));
    EXPECT_NEAR(system.availabilityFormula(), 0.98, 1e-15);
    EXPECT_NEAR(system.availabilityExact(), 0.98, 1e-15);
}

TEST(RbdSystem, TwoOfThreeMatchesClosedForm)
{
    double a = 0.9995;
    RbdSystem system = twoOfThreeSystem(a);
    double expected = a * a * (3.0 - 2.0 * a);
    EXPECT_NEAR(system.availabilityFormula(), expected, 1e-15);
    EXPECT_NEAR(system.availabilityExact(), expected, 1e-15);
}

TEST(RbdSystem, HeterogeneousKofNPoissonBinomial)
{
    RbdSystem system;
    ComponentId a = system.addComponent("a", 0.9);
    ComponentId b = system.addComponent("b", 0.8);
    ComponentId c = system.addComponent("c", 0.7);
    system.setRoot(kOfN(2, {component(a), component(b), component(c)}));
    // P[>=2 up] enumerated by hand.
    double expected = 0.9 * 0.8 * 0.7 + 0.9 * 0.8 * 0.3 +
                      0.9 * 0.2 * 0.7 + 0.1 * 0.8 * 0.7;
    EXPECT_NEAR(system.availabilityFormula(), expected, 1e-15);
    EXPECT_NEAR(system.availabilityExact(), expected, 1e-15);
}

TEST(RbdSystem, SharedComponentDetected)
{
    RbdSystem system;
    ComponentId host = system.addComponent("host", 0.999);
    ComponentId p = system.addComponent("p", 0.99);
    ComponentId q = system.addComponent("q", 0.99);
    // Both process blocks depend on the same host.
    system.setRoot(parallel({series({component(p), component(host)}),
                             series({component(q), component(host)})}));
    EXPECT_TRUE(system.hasSharedComponents());
    EXPECT_THROW(system.availabilityFormula(), sdnav::ModelError);
    // Exact value: host * (1 - (1-p)(1-q)).
    double expected = 0.999 * (1.0 - 0.01 * 0.01);
    EXPECT_NEAR(system.availabilityExact(), expected, 1e-15);
}

TEST(RbdSystem, NoSharingDetectedOnTree)
{
    RbdSystem system = twoOfThreeSystem(0.9);
    EXPECT_FALSE(system.hasSharedComponents());
}

TEST(RbdSystem, FormulaAndExactAgreeOnDeepTree)
{
    RbdSystem system;
    std::vector<Block> groups;
    for (int g = 0; g < 4; ++g) {
        std::vector<Block> members;
        for (int i = 0; i < 3; ++i) {
            ComponentId id = system.addComponent(
                "c" + std::to_string(g) + std::to_string(i),
                0.9 + 0.02 * g + 0.01 * i);
            members.push_back(component(id));
        }
        groups.push_back(kOfN(2, std::move(members)));
    }
    system.setRoot(series(std::move(groups)));
    EXPECT_NEAR(system.availabilityFormula(),
                system.availabilityExact(), 1e-14);
}

TEST(RbdSystem, MonteCarloBracketsExactValue)
{
    RbdSystem system = twoOfThreeSystem(0.95);
    sdnav::prob::Rng rng(12345);
    MonteCarloResult mc = system.availabilityMonteCarlo(200000, rng);
    double exact = system.availabilityExact();
    EXPECT_TRUE(mc.brackets(exact))
        << "estimate " << mc.estimate << " +- " << mc.standardError
        << " vs exact " << exact;
    EXPECT_EQ(mc.samples, 200000u);
    EXPECT_GT(mc.standardError, 0.0);
}

TEST(RbdSystem, MonteCarloIsDeterministicPerSeed)
{
    RbdSystem system = twoOfThreeSystem(0.9);
    sdnav::prob::Rng rng1(7), rng2(7);
    auto a = system.availabilityMonteCarlo(10000, rng1);
    auto b = system.availabilityMonteCarlo(10000, rng2);
    EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
}

TEST(RbdSystem, SetAvailabilityAffectsResults)
{
    RbdSystem system = twoOfThreeSystem(0.9);
    double before = system.availabilityExact();
    system.setComponentAvailability(0, 0.5);
    double after = system.availabilityExact();
    EXPECT_LT(after, before);
    EXPECT_DOUBLE_EQ(system.componentAvailability(0), 0.5);
}

TEST(RbdSystem, BirnbaumOfSeriesComponent)
{
    // In a 2-component series, dA/da_0 = a_1.
    RbdSystem system;
    ComponentId a = system.addComponent("a", 0.9);
    ComponentId b = system.addComponent("b", 0.8);
    system.setRoot(series({component(a), component(b)}));
    EXPECT_NEAR(system.birnbaumImportance(a), 0.8, 1e-15);
    EXPECT_NEAR(system.birnbaumImportance(b), 0.9, 1e-15);
}

TEST(RbdSystem, BirnbaumMatchesFiniteDifference)
{
    RbdSystem system = twoOfThreeSystem(0.9);
    double h = 1e-7;
    double base = system.componentAvailability(1);
    system.setComponentAvailability(1, base + h);
    double up = system.availabilityExact();
    system.setComponentAvailability(1, base - h);
    double down = system.availabilityExact();
    system.setComponentAvailability(1, base);
    EXPECT_NEAR(system.birnbaumImportance(1), (up - down) / (2 * h),
                1e-6);
}

TEST(RbdSystem, CriticalityIdentifiesWeakLink)
{
    // A strong redundant pair in series with a weak singleton: the
    // singleton must dominate the criticality ranking — the paper's
    // vRouter single-point-of-failure situation in miniature.
    RbdSystem system;
    ComponentId r1 = system.addComponent("redundant1", 0.99);
    ComponentId r2 = system.addComponent("redundant2", 0.99);
    ComponentId weak = system.addComponent("weak-singleton", 0.999);
    system.setRoot(series({parallel({component(r1), component(r2)}),
                           component(weak)}));
    auto ranking = system.rankImportance();
    ASSERT_EQ(ranking.size(), 3u);
    EXPECT_EQ(ranking[0].name, "weak-singleton");
    EXPECT_GT(ranking[0].criticality, 0.9);
    EXPECT_LT(ranking[1].criticality, 0.1);
}

TEST(RbdSystem, RankImportanceWithReorderMatchesDefault)
{
    // Reordering changes the diagram shape, never the functions it
    // denotes: the ranking must agree with the default path to within
    // floating-point reassociation noise.
    RbdSystem system;
    std::vector<ComponentId> ids;
    for (int i = 0; i < 9; ++i) {
        ids.push_back(system.addComponent("c" + std::to_string(i),
                                          0.9 + 0.01 * i));
    }
    // Interleaved pairing ((c0&c3)|(c1&c4)|... style) so sifting has
    // something real to improve.
    std::vector<Block> pairs;
    for (int i = 0; i < 3; ++i) {
        pairs.push_back(series(
            {component(ids[i]), component(ids[i + 3]),
             component(ids[i + 6])}));
    }
    system.setRoot(parallel(std::move(pairs)));

    auto plain = system.rankImportance();
    ImportanceOptions options;
    options.reorder = true;
    auto reordered = system.rankImportance(options);
    ASSERT_EQ(plain.size(), reordered.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].component, reordered[i].component);
        // 1e-12, not 1e-15: the sifted diagram sums the same products
        // in a different association order.
        EXPECT_NEAR(plain[i].birnbaum, reordered[i].birnbaum, 1e-12);
        EXPECT_NEAR(plain[i].criticality, reordered[i].criticality,
                    1e-12);
    }
}

TEST(CompiledRbd, ReorderOptionPreservesProbability)
{
    RbdSystem system = twoOfThreeSystem(0.9);
    CompiledRbd plain(system);
    CompiledRbd::Options options;
    options.reorder = true;
    CompiledRbd sifted(system, options);
    const std::vector<double> &avail = system.availabilities();
    EXPECT_NEAR(plain.probability(avail), sifted.probability(avail),
                1e-15);
    EXPECT_LE(sifted.nodeCount(), plain.nodeCount());
}

TEST(RbdSystem, CriticalityZeroForPerfectSystem)
{
    RbdSystem system;
    ComponentId a = system.addComponent("a", 1.0);
    system.setRoot(component(a));
    EXPECT_DOUBLE_EQ(system.criticalityImportance(a), 0.0);
}

TEST(RbdSystem, RootValidationRejectsUnknownComponents)
{
    RbdSystem system;
    system.addComponent("only", 0.9);
    EXPECT_THROW(system.setRoot(component(5)), sdnav::ModelError);
}

TEST(RbdSystem, QueriesRejectUnknownIds)
{
    RbdSystem system = twoOfThreeSystem(0.9);
    EXPECT_THROW(system.componentAvailability(99), sdnav::ModelError);
    EXPECT_THROW(system.componentName(99), sdnav::ModelError);
    EXPECT_THROW(system.birnbaumImportance(99), sdnav::ModelError);
}

TEST(RbdSystem, RootRequiredBeforeEvaluation)
{
    RbdSystem system;
    system.addComponent("a", 0.9);
    EXPECT_THROW(system.availabilityExact(), sdnav::ModelError);
}

TEST(MonteCarloResult, ConfidenceIntervalClamps)
{
    MonteCarloResult r;
    r.estimate = 0.999999;
    r.standardError = 0.001;
    r.samples = 100;
    EXPECT_LE(r.ci95High(), 1.0);
    EXPECT_GE(r.ci95Low(), 0.0);
    EXPECT_TRUE(r.brackets(0.9999));
    EXPECT_FALSE(r.brackets(0.5));
}

} // anonymous namespace
