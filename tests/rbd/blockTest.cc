/**
 * @file
 * Tests for the RBD structure AST.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "rbd/block.hh"

namespace
{

using namespace sdnav::rbd;

TEST(Block, ComponentLeaf)
{
    Block leaf = component(3);
    EXPECT_EQ(leaf.kind(), Block::Kind::Component);
    EXPECT_EQ(leaf.componentId(), 3u);
    EXPECT_TRUE(leaf.children().empty());
}

TEST(Block, SeriesEvaluatesAsAnd)
{
    Block b = series({component(0), component(1)});
    EXPECT_TRUE(b.evaluate({true, true}));
    EXPECT_FALSE(b.evaluate({true, false}));
    EXPECT_FALSE(b.evaluate({false, true}));
    EXPECT_FALSE(b.evaluate({false, false}));
}

TEST(Block, ParallelEvaluatesAsOr)
{
    Block b = parallel({component(0), component(1)});
    EXPECT_TRUE(b.evaluate({true, true}));
    EXPECT_TRUE(b.evaluate({true, false}));
    EXPECT_TRUE(b.evaluate({false, true}));
    EXPECT_FALSE(b.evaluate({false, false}));
}

TEST(Block, KofNThreshold)
{
    Block b = kOfN(2, {component(0), component(1), component(2)});
    EXPECT_TRUE(b.evaluate({true, true, false}));
    EXPECT_TRUE(b.evaluate({true, true, true}));
    EXPECT_FALSE(b.evaluate({true, false, false}));
    EXPECT_FALSE(b.evaluate({false, false, false}));
}

TEST(Block, KofNDegenerateCases)
{
    Block always = kOfN(0, {component(0)});
    EXPECT_TRUE(always.evaluate({false}));
    Block never = kOfN(2, {component(0)});
    EXPECT_FALSE(never.evaluate({true}));
}

TEST(Block, NestedStructures)
{
    // (c0 & c1) | (c2 & c3)
    Block b = parallel({series({component(0), component(1)}),
                        series({component(2), component(3)})});
    EXPECT_TRUE(b.evaluate({true, true, false, false}));
    EXPECT_TRUE(b.evaluate({false, false, true, true}));
    EXPECT_FALSE(b.evaluate({true, false, false, true}));
}

TEST(Block, SharedComponentAppearsInBothBranches)
{
    // c0 & (c0 | c1) == c0.
    Block b = series({component(0), parallel({component(0),
                                              component(1)})});
    EXPECT_TRUE(b.evaluate({true, false}));
    EXPECT_FALSE(b.evaluate({false, true}));
}

TEST(Block, CollectComponentsListsDuplicates)
{
    Block b = series({component(1), component(1), component(2)});
    std::vector<ComponentId> refs;
    b.collectComponents(refs);
    ASSERT_EQ(refs.size(), 3u);
    EXPECT_EQ(refs[0], 1u);
    EXPECT_EQ(refs[1], 1u);
    EXPECT_EQ(refs[2], 2u);
}

TEST(Block, EmptyCompositesAreRejected)
{
    EXPECT_THROW(series({}), sdnav::ModelError);
    EXPECT_THROW(parallel({}), sdnav::ModelError);
}

TEST(Block, EvaluateRejectsShortStateVector)
{
    Block b = component(5);
    EXPECT_THROW(b.evaluate({true, false}), sdnav::ModelError);
}

TEST(Block, DescribeRendersStructure)
{
    Block b = kOfN(2, {component(0), component(1), component(2)});
    std::vector<std::string> names{"a", "b", "c"};
    EXPECT_EQ(b.describe(names), "2of3(a, b, c)");
    Block s = series({component(0), parallel({component(1),
                                              component(2)})});
    EXPECT_EQ(s.describe(names), "series(a, parallel(b, c))");
}

TEST(Block, DescribeFallsBackToIndices)
{
    Block b = component(7);
    EXPECT_EQ(b.describe({}), "c7");
}

TEST(Block, CopiesShareStructureCheaply)
{
    Block a = kOfN(1, {component(0), component(1)});
    Block b = a; // Shallow copy.
    EXPECT_EQ(&a.children(), &b.children());
}

} // anonymous namespace
