/**
 * @file
 * Tests for minimal cut set extraction.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "fmea/openContrail.hh"
#include "model/exactModel.hh"
#include "rbd/cutSets.hh"

namespace
{

using namespace sdnav::rbd;

std::set<std::set<ComponentId>>
asSets(const std::vector<CutSet> &cuts)
{
    std::set<std::set<ComponentId>> result;
    for (const CutSet &cut : cuts) {
        result.insert(std::set<ComponentId>(cut.components.begin(),
                                            cut.components.end()));
    }
    return result;
}

TEST(CutSets, SeriesYieldsSingletons)
{
    RbdSystem system;
    auto a = system.addComponent("a", 0.9);
    auto b = system.addComponent("b", 0.8);
    system.setRoot(series({component(a), component(b)}));
    auto cuts = minimalCutSets(system);
    EXPECT_EQ(asSets(cuts),
              (std::set<std::set<ComponentId>>{{a}, {b}}));
}

TEST(CutSets, ParallelYieldsTheFullPair)
{
    RbdSystem system;
    auto a = system.addComponent("a", 0.9);
    auto b = system.addComponent("b", 0.8);
    system.setRoot(parallel({component(a), component(b)}));
    auto cuts = minimalCutSets(system);
    EXPECT_EQ(asSets(cuts), (std::set<std::set<ComponentId>>{{a, b}}));
    EXPECT_NEAR(cuts[0].probability, 0.1 * 0.2, 1e-15);
}

TEST(CutSets, TwoOfThreeYieldsAllPairs)
{
    RbdSystem system;
    auto c0 = system.addComponent("c0", 0.99);
    auto c1 = system.addComponent("c1", 0.99);
    auto c2 = system.addComponent("c2", 0.99);
    system.setRoot(kOfN(2, {component(c0), component(c1),
                            component(c2)}));
    auto cuts = minimalCutSets(system);
    EXPECT_EQ(asSets(cuts), (std::set<std::set<ComponentId>>{
                                {c0, c1}, {c0, c2}, {c1, c2}}));
}

TEST(CutSets, KofNGeneralCount)
{
    // m-of-n has C(n, n-m+1) minimal cut sets.
    RbdSystem system;
    std::vector<Block> blocks;
    for (int i = 0; i < 5; ++i) {
        blocks.push_back(component(
            system.addComponent("c" + std::to_string(i), 0.9)));
    }
    system.setRoot(kOfN(3, std::move(blocks)));
    CutSetOptions options;
    options.maxOrder = 5;
    auto cuts = minimalCutSets(system, options);
    EXPECT_EQ(cuts.size(), 10u); // C(5, 3).
    for (const CutSet &cut : cuts)
        EXPECT_EQ(cut.order(), 3u);
}

TEST(CutSets, SharedComponentSubsumption)
{
    // host & (p | q): cuts are {host}, {p, q}. The shared host must
    // not generate supersets like {host, p}.
    RbdSystem system;
    auto host = system.addComponent("host", 0.999);
    auto p = system.addComponent("p", 0.99);
    auto q = system.addComponent("q", 0.99);
    system.setRoot(series({component(host),
                           parallel({component(p), component(q)})}));
    auto cuts = minimalCutSets(system);
    EXPECT_EQ(asSets(cuts),
              (std::set<std::set<ComponentId>>{{host}, {p, q}}));
}

TEST(CutSets, OrderTruncationDropsLargeSets)
{
    RbdSystem system;
    std::vector<Block> blocks;
    for (int i = 0; i < 4; ++i) {
        blocks.push_back(component(
            system.addComponent("c" + std::to_string(i), 0.9)));
    }
    // 1-of-4: the only cut set has order 4.
    system.setRoot(kOfN(1, std::move(blocks)));
    CutSetOptions shallow;
    shallow.maxOrder = 3;
    EXPECT_TRUE(minimalCutSets(system, shallow).empty());
    CutSetOptions deep;
    deep.maxOrder = 4;
    EXPECT_EQ(minimalCutSets(system, deep).size(), 1u);
}

TEST(CutSets, SortedByProbabilityDescending)
{
    RbdSystem system;
    auto weak = system.addComponent("weak", 0.9);
    auto strong1 = system.addComponent("s1", 0.999);
    auto strong2 = system.addComponent("s2", 0.999);
    system.setRoot(series({component(weak),
                           parallel({component(strong1),
                                     component(strong2)})}));
    auto cuts = minimalCutSets(system);
    ASSERT_EQ(cuts.size(), 2u);
    EXPECT_EQ(cuts[0].components,
              (std::vector<ComponentId>{weak}));
    EXPECT_GT(cuts[0].probability, cuts[1].probability);
}

TEST(CutSets, RareEventBoundsExactUnavailability)
{
    // For a 2-of-3 of highly available parts, the rare-event sum is a
    // tight upper bound on exact unavailability.
    RbdSystem system;
    auto c0 = system.addComponent("c0", 0.9995);
    auto c1 = system.addComponent("c1", 0.9995);
    auto c2 = system.addComponent("c2", 0.9995);
    system.setRoot(kOfN(2, {component(c0), component(c1),
                            component(c2)}));
    auto cuts = minimalCutSets(system);
    double bound = rareEventUnavailability(cuts);
    double exact = 1.0 - system.availabilityExact();
    EXPECT_GE(bound, exact);
    EXPECT_NEAR(bound, exact, 1e-3 * exact);
}

TEST(CutSets, OpenContrailDataPlaneSingletons)
{
    // The paper's DP single points of failure must appear as order-1
    // cut sets: vrouter-agent, vrouter-dpdk, and (scenario 2) the
    // vRouter supervisor.
    auto catalog = sdnav::fmea::openContrail3();
    auto system = sdnav::model::buildExactSystem(
        catalog, sdnav::topology::largeTopology(),
        sdnav::model::SupervisorPolicy::Required,
        sdnav::model::SwParams{}, sdnav::fmea::Plane::DataPlane);
    CutSetOptions options;
    options.maxOrder = 1;
    auto cuts = minimalCutSets(system, options);
    std::set<std::string> names;
    for (const CutSet &cut : cuts)
        names.insert(system.componentName(cut.components[0]));
    EXPECT_TRUE(names.count("vrouter-agent"));
    EXPECT_TRUE(names.count("vrouter-dpdk"));
    EXPECT_TRUE(names.count("supervisor-vrouter"));
    EXPECT_EQ(names.size(), 3u);
}

TEST(CutSets, OpenContrailSmallCpRackIsTheOnlySingleton)
{
    auto catalog = sdnav::fmea::openContrail3();
    auto system = sdnav::model::buildExactSystem(
        catalog, sdnav::topology::smallTopology(),
        sdnav::model::SupervisorPolicy::Required,
        sdnav::model::SwParams{}, sdnav::fmea::Plane::ControlPlane);
    CutSetOptions options;
    options.maxOrder = 1;
    auto cuts = minimalCutSets(system, options);
    ASSERT_EQ(cuts.size(), 1u);
    EXPECT_EQ(system.componentName(cuts[0].components[0]), "rack0");
}

TEST(CutSets, OpenContrailLargeCpPairsAreDatabaseDominated)
{
    // No order-1 cuts in the Large CP; order-2 cuts are pairs of
    // Database-related elements across nodes, and the rare-event sum
    // approximates the exact unavailability.
    auto catalog = sdnav::fmea::openContrail3();
    auto system = sdnav::model::buildExactSystem(
        catalog, sdnav::topology::largeTopology(),
        sdnav::model::SupervisorPolicy::Required,
        sdnav::model::SwParams{}, sdnav::fmea::Plane::ControlPlane);
    CutSetOptions options;
    options.maxOrder = 2;
    auto cuts = minimalCutSets(system, options);
    ASSERT_FALSE(cuts.empty());
    for (const CutSet &cut : cuts)
        EXPECT_EQ(cut.order(), 2u) << cut.describe(system);
    double bound = rareEventUnavailability(cuts);
    double exact = 1.0 - system.availabilityExact();
    EXPECT_GE(bound * 1.000001, exact * 0.99);
    EXPECT_NEAR(bound, exact, 0.05 * exact);
    // The highest-probability cut involves a Database supervisor.
    EXPECT_NE(cuts[0].describe(system).find("Database"),
              std::string::npos);
}

TEST(CutSets, DescribeUsesNames)
{
    RbdSystem system;
    auto a = system.addComponent("alpha", 0.9);
    auto b = system.addComponent("beta", 0.9);
    system.setRoot(parallel({component(a), component(b)}));
    auto cuts = minimalCutSets(system);
    EXPECT_EQ(cuts[0].describe(system), "{alpha, beta}");
}

TEST(CutSets, OptionsValidation)
{
    RbdSystem system;
    auto a = system.addComponent("a", 0.9);
    system.setRoot(component(a));
    CutSetOptions bad;
    bad.maxOrder = 0;
    EXPECT_THROW(minimalCutSets(system, bad), sdnav::ModelError);
}

} // anonymous namespace
