/**
 * @file
 * Tests for the outage-cause ledger: name classification, episode
 * attribution to the initiating class, prolonging-cause tallies,
 * horizon censoring, and the exact rows-sum-to-total invariant the
 * attribution tables rely on.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "sim/outageLedger.hh"

namespace
{

using namespace sdnav::sim;

TEST(ComponentClass, NamesRoundTrip)
{
    EXPECT_STREQ(componentClassName(ComponentClass::Rack), "rack");
    EXPECT_STREQ(componentClassName(ComponentClass::Host), "host");
    EXPECT_STREQ(componentClassName(ComponentClass::Vm), "vm");
    EXPECT_STREQ(componentClassName(ComponentClass::Process),
                 "process");
    EXPECT_STREQ(componentClassName(ComponentClass::Supervisor),
                 "supervisor");
    EXPECT_STREQ(componentClassName(ComponentClass::Rediscovery),
                 "rediscovery");
    EXPECT_STREQ(componentClassName(ComponentClass::Other), "other");
}

TEST(ComponentClass, ClassifiesModelNamesByPrefix)
{
    EXPECT_EQ(componentClassFromName("rack0"), ComponentClass::Rack);
    EXPECT_EQ(componentClassFromName("host3/vm1"),
              ComponentClass::Host);
    EXPECT_EQ(componentClassFromName("vm2"), ComponentClass::Vm);
    EXPECT_EQ(componentClassFromName("supervisor-control"),
              ComponentClass::Supervisor);
    // Everything else is a controller process (contrail-api, ...).
    EXPECT_EQ(componentClassFromName("contrail-api"),
              ComponentClass::Process);
    EXPECT_EQ(componentClassFromName(""), ComponentClass::Process);
}

TEST(OutageLedger, AttributesEpisodeToInitiatingClass)
{
    OutageLedger ledger(true);
    ledger.observe(10.0, false, {ComponentClass::Vm, 2, true});
    ledger.observe(12.5, true, {ComponentClass::Vm, 2, false});
    ledger.finish(100.0);

    const AttributionTotals &totals = ledger.totals();
    EXPECT_EQ(totals.of(ComponentClass::Vm).episodes, 1u);
    EXPECT_DOUBLE_EQ(totals.of(ComponentClass::Vm).downtimeHours,
                     2.5);
    EXPECT_DOUBLE_EQ(totals.of(ComponentClass::Vm).maxEpisodeHours,
                     2.5);
    EXPECT_EQ(totals.episodes(), 1u);
    EXPECT_DOUBLE_EQ(totals.downtimeHours(), 2.5);
    EXPECT_DOUBLE_EQ(totals.observedHours, 100.0);
    EXPECT_EQ(totals.censoredEpisodes, 0u);
}

TEST(OutageLedger, ProlongingFailuresTalliedOncePerClass)
{
    OutageLedger ledger(true);
    ledger.observe(10.0, false, {ComponentClass::Host, 0, true});
    // Two process failures land while the host outage is open: the
    // class is tallied once; the episode stays attributed to Host.
    ledger.observe(11.0, false, {ComponentClass::Process, 4, true});
    ledger.observe(12.0, false, {ComponentClass::Process, 5, true});
    // A repair while down is not a prolonging cause.
    ledger.observe(12.5, false, {ComponentClass::Process, 4, false});
    ledger.observe(14.0, true, {ComponentClass::Host, 0, false});
    ledger.finish(20.0);

    const AttributionTotals &totals = ledger.totals();
    EXPECT_EQ(totals.of(ComponentClass::Host).episodes, 1u);
    EXPECT_DOUBLE_EQ(totals.of(ComponentClass::Host).downtimeHours,
                     4.0);
    EXPECT_EQ(totals.of(ComponentClass::Process).episodes, 0u);
    EXPECT_EQ(totals.of(ComponentClass::Process).prolongedEpisodes,
              1u);
    EXPECT_DOUBLE_EQ(totals.of(ComponentClass::Process).downtimeHours,
                     0.0);
    EXPECT_DOUBLE_EQ(totals.downtimeHours(), 4.0);
}

TEST(OutageLedger, HorizonCensorsOpenEpisode)
{
    OutageLedger ledger(true);
    ledger.observe(8.0, false, {ComponentClass::Rack, 0, true});
    ledger.finish(15.0);

    const AttributionTotals &totals = ledger.totals();
    EXPECT_EQ(totals.of(ComponentClass::Rack).episodes, 1u);
    EXPECT_DOUBLE_EQ(totals.of(ComponentClass::Rack).downtimeHours,
                     7.0);
    EXPECT_EQ(totals.censoredEpisodes, 1u);
    EXPECT_DOUBLE_EQ(totals.censoredHours, 7.0);
    // Censored hours are included in (not extra to) the class rows.
    EXPECT_DOUBLE_EQ(totals.downtimeHours(), 7.0);
}

TEST(OutageLedger, RedundantObservationsDoNotSplitEpisodes)
{
    OutageLedger ledger(true);
    ledger.observe(5.0, false, {ComponentClass::Supervisor, 0, true});
    ledger.observe(6.0, false, {ComponentClass::Supervisor, 0, true});
    ledger.observe(9.0, true, {ComponentClass::Supervisor, 0, false});
    ledger.finish(10.0);

    const AttributionTotals &totals = ledger.totals();
    EXPECT_EQ(totals.episodes(), 1u);
    EXPECT_DOUBLE_EQ(totals.downtimeHours(), 4.0);
    // A *second* failure of the initiating class while the episode
    // is open is recorded as prolonging its own episode.
    EXPECT_EQ(totals.of(ComponentClass::Supervisor).prolongedEpisodes,
              1u);
}

TEST(OutageLedger, FoldIsPlainOrderedAddition)
{
    OutageLedger a(true);
    a.observe(1.0, false, {ComponentClass::Vm, 0, true});
    a.observe(2.0, true, {ComponentClass::Vm, 0, false});
    a.finish(10.0);

    OutageLedger b(true);
    b.observe(3.0, false, {ComponentClass::Process, 1, true});
    b.finish(10.0);

    AttributionTotals merged;
    merged.add(a.totals());
    merged.add(b.totals());
    EXPECT_EQ(merged.episodes(), 2u);
    EXPECT_DOUBLE_EQ(merged.downtimeHours(), 8.0);
    EXPECT_DOUBLE_EQ(merged.observedHours, 20.0);
    EXPECT_EQ(merged.censoredEpisodes, 1u);
    EXPECT_DOUBLE_EQ(merged.of(ComponentClass::Vm).downtimeHours,
                     1.0);
    EXPECT_DOUBLE_EQ(merged.of(ComponentClass::Process).downtimeHours,
                     7.0);
}

TEST(OutageLedger, RejectsTimeTravelAndDoubleFinish)
{
    OutageLedger ledger(true);
    ledger.observe(5.0, false, {ComponentClass::Vm, 0, true});
    EXPECT_THROW(
        ledger.observe(4.0, true, {ComponentClass::Vm, 0, false}),
        sdnav::ModelError);
    ledger.finish(6.0);
    EXPECT_THROW(ledger.finish(7.0), sdnav::ModelError);
    EXPECT_THROW(
        ledger.observe(8.0, true, {ComponentClass::Vm, 0, false}),
        sdnav::ModelError);
}

} // anonymous namespace
