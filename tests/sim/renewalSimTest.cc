/**
 * @file
 * Tests for the alternating-renewal simulator: convergence to the
 * analytic availability and distribution-shape insensitivity.
 */

#include <memory>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "prob/distributions.hh"
#include "rbd/system.hh"
#include "sim/renewalSim.hh"

namespace
{

using namespace sdnav::sim;
namespace rbd = sdnav::rbd;

rbd::RbdSystem
twoOfThree(double a)
{
    rbd::RbdSystem system;
    auto c0 = system.addComponent("c0", a);
    auto c1 = system.addComponent("c1", a);
    auto c2 = system.addComponent("c2", a);
    system.setRoot(rbd::kOfN(2, {rbd::component(c0), rbd::component(c1),
                                 rbd::component(c2)}));
    return system;
}

TEST(Timings, ExponentialImpliedAvailability)
{
    ComponentTimings t = exponentialTimings(0.99, 1000.0);
    EXPECT_NEAR(t.impliedAvailability(), 0.99, 1e-12);
    EXPECT_NEAR(t.timeToRepair->mean(), 1000.0 * 0.01 / 0.99, 1e-9);
}

TEST(Timings, PerfectAvailabilityMeansNoFailures)
{
    ComponentTimings t = exponentialTimings(1.0, 1000.0);
    EXPECT_GT(t.timeToFailure->mean(), 1e15);
}

TEST(Timings, DegenerateHandlingIsUniformAcrossFactories)
{
    // Availability 1.0 must degenerate identically for every factory:
    // an (effectively) never-failing component with one positive
    // repair mean — not exponential-only never-failing with mttr 1.0
    // while the Weibull path keeps real failures with mttr 1e-12.
    ComponentTimings e = exponentialTimings(1.0, 250.0);
    ComponentTimings w = weibullTimings(1.0, 250.0, 2.0);
    EXPECT_GT(e.timeToFailure->mean(), 1e15);
    EXPECT_GT(w.timeToFailure->mean(), 1e15);
    EXPECT_GT(e.timeToRepair->mean(), 0.0);
    EXPECT_DOUBLE_EQ(e.timeToRepair->mean(), w.timeToRepair->mean());
    EXPECT_NEAR(e.impliedAvailability(), 1.0, 1e-12);
    EXPECT_NEAR(w.impliedAvailability(), 1.0, 1e-12);
}

TEST(RenewalSim, PerfectComponentsNeverFail)
{
    // A system of availability-1.0 components must simulate to
    // exactly 1.0 with zero outages under either factory.
    rbd::RbdSystem system;
    auto c0 = system.addComponent("c0", 1.0);
    auto c1 = system.addComponent("c1", 1.0);
    system.setRoot(rbd::series({rbd::component(c0),
                                rbd::component(c1)}));
    RenewalSimConfig config;
    config.horizonHours = 1e4;
    std::vector<ComponentTimings> timings;
    timings.push_back(weibullTimings(1.0, 100.0, 2.0));
    timings.push_back(exponentialTimings(1.0, 100.0));
    auto result = simulateRenewalSystem(system, timings, config);
    EXPECT_DOUBLE_EQ(result.availability.mean, 1.0);
    EXPECT_EQ(result.outageCount, 0u);
    EXPECT_EQ(result.events, 0u);
}

TEST(Timings, WeibullKeepsTheSameMeans)
{
    ComponentTimings exp_t = exponentialTimings(0.95, 500.0);
    ComponentTimings wei_t = weibullTimings(0.95, 500.0, 2.5);
    EXPECT_NEAR(exp_t.timeToFailure->mean(),
                wei_t.timeToFailure->mean(), 1e-6);
    EXPECT_NEAR(exp_t.impliedAvailability(),
                wei_t.impliedAvailability(), 1e-9);
}

TEST(Timings, RejectsInvalidInputs)
{
    EXPECT_THROW(exponentialTimings(0.0, 100.0), sdnav::ModelError);
    EXPECT_THROW(exponentialTimings(1.5, 100.0), sdnav::ModelError);
    EXPECT_THROW(exponentialTimings(0.9, 0.0), sdnav::ModelError);
}

TEST(RenewalSim, SingleComponentConvergesToAvailability)
{
    rbd::RbdSystem system;
    auto c = system.addComponent("c", 0.95);
    system.setRoot(rbd::component(c));
    RenewalSimConfig config;
    config.horizonHours = 4e5;
    config.seed = 11;
    auto result = simulateRenewalSystem(
        system, exponentialTimingsFor(system, 100.0), config);
    EXPECT_TRUE(result.availability.brackets(0.95))
        << result.availability.mean << " +- "
        << result.availability.halfWidth95();
    EXPECT_GT(result.outageCount, 100u);
    EXPECT_GT(result.events, 1000u);
}

TEST(RenewalSim, TwoOfThreeConvergesToEquationOne)
{
    double a = 0.9;
    rbd::RbdSystem system = twoOfThree(a);
    RenewalSimConfig config;
    config.horizonHours = 3e5;
    config.seed = 13;
    auto result = simulateRenewalSystem(
        system, exponentialTimingsFor(system, 100.0), config);
    double analytic = a * a * (3.0 - 2.0 * a);
    EXPECT_TRUE(result.availability.brackets(analytic))
        << result.availability.mean << " +- "
        << result.availability.halfWidth95() << " vs " << analytic;
}

TEST(RenewalSim, ShapeInsensitivityOfSteadyState)
{
    // Weibull failures + deterministic repairs with the same means
    // must give the same long-run availability (renewal-reward).
    double a = 0.9;
    rbd::RbdSystem system = twoOfThree(a);
    std::vector<ComponentTimings> timings;
    for (std::size_t i = 0; i < 3; ++i)
        timings.push_back(weibullTimings(a, 100.0, 2.0));
    RenewalSimConfig config;
    config.horizonHours = 3e5;
    config.seed = 17;
    auto result = simulateRenewalSystem(system, timings, config);
    double analytic = a * a * (3.0 - 2.0 * a);
    EXPECT_TRUE(result.availability.brackets(analytic))
        << result.availability.mean << " +- "
        << result.availability.halfWidth95() << " vs " << analytic;
}

TEST(RenewalSim, SharedComponentSystem)
{
    // parallel(p&host, q&host): exact availability known via BDD;
    // the simulator must agree despite the shared component.
    rbd::RbdSystem system;
    auto host = system.addComponent("host", 0.95);
    auto p = system.addComponent("p", 0.9);
    auto q = system.addComponent("q", 0.9);
    system.setRoot(rbd::parallel(
        {rbd::series({rbd::component(p), rbd::component(host)}),
         rbd::series({rbd::component(q), rbd::component(host)})}));
    double exact = system.availabilityExact();
    RenewalSimConfig config;
    config.horizonHours = 3e5;
    config.seed = 19;
    auto result = simulateRenewalSystem(
        system, exponentialTimingsFor(system, 100.0), config);
    EXPECT_TRUE(result.availability.brackets(exact));
}

TEST(RenewalSim, DeterministicPerSeed)
{
    rbd::RbdSystem system = twoOfThree(0.9);
    RenewalSimConfig config;
    config.horizonHours = 1e4;
    config.seed = 23;
    auto a = simulateRenewalSystem(
        system, exponentialTimingsFor(system, 100.0), config);
    auto b = simulateRenewalSystem(
        system, exponentialTimingsFor(system, 100.0), config);
    EXPECT_DOUBLE_EQ(a.availability.mean, b.availability.mean);
    EXPECT_EQ(a.events, b.events);
}

TEST(RenewalSim, OutageStatisticsAreConsistent)
{
    rbd::RbdSystem system = twoOfThree(0.8);
    RenewalSimConfig config;
    config.horizonHours = 1e5;
    config.seed = 29;
    auto result = simulateRenewalSystem(
        system, exponentialTimingsFor(system, 50.0), config);
    EXPECT_GT(result.outageCount, 0u);
    EXPECT_GT(result.meanOutageHours, 0.0);
    EXPECT_GE(result.maxOutageHours, result.meanOutageHours);
    // Total downtime from outages must match 1 - availability.
    double downtime = result.meanOutageHours *
                      static_cast<double>(result.outageCount);
    EXPECT_NEAR(downtime / config.horizonHours,
                1.0 - result.availability.mean, 1e-9);
}

TEST(RenewalSim, ConfigValidation)
{
    rbd::RbdSystem system = twoOfThree(0.9);
    auto timings = exponentialTimingsFor(system, 100.0);
    RenewalSimConfig config;
    config.horizonHours = -1.0;
    EXPECT_THROW(simulateRenewalSystem(system, timings, config),
                 sdnav::ModelError);
    config.horizonHours = 1e4;
    config.batches = 1;
    EXPECT_THROW(simulateRenewalSystem(system, timings, config),
                 sdnav::ModelError);
    std::vector<ComponentTimings> short_timings;
    short_timings.push_back(exponentialTimings(0.9, 100.0));
    RenewalSimConfig ok;
    EXPECT_THROW(simulateRenewalSystem(system, short_timings, ok),
                 sdnav::ModelError);
}

TEST(RenewalSim, AttributionSumsToTotalDowntime)
{
    rbd::RbdSystem system = twoOfThree(0.8);
    RenewalSimConfig config;
    config.horizonHours = 1e5;
    config.seed = 29;
    auto result = simulateRenewalSystem(
        system, exponentialTimingsFor(system, 50.0), config);

    // Every episode lands in exactly one class, so the per-class
    // rows reproduce the total downtime (acceptance bar: 1e-12 on
    // the availability fraction).
    double attributed = result.attribution.downtimeHours();
    double downtime =
        config.horizonHours * (1.0 - result.availability.mean);
    EXPECT_NEAR(attributed / config.horizonHours,
                downtime / config.horizonHours, 1e-12);
    EXPECT_EQ(result.attribution.episodes(), result.outageCount);
    EXPECT_DOUBLE_EQ(result.attribution.observedHours,
                     config.horizonHours);
    EXPECT_EQ(result.attribution.censoredEpisodes,
              result.censoredOutages);
    // twoOfThree components are named c0..c2 — all Process class.
    EXPECT_EQ(result.attribution.of(ComponentClass::Process).episodes,
              result.outageCount);
}

TEST(RenewalSim, CensoredFinalOutageIsReported)
{
    // One never-repairing component: the first failure opens an
    // outage the horizon must censor.
    rbd::RbdSystem system;
    auto c0 = system.addComponent("c0", 0.5);
    system.setRoot(rbd::component(c0));
    std::vector<ComponentTimings> timings;
    ComponentTimings t = exponentialTimings(0.5, 10.0);
    t.timeToRepair = std::make_unique<
        sdnav::prob::DeterministicDistribution>(1e12);
    timings.push_back(std::move(t));
    RenewalSimConfig config;
    config.horizonHours = 1e4;
    config.seed = 3;
    auto result = simulateRenewalSystem(system, timings, config);
    EXPECT_EQ(result.censoredOutages, 1u);
    EXPECT_GT(result.censoredOutageHours, 0.0);
    EXPECT_EQ(result.attribution.censoredEpisodes, 1u);
    EXPECT_DOUBLE_EQ(result.attribution.censoredHours,
                     result.censoredOutageHours);
}

} // anonymous namespace
