/**
 * @file
 * Tests for the behavioral controller simulator. Convergence checks
 * use exaggerated failure rates so confidence intervals resolve in
 * seconds of CPU; agreement with the static models is the paper's
 * future-work validation in miniature (the full runs live in
 * bench_simulation_validation).
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "fmea/openContrail.hh"
#include "model/swCentric.hh"
#include "sim/controllerSim.hh"

namespace
{

using namespace sdnav::sim;
using sdnav::model::SupervisorPolicy;
using sdnav::model::SwParams;
namespace fmea = sdnav::fmea;
namespace topology = sdnav::topology;

/** Fast-failing configuration for statistically cheap tests. */
ControllerSimConfig
fastConfig()
{
    ControllerSimConfig config;
    config.process = {50.0, 0.5, 2.0}; // F, R, R_S (hours).
    config.supervisorMtbfHours = 50.0;
    config.maintenanceIntervalHours = 5.0;
    config.vmMtbfHours = 200.0;
    config.hostMtbfHours = 400.0;
    config.rackMtbfHours = 2000.0;
    config.vmAvailability = 0.99;
    config.hostAvailability = 0.995;
    config.rackAvailability = 0.999;
    config.monitoredHosts = 12;
    config.horizonHours = 3e5;
    config.batches = 20;
    config.seed = 101;
    return config;
}

TEST(StaticParams, DeriveFromTimings)
{
    ControllerSimConfig config;
    SwParams params = staticParamsFor(config);
    EXPECT_NEAR(params.processAvailability, 0.99998, 1e-8);
    EXPECT_NEAR(params.manualProcessAvailability, 0.9998, 1e-7);
    EXPECT_DOUBLE_EQ(params.vmAvailability, config.vmAvailability);
}

TEST(ControllerSim, ConvergesToStaticModelScenario1)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig config = fastConfig();
    config.modelRediscovery = false; // Static comparison mode.
    auto result = simulateController(
        catalog, topo, SupervisorPolicy::NotRequired, config);

    sdnav::model::SwAvailabilityModel model(
        catalog, topo, SupervisorPolicy::NotRequired);
    SwParams params = staticParamsFor(config);
    double cp = model.controlPlaneAvailability(params);
    double dp = model.hostDataPlaneAvailability(params);

    // Scenario 1's behavioral twist (manual restarts while the
    // supervisor waits for a maintenance window) genuinely lowers
    // availability vs the static model — with these exaggerated rates
    // supervisors are down ~5% of the time — so allow 3 half-widths
    // plus a bias allowance, and require the bias direction.
    EXPECT_LE(result.dpAvailability.mean, dp + 1e-3);
    EXPECT_NEAR(result.cpAvailability.mean, cp,
                3.0 * result.cpAvailability.halfWidth95() + 6e-3);
    EXPECT_NEAR(result.dpAvailability.mean, dp,
                3.0 * result.dpAvailability.halfWidth95() + 6e-3);
}

TEST(ControllerSim, ConvergesToStaticModelScenario2)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::largeTopology();
    ControllerSimConfig config = fastConfig();
    config.modelRediscovery = false;
    auto result = simulateController(catalog, topo,
                                     SupervisorPolicy::Required,
                                     config);

    sdnav::model::SwAvailabilityModel model(catalog, topo,
                                            SupervisorPolicy::Required);
    SwParams params = staticParamsFor(config);
    double cp = model.controlPlaneAvailability(params);
    double dp = model.hostDataPlaneAvailability(params);
    EXPECT_NEAR(result.cpAvailability.mean, cp,
                3.0 * result.cpAvailability.halfWidth95() + 2e-3);
    EXPECT_NEAR(result.dpAvailability.mean, dp,
                3.0 * result.dpAvailability.halfWidth95() + 2e-3);
}

TEST(ControllerSim, SupervisorPolicyReducesAvailability)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig config = fastConfig();
    auto scen1 = simulateController(
        catalog, topo, SupervisorPolicy::NotRequired, config);
    auto scen2 = simulateController(catalog, topo,
                                    SupervisorPolicy::Required, config);
    EXPECT_GT(scen1.dpAvailability.mean, scen2.dpAvailability.mean);
}

TEST(ControllerSim, RediscoveryTransientsAreMeasured)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig config = fastConfig();
    config.rediscoveryDelayHours = 0.25; // Exaggerated delay.
    auto result = simulateController(
        catalog, topo, SupervisorPolicy::NotRequired, config);
    EXPECT_GT(result.rediscoveryDowntimeFraction, 0.0);

    // A longer delay must lose more host-hours.
    config.rediscoveryDelayHours = 1.0;
    auto slower = simulateController(
        catalog, topo, SupervisorPolicy::NotRequired, config);
    EXPECT_GT(slower.rediscoveryDowntimeFraction,
              result.rediscoveryDowntimeFraction);
}

TEST(ControllerSim, RediscoveryDisabledReportsZero)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig config = fastConfig();
    config.modelRediscovery = false;
    auto result = simulateController(
        catalog, topo, SupervisorPolicy::NotRequired, config);
    EXPECT_DOUBLE_EQ(result.rediscoveryDowntimeFraction, 0.0);
}

TEST(ControllerSim, DeterministicPerSeed)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig config = fastConfig();
    config.horizonHours = 2e4;
    auto a = simulateController(catalog, topo,
                                SupervisorPolicy::Required, config);
    auto b = simulateController(catalog, topo,
                                SupervisorPolicy::Required, config);
    EXPECT_DOUBLE_EQ(a.cpAvailability.mean, b.cpAvailability.mean);
    EXPECT_DOUBLE_EQ(a.dpAvailability.mean, b.dpAvailability.mean);
    EXPECT_EQ(a.events, b.events);
}

TEST(ControllerSim, UnmonitoredDataPlaneIsNotReportedPerfect)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig config = fastConfig();
    config.monitoredHosts = 0;
    config.horizonHours = 2e4;
    auto result = simulateController(catalog, topo,
                                     SupervisorPolicy::Required,
                                     config);
    // With nothing to measure, DP must be flagged unmeasured and
    // report zero host-hours — not the 1.0 a stale initial fraction
    // would produce.
    EXPECT_FALSE(result.dpMeasured);
    EXPECT_DOUBLE_EQ(result.dpAvailability.mean, 0.0);
    EXPECT_DOUBLE_EQ(result.rediscoveryDowntimeFraction, 0.0);
    // CP accounting is unaffected.
    EXPECT_GT(result.cpAvailability.mean, 0.5);
    EXPECT_LE(result.cpAvailability.mean, 1.0);
}

TEST(ControllerSim, MonitoredRunReportsDpMeasured)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig config = fastConfig();
    config.horizonHours = 2e4;
    auto result = simulateController(catalog, topo,
                                     SupervisorPolicy::Required,
                                     config);
    EXPECT_TRUE(result.dpMeasured);
    EXPECT_GT(result.dpAvailability.mean, 0.0);
}

TEST(ControllerSim, DeterministicRepairsScheduleFromEventTime)
{
    // Scenario 1 restores every failed supervisor deterministically at
    // the next maintenance boundary, so boundary times carry bursts of
    // coincident SupRepair events; each repaired supervisor's next
    // failure must be anchored at that boundary, never at a stale
    // accounting cursor (which would throw the scheduled-in-the-past
    // guard or bias the duty cycle).
    auto catalog = fmea::openContrail3();
    auto topo = topology::largeTopology();
    ControllerSimConfig config = fastConfig();
    config.supervisorMtbfHours = 2.0;       // Supervisors fail often...
    config.maintenanceIntervalHours = 1.0;  // ...and repair coincide.
    config.monitoredHosts = 24;
    config.horizonHours = 5e3;
    auto result = simulateController(
        catalog, topo, SupervisorPolicy::NotRequired, config);

    // With failure MTBF Fs and a mean wait of interval/2 until the
    // next boundary, the supervisor duty cycle is Fs / (Fs + w). All
    // processes needing manual restarts in the exposure window drags
    // DP below the supervised static model but the run must stay
    // internally consistent.
    EXPECT_GT(result.events, 1000u);
    EXPECT_GT(result.cpAvailability.mean, 0.0);
    EXPECT_LE(result.cpAvailability.mean, 1.0);
    EXPECT_GT(result.dpAvailability.mean, 0.0);
    EXPECT_LE(result.dpAvailability.mean, 1.0);

    // Determinism must survive the coincident-event bursts.
    auto again = simulateController(
        catalog, topo, SupervisorPolicy::NotRequired, config);
    EXPECT_DOUBLE_EQ(result.cpAvailability.mean,
                     again.cpAvailability.mean);
    EXPECT_EQ(result.events, again.events);
}

TEST(ControllerSim, OutageStatisticsPopulated)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig config = fastConfig();
    auto result = simulateController(catalog, topo,
                                     SupervisorPolicy::Required,
                                     config);
    EXPECT_GT(result.cpOutages, 0u);
    EXPECT_GT(result.cpMeanOutageHours, 0.0);
    EXPECT_GE(result.cpMaxOutageHours, result.cpMeanOutageHours);
    EXPECT_GT(result.events, 10000u);
}

TEST(ControllerSim, WorksWithAlternativeCatalog)
{
    auto catalog = fmea::raftStyleController();
    auto topo = topology::largeTopology(catalog.roles().size());
    ControllerSimConfig config = fastConfig();
    config.horizonHours = 5e4;
    auto result = simulateController(catalog, topo,
                                     SupervisorPolicy::Required,
                                     config);
    EXPECT_GT(result.cpAvailability.mean, 0.5);
    EXPECT_LE(result.cpAvailability.mean, 1.0);
}

TEST(ControllerSim, ConfigValidation)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig config = fastConfig();
    config.horizonHours = 0.0;
    EXPECT_THROW(simulateController(catalog, topo,
                                    SupervisorPolicy::Required,
                                    config),
                 sdnav::ModelError);
    config = fastConfig();
    config.batches = 1;
    EXPECT_THROW(simulateController(catalog, topo,
                                    SupervisorPolicy::Required,
                                    config),
                 sdnav::ModelError);
    // Role-count mismatch.
    config = fastConfig();
    EXPECT_THROW(simulateController(catalog, topology::smallTopology(2),
                                    SupervisorPolicy::Required,
                                    config),
                 sdnav::ModelError);
}

TEST(ControllerSim, CpAttributionSumsToCpDowntime)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig config = fastConfig();
    auto result = simulateController(catalog, topo,
                                     SupervisorPolicy::Required,
                                     config);

    // Attributing whole episodes to the initiating class makes the
    // rows-sum-to-total invariant exact (1e-12 on the availability
    // fraction, the ISSUE acceptance bar).
    double attributed_fraction =
        result.cpAttribution.downtimeHours() / config.horizonHours;
    EXPECT_NEAR(attributed_fraction, 1.0 - result.cpAvailability.mean,
                1e-12);
    EXPECT_EQ(result.cpAttribution.episodes(), result.cpOutages);
    EXPECT_EQ(result.cpAttribution.censoredEpisodes,
              result.cpCensoredOutages);
    EXPECT_DOUBLE_EQ(result.cpAttribution.observedHours,
                     config.horizonHours);
}

TEST(ControllerSim, DpAttributionSumsToDpDowntime)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig config = fastConfig();
    auto result = simulateController(catalog, topo,
                                     SupervisorPolicy::Required,
                                     config);
    ASSERT_TRUE(result.dpMeasured);

    // DP observes monitoredHosts observables for the whole horizon.
    double host_hours = config.horizonHours *
                        static_cast<double>(config.monitoredHosts);
    EXPECT_DOUBLE_EQ(result.dpAttribution.observedHours, host_hours);
    double attributed_fraction =
        result.dpAttribution.downtimeHours() / host_hours;
    EXPECT_NEAR(attributed_fraction, 1.0 - result.dpAvailability.mean,
                1e-12);
    EXPECT_GT(result.dpAttribution.episodes(), 0u);
}

TEST(ControllerSim, RediscoveryEpisodesAttributedToRediscovery)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig config = fastConfig();
    config.rediscoveryDelayHours = 0.25; // exaggerated, 15 minutes
    auto result = simulateController(catalog, topo,
                                     SupervisorPolicy::NotRequired,
                                     config);
    ASSERT_GT(result.rediscoveryDowntimeFraction, 0.0);
    const auto &redisc =
        result.dpAttribution.of(ComponentClass::Rediscovery);
    EXPECT_GT(redisc.episodes, 0u);
    EXPECT_GT(redisc.downtimeHours, 0.0);
}

} // anonymous namespace
