/**
 * @file
 * Tests for the parallel multi-replication layer: seed derivation,
 * estimate pooling, thread-count invariance of the pooled results,
 * and agreement of the pooled CI with the analytic models.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "fmea/openContrail.hh"
#include "model/swCentric.hh"
#include "prob/rng.hh"
#include "rbd/system.hh"
#include "sim/replication.hh"

namespace
{

using namespace sdnav::sim;
using sdnav::model::SupervisorPolicy;
using sdnav::prob::Rng;
namespace fmea = sdnav::fmea;
namespace rbd = sdnav::rbd;
namespace topology = sdnav::topology;

ControllerSimConfig
fastControllerConfig()
{
    ControllerSimConfig config;
    config.process = {50.0, 0.5, 2.0};
    config.supervisorMtbfHours = 50.0;
    config.maintenanceIntervalHours = 5.0;
    config.vmMtbfHours = 200.0;
    config.hostMtbfHours = 400.0;
    config.rackMtbfHours = 2000.0;
    config.vmAvailability = 0.99;
    config.hostAvailability = 0.995;
    config.rackAvailability = 0.999;
    config.monitoredHosts = 12;
    config.horizonHours = 2e4;
    config.batches = 10;
    return config;
}

rbd::RbdSystem
twoOfThree(double a)
{
    rbd::RbdSystem system;
    auto c0 = system.addComponent("c0", a);
    auto c1 = system.addComponent("c1", a);
    auto c2 = system.addComponent("c2", a);
    system.setRoot(rbd::kOfN(2, {rbd::component(c0), rbd::component(c1),
                                 rbd::component(c2)}));
    return system;
}

TEST(ReplicationSeed, MatchesDeriveStream)
{
    EXPECT_EQ(replicationSeed(99, 5), Rng(99).deriveStream(5).seed());
    EXPECT_EQ(replicationSeed(99, 5), replicationSeed(99, 5));
    EXPECT_NE(replicationSeed(99, 5), replicationSeed(99, 6));
    EXPECT_NE(replicationSeed(99, 5), replicationSeed(98, 5));
}

TEST(PoolEstimates, GrandMeanAndVariances)
{
    BatchMeansResult a{0.90, 0.01, 10};
    BatchMeansResult b{0.94, 0.03, 10};
    PooledEstimate pooled = poolEstimates({a, b});
    EXPECT_EQ(pooled.replications, 2u);
    EXPECT_EQ(pooled.batchesPerReplication, 10u);
    EXPECT_DOUBLE_EQ(pooled.mean, 0.92);
    // within: sqrt(0.01^2 + 0.03^2) / 2.
    EXPECT_NEAR(pooled.withinStandardError,
                std::sqrt(0.0001 + 0.0009) / 2.0, 1e-15);
    // across: sample sd of {0.90, 0.94} is 0.02*sqrt(2)/sqrt(1)...
    // variance = 2 * 0.02^2 / 1 = 8e-4; SE = sqrt(8e-4 / 2) = 0.02.
    EXPECT_NEAR(pooled.acrossStandardError, 0.02, 1e-12);
    // CI uses the across t interval with R - 1 = 1 df.
    EXPECT_NEAR(pooled.halfWidth95(), 12.706 * 0.02, 1e-9);
}

TEST(PoolEstimates, SingleReplicationFallsBackToWithin)
{
    BatchMeansResult a{0.9, 0.01, 20};
    PooledEstimate pooled = poolEstimates({a});
    EXPECT_DOUBLE_EQ(pooled.mean, 0.9);
    EXPECT_DOUBLE_EQ(pooled.acrossStandardError, 0.0);
    EXPECT_DOUBLE_EQ(pooled.withinStandardError, 0.01);
    // Falls back to the batch-means t interval (19 df).
    EXPECT_NEAR(pooled.halfWidth95(), 2.093 * 0.01, 1e-12);
    EXPECT_TRUE(pooled.brackets(0.9));
    EXPECT_FALSE(pooled.brackets(0.8));
}

TEST(PoolEstimates, RejectsEmptyInput)
{
    EXPECT_THROW(poolEstimates({}), sdnav::ModelError);
}

TEST(ReplicatedSimConfig, Validation)
{
    ReplicatedSimConfig rep;
    rep.replications = 0;
    auto system = twoOfThree(0.9);
    auto timings = exponentialTimingsFor(system, 100.0);
    RenewalSimConfig per;
    per.horizonHours = 1e3;
    EXPECT_THROW(
        simulateRenewalSystemReplicated(system, timings, per, rep),
        sdnav::ModelError);
}

TEST(ReplicatedRenewal, ThreadCountInvariance)
{
    auto system = twoOfThree(0.9);
    auto timings = exponentialTimingsFor(system, 100.0);
    RenewalSimConfig per;
    per.horizonHours = 2e4;
    ReplicatedSimConfig rep;
    rep.replications = 6;
    rep.baseSeed = 31;

    rep.threads = 1;
    auto sequential =
        simulateRenewalSystemReplicated(system, timings, per, rep);
    rep.threads = 8;
    auto parallel =
        simulateRenewalSystemReplicated(system, timings, per, rep);

    EXPECT_DOUBLE_EQ(sequential.availability.mean,
                     parallel.availability.mean);
    EXPECT_DOUBLE_EQ(sequential.availability.acrossStandardError,
                     parallel.availability.acrossStandardError);
    EXPECT_DOUBLE_EQ(sequential.availability.withinStandardError,
                     parallel.availability.withinStandardError);
    EXPECT_EQ(sequential.events, parallel.events);
    EXPECT_EQ(sequential.outageCount, parallel.outageCount);
    EXPECT_DOUBLE_EQ(sequential.meanOutageHours,
                     parallel.meanOutageHours);
    ASSERT_EQ(sequential.perReplication.size(),
              parallel.perReplication.size());
    for (std::size_t r = 0; r < sequential.perReplication.size(); ++r) {
        EXPECT_DOUBLE_EQ(sequential.perReplication[r].availability.mean,
                         parallel.perReplication[r].availability.mean);
        EXPECT_EQ(sequential.perReplication[r].events,
                  parallel.perReplication[r].events);
    }
}

TEST(ReplicatedController, ThreadCountInvariance)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig per = fastControllerConfig();
    ReplicatedSimConfig rep;
    rep.replications = 4;
    rep.baseSeed = 77;

    rep.threads = 1;
    auto sequential = simulateControllerReplicated(
        catalog, topo, SupervisorPolicy::Required, per, rep);
    rep.threads = 8;
    auto parallel = simulateControllerReplicated(
        catalog, topo, SupervisorPolicy::Required, per, rep);

    EXPECT_DOUBLE_EQ(sequential.cpAvailability.mean,
                     parallel.cpAvailability.mean);
    EXPECT_DOUBLE_EQ(sequential.dpAvailability.mean,
                     parallel.dpAvailability.mean);
    EXPECT_DOUBLE_EQ(sequential.cpAvailability.acrossStandardError,
                     parallel.cpAvailability.acrossStandardError);
    EXPECT_EQ(sequential.cpOutages, parallel.cpOutages);
    EXPECT_DOUBLE_EQ(sequential.cpMaxOutageHours,
                     parallel.cpMaxOutageHours);
    EXPECT_EQ(sequential.events, parallel.events);
}

TEST(ReplicatedController, ReplicationsAreDistinctRuns)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig per = fastControllerConfig();
    ReplicatedSimConfig rep;
    rep.replications = 4;
    rep.threads = 2;
    rep.baseSeed = 5;
    auto result = simulateControllerReplicated(
        catalog, topo, SupervisorPolicy::Required, per, rep);
    ASSERT_EQ(result.perReplication.size(), 4u);
    for (std::size_t r = 1; r < result.perReplication.size(); ++r) {
        EXPECT_NE(result.perReplication[0].events,
                  result.perReplication[r].events);
    }
    // Across-replication spread exists once runs are independent.
    EXPECT_GT(result.cpAvailability.acrossStandardError, 0.0);
}

TEST(ReplicatedController, SingleReplicationMatchesDirectRun)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig per = fastControllerConfig();
    ReplicatedSimConfig rep;
    rep.replications = 1;
    rep.threads = 1;
    rep.baseSeed = 13;
    auto replicated = simulateControllerReplicated(
        catalog, topo, SupervisorPolicy::Required, per, rep);

    ControllerSimConfig direct = per;
    direct.seed = replicationSeed(rep.baseSeed, 0);
    auto single =
        simulateController(catalog, topo, SupervisorPolicy::Required,
                           direct);
    EXPECT_DOUBLE_EQ(replicated.cpAvailability.mean,
                     single.cpAvailability.mean);
    EXPECT_DOUBLE_EQ(replicated.dpAvailability.mean,
                     single.dpAvailability.mean);
    EXPECT_EQ(replicated.events, single.events);
    EXPECT_EQ(replicated.cpOutages, single.cpOutages);
}

TEST(ReplicatedRenewal, PooledCIBracketsAnalytic)
{
    double a = 0.9;
    auto system = twoOfThree(a);
    auto timings = exponentialTimingsFor(system, 100.0);
    RenewalSimConfig per;
    per.horizonHours = 5e4;
    ReplicatedSimConfig rep;
    rep.replications = 8;
    rep.threads = 0;
    rep.baseSeed = 41;
    auto result =
        simulateRenewalSystemReplicated(system, timings, per, rep);
    double analytic = a * a * (3.0 - 2.0 * a);
    EXPECT_TRUE(result.availability.brackets(analytic))
        << result.availability.mean << " +- "
        << result.availability.halfWidth95() << " vs " << analytic;
    EXPECT_GT(result.availability.withinStandardError, 0.0);
    EXPECT_GT(result.availability.acrossStandardError, 0.0);
    EXPECT_EQ(result.availability.replications, 8u);
}

TEST(ReplicatedController, UnmonitoredDpPropagates)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig per = fastControllerConfig();
    per.monitoredHosts = 0;
    per.horizonHours = 5e3;
    ReplicatedSimConfig rep;
    rep.replications = 2;
    rep.threads = 2;
    auto result = simulateControllerReplicated(
        catalog, topo, SupervisorPolicy::Required, per, rep);
    EXPECT_FALSE(result.dpMeasured);
    EXPECT_DOUBLE_EQ(result.dpAvailability.mean, 0.0);
}

/** Bit-identical comparison of two folded attribution totals. */
void
expectAttributionIdentical(const AttributionTotals &a,
                           const AttributionTotals &b)
{
    for (std::size_t i = 0; i < kComponentClassCount; ++i) {
        EXPECT_EQ(a.classes[i].episodes, b.classes[i].episodes);
        EXPECT_EQ(a.classes[i].prolongedEpisodes,
                  b.classes[i].prolongedEpisodes);
        EXPECT_DOUBLE_EQ(a.classes[i].downtimeHours,
                         b.classes[i].downtimeHours);
        EXPECT_DOUBLE_EQ(a.classes[i].maxEpisodeHours,
                         b.classes[i].maxEpisodeHours);
    }
    EXPECT_EQ(a.censoredEpisodes, b.censoredEpisodes);
    EXPECT_DOUBLE_EQ(a.censoredHours, b.censoredHours);
    EXPECT_DOUBLE_EQ(a.observedHours, b.observedHours);
}

TEST(ReplicatedController, AttributionThreadCountInvariance)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig per = fastControllerConfig();
    ReplicatedSimConfig rep;
    rep.replications = 4;
    rep.baseSeed = 77;

    rep.threads = 1;
    auto sequential = simulateControllerReplicated(
        catalog, topo, SupervisorPolicy::Required, per, rep);
    rep.threads = 8;
    auto parallel = simulateControllerReplicated(
        catalog, topo, SupervisorPolicy::Required, per, rep);

    // The ledger fold happens in replication order after the pool
    // joins, so attribution is bit-identical for any thread count.
    expectAttributionIdentical(sequential.cpAttribution,
                               parallel.cpAttribution);
    expectAttributionIdentical(sequential.dpAttribution,
                               parallel.dpAttribution);
    EXPECT_EQ(sequential.cpCensoredOutages,
              parallel.cpCensoredOutages);
    EXPECT_GT(sequential.cpAttribution.episodes(), 0u);
}

TEST(ReplicatedRenewal, AttributionThreadCountInvariance)
{
    auto system = twoOfThree(0.9);
    auto timings = exponentialTimingsFor(system, 100.0);
    RenewalSimConfig per;
    per.horizonHours = 2e4;
    ReplicatedSimConfig rep;
    rep.replications = 6;
    rep.baseSeed = 31;

    rep.threads = 1;
    auto sequential =
        simulateRenewalSystemReplicated(system, timings, per, rep);
    rep.threads = 8;
    auto parallel =
        simulateRenewalSystemReplicated(system, timings, per, rep);

    expectAttributionIdentical(sequential.attribution,
                               parallel.attribution);
    EXPECT_EQ(sequential.censoredOutages, parallel.censoredOutages);
    EXPECT_EQ(sequential.attribution.episodes(),
              sequential.outageCount);
}

TEST(ReplicatedController, AttributionFoldsAcrossReplications)
{
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology();
    ControllerSimConfig per = fastControllerConfig();
    ReplicatedSimConfig rep;
    rep.replications = 3;
    rep.threads = 2;
    rep.baseSeed = 11;
    auto result = simulateControllerReplicated(
        catalog, topo, SupervisorPolicy::Required, per, rep);

    // Merged attribution covers every replication's observations and
    // reproduces the merged outage count exactly.
    EXPECT_DOUBLE_EQ(result.cpAttribution.observedHours,
                     3.0 * per.horizonHours);
    EXPECT_EQ(result.cpAttribution.episodes(), result.cpOutages);
    double attributed = result.cpAttribution.downtimeHours();
    double downtime =
        3.0 * per.horizonHours * (1.0 - result.cpAvailability.mean);
    EXPECT_NEAR(attributed / (3.0 * per.horizonHours),
                downtime / (3.0 * per.horizonHours), 1e-12);
}

} // anonymous namespace
