/**
 * @file
 * Tests for simulation statistics: uptime tracking and batch means.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "sim/stats.hh"

namespace
{

using namespace sdnav::sim;

TEST(UptimeTracker, AlwaysUpIsFullAvailability)
{
    UptimeTracker tracker(true);
    tracker.observe(5.0, true);
    tracker.finish(10.0);
    EXPECT_DOUBLE_EQ(tracker.availability(), 1.0);
    EXPECT_EQ(tracker.outageCount(), 0u);
    EXPECT_DOUBLE_EQ(tracker.totalTime(), 10.0);
    EXPECT_DOUBLE_EQ(tracker.upTime(), 10.0);
}

TEST(UptimeTracker, SingleOutageAccounting)
{
    UptimeTracker tracker(true);
    tracker.observe(4.0, false);
    tracker.observe(6.0, true);
    tracker.finish(10.0);
    EXPECT_DOUBLE_EQ(tracker.availability(), 0.8);
    EXPECT_EQ(tracker.outageCount(), 1u);
    EXPECT_DOUBLE_EQ(tracker.meanOutageDuration(), 2.0);
    EXPECT_DOUBLE_EQ(tracker.maxOutageDuration(), 2.0);
}

TEST(UptimeTracker, MultipleOutagesTracked)
{
    UptimeTracker tracker(true);
    tracker.observe(1.0, false);
    tracker.observe(2.0, true);
    tracker.observe(5.0, false);
    tracker.observe(8.0, true);
    tracker.finish(10.0);
    EXPECT_EQ(tracker.outageCount(), 2u);
    EXPECT_DOUBLE_EQ(tracker.meanOutageDuration(), 2.0);
    EXPECT_DOUBLE_EQ(tracker.maxOutageDuration(), 3.0);
    EXPECT_DOUBLE_EQ(tracker.availability(), 0.6);
}

TEST(UptimeTracker, OpenOutageClosedAtFinish)
{
    UptimeTracker tracker(true);
    tracker.observe(7.0, false);
    tracker.finish(10.0);
    EXPECT_EQ(tracker.outageCount(), 1u);
    EXPECT_DOUBLE_EQ(tracker.maxOutageDuration(), 3.0);
    EXPECT_DOUBLE_EQ(tracker.availability(), 0.7);
}

TEST(UptimeTracker, StartsDown)
{
    UptimeTracker tracker(false);
    tracker.observe(2.0, true);
    tracker.finish(4.0);
    EXPECT_DOUBLE_EQ(tracker.availability(), 0.5);
    // A trajectory that starts down has no *recorded* outage start,
    // so the episode counter only counts observed transitions.
    EXPECT_EQ(tracker.outageCount(), 0u);
}

TEST(UptimeTracker, RedundantObservationsAreHarmless)
{
    UptimeTracker tracker(true);
    tracker.observe(1.0, true);
    tracker.observe(2.0, true);
    tracker.observe(3.0, false);
    tracker.observe(3.5, false);
    tracker.observe(4.0, true);
    tracker.finish(5.0);
    EXPECT_EQ(tracker.outageCount(), 1u);
    EXPECT_DOUBLE_EQ(tracker.availability(), 0.8);
}

TEST(UptimeTracker, RejectsTimeTravel)
{
    UptimeTracker tracker(true);
    tracker.observe(5.0, false);
    EXPECT_THROW(tracker.observe(4.0, true), sdnav::ModelError);
}

TEST(UptimeTracker, RejectsUseAfterFinish)
{
    UptimeTracker tracker(true);
    tracker.finish(1.0);
    EXPECT_THROW(tracker.observe(2.0, true), sdnav::ModelError);
    EXPECT_THROW(tracker.finish(2.0), sdnav::ModelError);
}

TEST(UptimeTracker, ZeroTimeAvailabilityIsOne)
{
    UptimeTracker tracker(true);
    EXPECT_DOUBLE_EQ(tracker.availability(), 1.0);
    EXPECT_DOUBLE_EQ(tracker.meanOutageDuration(), 0.0);
}

TEST(BatchMeans, ConstantSamples)
{
    BatchMeansResult result = batchMeans({0.9, 0.9, 0.9, 0.9});
    EXPECT_DOUBLE_EQ(result.mean, 0.9);
    EXPECT_DOUBLE_EQ(result.standardError, 0.0);
    EXPECT_DOUBLE_EQ(result.halfWidth95(), 0.0);
    EXPECT_TRUE(result.brackets(0.9));
    EXPECT_FALSE(result.brackets(0.91));
}

TEST(BatchMeans, KnownMeanAndError)
{
    BatchMeansResult result = batchMeans({0.8, 1.0});
    EXPECT_DOUBLE_EQ(result.mean, 0.9);
    // s = sqrt(0.02), se = s / sqrt(2) = 0.1.
    EXPECT_NEAR(result.standardError, 0.1, 1e-12);
    // df = 1 -> t = 12.706.
    EXPECT_NEAR(result.halfWidth95(), 1.2706, 1e-3);
}

TEST(BatchMeans, TDistributionNarrowsWithMoreBatches)
{
    std::vector<double> two{0.8, 1.0};
    std::vector<double> many;
    for (int i = 0; i < 40; ++i)
        many.push_back(i % 2 == 0 ? 0.8 : 1.0);
    auto wide = batchMeans(two);
    auto narrow = batchMeans(many);
    EXPECT_LT(narrow.halfWidth95(), wide.halfWidth95());
}

TEST(BatchMeans, RequiresTwoSamples)
{
    EXPECT_THROW(batchMeans({0.9}), sdnav::ModelError);
    EXPECT_THROW(batchMeans({}), sdnav::ModelError);
}

TEST(UptimeTracker, FinalOutageCensoringFlagged)
{
    UptimeTracker tracker(true);
    tracker.observe(7.0, false);
    tracker.finish(10.0);
    // The horizon cut the episode short: its duration is a lower
    // bound, and the outage count includes one censored episode.
    EXPECT_TRUE(tracker.finalOutageCensored());
    EXPECT_DOUBLE_EQ(tracker.censoredOutageDuration(), 3.0);
    EXPECT_EQ(tracker.outageCount(), 1u);
    EXPECT_EQ(tracker.closedOutageCount(), 0u);
}

TEST(UptimeTracker, ClosedOutagesAreNotCensored)
{
    UptimeTracker tracker(true);
    tracker.observe(4.0, false);
    tracker.observe(6.0, true);
    tracker.observe(9.0, false);
    tracker.observe(9.5, true);
    tracker.finish(10.0);
    EXPECT_FALSE(tracker.finalOutageCensored());
    EXPECT_DOUBLE_EQ(tracker.censoredOutageDuration(), 0.0);
    EXPECT_EQ(tracker.outageCount(), 2u);
    EXPECT_EQ(tracker.closedOutageCount(), 2u);
}

TEST(UptimeTracker, NoOutagesMeansNothingCensored)
{
    UptimeTracker tracker(true);
    tracker.finish(10.0);
    EXPECT_FALSE(tracker.finalOutageCensored());
    EXPECT_DOUBLE_EQ(tracker.censoredOutageDuration(), 0.0);
    EXPECT_EQ(tracker.closedOutageCount(), 0u);
}

} // anonymous namespace
