/**
 * @file
 * Tests for the src/obs metrics library: counter/gauge/timer
 * correctness, snapshot shape and determinism, and the per-thread
 * cell design under real thread churn (this suite runs in the TSan
 * CI job alongside the other threaded suites).
 *
 * Every assertion branches on SDNAV_METRICS_ENABLED so the same
 * suite passes in the -DSDNAV_METRICS=OFF no-op build, proving the
 * stub API keeps compiling and linking.
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "obs/obs.hh"

namespace
{

using namespace sdnav;

#if SDNAV_METRICS_ENABLED
constexpr bool kEnabled = true;
#else
constexpr bool kEnabled = false;
#endif

TEST(Counter, StartsAtZeroAndAccumulates)
{
    obs::Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), kEnabled ? 42u : 0u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Counter, SumsAcrossThreadsExactly)
{
    obs::Counter counter;
    constexpr std::size_t threads = 8;
    constexpr std::uint64_t per_thread = 10000;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < per_thread; ++i)
                counter.add();
        });
    }
    for (std::thread &worker : pool)
        worker.join();
    EXPECT_EQ(counter.value(), kEnabled ? threads * per_thread : 0u);
}

TEST(Counter, CellsSurviveThreadExit)
{
    // A thread's contribution must not disappear when the thread
    // does: cells belong to the counter, not to the thread.
    obs::Counter counter;
    std::thread([&counter] { counter.add(7); }).join();
    std::thread([&counter] { counter.add(5); }).join();
    EXPECT_EQ(counter.value(), kEnabled ? 12u : 0u);
}

TEST(Gauge, SetAndSetMax)
{
    obs::Gauge gauge;
    EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
    gauge.set(3.5);
    EXPECT_DOUBLE_EQ(gauge.value(), kEnabled ? 3.5 : 0.0);
    gauge.setMax(2.0); // lower: no effect
    EXPECT_DOUBLE_EQ(gauge.value(), kEnabled ? 3.5 : 0.0);
    gauge.setMax(9.0); // higher: raises
    EXPECT_DOUBLE_EQ(gauge.value(), kEnabled ? 9.0 : 0.0);
}

TEST(Gauge, SetMaxRacesToTheMaximum)
{
    obs::Gauge gauge;
    constexpr int threads = 8;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&gauge, t] {
            for (int i = 0; i < 1000; ++i)
                gauge.setMax(static_cast<double>(t * 1000 + i));
        });
    }
    for (std::thread &worker : pool)
        worker.join();
    EXPECT_DOUBLE_EQ(gauge.value(), kEnabled ? 7999.0 : 0.0);
}

TEST(Timer, FoldsCountTotalMinMax)
{
    obs::Timer timer;
    EXPECT_EQ(timer.stats().count, 0u);
    EXPECT_DOUBLE_EQ(timer.stats().meanMs(), 0.0);
    timer.record(2.0);
    timer.record(6.0);
    timer.record(4.0);
    obs::TimerStats stats = timer.stats();
    if (kEnabled) {
        EXPECT_EQ(stats.count, 3u);
        EXPECT_DOUBLE_EQ(stats.totalMs, 12.0);
        EXPECT_DOUBLE_EQ(stats.minMs, 2.0);
        EXPECT_DOUBLE_EQ(stats.maxMs, 6.0);
        EXPECT_DOUBLE_EQ(stats.meanMs(), 4.0);
    } else {
        EXPECT_EQ(stats.count, 0u);
    }
}

TEST(Timer, FoldsAcrossThreads)
{
    obs::Timer timer;
    std::thread([&timer] { timer.record(1.0); }).join();
    std::thread([&timer] { timer.record(3.0); }).join();
    obs::TimerStats stats = timer.stats();
    if (kEnabled) {
        EXPECT_EQ(stats.count, 2u);
        EXPECT_DOUBLE_EQ(stats.minMs, 1.0);
        EXPECT_DOUBLE_EQ(stats.maxMs, 3.0);
    } else {
        EXPECT_EQ(stats.count, 0u);
    }
}

TEST(ScopedTimer, RecordsOneIntervalOnDestruction)
{
    obs::Timer timer;
    {
        obs::ScopedTimer scope(timer);
    }
    EXPECT_EQ(timer.stats().count, kEnabled ? 1u : 0u);
    EXPECT_GE(timer.stats().totalMs, 0.0);
}

TEST(Registry, ReturnsStableReferences)
{
    obs::Registry registry;
    obs::Counter &a = registry.counter("test.counter");
    obs::Counter &b = registry.counter("test.counter");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(registry.counter("test.counter").value(),
              kEnabled ? 3u : 0u);
}

TEST(Registry, SnapshotShape)
{
    obs::Registry registry;
    registry.counter("x.count").add(2);
    registry.gauge("x.level").set(1.5);
    registry.timer("x.time").record(4.0);

    json::Value snap = registry.snapshot();
    ASSERT_TRUE(snap.isObject());
    ASSERT_TRUE(snap.contains("enabled"));
    EXPECT_EQ(snap.at("enabled").asBool(), kEnabled);
    if (!kEnabled)
        return; // the no-op snapshot carries only the flag

    ASSERT_TRUE(snap.contains("counters"));
    ASSERT_TRUE(snap.contains("gauges"));
    ASSERT_TRUE(snap.contains("timers"));
    EXPECT_DOUBLE_EQ(snap.at("counters").at("x.count").asNumber(),
                     2.0);
    EXPECT_DOUBLE_EQ(snap.at("gauges").at("x.level").asNumber(), 1.5);
    const json::Value &timer = snap.at("timers").at("x.time");
    EXPECT_DOUBLE_EQ(timer.at("count").asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(timer.at("total_ms").asNumber(), 4.0);
    EXPECT_DOUBLE_EQ(timer.at("min_ms").asNumber(), 4.0);
    EXPECT_DOUBLE_EQ(timer.at("mean_ms").asNumber(), 4.0);
    EXPECT_DOUBLE_EQ(timer.at("max_ms").asNumber(), 4.0);
}

TEST(Registry, SnapshotOfEqualStateSerializesIdentically)
{
    // Metrics are stored name-ordered, so two registries holding the
    // same values dump byte-identical JSON regardless of the order
    // the metrics were first touched in.
    obs::Registry first;
    first.counter("a.one").add(1);
    first.counter("b.two").add(2);
    first.gauge("c.g").set(3.0);

    obs::Registry second;
    second.gauge("c.g").set(3.0);
    second.counter("b.two").add(2);
    second.counter("a.one").add(1);

    EXPECT_EQ(first.snapshot().dump(2), second.snapshot().dump(2));
}

TEST(Registry, ResetZeroesEverythingButKeepsReferences)
{
    obs::Registry registry;
    obs::Counter &counter = registry.counter("r.count");
    counter.add(9);
    registry.gauge("r.gauge").set(2.0);
    registry.timer("r.timer").record(1.0);
    registry.reset();
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_DOUBLE_EQ(registry.gauge("r.gauge").value(), 0.0);
    EXPECT_EQ(registry.timer("r.timer").stats().count, 0u);
    counter.add(); // cached reference still valid after reset
    EXPECT_EQ(counter.value(), kEnabled ? 1u : 0u);
}

TEST(Registry, ConcurrentHammerWithLiveSnapshots)
{
    // 8 writer threads hammer one registry while the main thread
    // takes snapshots mid-flight. Under TSan this is the data-race
    // proof for the per-thread cell design; the final quiescent
    // fold must still be exact.
    obs::Registry registry;
    constexpr std::size_t threads = 8;
    constexpr std::uint64_t per_thread = 20000;
    std::atomic<bool> go{false};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&registry, &go] {
            while (!go.load(std::memory_order_acquire)) {
            }
            obs::Counter &counter =
                registry.counter("hammer.count");
            obs::Timer &timer = registry.timer("hammer.time");
            obs::Gauge &gauge = registry.gauge("hammer.gauge");
            for (std::uint64_t i = 0; i < per_thread; ++i) {
                counter.add();
                if (i % 1000 == 0) {
                    timer.record(0.5);
                    gauge.setMax(static_cast<double>(i));
                }
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (int i = 0; i < 50; ++i) {
        json::Value snap = registry.snapshot();
        ASSERT_TRUE(snap.isObject());
    }
    for (std::thread &worker : pool)
        worker.join();
    EXPECT_EQ(registry.counter("hammer.count").value(),
              kEnabled ? threads * per_thread : 0u);
    EXPECT_EQ(registry.timer("hammer.time").stats().count,
              kEnabled ? threads * (per_thread / 1000) : 0u);
}

TEST(Registry, GlobalIsASingleton)
{
    EXPECT_EQ(&obs::Registry::global(), &obs::Registry::global());
}

TEST(Histogram, CountsTotalsAndTracksMax)
{
    obs::Histogram histogram;
    EXPECT_EQ(histogram.stats().count, 0u);
    EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
    histogram.record(1.0);
    histogram.record(2.0);
    histogram.record(9.0);
    obs::HistogramStats stats = histogram.stats();
    EXPECT_EQ(stats.count, kEnabled ? 3u : 0u);
    if (kEnabled) {
        EXPECT_DOUBLE_EQ(stats.total, 12.0);
        EXPECT_DOUBLE_EQ(stats.max, 9.0);
        EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
    }
    histogram.reset();
    EXPECT_EQ(histogram.stats().count, 0u);
}

TEST(Histogram, QuantilesAreExactToOneBucketWidth)
{
    if (!kEnabled)
        GTEST_SKIP() << "metrics disabled";
    obs::Histogram histogram;
    for (int i = 1; i <= 1000; ++i)
        histogram.record(static_cast<double>(i));
    // Buckets are 2^(1/8) (~9%) wide; each quantile reports its
    // bucket's upper bound, so the estimate sits in [q-th value,
    // q-th value * 2^(1/8)).
    double p50 = histogram.quantile(0.50);
    EXPECT_GE(p50, 500.0);
    EXPECT_LE(p50, 500.0 * 1.10);
    double p99 = histogram.quantile(0.99);
    EXPECT_GE(p99, 990.0);
    EXPECT_LE(p99, 990.0 * 1.10);
    obs::HistogramStats stats = histogram.stats();
    EXPECT_DOUBLE_EQ(stats.p50, p50);
    EXPECT_DOUBLE_EQ(stats.p99, p99);
    // Extremes clamp to the edge buckets instead of misfiling.
    histogram.record(0.0);
    histogram.record(1e9);
    EXPECT_DOUBLE_EQ(histogram.stats().max, 1e9);
    EXPECT_EQ(histogram.stats().count, 1002u);
}

TEST(Histogram, FoldsAcrossThreads)
{
    obs::Histogram histogram;
    constexpr std::size_t threads = 4;
    constexpr int perThread = 5000;
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t)
        pool.emplace_back([&histogram] {
            for (int i = 0; i < perThread; ++i)
                histogram.record(1.0 + (i % 100));
        });
    for (std::thread &worker : pool)
        worker.join();
    EXPECT_EQ(histogram.stats().count,
              kEnabled ? threads * perThread : 0u);
}

TEST(Registry, SnapshotIncludesHistogramFamily)
{
    obs::Registry registry;
    registry.histogram("unit.latency").record(2.5);
    json::Value snap = registry.snapshot();
    if (!kEnabled) {
        EXPECT_FALSE(snap.at("enabled").asBool());
        return;
    }
    const json::Value &family = snap.at("histograms");
    ASSERT_TRUE(family.contains("unit.latency"));
    const json::Value &entry = family.at("unit.latency");
    for (const char *key :
         {"count", "mean", "p50", "p90", "p99", "max"})
        EXPECT_TRUE(entry.contains(key)) << key;
    EXPECT_DOUBLE_EQ(entry.at("count").asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(entry.at("max").asNumber(), 2.5);
}

} // anonymous namespace
