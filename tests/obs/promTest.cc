/**
 * @file
 * Tests for the Prometheus text exposition (obs/prom.cc): the name
 * mangling, per-kind rendering, cumulative histogram buckets, and
 * the comment-only page of a -DSDNAV_METRICS=OFF build.
 */

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hh"

namespace
{

using namespace sdnav;

#if SDNAV_METRICS_ENABLED

TEST(Prom, CountersRenderAsTotalWithTypeLine)
{
    obs::Registry registry;
    registry.counter("server.requests").add(7);
    std::string text = registry.prometheusText();
    EXPECT_NE(text.find("# TYPE server_requests_total counter\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("server_requests_total 7\n"),
              std::string::npos);
}

TEST(Prom, GaugesRenderPlain)
{
    obs::Registry registry;
    registry.gauge("server.queue_depth").set(3.5);
    std::string text = registry.prometheusText();
    EXPECT_NE(text.find("# TYPE server_queue_depth gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("server_queue_depth 3.5\n"),
              std::string::npos);
}

TEST(Prom, TimersRenderAsMsSummaries)
{
    obs::Registry registry;
    obs::Timer &timer = registry.timer("server.compile");
    timer.record(2.0);
    timer.record(3.0);
    std::string text = registry.prometheusText();
    EXPECT_NE(text.find("# TYPE server_compile_ms summary\n"),
              std::string::npos);
    EXPECT_NE(text.find("server_compile_ms_sum 5\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("server_compile_ms_count 2\n"),
              std::string::npos);
}

TEST(Prom, HistogramBucketsAreCumulativeAndEndAtInf)
{
    obs::Registry registry;
    obs::Histogram &hist =
        registry.histogram("server.request_latency_ms");
    hist.record(0.5);
    hist.record(0.5);
    hist.record(100.0);

    // The folded buckets themselves: ascending bounds, non-decreasing
    // cumulative counts, final +Inf entry carrying the grand total.
    std::vector<obs::HistogramBucket> buckets =
        hist.cumulativeBuckets();
    ASSERT_GE(buckets.size(), 2u);
    for (std::size_t i = 1; i < buckets.size(); ++i) {
        EXPECT_GT(buckets[i].upperBound, buckets[i - 1].upperBound);
        EXPECT_GE(buckets[i].cumulativeCount,
                  buckets[i - 1].cumulativeCount);
    }
    EXPECT_TRUE(std::isinf(buckets.back().upperBound));
    EXPECT_EQ(buckets.back().cumulativeCount, 3u);

    std::string text = registry.prometheusText();
    EXPECT_NE(
        text.find("# TYPE server_request_latency_ms histogram\n"),
        std::string::npos);
    EXPECT_NE(
        text.find("server_request_latency_ms_bucket{le=\"+Inf\"} 3\n"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("server_request_latency_ms_count 3\n"),
              std::string::npos);
}

TEST(Prom, EmptyHistogramStillRendersAZeroInfBucket)
{
    obs::Registry registry;
    registry.histogram("server.request_latency_ms");
    std::string text = registry.prometheusText();
    EXPECT_NE(
        text.find("server_request_latency_ms_bucket{le=\"+Inf\"} 0\n"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("server_request_latency_ms_count 0\n"),
              std::string::npos);
}

TEST(Prom, IllegalNameCharactersBecomeUnderscores)
{
    obs::Registry registry;
    registry.counter("bdd.gc-runs").add();
    registry.counter("9lives").add();
    std::string text = registry.prometheusText();
    EXPECT_NE(text.find("bdd_gc_runs_total 1\n"), std::string::npos)
        << text;
    // A leading digit is not a legal first character.
    EXPECT_NE(text.find("_9lives_total 1\n"), std::string::npos);
}

TEST(Prom, EmptyRegistryRendersEmptyText)
{
    obs::Registry registry;
    EXPECT_EQ(registry.prometheusText(), "");
}

#else // !SDNAV_METRICS_ENABLED

TEST(Prom, DisabledBuildServesACommentOnlyPage)
{
    std::string text = obs::Registry::global().prometheusText();
    EXPECT_EQ(text[0], '#');
    EXPECT_NE(text.find("metrics disabled"), std::string::npos);
    EXPECT_EQ(text.back(), '\n');
}

#endif // SDNAV_METRICS_ENABLED

} // anonymous namespace
