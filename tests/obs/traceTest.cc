/**
 * @file
 * Tests for the src/obs tracer: span/instant recording, Chrome
 * trace_event export shape, the drop-pairs-whole overflow contract,
 * and concurrent recording with a live export (this suite runs in the
 * TSan CI job alongside the other threaded suites).
 *
 * Every assertion branches on SDNAV_METRICS_ENABLED so the same
 * suite passes in the -DSDNAV_METRICS=OFF no-op build, proving the
 * stub tracer keeps compiling, linking, and writing valid (empty)
 * traces.
 */

#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "obs/trace.hh"

namespace
{

using namespace sdnav;

#if SDNAV_METRICS_ENABLED
constexpr bool kEnabled = true;
#else
constexpr bool kEnabled = false;
#endif

/** Non-metadata events of an exported trace, in stream order. */
std::vector<json::Value>
traceBody(const json::Value &root)
{
    std::vector<json::Value> body;
    for (const json::Value &event : root.at("traceEvents").asArray()) {
        if (event.at("ph").asString() != "M")
            body.push_back(event);
    }
    return body;
}

/**
 * Assert the invariants tools/trace_validate.py checks: ts sorted
 * non-decreasing, and per-tid every E closes the innermost open B of
 * the same name with nothing left open.
 */
void
expectWellFormed(const json::Value &root)
{
    double last_ts = -1.0;
    std::map<double, std::vector<std::string>> open;
    for (const json::Value &event : traceBody(root)) {
        double ts = event.at("ts").asNumber();
        EXPECT_GE(ts, last_ts);
        last_ts = ts;
        double tid = event.at("tid").asNumber();
        EXPECT_EQ(event.at("pid").asNumber(), 1.0);
        EXPECT_GE(tid, 1.0);
        std::string ph = event.at("ph").asString();
        std::string name = event.at("name").asString();
        if (ph == "B") {
            open[tid].push_back(name);
        } else if (ph == "E") {
            ASSERT_FALSE(open[tid].empty());
            EXPECT_EQ(open[tid].back(), name);
            open[tid].pop_back();
        } else {
            EXPECT_EQ(ph, "i");
            EXPECT_EQ(event.at("s").asString(), "t");
        }
    }
    for (const auto &[tid, stack] : open)
        EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
}

TEST(Tracer, DisabledRecordsNothing)
{
    obs::Tracer tracer;
    tracer.begin("x");
    tracer.end("x");
    tracer.instant("y");
    obs::TraceStats stats = tracer.stats();
    EXPECT_EQ(stats.recorded, 0u);
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_TRUE(traceBody(tracer.chromeTrace()).empty());
}

TEST(Tracer, RecordsSpansAndInstants)
{
    obs::Tracer tracer;
    tracer.enable();
    {
        obs::TraceSpan span("work", 7, tracer);
        tracer.instant("tick", tracer.stats().recorded);
    }
    tracer.disable();

    obs::TraceStats stats = tracer.stats();
    EXPECT_EQ(stats.recorded, kEnabled ? 3u : 0u);
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_EQ(stats.threads, kEnabled ? 1u : 0u);

    json::Value root = tracer.chromeTrace();
    EXPECT_EQ(root.at("displayTimeUnit").asString(), "ms");
    std::vector<json::Value> body = traceBody(root);
    ASSERT_EQ(body.size(), kEnabled ? 3u : 0u);
    if (kEnabled) {
        EXPECT_EQ(body[0].at("ph").asString(), "B");
        EXPECT_EQ(body[0].at("name").asString(), "work");
        EXPECT_DOUBLE_EQ(body[0].at("args").at("arg").asNumber(), 7.0);
        EXPECT_EQ(body[1].at("ph").asString(), "i");
        EXPECT_EQ(body[2].at("ph").asString(), "E");
        EXPECT_EQ(body[2].at("name").asString(), "work");
    }
    expectWellFormed(root);
}

TEST(Tracer, SequentialOverflowDropsSpansWhole)
{
    obs::Tracer tracer;
    tracer.enable(4); // room for exactly two B/E pairs
    for (int i = 0; i < 10; ++i)
        obs::TraceSpan span("loop", tracer);
    tracer.disable();

    obs::TraceStats stats = tracer.stats();
    EXPECT_EQ(stats.recorded, kEnabled ? 4u : 0u);
    EXPECT_EQ(stats.dropped, kEnabled ? 16u : 0u);
    expectWellFormed(tracer.chromeTrace());
}

TEST(Tracer, NestedOverflowStillClosesRecordedBegins)
{
    obs::Tracer tracer;
    tracer.enable(2);
    {
        obs::TraceSpan outer("outer", tracer);
        obs::TraceSpan middle("middle", tracer);
        // Buffer is at capacity: this span is dropped whole, while
        // the two recorded begins still get their (overshooting)
        // ends.
        obs::TraceSpan inner("inner", tracer);
    }
    tracer.disable();

    obs::TraceStats stats = tracer.stats();
    EXPECT_EQ(stats.recorded, kEnabled ? 4u : 0u);
    EXPECT_EQ(stats.dropped, kEnabled ? 2u : 0u);
    expectWellFormed(tracer.chromeTrace());
}

TEST(Tracer, ThreadsGetDistinctTidsAndMetadata)
{
    obs::Tracer tracer;
    tracer.enable();
    constexpr std::size_t threads = 3;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&tracer] {
            obs::TraceSpan span("worker", tracer);
        });
    }
    for (std::thread &worker : pool)
        worker.join();
    tracer.disable();

    EXPECT_EQ(tracer.stats().threads, kEnabled ? threads : 0u);

    json::Value root = tracer.chromeTrace();
    std::map<double, int> events_per_tid;
    for (const json::Value &event : traceBody(root))
        ++events_per_tid[event.at("tid").asNumber()];
    EXPECT_EQ(events_per_tid.size(), kEnabled ? threads : 0u);
    for (const auto &[tid, count] : events_per_tid)
        EXPECT_EQ(count, 2);

    std::size_t thread_meta = 0;
    for (const json::Value &event :
         root.at("traceEvents").asArray()) {
        if (event.at("ph").asString() == "M" &&
            event.at("name").asString() == "thread_name")
            ++thread_meta;
    }
    EXPECT_EQ(thread_meta, kEnabled ? threads : 0u);
    expectWellFormed(root);
}

TEST(Tracer, ConcurrentRecordingWithLiveExport)
{
    obs::Tracer tracer;
    tracer.enable();
    constexpr std::size_t threads = 4;
    constexpr int spans_per_thread = 500;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&tracer] {
            for (int i = 0; i < spans_per_thread; ++i) {
                obs::TraceSpan span("hammer",
                                    static_cast<std::uint64_t>(i),
                                    tracer);
                tracer.instant("beat", tracer.stats().recorded);
            }
        });
    }
    // Export while writers are active: must be data-race free (the
    // TSan job checks) and well-formed even mid-flight is not
    // required — only the quiescent export below is asserted on.
    for (int i = 0; i < 5; ++i)
        tracer.chromeTrace();
    for (std::thread &worker : pool)
        worker.join();
    tracer.disable();

    obs::TraceStats stats = tracer.stats();
    EXPECT_EQ(stats.recorded + stats.dropped,
              kEnabled ? threads * spans_per_thread * 3u : 0u);
    expectWellFormed(tracer.chromeTrace());
}

TEST(Tracer, ResetClearsEventsAndDisables)
{
    obs::Tracer tracer;
    tracer.enable();
    tracer.instant("gone");
    tracer.reset();
    EXPECT_FALSE(tracer.enabled());
    EXPECT_EQ(tracer.stats().recorded, 0u);
    EXPECT_TRUE(traceBody(tracer.chromeTrace()).empty());
}

TEST(Tracer, WriteFileProducesParsableTrace)
{
    obs::Tracer tracer;
    tracer.enable();
    {
        obs::TraceSpan span("io", tracer);
    }
    tracer.disable();

    std::string path = testing::TempDir() + "sdnav_trace_test.json";
    tracer.writeFile(path);
    json::Value root = json::parseFile(path);
    EXPECT_EQ(root.at("displayTimeUnit").asString(), "ms");
    EXPECT_EQ(traceBody(root).size(), kEnabled ? 2u : 0u);
    std::remove(path.c_str());
}

TEST(Tracer, WriteFileThrowsOnBadPath)
{
    obs::Tracer tracer;
    EXPECT_THROW(tracer.writeFile("/nonexistent-dir/trace.json"),
                 std::runtime_error);
}

} // anonymous namespace
