/**
 * @file
 * Tests for the sensitivity analysis.
 */

#include <gtest/gtest.h>

#include "analysis/sensitivity.hh"
#include "model/swCentric.hh"
#include "fmea/openContrail.hh"
#include "model/hwCentric.hh"

namespace
{

using namespace sdnav::analysis;
using namespace sdnav::model;
namespace fmea = sdnav::fmea;
namespace topology = sdnav::topology;

TEST(HwSensitivity, CoversAllFourParameters)
{
    auto rows = hwSensitivity(topology::ReferenceKind::Small,
                              HwParams{});
    ASSERT_EQ(rows.size(), 4u);
    for (const auto &row : rows) {
        EXPECT_GE(row.derivative, 0.0) << row.parameter;
        EXPECT_GE(row.downtimeSavedMinutes, -1e-9) << row.parameter;
    }
}

TEST(HwSensitivity, RackDominatesSmallTopology)
{
    // In the Small topology the single rack is the series bottleneck:
    // improving it 10x saves the most downtime.
    auto rows = hwSensitivity(topology::ReferenceKind::Small,
                              HwParams{});
    EXPECT_EQ(rows.front().parameter, "A_R (rack)");
    EXPECT_NEAR(rows.front().downtimeSavedMinutes, 4.7, 0.5);
}

TEST(HwSensitivity, RackIrrelevantInLargeTopology)
{
    // With three racks the rack parameter's 10x improvement saves
    // almost nothing.
    auto rows = hwSensitivity(topology::ReferenceKind::Large,
                              HwParams{});
    double rack_saved = 0.0;
    for (const auto &row : rows) {
        if (row.parameter == "A_R (rack)")
            rack_saved = row.downtimeSavedMinutes;
    }
    EXPECT_LT(rack_saved, 1.0);
}

TEST(HwSensitivity, DerivativeMatchesSeriesIntuition)
{
    // For the Small topology, dA/dA_R ~= the rest of the system's
    // availability (~1).
    auto rows = hwSensitivity(topology::ReferenceKind::Small,
                              HwParams{});
    for (const auto &row : rows) {
        if (row.parameter == "A_R (rack)") {
            EXPECT_NEAR(row.derivative, 1.0, 1e-3);
        }
    }
}

TEST(SwSensitivity, ManualProcessesDominateCp)
{
    // The paper's weak-link finding: Database (manual) processes and
    // the supervisor drive CP downtime, so A_S tops the ranking among
    // process parameters in scenario 2 on the Large topology (where
    // no rack single point of failure masks it).
    auto catalog = fmea::openContrail3();
    auto rows = swSensitivity(catalog, topology::largeTopology(),
                              SupervisorPolicy::Required, SwParams{},
                              fmea::Plane::ControlPlane);
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_EQ(rows.front().parameter, "A_S (manual process)");
}

TEST(SwSensitivity, AutoProcessesDominateDp)
{
    // DP downtime at defaults is dominated by the two vRouter
    // processes (availability A) in scenario 1.
    auto catalog = fmea::openContrail3();
    auto rows = swSensitivity(catalog, topology::largeTopology(),
                              SupervisorPolicy::NotRequired,
                              SwParams{}, fmea::Plane::DataPlane);
    EXPECT_EQ(rows.front().parameter, "A (auto process)");
    // Its 10x improvement saves ~19 of the ~21 m/y.
    EXPECT_NEAR(rows.front().downtimeSavedMinutes, 19.0, 1.5);
}

TEST(SwSensitivity, ImprovedAvailabilityIsNeverWorse)
{
    auto catalog = fmea::openContrail3();
    auto rows = swSensitivity(catalog, topology::smallTopology(),
                              SupervisorPolicy::Required, SwParams{},
                              fmea::Plane::ControlPlane);
    SwAvailabilityModel model(catalog, topology::smallTopology(),
                              SupervisorPolicy::Required);
    double base = model.controlPlaneAvailability(SwParams{});
    for (const auto &row : rows)
        EXPECT_GE(row.improvedAvailability + 1e-12, base)
            << row.parameter;
}

TEST(SensitivityTable, RendersAllRows)
{
    auto rows = hwSensitivity(topology::ReferenceKind::Small,
                              HwParams{});
    auto table = sensitivityTable("HW sensitivity (Small)", rows);
    EXPECT_EQ(table.rowCount(), 4u);
    std::string out = table.str();
    EXPECT_NE(out.find("A_C (role)"), std::string::npos);
    EXPECT_NE(out.find("m/y saved"), std::string::npos);
}

TEST(GenericSensitivity, WorksWithCustomEvaluator)
{
    // A linear evaluator: derivative must be the coefficient.
    std::vector<std::pair<std::string, double HwParams::*>> fields{
        {"A_C", &HwParams::roleAvailability}};
    auto rows = parameterSensitivity<HwParams>(
        HwParams{}, fields, [](const HwParams &p) {
            return 0.5 * p.roleAvailability;
        });
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_NEAR(rows[0].derivative, 0.5, 1e-6);
}

} // anonymous namespace
