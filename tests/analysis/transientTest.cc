/**
 * @file
 * Tests for transient availability analysis, cross-checked against
 * the CTMC uniformization solver.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/transient.hh"
#include "common/units.hh"
#include "common/error.hh"
#include "fmea/openContrail.hh"
#include "markov/models.hh"
#include "model/exactModel.hh"

namespace
{

using namespace sdnav;
using namespace sdnav::analysis;

TEST(ComponentTransient, BoundaryValues)
{
    // t = 0: exactly the initial state.
    EXPECT_DOUBLE_EQ(componentTransient(0.99, 100.0, 0.0,
                                        InitialCondition::AllUp),
                     1.0);
    EXPECT_DOUBLE_EQ(componentTransient(0.99, 100.0, 0.0,
                                        InitialCondition::AllDown),
                     0.0);
    // t -> infinity: the steady state from either side.
    EXPECT_NEAR(componentTransient(0.99, 100.0, 1e9,
                                   InitialCondition::AllUp),
                0.99, 1e-12);
    EXPECT_NEAR(componentTransient(0.99, 100.0, 1e9,
                                   InitialCondition::AllDown),
                0.99, 1e-12);
}

TEST(ComponentTransient, MatchesCtmcUniformization)
{
    double a = 0.95, mtbf = 200.0;
    double mttr = mttrFromAvailability(a, mtbf);
    markov::Ctmc chain = markov::twoStateModel(mtbf, mttr);
    for (double t : {0.5, 2.0, 10.0, 50.0}) {
        double closed = componentTransient(a, mtbf, t,
                                           InitialCondition::AllUp);
        double ctmc = chain.transientAvailability({1.0, 0.0}, t);
        EXPECT_NEAR(closed, ctmc, 1e-9) << "t=" << t;
        double closed_down = componentTransient(
            a, mtbf, t, InitialCondition::AllDown);
        double ctmc_down = chain.transientAvailability({0.0, 1.0}, t);
        EXPECT_NEAR(closed_down, ctmc_down, 1e-9) << "t=" << t;
    }
}

TEST(ComponentTransient, PerfectComponentIsAlwaysUp)
{
    EXPECT_DOUBLE_EQ(componentTransient(1.0, 100.0, 5.0,
                                        InitialCondition::AllDown),
                     1.0);
}

TEST(ComponentTransient, InputValidation)
{
    EXPECT_THROW(componentTransient(1.5, 100.0, 1.0,
                                    InitialCondition::AllUp),
                 ModelError);
    EXPECT_THROW(componentTransient(0.9, 0.0, 1.0,
                                    InitialCondition::AllUp),
                 ModelError);
    EXPECT_THROW(componentTransient(0.9, 100.0, -1.0,
                                    InitialCondition::AllUp),
                 ModelError);
}

TEST(SystemTransient, MonotoneRecoveryFromColdStart)
{
    auto catalog = fmea::openContrail3();
    auto system = model::buildExactSystem(
        catalog, topology::smallTopology(),
        model::SupervisorPolicy::Required, model::SwParams{},
        fmea::Plane::ControlPlane);
    std::vector<double> times{0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0};
    auto curve = systemTransient(system, 5000.0, times,
                                 InitialCondition::AllDown);
    ASSERT_EQ(curve.size(), times.size());
    EXPECT_DOUBLE_EQ(curve.front(), 0.0);
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i] + 1e-12, curve[i - 1]);
    EXPECT_NEAR(curve.back(), system.availabilityExact(), 1e-6);
}

TEST(SystemTransient, DecayFromFreshStart)
{
    auto catalog = fmea::openContrail3();
    auto system = model::buildExactSystem(
        catalog, topology::smallTopology(),
        model::SupervisorPolicy::Required, model::SwParams{},
        fmea::Plane::ControlPlane);
    std::vector<double> times{0.0, 1.0, 10.0, 100.0};
    auto curve = systemTransient(system, 5000.0, times,
                                 InitialCondition::AllUp);
    EXPECT_DOUBLE_EQ(curve.front(), 1.0);
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_LE(curve[i], curve[i - 1] + 1e-12);
    EXPECT_NEAR(curve.back(), system.availabilityExact(), 1e-7);
}

TEST(SystemTransient, TimeToSteadyStateBrackets)
{
    auto catalog = fmea::openContrail3();
    auto system = model::buildExactSystem(
        catalog, topology::smallTopology(),
        model::SupervisorPolicy::Required, model::SwParams{},
        fmea::Plane::ControlPlane);
    double t = timeToSteadyState(system, 5000.0,
                                 InitialCondition::AllDown, 1e-6);
    EXPECT_GT(t, 0.1);
    EXPECT_LT(t, 200.0);
    double steady = system.availabilityExact();
    double at_t = systemTransient(system, 5000.0, {t},
                                  InitialCondition::AllDown)[0];
    EXPECT_NEAR(at_t, steady, 1.1e-6);
    double before = systemTransient(system, 5000.0, {t * 0.5},
                                    InitialCondition::AllDown)[0];
    EXPECT_GT(std::fabs(before - steady), 1e-6);
}

TEST(SystemTransient, AlreadySteadySystemNeedsNoTime)
{
    rbd::RbdSystem system;
    auto c = system.addComponent("perfect", 1.0);
    system.setRoot(rbd::component(c));
    EXPECT_DOUBLE_EQ(timeToSteadyState(system, 100.0,
                                       InitialCondition::AllUp),
                     0.0);
}

TEST(TransientTable, Rendering)
{
    auto table = transientTable("curve", {0.0, 1.0}, {0.0, 0.5});
    std::string out = table.str();
    EXPECT_NE(out.find("A_sys(t)"), std::string::npos);
    EXPECT_NE(out.find("0.50000000"), std::string::npos);
    EXPECT_THROW(transientTable("bad", {0.0}, {0.0, 0.5}),
                 ModelError);
}

} // anonymous namespace
