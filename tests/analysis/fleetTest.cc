/**
 * @file
 * Tests for the fleet-level analysis.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/fleet.hh"
#include "common/error.hh"
#include "common/units.hh"

namespace
{

using namespace sdnav;
using namespace sdnav::analysis;

FleetModel
paperFleet()
{
    // The paper's motivating case: 500 edge sites, each a single-rack
    // Small deployment whose rack fails "every 500 years".
    FleetModel fleet;
    fleet.sites = 500;
    fleet.siteAvailability = 0.99999;
    fleet.siteOutagesPerHour = 1.0 / (500.0 * hoursPerYear);
    return fleet;
}

TEST(Fleet, ExpectedSitesDown)
{
    FleetModel fleet = paperFleet();
    EXPECT_NEAR(fleet.expectedSitesDown(), 500.0 * 1e-5, 1e-12);
}

TEST(Fleet, AnySiteDownProbability)
{
    FleetModel fleet = paperFleet();
    EXPECT_NEAR(fleet.probabilityAnySiteDown(),
                1.0 - std::pow(0.99999, 500.0), 1e-12);
}

TEST(Fleet, PaperFiveHundredSitesArgument)
{
    // "a yearly outage may be unacceptable": with 500 sites at one
    // rack outage per 500 years each, the fleet sees ~1 rack outage
    // per year, and the chance of at least one within a year is
    // ~63%. The paper's qualitative claim, quantified.
    FleetModel fleet = paperFleet();
    EXPECT_NEAR(fleet.fleetOutagesPerYear(), 1.0, 1e-9);
    EXPECT_NEAR(fleet.probabilityOutageWithin(hoursPerYear),
                1.0 - std::exp(-1.0), 1e-9);
    EXPECT_NEAR(fleet.meanTimeBetweenFleetOutagesHours(),
                hoursPerYear, 1e-6);
}

TEST(Fleet, AtLeastKUpMatchesBinomial)
{
    FleetModel fleet;
    fleet.sites = 10;
    fleet.siteAvailability = 0.9;
    EXPECT_NEAR(fleet.probabilityAtLeastUp(10),
                std::pow(0.9, 10.0), 1e-12);
    EXPECT_DOUBLE_EQ(fleet.probabilityAtLeastUp(0), 1.0);
    EXPECT_GT(fleet.probabilityAtLeastUp(8),
              fleet.probabilityAtLeastUp(9));
}

TEST(Fleet, NoFailuresMeansInfiniteQuiet)
{
    FleetModel fleet;
    fleet.sites = 100;
    fleet.siteAvailability = 1.0;
    fleet.siteOutagesPerHour = 0.0;
    EXPECT_DOUBLE_EQ(fleet.probabilityAnySiteDown(), 0.0);
    EXPECT_DOUBLE_EQ(fleet.probabilityOutageWithin(1e6), 0.0);
    EXPECT_TRUE(
        std::isinf(fleet.meanTimeBetweenFleetOutagesHours()));
}

TEST(Fleet, FromOutageProfile)
{
    OutageProfile profile;
    profile.availability = 0.9999;
    profile.outagesPerHour = 1e-4;
    FleetModel fleet = fleetFromProfile(42, profile);
    EXPECT_EQ(fleet.sites, 42u);
    EXPECT_DOUBLE_EQ(fleet.siteAvailability, 0.9999);
    EXPECT_DOUBLE_EQ(fleet.siteOutagesPerHour, 1e-4);
}

TEST(Fleet, ScalesLinearlyInRateAndSites)
{
    FleetModel one;
    one.sites = 1;
    one.siteAvailability = 0.9999;
    one.siteOutagesPerHour = 1e-5;
    FleetModel many = one;
    many.sites = 100;
    EXPECT_NEAR(many.fleetOutagesPerYear(),
                100.0 * one.fleetOutagesPerYear(), 1e-9);
}

TEST(Fleet, Validation)
{
    FleetModel fleet;
    fleet.sites = 0;
    EXPECT_THROW(fleet.validate(), ModelError);
    fleet = paperFleet();
    fleet.siteAvailability = 1.5;
    EXPECT_THROW(fleet.expectedSitesDown(), ModelError);
    fleet = paperFleet();
    fleet.siteOutagesPerHour = -1.0;
    EXPECT_THROW(fleet.fleetOutagesPerYear(), ModelError);
    fleet = paperFleet();
    EXPECT_THROW(fleet.probabilityOutageWithin(-1.0), ModelError);
}

TEST(Fleet, TableRendering)
{
    auto table = fleetTable("fleet", paperFleet());
    std::string out = table.str();
    EXPECT_NE(out.find("500"), std::string::npos);
    EXPECT_NE(out.find("P[outage within 1y]"), std::string::npos);
}

} // anonymous namespace
