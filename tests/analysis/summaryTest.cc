/**
 * @file
 * Tests for the availability summary renderers.
 */

#include <gtest/gtest.h>

#include "analysis/summary.hh"

namespace
{

using namespace sdnav::analysis;

TEST(Summary, TableHasAllColumns)
{
    auto table = availabilitySummary(
        "Results", {{"config-a", 0.99999}, {"config-b", 0.999}});
    EXPECT_EQ(table.rowCount(), 2u);
    std::string out = table.str();
    EXPECT_NE(out.find("configuration"), std::string::npos);
    EXPECT_NE(out.find("downtime (m/y)"), std::string::npos);
    EXPECT_NE(out.find("nines"), std::string::npos);
    EXPECT_NE(out.find("config-a"), std::string::npos);
}

TEST(Summary, DowntimeValuesAreCorrect)
{
    auto table =
        availabilitySummary("T", {{"five-nines", 0.99999}});
    std::string out = table.str();
    // 5.26 m/y and 5.00 nines.
    EXPECT_NE(out.find("5.26"), std::string::npos);
    EXPECT_NE(out.find("5.00"), std::string::npos);
}

TEST(Summary, LineFormat)
{
    std::string line = summaryLine("1S CP", 0.99998873);
    EXPECT_NE(line.find("1S CP"), std::string::npos);
    EXPECT_NE(line.find("A=0.99998873"), std::string::npos);
    EXPECT_NE(line.find("m/y"), std::string::npos);
    EXPECT_NE(line.find("nines"), std::string::npos);
}

TEST(Summary, EmptyEntriesGiveEmptyBody)
{
    auto table = availabilitySummary("Empty", {});
    EXPECT_EQ(table.rowCount(), 0u);
}

} // anonymous namespace
