/**
 * @file
 * Tests for the figure-series generators.
 */

#include <gtest/gtest.h>

#include "analysis/figures.hh"
#include "common/error.hh"
#include "fmea/openContrail.hh"
#include "model/hwCentric.hh"
#include "model/swCentric.hh"

namespace
{

using namespace sdnav::analysis;
using namespace sdnav::model;
namespace fmea = sdnav::fmea;

TEST(Figure3, GridAndSeriesShape)
{
    FigureData fig = figure3(HwParams{}, 0.999, 1.0, 11);
    EXPECT_EQ(fig.xs.size(), 11u);
    ASSERT_EQ(fig.labels.size(), 3u);
    EXPECT_EQ(fig.labels[0], "Small");
    EXPECT_EQ(fig.labels[2], "Large");
    for (const auto &series : fig.ys)
        EXPECT_EQ(series.size(), 11u);
    EXPECT_DOUBLE_EQ(fig.xs.front(), 0.999);
    EXPECT_DOUBLE_EQ(fig.xs.back(), 1.0);
}

TEST(Figure3, ValuesMatchClosedForms)
{
    FigureData fig = figure3(HwParams{}, 0.999, 1.0, 11);
    HwParams params;
    params.roleAvailability = 0.999;
    EXPECT_DOUBLE_EQ(fig.valueAt("Small", 0.999),
                     hwSmallAvailability(params));
    params.roleAvailability = 1.0;
    EXPECT_DOUBLE_EQ(fig.valueAt("Large", 1.0),
                     hwLargeAvailability(params));
}

TEST(Figure3, LargeDominatesSmallEverywhere)
{
    FigureData fig = figure3(HwParams{}, 0.999, 1.0, 21);
    for (std::size_t i = 0; i < fig.xs.size(); ++i)
        EXPECT_GT(fig.ys[2][i], fig.ys[0][i]) << "x=" << fig.xs[i];
}

TEST(Figure4, SeriesOrderingMatchesPaperStory)
{
    auto catalog = fmea::openContrail3();
    FigureData fig = figure4(catalog, SwParams{}, 9);
    ASSERT_EQ(fig.labels.size(), 4u);
    std::size_t mid = fig.xs.size() / 2; // x = 0 (defaults).
    double cp_1s = fig.ys[0][mid];
    double cp_2s = fig.ys[1][mid];
    double cp_1l = fig.ys[2][mid];
    double cp_2l = fig.ys[3][mid];
    // Large beats Small; "not required" beats "required".
    EXPECT_GT(cp_1l, cp_1s);
    EXPECT_GT(cp_1s, cp_2s);
    EXPECT_GT(cp_1l, cp_2l);
    EXPECT_GT(cp_2l, cp_2s);
}

TEST(Figure4, MonotoneInProcessAvailability)
{
    auto catalog = fmea::openContrail3();
    FigureData fig = figure4(catalog, SwParams{}, 9);
    for (const auto &series : fig.ys) {
        for (std::size_t i = 1; i < series.size(); ++i)
            EXPECT_GT(series[i], series[i - 1]);
    }
}

TEST(Figure5, SupervisorGapDominates)
{
    auto catalog = fmea::openContrail3();
    FigureData fig = figure5(catalog, SwParams{}, 9);
    std::size_t mid = fig.xs.size() / 2;
    // DP: the supervisor-required options sit well below, and Small
    // vs Large barely differ (the paper's observation).
    double dp_1s = fig.ys[0][mid];
    double dp_2s = fig.ys[1][mid];
    double dp_1l = fig.ys[2][mid];
    double dp_2l = fig.ys[3][mid];
    EXPECT_GT(dp_1s - dp_2s, 5e-5);
    EXPECT_NEAR(dp_1s, dp_1l, 2e-5);
    EXPECT_NEAR(dp_2s, dp_2l, 2e-5);
}

TEST(FigureData, TableRendering)
{
    FigureData fig = figure3(HwParams{}, 0.999, 1.0, 3);
    auto table = fig.toTable(6);
    std::string out = table.str();
    EXPECT_NE(out.find("Figure 3"), std::string::npos);
    EXPECT_NE(out.find("Small"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 3u);
}

TEST(FigureData, CsvRendering)
{
    FigureData fig = figure3(HwParams{}, 0.999, 1.0, 3);
    std::string csv = fig.toCsv(8).str();
    EXPECT_NE(csv.find("A_C,Small,Medium,Large"), std::string::npos);
    // Header + 3 data rows.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(FigureData, ValueAtErrors)
{
    FigureData fig = figure3(HwParams{}, 0.999, 1.0, 3);
    EXPECT_THROW(fig.valueAt("Nope", 0.999), sdnav::ModelError);
    EXPECT_THROW(fig.valueAt("Small", 0.12345), sdnav::ModelError);
}

TEST(Figures, RejectDegenerateGrids)
{
    EXPECT_THROW(figure3(HwParams{}, 0.999, 1.0, 1),
                 sdnav::ModelError);
    EXPECT_THROW(figure3(HwParams{}, 1.0, 0.999, 5),
                 sdnav::ModelError);
}

} // anonymous namespace
