/**
 * @file
 * Tests for the rejuvenation analysis, including the classic
 * theoretical results (memoryless processes never benefit; wear-out
 * processes have a finite optimal period) and an empirical check
 * against the renewal simulator.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/rejuvenation.hh"
#include "common/error.hh"
#include "prob/distributions.hh"
#include "prob/rng.hh"

namespace
{

using namespace sdnav::analysis;

RejuvenationModel
wearOutModel()
{
    RejuvenationModel model;
    model.weibullShape = 3.0;     // Strong aging.
    model.mtbfHours = 1000.0;
    model.failureRepairHours = 8.0; // Expensive crash recovery.
    model.restartHours = 0.05;      // Cheap planned restart.
    return model;
}

TEST(Rejuvenation, BaselineIsMtbfOverMtbfPlusRepair)
{
    RejuvenationModel model = wearOutModel();
    EXPECT_NEAR(model.baselineAvailability(), 1000.0 / 1008.0, 1e-12);
    EXPECT_DOUBLE_EQ(model.availability(0.0),
                     model.baselineAvailability());
    EXPECT_DOUBLE_EQ(
        model.availability(std::numeric_limits<double>::infinity()),
        model.baselineAvailability());
}

TEST(Rejuvenation, VeryLongPeriodApproachesBaseline)
{
    RejuvenationModel model = wearOutModel();
    EXPECT_NEAR(model.availability(1e6),
                model.baselineAvailability(), 1e-6);
}

TEST(Rejuvenation, TooFrequentRestartsHurt)
{
    RejuvenationModel model = wearOutModel();
    // Restarting every hour wastes ~5% of the time on restarts.
    EXPECT_LT(model.availability(1.0),
              model.baselineAvailability());
}

TEST(Rejuvenation, WearOutHasAFiniteOptimum)
{
    RejuvenationModel model = wearOutModel();
    double best_period = model.optimalPeriodHours();
    ASSERT_TRUE(std::isfinite(best_period));
    double best = model.availability(best_period);
    EXPECT_GT(best, model.baselineAvailability());
    // Local optimality.
    EXPECT_GE(best, model.availability(best_period * 0.5) - 1e-12);
    EXPECT_GE(best, model.availability(best_period * 2.0) - 1e-12);
}

TEST(Rejuvenation, MemorylessProcessesNeverBenefit)
{
    // The classic negative result: with exponential failures every
    // finite period is at most the baseline.
    RejuvenationModel model;
    model.weibullShape = 1.0;
    model.mtbfHours = 5000.0;
    model.failureRepairHours = 1.0;
    model.restartHours = 0.05;
    for (double period : {10.0, 100.0, 1000.0, 10000.0}) {
        EXPECT_LE(model.availability(period),
                  model.baselineAvailability() + 1e-12)
            << "period " << period;
    }
    EXPECT_TRUE(std::isinf(model.optimalPeriodHours()));
}

TEST(Rejuvenation, InfantMortalityNeverBenefits)
{
    RejuvenationModel model;
    model.weibullShape = 0.7; // Decreasing hazard.
    model.mtbfHours = 5000.0;
    model.failureRepairHours = 2.0;
    model.restartHours = 0.05;
    EXPECT_TRUE(std::isinf(model.optimalPeriodHours()));
}

TEST(Rejuvenation, FreeRestartsMakeAggressivePolicyViable)
{
    RejuvenationModel model = wearOutModel();
    model.restartHours = 0.0;
    double best_period = model.optimalPeriodHours();
    ASSERT_TRUE(std::isfinite(best_period));
    // With free restarts, restarting more often than the optimum of
    // the costly case is beneficial.
    RejuvenationModel costly = wearOutModel();
    EXPECT_LT(best_period, costly.optimalPeriodHours());
}

TEST(Rejuvenation, SimulationConfirmsAnalyticAvailability)
{
    // Monte Carlo over renewal cycles with Weibull failures.
    RejuvenationModel model = wearOutModel();
    double period = 400.0;
    double analytic = model.availability(period);

    sdnav::prob::Rng rng(77);
    auto dist = sdnav::prob::WeibullDistribution::withMean(
        model.weibullShape, model.mtbfHours);
    double up = 0.0, total = 0.0;
    for (int cycle = 0; cycle < 400000; ++cycle) {
        double life = dist.sample(rng);
        if (life < period) {
            up += life;
            total += life + model.failureRepairHours;
        } else {
            up += period;
            total += period + model.restartHours;
        }
    }
    EXPECT_NEAR(up / total, analytic, 2e-4);
}

TEST(Rejuvenation, Validation)
{
    RejuvenationModel model = wearOutModel();
    model.weibullShape = 0.0;
    EXPECT_THROW(model.validate(), sdnav::ModelError);
    model = wearOutModel();
    model.failureRepairHours = 0.0;
    EXPECT_THROW(model.availability(10.0), sdnav::ModelError);
}

} // anonymous namespace
