/**
 * @file
 * Tests for analytic outage frequency/duration, including validation
 * against the discrete-event renewal simulator.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/outage.hh"
#include "common/error.hh"
#include "common/units.hh"
#include "fmea/openContrail.hh"
#include "model/exactModel.hh"
#include "sim/renewalSim.hh"

namespace
{

using namespace sdnav;
using namespace sdnav::analysis;

rbd::RbdSystem
singleComponent(double a)
{
    rbd::RbdSystem system;
    auto c = system.addComponent("only", a);
    system.setRoot(rbd::component(c));
    return system;
}

TEST(Outage, SingleComponentClosedForm)
{
    // One component: system outage frequency equals the component's
    // cycle frequency A/MTBF; MDT equals the component MTTR.
    double a = 0.99;
    double mtbf = 1000.0;
    auto system = singleComponent(a);
    OutageProfile profile = outageProfile(system, mtbf);
    EXPECT_NEAR(profile.availability, a, 1e-15);
    EXPECT_NEAR(profile.outagesPerHour, a / mtbf, 1e-15);
    EXPECT_NEAR(profile.meanOutageHours(),
                mttrFromAvailability(a, mtbf), 1e-9);
    EXPECT_NEAR(profile.meanTimeBetweenOutagesHours(), mtbf, 1e-9);
}

TEST(Outage, SeriesFrequencyAddsToFirstOrder)
{
    // Two highly available series components: nu ~= nu1 + nu2.
    rbd::RbdSystem system;
    auto a = system.addComponent("a", 0.9999);
    auto b = system.addComponent("b", 0.9999);
    system.setRoot(rbd::series({rbd::component(a), rbd::component(b)}));
    OutageProfile profile = outageProfile(system, 1000.0);
    EXPECT_NEAR(profile.outagesPerHour, 2.0 * 0.9999 * 0.9999 / 1000.0,
                1e-9);
}

TEST(Outage, ParallelOutagesAreRare)
{
    rbd::RbdSystem system;
    auto a = system.addComponent("a", 0.99);
    auto b = system.addComponent("b", 0.99);
    system.setRoot(rbd::parallel({rbd::component(a),
                                  rbd::component(b)}));
    OutageProfile profile = outageProfile(system, 1000.0);
    // System fails only when one component fails while the other is
    // already down: nu = 2 * (1 - a) * a / MTBF.
    EXPECT_NEAR(profile.outagesPerHour,
                2.0 * 0.01 * 0.99 / 1000.0, 1e-12);
    // U = nu * MDT must close the triangle.
    EXPECT_NEAR(profile.meanOutageHours() * profile.outagesPerHour,
                1.0 - profile.availability, 1e-15);
}

TEST(Outage, FrequencyDurationIdentityHolds)
{
    auto catalog = fmea::openContrail3();
    auto system = model::buildExactSystem(
        catalog, topology::smallTopology(),
        model::SupervisorPolicy::Required, model::SwParams{},
        fmea::Plane::ControlPlane);
    OutageProfile profile = outageProfile(system, 5000.0);
    EXPECT_NEAR(profile.meanOutageHours() * profile.outagesPerHour,
                1.0 - profile.availability, 1e-12);
    EXPECT_GT(profile.outagesPerYear(), 0.0);
}

TEST(Outage, SimulationConfirmsFrequencyAndDuration)
{
    // 2-of-3 block with exaggerated rates; compare the analytic
    // frequency-duration profile with the renewal simulator's
    // empirical outage statistics.
    rbd::RbdSystem system;
    double a = 0.95;
    auto c0 = system.addComponent("c0", a);
    auto c1 = system.addComponent("c1", a);
    auto c2 = system.addComponent("c2", a);
    system.setRoot(rbd::kOfN(2, {rbd::component(c0),
                                 rbd::component(c1),
                                 rbd::component(c2)}));
    double mtbf = 100.0;
    OutageProfile analytic = outageProfile(system, mtbf);

    sim::RenewalSimConfig config;
    config.horizonHours = 4e5;
    config.seed = 31;
    auto sim_result = sim::simulateRenewalSystem(
        system, sim::exponentialTimingsFor(system, mtbf), config);

    double sim_outages_per_hour =
        static_cast<double>(sim_result.outageCount) /
        config.horizonHours;
    EXPECT_NEAR(sim_outages_per_hour, analytic.outagesPerHour,
                0.05 * analytic.outagesPerHour);
    EXPECT_NEAR(sim_result.meanOutageHours, analytic.meanOutageHours(),
                0.05 * analytic.meanOutageHours());
}

TEST(Outage, ContributionsSumToTotalAndRank)
{
    auto catalog = fmea::openContrail3();
    auto system = model::buildExactSystem(
        catalog, topology::smallTopology(),
        model::SupervisorPolicy::Required, model::SwParams{},
        fmea::Plane::ControlPlane);
    OutageProfile profile = outageProfile(system, 5000.0);
    auto contributions = outageContributions(system, 5000.0);
    double total = 0.0, share = 0.0;
    for (const auto &c : contributions) {
        total += c.outagesPerYear;
        share += c.share;
    }
    EXPECT_NEAR(total, profile.outagesPerYear(), 1e-9);
    EXPECT_NEAR(share, 1.0, 1e-9);
    // Descending order.
    for (std::size_t i = 1; i < contributions.size(); ++i) {
        EXPECT_GE(contributions[i - 1].outagesPerYear,
                  contributions[i].outagesPerYear);
    }
    // The single rack initiates most Small-topology CP outages when
    // every component shares one MTBF.
    EXPECT_EQ(contributions.front().name, "rack0");
}

TEST(Outage, ClassifiedMtbfsFollowNames)
{
    auto catalog = fmea::openContrail3();
    auto system = model::buildExactSystem(
        catalog, topology::smallTopology(),
        model::SupervisorPolicy::Required, model::SwParams{},
        fmea::Plane::ControlPlane);
    MtbfClasses classes;
    auto mtbfs = classifyMtbfs(system, classes);
    ASSERT_EQ(mtbfs.size(), system.componentCount());
    for (rbd::ComponentId id = 0; id < system.componentCount(); ++id) {
        const std::string &name = system.componentName(id);
        double expected = classes.processHours;
        if (name.rfind("rack", 0) == 0)
            expected = classes.rackHours;
        else if (name.rfind("host", 0) == 0)
            expected = classes.hostHours;
        else if (name.rfind("vm", 0) == 0)
            expected = classes.vmHours;
        EXPECT_DOUBLE_EQ(mtbfs[id], expected) << name;
    }
}

TEST(Outage, PlatformMtbfsShrinkOutageFrequency)
{
    // With realistic (long) platform MTBFs the rack stops dominating
    // the outage *frequency* even though it still dominates downtime.
    auto catalog = fmea::openContrail3();
    auto system = model::buildExactSystem(
        catalog, topology::smallTopology(),
        model::SupervisorPolicy::Required, model::SwParams{},
        fmea::Plane::ControlPlane);
    OutageProfile common = outageProfile(system, 5000.0);
    OutageProfile classed =
        outageProfile(system, classifyMtbfs(system));
    EXPECT_LT(classed.outagesPerHour, common.outagesPerHour);
    // Availability is MTBF-independent.
    EXPECT_NEAR(classed.availability, common.availability, 1e-15);
    // Rare-but-long: the classed profile's mean outage is longer.
    EXPECT_GT(classed.meanOutageHours(), common.meanOutageHours());
}

TEST(Outage, InputValidation)
{
    auto system = singleComponent(0.9);
    EXPECT_THROW(outageProfile(system, 0.0), ModelError);
    EXPECT_THROW(outageProfile(system, std::vector<double>{}),
                 ModelError);
}

TEST(Outage, TableRendering)
{
    auto system = singleComponent(0.99999);
    auto table =
        outageProfileTable("profile", outageProfile(system, 5000.0));
    std::string out = table.str();
    EXPECT_NE(out.find("outages/year"), std::string::npos);
    EXPECT_NE(out.find("0.99999"), std::string::npos);
}

} // anonymous namespace
