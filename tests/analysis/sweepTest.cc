/**
 * @file
 * Tests for the deterministic parallel sweep executor: grid-order
 * results, bit-identity across thread counts, chunk boundary cases,
 * and exception propagation.
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/figures.hh"
#include "analysis/sensitivity.hh"
#include "analysis/sweep.hh"
#include "fmea/openContrail.hh"

namespace
{

using namespace sdnav::analysis;

/** A pure, slightly expensive grid function. */
double
gridValue(std::size_t i)
{
    double x = static_cast<double>(i);
    return std::sin(x * 0.37) * std::exp(-x / 1000.0) + x * 1e-6;
}

SweepOptions
withThreads(std::size_t threads, std::size_t chunk = 0)
{
    SweepOptions options;
    options.threads = threads;
    options.chunk = chunk;
    return options;
}

TEST(Sweep, ResolvedThreadsNeverZero)
{
    EXPECT_GE(SweepOptions{}.resolvedThreads(), 1u);
    EXPECT_EQ(withThreads(3).resolvedThreads(), 3u);
}

TEST(Sweep, EmptyGridCallsNothing)
{
    std::atomic<int> calls{0};
    forEachGridPoint(
        0, [&](std::size_t) { ++calls; }, withThreads(8));
    EXPECT_EQ(calls.load(), 0);
    EXPECT_TRUE(sweepGrid(0, gridValue, withThreads(8)).empty());
}

TEST(Sweep, SinglePointManyThreads)
{
    auto results = sweepGrid(1, gridValue, withThreads(8));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0], gridValue(0));
}

TEST(Sweep, ResultsAreInGridOrder)
{
    auto results = sweepGrid(257, gridValue, withThreads(4));
    ASSERT_EQ(results.size(), 257u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], gridValue(i)) << "i=" << i;
}

TEST(Sweep, BitIdenticalAcrossThreadCounts)
{
    auto serial = sweepGrid(1000, gridValue, withThreads(1));
    for (std::size_t threads : {2u, 8u}) {
        auto parallel = sweepGrid(1000, gridValue,
                                  withThreads(threads));
        // operator== on vector<double>: bit-identical, not just near.
        EXPECT_TRUE(serial == parallel) << threads << " threads";
    }
}

TEST(Sweep, EveryIndexVisitedExactlyOnceAtChunkBoundaries)
{
    // Chunk sizes around the grid size exercise the last-chunk
    // clamping: 1 (per-point claims), a non-divisor, an exact
    // divisor, the full grid, and larger than the grid.
    const std::size_t points = 96;
    for (std::size_t chunk : {1u, 7u, 32u, 96u, 1000u}) {
        std::vector<std::atomic<int>> visits(points);
        forEachGridPoint(
            points, [&](std::size_t i) { ++visits[i]; },
            withThreads(4, chunk));
        for (std::size_t i = 0; i < points; ++i)
            EXPECT_EQ(visits[i].load(), 1)
                << "chunk=" << chunk << " i=" << i;
    }
}

TEST(Sweep, MoreThreadsThanPointsIsSafe)
{
    auto serial = sweepGrid(3, gridValue, withThreads(1));
    auto wide = sweepGrid(3, gridValue, withThreads(16));
    EXPECT_TRUE(serial == wide);
}

TEST(Sweep, ExceptionPropagatesFromWorker)
{
    auto thrower = [](std::size_t i) {
        if (i == 37)
            throw std::runtime_error("grid point 37 failed");
    };
    EXPECT_THROW(forEachGridPoint(100, thrower, withThreads(4)),
                 std::runtime_error);
    EXPECT_THROW(forEachGridPoint(100, thrower, withThreads(1)),
                 std::runtime_error);
}

TEST(Sweep, FailureAbortsRemainingChunks)
{
    // A failure at point 0 must stop the other workers from draining
    // the whole grid: with chunk = 1 every point is a separate claim,
    // so once the abort flag is up the executed count stays far below
    // the grid size. The sleep makes surviving points slow enough
    // that a full drain would be unmistakable.
    const std::size_t points = 200;
    std::atomic<std::size_t> executed{0};
    auto body = [&](std::size_t i) {
        if (i == 0)
            throw std::runtime_error("grid point 0 failed");
        ++executed;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    };
    EXPECT_THROW(forEachGridPoint(points, body, withThreads(4, 1)),
                 std::runtime_error);
    // The other three workers can finish at most the chunks claimed
    // before the throw plus one in-flight chunk each; give a generous
    // margin while staying far below the full grid.
    EXPECT_LT(executed.load(), points / 2)
        << "workers drained the grid after a failure";
}

TEST(Sweep, Figure3BitIdenticalAcrossThreadCounts)
{
    sdnav::model::HwParams params;
    auto serial = figure3(params, 0.999, 1.0, 41, withThreads(1));
    auto two = figure3(params, 0.999, 1.0, 41, withThreads(2));
    auto eight = figure3(params, 0.999, 1.0, 41, withThreads(8));
    EXPECT_TRUE(serial.ys == two.ys);
    EXPECT_TRUE(serial.ys == eight.ys);
}

TEST(Sweep, Figure4BitIdenticalAcrossThreadCounts)
{
    auto catalog = sdnav::fmea::openContrail3();
    sdnav::model::SwParams params;
    auto serial = figure4(catalog, params, 21, withThreads(1));
    auto eight = figure4(catalog, params, 21, withThreads(8));
    EXPECT_TRUE(serial.ys == eight.ys);
    EXPECT_TRUE(serial.xs == eight.xs);
}

TEST(Sweep, SensitivityBitIdenticalAcrossThreadCounts)
{
    sdnav::model::HwParams params;
    auto serial = hwSensitivity(sdnav::topology::ReferenceKind::Large,
                                params, withThreads(1));
    auto four = hwSensitivity(sdnav::topology::ReferenceKind::Large,
                              params, withThreads(4));
    ASSERT_EQ(serial.size(), four.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].parameter, four[i].parameter);
        EXPECT_EQ(serial[i].derivative, four[i].derivative);
        EXPECT_EQ(serial[i].improvedAvailability,
                  four[i].improvedAvailability);
        EXPECT_EQ(serial[i].downtimeSavedMinutes,
                  four[i].downtimeSavedMinutes);
    }
}

} // anonymous namespace
