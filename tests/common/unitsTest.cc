/**
 * @file
 * Tests for availability unit conversions.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/units.hh"

namespace
{

using namespace sdnav;

TEST(Units, FiveNinesIsAboutFiveMinutesPerYear)
{
    // The classic rule of thumb: 99.999% ~= 5.26 minutes/year.
    double minutes = availabilityToDowntimeMinutesPerYear(0.99999);
    EXPECT_NEAR(minutes, 5.256, 1e-3);
}

TEST(Units, PerfectAvailabilityHasZeroDowntime)
{
    EXPECT_DOUBLE_EQ(availabilityToDowntimeMinutesPerYear(1.0), 0.0);
}

TEST(Units, ZeroAvailabilityIsWholeYear)
{
    EXPECT_DOUBLE_EQ(availabilityToDowntimeMinutesPerYear(0.0),
                     minutesPerYear);
}

TEST(Units, DowntimeRoundTrips)
{
    for (double a : {0.9, 0.999, 0.99998, 0.9999999}) {
        double minutes = availabilityToDowntimeMinutesPerYear(a);
        EXPECT_NEAR(downtimeMinutesPerYearToAvailability(minutes), a,
                    1e-12);
    }
}

TEST(Units, DowntimeConversionRejectsOutOfRange)
{
    EXPECT_THROW(availabilityToDowntimeMinutesPerYear(1.5), ModelError);
    EXPECT_THROW(downtimeMinutesPerYearToAvailability(-1.0), ModelError);
    EXPECT_THROW(
        downtimeMinutesPerYearToAvailability(minutesPerYear + 1.0),
        ModelError);
}

TEST(Units, NinesOfCommonValues)
{
    EXPECT_NEAR(availabilityNines(0.9), 1.0, 1e-12);
    EXPECT_NEAR(availabilityNines(0.999), 3.0, 1e-12);
    EXPECT_NEAR(availabilityNines(0.99999), 5.0, 1e-9);
    EXPECT_TRUE(std::isinf(availabilityNines(1.0)));
}

TEST(Units, NinesRoundTrips)
{
    for (double nines : {1.0, 2.5, 4.0, 6.0}) {
        EXPECT_NEAR(availabilityNines(ninesToAvailability(nines)), nines,
                    1e-9);
    }
}

TEST(Units, DowntimeShiftZeroIsIdentity)
{
    EXPECT_DOUBLE_EQ(shiftAvailabilityDowntime(0.99998, 0.0), 0.99998);
}

TEST(Units, DowntimeShiftOneOrderEachWay)
{
    // +1: 10x less downtime; -1: 10x more.
    EXPECT_NEAR(shiftAvailabilityDowntime(0.99998, 1.0), 0.999998,
                1e-12);
    EXPECT_NEAR(shiftAvailabilityDowntime(0.99998, -1.0), 0.9998,
                1e-12);
}

TEST(Units, DowntimeShiftClampsAtTotalFailure)
{
    // 0.9 shifted 2 orders worse would be "10" unavailability; clamp.
    EXPECT_DOUBLE_EQ(shiftAvailabilityDowntime(0.9, -2.0), 0.0);
}

TEST(Units, DowntimeShiftOfPerfectStaysPerfect)
{
    EXPECT_DOUBLE_EQ(shiftAvailabilityDowntime(1.0, -3.0), 1.0);
}

TEST(Units, MtbfMttrMatchesPaperProcessValues)
{
    // Paper section VI.A: F = 5000 h, R = 0.1 h -> A = 0.99998;
    // R_S = 1 h -> A_S = 0.9998.
    EXPECT_NEAR(availabilityFromMtbfMttr(5000.0, 0.1), 0.99998, 1e-9);
    EXPECT_NEAR(availabilityFromMtbfMttr(5000.0, 1.0), 0.9998, 5e-8);
}

TEST(Units, MtbfMttrMaintenanceTiers)
{
    // Paper section V.D: 5-year MTBF with SD (4h), ND (24h), NBD (48h)
    // restore gives roughly 0.9999 / 0.9995 / 0.9990.
    double mtbf = 5.0 * 365.0 * 24.0;
    EXPECT_NEAR(availabilityFromMtbfMttr(mtbf, 4.0), 0.9999, 1e-4);
    EXPECT_NEAR(availabilityFromMtbfMttr(mtbf, 24.0), 0.9995, 1e-4);
    EXPECT_NEAR(availabilityFromMtbfMttr(mtbf, 48.0), 0.9989, 1e-4);
}

TEST(Units, MttrInversionRoundTrips)
{
    double mtbf = 5000.0;
    for (double mttr : {0.1, 1.0, 24.0}) {
        double a = availabilityFromMtbfMttr(mtbf, mttr);
        EXPECT_NEAR(mttrFromAvailability(a, mtbf), mttr, 1e-9);
    }
}

TEST(Units, MtbfMttrRejectsBadInputs)
{
    EXPECT_THROW(availabilityFromMtbfMttr(0.0, 1.0), ModelError);
    EXPECT_THROW(availabilityFromMtbfMttr(-5.0, 1.0), ModelError);
    EXPECT_THROW(availabilityFromMtbfMttr(5.0, -1.0), ModelError);
    EXPECT_THROW(mttrFromAvailability(0.0, 5000.0), ModelError);
}

} // anonymous namespace
