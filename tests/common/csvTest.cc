/**
 * @file
 * Tests for the CSV writer.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/csv.hh"

namespace
{

using sdnav::CsvWriter;

TEST(Csv, HeaderAndRows)
{
    CsvWriter csv;
    csv.header({"x", "y"});
    csv.addRow({"1", "2"});
    EXPECT_EQ(csv.str(), "x,y\n1,2\n");
}

TEST(Csv, NoHeaderMeansBodyOnly)
{
    CsvWriter csv;
    csv.addRow({"a"});
    EXPECT_EQ(csv.str(), "a\n");
}

TEST(Csv, QuotesCellsWithCommas)
{
    CsvWriter csv;
    csv.addRow({"a,b", "plain"});
    EXPECT_EQ(csv.str(), "\"a,b\",plain\n");
}

TEST(Csv, EscapesEmbeddedQuotes)
{
    CsvWriter csv;
    csv.addRow({"say \"hi\""});
    EXPECT_EQ(csv.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(Csv, QuotesNewlines)
{
    CsvWriter csv;
    csv.addRow({"line1\nline2"});
    EXPECT_EQ(csv.str(), "\"line1\nline2\"\n");
}

TEST(Csv, NumericRowUsesPrecision)
{
    CsvWriter csv;
    csv.addRow("label", {0.5}, 3);
    EXPECT_EQ(csv.str(), "label,0.500\n");
}

TEST(Csv, WriteFileRoundTrips)
{
    CsvWriter csv;
    csv.header({"h"});
    csv.addRow({"v"});
    std::string path = testing::TempDir() + "/sdnav_csv_test.csv";
    ASSERT_TRUE(csv.writeFile(path));
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "h\nv\n");
    std::remove(path.c_str());
}

TEST(Csv, WriteFileFailsOnBadPath)
{
    CsvWriter csv;
    csv.addRow({"v"});
    EXPECT_FALSE(csv.writeFile("/nonexistent-dir/foo.csv"));
}

} // anonymous namespace
