/**
 * @file
 * Tests for the shared error-handling helpers.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/error.hh"

namespace
{

using sdnav::ModelError;

TEST(Error, RequirePassesOnTrue)
{
    EXPECT_NO_THROW(sdnav::require(true, "never thrown"));
}

TEST(Error, RequireThrowsWithMessage)
{
    try {
        sdnav::require(false, "the message");
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        EXPECT_STREQ(e.what(), "the message");
    }
}

TEST(Error, ModelErrorIsInvalidArgument)
{
    EXPECT_THROW(sdnav::require(false, "x"), std::invalid_argument);
}

TEST(Error, RequireProbabilityAcceptsBoundaries)
{
    EXPECT_DOUBLE_EQ(sdnav::requireProbability(0.0, "p"), 0.0);
    EXPECT_DOUBLE_EQ(sdnav::requireProbability(1.0, "p"), 1.0);
    EXPECT_DOUBLE_EQ(sdnav::requireProbability(0.5, "p"), 0.5);
}

TEST(Error, RequireProbabilityRejectsOutOfRange)
{
    EXPECT_THROW(sdnav::requireProbability(-0.01, "p"), ModelError);
    EXPECT_THROW(sdnav::requireProbability(1.01, "p"), ModelError);
}

TEST(Error, RequireProbabilityRejectsNan)
{
    EXPECT_THROW(
        sdnav::requireProbability(std::nan(""), "p"), ModelError);
}

TEST(Error, RequireProbabilityNamesParameterInMessage)
{
    try {
        sdnav::requireProbability(2.0, "myParam");
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("myParam"),
                  std::string::npos);
    }
}

TEST(Error, RequirePositiveAcceptsPositive)
{
    EXPECT_DOUBLE_EQ(sdnav::requirePositive(1e-12, "v"), 1e-12);
    EXPECT_DOUBLE_EQ(sdnav::requirePositive(5000.0, "v"), 5000.0);
}

TEST(Error, RequirePositiveRejectsZeroNegativeInfNan)
{
    EXPECT_THROW(sdnav::requirePositive(0.0, "v"), ModelError);
    EXPECT_THROW(sdnav::requirePositive(-1.0, "v"), ModelError);
    EXPECT_THROW(sdnav::requirePositive(
                     std::numeric_limits<double>::infinity(), "v"),
                 ModelError);
    EXPECT_THROW(sdnav::requirePositive(std::nan(""), "v"), ModelError);
}

TEST(Error, RequireNonNegativeAcceptsZero)
{
    EXPECT_DOUBLE_EQ(sdnav::requireNonNegative(0.0, "v"), 0.0);
}

TEST(Error, RequireNonNegativeRejectsNegative)
{
    EXPECT_THROW(sdnav::requireNonNegative(-1e-15, "v"), ModelError);
}

} // anonymous namespace
