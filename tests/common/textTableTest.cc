/**
 * @file
 * Tests for the text table renderer.
 */

#include <gtest/gtest.h>

#include "common/textTable.hh"

namespace
{

using sdnav::TextTable;

TEST(TextTable, EmptyTableRendersNothing)
{
    TextTable table;
    EXPECT_EQ(table.str(), "");
}

TEST(TextTable, TitleOnly)
{
    TextTable table;
    table.title("Hello");
    EXPECT_EQ(table.str(), "Hello\n");
}

TEST(TextTable, HeaderAlignsColumns)
{
    TextTable table;
    table.header({"a", "long-header"});
    table.addRow({"wide-cell", "b"});
    std::string out = table.str();
    // Both rows must have the header rule between them.
    EXPECT_NE(out.find("a          long-header"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_NE(out.find("wide-cell  b"), std::string::npos);
}

TEST(TextTable, NumericRowFormatsWithPrecision)
{
    TextTable table;
    table.addRow("row", {0.123456789}, 4);
    EXPECT_NE(table.str().find("0.1235"), std::string::npos);
}

TEST(TextTable, RowCountTracksBodyRows)
{
    TextTable table;
    table.header({"h"});
    EXPECT_EQ(table.rowCount(), 0u);
    table.addRow({"r1"});
    table.addRow({"r2"});
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTable, RaggedRowsAreTolerated)
{
    TextTable table;
    table.addRow({"a", "b", "c"});
    table.addRow({"only-one"});
    std::string out = table.str();
    EXPECT_NE(out.find("only-one"), std::string::npos);
    EXPECT_NE(out.find("c"), std::string::npos);
}

TEST(Format, FixedPrecision)
{
    EXPECT_EQ(sdnav::formatFixed(0.999989, 6), "0.999989");
    EXPECT_EQ(sdnav::formatFixed(1.0, 2), "1.00");
}

TEST(Format, GeneralUsesSignificantDigits)
{
    EXPECT_EQ(sdnav::formatGeneral(0.5, 3), "0.5");
    EXPECT_EQ(sdnav::formatGeneral(123456.0, 4), "1.235e+05");
}

} // anonymous namespace
