/**
 * @file
 * Tests for the JSON parser and serializer.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/json.hh"

namespace
{

using namespace sdnav::json;
using sdnav::ModelError;

TEST(JsonParse, Primitives)
{
    EXPECT_TRUE(parse("null").isNull());
    EXPECT_TRUE(parse("true").asBool());
    EXPECT_FALSE(parse("false").asBool());
    EXPECT_DOUBLE_EQ(parse("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parse("-3.5").asNumber(), -3.5);
    EXPECT_DOUBLE_EQ(parse("1e-5").asNumber(), 1e-5);
    EXPECT_DOUBLE_EQ(parse("2.5E+3").asNumber(), 2500.0);
    EXPECT_EQ(parse("\"hi\"").asString(), "hi");
}

TEST(JsonParse, EmptyContainers)
{
    EXPECT_TRUE(parse("[]").asArray().empty());
    EXPECT_TRUE(parse("{}").asObject().empty());
    EXPECT_TRUE(parse(" [ ] ").isArray());
}

TEST(JsonParse, NestedDocument)
{
    Value v = parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
    EXPECT_EQ(v.asObject().size(), 2u);
    const Value &a = v.at("a");
    ASSERT_EQ(a.asArray().size(), 3u);
    EXPECT_DOUBLE_EQ(a.asArray()[1].asNumber(), 2.0);
    EXPECT_TRUE(a.asArray()[2].at("b").asBool());
    EXPECT_EQ(v.at("c").asString(), "x");
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(parse(R"("a\"b")").asString(), "a\"b");
    EXPECT_EQ(parse(R"("line\nbreak")").asString(), "line\nbreak");
    EXPECT_EQ(parse(R"("tab\there")").asString(), "tab\there");
    EXPECT_EQ(parse(R"("back\\slash")").asString(), "back\\slash");
    EXPECT_EQ(parse(R"("A")").asString(), "A");
    // Two-byte and three-byte UTF-8 encodings.
    EXPECT_EQ(parse(R"("é")").asString(), "\xc3\xa9");
    EXPECT_EQ(parse(R"("€")").asString(), "\xe2\x82\xac");
}

TEST(JsonParse, Whitespace)
{
    Value v = parse("  {\n\t\"k\" :\r [ 1 ,  2 ]\n}  ");
    EXPECT_EQ(v.at("k").asArray().size(), 2u);
}

TEST(JsonParse, ErrorsCarryOffsets)
{
    try {
        parse("{\"a\": }");
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("offset"),
                  std::string::npos);
    }
}

TEST(JsonParse, MalformedDocumentsRejected)
{
    EXPECT_THROW(parse(""), ModelError);
    EXPECT_THROW(parse("{"), ModelError);
    EXPECT_THROW(parse("[1,]"), ModelError);
    EXPECT_THROW(parse("{\"a\":1,}"), ModelError);
    EXPECT_THROW(parse("tru"), ModelError);
    EXPECT_THROW(parse("01x"), ModelError);
    EXPECT_THROW(parse("\"unterminated"), ModelError);
    EXPECT_THROW(parse("1 2"), ModelError);
    EXPECT_THROW(parse("{'a': 1}"), ModelError);
    EXPECT_THROW(parse("{\"a\":1 \"b\":2}"), ModelError);
    EXPECT_THROW(parse("[1"), ModelError);
    EXPECT_THROW(parse("-"), ModelError);
    EXPECT_THROW(parse("1."), ModelError);
    EXPECT_THROW(parse("1e"), ModelError);
}

TEST(JsonParse, DuplicateKeysRejected)
{
    EXPECT_THROW(parse("{\"a\":1,\"a\":2}"), ModelError);
}

TEST(JsonParse, ControlCharactersAndSurrogatesRejected)
{
    EXPECT_THROW(parse(std::string("\"a\nb\"")), ModelError);
    EXPECT_THROW(parse(R"("\ud800")"), ModelError);
    EXPECT_THROW(parse(R"("\q")"), ModelError);
}

TEST(JsonParse, DeepNestingBounded)
{
    std::string deep(200, '[');
    deep += std::string(200, ']');
    EXPECT_THROW(parse(deep), ModelError);
}

TEST(JsonValue, TypedAccessorsEnforceTypes)
{
    Value v = parse("[1]");
    EXPECT_THROW(v.asObject(), ModelError);
    EXPECT_THROW(v.asBool(), ModelError);
    EXPECT_THROW(v.asNumber(), ModelError);
    EXPECT_THROW(v.asString(), ModelError);
    EXPECT_THROW(v.at("x"), ModelError);
}

TEST(JsonValue, BuildersAndLookups)
{
    Value obj = Value::makeObject();
    obj.set("name", "test");
    obj.set("count", 3);
    obj.set("flag", true);
    Value arr = Value::makeArray();
    arr.push(1.5);
    arr.push("two");
    obj.set("items", std::move(arr));

    EXPECT_TRUE(obj.contains("name"));
    EXPECT_FALSE(obj.contains("missing"));
    EXPECT_EQ(obj.at("name").asString(), "test");
    EXPECT_DOUBLE_EQ(obj.numberOr("count", 0.0), 3.0);
    EXPECT_DOUBLE_EQ(obj.numberOr("missing", 7.0), 7.0);
    EXPECT_EQ(obj.stringOr("missing", "dflt"), "dflt");
    EXPECT_TRUE(obj.boolOr("flag", false));

    // set() replaces existing keys.
    obj.set("count", 9);
    EXPECT_DOUBLE_EQ(obj.at("count").asNumber(), 9.0);
    EXPECT_EQ(obj.asObject().size(), 4u);
}

TEST(JsonDump, CompactForm)
{
    Value v = parse(R"({"a":[1,true,null],"b":"x"})");
    EXPECT_EQ(v.dump(), R"({"a":[1,true,null],"b":"x"})");
}

TEST(JsonDump, PrettyForm)
{
    Value v = parse(R"({"a":[1]})");
    EXPECT_EQ(v.dump(2), "{\n  \"a\": [\n    1\n  ]\n}");
}

TEST(JsonDump, EscapesSpecialCharacters)
{
    Value v(std::string("a\"b\\c\nd"));
    EXPECT_EQ(v.dump(), R"("a\"b\\c\nd")");
}

TEST(JsonDump, RoundTripsPreserveStructure)
{
    const char *docs[] = {
        R"({"roles":[{"name":"Config","tag":"G"}],"n":3})",
        R"([[],{},[{"x":[1,2,3]}],"s",-1.25e-3])",
        R"({"deep":{"deeper":{"deepest":[null,false]}}})",
    };
    for (const char *doc : docs) {
        Value first = parse(doc);
        Value second = parse(first.dump());
        EXPECT_TRUE(first == second) << doc;
        Value third = parse(first.dump(4));
        EXPECT_TRUE(first == third) << doc;
    }
}

TEST(JsonDump, ObjectOrderIsPreserved)
{
    Value v = parse(R"({"z":1,"a":2,"m":3})");
    EXPECT_EQ(v.dump(), R"({"z":1,"a":2,"m":3})");
}

TEST(JsonDump, IntegersPrintWithoutDecimalPoint)
{
    EXPECT_EQ(Value(3.0).dump(), "3");
    EXPECT_EQ(Value(-42).dump(), "-42");
    EXPECT_EQ(parse("0.99998").dump(), "0.99998");
}

TEST(JsonFile, ParseFileErrors)
{
    EXPECT_THROW(parseFile("/nonexistent/file.json"), ModelError);
}

TEST(JsonDump, EverySingleByteStringRoundTripsExactly)
{
    // Writer -> parser round trip for all 256 single-byte strings.
    // This locks in the escapeString fix: bytes >= 0x80 must pass
    // through verbatim, not sign-extend into "\uffffff80"-style
    // garbage, and control bytes must escape and re-parse to the
    // identical byte.
    for (int byte = 0; byte < 256; ++byte) {
        std::string original(1, static_cast<char>(byte));
        Value wrapped(original);
        std::string dumped = wrapped.dump();
        // Control bytes must leave as \uXXXX escapes with exactly
        // two hex digits of payload.
        if (byte < 0x20 && byte != '\n' && byte != '\t' &&
            byte != '\r' && byte != '\b' && byte != '\f') {
            char expect[16];
            std::snprintf(expect, sizeof(expect), "\"\\u%04x\"",
                          byte);
            EXPECT_EQ(dumped, expect) << "byte " << byte;
        }
        Value reparsed = parse(dumped);
        ASSERT_TRUE(reparsed.isString()) << "byte " << byte;
        EXPECT_EQ(reparsed.asString(), original)
            << "byte " << byte << " dumped as " << dumped;
    }
}

} // anonymous namespace
