#include "common/parse.hh"

#include <gtest/gtest.h>

#include "common/error.hh"

namespace
{

using namespace sdnav;

TEST(TryParseDouble, AcceptsPlainNumbers)
{
    EXPECT_DOUBLE_EQ(*tryParseDouble("3"), 3.0);
    EXPECT_DOUBLE_EQ(*tryParseDouble("-0.5"), -0.5);
    EXPECT_DOUBLE_EQ(*tryParseDouble("+2.25"), 2.25);
    EXPECT_DOUBLE_EQ(*tryParseDouble("1e3"), 1000.0);
    EXPECT_DOUBLE_EQ(*tryParseDouble("0.99999"), 0.99999);
}

TEST(TryParseDouble, RejectsEverythingStodWouldHaveLetThrough)
{
    // std::stod("3x") returns 3; these helpers refuse trailing junk,
    // whitespace, hex, and non-finite spellings outright.
    for (const char *bad :
         {"", "3x", "x3", " 3", "3 ", "1.2.3", "0x10", "1e", "nan",
          "inf", "infinity", "1e999", "--1", "+-1", "1,5"}) {
        EXPECT_FALSE(tryParseDouble(bad).has_value()) << bad;
    }
}

TEST(ParseDouble, NamesTheOffendingInputInErrors)
{
    try {
        parseDouble("abc", "--mtbf");
        FAIL() << "expected ModelError";
    } catch (const ModelError &e) {
        EXPECT_NE(std::string(e.what()).find("--mtbf"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("abc"),
                  std::string::npos);
    }
}

TEST(ParseDouble, EnforcesRange)
{
    EXPECT_DOUBLE_EQ(parseDouble("0.5", "--a", 0.0, 1.0), 0.5);
    EXPECT_THROW(parseDouble("1.5", "--a", 0.0, 1.0), ModelError);
    EXPECT_THROW(parseDouble("-0.1", "--a", 0.0, 1.0), ModelError);
}

TEST(ParseCount, StrictNonNegativeIntegers)
{
    EXPECT_EQ(parseCount("0", "--n"), 0u);
    EXPECT_EQ(parseCount("42", "--n"), 42u);
    for (const char *bad : {"", "-1", "+1", "3.0", "1e2", "3x", " 3"})
        EXPECT_THROW(parseCount(bad, "--n"), ModelError) << bad;
    EXPECT_THROW(parseCount("11", "--n", 10), ModelError);
    EXPECT_EQ(parseCount("10", "--n", 10), 10u);
}

} // anonymous namespace
