/**
 * @file
 * End-to-end tests of tools/trace_validate.py (the Chrome-trace
 * schema checker) against synthetic trace files: a valid trace, the
 * rejection paths (unmatched spans, non-monotonic timestamps, bad
 * pid/tid, invalid JSON), and the usage exit code.
 * SDNAV_TRACE_VALIDATE_PATH is injected by CMake; the suite skips
 * when python3 is unavailable.
 */

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace
{

struct CommandResult
{
    int exitCode;
    std::string output;
};

CommandResult
runCommand(const std::string &command)
{
    FILE *pipe = popen((command + " 2>&1").c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string output;
    std::array<char, 4096> buffer;
    while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr)
        output += buffer.data();
    int status = pclose(pipe);
    return {WEXITSTATUS(status), output};
}

bool
havePython3()
{
    return runCommand("python3 --version").exitCode == 0;
}

class TraceValidate : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!havePython3())
            GTEST_SKIP() << "python3 not available";
        dir_ = testing::TempDir() + "/trace_validate_" +
               testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        if (!dir_.empty())
            std::filesystem::remove_all(dir_);
    }

    std::string
    writeTrace(const std::string &content)
    {
        std::string path = dir_ + "/trace.json";
        std::ofstream out(path);
        out << content;
        return path;
    }

    CommandResult
    validate(const std::string &arguments)
    {
        return runCommand(std::string("python3 ") +
                          SDNAV_TRACE_VALIDATE_PATH + " " + arguments);
    }

    std::string dir_;
};

TEST_F(TraceValidate, AcceptsWellFormedTrace)
{
    auto result = validate(writeTrace(R"({
        "displayTimeUnit": "ms",
        "traceEvents": [
            {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
             "args": {"name": "sdnav"}},
            {"name": "outer", "ph": "B", "ts": 1.0, "pid": 1,
             "tid": 1},
            {"name": "inner", "ph": "B", "ts": 2.0, "pid": 1,
             "tid": 1},
            {"name": "tick", "ph": "i", "s": "t", "ts": 2.5,
             "pid": 1, "tid": 2},
            {"name": "inner", "ph": "E", "ts": 3.0, "pid": 1,
             "tid": 1},
            {"name": "outer", "ph": "E", "ts": 4.0, "pid": 1,
             "tid": 1}
        ]})"));
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("OK"), std::string::npos);
}

TEST_F(TraceValidate, RejectsUnmatchedEnd)
{
    auto result = validate(writeTrace(R"({"traceEvents": [
        {"name": "a", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1}
    ]})"));
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("no open span"), std::string::npos);
}

TEST_F(TraceValidate, RejectsUnclosedBegin)
{
    auto result = validate(writeTrace(R"({"traceEvents": [
        {"name": "a", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1}
    ]})"));
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("unclosed"), std::string::npos);
}

TEST_F(TraceValidate, RejectsMisnestedSpans)
{
    auto result = validate(writeTrace(R"({"traceEvents": [
        {"name": "a", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
        {"name": "b", "ph": "B", "ts": 2.0, "pid": 1, "tid": 1},
        {"name": "a", "ph": "E", "ts": 3.0, "pid": 1, "tid": 1},
        {"name": "b", "ph": "E", "ts": 4.0, "pid": 1, "tid": 1}
    ]})"));
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("does not match"),
              std::string::npos);
}

TEST_F(TraceValidate, RejectsSpanEndingBeforeItBegins)
{
    auto result = validate(writeTrace(R"({"traceEvents": [
        {"name": "a", "ph": "B", "ts": 5.0, "pid": 1, "tid": 1},
        {"name": "a", "ph": "E", "ts": 3.0, "pid": 1, "tid": 1}
    ]})"));
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("before it begins"),
              std::string::npos);
}

TEST_F(TraceValidate, RejectsChildBeginningBeforeParent)
{
    auto result = validate(writeTrace(R"({"traceEvents": [
        {"name": "parent", "ph": "B", "ts": 5.0, "pid": 1, "tid": 1},
        {"name": "child", "ph": "B", "ts": 2.0, "pid": 1, "tid": 1},
        {"name": "child", "ph": "E", "ts": 6.0, "pid": 1, "tid": 1},
        {"name": "parent", "ph": "E", "ts": 7.0, "pid": 1, "tid": 1}
    ]})"));
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("begins before its parent"),
              std::string::npos);
}

TEST_F(TraceValidate, ReportsMaxSpanDepth)
{
    auto result = validate(writeTrace(R"({"traceEvents": [
        {"name": "outer", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
        {"name": "inner", "ph": "B", "ts": 2.0, "pid": 1, "tid": 1},
        {"name": "inner", "ph": "E", "ts": 3.0, "pid": 1, "tid": 1},
        {"name": "outer", "ph": "E", "ts": 4.0, "pid": 1, "tid": 1}
    ]})"));
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("max span depth 2"),
              std::string::npos);
}

TEST_F(TraceValidate, RejectsNonMonotonicTimestamps)
{
    auto result = validate(writeTrace(R"({"traceEvents": [
        {"name": "a", "ph": "i", "s": "t", "ts": 5.0, "pid": 1,
         "tid": 1},
        {"name": "b", "ph": "i", "s": "t", "ts": 4.0, "pid": 1,
         "tid": 1}
    ]})"));
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("not monotonic"), std::string::npos);
}

TEST_F(TraceValidate, RejectsBadPidTid)
{
    auto result = validate(writeTrace(R"({"traceEvents": [
        {"name": "a", "ph": "i", "s": "t", "ts": 1.0, "pid": 1,
         "tid": -3}
    ]})"));
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("bad tid"), std::string::npos);
}

TEST_F(TraceValidate, RejectsInvalidJson)
{
    auto result = validate(writeTrace("{not json"));
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("not valid JSON"),
              std::string::npos);
}

TEST_F(TraceValidate, UsageErrorsExitTwo)
{
    EXPECT_EQ(validate("").exitCode, 2);
    EXPECT_EQ(validate(dir_ + "/missing.json").exitCode, 2);
    EXPECT_EQ(validate("a.json b.json").exitCode, 2);
}

} // anonymous namespace
