/**
 * @file
 * End-to-end tests of tools/bench_compare.py (the perf-regression
 * gate) against synthetic BENCH_*.json directories: pass, wall-time
 * regression, metric-shape warning, missing baseline, and the
 * --bless flow. SDNAV_BENCH_COMPARE_PATH is injected by CMake; the
 * suite skips when python3 is unavailable.
 */

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace
{

struct CommandResult
{
    int exitCode;
    std::string output;
};

CommandResult
runCommand(const std::string &command)
{
    FILE *pipe = popen((command + " 2>&1").c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string output;
    std::array<char, 4096> buffer;
    while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr)
        output += buffer.data();
    int status = pclose(pipe);
    return {WEXITSTATUS(status), output};
}

bool
havePython3()
{
    return runCommand("python3 --version").exitCode == 0;
}

CommandResult
runBenchCompare(const std::string &arguments)
{
    return runCommand(std::string("python3 ") +
                      SDNAV_BENCH_COMPARE_PATH + " " + arguments);
}

/** A fixture providing fresh baseline/result dirs per test. */
class BenchCompare : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!havePython3())
            GTEST_SKIP() << "python3 not available";
        root_ = testing::TempDir() + "/bench_compare_" +
                testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name();
        baselines_ = root_ + "/baselines";
        results_ = root_ + "/results";
        std::filesystem::remove_all(root_);
        std::filesystem::create_directories(baselines_);
        std::filesystem::create_directories(results_);
    }

    /** Write a minimal BENCH_<name>.json into dir. */
    void
    writeBench(const std::string &dir, const std::string &name,
               double wallMs,
               const std::string &counters = "\"sim.events\": 100")
    {
        std::ofstream out(dir + "/BENCH_" + name + ".json");
        out << "{\n"
            << "  \"schema_version\": 1,\n"
            << "  \"bench\": \"" << name << "\",\n"
            << "  \"git_sha\": \"test\",\n"
            << "  \"threads\": 1,\n"
            << "  \"report_wall_ms\": " << wallMs << ",\n"
            << "  \"speedups\": [],\n"
            << "  \"metrics\": {\"enabled\": true, \"counters\": {"
            << counters << "}, \"gauges\": {}, \"timers\": {}}\n"
            << "}\n";
    }

    CommandResult
    compare(const std::string &extra = "")
    {
        return runBenchCompare("--baselines " + baselines_ +
                               " --results " + results_ + " " + extra);
    }

    std::string root_, baselines_, results_;
};

TEST_F(BenchCompare, MatchingResultsPass)
{
    writeBench(baselines_, "alpha", 1000.0);
    writeBench(results_, "alpha", 1040.0);
    auto result = compare();
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("within budget"), std::string::npos);
}

TEST_F(BenchCompare, SlightGrowthWithinBudgetPasses)
{
    writeBench(baselines_, "alpha", 1000.0);
    writeBench(results_, "alpha", 1200.0); // +20% < default 25%
    EXPECT_EQ(compare().exitCode, 0);
}

TEST_F(BenchCompare, SubMillisecondNoiseNeverFails)
{
    // A 6x blowup on a 0.2 ms report is scheduler noise, not a
    // regression: the absolute slack floor must absorb it.
    writeBench(baselines_, "tiny", 0.2);
    writeBench(results_, "tiny", 1.3);
    EXPECT_EQ(compare().exitCode, 0);
    // Zeroing the slack restores the strict relative budget.
    EXPECT_EQ(compare("--min-wall-ms 0").exitCode, 1);
}

TEST_F(BenchCompare, DoubledWallTimeFails)
{
    writeBench(baselines_, "alpha", 1000.0);
    writeBench(results_, "alpha", 2000.0);
    auto result = compare();
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("exceeds"), std::string::npos);
}

TEST_F(BenchCompare, MaxRegressionFlagLoosensTheBudget)
{
    writeBench(baselines_, "alpha", 1000.0);
    writeBench(results_, "alpha", 2000.0);
    EXPECT_EQ(compare("--max-regression 1.5").exitCode, 0);
}

TEST_F(BenchCompare, MetricShapeMismatchOnlyWarns)
{
    writeBench(baselines_, "alpha", 100.0, "\"sim.events\": 100");
    writeBench(results_, "alpha", 100.0, "\"sim.other\": 5");
    auto result = compare();
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("warning:"), std::string::npos);
    EXPECT_NE(result.output.find("sim.other"), std::string::npos);
    EXPECT_NE(result.output.find("sim.events"), std::string::npos);
}

TEST_F(BenchCompare, MissingBaselineFailsWithBlessHint)
{
    writeBench(results_, "newbench", 50.0);
    writeBench(baselines_, "alpha", 100.0);
    writeBench(results_, "alpha", 100.0);
    auto result = compare();
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("no committed baseline"),
              std::string::npos);
    EXPECT_NE(result.output.find("--bless"), std::string::npos);
}

TEST_F(BenchCompare, MissingResultFails)
{
    writeBench(baselines_, "alpha", 100.0);
    auto result = compare();
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("no result was produced"),
              std::string::npos);
}

TEST_F(BenchCompare, BlessThenCompareRoundTrips)
{
    writeBench(results_, "alpha", 100.0);
    writeBench(results_, "beta", 200.0);
    auto bless = compare("--bless");
    EXPECT_EQ(bless.exitCode, 0);
    EXPECT_NE(bless.output.find("blessed"), std::string::npos);
    EXPECT_EQ(compare().exitCode, 0);
}

TEST_F(BenchCompare, EmptyBaselinesDirectoryFails)
{
    writeBench(results_, "alpha", 100.0);
    auto result = compare();
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("bless first"), std::string::npos);
}

TEST_F(BenchCompare, NegativeMaxRegressionIsUsageError)
{
    EXPECT_EQ(compare("--max-regression -0.5").exitCode, 2);
    EXPECT_EQ(compare("--min-wall-ms -1").exitCode, 2);
}

} // anonymous namespace
