/**
 * @file
 * Argument-validation tests for tools/check_goldens.sh: a bad
 * invocation must always get usage + exit 2 before the script goes
 * anywhere near a build tree. Guards the regression where a typo'd
 * mode (e.g. "-bless") silently ran a plain check.
 * SDNAV_CHECK_GOLDENS_PATH is injected by CMake.
 */

#include <array>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace
{

struct CommandResult
{
    int exitCode;
    std::string output;
};

CommandResult
runCheckGoldens(const std::string &arguments)
{
    std::string command = std::string(SDNAV_CHECK_GOLDENS_PATH) + " " +
                          arguments + " 2>&1";
    FILE *pipe = popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string output;
    std::array<char, 4096> buffer;
    while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr)
        output += buffer.data();
    int status = pclose(pipe);
    return {WEXITSTATUS(status), output};
}

TEST(CheckGoldens, NoArgumentsIsUsageError)
{
    auto result = runCheckGoldens("");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST(CheckGoldens, UnknownModeIsUsageError)
{
    // "-bless", "bless", "--blessx": anything that is not exactly
    // --bless must be rejected, not silently treated as a check run.
    for (const char *mode : {"-bless", "bless", "--blessx", "check2"}) {
        auto result =
            runCheckGoldens(std::string("some-build-dir ") + mode);
        EXPECT_EQ(result.exitCode, 2) << "mode: " << mode;
        EXPECT_NE(result.output.find("unknown mode"),
                  std::string::npos)
            << "mode: " << mode;
        EXPECT_NE(result.output.find("usage:"), std::string::npos)
            << "mode: " << mode;
    }
}

TEST(CheckGoldens, TooManyArgumentsIsUsageError)
{
    auto result = runCheckGoldens("build --bless extra");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST(CheckGoldens, ValidModeReachesBuildDirCheck)
{
    // With well-formed arguments but a nonexistent build dir, the
    // script must get past argument validation and fail on the
    // missing csv_diff binary instead — still exit 2, different
    // message.
    auto result = runCheckGoldens("/nonexistent-build-dir");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("not built"), std::string::npos);
    EXPECT_EQ(result.output.find("unknown mode"), std::string::npos);
}

} // anonymous namespace
