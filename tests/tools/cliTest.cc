/**
 * @file
 * End-to-end tests of the sdnav_cli binary: every subcommand is run
 * as a subprocess and its output checked for the expected content and
 * numbers. SDNAV_CLI_PATH is injected by CMake.
 */

#include <array>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/json.hh"

#ifndef SDNAV_METRICS_ENABLED
#define SDNAV_METRICS_ENABLED 1
#endif

namespace
{

/** Whether the binary under test records metrics/trace events. */
constexpr bool kMetricsEnabled = SDNAV_METRICS_ENABLED != 0;

struct CommandResult
{
    int exitCode;
    std::string output;
};

CommandResult
runCli(const std::string &arguments)
{
    std::string command =
        std::string(SDNAV_CLI_PATH) + " " + arguments + " 2>&1";
    FILE *pipe = popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string output;
    std::array<char, 4096> buffer;
    while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr)
        output += buffer.data();
    int status = pclose(pipe);
    return {WEXITSTATUS(status), output};
}

TEST(Cli, HelpListsCommands)
{
    auto result = runCli("help");
    EXPECT_EQ(result.exitCode, 0);
    for (const char *cmd : {"tables", "analyze", "rank", "outage",
                            "transient", "cutsets", "fleet",
                            "figures", "simulate", "export"}) {
        EXPECT_NE(result.output.find(cmd), std::string::npos) << cmd;
    }
}

TEST(Cli, UnknownCommandFails)
{
    auto result = runCli("frobnicate");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("unknown command"),
              std::string::npos);
}

TEST(Cli, TablesPrintsPaperTables)
{
    auto result = runCli("tables");
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("Table I."), std::string::npos);
    EXPECT_NE(result.output.find("Table II."), std::string::npos);
    EXPECT_NE(result.output.find("Table III."), std::string::npos);
    EXPECT_NE(result.output.find("config-api"), std::string::npos);
}

TEST(Cli, AnalyzeReproducesHeadlineNumber)
{
    auto result =
        runCli("analyze --topology small --policy required");
    EXPECT_EQ(result.exitCode, 0);
    // The 2S CP availability at defaults.
    EXPECT_NE(result.output.find("0.99998748"), std::string::npos);
    EXPECT_NE(result.output.find("6.58"), std::string::npos);
}

TEST(Cli, AnalyzeAcceptsParameterOverrides)
{
    auto result = runCli(
        "analyze --topology small --policy required --ar 1.0");
    EXPECT_EQ(result.exitCode, 0);
    // Removing the rack single point of failure shrinks CP downtime
    // from 6.58 to ~1.3 m/y.
    EXPECT_NE(result.output.find("1.3"), std::string::npos);
}

TEST(Cli, RankFindsVRouterWeakLinks)
{
    auto result = runCli("rank --plane dp --top 3");
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("supervisor-vrouter"),
              std::string::npos);
    EXPECT_NE(result.output.find("vrouter-dpdk"), std::string::npos);
}

TEST(Cli, CutSetsFindsRackSingleton)
{
    auto result =
        runCli("cutsets --topology small --order 1 --plane cp");
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("{rack0}"), std::string::npos);
}

TEST(Cli, OutageAndFleetRun)
{
    auto outage = runCli("outage --topology small --plane cp");
    EXPECT_EQ(outage.exitCode, 0);
    EXPECT_NE(outage.output.find("outages/year"), std::string::npos);

    auto fleet = runCli("fleet --topology small --sites 100");
    EXPECT_EQ(fleet.exitCode, 0);
    EXPECT_NE(fleet.output.find("100"), std::string::npos);
    EXPECT_NE(fleet.output.find("P[outage within 1y]"),
              std::string::npos);
}

TEST(Cli, TransientShowsRecovery)
{
    auto result = runCli("transient --topology small --from down");
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("time to steady state"),
              std::string::npos);
}

TEST(Cli, ExportAndReimportCatalog)
{
    std::string path = testing::TempDir() + "/cli_export_test.json";
    auto exported =
        runCli("export catalog " + path + " --catalog raft");
    EXPECT_EQ(exported.exitCode, 0);
    auto analyzed = runCli("analyze --catalog-file " + path +
                           " --topology large --policy required");
    EXPECT_EQ(analyzed.exitCode, 0);
    EXPECT_NE(analyzed.output.find("Raft-style"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Cli, ExportTopologyRoundTrips)
{
    std::string path = testing::TempDir() + "/cli_topo_test.json";
    auto exported = runCli("export topology " + path +
                           " --topology medium");
    EXPECT_EQ(exported.exitCode, 0);
    auto analyzed =
        runCli("analyze --topology-file " + path + " --policy "
               "not-required");
    EXPECT_EQ(analyzed.exitCode, 0);
    EXPECT_NE(analyzed.output.find("Medium"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Cli, BadInputsReportErrorsGracefully)
{
    auto bad_policy = runCli("analyze --policy maybe");
    EXPECT_EQ(bad_policy.exitCode, 1);
    EXPECT_NE(bad_policy.output.find("error:"), std::string::npos);

    auto bad_file = runCli("analyze --catalog-file /no/such.json");
    EXPECT_EQ(bad_file.exitCode, 1);

    // Malformed or out-of-range numeric flags are usage errors and
    // exit 2 (see MalformedNumericOptionIsAUsageErrorNamingTheFlag).
    auto bad_availability = runCli("analyze --a 1.5");
    EXPECT_EQ(bad_availability.exitCode, 2);

    auto missing_value = runCli("analyze --topology");
    EXPECT_EQ(missing_value.exitCode, 1);
}

TEST(Cli, SimulateSmokeRun)
{
    auto result = runCli(
        "simulate --topology small --hours 20000 --mtbf 100 --hosts 6 "
        "--seed 3");
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("Behavioral simulation"),
              std::string::npos);
    EXPECT_NE(result.output.find("CP outages"), std::string::npos);
}

TEST(Cli, SimulateReplicatedRun)
{
    const std::string base =
        "simulate --topology small --hours 5000 --mtbf 100 --hosts 6 "
        "--seed 3 --replications 4";
    auto result = runCli(base + " --threads 2");
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("Replicated behavioral simulation"),
              std::string::npos);
    EXPECT_NE(result.output.find("4 x"), std::string::npos);
    EXPECT_NE(result.output.find("across SE"), std::string::npos);

    // Thread count must not change the pooled numbers.
    auto sequential = runCli(base + " --threads 1");
    EXPECT_EQ(sequential.exitCode, 0);
    EXPECT_EQ(result.output, sequential.output);
}

TEST(Cli, FiguresIdenticalAcrossThreadCounts)
{
    const std::string base = "figures --points 11";
    auto serial = runCli(base + " --threads 1");
    EXPECT_EQ(serial.exitCode, 0);
    EXPECT_NE(serial.output.find("Figure 3."), std::string::npos);
    EXPECT_NE(serial.output.find("Figure 4."), std::string::npos);
    EXPECT_NE(serial.output.find("Figure 5."), std::string::npos);
    for (const char *threads : {"2", "8"}) {
        auto parallel =
            runCli(base + " --threads " + std::string(threads));
        EXPECT_EQ(parallel.exitCode, 0);
        EXPECT_EQ(serial.output, parallel.output)
            << threads << " threads";
    }
}

TEST(Cli, FiguresExactVariantsPrinted)
{
    auto result = runCli("figures --points 5 --exact on --threads 2");
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("Figure 4 (exact)."),
              std::string::npos);
    EXPECT_NE(result.output.find("Figure 5 (exact)."),
              std::string::npos);
}

TEST(Cli, MetricsFlagWritesParseableSnapshot)
{
    std::string path = testing::TempDir() + "/cli_metrics_test.json";
    // --exact on routes Figures 4/5 through the BDD engine so the
    // bdd.* counters are exercised too.
    auto result = runCli("figures --points 5 --exact on --threads 2 "
                         "--metrics " + path);
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("[metrics] wrote"),
              std::string::npos);

    sdnav::json::Value doc = sdnav::json::parseFile(path);
    ASSERT_TRUE(doc.isObject());
    EXPECT_DOUBLE_EQ(doc.at("schema_version").asNumber(), 1.0);
    EXPECT_EQ(doc.at("command").asString(), "figures");
    EXPECT_DOUBLE_EQ(doc.at("threads").asNumber(), 2.0);
    const sdnav::json::Value &metrics = doc.at("metrics");
    ASSERT_TRUE(metrics.isObject());
    ASSERT_TRUE(metrics.contains("enabled"));
    if (metrics.at("enabled").asBool()) {
        // The figures sweep must have recorded grid points and BDD
        // probability evaluations.
        EXPECT_GT(metrics.at("counters").at("sweep.points").asNumber(),
                  0.0);
        EXPECT_GT(
            metrics.at("counters").at("bdd.prob_evals").asNumber(),
            0.0);
        EXPECT_TRUE(metrics.contains("timers"));
    }
    std::remove(path.c_str());
}

TEST(Cli, MetricsForSimulateCountsEvents)
{
    std::string path = testing::TempDir() + "/cli_sim_metrics.json";
    auto result = runCli(
        "simulate --topology small --hours 5000 --mtbf 100 --hosts 6 "
        "--seed 3 --metrics " + path);
    EXPECT_EQ(result.exitCode, 0);

    sdnav::json::Value doc = sdnav::json::parseFile(path);
    EXPECT_EQ(doc.at("command").asString(), "simulate");
    const sdnav::json::Value &metrics = doc.at("metrics");
    if (metrics.at("enabled").asBool()) {
        EXPECT_GT(metrics.at("counters").at("sim.events").asNumber(),
                  0.0);
        EXPECT_GT(
            metrics.at("gauges").at("sim.queue_high_water").asNumber(),
            0.0);
    }
    std::remove(path.c_str());
}

TEST(Cli, DeterministicCountersIdenticalAcrossThreadCounts)
{
    // The determinism contract extends to the metrics layer: counters
    // fed by per-index work (grid points, probability evaluations,
    // simulated events) must fold to the same totals whatever the
    // thread count. Scheduling-dependent metrics (chunk counts,
    // timers, scratch reuse) are exempt.
    std::string path1 = testing::TempDir() + "/cli_metrics_t1.json";
    std::string path8 = testing::TempDir() + "/cli_metrics_t8.json";
    const std::string base = "figures --points 11 --exact on";
    EXPECT_EQ(
        runCli(base + " --threads 1 --metrics " + path1).exitCode, 0);
    EXPECT_EQ(
        runCli(base + " --threads 8 --metrics " + path8).exitCode, 0);

    sdnav::json::Value m1 =
        sdnav::json::parseFile(path1).at("metrics");
    sdnav::json::Value m8 =
        sdnav::json::parseFile(path8).at("metrics");
    if (m1.at("enabled").asBool()) {
        for (const char *name : {"sweep.points", "sweep.runs",
                                 "bdd.prob_evals",
                                 "bdd.unique_table_misses"}) {
            EXPECT_DOUBLE_EQ(m1.at("counters").at(name).asNumber(),
                             m8.at("counters").at(name).asNumber())
                << name;
        }
    }
    std::remove(path1.c_str());
    std::remove(path8.c_str());
}

TEST(Cli, MetricsToUnwritablePathFailsUpfrontAsUsageError)
{
    // Validated before any work runs: usage-style error, exit 2.
    auto result = runCli(
        "figures --points 5 --metrics /nonexistent-dir/m.json");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("cannot write --metrics"),
              std::string::npos);
    EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST(Cli, TraceToUnwritablePathFailsUpfrontAsUsageError)
{
    auto result = runCli(
        "simulate --hours 1000 --trace /nonexistent-dir/t.json");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("cannot write --trace"),
              std::string::npos);
    EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST(Cli, TraceFlagWritesValidChromeTrace)
{
    std::string path = testing::TempDir() + "/cli_trace_test.json";
    auto result = runCli(
        "simulate --topology small --hours 5000 --mtbf 100 --hosts 6 "
        "--seed 3 --trace " + path);
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("[trace] wrote"), std::string::npos);

    sdnav::json::Value doc = sdnav::json::parseFile(path);
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
    const auto &events = doc.at("traceEvents").asArray();
    if (kMetricsEnabled) {
        bool saw_sim_span = false;
        for (const sdnav::json::Value &event : events) {
            if (event.at("name").asString() == "sim.controller_run")
                saw_sim_span = true;
        }
        EXPECT_TRUE(saw_sim_span);
        EXPECT_GT(events.size(), 1u);
    } else {
        // No-op build still writes a valid, empty trace.
        EXPECT_TRUE(events.empty());
    }
    std::remove(path.c_str());
}

TEST(Cli, SimulateAttributionPrintsTables)
{
    auto result = runCli(
        "simulate --topology small --hours 20000 --mtbf 100 --hosts 6 "
        "--seed 3 --attribution");
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("CP downtime attribution"),
              std::string::npos);
    EXPECT_NE(result.output.find("DP downtime attribution"),
              std::string::npos);
    // The analytic cross-check column from the BDD structure
    // function, and the integrity total row.
    EXPECT_NE(result.output.find("analytic_share"),
              std::string::npos);
    EXPECT_NE(result.output.find("total"), std::string::npos);
}

TEST(Cli, SimulateAttributionIdenticalAcrossThreadCounts)
{
    const std::string base =
        "simulate --topology small --hours 5000 --mtbf 100 --hosts 6 "
        "--seed 3 --replications 4 --attribution";
    auto sequential = runCli(base + " --threads 1");
    EXPECT_EQ(sequential.exitCode, 0);
    auto parallel = runCli(base + " --threads 8");
    EXPECT_EQ(parallel.exitCode, 0);
    EXPECT_EQ(sequential.output, parallel.output);
}

TEST(Cli, SimulateWithoutHostsReportsUnmeasuredDp)
{
    auto result = runCli(
        "simulate --topology small --hours 5000 --mtbf 100 --hosts 0 "
        "--seed 3");
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_NE(result.output.find("n/a"), std::string::npos);
}

TEST(Cli, MalformedNumericOptionIsAUsageErrorNamingTheFlag)
{
    // std::stod would have parsed "3x" as 3 and thrown uncaught on
    // "abc"; the checked parser exits 2 and says which flag.
    auto mtbf = runCli("simulate --mtbf abc --hours 100");
    EXPECT_EQ(mtbf.exitCode, 2);
    EXPECT_NE(mtbf.output.find("--mtbf"), std::string::npos);

    auto hours = runCli("simulate --hours 3x");
    EXPECT_EQ(hours.exitCode, 2);
    EXPECT_NE(hours.output.find("--hours"), std::string::npos);

    auto nodes = runCli("analyze --nodes 2.5");
    EXPECT_EQ(nodes.exitCode, 2);
    EXPECT_NE(nodes.output.find("--nodes"), std::string::npos);
}

TEST(Cli, OutOfRangeAvailabilityIsAUsageError)
{
    auto result = runCli("analyze --a 1.5");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("--a"), std::string::npos);
    EXPECT_NE(result.output.find("out of range"), std::string::npos);

    auto negative = runCli("analyze --ah -0.2");
    EXPECT_EQ(negative.exitCode, 2);
    EXPECT_NE(negative.output.find("--ah"), std::string::npos);
}

} // anonymous namespace
