/**
 * @file
 * End-to-end tests of the csv_diff binary (the golden-CSV gate's
 * comparator): exit codes, tolerance semantics, and header handling.
 * SDNAV_CSV_DIFF_PATH is injected by CMake.
 */

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace
{

struct CommandResult
{
    int exitCode;
    std::string output;
};

CommandResult
runCsvDiff(const std::string &arguments)
{
    std::string command =
        std::string(SDNAV_CSV_DIFF_PATH) + " " + arguments + " 2>&1";
    FILE *pipe = popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string output;
    std::array<char, 4096> buffer;
    while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr)
        output += buffer.data();
    int status = pclose(pipe);
    return {WEXITSTATUS(status), output};
}

/** Write a temp CSV and return its path. */
std::string
writeCsv(const std::string &name, const std::string &content)
{
    std::string path =
        testing::TempDir() + "/csv_diff_" + name + ".csv";
    std::ofstream out(path);
    out << content;
    return path;
}

TEST(CsvDiff, IdenticalFilesMatch)
{
    std::string a = writeCsv("id_a", "x,y\n1.5,2.25\n3,4\n");
    std::string b = writeCsv("id_b", "x,y\n1.5,2.25\n3,4\n");
    EXPECT_EQ(runCsvDiff(a + " " + b).exitCode, 0);
}

TEST(CsvDiff, DifferenceWithinRtolMatches)
{
    std::string a = writeCsv("tol_a", "x\n1.0\n");
    std::string b = writeCsv("tol_b", "x\n1.0000000001\n");
    EXPECT_EQ(runCsvDiff(a + " " + b).exitCode, 0); // default 1e-9
    auto strict = runCsvDiff("--rtol 1e-12 " + a + " " + b);
    EXPECT_EQ(strict.exitCode, 1);
    EXPECT_NE(strict.output.find("row 2 col 1"), std::string::npos);
}

TEST(CsvDiff, AtolCoversValuesNearZero)
{
    std::string a = writeCsv("atol_a", "x\n0\n");
    std::string b = writeCsv("atol_b", "x\n1e-14\n");
    // rtol alone cannot pass a zero-vs-tiny comparison.
    EXPECT_EQ(runCsvDiff(a + " " + b).exitCode, 1);
    EXPECT_EQ(runCsvDiff("--atol 1e-12 " + a + " " + b).exitCode, 0);
}

TEST(CsvDiff, HeaderComparesExactlyEvenWhenNumeric)
{
    // A numeric-looking header cell must not get tolerance treatment.
    std::string a = writeCsv("hdr_a", "1.0,y\n1,2\n");
    std::string b = writeCsv("hdr_b", "1.00,y\n1,2\n");
    EXPECT_EQ(runCsvDiff(a + " " + b).exitCode, 1);
}

TEST(CsvDiff, TextCellsCompareExactly)
{
    std::string a = writeCsv("txt_a", "name,v\nsmall,1\n");
    std::string b = writeCsv("txt_b", "name,v\nlarge,1\n");
    auto result = runCsvDiff(a + " " + b);
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("\"small\" vs \"large\""),
              std::string::npos);
}

TEST(CsvDiff, RowAndColumnCountMismatchesReported)
{
    std::string a = writeCsv("shape_a", "x,y\n1,2\n3,4\n");
    std::string b = writeCsv("shape_b", "x,y\n1,2\n");
    auto fewer = runCsvDiff(a + " " + b);
    EXPECT_EQ(fewer.exitCode, 1);
    EXPECT_NE(fewer.output.find("row count differs"),
              std::string::npos);
    std::string c = writeCsv("shape_c", "x,y\n1,2,9\n3,4\n");
    auto wider = runCsvDiff(a + " " + c);
    EXPECT_EQ(wider.exitCode, 1);
    EXPECT_NE(wider.output.find("column count differs"),
              std::string::npos);
}

TEST(CsvDiff, MismatchNamesTheHeaderColumn)
{
    // Reports cite the offending column by header name, so a failed
    // golden check reads "col 2 (availability)" not just an index.
    std::string a =
        writeCsv("col_a", "nines,availability\n3,0.999\n");
    std::string b =
        writeCsv("col_b", "nines,availability\n3,0.998\n");
    auto result = runCsvDiff(a + " " + b);
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("row 2 col 2 (availability)"),
              std::string::npos);
}

TEST(CsvDiff, QuotedCellsWithCommasParse)
{
    std::string a = writeCsv("q_a", "name,v\n\"a, b\",1\n");
    std::string b = writeCsv("q_b", "name,v\n\"a, b\",1\n");
    EXPECT_EQ(runCsvDiff(a + " " + b).exitCode, 0);
}

TEST(CsvDiff, MissingFileIsUsageError)
{
    std::string a = writeCsv("missing_a", "x\n1\n");
    EXPECT_EQ(runCsvDiff(a + " /nonexistent/no.csv").exitCode, 2);
    EXPECT_EQ(runCsvDiff(a).exitCode, 2);
    EXPECT_EQ(runCsvDiff("--bogus " + a + " " + a).exitCode, 2);
}

} // anonymous namespace
