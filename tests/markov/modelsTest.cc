/**
 * @file
 * Tests for the canonical CTMC models: the Markov machinery must
 * re-derive the paper's section VI.A availability algebra.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/units.hh"
#include "markov/models.hh"
#include "prob/kofn.hh"
#include "prob/processAvailability.hh"

namespace
{

using namespace sdnav::markov;
using sdnav::prob::ProcessTimings;

TEST(TwoStateModel, MatchesMtbfMttrFormula)
{
    for (double mttr : {0.1, 1.0, 24.0}) {
        Ctmc chain = twoStateModel(5000.0, mttr);
        EXPECT_NEAR(chain.steadyStateAvailability(),
                    sdnav::availabilityFromMtbfMttr(5000.0, mttr),
                    1e-12)
            << "mttr=" << mttr;
    }
}

TEST(TwoStateModel, RejectsBadInputs)
{
    EXPECT_THROW(twoStateModel(0.0, 1.0), sdnav::ModelError);
    EXPECT_THROW(twoStateModel(5000.0, 0.0), sdnav::ModelError);
}

TEST(SupervisorCoupledModel, DerivesThePaperA_Star)
{
    // Paper section VI.A scenario 2: F=5000, R=0.1, R_S=1, F_s=5000
    // gives A* = F*/(F*+R*) with F*=2500, R*=0.55.
    ProcessTimings timings{5000.0, 0.1, 1.0};
    Ctmc chain = supervisorCoupledModel(timings, 5000.0);
    double expected =
        sdnav::prob::scenario2EffectiveAvailability(timings, 5000.0);
    EXPECT_NEAR(chain.steadyStateAvailability(), expected, 1e-12);
    EXPECT_NEAR(chain.steadyStateAvailability(), 2500.0 / 2500.55,
                1e-9);
}

TEST(SupervisorCoupledModel, ReducesToTwoStateWithoutSupervisorRisk)
{
    ProcessTimings timings{5000.0, 0.1, 1.0};
    Ctmc chain = supervisorCoupledModel(timings, 1e15);
    EXPECT_NEAR(chain.steadyStateAvailability(),
                timings.supervisedAvailability(), 1e-9);
}

TEST(SupervisorCoupledModel, StateInventory)
{
    ProcessTimings timings{5000.0, 0.1, 1.0};
    Ctmc chain = supervisorCoupledModel(timings, 5000.0);
    EXPECT_EQ(chain.stateCount(), 3u);
    EXPECT_TRUE(chain.stateUp(0));
    EXPECT_FALSE(chain.stateUp(1));
    EXPECT_FALSE(chain.stateUp(2));
}

TEST(KofNRepairable, UnlimitedCrewsMatchEquationOne)
{
    // With one crew per element, element states are independent
    // two-state chains, so block availability equals the paper's
    // eq. (1) with alpha = F/(F+R).
    unsigned n = 3, m = 2;
    double mtbf = 1000.0, mttr = 10.0;
    Ctmc chain = kOfNRepairableModel(n, m, mtbf, mttr, n);
    double alpha = mtbf / (mtbf + mttr);
    EXPECT_NEAR(chain.steadyStateAvailability(),
                sdnav::prob::kOfN(m, n, alpha), 1e-12);
}

TEST(KofNRepairable, UnlimitedCrewsMatchForLargerCluster)
{
    unsigned n = 5, m = 3;
    double mtbf = 500.0, mttr = 25.0;
    Ctmc chain = kOfNRepairableModel(n, m, mtbf, mttr, n);
    double alpha = mtbf / (mtbf + mttr);
    EXPECT_NEAR(chain.steadyStateAvailability(),
                sdnav::prob::kOfN(m, n, alpha), 1e-12);
}

TEST(KofNRepairable, LimitedCrewsReduceAvailability)
{
    unsigned n = 5, m = 3;
    double mtbf = 200.0, mttr = 50.0;
    double one_crew =
        kOfNRepairableModel(n, m, mtbf, mttr, 1)
            .steadyStateAvailability();
    double two_crews =
        kOfNRepairableModel(n, m, mtbf, mttr, 2)
            .steadyStateAvailability();
    double full_crews =
        kOfNRepairableModel(n, m, mtbf, mttr, n)
            .steadyStateAvailability();
    EXPECT_LT(one_crew, two_crews);
    EXPECT_LT(two_crews, full_crews);
}

TEST(KofNRepairable, CrewCountBeyondElementsChangesNothing)
{
    unsigned n = 4, m = 2;
    double a =
        kOfNRepairableModel(n, m, 100.0, 5.0, n)
            .steadyStateAvailability();
    double b =
        kOfNRepairableModel(n, m, 100.0, 5.0, n + 10)
            .steadyStateAvailability();
    EXPECT_NEAR(a, b, 1e-12);
}

TEST(KofNRepairable, InputValidation)
{
    EXPECT_THROW(kOfNRepairableModel(0, 1, 1.0, 1.0, 1),
                 sdnav::ModelError);
    EXPECT_THROW(kOfNRepairableModel(3, 0, 1.0, 1.0, 1),
                 sdnav::ModelError);
    EXPECT_THROW(kOfNRepairableModel(3, 4, 1.0, 1.0, 1),
                 sdnav::ModelError);
    EXPECT_THROW(kOfNRepairableModel(3, 2, 1.0, 1.0, 0),
                 sdnav::ModelError);
}

TEST(BirthDeath, MatchesCtmcSteadyState)
{
    // An M/M/1-like 4-state chain: closed form vs general solver.
    std::vector<double> births{3.0, 2.0, 1.0};
    std::vector<double> deaths{4.0, 4.0, 4.0};
    auto closed = birthDeathSteadyState(births, deaths);

    Ctmc chain;
    for (int i = 0; i < 4; ++i)
        chain.addState(std::to_string(i), true);
    for (std::size_t i = 0; i < 3; ++i) {
        chain.addTransition(i, i + 1, births[i]);
        chain.addTransition(i + 1, i, deaths[i]);
    }
    auto solved = chain.steadyState();
    ASSERT_EQ(closed.size(), solved.size());
    for (std::size_t i = 0; i < closed.size(); ++i)
        EXPECT_NEAR(closed[i], solved[i], 1e-12);
}

TEST(BirthDeath, NormalizesToOne)
{
    auto pi = birthDeathSteadyState({1.0, 1.0}, {2.0, 2.0});
    double total = 0.0;
    for (double p : pi)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BirthDeath, RejectsMismatchedRates)
{
    EXPECT_THROW(birthDeathSteadyState({1.0}, {1.0, 2.0}),
                 sdnav::ModelError);
    EXPECT_THROW(birthDeathSteadyState({0.0}, {1.0}),
                 sdnav::ModelError);
}

} // anonymous namespace
