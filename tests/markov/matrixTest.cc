/**
 * @file
 * Tests for the dense matrix and the linear solver.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "markov/matrix.hh"

namespace
{

using namespace sdnav::markov;

TEST(Matrix, ConstructsZeroed)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(m.at(i, j), 0.0);
}

TEST(Matrix, RejectsEmptyDimensions)
{
    EXPECT_THROW(Matrix(0, 3), sdnav::ModelError);
    EXPECT_THROW(Matrix(3, 0), sdnav::ModelError);
}

TEST(Matrix, IdentityActsAsNeutral)
{
    Matrix a(2, 2);
    a.at(0, 0) = 1.0;
    a.at(0, 1) = 2.0;
    a.at(1, 0) = 3.0;
    a.at(1, 1) = 4.0;
    Matrix i = Matrix::identity(2);
    Matrix product = a.multiply(i);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_DOUBLE_EQ(product.at(r, c), a.at(r, c));
}

TEST(Matrix, MultiplyKnownProduct)
{
    Matrix a(2, 3);
    // [1 2 3; 4 5 6]
    for (std::size_t j = 0; j < 3; ++j) {
        a.at(0, j) = static_cast<double>(j + 1);
        a.at(1, j) = static_cast<double>(j + 4);
    }
    Matrix b(3, 1);
    b.at(0, 0) = 1.0;
    b.at(1, 0) = 0.0;
    b.at(2, 0) = -1.0;
    Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c.at(0, 0), -2.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), -2.0);
}

TEST(Matrix, MultiplyDimensionMismatch)
{
    Matrix a(2, 3), b(2, 3);
    EXPECT_THROW(a.multiply(b), sdnav::ModelError);
}

TEST(Matrix, VectorProducts)
{
    Matrix a(2, 2);
    a.at(0, 0) = 1.0;
    a.at(0, 1) = 2.0;
    a.at(1, 0) = 3.0;
    a.at(1, 1) = 4.0;
    auto right = a.multiply(std::vector<double>{1.0, 1.0});
    EXPECT_DOUBLE_EQ(right[0], 3.0);
    EXPECT_DOUBLE_EQ(right[1], 7.0);
    auto left = a.leftMultiply(std::vector<double>{1.0, 1.0});
    EXPECT_DOUBLE_EQ(left[0], 4.0);
    EXPECT_DOUBLE_EQ(left[1], 6.0);
}

TEST(Matrix, TransposeScaleAdd)
{
    Matrix a(2, 3);
    a.at(0, 2) = 5.0;
    Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_DOUBLE_EQ(t.at(2, 0), 5.0);
    t.scale(2.0);
    EXPECT_DOUBLE_EQ(t.at(2, 0), 10.0);
    Matrix u(3, 2);
    u.at(2, 0) = 1.0;
    t.add(u);
    EXPECT_DOUBLE_EQ(t.at(2, 0), 11.0);
    EXPECT_DOUBLE_EQ(t.maxAbs(), 11.0);
}

TEST(Solver, SolvesDiagonalSystem)
{
    Matrix a(2, 2);
    a.at(0, 0) = 2.0;
    a.at(1, 1) = 4.0;
    auto x = solveLinearSystem(a, {6.0, 8.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solver, SolvesSystemNeedingPivoting)
{
    // Leading zero forces a row swap.
    Matrix a(2, 2);
    a.at(0, 0) = 0.0;
    a.at(0, 1) = 1.0;
    a.at(1, 0) = 1.0;
    a.at(1, 1) = 0.0;
    auto x = solveLinearSystem(a, {5.0, 7.0});
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(Solver, Solves3x3)
{
    Matrix a(3, 3);
    double values[3][3] = {{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            a.at(i, j) = values[i][j];
    auto x = solveLinearSystem(a, {8.0, -11.0, -3.0});
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
    EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(Solver, ResidualIsSmallOnRandomSystems)
{
    // Fixed pseudo-random system; verify A x ~= b.
    std::size_t n = 12;
    Matrix a(n, n);
    std::vector<double> b(n);
    std::uint64_t state = 42;
    auto next = [&state]() {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<double>(state >> 11) * 0x1.0p-53 - 0.5;
    };
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            a.at(i, j) = next();
        a.at(i, i) += 4.0; // Diagonally dominant => nonsingular.
        b[i] = next();
    }
    auto x = solveLinearSystem(a, b);
    auto ax = a.multiply(x);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(Solver, RejectsSingularMatrix)
{
    Matrix a(2, 2);
    a.at(0, 0) = 1.0;
    a.at(0, 1) = 2.0;
    a.at(1, 0) = 2.0;
    a.at(1, 1) = 4.0;
    EXPECT_THROW(solveLinearSystem(a, {1.0, 2.0}), sdnav::ModelError);
}

TEST(Solver, RejectsShapeMismatch)
{
    Matrix a(2, 3);
    EXPECT_THROW(solveLinearSystem(a, {1.0, 2.0}), sdnav::ModelError);
    Matrix b(2, 2);
    EXPECT_THROW(solveLinearSystem(b, {1.0}), sdnav::ModelError);
}

TEST(Matrix, StrRendersRows)
{
    Matrix a(1, 2);
    a.at(0, 1) = 2.5;
    EXPECT_EQ(a.str(), "[0, 2.5]\n");
}

} // anonymous namespace
