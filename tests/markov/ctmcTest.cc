/**
 * @file
 * Tests for the CTMC solver: steady state, transients by
 * uniformization, and interval availability.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "markov/ctmc.hh"
#include "markov/models.hh"

namespace
{

using namespace sdnav::markov;

Ctmc
twoState(double fail_rate, double repair_rate)
{
    Ctmc chain;
    StateId up = chain.addState("up", true);
    StateId down = chain.addState("down", false);
    chain.addTransition(up, down, fail_rate);
    chain.addTransition(down, up, repair_rate);
    return chain;
}

TEST(Ctmc, GeneratorRowsSumToZero)
{
    Ctmc chain = twoState(0.2, 5.0);
    Matrix q = chain.generator();
    for (std::size_t i = 0; i < q.rows(); ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < q.cols(); ++j)
            sum += q.at(i, j);
        EXPECT_NEAR(sum, 0.0, 1e-15);
    }
    EXPECT_DOUBLE_EQ(q.at(0, 1), 0.2);
    EXPECT_DOUBLE_EQ(q.at(1, 0), 5.0);
}

TEST(Ctmc, TwoStateSteadyStateClosedForm)
{
    double lambda = 1.0 / 5000.0;
    double mu = 1.0 / 0.1;
    Ctmc chain = twoState(lambda, mu);
    auto pi = chain.steadyState();
    EXPECT_NEAR(pi[0], mu / (mu + lambda), 1e-12);
    EXPECT_NEAR(pi[1], lambda / (mu + lambda), 1e-12);
    EXPECT_NEAR(chain.steadyStateAvailability(), 0.99998, 1e-8);
}

TEST(Ctmc, SteadyStateSumsToOne)
{
    Ctmc chain;
    StateId a = chain.addState("a", true);
    StateId b = chain.addState("b", false);
    StateId c = chain.addState("c", true);
    chain.addTransition(a, b, 1.0);
    chain.addTransition(b, c, 2.0);
    chain.addTransition(c, a, 3.0);
    auto pi = chain.steadyState();
    double total = 0.0;
    for (double p : pi) {
        EXPECT_GE(p, 0.0);
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Ctmc, CyclicChainSteadyStateMatchesRates)
{
    // pi_i proportional to 1/exit_rate for a directed cycle.
    Ctmc chain;
    chain.addState("0", true);
    chain.addState("1", true);
    chain.addState("2", true);
    chain.addTransition(0, 1, 2.0);
    chain.addTransition(1, 2, 4.0);
    chain.addTransition(2, 0, 8.0);
    auto pi = chain.steadyState();
    // Weights 1/2 : 1/4 : 1/8 -> 4/7, 2/7, 1/7.
    EXPECT_NEAR(pi[0], 4.0 / 7.0, 1e-12);
    EXPECT_NEAR(pi[1], 2.0 / 7.0, 1e-12);
    EXPECT_NEAR(pi[2], 1.0 / 7.0, 1e-12);
}

TEST(Ctmc, SingleStateChainIsTrivial)
{
    Ctmc chain;
    chain.addState("only", true);
    auto pi = chain.steadyState();
    ASSERT_EQ(pi.size(), 1u);
    EXPECT_DOUBLE_EQ(pi[0], 1.0);
    EXPECT_DOUBLE_EQ(chain.steadyStateAvailability(), 1.0);
}

TEST(Ctmc, TransientMatchesTwoStateClosedForm)
{
    // Two-state chain has the closed-form transient
    // P_up(t) = A + (1 - A) e^{-(lambda+mu) t} starting from up.
    double lambda = 0.5, mu = 2.0;
    Ctmc chain = twoState(lambda, mu);
    double availability = mu / (mu + lambda);
    std::vector<double> initial{1.0, 0.0};
    for (double t : {0.0, 0.1, 0.5, 1.0, 3.0, 10.0}) {
        double expected =
            availability + (1.0 - availability) *
                               std::exp(-(lambda + mu) * t);
        EXPECT_NEAR(chain.transientAvailability(initial, t), expected,
                    1e-9)
            << "t=" << t;
    }
}

TEST(Ctmc, TransientConvergesToSteadyState)
{
    Ctmc chain = twoState(0.3, 1.7);
    std::vector<double> initial{0.0, 1.0}; // Start down.
    double long_run = chain.transientAvailability(initial, 200.0);
    EXPECT_NEAR(long_run, chain.steadyStateAvailability(), 1e-9);
}

TEST(Ctmc, TransientDistributionStaysNormalized)
{
    Ctmc chain;
    chain.addState("a", true);
    chain.addState("b", false);
    chain.addState("c", true);
    chain.addTransition(0, 1, 10.0);
    chain.addTransition(1, 2, 0.1);
    chain.addTransition(2, 0, 1.0);
    std::vector<double> initial{1.0, 0.0, 0.0};
    for (double t : {0.01, 1.0, 100.0}) {
        auto dist = chain.transientDistribution(initial, t);
        double total = 0.0;
        for (double p : dist) {
            EXPECT_GE(p, -1e-12);
            total += p;
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST(Ctmc, IntervalAvailabilityBetweenPointValues)
{
    // Starting from up, transient availability decreases toward the
    // steady state, so the interval average lies between them.
    Ctmc chain = twoState(0.4, 1.2);
    std::vector<double> initial{1.0, 0.0};
    double horizon = 5.0;
    double interval = chain.intervalAvailability(initial, horizon);
    double at_end = chain.transientAvailability(initial, horizon);
    EXPECT_GT(interval, at_end);
    EXPECT_LT(interval, 1.0);
}

TEST(Ctmc, IntervalAvailabilityOfAbsorbingUpChain)
{
    Ctmc chain;
    chain.addState("up", true);
    std::vector<double> initial{1.0};
    EXPECT_DOUBLE_EQ(chain.intervalAvailability(initial, 10.0), 1.0);
}

TEST(Ctmc, ValidationErrors)
{
    Ctmc chain;
    StateId a = chain.addState("a", true);
    EXPECT_THROW(chain.addTransition(a, a, 1.0), sdnav::ModelError);
    EXPECT_THROW(chain.addTransition(a, 5, 1.0), sdnav::ModelError);
    EXPECT_THROW(chain.addTransition(a, a + 0, -1.0),
                 sdnav::ModelError);
    EXPECT_THROW(chain.stateName(9), sdnav::ModelError);
    Ctmc empty;
    EXPECT_THROW(empty.steadyState(), sdnav::ModelError);
}

TEST(Ctmc, TransientInputValidation)
{
    Ctmc chain = twoState(1.0, 1.0);
    EXPECT_THROW(chain.transientDistribution({1.0}, 1.0),
                 sdnav::ModelError);
    EXPECT_THROW(
        chain.transientDistribution({1.0, 0.0}, -1.0),
        sdnav::ModelError);
    EXPECT_THROW(chain.intervalAvailability({1.0, 0.0}, 1.0, 3),
                 sdnav::ModelError);
}

TEST(Ctmc, MttfOfTwoStateChainIsMtbf)
{
    // From up, the mean time to first failure of a two-state chain
    // is exactly the MTBF.
    Ctmc chain = twoState(1.0 / 5000.0, 1.0 / 0.1);
    EXPECT_NEAR(chain.meanTimeToFirstFailure({1.0, 0.0}), 5000.0,
                1e-6);
}

TEST(Ctmc, MttfOfParallelPairClosedForm)
{
    // 1-of-2 identical repairable components: the classic closed form
    // MTTF = (3 lambda + mu) / (2 lambda^2) from the all-up state.
    double lambda = 0.01, mu = 2.0;
    Ctmc chain;
    StateId both = chain.addState("2up", true);
    StateId one = chain.addState("1up", true);
    StateId none = chain.addState("0up", false);
    chain.addTransition(both, one, 2.0 * lambda);
    chain.addTransition(one, both, mu);
    chain.addTransition(one, none, lambda);
    chain.addTransition(none, one, mu); // Irrelevant to MTTF.
    std::vector<double> initial{1.0, 0.0, 0.0};
    double expected = (3.0 * lambda + mu) / (2.0 * lambda * lambda);
    EXPECT_NEAR(chain.meanTimeToFirstFailure(initial), expected,
                1e-6 * expected);
}

TEST(Ctmc, MttfRejectsMassOnDownStates)
{
    Ctmc chain = twoState(1.0, 1.0);
    EXPECT_THROW(chain.meanTimeToFirstFailure({0.5, 0.5}),
                 sdnav::ModelError);
    EXPECT_THROW(chain.meanTimeToFirstFailure({1.0}),
                 sdnav::ModelError);
}

TEST(Ctmc, MttfExceedsMtbfWithFastRepair)
{
    // In a 2-of-3 block with fast repair, the block MTTF is much
    // longer than a single element MTBF.
    double mtbf = 100.0, mttr = 1.0;
    Ctmc chain = sdnav::markov::kOfNRepairableModel(3, 2, mtbf, mttr,
                                                    3);
    std::vector<double> initial(chain.stateCount(), 0.0);
    initial[0] = 1.0;
    double mttf = chain.meanTimeToFirstFailure(initial);
    EXPECT_GT(mttf, 10.0 * mtbf);
}

TEST(Ctmc, StateMetadataAccessors)
{
    Ctmc chain = twoState(1.0, 2.0);
    EXPECT_EQ(chain.stateCount(), 2u);
    EXPECT_EQ(chain.stateName(0), "up");
    EXPECT_TRUE(chain.stateUp(0));
    EXPECT_FALSE(chain.stateUp(1));
}

} // anonymous namespace
