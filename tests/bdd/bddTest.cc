/**
 * @file
 * Tests for the ROBDD engine, including exhaustive cross-checks of
 * probability evaluation against brute-force enumeration.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "bdd/bdd.hh"
#include "common/error.hh"
#include "prob/combinatorics.hh"
#include "prob/rng.hh"

namespace
{

using namespace sdnav::bdd;

TEST(Bdd, TerminalsAreFixed)
{
    BddManager m;
    EXPECT_EQ(m.andOp(trueNode, trueNode), trueNode);
    EXPECT_EQ(m.andOp(trueNode, falseNode), falseNode);
    EXPECT_EQ(m.orOp(falseNode, falseNode), falseNode);
    EXPECT_EQ(m.orOp(trueNode, falseNode), trueNode);
    EXPECT_EQ(m.notOp(trueNode), falseNode);
    EXPECT_EQ(m.notOp(falseNode), trueNode);
}

TEST(Bdd, HashConsingGivesCanonicalNodes)
{
    BddManager m;
    NodeRef x = m.var(0);
    NodeRef y = m.var(1);
    // Same function built two ways must be the same node.
    EXPECT_EQ(m.andOp(x, y), m.andOp(y, x));
    EXPECT_EQ(m.orOp(x, y), m.notOp(m.andOp(m.notOp(x), m.notOp(y))));
    EXPECT_EQ(m.var(0), x);
}

TEST(Bdd, DoubleNegationIsIdentity)
{
    BddManager m;
    NodeRef x = m.var(0);
    NodeRef f = m.orOp(x, m.andOp(m.var(1), m.var(2)));
    EXPECT_EQ(m.notOp(m.notOp(f)), f);
}

TEST(Bdd, IdempotentAndAbsorbing)
{
    BddManager m;
    NodeRef f = m.xorOp(m.var(0), m.var(1));
    EXPECT_EQ(m.andOp(f, f), f);
    EXPECT_EQ(m.orOp(f, f), f);
    EXPECT_EQ(m.andOp(f, trueNode), f);
    EXPECT_EQ(m.orOp(f, falseNode), f);
    EXPECT_EQ(m.andOp(f, falseNode), falseNode);
    EXPECT_EQ(m.orOp(f, trueNode), trueNode);
}

TEST(Bdd, XorTruthTable)
{
    BddManager m;
    NodeRef f = m.xorOp(m.var(0), m.var(1));
    std::vector<bool> assign(2);
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            assign[0] = a;
            assign[1] = b;
            EXPECT_EQ(m.evaluate(f, assign), (a ^ b) != 0);
        }
    }
}

TEST(Bdd, ContradictionAndTautology)
{
    BddManager m;
    NodeRef x = m.var(3);
    EXPECT_EQ(m.andOp(x, m.notOp(x)), falseNode);
    EXPECT_EQ(m.orOp(x, m.notOp(x)), trueNode);
    EXPECT_EQ(m.nvar(3), m.notOp(x));
}

TEST(Bdd, ProbabilityOfSingleVariable)
{
    BddManager m;
    NodeRef x = m.var(0);
    std::vector<double> probs{0.3};
    EXPECT_NEAR(m.probability(x, probs), 0.3, 1e-15);
    EXPECT_NEAR(m.probability(m.notOp(x), probs), 0.7, 1e-15);
}

TEST(Bdd, ProbabilityOfIndependentAndOr)
{
    BddManager m;
    NodeRef f_and = m.andOp(m.var(0), m.var(1));
    NodeRef f_or = m.orOp(m.var(0), m.var(1));
    std::vector<double> probs{0.9, 0.8};
    EXPECT_NEAR(m.probability(f_and, probs), 0.72, 1e-15);
    EXPECT_NEAR(m.probability(f_or, probs), 0.98, 1e-15);
}

TEST(Bdd, ProbabilityHandlesSharedVariables)
{
    BddManager m;
    // f = (x & y) | (x & z): NOT independent blocks; exact value is
    // p_x (p_y + p_z - p_y p_z).
    NodeRef f = m.orOp(m.andOp(m.var(0), m.var(1)),
                       m.andOp(m.var(0), m.var(2)));
    std::vector<double> p{0.5, 0.6, 0.7};
    double expected = 0.5 * (0.6 + 0.7 - 0.42);
    EXPECT_NEAR(m.probability(f, p), expected, 1e-15);
}

TEST(Bdd, ProbabilityRejectsShortVector)
{
    BddManager m;
    NodeRef f = m.var(5);
    std::vector<double> p{0.5};
    EXPECT_THROW(m.probability(f, p), sdnav::ModelError);
    ProbabilityScratch scratch;
    EXPECT_THROW(m.probability(f, p, scratch), sdnav::ModelError);
}

TEST(Bdd, ScratchEvaluationMatchesPlainEvaluation)
{
    BddManager m;
    NodeRef f = m.orOp(m.andOp(m.var(0), m.var(1)),
                       m.andOp(m.var(1), m.notOp(m.var(2))));
    std::vector<double> p{0.2, 0.6, 0.9};
    ProbabilityScratch scratch;
    EXPECT_EQ(m.probability(f, p, scratch), m.probability(f, p));
}

TEST(Bdd, ScratchIsReusableAcrossFunctionsAndManagers)
{
    ProbabilityScratch scratch;
    BddManager m;
    std::vector<NodeRef> vars{m.var(0), m.var(1), m.var(2)};
    std::vector<double> p{0.9, 0.8, 0.7};
    // Interleave different functions through one scratch; each call
    // must be independent of what the scratch held before.
    for (unsigned k = 0; k <= 3; ++k) {
        NodeRef f = m.atLeast(vars, k);
        EXPECT_EQ(m.probability(f, p, scratch), m.probability(f, p))
            << "k=" << k;
    }
    scratch.clear();
    BddManager other;
    NodeRef g = other.xorOp(other.var(0), other.var(1));
    std::vector<double> q{0.25, 0.5};
    EXPECT_EQ(other.probability(g, q, scratch),
              other.probability(g, q));
}

TEST(Bdd, ScratchEvaluationDoesNotGrowManager)
{
    BddManager m;
    std::vector<NodeRef> vars;
    for (unsigned i = 0; i < 12; ++i)
        vars.push_back(m.var(i));
    NodeRef f = m.atLeast(vars, 7);
    std::size_t nodes = m.totalNodes();
    ProbabilityScratch scratch;
    std::vector<double> p(12, 0.75);
    for (int rep = 0; rep < 100; ++rep)
        m.probability(f, p, scratch);
    EXPECT_EQ(m.totalNodes(), nodes);
}

TEST(Bdd, AtLeastMatchesBinomialTail)
{
    BddManager m;
    const unsigned n = 7;
    std::vector<NodeRef> vars;
    for (unsigned i = 0; i < n; ++i)
        vars.push_back(m.var(i));
    std::vector<double> probs(n, 0.85);
    for (unsigned k = 0; k <= n + 1; ++k) {
        NodeRef f = m.atLeast(vars, k);
        double expected =
            k > n ? 0.0
                  : sdnav::prob::binomialTailAtLeast(n, k, 0.85);
        EXPECT_NEAR(m.probability(f, probs), expected, 1e-12)
            << "k=" << k;
    }
}

TEST(Bdd, AtLeastZeroIsTrueAndOverflowIsFalse)
{
    BddManager m;
    std::vector<NodeRef> vars{m.var(0), m.var(1)};
    EXPECT_EQ(m.atLeast(vars, 0), trueNode);
    EXPECT_EQ(m.atLeast(vars, 3), falseNode);
}

TEST(Bdd, AtLeastOverFunctionsNotJustVariables)
{
    BddManager m;
    // at least 1 of {x&y, !x} == (x&y) | !x == !x | y.
    std::vector<NodeRef> fs{m.andOp(m.var(0), m.var(1)),
                            m.notOp(m.var(0))};
    NodeRef f = m.atLeast(fs, 1);
    EXPECT_EQ(f, m.orOp(m.notOp(m.var(0)), m.var(1)));
}

TEST(Bdd, RestrictFixesVariables)
{
    BddManager m;
    NodeRef f = m.ite(m.var(0), m.var(1), m.var(2));
    EXPECT_EQ(m.restrict(f, 0, true), m.var(1));
    EXPECT_EQ(m.restrict(f, 0, false), m.var(2));
    // Restricting an absent variable is a no-op.
    EXPECT_EQ(m.restrict(f, 9, true), f);
}

TEST(Bdd, ShannonExpansionIdentity)
{
    BddManager m;
    NodeRef f =
        m.orOp(m.andOp(m.var(0), m.var(1)),
               m.andOp(m.var(1), m.notOp(m.var(2))));
    std::vector<double> p{0.2, 0.6, 0.9};
    double direct = m.probability(f, p);
    double expanded =
        p[1] * m.probability(m.restrict(f, 1, true), p) +
        (1.0 - p[1]) * m.probability(m.restrict(f, 1, false), p);
    EXPECT_NEAR(direct, expanded, 1e-15);
}

TEST(Bdd, EvaluateAgreesWithProbabilityOnCornerPoints)
{
    BddManager m;
    std::vector<NodeRef> vars{m.var(0), m.var(1), m.var(2), m.var(3)};
    NodeRef f = m.atLeast(vars, 3);
    for (unsigned mask = 0; mask < 16; ++mask) {
        std::vector<bool> assign(4);
        std::vector<double> probs(4);
        for (unsigned i = 0; i < 4; ++i) {
            assign[i] = (mask >> i) & 1;
            probs[i] = assign[i] ? 1.0 : 0.0;
        }
        EXPECT_EQ(m.evaluate(f, assign),
                  m.probability(f, probs) > 0.5);
    }
}

TEST(Bdd, NodeCountOfSimpleFunctions)
{
    BddManager m;
    EXPECT_EQ(m.nodeCount(trueNode), 0u);
    EXPECT_EQ(m.nodeCount(m.var(0)), 1u);
    // x0 & x1 & x2 is a chain of 3 nodes.
    NodeRef chain =
        m.andOp(m.var(0), m.andOp(m.var(1), m.var(2)));
    EXPECT_EQ(m.nodeCount(chain), 3u);
}

TEST(Bdd, RestrictScratchMatchesPlainRestrict)
{
    BddManager m;
    std::vector<NodeRef> vars;
    for (unsigned i = 0; i < 8; ++i)
        vars.push_back(m.var(i));
    NodeRef f = m.atLeast(vars, 5);
    RestrictScratch scratch;
    // One scratch threaded through every call, as the importance
    // loops do; each call must be independent of prior contents.
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_EQ(m.restrict(f, i, true, scratch),
                  m.restrict(f, i, true))
            << "var=" << i;
        EXPECT_EQ(m.restrict(f, i, false, scratch),
                  m.restrict(f, i, false))
            << "var=" << i;
    }
    // Absent variable stays a no-op through the scratch path too.
    EXPECT_EQ(m.restrict(f, 42, true, scratch), f);
    // A scratch survives moving to another manager.
    BddManager other;
    NodeRef g = other.xorOp(other.var(0), other.var(1));
    EXPECT_EQ(other.restrict(g, 0, true, scratch),
              other.notOp(other.var(1)));
}

TEST(Bdd, DeepChainOperationsDoNotOverflowTheStack)
{
    // Regression: ite() and restrict() used native recursion and
    // overflowed the call stack on chain diagrams a few hundred
    // thousand nodes deep. Building the conjunction bottom-up (last
    // variable first) keeps every andOp O(1), so construction itself
    // stays linear.
    BddManager m;
    const unsigned n = 200000;
    std::vector<NodeRef> fs;
    fs.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        fs.push_back(m.var(n - 1 - i));
    NodeRef chain = m.andAll(fs);
    EXPECT_EQ(m.nodeCount(chain), n);

    // Each of these descends the full chain.
    NodeRef negated = m.notOp(chain);
    EXPECT_EQ(m.notOp(negated), chain);
    RestrictScratch scratch;
    NodeRef without_bottom = m.restrict(chain, n - 1, true, scratch);
    EXPECT_EQ(m.nodeCount(without_bottom), n - 1);

    std::vector<double> probs(n, 1.0);
    EXPECT_EQ(m.probability(chain, probs), 1.0);
    std::vector<bool> assign(n, true);
    EXPECT_TRUE(m.evaluate(chain, assign));
    assign[n / 2] = false;
    EXPECT_FALSE(m.evaluate(chain, assign));
}

TEST(Bdd, CollectGarbageReclaimsUnrootedNodesOnly)
{
    BddManager m;
    std::vector<NodeRef> vars;
    for (unsigned i = 0; i < 12; ++i)
        vars.push_back(m.var(i));
    NodeRef f = m.atLeast(vars, 6);
    m.addRoot(f);
    std::vector<double> probs(12, 0.9);
    const double before = m.probability(f, probs);
    const std::size_t f_nodes = m.nodeCount(f);

    // Importance-style loop: every restrict leaves intermediates.
    RestrictScratch scratch;
    for (unsigned i = 0; i < 12; ++i) {
        m.restrict(f, i, true, scratch);
        m.restrict(f, i, false, scratch);
    }
    const std::size_t live_before_gc = m.liveNodes();
    const std::size_t reclaimed = m.collectGarbage();
    EXPECT_GT(reclaimed, 0u);
    EXPECT_EQ(m.liveNodes(), live_before_gc - reclaimed);
    // The rooted diagram survives intact and evaluates identically.
    EXPECT_EQ(m.nodeCount(f), f_nodes);
    EXPECT_EQ(m.probability(f, probs), before);

    BddStats stats = m.stats();
    EXPECT_EQ(stats.gcRuns, 1u);
    EXPECT_EQ(stats.gcReclaimedNodes, reclaimed);
    EXPECT_EQ(stats.freeNodes, reclaimed);
    m.removeRoot(f);
}

TEST(Bdd, FreeListReuseKeepsTheUniqueTableCanonical)
{
    BddManager m;
    std::vector<NodeRef> vars;
    for (unsigned i = 0; i < 10; ++i)
        vars.push_back(m.var(i));
    NodeRef keep = m.atLeast(vars, 4);
    m.addRoot(keep);
    // Unrooted scaffolding to be reclaimed.
    NodeRef scrap = falseNode;
    for (unsigned i = 0; i + 1 < 10; ++i)
        scrap = m.orOp(scrap, m.andOp(vars[i], m.notOp(vars[i + 1])));
    const std::size_t scrap_nodes = m.nodeCount(scrap);
    const std::size_t arena = m.totalNodes();
    ASSERT_GT(m.collectGarbage(), 0u);

    // Rebuilding the reclaimed function must reuse free-listed slots
    // (no arena growth) and land on canonical, properly hash-consed
    // nodes: identities that rely on ref equality still hold. The old
    // vars refs died with the collection, so re-derive them — var()
    // hash-conses back to canonical projection nodes.
    NodeRef rebuilt = falseNode;
    for (unsigned i = 0; i + 1 < 10; ++i)
        rebuilt = m.orOp(rebuilt,
                         m.andOp(m.var(i), m.notOp(m.var(i + 1))));
    EXPECT_LE(m.totalNodes(), arena);
    EXPECT_EQ(m.nodeCount(rebuilt), scrap_nodes);
    EXPECT_EQ(m.notOp(m.notOp(rebuilt)), rebuilt);
    EXPECT_EQ(m.andOp(rebuilt, rebuilt), rebuilt);
    EXPECT_EQ(m.orOp(rebuilt, keep), m.orOp(keep, rebuilt));
    m.removeRoot(keep);
}

TEST(Bdd, ScopedRootProtectsAcrossMaybeCollect)
{
    BddManager m;
    std::vector<NodeRef> vars;
    for (unsigned i = 0; i < 10; ++i)
        vars.push_back(m.var(i));
    NodeRef f = m.atLeast(vars, 5);
    std::vector<double> probs(10, 0.8);
    m.setGcThreshold(1);
    {
        ScopedRoot root(m, f);
        EXPECT_TRUE(m.maybeCollect());
        // Rooted through the scope: still evaluates.
        EXPECT_NEAR(m.probability(f, probs),
                    sdnav::prob::binomialTailAtLeast(10, 5, 0.8),
                    1e-12);
    }
    // Root released: the next collection reclaims the diagram.
    m.setGcThreshold(1);
    std::size_t live = m.liveNodes();
    EXPECT_TRUE(m.maybeCollect());
    EXPECT_LT(m.liveNodes(), live);
    EXPECT_GE(m.stats().gcRuns, 2u);
}

TEST(Bdd, MaybeCollectHonorsTheThreshold)
{
    BddManager m;
    NodeRef f = m.andOp(m.var(0), m.var(1));
    m.addRoot(f);
    // Far below any default threshold: no collection.
    EXPECT_FALSE(m.maybeCollect());
    EXPECT_EQ(m.stats().gcRuns, 0u);
    m.setGcThreshold(1);
    EXPECT_TRUE(m.maybeCollect());
    EXPECT_EQ(m.stats().gcRuns, 1u);
    // The adaptive reset lifts the threshold back above live size.
    EXPECT_FALSE(m.maybeCollect());
    m.removeRoot(f);
}

TEST(Bdd, ReorderSiftingShrinksAnInterleavedOrder)
{
    // (x0 & x3) | (x1 & x4) | (x2 & x5): with the pairs interleaved
    // the diagram is exponential in the number of pairs; sifting must
    // find a pair-adjacent order and shrink it.
    BddManager m;
    NodeRef f = m.orOp(
        m.orOp(m.andOp(m.var(0), m.var(3)),
               m.andOp(m.var(1), m.var(4))),
        m.andOp(m.var(2), m.var(5)));
    m.addRoot(f);
    std::vector<double> probs{0.9, 0.8, 0.7, 0.6, 0.5, 0.4};
    const double before = m.probability(f, probs);
    const std::size_t nodes_before = m.nodeCount(f);

    const std::size_t saved = m.reorderSifting();
    EXPECT_GT(saved, 0u);
    EXPECT_LT(m.nodeCount(f), nodes_before);
    EXPECT_NEAR(m.probability(f, probs), before, 1e-15);
    EXPECT_EQ(m.stats().reorderRuns, 1u);
    EXPECT_GT(m.stats().reorderSwaps, 0u);

    // The level maps stay a permutation of the variables.
    std::vector<bool> seen(m.variableCount(), false);
    for (unsigned level = 0; level < m.variableCount(); ++level) {
        unsigned v = m.variableAtLevel(level);
        EXPECT_EQ(m.levelOfVariable(v), level);
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }

    // The engine still operates correctly on the permuted order.
    for (unsigned mask = 0; mask < 64; ++mask) {
        std::vector<bool> assign(6);
        for (unsigned i = 0; i < 6; ++i)
            assign[i] = (mask >> i) & 1;
        bool expected = (assign[0] && assign[3]) ||
                        (assign[1] && assign[4]) ||
                        (assign[2] && assign[5]);
        EXPECT_EQ(m.evaluate(f, assign), expected) << "mask=" << mask;
    }
    double expanded =
        probs[1] * m.probability(m.restrict(f, 1, true), probs) +
        (1.0 - probs[1]) *
            m.probability(m.restrict(f, 1, false), probs);
    EXPECT_NEAR(m.probability(f, probs), expanded, 1e-15);
    m.removeRoot(f);
}

TEST(Bdd, ReorderKeepsRootedRefsDenotingTheSameFunction)
{
    BddManager m;
    std::vector<NodeRef> vars;
    for (unsigned i = 0; i < 8; ++i)
        vars.push_back(m.var(i));
    NodeRef f = m.atLeast(vars, 3);
    NodeRef g = m.andOp(m.orOp(vars[0], vars[7]),
                        m.orOp(vars[3], vars[4]));
    ScopedRoot root_f(m, f);
    ScopedRoot root_g(m, g);
    std::vector<double> probs{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2};
    const double pf = m.probability(f, probs);
    const double pg = m.probability(g, probs);
    m.reorderSifting();
    EXPECT_NEAR(m.probability(f, probs), pf, 1e-15);
    EXPECT_NEAR(m.probability(g, probs), pg, 1e-15);
    // Both still compose after the reorder.
    NodeRef both = m.andOp(f, g);
    std::vector<bool> assign(8, true);
    EXPECT_TRUE(m.evaluate(both, assign));
}

TEST(Bdd, NodeCapBudgetAbortsABigBuild)
{
    BddManager m;
    std::vector<NodeRef> vars;
    for (unsigned i = 0; i < 24; ++i)
        vars.push_back(m.var(i));
    // atLeast over 24 variables wants hundreds of nodes; a cap of 40
    // (terminals included) trips mid-build.
    m.setStepBudget(StepBudget{0.0, 40});
    try {
        m.atLeast(vars, 12);
        FAIL() << "expected BudgetExceeded";
    } catch (const BudgetExceeded &e) {
        EXPECT_EQ(e.budgetName(), "node-cap");
        EXPECT_GE(e.nodesAllocated(), 40u);
        EXPECT_GE(e.elapsedMs(), 0.0);
        EXPECT_NE(std::string(e.what()).find("node-cap"),
                  std::string::npos);
    }
}

TEST(Bdd, WallDeadlineBudgetAbortsABigBuild)
{
    BddManager m;
    std::vector<NodeRef> vars;
    for (unsigned i = 0; i < 24; ++i)
        vars.push_back(m.var(i));
    // An already-expired deadline trips at the next ite() entry.
    m.setStepBudget(StepBudget{1e-9, 0});
    try {
        m.atLeast(vars, 12);
        FAIL() << "expected BudgetExceeded";
    } catch (const BudgetExceeded &e) {
        EXPECT_EQ(e.budgetName(), "wall-deadline");
        EXPECT_GT(e.elapsedMs(), 0.0);
    }
}

TEST(Bdd, ManagerSurvivesABudgetAbortAndRebuildsUnbudgeted)
{
    BddManager m;
    std::vector<NodeRef> vars;
    for (unsigned i = 0; i < 24; ++i)
        vars.push_back(m.var(i));
    m.setStepBudget(StepBudget{0.0, 40});
    EXPECT_THROW(m.atLeast(vars, 12), BudgetExceeded);

    // Clearing the budget leaves a usable manager: the same build
    // succeeds and evaluates correctly (no poisoned caches).
    m.clearStepBudget();
    NodeRef f = m.atLeast(vars, 12);
    std::vector<bool> assign(24, false);
    for (unsigned i = 0; i < 12; ++i)
        assign[i] = true;
    EXPECT_TRUE(m.evaluate(f, assign));
    assign[0] = false;
    EXPECT_FALSE(m.evaluate(f, assign));
}

TEST(Bdd, UnlimitedBudgetIsANoOp)
{
    BddManager m;
    m.setStepBudget(StepBudget{}); // both fields zero = unlimited
    EXPECT_FALSE(StepBudget{}.limited());
    std::vector<NodeRef> vars;
    for (unsigned i = 0; i < 12; ++i)
        vars.push_back(m.var(i));
    NodeRef f = m.atLeast(vars, 6);
    EXPECT_NE(f, falseNode);
}

// Randomized cross-check: random expressions over 10 variables,
// probability via BDD vs brute-force enumeration of all 1024 states.
class BddRandomExpression : public testing::TestWithParam<int>
{};

TEST_P(BddRandomExpression, ProbabilityMatchesEnumeration)
{
    const unsigned n = 10;
    sdnav::prob::Rng rng(GetParam());
    BddManager m;

    // Build a random expression tree bottom-up from literals.
    std::vector<NodeRef> pool;
    for (unsigned i = 0; i < n; ++i)
        pool.push_back(m.var(i));
    for (int step = 0; step < 40; ++step) {
        NodeRef a = pool[rng.uniformInt(pool.size())];
        NodeRef b = pool[rng.uniformInt(pool.size())];
        switch (rng.uniformInt(4)) {
          case 0:
            pool.push_back(m.andOp(a, b));
            break;
          case 1:
            pool.push_back(m.orOp(a, b));
            break;
          case 2:
            pool.push_back(m.xorOp(a, b));
            break;
          default:
            pool.push_back(m.notOp(a));
            break;
        }
    }
    NodeRef f = pool.back();

    std::vector<double> probs(n);
    for (unsigned i = 0; i < n; ++i)
        probs[i] = rng.uniform();

    double brute = 0.0;
    std::vector<bool> assign(n);
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
        double w = 1.0;
        for (unsigned i = 0; i < n; ++i) {
            bool up = (mask >> i) & 1;
            assign[i] = up;
            w *= up ? probs[i] : 1.0 - probs[i];
        }
        if (m.evaluate(f, assign))
            brute += w;
    }
    EXPECT_NEAR(m.probability(f, probs), brute, 1e-12);
}

TEST_P(BddRandomExpression, GcAndReorderPreserveProbability)
{
    const unsigned n = 10;
    sdnav::prob::Rng rng(GetParam());
    BddManager m;

    std::vector<NodeRef> pool;
    for (unsigned i = 0; i < n; ++i)
        pool.push_back(m.var(i));
    for (int step = 0; step < 40; ++step) {
        NodeRef a = pool[rng.uniformInt(pool.size())];
        NodeRef b = pool[rng.uniformInt(pool.size())];
        switch (rng.uniformInt(4)) {
          case 0:
            pool.push_back(m.andOp(a, b));
            break;
          case 1:
            pool.push_back(m.orOp(a, b));
            break;
          case 2:
            pool.push_back(m.xorOp(a, b));
            break;
          default:
            pool.push_back(m.notOp(a));
            break;
        }
    }
    NodeRef f = pool.back();
    ScopedRoot root(m, f);

    std::vector<double> probs(n);
    for (unsigned i = 0; i < n; ++i)
        probs[i] = rng.uniform();
    const double before = m.probability(f, probs);

    // Collect (dropping the unrooted pool), then reorder, then build
    // more garbage on the recycled arena and collect again; the
    // rooted function's value must ride through all of it.
    m.collectGarbage();
    EXPECT_EQ(m.probability(f, probs), before);
    m.reorderSifting();
    EXPECT_NEAR(m.probability(f, probs), before, 1e-15);
    RestrictScratch scratch;
    for (unsigned i = 0; i < n; ++i)
        m.restrict(f, i, true, scratch);
    m.collectGarbage();
    EXPECT_NEAR(m.probability(f, probs), before, 1e-15);

    double brute = 0.0;
    std::vector<bool> assign(n);
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
        double w = 1.0;
        for (unsigned i = 0; i < n; ++i) {
            bool up = (mask >> i) & 1;
            assign[i] = up;
            w *= up ? probs[i] : 1.0 - probs[i];
        }
        if (m.evaluate(f, assign))
            brute += w;
    }
    EXPECT_NEAR(m.probability(f, probs), brute, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomExpression,
                         testing::Range(1, 13));

} // anonymous namespace
