#include "server/server.hh"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "bdd/bdd.hh"
#include "common/error.hh"
#include "common/json.hh"
#include "fmea/openContrail.hh"
#include "model/exactModel.hh"
#include "obs/obs.hh"
#include "server/lineClient.hh"

namespace
{

using namespace sdnav;
using namespace sdnav::server;

/** Start a server on an ephemeral port with test-friendly options. */
ServerOptions
testOptions()
{
    ServerOptions options;
    options.port = 0;
    options.workers = 2;
    return options;
}

/** A cheap query line (small topology, single node). */
std::string
cheapQuery(double id, const std::string &catalog = "opencontrail")
{
    json::Value doc = json::Value::makeObject();
    doc.set("id", id);
    doc.set("catalog", catalog);
    doc.set("topology", "small");
    doc.set("nodes", 1);
    return doc.dump();
}

json::Value
roundTrip(LineClient &client, const std::string &line)
{
    client.sendLine(line);
    return json::parse(client.recvLine());
}

TEST(Server, SingleQueryMatchesDirectModelEvaluation)
{
    Server srv(testOptions());
    srv.start();
    LineClient client;
    client.connect(srv.port());

    json::Value reply = roundTrip(
        client,
        R"({"id":1,"catalog":"opencontrail","topology":"small",)"
        R"("nodes":1,"params":{"a":0.995}})");
    ASSERT_TRUE(reply.at("ok").asBool()) << reply.dump();
    EXPECT_EQ(reply.at("id").asNumber(), 1.0);
    EXPECT_EQ(reply.at("cache").asString(), "miss");

    // Ground truth: the same model compiled and evaluated directly.
    auto catalog = fmea::openContrail3();
    auto topo = topology::smallTopology(catalog.roles().size(), 1);
    model::ExactPlaneModel direct(
        catalog, topo, model::SupervisorPolicy::Required,
        fmea::Plane::ControlPlane, {});
    model::SwParams params;
    params.processAvailability = 0.995;
    EXPECT_NEAR(reply.at("availability").asNumber(),
                direct.availability(params), 1e-15);

    // The second ask is a hit with the identical answer.
    json::Value again = roundTrip(
        client,
        R"({"id":2,"catalog":"opencontrail","topology":"small",)"
        R"("nodes":1,"params":{"a":0.995}})");
    EXPECT_EQ(again.at("cache").asString(), "hit");
    EXPECT_EQ(again.at("availability").asNumber(),
              reply.at("availability").asNumber());

    srv.requestStop();
    srv.wait();
}

TEST(Server, MalformedLinesErrorThatRequestOnly)
{
    Server srv(testOptions());
    srv.start();
    LineClient client;
    client.connect(srv.port());

    // Broken JSON: an error reply, not a dropped connection.
    json::Value bad = roundTrip(client, "{this is not json");
    EXPECT_FALSE(bad.at("ok").asBool());
    EXPECT_FALSE(bad.at("error").asString().empty());

    // Unknown members and bad values: ditto, with the id echoed.
    json::Value unknown =
        roundTrip(client, R"({"id":9,"nodez":3})");
    EXPECT_FALSE(unknown.at("ok").asBool());
    EXPECT_EQ(unknown.at("id").asNumber(), 9.0);

    // The same session still answers real queries afterwards.
    json::Value good = roundTrip(client, cheapQuery(10));
    EXPECT_TRUE(good.at("ok").asBool());

    srv.requestStop();
    srv.wait();
}

TEST(Server, OversizedLineIsRejectedAndTheSessionResyncs)
{
    ServerOptions options = testOptions();
    options.maxLineBytes = 512;
    Server srv(options);
    srv.start();
    LineClient client;
    client.connect(srv.port());
    std::uint64_t before =
        obs::Registry::global().counter("server.oversized_lines")
            .value();

    // Blow past the limit mid-line: the server replies with an error
    // while still reading, then discards up to the next newline.
    std::string huge(4096, 'x');
    client.sendRaw(huge);
    std::string reply = client.recvLine();
    json::Value doc = json::parse(reply);
    EXPECT_FALSE(doc.at("ok").asBool());
    EXPECT_NE(doc.at("error").asString().find("exceeds"),
              std::string::npos);

    // Finish the oversized line, then prove the stream re-syncs.
    client.sendRaw(huge + "\n");
    json::Value good = roundTrip(client, cheapQuery(1));
    EXPECT_TRUE(good.at("ok").asBool());

#if SDNAV_METRICS_ENABLED
    // The rejection is visible to scrapers, not just this client.
    EXPECT_GE(obs::Registry::global()
                  .counter("server.oversized_lines")
                  .value(),
              before + 1);
#else
    (void)before;
#endif

    srv.requestStop();
    srv.wait();
}

TEST(Server, MidLineDisconnectLeavesTheServerServing)
{
    Server srv(testOptions());
    srv.start();

    {
        LineClient dropper;
        dropper.connect(srv.port());
        dropper.sendRaw(R"({"id":1,"catalog":"open)"); // no newline
        dropper.close();
    }

    // A fresh connection is unaffected.
    LineClient client;
    client.connect(srv.port());
    json::Value reply = roundTrip(client, cheapQuery(2));
    EXPECT_TRUE(reply.at("ok").asBool());

    srv.requestStop();
    srv.wait();
}

TEST(Server, ConcurrentClientsGetDeterministicAnswers)
{
    Server srv(testOptions());
    srv.start();

    // Prime all three model keys so every reply below is a hit —
    // then equal requests must produce byte-identical reply lines.
    {
        LineClient primer;
        primer.connect(srv.port());
        for (const char *catalog :
             {"opencontrail", "raft", "fragile"})
            ASSERT_TRUE(roundTrip(primer, cheapQuery(0, catalog))
                            .at("ok")
                            .asBool());
    }

    constexpr int kClients = 4;
    constexpr int kRounds = 25;
    std::vector<std::vector<std::string>> replies(kClients);
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c)
        threads.emplace_back([&replies, &srv, c] {
            LineClient client;
            client.connect(srv.port());
            const char *catalogs[] = {"opencontrail", "raft",
                                      "fragile"};
            for (int i = 0; i < kRounds; ++i) {
                client.sendLine(
                    cheapQuery(i, catalogs[i % 3]));
                replies[static_cast<std::size_t>(c)].push_back(
                    client.recvLine());
            }
        });
    for (std::thread &thread : threads)
        thread.join();

    for (int c = 1; c < kClients; ++c)
        EXPECT_EQ(replies[static_cast<std::size_t>(c)], replies[0])
            << "client " << c
            << " saw different bytes than client 0";

    srv.requestStop();
    srv.wait();
}

TEST(Server, BatchRunsPerItemAndReportsPerItemErrors)
{
    Server srv(testOptions());
    srv.start();
    LineClient client;
    client.connect(srv.port());

    json::Value reply = roundTrip(
        client,
        R"({"id":5,"queries":[)"
        R"({"catalog":"opencontrail","topology":"small","nodes":1},)"
        R"({"catalog":"bogus"},)"
        R"({"catalog":"raft","topology":"small","nodes":1}]})");
    ASSERT_TRUE(reply.at("ok").asBool());
    EXPECT_EQ(reply.at("id").asNumber(), 5.0);
    const json::Value::Array &results =
        reply.at("results").asArray();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].at("ok").asBool());
    EXPECT_FALSE(results[1].at("ok").asBool());
    EXPECT_NE(results[1].at("error").asString().find("bogus"),
              std::string::npos);
    EXPECT_TRUE(results[2].at("ok").asBool());

    srv.requestStop();
    srv.wait();
}

TEST(Server, GracefulShutdownDrainsQueuedWork)
{
    ServerOptions options = testOptions();
    options.workers = 1;
    options.queueCapacity = 4; // force the batch through backpressure
    Server srv(options);
    srv.start();

    LineClient loader;
    loader.connect(srv.port());
    json::Value batch = json::Value::makeObject();
    batch.set("id", 1);
    json::Value queries = json::Value::makeArray();
    for (int i = 0; i < 32; ++i) {
        json::Value query = json::Value::makeObject();
        query.set("catalog", "opencontrail");
        query.set("topology", "small");
        query.set("nodes", 1);
        queries.push(std::move(query));
    }
    batch.set("queries", std::move(queries));
    loader.sendLine(batch.dump());

    // Give the session time to start pushing jobs, then ask for
    // shutdown from a second connection while work is in flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    LineClient stopper;
    stopper.connect(srv.port());
    json::Value ack = roundTrip(stopper, R"({"cmd":"shutdown"})");
    EXPECT_TRUE(ack.at("ok").asBool());

    // Every queued query still completes and the full reply arrives.
    json::Value reply = json::parse(loader.recvLine());
    ASSERT_TRUE(reply.at("ok").asBool());
    const json::Value::Array &results =
        reply.at("results").asArray();
    ASSERT_EQ(results.size(), 32u);
    for (const json::Value &result : results)
        EXPECT_TRUE(result.at("ok").asBool());

    srv.wait();
    EXPECT_TRUE(srv.stopping());
}

TEST(Server, StatsCommandReportsTheDocumentedSchema)
{
    Server srv(testOptions());
    srv.start();
    LineClient client;
    client.connect(srv.port());
    ASSERT_TRUE(roundTrip(client, cheapQuery(1)).at("ok").asBool());
    ASSERT_TRUE(roundTrip(client, cheapQuery(2)).at("ok").asBool());

    json::Value reply =
        roundTrip(client, R"({"id":"s","cmd":"stats"})");
    ASSERT_TRUE(reply.at("ok").asBool());
    EXPECT_EQ(reply.at("id").asString(), "s");
    const json::Value &stats = reply.at("stats");
    for (const char *key :
         {"uptime_s", "uptime_seconds", "git_sha", "qps", "requests",
          "slow_requests", "queries", "errors", "connections",
          "workers", "cache", "queue", "latency"})
        EXPECT_TRUE(stats.contains(key)) << "missing " << key;
    EXPECT_GE(stats.at("queries").asNumber(), 2.0);
    EXPECT_TRUE(stats.at("git_sha").isString());
    EXPECT_EQ(stats.at("uptime_seconds").asNumber(),
              stats.at("uptime_s").asNumber());

    const json::Value &cache = stats.at("cache");
    for (const char *key : {"hits", "misses", "evictions", "entries",
                            "capacity", "hit_rate", "bdd_nodes"})
        EXPECT_TRUE(cache.contains(key)) << "missing cache." << key;
    EXPECT_EQ(cache.at("misses").asNumber(), 1.0);
    EXPECT_EQ(cache.at("hits").asNumber(), 1.0);
    EXPECT_EQ(cache.at("hit_rate").asNumber(), 0.5);

    const json::Value &queue = stats.at("queue");
    for (const char *key : {"depth", "capacity", "peak"})
        EXPECT_TRUE(queue.contains(key)) << "missing queue." << key;

    const json::Value &latency = stats.at("latency");
    for (const char *key : {"count", "mean_ms", "p50_ms", "p90_ms",
                            "p99_ms", "max_ms"})
        EXPECT_TRUE(latency.contains(key))
            << "missing latency." << key;

    srv.requestStop();
    srv.wait();
}

TEST(Server, MetricsCommandServesPrometheusText)
{
    Server srv(testOptions());
    srv.start();
    LineClient client;
    client.connect(srv.port());
    ASSERT_TRUE(roundTrip(client, cheapQuery(1)).at("ok").asBool());

    json::Value reply =
        roundTrip(client, R"({"id":"m","cmd":"metrics"})");
    ASSERT_TRUE(reply.at("ok").asBool()) << reply.dump();
    EXPECT_EQ(reply.at("id").asString(), "m");
    const std::string &text = reply.at("metrics").asString();
#if SDNAV_METRICS_ENABLED
    EXPECT_NE(text.find("server_requests_total"), std::string::npos)
        << text;
    EXPECT_NE(text.find("# TYPE"), std::string::npos);
#else
    EXPECT_NE(text.find("metrics disabled"), std::string::npos);
#endif

    srv.requestStop();
    srv.wait();
}

TEST(Server, PromEndpointServesTheExpositionOverHttp)
{
    ServerOptions options = testOptions();
    options.promEnabled = true;
    options.promPort = 0; // ephemeral
    Server srv(options);
    srv.start();
    ASSERT_NE(srv.promPort(), 0);

    {
        LineClient primer;
        primer.connect(srv.port());
        ASSERT_TRUE(
            roundTrip(primer, cheapQuery(1)).at("ok").asBool());
    }

    // A raw HTTP/1.1 GET against the scrape endpoint. The server
    // closes the connection after one response, so read until EOF.
    LineClient http;
    http.connect(srv.promPort());
    http.sendRaw("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    std::string response;
    try {
        for (int i = 0; i < 4096; ++i)
            response += http.recvLine() + "\n";
    } catch (const ModelError &) {
        // EOF: the whole response has arrived.
    }
    EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_NE(response.find("text/plain"), std::string::npos);
#if SDNAV_METRICS_ENABLED
    EXPECT_NE(response.find("server_requests_total"),
              std::string::npos)
        << response;
#else
    EXPECT_NE(response.find("metrics disabled"), std::string::npos);
#endif

    // Unknown paths 404 without killing the listener.
    LineClient miss;
    miss.connect(srv.promPort());
    miss.sendRaw("GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
    std::string notFound;
    try {
        for (int i = 0; i < 64; ++i)
            notFound += miss.recvLine() + "\n";
    } catch (const ModelError &) {
    }
    EXPECT_NE(notFound.find("404"), std::string::npos);

    srv.requestStop();
    srv.wait();
}

TEST(Server, CompileBudgetTurnsRunawayCompilesIntoErrorReplies)
{
    ServerOptions options = testOptions();
    // OpenContrail Large blows through this cap within milliseconds;
    // the small single-node models stay far beneath it.
    options.compileNodeCap = 20000;
    Server srv(options);
    srv.start();
    LineClient client;
    client.connect(srv.port());

    const std::string runaway =
        R"({"id":7,"catalog":"opencontrail",)"
        R"("topology":"large","nodes":6})";
    json::Value reply = roundTrip(client, runaway);
    ASSERT_FALSE(reply.at("ok").asBool()) << reply.dump();
    EXPECT_TRUE(reply.at("budget_exceeded").asBool());
    EXPECT_EQ(reply.at("budget").asString(), "node-cap");
    EXPECT_GE(reply.at("nodes_allocated").asNumber(), 1.0);
    EXPECT_GE(reply.at("gc_runs").asNumber(), 0.0);
    EXPECT_GT(reply.at("elapsed_ms").asNumber(), 0.0);
    EXPECT_NE(reply.at("error").asString().find("node-cap"),
              std::string::npos);

    // The worker pool survives the abort: commands and affordable
    // queries keep flowing on the same connection.
    EXPECT_TRUE(
        roundTrip(client, R"({"cmd":"ping"})").at("ok").asBool());
    EXPECT_TRUE(roundTrip(client, cheapQuery(8)).at("ok").asBool());

    // Asking again errors again — promptly, off a clean cache entry —
    // rather than hanging on a poisoned in-flight future.
    json::Value again = roundTrip(client, runaway);
    EXPECT_FALSE(again.at("ok").asBool());
    EXPECT_TRUE(again.at("budget_exceeded").asBool());

    // Budget aborts count as errors and land in the abort counter.
    json::Value stats =
        roundTrip(client, R"({"cmd":"stats"})").at("stats");
    EXPECT_GE(stats.at("errors").asNumber(), 2.0);

    srv.requestStop();
    srv.wait();
}

TEST(Server, ConcurrentBudgetAbortsLeaveEveryWorkerServing)
{
    ServerOptions options = testOptions();
    options.compileNodeCap = 20000;
    Server srv(options);
    srv.start();

    constexpr int kClients = 3;
    std::vector<std::thread> threads;
    std::atomic<int> aborts{0};
    std::atomic<int> oks{0};
    for (int c = 0; c < kClients; ++c)
        threads.emplace_back([&srv, &aborts, &oks, c] {
            LineClient client;
            client.connect(srv.port());
            for (int i = 0; i < 3; ++i) {
                json::Value bad = roundTrip(
                    client,
                    R"({"id":1,"catalog":"opencontrail",)"
                    R"("topology":"large","nodes":6})");
                if (!bad.at("ok").asBool() &&
                    bad.at("budget_exceeded").asBool())
                    aborts.fetch_add(1);
                json::Value good = roundTrip(
                    client, cheapQuery(static_cast<double>(c)));
                if (good.at("ok").asBool())
                    oks.fetch_add(1);
            }
        });
    for (std::thread &thread : threads)
        thread.join();

    // Every runaway aborted, every cheap query answered: aborts are
    // per-request failures, never worker or connection casualties.
    EXPECT_EQ(aborts.load(), kClients * 3);
    EXPECT_EQ(oks.load(), kClients * 3);

    srv.requestStop();
    srv.wait();
}

TEST(Server, SlowThresholdCountsEveryRequestWhenSetToZeroish)
{
    ServerOptions options = testOptions();
    options.slowMs = 1e-6; // everything is "slow"
    Server srv(options);
    srv.start();
    LineClient client;
    client.connect(srv.port());
    ASSERT_TRUE(roundTrip(client, cheapQuery(1)).at("ok").asBool());
    ASSERT_TRUE(roundTrip(client, cheapQuery(2)).at("ok").asBool());

    json::Value stats =
        roundTrip(client, R"({"cmd":"stats"})").at("stats");
    EXPECT_GE(stats.at("slow_requests").asNumber(), 2.0);
    EXPECT_GE(srv.slowRequests(), 2u);

    srv.requestStop();
    srv.wait();
}

#if SDNAV_METRICS_ENABLED
TEST(Server, RequestLogWritesOneRecordPerRequest)
{
    std::string path = testing::TempDir() + "/sdnav_request_log_" +
                       std::to_string(::getpid()) + ".jsonl";
    std::remove(path.c_str());

    ServerOptions options = testOptions();
    options.requestLogPath = path;
    {
        Server srv(options);
        srv.start();
        LineClient client;
        client.connect(srv.port());
        ASSERT_TRUE(
            roundTrip(client, cheapQuery(1)).at("ok").asBool());
        ASSERT_TRUE(roundTrip(client, cheapQuery(1)).at("ok").asBool());
        ASSERT_TRUE(
            roundTrip(client, R"({"cmd":"ping"})").at("ok").asBool());
        srv.requestStop();
        srv.wait();
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::vector<json::Value> records;
    std::string line;
    while (std::getline(in, line))
        records.push_back(json::parse(line));
    ASSERT_EQ(records.size(), 3u);

    // The two queries: miss then hit, with the model key recorded.
    for (const char *key :
         {"id", "peer", "kind", "key", "cache", "queue_wait_ms",
          "compile_ms", "eval_ms", "reply_bytes", "latency_ms",
          "outcome"})
        EXPECT_TRUE(records[0].contains(key)) << "missing " << key;
    EXPECT_EQ(records[0].at("kind").asString(), "query");
    EXPECT_EQ(records[0].at("cache").asString(), "miss");
    EXPECT_EQ(records[0].at("outcome").asString(), "ok");
    EXPECT_GT(records[0].at("compile_ms").asNumber(), 0.0);
    EXPECT_FALSE(records[0].at("key").asString().empty());
    EXPECT_NE(records[0].at("peer").asString().find("127.0.0.1"),
              std::string::npos);
    EXPECT_EQ(records[1].at("cache").asString(), "hit");
    EXPECT_EQ(records[1].at("compile_ms").asNumber(), 0.0);

    // The command: no key, no cache interaction, still logged.
    EXPECT_EQ(records[2].at("kind").asString(), "cmd:ping");
    EXPECT_EQ(records[2].at("key").asString(), "");
    EXPECT_EQ(records[2].at("outcome").asString(), "ok");

    // Ids are the monotonic per-process sequence.
    EXPECT_LT(records[0].at("id").asNumber(),
              records[1].at("id").asNumber());
    EXPECT_LT(records[1].at("id").asNumber(),
              records[2].at("id").asNumber());

    std::remove(path.c_str());
}

TEST(Server, RequestLogRecordsBudgetAbortsAsSuch)
{
    std::string path = testing::TempDir() + "/sdnav_budget_log_" +
                       std::to_string(::getpid()) + ".jsonl";
    std::remove(path.c_str());

    ServerOptions options = testOptions();
    options.requestLogPath = path;
    options.compileNodeCap = 20000;
    {
        Server srv(options);
        srv.start();
        LineClient client;
        client.connect(srv.port());
        json::Value reply = roundTrip(
            client,
            R"({"id":1,"catalog":"opencontrail",)"
            R"("topology":"large","nodes":6})");
        EXPECT_FALSE(reply.at("ok").asBool());
        srv.requestStop();
        srv.wait();
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
    json::Value record = json::parse(line);
    EXPECT_EQ(record.at("outcome").asString(), "budget_exceeded");
    EXPECT_EQ(record.at("kind").asString(), "query");
    std::remove(path.c_str());
}
#endif // SDNAV_METRICS_ENABLED

TEST(Server, ShutdownCommandStopsTheServer)
{
    Server srv(testOptions());
    srv.start();
    LineClient client;
    client.connect(srv.port());
    json::Value ack = roundTrip(client, R"({"cmd":"shutdown"})");
    EXPECT_TRUE(ack.at("ok").asBool());
    EXPECT_TRUE(ack.at("stopping").asBool());
    srv.wait();
    EXPECT_TRUE(srv.stopping());
}

} // anonymous namespace
