#include "server/modelCache.hh"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bdd/bdd.hh"
#include "common/error.hh"

namespace
{

using namespace sdnav;
using namespace sdnav::server;

/** Distinct cheap-to-compile specs (small topology, tiny clusters). */
QuerySpec
spec(const std::string &catalog, std::size_t nodes)
{
    QuerySpec s;
    s.catalog = catalog;
    s.topology = "small";
    s.nodes = nodes;
    return s;
}

TEST(ModelCache, MissThenHit)
{
    ModelCache cache(2);
    CacheLookup first = cache.acquire(spec("opencontrail", 1));
    EXPECT_FALSE(first.hit);
    ASSERT_NE(first.model, nullptr);

    CacheLookup second = cache.acquire(spec("opencontrail", 1));
    EXPECT_TRUE(second.hit);
    // A hit serves the very same compiled model object.
    EXPECT_EQ(second.model.get(), first.model.get());
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.entryCount(), 1u);
}

TEST(ModelCache, HitAnswersAreBitIdenticalToColdCompile)
{
    QuerySpec query = spec("opencontrail", 3);
    bdd::ProbabilityScratch scratch;

    ModelCache cold(1);
    double coldValue = cold.acquire(query).model->availability(
        query.params, scratch);

    ModelCache cache(2);
    cache.acquire(query); // prime
    CacheLookup hit = cache.acquire(query);
    ASSERT_TRUE(hit.hit);
    double hitValue =
        hit.model->availability(query.params, scratch);
    // Same compiled structure, same evaluation path: the cached
    // answer must match a cold compile to full double precision.
    EXPECT_NEAR(hitValue, coldValue, 1e-15);
    EXPECT_EQ(hitValue, coldValue);
}

TEST(ModelCache, EvictsLeastRecentlyUsedInOrder)
{
    ModelCache cache(2);
    cache.acquire(spec("opencontrail", 1)); // A
    cache.acquire(spec("raft", 1));         // B
    // Touch A so B becomes the LRU victim.
    cache.acquire(spec("opencontrail", 1));
    cache.acquire(spec("fragile", 1)); // C evicts B

    std::vector<std::string> keys = cache.keysMostRecentFirst();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], spec("fragile", 1).modelKey());
    EXPECT_EQ(keys[1], spec("opencontrail", 1).modelKey());
    EXPECT_EQ(cache.evictions(), 1u);

    // B was evicted: asking again recompiles (a miss).
    EXPECT_FALSE(cache.acquire(spec("raft", 1)).hit);
}

TEST(ModelCache, CapacityAccountingStaysExact)
{
    ModelCache cache(2);
    EXPECT_EQ(cache.totalBddNodes(), 0u);
    CacheLookup a = cache.acquire(spec("opencontrail", 1));
    CacheLookup b = cache.acquire(spec("raft", 1));
    std::size_t both = a.model->bddNodeCount() +
                       b.model->bddNodeCount();
    EXPECT_EQ(cache.totalBddNodes(), both);

    // Evicting one entry subtracts exactly its footprint.
    CacheLookup c = cache.acquire(spec("fragile", 1));
    EXPECT_EQ(cache.entryCount(), 2u);
    EXPECT_EQ(cache.totalBddNodes(),
              b.model->bddNodeCount() + c.model->bddNodeCount());

    // Evicted-but-still-referenced models stay usable (shared_ptr).
    bdd::ProbabilityScratch scratch;
    EXPECT_GT(a.model->availability(QuerySpec{}.params, scratch),
              0.0);
}

TEST(ModelCache, ConcurrentSameKeyMissesCoalesceToOneCompile)
{
    ModelCache cache(4);
    constexpr int kThreads = 8;
    std::atomic<int> hits{0};
    std::vector<std::shared_ptr<const model::ExactPlaneModel>>
        models(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            CacheLookup lookup =
                cache.acquire(spec("opencontrail", 3));
            models[static_cast<std::size_t>(t)] = lookup.model;
            if (lookup.hit)
                hits.fetch_add(1);
        });
    for (std::thread &thread : threads)
        thread.join();

    // Exactly one thread compiled; everyone shares its model.
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(hits.load(), kThreads - 1);
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(models[static_cast<std::size_t>(t)].get(),
                  models[0].get());
    EXPECT_EQ(cache.entryCount(), 1u);
}

TEST(ModelCache, ConcurrentDistinctKeysAllLand)
{
    ModelCache cache(8);
    const char *catalogs[] = {"opencontrail", "raft", "fragile"};
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t)
        threads.emplace_back([&, t] {
            cache.acquire(
                spec(catalogs[t % 3],
                     static_cast<std::size_t>(1 + 2 * (t / 3))));
        });
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(cache.entryCount(), 6u);
    EXPECT_EQ(cache.misses(), 6u);
}

TEST(ModelCache, RejectsZeroCapacity)
{
    EXPECT_THROW(ModelCache cache(0), ModelError);
}

TEST(ModelCache, CompileBudgetAbortSurfacesAndDoesNotPoison)
{
    ModelCache cache(2);
    // A 16-live-node cap is below even this small model's variable
    // count, so the compile aborts almost immediately.
    cache.setCompileBudget(bdd::StepBudget{0.0, 16});
    QuerySpec query = spec("opencontrail", 3);
    try {
        cache.acquire(query);
        FAIL() << "expected BudgetExceeded";
    } catch (const bdd::BudgetExceeded &e) {
        EXPECT_EQ(e.budgetName(), "node-cap");
        EXPECT_GE(e.nodesAllocated(), 1u);
    }
    // The aborted compile must not leave a poisoned entry behind:
    // lifting the budget and asking again compiles cleanly.
    EXPECT_EQ(cache.entryCount(), 0u);
    cache.setCompileBudget(bdd::StepBudget{});
    CacheLookup retry = cache.acquire(query);
    EXPECT_FALSE(retry.hit);
    ASSERT_NE(retry.model, nullptr);
    bdd::ProbabilityScratch scratch;
    EXPECT_GT(retry.model->availability(query.params, scratch), 0.0);
    EXPECT_EQ(cache.entryCount(), 1u);
    EXPECT_TRUE(cache.acquire(query).hit);
}

TEST(ModelCache, ConcurrentBudgetAbortsAndRetriesStayConsistent)
{
    ModelCache cache(4);
    cache.setCompileBudget(bdd::StepBudget{0.0, 16});
    QuerySpec doomed = spec("opencontrail", 3);

    // Every acquire of the doomed key must observe the
    // BudgetExceeded — the thread that compiles and the coalesced
    // waiters that share its in-flight future alike.
    constexpr int kThreads = 4;
    constexpr int kRounds = 3;
    std::atomic<int> aborts{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < kRounds; ++i) {
                try {
                    cache.acquire(doomed);
                } catch (const bdd::BudgetExceeded &) {
                    aborts.fetch_add(1);
                }
            }
        });
    for (std::thread &thread : threads)
        thread.join();

    // Every attempt aborted and none left a cache entry behind.
    EXPECT_EQ(aborts.load(), kThreads * kRounds);
    EXPECT_EQ(cache.entryCount(), 0u);

    // The key is immediately usable once the budget is lifted.
    cache.setCompileBudget(bdd::StepBudget{});
    EXPECT_NE(cache.acquire(doomed).model, nullptr);
    EXPECT_EQ(cache.entryCount(), 1u);
}

} // anonymous namespace
