#include "server/protocol.hh"

#include <gtest/gtest.h>

#include "common/error.hh"

namespace
{

using namespace sdnav;
using namespace sdnav::server;

TEST(Protocol, DefaultsMatchThePaperConfiguration)
{
    Request request = parseRequest("{}", 16);
    ASSERT_EQ(request.kind, Request::Kind::Query);
    ASSERT_EQ(request.queries.size(), 1u);
    ASSERT_TRUE(request.queries[0].ok);
    const QuerySpec &spec = request.queries[0].spec;
    EXPECT_EQ(spec.catalog, "opencontrail");
    EXPECT_EQ(spec.topology, "large");
    EXPECT_EQ(spec.nodes, 3u);
    EXPECT_EQ(spec.policy, model::SupervisorPolicy::Required);
    EXPECT_EQ(spec.plane, fmea::Plane::ControlPlane);
    EXPECT_TRUE(request.id.isNull());
}

TEST(Protocol, ModelKeyIsCanonicalAndExcludesParams)
{
    Request a = parseRequest(
        R"({"catalog":"raft","nodes":5,"params":{"a":0.9}})", 16);
    Request b = parseRequest(
        R"({"nodes":5,"catalog":"raft","params":{"a":0.5}})", 16);
    ASSERT_TRUE(a.queries[0].ok);
    ASSERT_TRUE(b.queries[0].ok);
    // Same key despite different member order and different
    // parameters: params are evaluation-time, not compile-time.
    EXPECT_EQ(a.queries[0].spec.modelKey(),
              b.queries[0].spec.modelKey());
    EXPECT_EQ(a.queries[0].spec.modelKey(),
              "catalog=raft;topology=large;nodes=5;policy=required;"
              "plane=cp");
}

TEST(Protocol, UnknownMembersAreRejectedNotIgnored)
{
    Request request =
        parseRequest(R"({"id":7,"catalogue":"raft"})", 16);
    ASSERT_EQ(request.queries.size(), 1u);
    EXPECT_FALSE(request.queries[0].ok);
    EXPECT_NE(request.queries[0].error.find("catalogue"),
              std::string::npos);
    // The id still came through for the error reply.
    EXPECT_EQ(request.id.asNumber(), 7.0);
}

TEST(Protocol, ValidationFailuresKeepTheRequestId)
{
    Request request = parseRequest(
        R"({"id":"q1","nodes":2.5})", 16);
    EXPECT_FALSE(request.queries[0].ok);
    EXPECT_EQ(request.id.asString(), "q1");

    Request range = parseRequest(R"({"id":1,"nodes":64})", 16);
    EXPECT_FALSE(range.queries[0].ok);

    Request negative = parseRequest(R"({"id":1,"nodes":0})", 16);
    EXPECT_FALSE(negative.queries[0].ok);
}

TEST(Protocol, OutOfRangeParamsAreRejected)
{
    Request request =
        parseRequest(R"({"params":{"a":1.5}})", 16);
    EXPECT_FALSE(request.queries[0].ok);

    Request timings =
        parseRequest(R"({"timings":{"mtbf":-1}})", 16);
    EXPECT_FALSE(timings.queries[0].ok);
}

TEST(Protocol, TimingsDeriveAvailabilities)
{
    Request request = parseRequest(
        R"({"timings":{"mtbf":5000,"restart":0.1,)"
        R"("manual-restart":1.0}})",
        16);
    ASSERT_TRUE(request.queries[0].ok);
    const model::SwParams &params = request.queries[0].spec.params;
    EXPECT_NEAR(params.processAvailability, 5000.0 / 5000.1, 1e-12);
    EXPECT_NEAR(params.manualProcessAvailability, 5000.0 / 5001.0,
                1e-12);
}

TEST(Protocol, MalformedJsonThrows)
{
    EXPECT_THROW(parseRequest("{nope", 16), ModelError);
    EXPECT_THROW(parseRequest("[1,2,3]", 16), ModelError);
    EXPECT_THROW(parseRequest("42", 16), ModelError);
}

TEST(Protocol, CommandsParse)
{
    EXPECT_EQ(parseRequest(R"({"cmd":"ping"})", 16).kind,
              Request::Kind::Ping);
    EXPECT_EQ(parseRequest(R"({"cmd":"stats","id":1})", 16).kind,
              Request::Kind::Stats);
    EXPECT_EQ(parseRequest(R"({"cmd":"shutdown"})", 16).kind,
              Request::Kind::Shutdown);
    EXPECT_THROW(parseRequest(R"({"cmd":"reboot"})", 16),
                 ModelError);
    // A command with query members is malformed, not half-executed.
    EXPECT_THROW(parseRequest(R"({"cmd":"ping","nodes":3})", 16),
                 ModelError);
}

TEST(Protocol, BatchFailsPerItemNotWholesale)
{
    Request request = parseRequest(
        R"({"id":3,"queries":[{"catalog":"raft"},)"
        R"({"catalog":"nope"},{"nodes":1}]})",
        16);
    ASSERT_EQ(request.kind, Request::Kind::Batch);
    ASSERT_EQ(request.queries.size(), 3u);
    EXPECT_TRUE(request.queries[0].ok);
    EXPECT_FALSE(request.queries[1].ok);
    EXPECT_TRUE(request.queries[2].ok);
    EXPECT_NE(request.queries[1].error.find("nope"),
              std::string::npos);
}

TEST(Protocol, BatchLimitsEnforced)
{
    EXPECT_THROW(parseRequest(R"({"queries":[]})", 16), ModelError);
    EXPECT_THROW(parseRequest(R"({"queries":[{},{},{}]})", 2),
                 ModelError);
    // Batch items must not carry their own id.
    Request request =
        parseRequest(R"({"queries":[{"id":9}]})", 16);
    EXPECT_FALSE(request.queries[0].ok);
}

TEST(Protocol, ErrorReplyLineEchoesId)
{
    EXPECT_EQ(errorReplyLine(json::Value(3), "bad"),
              R"({"id":3,"ok":false,"error":"bad"})");
    EXPECT_EQ(errorReplyLine(json::Value{}, "bad"),
              R"({"ok":false,"error":"bad"})");
}

} // anonymous namespace
