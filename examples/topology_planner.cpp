/**
 * @file
 * Deployment planning scenario: the paper's "cost:resiliency tradeoff
 * before capital investment occurs".
 *
 * A provider is sizing an edge site. The planner enumerates candidate
 * deployments — reference topologies, rack counts, maintenance
 * contracts (SD / ND / NBD host restore), and cluster sizes — and
 * prints, for each candidate, the controller CP availability, the
 * host DP availability, and a simple cost proxy (racks + hosts), so
 * the knee of the cost/availability curve is visible.
 *
 * Run: ./examples/topology_planner
 */

#include <iostream>
#include <vector>

#include "common/textTable.hh"
#include "common/units.hh"
#include "fmea/openContrail.hh"
#include "model/swCentric.hh"
#include "topology/deployment.hh"

namespace
{

using namespace sdnav;
namespace model = sdnav::model;

struct MaintenanceTier
{
    const char *name;
    double mttrHours;
};

struct Candidate
{
    std::string label;
    topology::DeploymentTopology topo;
};

} // anonymous namespace

int
main()
{
    fmea::ControllerCatalog catalog = fmea::openContrail3();
    const double host_mtbf_hours = 5.0 * 365.0 * 24.0; // 5 years.
    const MaintenanceTier tiers[] = {
        {"SD", 4.0}, {"ND", 24.0}, {"NBD", 48.0}};

    std::vector<Candidate> candidates;
    candidates.push_back({"Small  (1 rack,  3 hosts)",
                          topology::smallTopology()});
    candidates.push_back({"Medium (2 racks, 3 hosts)",
                          topology::mediumTopology()});
    candidates.push_back({"Large  (3 racks, 12 hosts)",
                          topology::largeTopology()});
    candidates.push_back({"Large 5-node (5 racks, 20 hosts)",
                          topology::largeTopology(4, 5)});

    TextTable table;
    table.title("Edge-site deployment planning "
                "(OpenContrail, supervisor required — the realistic "
                "case)");
    table.header({"deployment", "maint.", "racks", "hosts",
                  "CP m/y", "DP m/y", "CP nines"});
    for (const Candidate &candidate : candidates) {
        model::SwAvailabilityModel swmodel(
            catalog, candidate.topo,
            model::SupervisorPolicy::Required);
        for (const MaintenanceTier &tier : tiers) {
            model::SwParams params;
            params.hostAvailability = availabilityFromMtbfMttr(
                host_mtbf_hours, tier.mttrHours);
            double cp = swmodel.controlPlaneAvailability(params);
            double dp = swmodel.hostDataPlaneAvailability(params);
            table.addRow(
                {candidate.label, tier.name,
                 std::to_string(candidate.topo.rackCount()),
                 std::to_string(candidate.topo.hostCount()),
                 formatFixed(
                     availabilityToDowntimeMinutesPerYear(cp), 2),
                 formatFixed(
                     availabilityToDowntimeMinutesPerYear(dp), 1),
                 formatFixed(availabilityNines(cp), 2)});
        }
    }
    std::cout << table.str() << "\n";

    std::cout
        << "Planning observations (all consistent with the paper):\n"
           "  1. With Same-Day maintenance, Small already delivers "
           "~5 nines of CP; the third\n     rack buys ~5 minutes/year "
           "— worthwhile only if rare-but-long rack outages are\n"
           "     unacceptable (many-site providers).\n"
           "  2. Slow maintenance (NBD) erodes the Small topology "
           "badly — co-located quorum\n     members wait days for "
           "host repairs — while Large degrades gracefully.\n"
           "  3. The host DP barely moves across ALL of these "
           "choices: the vRouter processes\n     cap it. Spend on "
           "process resiliency, not racks, to improve the DP.\n";
    return 0;
}
