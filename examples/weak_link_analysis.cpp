/**
 * @file
 * Weak-link hunting: "identifying these process weak links allows
 * service provider operations to develop automation to reduce
 * downtime" (paper conclusions).
 *
 * For a chosen deployment this example:
 * 1. ranks every component by criticality importance (exact BDD
 *    model) for both planes,
 * 2. runs the parameter-level sensitivity analysis (which input
 *    availability buys the most downtime when improved 10x), and
 * 3. evaluates two concrete remediations the rankings suggest —
 *    putting redis/Database under automatic restart, and removing
 *    the vRouter supervisor requirement — quantifying each in
 *    minutes/year.
 *
 * Run: ./examples/weak_link_analysis
 */

#include <iostream>

#include "analysis/sensitivity.hh"
#include "analysis/summary.hh"
#include "common/textTable.hh"
#include "common/units.hh"
#include "fmea/openContrail.hh"
#include "model/exactModel.hh"
#include "model/swCentric.hh"

namespace
{

using namespace sdnav;
namespace model = sdnav::model;

/** OpenContrail with every Database/redis process auto-restarted. */
fmea::ControllerCatalog
withAutomatedRestarts()
{
    fmea::ControllerCatalog base = fmea::openContrail3();
    fmea::ControllerCatalog improved(
        "OpenContrail 3.x + restart automation");
    for (const fmea::RoleSpec &role : base.roles()) {
        fmea::RoleSpec copy = role;
        for (fmea::ProcessSpec &proc : copy.processes)
            proc.restart = fmea::RestartMode::Auto;
        improved.addRole(std::move(copy));
    }
    for (const fmea::HostProcessSpec &proc : base.hostProcesses())
        improved.addHostProcess(proc);
    improved.validate();
    return improved;
}

void
printTopCritical(const rbd::RbdSystem &system, const std::string &title)
{
    std::cout << title << "\n";
    auto ranking = system.rankImportance();
    for (std::size_t i = 0; i < 5 && i < ranking.size(); ++i) {
        std::cout << "  " << i + 1 << ". " << ranking[i].name
                  << "  (criticality "
                  << formatFixed(ranking[i].criticality, 4) << ")\n";
    }
    std::cout << "\n";
}

} // anonymous namespace

int
main()
{
    fmea::ControllerCatalog catalog = fmea::openContrail3();
    auto topo = topology::largeTopology();
    model::SwParams params;
    auto policy = model::SupervisorPolicy::Required;

    // --- 1. Component-level criticality rankings --------------------
    printTopCritical(
        model::buildExactSystem(catalog, topo, policy, params,
                                fmea::Plane::ControlPlane),
        "Top control-plane weak links (2L):");
    printTopCritical(
        model::buildExactSystem(catalog, topo, policy, params,
                                fmea::Plane::DataPlane),
        "Top data-plane weak links (2L):");

    // --- 2. Parameter-level sensitivity ------------------------------
    std::cout << analysis::sensitivityTable(
                     "CP sensitivity: m/y saved by a 10x downtime "
                     "improvement of each parameter",
                     analysis::swSensitivity(
                         catalog, topo, policy, params,
                         fmea::Plane::ControlPlane))
                     .str()
              << "\n";
    std::cout << analysis::sensitivityTable(
                     "DP sensitivity",
                     analysis::swSensitivity(
                         catalog, topo, policy, params,
                         fmea::Plane::DataPlane))
                     .str()
              << "\n";

    // --- 3. Concrete remediations ------------------------------------
    model::SwAvailabilityModel before(catalog, topo, policy);
    fmea::ControllerCatalog automated = withAutomatedRestarts();
    model::SwAvailabilityModel automated_model(automated, topo, policy);
    model::SwAvailabilityModel no_sup_requirement(
        catalog, topo, model::SupervisorPolicy::NotRequired);

    auto dt = [](double a) {
        return availabilityToDowntimeMinutesPerYear(a);
    };
    double cp0 = before.controlPlaneAvailability(params);
    double dp0 = before.hostDataPlaneAvailability(params);
    double cp1 = automated_model.controlPlaneAvailability(params);
    double dp2 = no_sup_requirement.hostDataPlaneAvailability(params);

    std::cout << "Remediation impact (Large topology):\n";
    std::cout << "  baseline (2L):                       CP "
              << formatFixed(dt(cp0), 2) << " m/y, DP "
              << formatFixed(dt(dp0), 1) << " m/y\n";
    std::cout << "  automate Database/redis restarts:    CP "
              << formatFixed(dt(cp1), 2) << " m/y  (saves "
              << formatFixed(dt(cp0) - dt(cp1), 2) << ")\n";
    std::cout << "  hitless supervisor handling (1L DP): DP "
              << formatFixed(dt(dp2), 1) << " m/y  (saves "
              << formatFixed(dt(dp0) - dt(dp2), 1) << ")\n";
    std::cout << "\nBoth remediations target exactly what the "
                 "rankings flag: manual-restart quorum\nprocesses for "
                 "the CP, and the vRouter supervisor for the DP.\n";
    return 0;
}
