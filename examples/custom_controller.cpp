/**
 * @file
 * Extensibility walkthrough: analyze a *different* SDN controller by
 * writing its catalog — the paper's claim that "other implementations
 * can be analyzed simply by populating these two tables".
 *
 * The example invents a small etcd-backed controller ("Meridian"):
 * - a Gateway role (stateless API frontends, any one suffices),
 * - a Brain role (scheduler + flow-compiler, where flow-compiler is
 *   needed by the data plane, plus an etcd member requiring strict
 *   majority and manual restart),
 * - one per-host forwarder process.
 *
 * It prints the derived Tables I-III analogues, computes both planes'
 * availability on the three reference topologies, and contrasts the
 * result with OpenContrail on the same hardware.
 *
 * Run: ./examples/custom_controller
 */

#include <iostream>

#include "analysis/summary.hh"
#include "fmea/openContrail.hh"
#include "fmea/report.hh"
#include "model/swCentric.hh"
#include "topology/deployment.hh"

namespace
{

sdnav::fmea::ControllerCatalog
meridianController()
{
    using namespace sdnav::fmea;
    ControllerCatalog catalog("Meridian (example custom controller)");

    RoleSpec gateway;
    gateway.name = "Gateway";
    gateway.tag = 'W';
    gateway.processes = {
        {"api-frontend", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "",
         "Northbound REST termination; stateless."},
        {"auth-proxy", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "",
         "Token validation sidecar."},
    };
    catalog.addRole(std::move(gateway));

    RoleSpec brain;
    brain.name = "Brain";
    brain.tag = 'B';
    brain.processes = {
        {"scheduler", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "",
         "Places virtual networks onto hosts."},
        // The flow-compiler and its cache must be co-located for the
        // data plane (a {block} like the paper's control+dns+named).
        {"flow-compiler", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::AnyOne, "flowpath", "",
         "Compiles policy into per-host flow tables."},
        {"flow-cache", RestartMode::Auto, QuorumClass::None,
         QuorumClass::AnyOne, "flowpath", "",
         "Hot cache the compiler serves hosts from."},
        {"etcd", RestartMode::Manual, QuorumClass::Majority,
         QuorumClass::None, "", "",
         "Replicated store; majority required, manual restart."},
    };
    catalog.addRole(std::move(brain));

    catalog.addHostProcess(
        {"forwarder", RestartMode::Auto, true,
         "Per-host datapath; its failure downs the host DP."});
    catalog.validate();
    return catalog;
}

} // anonymous namespace

int
main()
{
    using namespace sdnav;
    namespace model = sdnav::model;

    fmea::ControllerCatalog meridian = meridianController();

    // The framework derives the paper's tables from the declaration.
    std::cout << fmea::nodeProcessTable(meridian).str() << "\n";
    std::cout << fmea::restartModeTable(meridian).str() << "\n";
    std::cout << fmea::quorumTypeTable(meridian).str() << "\n";

    model::SwParams params; // Paper default process/platform numbers.
    std::size_t roles = meridian.roles().size();

    std::vector<analysis::SummaryEntry> results;
    for (auto kind : {topology::ReferenceKind::Small,
                      topology::ReferenceKind::Medium,
                      topology::ReferenceKind::Large}) {
        auto topo = topology::referenceTopology(kind, roles);
        model::SwAvailabilityModel m(
            meridian, topo, model::SupervisorPolicy::Required);
        results.push_back({topology::referenceKindName(kind) + " CP",
                           m.controlPlaneAvailability(params)});
        results.push_back({topology::referenceKindName(kind) + " DP",
                           m.hostDataPlaneAvailability(params)});
    }
    std::cout << analysis::availabilitySummary(
                     "Meridian availability, supervisor required",
                     results)
                     .str()
              << "\n";

    // Head-to-head with OpenContrail on Large hardware.
    fmea::ControllerCatalog contrail = fmea::openContrail3();
    model::SwAvailabilityModel contrail_model(
        contrail, topology::largeTopology(contrail.roles().size()),
        model::SupervisorPolicy::Required);
    model::SwAvailabilityModel meridian_model(
        meridian, topology::largeTopology(roles),
        model::SupervisorPolicy::Required);
    std::cout << analysis::availabilitySummary(
                     "Large topology head-to-head (supervisor "
                     "required)",
                     {{"OpenContrail CP",
                       contrail_model.controlPlaneAvailability(params)},
                      {"Meridian CP",
                       meridian_model.controlPlaneAvailability(params)},
                      {"OpenContrail DP",
                       contrail_model.hostDataPlaneAvailability(
                           params)},
                      {"Meridian DP",
                       meridian_model.hostDataPlaneAvailability(
                           params)}})
                     .str();
    std::cout << "\nMeridian's single forwarder process (K=1) beats "
                 "OpenContrail's two vRouter\nprocesses on DP "
                 "availability; its single etcd ensemble resembles "
                 "the Database\nrole and sets the CP floor. Declaring "
                 "the catalog is the entire port.\n";
    return 0;
}
