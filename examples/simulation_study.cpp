/**
 * @file
 * Simulation study: validate the analytic models by discrete-event
 * simulation (the paper's stated future work) and probe a dynamic
 * the closed forms cannot express — the vRouter agents' control-node
 * rediscovery transient.
 *
 * The study uses failure rates ~50x worse than the paper defaults so
 * a laptop-scale run resolves tight confidence intervals; the
 * *relationships* (simulation brackets analytics, transient cost
 * scales with rediscovery delay) are what carry over.
 *
 * Run: ./examples/simulation_study
 */

#include <iostream>

#include "common/textTable.hh"
#include "common/units.hh"
#include "fmea/openContrail.hh"
#include "model/swCentric.hh"
#include "sim/controllerSim.hh"
#include "sim/replication.hh"

namespace
{

using namespace sdnav;
namespace model = sdnav::model;
using sim::ControllerSimConfig;
using sim::ReplicatedSimConfig;

ControllerSimConfig
studyConfig()
{
    ControllerSimConfig config;
    config.process = {100.0, 0.5, 2.0}; // F, R, R_S in hours.
    config.supervisorMtbfHours = 100.0;
    config.maintenanceIntervalHours = 10.0;
    config.vmMtbfHours = 500.0;
    config.hostMtbfHours = 1000.0;
    config.rackMtbfHours = 5000.0;
    config.vmAvailability = 0.995;
    config.hostAvailability = 0.998;
    config.rackAvailability = 0.9995;
    config.monitoredHosts = 30;
    config.horizonHours = 5.0e4; // Per replication; 8 reps ~ 45 years.
    config.batches = 20;
    return config;
}

ReplicatedSimConfig
studyReplication()
{
    ReplicatedSimConfig rep;
    rep.replications = 8;
    rep.threads = 0; // One worker per hardware thread.
    rep.baseSeed = 20260705;
    return rep;
}

} // anonymous namespace

int
main()
{
    fmea::ControllerCatalog catalog = fmea::openContrail3();
    auto small = topology::smallTopology();
    ControllerSimConfig config = studyConfig();
    ReplicatedSimConfig replication = studyReplication();
    model::SwParams params = sim::staticParamsFor(config);

    std::cout << "Simulated system: OpenContrail on the Small "
                 "topology, 30 monitored compute hosts,\n"
              << replication.replications
              << " independent replications x "
              << formatGeneral(config.horizonHours, 3)
              << " simulated hours (~45 years total),\nrun in "
                 "parallel and pooled. CIs come from the "
                 "across-replication variance.\n\n";

    // --- 1. Analytic vs simulated, both policies ---------------------
    TextTable table;
    table.header({"policy", "plane", "analytic", "pooled", "CI95 +-",
                  "within SE", "across SE"});
    for (auto policy : {model::SupervisorPolicy::NotRequired,
                        model::SupervisorPolicy::Required}) {
        ControllerSimConfig run = config;
        run.modelRediscovery = false; // Static comparison first.
        auto result = sim::simulateControllerReplicated(
            catalog, small, policy, run, replication);
        model::SwAvailabilityModel analytic(catalog, small, policy);
        std::string tag(1, model::supervisorPolicyTag(policy));
        table.addRow(
            {tag + "S", "CP",
             formatFixed(analytic.controlPlaneAvailability(params), 5),
             formatFixed(result.cpAvailability.mean, 5),
             formatFixed(result.cpAvailability.halfWidth95(), 5),
             formatGeneral(result.cpAvailability.withinStandardError,
                           3),
             formatGeneral(result.cpAvailability.acrossStandardError,
                           3)});
        table.addRow(
            {tag + "S", "DP",
             formatFixed(analytic.hostDataPlaneAvailability(params),
                         5),
             formatFixed(result.dpAvailability.mean, 5),
             formatFixed(result.dpAvailability.halfWidth95(), 5),
             formatGeneral(result.dpAvailability.withinStandardError,
                           3),
             formatGeneral(result.dpAvailability.acrossStandardError,
                           3)});
    }
    std::cout << table.str();
    std::cout << "(Scenario 1 simulates slightly below the static "
                 "model: processes failing while\ntheir supervisor "
                 "awaits the maintenance window need slow manual "
                 "restarts — a real\neffect the static model folds "
                 "into A* ~= A.)\n\n";

    // --- 2. The rediscovery transient --------------------------------
    std::cout << "Rediscovery transient (scenario 1, connection model "
                 "on):\n\n";
    TextTable transient;
    transient.header({"rediscovery delay", "DP availability",
                      "share of host-hours lost to rediscovery"});
    for (double minutes : {1.0, 10.0, 30.0}) {
        ControllerSimConfig run = config;
        run.rediscoveryDelayHours = minutes / 60.0;
        auto result = sim::simulateControllerReplicated(
            catalog, small, model::SupervisorPolicy::NotRequired, run,
            replication);
        transient.addRow(
            {formatGeneral(minutes, 3) + " min",
             formatFixed(result.dpAvailability.mean, 5),
             formatFixed(result.rediscoveryDowntimeFraction, 7)});
    }
    std::cout << transient.str();
    std::cout << "\nAt ~1 minute (the paper's assumption) the "
                 "transient is noise; at tens of minutes\nit becomes "
                 "a measurable DP tax. The assumption in section III "
                 "is validated.\n";

    // --- 3. Outage texture -------------------------------------------
    auto result = sim::simulateControllerReplicated(
        catalog, small, model::SupervisorPolicy::Required, config,
        replication);
    std::cout << "\nCP outage texture over the run (scenario 2): "
              << result.cpOutages << " outages, mean "
              << formatFixed(result.cpMeanOutageHours, 2)
              << " h, max "
              << formatFixed(result.cpMaxOutageHours, 2)
              << " h — averages hide rare long events, the paper's "
                 "point\nabout single-rack sites.\n";
    return 0;
}
