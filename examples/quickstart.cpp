/**
 * @file
 * Quickstart: model OpenContrail 3.x availability in ~40 lines.
 *
 * Builds the paper's reference configuration (3-node controller,
 * Small and Large hardware topologies), computes control-plane and
 * per-host data-plane availability under both supervisor policies,
 * and prints the results in availability and minutes-per-year form.
 *
 * Run: ./examples/quickstart
 */

#include <iostream>

#include "analysis/summary.hh"
#include "fmea/openContrail.hh"
#include "model/swCentric.hh"
#include "topology/deployment.hh"

int
main()
{
    using namespace sdnav;
    namespace model = sdnav::model;

    // 1. The controller software catalog: which processes exist, how
    //    they restart, and what each plane requires of them. This is
    //    the in-code form of the paper's Tables I-III.
    fmea::ControllerCatalog catalog = fmea::openContrail3();

    // 2. A hardware deployment topology (paper Fig. 2).
    topology::DeploymentTopology small = topology::smallTopology();
    topology::DeploymentTopology large = topology::largeTopology();

    // 3. Availability parameters. Defaults are the paper's values:
    //    A = 0.99998, A_S = 0.9998, A_V = 0.99995, A_H = 0.9999,
    //    A_R = 0.99999. Everything is overridable.
    model::SwParams params;

    // 4. Evaluate. One model object per (catalog, topology, policy);
    //    evaluation is cheap, so sweeps reuse the model.
    std::vector<analysis::SummaryEntry> results;
    for (const auto *topo : {&small, &large}) {
        for (auto policy : {model::SupervisorPolicy::NotRequired,
                            model::SupervisorPolicy::Required}) {
            model::SwAvailabilityModel m(catalog, *topo, policy);
            std::string tag =
                std::string(1, model::supervisorPolicyTag(policy)) +
                (topo == &small ? "S" : "L");
            results.push_back(
                {tag + " control plane",
                 m.controlPlaneAvailability(params)});
            results.push_back(
                {tag + " host data plane",
                 m.hostDataPlaneAvailability(params)});
        }
    }

    std::cout << analysis::availabilitySummary(
                     "OpenContrail 3.x availability (paper defaults)",
                     results)
                     .str();
    std::cout << "\nKey takeaway (the paper's): the distributed "
                 "control plane reaches ~5-6 nines,\nwhile the per-host "
                 "data plane is capped near 3.5-4 nines by the vRouter "
                 "processes\n— per-host single points of failure.\n";
    return 0;
}
