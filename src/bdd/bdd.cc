#include "bdd/bdd.hh"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/error.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"

namespace sdnav::bdd
{

BddManager::BddManager()
{
    // Reserve slots 0 and 1 for the terminals. Their contents are
    // never dereferenced; var is a sentinel beyond any real variable.
    nodes_.push_back({std::numeric_limits<unsigned>::max(), 0, 0, 0});
    nodes_.push_back({std::numeric_limits<unsigned>::max(), 1, 1, 0});
    ite_cache_.assign(kInitialIteCache, IteEntry{});
}

std::size_t
BddManager::hashChildren(NodeRef low, NodeRef high)
{
    std::uint64_t h = low;
    h = h * 0x9e3779b97f4a7c15ULL + high;
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
}

unsigned
BddManager::topVar(NodeRef f) const
{
    return nodes_[f].var;
}

void
BddManager::ensureVariable(unsigned index)
{
    if (index < variable_count_)
        return;
    // New variables enter at the bottom level, so an earlier
    // reorderSifting() pass keeps its permutation intact.
    for (unsigned v = variable_count_; v <= index; ++v) {
        subtables_.emplace_back();
        level_of_var_.push_back(v);
        var_at_level_.push_back(v);
    }
    variable_count_ = index + 1;
}

void
BddManager::rehash(SubTable &table)
{
    std::vector<NodeRef> old = std::move(table.buckets);
    table.buckets.assign(old.size() * 2, 0);
    std::size_t mask = table.buckets.size() - 1;
    for (NodeRef head : old) {
        NodeRef p = head;
        while (p != 0) {
            NodeRef next = nodes_[p].next;
            std::size_t bucket =
                hashChildren(nodes_[p].low, nodes_[p].high) & mask;
            nodes_[p].next = table.buckets[bucket];
            table.buckets[bucket] = p;
            p = next;
        }
    }
}

void
BddManager::setStepBudget(const StepBudget &budget)
{
    budget_ = budget;
    budget_armed_ = budget.limited();
    budget_start_ = std::chrono::steady_clock::now();
    budget_tick_ = 0;
}

void
BddManager::clearStepBudget()
{
    budget_ = StepBudget{};
    budget_armed_ = false;
}

void
BddManager::throwBudgetExceeded(const char *budgetName) const
{
    double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - budget_start_)
            .count();
    throw BudgetExceeded(budgetName, liveNodes(), gc_runs_,
                         elapsed_ms);
}

void
BddManager::checkWallBudget()
{
    if (budget_.wallMs <= 0.0)
        return;
    double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - budget_start_)
            .count();
    if (elapsed_ms > budget_.wallMs)
        throwBudgetExceeded("wall-deadline");
}

NodeRef
BddManager::makeNode(unsigned var, NodeRef low, NodeRef high)
{
    if (low == high)
        return low; // Reduction rule: redundant test.
    // The node cap is the cheap budget check (two compares on the
    // sole allocation path): a runaway build aborts as soon as it
    // crosses the cap, long before the wall deadline would notice.
    if (budget_armed_ && budget_.nodeCap > 0 &&
        liveNodes() >= budget_.nodeCap)
        throwBudgetExceeded("node-cap");
    SubTable &table = subtables_[var];
    if (table.buckets.empty())
        table.buckets.assign(kInitialBuckets, 0);
    std::size_t bucket =
        hashChildren(low, high) & (table.buckets.size() - 1);
    for (NodeRef p = table.buckets[bucket]; p != 0; p = nodes_[p].next) {
        if (nodes_[p].low == low && nodes_[p].high == high) {
            ++unique_hits_;
            return p;
        }
    }
    ++unique_misses_;
    NodeRef ref;
    if (free_head_ != 0) {
        ref = free_head_;
        free_head_ = nodes_[ref].next;
        --free_count_;
        nodes_[ref] = {var, low, high, table.buckets[bucket]};
    } else {
        require(nodes_.size() < std::numeric_limits<NodeRef>::max(),
                "BDD node capacity exhausted");
        ref = static_cast<NodeRef>(nodes_.size());
        nodes_.push_back({var, low, high, table.buckets[bucket]});
    }
    table.buckets[bucket] = ref;
    ++table.count;
    if (sifting_) {
        if (reorder_refs_.size() <= ref)
            reorder_refs_.resize(ref + 1, 0);
        reorder_refs_[ref] = 0;
        ++reorder_refs_[low];
        ++reorder_refs_[high];
    }
    if (liveNodes() > peak_live_)
        peak_live_ = liveNodes();
    if (table.count * 4 > table.buckets.size() * 3)
        rehash(table);
    return ref;
}

void
BddManager::unlink(NodeRef n)
{
    Node &node = nodes_[n];
    SubTable &table = subtables_[node.var];
    std::size_t bucket =
        hashChildren(node.low, node.high) & (table.buckets.size() - 1);
    NodeRef *link = &table.buckets[bucket];
    while (*link != n) {
        require(*link != 0,
                "BDD unique table corrupt: node missing from bucket");
        link = &nodes_[*link].next;
    }
    *link = node.next;
    --table.count;
}

void
BddManager::insertUnique(NodeRef n)
{
    Node &node = nodes_[n];
    SubTable &table = subtables_[node.var];
    if (table.buckets.empty())
        table.buckets.assign(kInitialBuckets, 0);
    std::size_t bucket =
        hashChildren(node.low, node.high) & (table.buckets.size() - 1);
    for (NodeRef p = table.buckets[bucket]; p != 0; p = nodes_[p].next) {
        require(nodes_[p].low != node.low ||
                    nodes_[p].high != node.high,
                "BDD unique table corrupt: duplicate node insert");
    }
    node.next = table.buckets[bucket];
    table.buckets[bucket] = n;
    ++table.count;
    if (table.count * 4 > table.buckets.size() * 3)
        rehash(table);
}

void
BddManager::freeNode(NodeRef n)
{
    nodes_[n].next = free_head_;
    free_head_ = n;
    ++free_count_;
}

NodeRef
BddManager::var(unsigned index)
{
    ensureVariable(index);
    return makeNode(index, falseNode, trueNode);
}

NodeRef
BddManager::nvar(unsigned index)
{
    ensureVariable(index);
    return makeNode(index, trueNode, falseNode);
}

bool
BddManager::iteShortcut(NodeRef f, NodeRef g, NodeRef h, NodeRef &out)
{
    // Terminal cases.
    if (f == trueNode) {
        out = g;
        return true;
    }
    if (f == falseNode) {
        out = h;
        return true;
    }
    if (g == h) {
        out = g;
        return true;
    }
    if (g == trueNode && h == falseNode) {
        out = f;
        return true;
    }
    std::uint64_t key = f;
    key = key * 0x9e3779b97f4a7c15ULL + g;
    key = key * 0x9e3779b97f4a7c15ULL + h;
    key ^= key >> 32;
    const IteEntry &entry =
        ite_cache_[static_cast<std::size_t>(key) &
                   (ite_cache_.size() - 1)];
    if (entry.f == f && entry.g == g && entry.h == h) {
        ++ite_cache_hits_;
        out = entry.result;
        return true;
    }
    ++ite_cache_misses_;
    return false;
}

void
BddManager::growIteCache()
{
    std::size_t size = ite_cache_.size();
    if (size >= kMaxIteCache)
        return;
    while (size < nodes_.size() && size < kMaxIteCache)
        size *= 2;
    // Growing discards the entries; the cache is lossy by design, so
    // a dropped entry only costs a recomputation that cannot create
    // new nodes (everything it would build is already hash-consed).
    ite_cache_.assign(size, IteEntry{});
}

void
BddManager::clearIteCache()
{
    std::fill(ite_cache_.begin(), ite_cache_.end(), IteEntry{});
}

NodeRef
BddManager::ite(NodeRef f, NodeRef g, NodeRef h)
{
    if (budget_armed_)
        checkWallBudget();
    if (nodes_.size() > ite_cache_.size())
        growIteCache();

    NodeRef result = falseNode;
    if (iteShortcut(f, g, h, result))
        return result;

    // Explicit frame stack instead of recursion: deep chain diagrams
    // (one node per variable) would otherwise overflow the call
    // stack. `result` always carries the value of the most recently
    // completed subproblem; phase 1 consumes it as the high branch,
    // phase 2 as the low branch.
    auto cofactor = [this](NodeRef x, unsigned v,
                           bool positive) -> NodeRef {
        if (isTerminal(x) || nodes_[x].var != v)
            return x;
        return positive ? nodes_[x].high : nodes_[x].low;
    };

    std::vector<IteFrame> &frames = ite_frames_;
    frames.clear();
    frames.push_back({f, g, h, 0, falseNode, 0});
    while (!frames.empty()) {
        // Wall-deadline safe point: frequent enough that one apply
        // cannot overshoot the budget by more than ~a thousand frame
        // steps, rare enough that the clock read stays off the hot
        // path.
        if (budget_armed_ &&
            ++budget_tick_ >= kBudgetCheckInterval) {
            budget_tick_ = 0;
            checkWallBudget();
        }
        IteFrame &frame = frames.back();
        switch (frame.phase) {
          case 0: {
            // Shannon expansion around the top (lowest-level) var.
            unsigned v = topVar(frame.f);
            unsigned level = level_of_var_[v];
            if (!isTerminal(frame.g) &&
                level_of_var_[topVar(frame.g)] < level) {
                v = topVar(frame.g);
                level = level_of_var_[v];
            }
            if (!isTerminal(frame.h) &&
                level_of_var_[topVar(frame.h)] < level) {
                v = topVar(frame.h);
            }
            frame.v = v;
            frame.phase = 1;
            NodeRef f1 = cofactor(frame.f, v, true);
            NodeRef g1 = cofactor(frame.g, v, true);
            NodeRef h1 = cofactor(frame.h, v, true);
            if (!iteShortcut(f1, g1, h1, result))
                frames.push_back({f1, g1, h1, 0, falseNode, 0});
            break;
          }
          case 1: {
            frame.high = result;
            frame.phase = 2;
            NodeRef f0 = cofactor(frame.f, frame.v, false);
            NodeRef g0 = cofactor(frame.g, frame.v, false);
            NodeRef h0 = cofactor(frame.h, frame.v, false);
            if (!iteShortcut(f0, g0, h0, result))
                frames.push_back({f0, g0, h0, 0, falseNode, 0});
            break;
          }
          default: {
            result = makeNode(frame.v, result, frame.high);
            // One top-level apply can grow the node table far past
            // the cache it entered with; a cache much smaller than
            // the table turns the lossy memoization into exponential
            // recomputation. Growing mid-operation discards entries,
            // but doubling bounds that to a handful of flushes.
            if (nodes_.size() > ite_cache_.size())
                growIteCache();
            std::uint64_t key = frame.f;
            key = key * 0x9e3779b97f4a7c15ULL + frame.g;
            key = key * 0x9e3779b97f4a7c15ULL + frame.h;
            key ^= key >> 32;
            ite_cache_[static_cast<std::size_t>(key) &
                       (ite_cache_.size() - 1)] = {frame.f, frame.g,
                                                   frame.h, result};
            frames.pop_back();
            break;
          }
        }
    }
    return result;
}

NodeRef
BddManager::notOp(NodeRef f)
{
    return ite(f, falseNode, trueNode);
}

NodeRef
BddManager::andOp(NodeRef f, NodeRef g)
{
    return ite(f, g, falseNode);
}

NodeRef
BddManager::orOp(NodeRef f, NodeRef g)
{
    return ite(f, trueNode, g);
}

NodeRef
BddManager::xorOp(NodeRef f, NodeRef g)
{
    return ite(f, notOp(g), g);
}

NodeRef
BddManager::andAll(std::span<const NodeRef> fs)
{
    NodeRef acc = trueNode;
    for (NodeRef f : fs)
        acc = andOp(acc, f);
    return acc;
}

NodeRef
BddManager::orAll(std::span<const NodeRef> fs)
{
    NodeRef acc = falseNode;
    for (NodeRef f : fs)
        acc = orOp(acc, f);
    return acc;
}

NodeRef
BddManager::atLeast(std::span<const NodeRef> fs, unsigned m)
{
    if (m == 0)
        return trueNode;
    if (m > fs.size())
        return falseNode;
    // reach[j] = "at least j of the functions seen so far are true".
    // Process one function at a time:
    //   reach'[j] = f ? reach[j-1] : reach[j]
    // keeping only counts up to m.
    std::vector<NodeRef> reach(m + 1, falseNode);
    reach[0] = trueNode;
    for (NodeRef f : fs) {
        for (unsigned j = m; j >= 1; --j)
            reach[j] = ite(f, reach[j - 1], reach[j]);
    }
    return reach[m];
}

NodeRef
BddManager::restrict(NodeRef f, unsigned index, bool value)
{
    RestrictScratch scratch;
    return restrict(f, index, value, scratch);
}

NodeRef
BddManager::restrict(NodeRef f, unsigned index, bool value,
                     RestrictScratch &scratch)
{
    if (isTerminal(f) || index >= variable_count_)
        return f;

    // Dense memo over the pre-existing arena (post-order, explicit
    // stack). Nodes makeNode() creates below are results only, never
    // memo keys: a restricted subgraph is built strictly from f's
    // live subgraph, which cannot overlap freshly allocated slots.
    const std::size_t domain = nodes_.size();
    const unsigned cut_level = level_of_var_[index];
    std::vector<NodeRef> &result = scratch.result_;
    auto &known = scratch.known_;
    std::vector<NodeRef> &stack = scratch.stack_;
    result.assign(domain, falseNode);
    known.assign(domain, 0);
    result[trueNode] = trueNode;
    known[falseNode] = 1;
    known[trueNode] = 1;
    stack.clear();
    stack.push_back(f);
    while (!stack.empty()) {
        NodeRef cur = stack.back();
        if (known[cur]) {
            stack.pop_back();
            continue;
        }
        // Copy the node: makeNode below may reallocate nodes_ and
        // would invalidate a reference into it.
        Node node = nodes_[cur];
        if (level_of_var_[node.var] > cut_level) {
            // The restricted variable cannot appear below (ordered).
            result[cur] = cur;
            known[cur] = 1;
            stack.pop_back();
        } else if (node.var == index) {
            result[cur] = value ? node.high : node.low;
            known[cur] = 1;
            stack.pop_back();
        } else if (known[node.low] && known[node.high]) {
            result[cur] = makeNode(node.var, result[node.low],
                                   result[node.high]);
            known[cur] = 1;
            stack.pop_back();
        } else {
            if (!known[node.high])
                stack.push_back(node.high);
            if (!known[node.low])
                stack.push_back(node.low);
        }
    }
    return result[f];
}

double
BddManager::probability(NodeRef f, std::span<const double> probs) const
{
    // The scratch overload stays span-free: it is the sweep hot path
    // (thousands of evaluations per chunk), and the per-chunk sweep
    // spans already bound it on the timeline.
    obs::TraceSpan trace_span("bdd.probability");
    ProbabilityScratch scratch;
    return probability(f, probs, scratch);
}

double
BddManager::probability(NodeRef f, std::span<const double> probs,
                        ProbabilityScratch &scratch) const
{
    {
        static obs::Counter &evals =
            obs::Registry::global().counter("bdd.prob_evals");
        static obs::Counter &reuses =
            obs::Registry::global().counter("bdd.scratch_reuses");
        evals.add();
        if (scratch.value_.capacity() >= nodes_.size() &&
            !scratch.value_.empty()) {
            ++scratch.reuses_;
            reuses.add();
        }
    }

    // Dense memo keyed by NodeRef (refs index nodes_ directly). The
    // assign() calls reuse the scratch's capacity, so after the first
    // evaluation at a given manager size this allocates nothing.
    auto &value = scratch.value_;
    auto &known = scratch.known_;
    std::vector<NodeRef> &stack = scratch.stack_;
    value.assign(nodes_.size(), 0.0);
    known.assign(nodes_.size(), 0);
    value[trueNode] = 1.0;
    known[falseNode] = 1;
    known[trueNode] = 1;

    // Explicit stack to avoid deep recursion on long chains.
    stack.clear();
    stack.push_back(f);
    while (!stack.empty()) {
        NodeRef cur = stack.back();
        if (known[cur]) {
            stack.pop_back();
            continue;
        }
        const Node &node = nodes_[cur];
        require(node.var < probs.size(),
                "probability(): probs does not cover all BDD variables");
        if (known[node.low] && known[node.high]) {
            double p = probs[node.var];
            value[cur] = p * value[node.high] +
                         (1.0 - p) * value[node.low];
            known[cur] = 1;
            stack.pop_back();
        } else {
            if (!known[node.high])
                stack.push_back(node.high);
            if (!known[node.low])
                stack.push_back(node.low);
        }
    }
    return value[f];
}

bool
BddManager::evaluate(NodeRef f, const std::vector<bool> &assignment) const
{
    while (!isTerminal(f)) {
        const Node &node = nodes_[f];
        require(node.var < assignment.size(),
                "evaluate(): assignment does not cover all variables");
        f = assignment[node.var] ? node.high : node.low;
    }
    return f == trueNode;
}

std::size_t
BddManager::nodeCount(NodeRef f) const
{
    std::unordered_set<NodeRef> seen;
    std::vector<NodeRef> stack{f};
    while (!stack.empty()) {
        NodeRef cur = stack.back();
        stack.pop_back();
        if (isTerminal(cur) || !seen.insert(cur).second)
            continue;
        stack.push_back(nodes_[cur].low);
        stack.push_back(nodes_[cur].high);
    }
    return seen.size();
}

void
BddManager::addRoot(NodeRef f)
{
    if (isTerminal(f))
        return;
    require(f < nodes_.size(), "addRoot(): unknown node");
    ++roots_[f];
}

void
BddManager::removeRoot(NodeRef f)
{
    if (isTerminal(f))
        return;
    auto it = roots_.find(f);
    require(it != roots_.end(), "removeRoot(): ref is not a root");
    if (--it->second == 0)
        roots_.erase(it);
}

std::size_t
BddManager::collectGarbage()
{
    obs::TraceSpan trace_span("bdd.gc",
                              static_cast<std::uint64_t>(liveNodes()));
    ++gc_runs_;

    // Mark: terminals plus everything reachable from a root.
    std::vector<std::uint8_t> marked(nodes_.size(), 0);
    marked[falseNode] = 1;
    marked[trueNode] = 1;
    std::vector<NodeRef> stack;
    for (const auto &[root, count] : roots_) {
        (void)count;
        if (!marked[root]) {
            marked[root] = 1;
            stack.push_back(root);
        }
    }
    while (!stack.empty()) {
        const Node &node = nodes_[stack.back()];
        stack.pop_back();
        if (!marked[node.low]) {
            marked[node.low] = 1;
            stack.push_back(node.low);
        }
        if (!marked[node.high]) {
            marked[node.high] = 1;
            stack.push_back(node.high);
        }
    }

    // Sweep: unlink dead nodes from their subtables into the free
    // list. Already-free slots sit in no subtable, so they are never
    // visited (let alone double-freed).
    std::size_t freed = 0;
    for (SubTable &table : subtables_) {
        for (NodeRef &head : table.buckets) {
            NodeRef *link = &head;
            while (*link != 0) {
                NodeRef cur = *link;
                if (marked[cur]) {
                    link = &nodes_[cur].next;
                } else {
                    *link = nodes_[cur].next;
                    --table.count;
                    freeNode(cur);
                    ++freed;
                }
            }
        }
    }

    // Cache entries may name dead nodes whose slots will be recycled
    // to different functions; drop them all.
    clearIteCache();
    gc_reclaimed_ += freed;
    return freed;
}

bool
BddManager::maybeCollect()
{
    if (liveNodes() < gc_threshold_)
        return false;
    collectGarbage();
    gc_threshold_ =
        std::max<std::size_t>(kMinGcThreshold, liveNodes() * 2);
    return true;
}

void
BddManager::setGcThreshold(std::size_t live_nodes)
{
    gc_threshold_ = live_nodes;
}

void
BddManager::decReorderRef(NodeRef f)
{
    std::vector<NodeRef> &stack = reorder_dec_stack_;
    stack.push_back(f);
    while (!stack.empty()) {
        NodeRef cur = stack.back();
        stack.pop_back();
        if (isTerminal(cur))
            continue;
        require(reorder_refs_[cur] > 0,
                "BDD reorder refcount underflow");
        if (--reorder_refs_[cur] != 0)
            continue;
        unlink(cur);
        stack.push_back(nodes_[cur].low);
        stack.push_back(nodes_[cur].high);
        freeNode(cur);
    }
}

void
BddManager::swapAdjacentLevels(unsigned level)
{
    unsigned x = var_at_level_[level];
    unsigned y = var_at_level_[level + 1];
    ++reorder_swaps_;

    // Only x-nodes with a y child change shape; every other node
    // keeps its (var, low, high) triple and merely sits at a new
    // level implicitly. Unlink the affected nodes first so the
    // makeNode() lookups below cannot find stale entries.
    SubTable &xtable = subtables_[x];
    std::vector<NodeRef> affected;
    for (NodeRef &head : xtable.buckets) {
        NodeRef *link = &head;
        while (*link != 0) {
            NodeRef cur = *link;
            const Node &node = nodes_[cur];
            bool low_y =
                !isTerminal(node.low) && nodes_[node.low].var == y;
            bool high_y =
                !isTerminal(node.high) && nodes_[node.high].var == y;
            if (low_y || high_y) {
                *link = node.next;
                --xtable.count;
                affected.push_back(cur);
            } else {
                link = &nodes_[cur].next;
            }
        }
    }

    for (NodeRef n : affected) {
        // f = x ? f1 : f0; f_ab = f with x=a, y=b. After the swap y
        // tests first: f = y ? (x ? f11 : f01) : (x ? f10 : f00).
        NodeRef f0 = nodes_[n].low;
        NodeRef f1 = nodes_[n].high;
        bool f0y = !isTerminal(f0) && nodes_[f0].var == y;
        bool f1y = !isTerminal(f1) && nodes_[f1].var == y;
        NodeRef f00 = f0y ? nodes_[f0].low : f0;
        NodeRef f01 = f0y ? nodes_[f0].high : f0;
        NodeRef f10 = f1y ? nodes_[f1].low : f1;
        NodeRef f11 = f1y ? nodes_[f1].high : f1;
        NodeRef new_low = makeNode(x, f00, f10);
        NodeRef new_high = makeNode(x, f01, f11);
        // Add the edges into the new children before dropping the
        // old ones, so shared subgraphs never transit through zero.
        ++reorder_refs_[new_low];
        ++reorder_refs_[new_high];
        // Rewrite in place: n keeps its ref and its function, so
        // rooted handles (and parents' child pointers) stay valid.
        nodes_[n].var = y;
        nodes_[n].low = new_low;
        nodes_[n].high = new_high;
        insertUnique(n);
        decReorderRef(f0);
        decReorderRef(f1);
    }

    var_at_level_[level] = y;
    var_at_level_[level + 1] = x;
    level_of_var_[x] = level + 1;
    level_of_var_[y] = level;
}

std::size_t
BddManager::reorderSifting(const ReorderOptions &options)
{
    require(options.maxGrowth >= 1.0,
            "reorderSifting(): maxGrowth must be >= 1");
    obs::TraceSpan trace_span("bdd.reorder",
                              static_cast<std::uint64_t>(liveNodes()));
    ++reorder_runs_;

    // Safe point: drop garbage first so the sift decisions (and the
    // reference counts below) only see live structure.
    collectGarbage();
    const std::size_t before = liveNodes();
    if (variable_count_ < 2)
        return 0;

    // Reorder-time reference counts: edges between live nodes plus
    // root registrations. Swaps keep them current, so dead cofactor
    // nodes are reclaimed immediately and liveNodes() stays an exact
    // signal while sifting.
    reorder_refs_.assign(nodes_.size(), 0);
    for (const SubTable &table : subtables_) {
        for (NodeRef head : table.buckets) {
            for (NodeRef p = head; p != 0; p = nodes_[p].next) {
                ++reorder_refs_[nodes_[p].low];
                ++reorder_refs_[nodes_[p].high];
            }
        }
    }
    for (const auto &[root, count] : roots_)
        reorder_refs_[root] += count;
    sifting_ = true;

    // Sift the fattest variables first; they have the most to gain.
    std::vector<unsigned> order;
    order.reserve(variable_count_);
    for (unsigned v = 0; v < variable_count_; ++v)
        order.push_back(v);
    std::stable_sort(order.begin(), order.end(),
                     [this](unsigned a, unsigned b) {
                         return subtables_[a].count >
                                subtables_[b].count;
                     });
    if (options.maxVars != 0 && order.size() > options.maxVars)
        order.resize(options.maxVars);

    const unsigned levels = variable_count_;
    for (unsigned v : order) {
        if (subtables_[v].count == 0)
            continue;
        std::size_t best_size = liveNodes();
        unsigned best_level = level_of_var_[v];
        unsigned cur = best_level;
        // Down to the bottom level, then up through the top, keeping
        // the best position seen; abort a direction when the diagram
        // grows past the budget.
        while (cur + 1 < levels) {
            swapAdjacentLevels(cur);
            ++cur;
            std::size_t size = liveNodes();
            if (size < best_size) {
                best_size = size;
                best_level = cur;
            }
            if (static_cast<double>(size) >
                static_cast<double>(best_size) * options.maxGrowth)
                break;
        }
        while (cur > 0) {
            swapAdjacentLevels(cur - 1);
            --cur;
            std::size_t size = liveNodes();
            if (size < best_size) {
                best_size = size;
                best_level = cur;
            }
            if (static_cast<double>(size) >
                static_cast<double>(best_size) * options.maxGrowth)
                break;
        }
        while (cur < best_level) {
            swapAdjacentLevels(cur);
            ++cur;
        }
        while (cur > best_level) {
            swapAdjacentLevels(cur - 1);
            --cur;
        }
    }

    sifting_ = false;
    reorder_refs_.clear();
    reorder_refs_.shrink_to_fit();
    // Cache entries survive in-place rewrites semantically, but may
    // reference slots freed above; drop them wholesale.
    clearIteCache();
    const std::size_t after = liveNodes();
    return before > after ? before - after : 0;
}

unsigned
BddManager::levelOfVariable(unsigned index) const
{
    require(index < variable_count_,
            "levelOfVariable(): unknown variable");
    return level_of_var_[index];
}

unsigned
BddManager::variableAtLevel(unsigned level) const
{
    require(level < variable_count_,
            "variableAtLevel(): unknown level");
    return var_at_level_[level];
}

BddStats
BddManager::stats() const
{
    BddStats s;
    s.iteCacheHits = ite_cache_hits_;
    s.iteCacheMisses = ite_cache_misses_;
    s.uniqueTableHits = unique_hits_;
    s.uniqueTableMisses = unique_misses_;
    s.uniqueTableSize = liveNodes() - 2;
    s.peakNodes = peak_live_;
    s.liveNodes = liveNodes();
    s.freeNodes = free_count_;
    s.gcRuns = gc_runs_;
    s.gcReclaimedNodes = gc_reclaimed_;
    s.reorderRuns = reorder_runs_;
    s.reorderSwaps = reorder_swaps_;
    s.variables = variable_count_;
    return s;
}

void
BddManager::recordMetrics() const
{
    obs::Registry &registry = obs::Registry::global();
    BddStats s = stats();
    registry.counter("bdd.ite_cache_hits").add(s.iteCacheHits);
    registry.counter("bdd.ite_cache_misses").add(s.iteCacheMisses);
    registry.counter("bdd.unique_table_hits").add(s.uniqueTableHits);
    registry.counter("bdd.unique_table_misses")
        .add(s.uniqueTableMisses);
    registry.counter("bdd.gc_runs").add(s.gcRuns);
    registry.counter("bdd.gc_reclaimed_nodes").add(s.gcReclaimedNodes);
    registry.counter("bdd.reorder_runs").add(s.reorderRuns);
    registry.counter("bdd.reorder_swaps").add(s.reorderSwaps);
    registry.counter("bdd.managers_published").add();
    registry.gauge("bdd.unique_table_size")
        .setMax(static_cast<double>(s.uniqueTableSize));
    registry.gauge("bdd.peak_nodes")
        .setMax(static_cast<double>(s.peakNodes));
    registry.gauge("bdd.live_nodes")
        .setMax(static_cast<double>(s.liveNodes));
}

unsigned
BddManager::nodeVariable(NodeRef f) const
{
    require(!terminal(f) && f < nodes_.size(),
            "nodeVariable() needs a non-terminal node");
    return nodes_[f].var;
}

NodeRef
BddManager::nodeLow(NodeRef f) const
{
    require(!terminal(f) && f < nodes_.size(),
            "nodeLow() needs a non-terminal node");
    return nodes_[f].low;
}

NodeRef
BddManager::nodeHigh(NodeRef f) const
{
    require(!terminal(f) && f < nodes_.size(),
            "nodeHigh() needs a non-terminal node");
    return nodes_[f].high;
}

} // namespace sdnav::bdd
