#include "bdd/bdd.hh"

#include <limits>
#include <unordered_set>

#include "common/error.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"

namespace sdnav::bdd
{

BddManager::BddManager()
{
    // Reserve slots 0 and 1 for the terminals. Their contents are
    // never dereferenced; var is a sentinel beyond any real variable.
    nodes_.push_back({std::numeric_limits<unsigned>::max(), 0, 0});
    nodes_.push_back({std::numeric_limits<unsigned>::max(), 1, 1});
}

unsigned
BddManager::topVar(NodeRef f) const
{
    return nodes_[f].var;
}

NodeRef
BddManager::makeNode(unsigned var, NodeRef low, NodeRef high)
{
    if (low == high)
        return low; // Reduction rule: redundant test.
    NodeKey key{var, low, high};
    auto it = unique_.find(key);
    if (it != unique_.end()) {
        ++unique_hits_;
        return it->second;
    }
    ++unique_misses_;
    require(nodes_.size() < std::numeric_limits<NodeRef>::max(),
            "BDD node capacity exhausted");
    NodeRef ref = static_cast<NodeRef>(nodes_.size());
    nodes_.push_back({var, low, high});
    unique_.emplace(key, ref);
    return ref;
}

NodeRef
BddManager::var(unsigned index)
{
    if (index >= variable_count_)
        variable_count_ = index + 1;
    return makeNode(index, falseNode, trueNode);
}

NodeRef
BddManager::nvar(unsigned index)
{
    if (index >= variable_count_)
        variable_count_ = index + 1;
    return makeNode(index, trueNode, falseNode);
}

NodeRef
BddManager::ite(NodeRef f, NodeRef g, NodeRef h)
{
    // Terminal cases.
    if (f == trueNode)
        return g;
    if (f == falseNode)
        return h;
    if (g == h)
        return g;
    if (g == trueNode && h == falseNode)
        return f;

    IteKey key{f, g, h};
    auto it = ite_cache_.find(key);
    if (it != ite_cache_.end()) {
        ++ite_cache_hits_;
        return it->second;
    }
    ++ite_cache_misses_;

    // Shannon expansion around the smallest top variable.
    unsigned v = topVar(f);
    if (!isTerminal(g))
        v = std::min(v, topVar(g));
    if (!isTerminal(h))
        v = std::min(v, topVar(h));

    auto cofactor = [this, v](NodeRef x, bool positive) -> NodeRef {
        if (isTerminal(x) || topVar(x) != v)
            return x;
        return positive ? nodes_[x].high : nodes_[x].low;
    };

    NodeRef high = ite(cofactor(f, true), cofactor(g, true),
                       cofactor(h, true));
    NodeRef low = ite(cofactor(f, false), cofactor(g, false),
                      cofactor(h, false));
    NodeRef result = makeNode(v, low, high);
    ite_cache_.emplace(key, result);
    return result;
}

NodeRef
BddManager::notOp(NodeRef f)
{
    return ite(f, falseNode, trueNode);
}

NodeRef
BddManager::andOp(NodeRef f, NodeRef g)
{
    return ite(f, g, falseNode);
}

NodeRef
BddManager::orOp(NodeRef f, NodeRef g)
{
    return ite(f, trueNode, g);
}

NodeRef
BddManager::xorOp(NodeRef f, NodeRef g)
{
    return ite(f, notOp(g), g);
}

NodeRef
BddManager::andAll(std::span<const NodeRef> fs)
{
    NodeRef acc = trueNode;
    for (NodeRef f : fs)
        acc = andOp(acc, f);
    return acc;
}

NodeRef
BddManager::orAll(std::span<const NodeRef> fs)
{
    NodeRef acc = falseNode;
    for (NodeRef f : fs)
        acc = orOp(acc, f);
    return acc;
}

NodeRef
BddManager::atLeast(std::span<const NodeRef> fs, unsigned m)
{
    if (m == 0)
        return trueNode;
    if (m > fs.size())
        return falseNode;
    // reach[j] = "at least j of the functions seen so far are true".
    // Process one function at a time:
    //   reach'[j] = f ? reach[j-1] : reach[j]
    // keeping only counts up to m.
    std::vector<NodeRef> reach(m + 1, falseNode);
    reach[0] = trueNode;
    for (NodeRef f : fs) {
        for (unsigned j = m; j >= 1; --j)
            reach[j] = ite(f, reach[j - 1], reach[j]);
    }
    return reach[m];
}

NodeRef
BddManager::restrict(NodeRef f, unsigned index, bool value)
{
    std::unordered_map<NodeRef, NodeRef> memo;
    return restrictRec(f, index, value, memo);
}

NodeRef
BddManager::restrictRec(NodeRef f, unsigned index, bool value,
                        std::unordered_map<NodeRef, NodeRef> &memo)
{
    if (isTerminal(f))
        return f;
    auto it = memo.find(f);
    if (it != memo.end())
        return it->second;
    // Copy the node: the recursive calls below may grow nodes_ and
    // would invalidate a reference into it.
    Node node = nodes_[f];
    NodeRef result;
    if (node.var > index) {
        result = f; // Variable cannot appear below (ordered).
    } else if (node.var == index) {
        result = value ? node.high : node.low;
    } else {
        NodeRef low = restrictRec(node.low, index, value, memo);
        NodeRef high = restrictRec(node.high, index, value, memo);
        result = makeNode(node.var, low, high);
    }
    memo.emplace(f, result);
    return result;
}

double
BddManager::probability(NodeRef f, std::span<const double> probs) const
{
    // The scratch overload stays span-free: it is the sweep hot path
    // (thousands of evaluations per chunk), and the per-chunk sweep
    // spans already bound it on the timeline.
    obs::TraceSpan trace_span("bdd.probability");
    ProbabilityScratch scratch;
    return probability(f, probs, scratch);
}

double
BddManager::probability(NodeRef f, std::span<const double> probs,
                        ProbabilityScratch &scratch) const
{
    {
        static obs::Counter &evals =
            obs::Registry::global().counter("bdd.prob_evals");
        static obs::Counter &reuses =
            obs::Registry::global().counter("bdd.scratch_reuses");
        evals.add();
        if (scratch.value_.capacity() >= nodes_.size() &&
            !scratch.value_.empty()) {
            ++scratch.reuses_;
            reuses.add();
        }
    }

    // Dense memo keyed by NodeRef (refs index nodes_ directly). The
    // assign() calls reuse the scratch's capacity, so after the first
    // evaluation at a given manager size this allocates nothing.
    std::vector<double> &value = scratch.value_;
    std::vector<std::uint8_t> &known = scratch.known_;
    std::vector<NodeRef> &stack = scratch.stack_;
    value.assign(nodes_.size(), 0.0);
    known.assign(nodes_.size(), 0);
    value[trueNode] = 1.0;
    known[falseNode] = 1;
    known[trueNode] = 1;

    // Explicit stack to avoid deep recursion on long chains.
    stack.clear();
    stack.push_back(f);
    while (!stack.empty()) {
        NodeRef cur = stack.back();
        if (known[cur]) {
            stack.pop_back();
            continue;
        }
        const Node &node = nodes_[cur];
        require(node.var < probs.size(),
                "probability(): probs does not cover all BDD variables");
        if (known[node.low] && known[node.high]) {
            double p = probs[node.var];
            value[cur] = p * value[node.high] +
                         (1.0 - p) * value[node.low];
            known[cur] = 1;
            stack.pop_back();
        } else {
            if (!known[node.high])
                stack.push_back(node.high);
            if (!known[node.low])
                stack.push_back(node.low);
        }
    }
    return value[f];
}

bool
BddManager::evaluate(NodeRef f, const std::vector<bool> &assignment) const
{
    while (!isTerminal(f)) {
        const Node &node = nodes_[f];
        require(node.var < assignment.size(),
                "evaluate(): assignment does not cover all variables");
        f = assignment[node.var] ? node.high : node.low;
    }
    return f == trueNode;
}

std::size_t
BddManager::nodeCount(NodeRef f) const
{
    std::unordered_set<NodeRef> seen;
    std::vector<NodeRef> stack{f};
    while (!stack.empty()) {
        NodeRef cur = stack.back();
        stack.pop_back();
        if (isTerminal(cur) || !seen.insert(cur).second)
            continue;
        stack.push_back(nodes_[cur].low);
        stack.push_back(nodes_[cur].high);
    }
    return seen.size();
}

BddStats
BddManager::stats() const
{
    BddStats s;
    s.iteCacheHits = ite_cache_hits_;
    s.iteCacheMisses = ite_cache_misses_;
    s.uniqueTableHits = unique_hits_;
    s.uniqueTableMisses = unique_misses_;
    s.uniqueTableSize = unique_.size();
    s.peakNodes = nodes_.size();
    s.variables = variable_count_;
    return s;
}

void
BddManager::recordMetrics() const
{
    obs::Registry &registry = obs::Registry::global();
    BddStats s = stats();
    registry.counter("bdd.ite_cache_hits").add(s.iteCacheHits);
    registry.counter("bdd.ite_cache_misses").add(s.iteCacheMisses);
    registry.counter("bdd.unique_table_hits").add(s.uniqueTableHits);
    registry.counter("bdd.unique_table_misses")
        .add(s.uniqueTableMisses);
    registry.counter("bdd.managers_published").add();
    registry.gauge("bdd.unique_table_size")
        .setMax(static_cast<double>(s.uniqueTableSize));
    registry.gauge("bdd.peak_nodes")
        .setMax(static_cast<double>(s.peakNodes));
}

unsigned
BddManager::nodeVariable(NodeRef f) const
{
    require(!terminal(f) && f < nodes_.size(),
            "nodeVariable() needs a non-terminal node");
    return nodes_[f].var;
}

NodeRef
BddManager::nodeLow(NodeRef f) const
{
    require(!terminal(f) && f < nodes_.size(),
            "nodeLow() needs a non-terminal node");
    return nodes_[f].low;
}

NodeRef
BddManager::nodeHigh(NodeRef f) const
{
    require(!terminal(f) && f < nodes_.size(),
            "nodeHigh() needs a non-terminal node");
    return nodes_[f].high;
}

} // namespace sdnav::bdd
