/**
 * @file
 * An STL allocator that serves large blocks straight from the OS.
 *
 * The BDD evaluation hot path pointer-chases multi-megabyte arrays:
 * the node arena and the dense per-eval memo, both indexed by
 * NodeRef in data-dependent order. When those arrays come from the
 * general-purpose heap their page placement depends on every
 * allocation and free the process made before them. glibc's mmap
 * threshold *slides up* after large frees, so a model compiled after
 * cache evictions can land in recycled, fragmented heap pages and
 * evaluate ~1.5x slower than the identical model in fresh pages —
 * observed as bimodal BENCH_server cache-hit latency that flipped on
 * unrelated one-line changes. Blocks of kMinMapBytes or more
 * therefore bypass malloc and map fresh anonymous pages (hinted
 * THP-eligible): placement no longer depends on heap history. Small
 * blocks stay on the regular heap, where locality matters more than
 * determinism and page-granular mappings would waste memory.
 */

#ifndef SDNAV_BDD_PAGE_ALLOC_HH
#define SDNAV_BDD_PAGE_ALLOC_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace sdnav::bdd
{

template <class T> class PageAllocator
{
  public:
    using value_type = T;
    using is_always_equal = std::true_type;

    /** Smallest block that goes to the OS instead of the heap. */
    static constexpr std::size_t kMinMapBytes = 256 * 1024;

    PageAllocator() noexcept = default;
    template <class U>
    PageAllocator(const PageAllocator<U> &) noexcept
    {
    }
    template <class U> struct rebind
    {
        using other = PageAllocator<U>;
    };

    T *
    allocate(std::size_t n)
    {
        std::size_t bytes = n * sizeof(T);
#if defined(__linux__)
        if (bytes >= kMinMapBytes) {
            void *p =
                ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
            if (p == MAP_FAILED)
                throw std::bad_alloc{};
#ifdef MADV_HUGEPAGE
            ::madvise(p, bytes, MADV_HUGEPAGE);
#endif
            return static_cast<T *>(p);
        }
#endif
        return static_cast<T *>(::operator new(bytes));
    }

    void
    deallocate(T *p, std::size_t n) noexcept
    {
        std::size_t bytes = n * sizeof(T);
#if defined(__linux__)
        if (bytes >= kMinMapBytes) {
            ::munmap(p, bytes);
            return;
        }
#endif
        ::operator delete(p);
    }

    friend bool
    operator==(const PageAllocator &, const PageAllocator &) noexcept
    {
        return true;
    }
    friend bool
    operator!=(const PageAllocator &, const PageAllocator &) noexcept
    {
        return false;
    }
};

/** A vector whose large backing blocks come from PageAllocator. */
template <class T> using PageVector = std::vector<T, PageAllocator<T>>;

} // namespace sdnav::bdd

#endif // SDNAV_BDD_PAGE_ALLOC_HH
