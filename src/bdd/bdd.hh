/**
 * @file
 * A reduced ordered binary decision diagram (ROBDD) engine.
 *
 * The availability models in this library are probabilities of Boolean
 * *structure functions* over independent components (processes,
 * supervisors, VMs, hosts, racks). When components are shared between
 * blocks — a host failure takes down every role VM placed on it — the
 * blocks are no longer independent and naive products are wrong. An
 * ROBDD represents the structure function exactly; the probability of
 * the function being true under independent per-variable probabilities
 * is then a single linear-time traversal (Shannon decomposition).
 *
 * The engine stores nodes in an arena (one contiguous vector) with
 * per-variable unique subtables chained through the nodes themselves,
 * so hash-consing allocates nothing beyond the arena. On top of that
 * it provides:
 *
 *  - mark-and-sweep garbage collection with explicit root
 *    registration (addRoot / removeRoot / ScopedRoot): intermediates
 *    from restrict()-heavy importance loops are reclaimed into a free
 *    list instead of accumulating forever;
 *  - optional sifting-based dynamic variable reordering
 *    (reorderSifting) that rewrites nodes in place, so NodeRefs held
 *    by callers stay valid and keep denoting the same function;
 *  - ITE-based apply with a lossy direct-mapped computed cache,
 *    threshold ("at least m of these functions") builders, cofactor
 *    restriction, and probability evaluation — all iterative, so
 *    deep chain diagrams cannot overflow the call stack.
 *
 * Callers still control the initial variable order (group components
 * of a node/rack together for compact diagrams); reordering only runs
 * when explicitly requested. GC and reordering are *safe points*: the
 * caller guarantees every ref it still cares about is registered as a
 * root before invoking them.
 */

#ifndef SDNAV_BDD_BDD_HH
#define SDNAV_BDD_BDD_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/pageAlloc.hh"

namespace sdnav::bdd
{

/** Handle to a BDD node within a BddManager. */
using NodeRef = std::uint32_t;

/**
 * Engine statistics, accumulated by a manager over its lifetime.
 *
 * Unique-table and ITE-cache hit/miss counts are exact operation
 * counts. All fields are deterministic functions of the sequence of
 * operations performed on the manager (construction is
 * single-threaded), so two identical builds report identical stats
 * regardless of what other threads do elsewhere.
 */
struct BddStats
{
    /** ITE computed-cache hits / misses (sub-calls included). */
    std::uint64_t iteCacheHits = 0;
    std::uint64_t iteCacheMisses = 0;

    /** Unique-table (hash-consing) hits / misses in makeNode. */
    std::uint64_t uniqueTableHits = 0;
    std::uint64_t uniqueTableMisses = 0;

    /** Entries in the unique table (live non-terminal nodes). */
    std::size_t uniqueTableSize = 0;

    /** High-water mark of simultaneously live nodes (terminals in). */
    std::size_t peakNodes = 0;

    /** Live nodes right now, terminals included. */
    std::size_t liveNodes = 0;

    /** Arena slots parked on the free list. */
    std::size_t freeNodes = 0;

    /** Garbage collections run / nodes reclaimed across them. */
    std::uint64_t gcRuns = 0;
    std::uint64_t gcReclaimedNodes = 0;

    /** Sifting passes run / adjacent-level swaps performed. */
    std::uint64_t reorderRuns = 0;
    std::uint64_t reorderSwaps = 0;

    /** Distinct variables created. */
    unsigned variables = 0;
};

/**
 * Cooperative build budget: a wall-clock deadline and/or a live-node
 * cap enforced inside the apply loops. Some structure functions are
 * exponentially large under every order the builder knows (the
 * OpenContrail Large topology past 3 nodes), and a server compiling
 * on behalf of untrusted queries must bound that work. Zero means
 * unlimited for either field. Enforcement is plain control flow —
 * it functions identically with metrics compiled out.
 */
struct StepBudget
{
    /** Wall-clock limit on one build phase, in ms (0 = unlimited). */
    double wallMs = 0.0;

    /** Live-node cap, terminals included (0 = unlimited). */
    std::size_t nodeCap = 0;

    /** True when either limit is set. */
    bool
    limited() const
    {
        return wallMs > 0.0 || nodeCap > 0;
    }
};

/**
 * Thrown by BddManager when an active StepBudget is exhausted. Carries
 * the engine state at the abort so the error reply (and the request
 * log) can say how far the build got — nodes allocated, GC runs,
 * elapsed wall time — not just that it died.
 */
class BudgetExceeded : public std::runtime_error
{
  public:
    BudgetExceeded(const std::string &budgetName,
                   std::size_t nodesAllocated, std::uint64_t gcRuns,
                   double elapsedMs)
        : std::runtime_error(
              "BDD build budget exceeded (" + budgetName + "): " +
              std::to_string(nodesAllocated) + " nodes allocated, " +
              std::to_string(gcRuns) + " GC runs, " +
              std::to_string(elapsedMs) + " ms elapsed"),
          budget_name_(budgetName), nodes_allocated_(nodesAllocated),
          gc_runs_(gcRuns), elapsed_ms_(elapsedMs)
    {
    }

    /** Which limit tripped: "node-cap" or "wall-deadline". */
    const std::string &budgetName() const { return budget_name_; }

    /** Live nodes in the manager at the abort. */
    std::size_t nodesAllocated() const { return nodes_allocated_; }

    /** Garbage collections the build had run before aborting. */
    std::uint64_t gcRuns() const { return gc_runs_; }

    /** Wall time since the budget was armed, in ms. */
    double elapsedMs() const { return elapsed_ms_; }

  private:
    std::string budget_name_;
    std::size_t nodes_allocated_;
    std::uint64_t gc_runs_;
    double elapsed_ms_;
};

/** The constant-false terminal. */
constexpr NodeRef falseNode = 0;

/** The constant-true terminal. */
constexpr NodeRef trueNode = 1;

/**
 * Caller-owned workspace for BddManager::probability().
 *
 * Evaluating a probability needs a per-node memo and a traversal
 * stack. A sweep calling probability() thousands of times with only
 * the per-variable probabilities changing would otherwise pay a fresh
 * allocation per point; holding one scratch per thread (the scratch is
 * NOT thread-safe, the manager's read-only evaluation is) makes
 * repeated evaluation allocation-free after the first call.
 */
class ProbabilityScratch
{
  public:
    ProbabilityScratch() = default;

    /** Release the held buffers. */
    void
    clear()
    {
        value_.clear();
        value_.shrink_to_fit();
        known_.clear();
        known_.shrink_to_fit();
        stack_.clear();
        stack_.shrink_to_fit();
    }

    /**
     * Evaluations served from already-sized buffers (no allocation).
     * First use and post-clear() use are not reuses; the count is
     * per-scratch, so per-thread sweep scratches each start at zero.
     */
    std::uint64_t reuseCount() const { return reuses_; }

  private:
    friend class BddManager;

    std::uint64_t reuses_ = 0;

    // PageVector: eval walks these in data-dependent order, so their
    // page placement must not depend on prior heap churn.
    PageVector<double> value_;
    PageVector<std::uint8_t> known_;
    std::vector<NodeRef> stack_;
};

/**
 * Caller-owned workspace for BddManager::restrict().
 *
 * Restriction needs a per-node memo and a traversal stack. The
 * Birnbaum/criticality importance loops call restrict() twice per
 * component; a caller-owned scratch makes every call after the first
 * allocation-free, mirroring ProbabilityScratch.
 */
class RestrictScratch
{
  public:
    RestrictScratch() = default;

    /** Release the held buffers. */
    void
    clear()
    {
        result_.clear();
        result_.shrink_to_fit();
        known_.clear();
        known_.shrink_to_fit();
        stack_.clear();
        stack_.shrink_to_fit();
    }

  private:
    friend class BddManager;

    std::vector<NodeRef> result_;
    std::vector<std::uint8_t> known_;
    std::vector<NodeRef> stack_;
};

/** Tuning knobs for sifting-based dynamic variable reordering. */
struct ReorderOptions
{
    /**
     * Abort sifting a variable in one direction once the live node
     * count exceeds this multiple of the best size seen for it.
     */
    double maxGrowth = 1.2;

    /** Sift only the this-many largest variables (0 = all). */
    std::size_t maxVars = 0;
};

/**
 * Owns all BDD nodes and implements the BDD algebra.
 *
 * Nodes are hash-consed: structurally equal functions share a single
 * node, so equality of functions is ref equality. NodeRefs stay valid
 * until the node is garbage-collected; refs registered as roots (and
 * everything they reach) survive collection, and reordering rewrites
 * nodes in place so rooted refs keep denoting the same function.
 */
class BddManager
{
  public:
    BddManager();

    /** The projection function for variable `index` (x_index). */
    NodeRef var(unsigned index);

    /** Negation of the projection function (!x_index). */
    NodeRef nvar(unsigned index);

    /** Logical NOT. */
    NodeRef notOp(NodeRef f);

    /** Logical AND. */
    NodeRef andOp(NodeRef f, NodeRef g);

    /** Logical OR. */
    NodeRef orOp(NodeRef f, NodeRef g);

    /** Logical XOR. */
    NodeRef xorOp(NodeRef f, NodeRef g);

    /** If-then-else: f ? g : h, the universal ternary connective. */
    NodeRef ite(NodeRef f, NodeRef g, NodeRef h);

    /** AND of a sequence of functions (true for empty input). */
    NodeRef andAll(std::span<const NodeRef> fs);

    /** OR of a sequence of functions (false for empty input). */
    NodeRef orAll(std::span<const NodeRef> fs);

    /**
     * Threshold function: true iff at least `m` of the given functions
     * are true. Built by dynamic programming over partial counts, so
     * the inputs may be arbitrary functions (not just variables).
     *
     * @param fs The functions to count.
     * @param m The required number of true functions (0 gives the
     *          constant true; m > fs.size() gives constant false,
     *          matching the paper's eq. (1) conventions).
     */
    NodeRef atLeast(std::span<const NodeRef> fs, unsigned m);

    /** Cofactor: f with variable `index` fixed to `value`. */
    NodeRef restrict(NodeRef f, unsigned index, bool value);

    /**
     * As restrict(), reusing a caller-owned scratch so repeated
     * restriction (importance loops) allocates nothing after the
     * first call.
     */
    NodeRef restrict(NodeRef f, unsigned index, bool value,
                     RestrictScratch &scratch);

    /**
     * Probability that the function is true when each variable i is
     * independently true with probability probs[i].
     *
     * Evaluation is read-only: a const manager can serve concurrent
     * probability() calls from many threads (each thread passing its
     * own scratch), which is what the parallel sweep engine does.
     *
     * @param f The function to evaluate.
     * @param probs Per-variable probabilities; must cover every
     *              variable appearing in f.
     */
    double probability(NodeRef f, std::span<const double> probs) const;

    /**
     * As probability(), reusing a caller-owned scratch so repeated
     * evaluation (sweeps) allocates nothing after the first call.
     */
    double probability(NodeRef f, std::span<const double> probs,
                       ProbabilityScratch &scratch) const;

    /** Evaluate the function on a concrete assignment. */
    bool evaluate(NodeRef f, const std::vector<bool> &assignment) const;

    /** Number of (non-terminal) nodes reachable from f. */
    std::size_t nodeCount(NodeRef f) const;

    /** True for the constant nodes. */
    static bool
    terminal(NodeRef f)
    {
        return f <= trueNode;
    }

    /** Top variable index of a non-terminal node. */
    unsigned nodeVariable(NodeRef f) const;

    /** Low child (variable false) of a non-terminal node. */
    NodeRef nodeLow(NodeRef f) const;

    /** High child (variable true) of a non-terminal node. */
    NodeRef nodeHigh(NodeRef f) const;

    /** Arena slots allocated, free-listed ones included. */
    std::size_t totalNodes() const { return nodes_.size(); }

    /** Live (not reclaimed) nodes, terminals included. */
    std::size_t
    liveNodes() const
    {
        return nodes_.size() - free_count_;
    }

    /** Highest variable index created so far, plus one. */
    unsigned variableCount() const { return variable_count_; }

    /**
     * Register `f` as a GC root. Each addRoot must be balanced by a
     * removeRoot; a ref rooted n times survives until n removals.
     * Rooting a terminal is a no-op (terminals always survive).
     */
    void addRoot(NodeRef f);

    /** Drop one root registration of `f`. */
    void removeRoot(NodeRef f);

    /**
     * Mark-and-sweep collection: every node not reachable from a
     * registered root is unlinked from the unique table and parked on
     * the free list for reuse. The ITE computed cache is dropped (it
     * may reference dead nodes). Safe point: the caller guarantees
     * every ref it still cares about is rooted.
     *
     * @return The number of nodes reclaimed.
     */
    std::size_t collectGarbage();

    /**
     * Collect if the live node count has crossed the adaptive GC
     * threshold (collection resets the threshold to twice the
     * surviving live size). Call at safe points inside loops that
     * generate garbage, e.g. once per component in importance loops.
     *
     * @return True if a collection ran.
     */
    bool maybeCollect();

    /** Live-node count that triggers the next maybeCollect(). */
    std::size_t gcThreshold() const { return gc_threshold_; }

    /** Override the maybeCollect() trigger (also resets adaptation). */
    void setGcThreshold(std::size_t live_nodes);

    /**
     * Sifting-based dynamic variable reordering (Rudell): each
     * variable is moved through all levels via adjacent-level swaps
     * and left at the level minimising the live node count. Nodes are
     * rewritten in place, so existing refs stay valid and keep
     * denoting the same function; variable *indices* never change
     * (probability vectors stay index-aligned), only their levels.
     *
     * Runs a collection first, so this is a safe point like
     * collectGarbage(): every ref the caller still cares about must
     * be rooted.
     *
     * @return Net live nodes eliminated by the pass.
     */
    std::size_t reorderSifting(const ReorderOptions &options = {});

    /** The level a variable currently sits at (identity until a
     *  reorder moves it). */
    unsigned levelOfVariable(unsigned index) const;

    /** The variable sitting at a level. */
    unsigned variableAtLevel(unsigned level) const;

    /**
     * Arm a cooperative build budget and start its wall clock. Until
     * clearStepBudget(), node allocation checks the live-node cap and
     * the apply loops periodically check the wall deadline; crossing
     * either throws BudgetExceeded. The manager survives the abort in
     * a consistent state (hash-consing invariants hold), so the owner
     * may clear the budget and keep building — but a caller that
     * wants a clean model simply discards the manager.
     *
     * A budget with neither limit set disarms (same as clear).
     */
    void setStepBudget(const StepBudget &budget);

    /** Disarm the budget; later operations run unbounded again. */
    void clearStepBudget();

    /** True while a budget with at least one limit is armed. */
    bool budgetArmed() const { return budget_armed_; }

    /** Lifetime engine statistics (cache behaviour, table sizes). */
    BddStats stats() const;

    /**
     * Fold this manager's stats into the global obs registry
     * (counters "bdd.*", gauges "bdd.unique_table_size" /
     * "bdd.peak_nodes" / "bdd.live_nodes" as set-max high-water
     * marks). Callers that own a manager publish once, after the
     * build phase.
     */
    void recordMetrics() const;

  private:
    /**
     * Arena node. `next` chains the node into its variable's unique
     * subtable bucket while live, and into the free list once
     * reclaimed (a node is never in both).
     */
    struct Node
    {
        unsigned var;
        NodeRef low;
        NodeRef high;
        NodeRef next;
    };

    /**
     * One variable's slice of the unique table: power-of-two open
     * hash buckets chained through Node::next. Keeping subtables per
     * variable is what makes adjacent-level swaps and GC sweeps touch
     * only the nodes they must.
     */
    struct SubTable
    {
        std::vector<NodeRef> buckets;
        std::size_t count = 0;
    };

    /** Lossy direct-mapped ITE computed-cache entry; f == 0 means
     *  empty (a cached call never has a terminal f). */
    struct IteEntry
    {
        NodeRef f = 0;
        NodeRef g = 0;
        NodeRef h = 0;
        NodeRef result = 0;
    };

    /** Explicit-stack frame for the iterative ite(). */
    struct IteFrame
    {
        NodeRef f, g, h;
        unsigned v;
        NodeRef high;
        std::uint8_t phase;
    };

    static std::size_t hashChildren(NodeRef low, NodeRef high);

    /** Variable index of a node; terminals sort after all variables. */
    unsigned topVar(NodeRef f) const;

    /** Create or find the canonical node (var, low, high). */
    NodeRef makeNode(unsigned var, NodeRef low, NodeRef high);

    /** Extend per-variable structures up to `index`. */
    void ensureVariable(unsigned index);

    /** Double a subtable's bucket array and re-chain its nodes. */
    void rehash(SubTable &table);

    /** Remove a live node from its variable's subtable. */
    void unlink(NodeRef n);

    /** Insert a node into its variable's subtable, requiring that no
     *  equal node is already present. */
    void insertUnique(NodeRef n);

    /** Park an unlinked node on the free list. */
    void freeNode(NodeRef n);

    /** Resolve one ite call without recursing: terminal rules, then
     *  the computed cache. True when `out` holds the result. */
    bool iteShortcut(NodeRef f, NodeRef g, NodeRef h, NodeRef &out);

    /** Grow (and thereby clear) the computed cache to track the
     *  arena; lossy, so dropping entries is always safe. */
    void growIteCache();

    /** Clear the computed cache in place (GC / reorder). */
    void clearIteCache();

    /** Throw BudgetExceeded for the named limit. */
    [[noreturn]] void throwBudgetExceeded(const char *budgetName) const;

    /** Wall-deadline check, called periodically from apply loops. */
    void checkWallBudget();

    /** Swap the variables at levels `level` and `level + 1`. */
    void swapAdjacentLevels(unsigned level);

    /** Drop one reorder-time reference from f, cascading frees. */
    void decReorderRef(NodeRef f);

    bool isTerminal(NodeRef f) const { return f <= trueNode; }

    // PageVector: the arena is the eval/apply hot path's working
    // set; fresh pages keep its layout independent of heap history.
    PageVector<Node> nodes_;
    std::vector<SubTable> subtables_;
    std::vector<IteEntry> ite_cache_;
    std::vector<IteFrame> ite_frames_;

    /** Level permutation; identity until reorderSifting runs. */
    std::vector<unsigned> level_of_var_;
    std::vector<unsigned> var_at_level_;

    /** Free list head (0 = empty; terminals are never freed). */
    NodeRef free_head_ = 0;
    std::size_t free_count_ = 0;

    /** GC roots: ref -> registration count. */
    std::unordered_map<NodeRef, std::uint32_t> roots_;

    /**
     * Reorder-time internal reference counts (edges + roots), sized
     * to the arena only while a sifting pass is active. Maintaining
     * them lets swaps reclaim dead cofactor nodes immediately, which
     * keeps the live-size signal the sift decisions use exact.
     */
    std::vector<std::uint32_t> reorder_refs_;
    std::vector<NodeRef> reorder_dec_stack_;
    bool sifting_ = false;

    unsigned variable_count_ = 0;
    std::size_t gc_threshold_ = kDefaultGcThreshold;
    std::size_t peak_live_ = 2;

    /** Armed build budget; checked only while budget_armed_. */
    StepBudget budget_{};
    bool budget_armed_ = false;
    std::chrono::steady_clock::time_point budget_start_{};
    std::uint32_t budget_tick_ = 0;

    std::uint64_t ite_cache_hits_ = 0;
    std::uint64_t ite_cache_misses_ = 0;
    std::uint64_t unique_hits_ = 0;
    std::uint64_t unique_misses_ = 0;
    std::uint64_t gc_runs_ = 0;
    std::uint64_t gc_reclaimed_ = 0;
    std::uint64_t reorder_runs_ = 0;
    std::uint64_t reorder_swaps_ = 0;

    /** ite() loop iterations between wall-deadline checks. */
    static constexpr std::uint32_t kBudgetCheckInterval = 1024;

    static constexpr std::size_t kDefaultGcThreshold = 1u << 15;
    static constexpr std::size_t kMinGcThreshold = 1u << 12;
    static constexpr std::size_t kInitialIteCache = 1u << 10;
    static constexpr std::size_t kMaxIteCache = 1u << 22;
    static constexpr std::size_t kInitialBuckets = 16;
};

/**
 * RAII root registration: keeps `f` (and everything it reaches)
 * alive across GC/reorder safe points within a scope.
 */
class ScopedRoot
{
  public:
    ScopedRoot(BddManager &manager, NodeRef f)
        : manager_(&manager), ref_(f)
    {
        manager_->addRoot(ref_);
    }

    ~ScopedRoot()
    {
        if (manager_ != nullptr)
            manager_->removeRoot(ref_);
    }

    ScopedRoot(const ScopedRoot &) = delete;
    ScopedRoot &operator=(const ScopedRoot &) = delete;

  private:
    BddManager *manager_;
    NodeRef ref_;
};

} // namespace sdnav::bdd

#endif // SDNAV_BDD_BDD_HH
