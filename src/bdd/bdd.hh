/**
 * @file
 * A small reduced ordered binary decision diagram (ROBDD) engine.
 *
 * The availability models in this library are probabilities of Boolean
 * *structure functions* over independent components (processes,
 * supervisors, VMs, hosts, racks). When components are shared between
 * blocks — a host failure takes down every role VM placed on it — the
 * blocks are no longer independent and naive products are wrong. An
 * ROBDD represents the structure function exactly; the probability of
 * the function being true under independent per-variable probabilities
 * is then a single linear-time traversal (Shannon decomposition).
 *
 * This engine provides exactly what the library needs: a unique table
 * with hash-consing, an ITE-based apply with memoization, threshold
 * ("at least m of these variables") builders, and probability
 * evaluation. No complement edges, no dynamic reordering — callers
 * control variable order (group components of a node/rack together for
 * compact diagrams).
 */

#ifndef SDNAV_BDD_BDD_HH
#define SDNAV_BDD_BDD_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace sdnav::bdd
{

/** Handle to a BDD node within a BddManager. */
using NodeRef = std::uint32_t;

/**
 * Engine statistics, accumulated by a manager over its lifetime.
 *
 * Nodes are never freed, so totalNodes is also the peak; unique-table
 * and ITE-cache hit/miss counts are exact operation counts. All
 * fields are deterministic functions of the sequence of operations
 * performed on the manager (construction is single-threaded), so two
 * identical builds report identical stats regardless of what other
 * threads do elsewhere.
 */
struct BddStats
{
    /** ITE memo cache hits / misses (recursive calls included). */
    std::uint64_t iteCacheHits = 0;
    std::uint64_t iteCacheMisses = 0;

    /** Unique-table (hash-consing) hits / misses in makeNode. */
    std::uint64_t uniqueTableHits = 0;
    std::uint64_t uniqueTableMisses = 0;

    /** Entries in the unique table (distinct non-terminal nodes). */
    std::size_t uniqueTableSize = 0;

    /** Nodes allocated, terminals included; equals the peak. */
    std::size_t peakNodes = 0;

    /** Distinct variables created. */
    unsigned variables = 0;
};

/** The constant-false terminal. */
constexpr NodeRef falseNode = 0;

/** The constant-true terminal. */
constexpr NodeRef trueNode = 1;

/**
 * Caller-owned workspace for BddManager::probability().
 *
 * Evaluating a probability needs a per-node memo and a traversal
 * stack. A sweep calling probability() thousands of times with only
 * the per-variable probabilities changing would otherwise pay a fresh
 * hash-map allocation per point; holding one scratch per thread (the
 * scratch is NOT thread-safe, the manager's read-only evaluation is)
 * makes repeated evaluation allocation-free after the first call.
 */
class ProbabilityScratch
{
  public:
    ProbabilityScratch() = default;

    /** Release the held buffers. */
    void
    clear()
    {
        value_.clear();
        value_.shrink_to_fit();
        known_.clear();
        known_.shrink_to_fit();
        stack_.clear();
        stack_.shrink_to_fit();
    }

    /**
     * Evaluations served from already-sized buffers (no allocation).
     * First use and post-clear() use are not reuses; the count is
     * per-scratch, so per-thread sweep scratches each start at zero.
     */
    std::uint64_t reuseCount() const { return reuses_; }

  private:
    friend class BddManager;

    std::uint64_t reuses_ = 0;

    std::vector<double> value_;
    std::vector<std::uint8_t> known_;
    std::vector<NodeRef> stack_;
};

/**
 * Owns all BDD nodes and implements the BDD algebra.
 *
 * Nodes are immutable and hash-consed: structurally equal functions
 * share a single node, so equality of functions is pointer (ref)
 * equality. All NodeRefs returned by a manager are valid for the
 * manager's lifetime; there is no garbage collection (sizes here stay
 * small: tens of thousands of nodes).
 */
class BddManager
{
  public:
    BddManager();

    /** The projection function for variable `index` (x_index). */
    NodeRef var(unsigned index);

    /** Negation of the projection function (!x_index). */
    NodeRef nvar(unsigned index);

    /** Logical NOT. */
    NodeRef notOp(NodeRef f);

    /** Logical AND. */
    NodeRef andOp(NodeRef f, NodeRef g);

    /** Logical OR. */
    NodeRef orOp(NodeRef f, NodeRef g);

    /** Logical XOR. */
    NodeRef xorOp(NodeRef f, NodeRef g);

    /** If-then-else: f ? g : h, the universal ternary connective. */
    NodeRef ite(NodeRef f, NodeRef g, NodeRef h);

    /** AND of a sequence of functions (true for empty input). */
    NodeRef andAll(std::span<const NodeRef> fs);

    /** OR of a sequence of functions (false for empty input). */
    NodeRef orAll(std::span<const NodeRef> fs);

    /**
     * Threshold function: true iff at least `m` of the given functions
     * are true. Built by dynamic programming over partial counts, so
     * the inputs may be arbitrary functions (not just variables).
     *
     * @param fs The functions to count.
     * @param m The required number of true functions (0 gives the
     *          constant true; m > fs.size() gives constant false,
     *          matching the paper's eq. (1) conventions).
     */
    NodeRef atLeast(std::span<const NodeRef> fs, unsigned m);

    /** Cofactor: f with variable `index` fixed to `value`. */
    NodeRef restrict(NodeRef f, unsigned index, bool value);

    /**
     * Probability that the function is true when each variable i is
     * independently true with probability probs[i].
     *
     * Evaluation is read-only: a const manager can serve concurrent
     * probability() calls from many threads (each thread passing its
     * own scratch), which is what the parallel sweep engine does.
     *
     * @param f The function to evaluate.
     * @param probs Per-variable probabilities; must cover every
     *              variable appearing in f.
     */
    double probability(NodeRef f, std::span<const double> probs) const;

    /**
     * As probability(), reusing a caller-owned scratch so repeated
     * evaluation (sweeps) allocates nothing after the first call.
     */
    double probability(NodeRef f, std::span<const double> probs,
                       ProbabilityScratch &scratch) const;

    /** Evaluate the function on a concrete assignment. */
    bool evaluate(NodeRef f, const std::vector<bool> &assignment) const;

    /** Number of (non-terminal) nodes reachable from f. */
    std::size_t nodeCount(NodeRef f) const;

    /** True for the constant nodes. */
    static bool
    terminal(NodeRef f)
    {
        return f <= trueNode;
    }

    /** Top variable index of a non-terminal node. */
    unsigned nodeVariable(NodeRef f) const;

    /** Low child (variable false) of a non-terminal node. */
    NodeRef nodeLow(NodeRef f) const;

    /** High child (variable true) of a non-terminal node. */
    NodeRef nodeHigh(NodeRef f) const;

    /** Total nodes allocated in the manager (diagnostics). */
    std::size_t totalNodes() const { return nodes_.size(); }

    /** Highest variable index created so far, plus one. */
    unsigned variableCount() const { return variable_count_; }

    /** Lifetime engine statistics (cache behaviour, table sizes). */
    BddStats stats() const;

    /**
     * Fold this manager's stats into the global obs registry
     * (counters "bdd.*", gauges "bdd.unique_table_size" /
     * "bdd.peak_nodes" as set-max high-water marks). Callers that own
     * a manager publish once, after the build phase.
     */
    void recordMetrics() const;

  private:
    struct Node
    {
        unsigned var;
        NodeRef low;
        NodeRef high;
    };

    struct NodeKey
    {
        unsigned var;
        NodeRef low;
        NodeRef high;

        bool
        operator==(const NodeKey &other) const
        {
            return var == other.var && low == other.low &&
                   high == other.high;
        }
    };

    struct NodeKeyHash
    {
        std::size_t
        operator()(const NodeKey &k) const
        {
            std::uint64_t h = k.var;
            h = h * 0x9e3779b97f4a7c15ULL + k.low;
            h = h * 0x9e3779b97f4a7c15ULL + k.high;
            h ^= h >> 32;
            return static_cast<std::size_t>(h);
        }
    };

    struct IteKey
    {
        NodeRef f, g, h;

        bool
        operator==(const IteKey &other) const
        {
            return f == other.f && g == other.g && h == other.h;
        }
    };

    struct IteKeyHash
    {
        std::size_t
        operator()(const IteKey &k) const
        {
            std::uint64_t h = k.f;
            h = h * 0x9e3779b97f4a7c15ULL + k.g;
            h = h * 0x9e3779b97f4a7c15ULL + k.h;
            h ^= h >> 32;
            return static_cast<std::size_t>(h);
        }
    };

    /** Variable index of a node; terminals sort after all variables. */
    unsigned topVar(NodeRef f) const;

    /** Create or find the canonical node (var, low, high). */
    NodeRef makeNode(unsigned var, NodeRef low, NodeRef high);

    /** Memoized worker behind restrict(). */
    NodeRef restrictRec(NodeRef f, unsigned index, bool value,
                        std::unordered_map<NodeRef, NodeRef> &memo);

    bool isTerminal(NodeRef f) const { return f <= trueNode; }

    std::vector<Node> nodes_;
    std::unordered_map<NodeKey, NodeRef, NodeKeyHash> unique_;
    std::unordered_map<IteKey, NodeRef, IteKeyHash> ite_cache_;
    unsigned variable_count_ = 0;
    std::uint64_t ite_cache_hits_ = 0;
    std::uint64_t ite_cache_misses_ = 0;
    std::uint64_t unique_hits_ = 0;
    std::uint64_t unique_misses_ = 0;
};

} // namespace sdnav::bdd

#endif // SDNAV_BDD_BDD_HH
