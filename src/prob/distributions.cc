#include "prob/distributions.hh"

#include <cmath>
#include <sstream>

#include "common/error.hh"

namespace sdnav::prob
{

ExponentialDistribution::ExponentialDistribution(double mean)
    : mean_(requirePositive(mean, "mean"))
{}

double
ExponentialDistribution::sample(Rng &rng) const
{
    return rng.exponential(mean_);
}

std::string
ExponentialDistribution::describe() const
{
    std::ostringstream os;
    os << "exp(mean=" << mean_ << ")";
    return os.str();
}

std::unique_ptr<Distribution>
ExponentialDistribution::clone() const
{
    return std::make_unique<ExponentialDistribution>(*this);
}

DeterministicDistribution::DeterministicDistribution(double value)
    : value_(requireNonNegative(value, "value"))
{}

double
DeterministicDistribution::sample(Rng &) const
{
    return value_;
}

std::string
DeterministicDistribution::describe() const
{
    std::ostringstream os;
    os << "det(" << value_ << ")";
    return os.str();
}

std::unique_ptr<Distribution>
DeterministicDistribution::clone() const
{
    return std::make_unique<DeterministicDistribution>(*this);
}

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(requireNonNegative(lo, "lo")), hi_(requireNonNegative(hi, "hi"))
{
    require(lo_ <= hi_, "UniformDistribution requires lo <= hi");
}

double
UniformDistribution::sample(Rng &rng) const
{
    return rng.uniform(lo_, hi_);
}

std::string
UniformDistribution::describe() const
{
    std::ostringstream os;
    os << "uniform(" << lo_ << ", " << hi_ << ")";
    return os.str();
}

std::unique_ptr<Distribution>
UniformDistribution::clone() const
{
    return std::make_unique<UniformDistribution>(*this);
}

WeibullDistribution::WeibullDistribution(double shape, double scale)
    : shape_(requirePositive(shape, "shape")),
      scale_(requirePositive(scale, "scale"))
{}

WeibullDistribution
WeibullDistribution::withMean(double shape, double mean)
{
    requirePositive(shape, "shape");
    requirePositive(mean, "mean");
    // mean = scale * Gamma(1 + 1/shape)  =>  scale = mean / Gamma(...).
    double scale = mean / std::tgamma(1.0 + 1.0 / shape);
    return WeibullDistribution(shape, scale);
}

double
WeibullDistribution::sample(Rng &rng) const
{
    // Inverse CDF: scale * (-ln(1 - U))^(1/shape).
    double u = rng.uniform();
    return scale_ * std::pow(-std::log1p(-u), 1.0 / shape_);
}

double
WeibullDistribution::mean() const
{
    return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

std::string
WeibullDistribution::describe() const
{
    std::ostringstream os;
    os << "weibull(shape=" << shape_ << ", scale=" << scale_ << ")";
    return os.str();
}

std::unique_ptr<Distribution>
WeibullDistribution::clone() const
{
    return std::make_unique<WeibullDistribution>(*this);
}

LogNormalDistribution::LogNormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(requirePositive(sigma, "sigma"))
{}

LogNormalDistribution
LogNormalDistribution::withMean(double mean, double coefficientOfVariation)
{
    requirePositive(mean, "mean");
    requirePositive(coefficientOfVariation, "coefficientOfVariation");
    double cv2 = coefficientOfVariation * coefficientOfVariation;
    double sigma2 = std::log(1.0 + cv2);
    double mu = std::log(mean) - 0.5 * sigma2;
    return LogNormalDistribution(mu, std::sqrt(sigma2));
}

double
LogNormalDistribution::sample(Rng &rng) const
{
    // Box-Muller on two uniforms; one normal variate per call is fine
    // for simulation purposes.
    double u1 = rng.uniform();
    double u2 = rng.uniform();
    // Avoid log(0).
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    return std::exp(mu_ + sigma_ * z);
}

double
LogNormalDistribution::mean() const
{
    return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

std::string
LogNormalDistribution::describe() const
{
    std::ostringstream os;
    os << "lognormal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
    return os.str();
}

std::unique_ptr<Distribution>
LogNormalDistribution::clone() const
{
    return std::make_unique<LogNormalDistribution>(*this);
}

} // namespace sdnav::prob
