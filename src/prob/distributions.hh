/**
 * @file
 * Sampling distributions for failure and repair times in the Monte
 * Carlo simulator.
 *
 * Steady-state availability depends only on the *means* of the
 * failure/repair time distributions (renewal reward theorem), so the
 * paper's exponential assumption is not load-bearing for its results.
 * Providing several shapes lets the simulator demonstrate that
 * insensitivity empirically (see bench_simulation_validation).
 */

#ifndef SDNAV_PROB_DISTRIBUTIONS_HH
#define SDNAV_PROB_DISTRIBUTIONS_HH

#include <memory>
#include <string>

#include "prob/rng.hh"

namespace sdnav::prob
{

/**
 * A positive continuous distribution that can be sampled for event
 * times and reports its analytic mean.
 */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Draw one variate. */
    virtual double sample(Rng &rng) const = 0;

    /** Analytic mean of the distribution. */
    virtual double mean() const = 0;

    /** Short human-readable description, e.g. "exp(mean=5000)". */
    virtual std::string describe() const = 0;

    /** Deep copy. */
    virtual std::unique_ptr<Distribution> clone() const = 0;
};

/** Exponential distribution parameterized by its mean. */
class ExponentialDistribution final : public Distribution
{
  public:
    explicit ExponentialDistribution(double mean);

    double sample(Rng &rng) const override;
    double mean() const override { return mean_; }
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

  private:
    double mean_;
};

/** Degenerate distribution: always returns the same value. */
class DeterministicDistribution final : public Distribution
{
  public:
    explicit DeterministicDistribution(double value);

    double sample(Rng &rng) const override;
    double mean() const override { return value_; }
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

  private:
    double value_;
};

/** Continuous uniform on [lo, hi], 0 <= lo <= hi. */
class UniformDistribution final : public Distribution
{
  public:
    UniformDistribution(double lo, double hi);

    double sample(Rng &rng) const override;
    double mean() const override { return 0.5 * (lo_ + hi_); }
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

  private:
    double lo_;
    double hi_;
};

/**
 * Weibull distribution with shape k and scale lambda; models wear-out
 * (k > 1) or infant-mortality (k < 1) failure behavior.
 */
class WeibullDistribution final : public Distribution
{
  public:
    WeibullDistribution(double shape, double scale);

    /** Construct a Weibull with the given shape whose mean is `mean`. */
    static WeibullDistribution withMean(double shape, double mean);

    double sample(Rng &rng) const override;
    double mean() const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

  private:
    double shape_;
    double scale_;
};

/** Lognormal distribution parameterized by mu and sigma of log-space. */
class LogNormalDistribution final : public Distribution
{
  public:
    LogNormalDistribution(double mu, double sigma);

    /**
     * Construct a lognormal with the given coefficient of variation
     * and mean.
     */
    static LogNormalDistribution withMean(double mean,
                                          double coefficientOfVariation);

    double sample(Rng &rng) const override;
    double mean() const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

  private:
    double mu_;
    double sigma_;
};

} // namespace sdnav::prob

#endif // SDNAV_PROB_DISTRIBUTIONS_HH
