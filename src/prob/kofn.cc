#include "prob/kofn.hh"

#include <cmath>

#include "common/error.hh"
#include "prob/combinatorics.hh"

namespace sdnav::prob
{

double
kOfN(unsigned m, unsigned n, double alpha)
{
    requireProbability(alpha, "alpha");
    if (m > n)
        return 0.0; // Paper eq. (1), m > n case.
    if (m == 0)
        return 1.0;
    return binomialTailAtLeast(n, m, alpha);
}

double
kOfNDerivative(unsigned m, unsigned n, double alpha)
{
    requireProbability(alpha, "alpha");
    if (m > n || m == 0)
        return 0.0;
    // d/da P[X >= m] for X ~ Bin(n, a) has the closed form
    // n * C(n-1, m-1) * a^(m-1) * (1-a)^(n-m).
    double coeff = static_cast<double>(n) *
        static_cast<double>(binomialCoefficient(n - 1, m - 1));
    return coeff * std::pow(alpha, static_cast<double>(m - 1)) *
           std::pow(1.0 - alpha, static_cast<double>(n - m));
}

double
quorumAvailability(unsigned failuresTolerated, double alpha)
{
    return kOfN(quorumSize(failuresTolerated),
                clusterSize(failuresTolerated), alpha);
}

} // namespace sdnav::prob
