/**
 * @file
 * Exact small-number combinatorics used by the k-of-n availability
 * algebra and the supervisor-conditioning sums (paper eqs. 1 and 14).
 */

#ifndef SDNAV_PROB_COMBINATORICS_HH
#define SDNAV_PROB_COMBINATORICS_HH

#include <cstdint>

namespace sdnav::prob
{

/**
 * Binomial coefficient C(n, k) computed exactly in unsigned 64-bit
 * arithmetic (valid for the ranges used here, n <= 62).
 *
 * @param n Set size (0 <= n <= 62).
 * @param k Subset size; returns 0 when k > n.
 */
std::uint64_t binomialCoefficient(unsigned n, unsigned k);

/**
 * Binomial probability mass: C(n, k) p^k (1-p)^(n-k).
 *
 * @param n Number of independent trials.
 * @param k Number of successes.
 * @param p Per-trial success probability in [0, 1].
 */
double binomialPmf(unsigned n, unsigned k, double p);

/**
 * Upper-tail binomial probability: P[X >= m] for X ~ Binomial(n, p).
 *
 * This is exactly the paper's eq. (1) block availability A_{m/n}(p)
 * viewed as a tail sum; kept here as the probabilistic primitive.
 */
double binomialTailAtLeast(unsigned n, unsigned m, double p);

} // namespace sdnav::prob

#endif // SDNAV_PROB_COMBINATORICS_HH
