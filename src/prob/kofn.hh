/**
 * @file
 * The paper's eq. (1): availability of an 'm of n' block of identical
 * independent elements, plus the closed-form specializations the paper
 * uses repeatedly (A_{1/2}, A_{2/2}, A_{1/3}, A_{2/3}) and quorum
 * helpers for generalized 2N+1 clusters.
 */

#ifndef SDNAV_PROB_KOFN_HH
#define SDNAV_PROB_KOFN_HH

namespace sdnav::prob
{

/**
 * Block availability A_{m/n}(alpha), paper eq. (1).
 *
 * Availability of a block that requires at least m of n identical,
 * independent elements of availability alpha to be up. Returns 0 when
 * m > n (the paper's convention), and 1 when m == 0.
 *
 * @param m Required number of up elements.
 * @param n Total number of elements.
 * @param alpha Per-element availability in [0, 1].
 */
double kOfN(unsigned m, unsigned n, double alpha);

/**
 * Derivative of A_{m/n}(alpha) with respect to alpha, used by
 * sensitivity analysis. d/da sum_{i=0}^{n-m} C(n,i) a^{n-i}(1-a)^i.
 */
double kOfNDerivative(unsigned m, unsigned n, double alpha);

/**
 * Quorum size for a 2N+1 cluster tolerating N failures: N+1 up out of
 * 2N+1 ("2 of 3" when N = 1).
 *
 * @param failuresTolerated N, the number of tolerated failures.
 */
constexpr unsigned
quorumSize(unsigned failuresTolerated)
{
    return failuresTolerated + 1;
}

/** Cluster size of a 2N+1 deployment. */
constexpr unsigned
clusterSize(unsigned failuresTolerated)
{
    return 2 * failuresTolerated + 1;
}

/**
 * Availability of the quorum of a 2N+1 cluster: A_{N+1 / 2N+1}(alpha).
 */
double quorumAvailability(unsigned failuresTolerated, double alpha);

} // namespace sdnav::prob

#endif // SDNAV_PROB_KOFN_HH
