/**
 * @file
 * Random number generation for the Monte Carlo simulator: a thin,
 * reproducible wrapper over a SplitMix64-seeded xoshiro256** engine,
 * with support for deriving independent streams from a master seed.
 */

#ifndef SDNAV_PROB_RNG_HH
#define SDNAV_PROB_RNG_HH

#include <array>
#include <cstdint>

namespace sdnav::prob
{

/**
 * SplitMix64 step, used for seeding. Public so tests can verify the
 * reference sequence.
 *
 * @param state Seed state, advanced in place.
 * @return The next 64-bit output.
 */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * xoshiro256** pseudo-random generator (Blackman & Vigna). Chosen over
 * std::mt19937_64 for speed and compact state; statistically strong
 * for simulation workloads.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** UniformRandomBitGenerator interface. */
    std::uint64_t operator()() { return next(); }
    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ULL; }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /**
     * Exponential variate with the given mean (inverse rate).
     * @param mean Mean of the distribution, > 0.
     */
    double exponential(double mean);

    /** Uniform integer in [0, bound), bound > 0, without modulo bias. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /**
     * Derive an independent child stream: equivalent to a long jump in
     * seed space, so per-entity streams do not overlap in practice.
     * Depends only on the construction seed, never on how many values
     * have been drawn — replicated simulations rely on this to give
     * every replication the same stream regardless of thread count.
     *
     * @param streamIndex Index of the derived stream.
     */
    Rng deriveStream(std::uint64_t streamIndex) const;

    /** The seed this generator was constructed from. */
    std::uint64_t seed() const { return seed_; }

  private:
    std::array<std::uint64_t, 4> state_;
    std::uint64_t seed_;
};

} // namespace sdnav::prob

#endif // SDNAV_PROB_RNG_HH
