#include "prob/processAvailability.hh"

#include <cmath>

#include "common/error.hh"
#include "common/units.hh"

namespace sdnav::prob
{

void
ProcessTimings::validate() const
{
    requirePositive(mtbfHours, "mtbfHours");
    requireNonNegative(autoRestartHours, "autoRestartHours");
    requireNonNegative(manualRestartHours, "manualRestartHours");
}

double
ProcessTimings::supervisedAvailability() const
{
    validate();
    return availabilityFromMtbfMttr(mtbfHours, autoRestartHours);
}

double
ProcessTimings::unsupervisedAvailability() const
{
    validate();
    return availabilityFromMtbfMttr(mtbfHours, manualRestartHours);
}

double
scenario1EffectiveRestartHours(const ProcessTimings &timings,
                               double exposureWindowHours)
{
    timings.validate();
    requireNonNegative(exposureWindowHours, "exposureWindowHours");
    double p_exposed = 1.0 - std::exp(-exposureWindowHours /
                                      timings.mtbfHours);
    return (1.0 - p_exposed) * timings.autoRestartHours +
           p_exposed * timings.manualRestartHours;
}

double
scenario1EffectiveAvailability(const ProcessTimings &timings,
                               double exposureWindowHours)
{
    double r_star = scenario1EffectiveRestartHours(timings,
                                                   exposureWindowHours);
    return availabilityFromMtbfMttr(timings.mtbfHours, r_star);
}

double
scenario2EffectiveMtbfHours(double processMtbfHours,
                            double supervisorMtbfHours)
{
    requirePositive(processMtbfHours, "processMtbfHours");
    requirePositive(supervisorMtbfHours, "supervisorMtbfHours");
    return 1.0 / (1.0 / processMtbfHours + 1.0 / supervisorMtbfHours);
}

double
scenario2EffectiveRestartHours(const ProcessTimings &timings,
                               double supervisorMtbfHours)
{
    timings.validate();
    requirePositive(supervisorMtbfHours, "supervisorMtbfHours");
    double rate_process = 1.0 / timings.mtbfHours;
    double rate_supervisor = 1.0 / supervisorMtbfHours;
    double total = rate_process + rate_supervisor;
    return (rate_process * timings.autoRestartHours +
            rate_supervisor * timings.manualRestartHours) / total;
}

double
scenario2EffectiveAvailability(const ProcessTimings &timings,
                               double supervisorMtbfHours)
{
    double f_star = scenario2EffectiveMtbfHours(timings.mtbfHours,
                                                supervisorMtbfHours);
    double r_star = scenario2EffectiveRestartHours(timings,
                                                   supervisorMtbfHours);
    return availabilityFromMtbfMttr(f_star, r_star);
}

} // namespace sdnav::prob
