#include "prob/combinatorics.hh"

#include <cmath>

#include "common/error.hh"

namespace sdnav::prob
{

std::uint64_t
binomialCoefficient(unsigned n, unsigned k)
{
    require(n <= 62, "binomialCoefficient supports n <= 62");
    if (k > n)
        return 0;
    if (k > n - k)
        k = n - k;
    std::uint64_t result = 1;
    for (unsigned i = 1; i <= k; ++i) {
        // Multiply before divide; the running value is always an exact
        // integer because C(n, i) is integral.
        result = result * (n - k + i) / i;
    }
    return result;
}

double
binomialPmf(unsigned n, unsigned k, double p)
{
    requireProbability(p, "p");
    if (k > n)
        return 0.0;
    double coeff = static_cast<double>(binomialCoefficient(n, k));
    return coeff * std::pow(p, static_cast<double>(k)) *
           std::pow(1.0 - p, static_cast<double>(n - k));
}

double
binomialTailAtLeast(unsigned n, unsigned m, double p)
{
    requireProbability(p, "p");
    if (m > n)
        return 0.0;
    double sum = 0.0;
    for (unsigned k = m; k <= n; ++k)
        sum += binomialPmf(n, k, p);
    // Guard against accumulated rounding slightly exceeding 1.
    return sum > 1.0 ? 1.0 : sum;
}

} // namespace sdnav::prob
