/**
 * @file
 * Process-level availability derivations from MTBF / restart times,
 * including the supervisor-coupling analysis of paper section VI.A.
 *
 * The paper distinguishes two restart paths for a failed process:
 * auto-restart by its node-role supervisor (mean time R) and manual
 * restart by an operator (mean time R_S). Two operational scenarios
 * then govern what happens when the *supervisor itself* fails:
 *
 * - Scenario 1 ("supervisor not required"): the node-role keeps
 *   running unsupervised; processes failing during the supervisor
 *   outage window need manual restart, but the window is short so
 *   process availability is essentially unchanged (A* ~= A).
 * - Scenario 2 ("supervisor required"): a supervisor failure forces an
 *   immediate restart of the whole node-role, so every process
 *   effectively inherits the supervisor's availability (A* ~= A_S).
 */

#ifndef SDNAV_PROB_PROCESS_AVAILABILITY_HH
#define SDNAV_PROB_PROCESS_AVAILABILITY_HH

namespace sdnav::prob
{

/**
 * Failure/restart timing parameters for a process class. All times are
 * in hours (any consistent unit works; hours match the paper).
 */
struct ProcessTimings
{
    /** Mean time between failures, F. Paper default: 5000 h. */
    double mtbfHours = 5000.0;

    /** Mean time to auto-restart under supervisor control, R. 0.1 h. */
    double autoRestartHours = 0.1;

    /** Mean time to manually restart, R_S. Paper default: 1 h. */
    double manualRestartHours = 1.0;

    /** Throw ModelError if any field is out of range. */
    void validate() const;

    /** Supervised process availability A = F / (F + R). */
    double supervisedAvailability() const;

    /** Unsupervised process availability A_S = F / (F + R_S). */
    double unsupervisedAvailability() const;
};

/**
 * Scenario 1 effective restart time R*: a process failing during a
 * supervisor outage (of the given mean exposure window) needs manual
 * restart; otherwise it is auto-restarted.
 *
 * R* = e^(-w/F) R + (1 - e^(-w/F)) R_S, with w the exposure window
 * (paper example: 10 h until the next maintenance window).
 *
 * @param timings Process timing parameters.
 * @param exposureWindowHours Mean unsupervised exposure w, in hours.
 */
double scenario1EffectiveRestartHours(const ProcessTimings &timings,
                                      double exposureWindowHours);

/**
 * Scenario 1 effective process availability A* = F / (F + R*).
 */
double scenario1EffectiveAvailability(const ProcessTimings &timings,
                                      double exposureWindowHours);

/**
 * Scenario 2 effective failure interval F*: the process goes down when
 * either it fails (rate 1/F) or its supervisor fails (rate 1/F_s), so
 * F* = 1 / (1/F + 1/F_s). With equal rates this is the paper's F/2.
 *
 * @param processMtbfHours Process MTBF F.
 * @param supervisorMtbfHours Supervisor MTBF F_s.
 */
double scenario2EffectiveMtbfHours(double processMtbfHours,
                                   double supervisorMtbfHours);

/**
 * Scenario 2 effective restart time R*: the restart path is the
 * process's own auto-restart R with probability proportional to its
 * failure rate, and the manual node-role restart R_S otherwise. With
 * equal rates this is the paper's (R + R_S) / 2.
 */
double scenario2EffectiveRestartHours(const ProcessTimings &timings,
                                      double supervisorMtbfHours);

/**
 * Scenario 2 effective process availability A* = F* / (F* + R*).
 * With the paper's defaults this is ~0.9998, i.e. the process inherits
 * the supervisor availability A_S.
 */
double scenario2EffectiveAvailability(const ProcessTimings &timings,
                                      double supervisorMtbfHours);

} // namespace sdnav::prob

#endif // SDNAV_PROB_PROCESS_AVAILABILITY_HH
