#include "prob/special.hh"

#include <cmath>
#include <limits>

#include "common/error.hh"

namespace sdnav::prob
{

namespace
{

/** Series expansion of P(a, x), convergent for x < a + 1. */
double
gammaPSeries(double a, double x)
{
    double ap = a;
    double sum = 1.0 / a;
    double term = sum;
    for (int n = 0; n < 500; ++n) {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if (std::fabs(term) < std::fabs(sum) * 1e-16)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/** Lentz continued fraction for Q(a, x), for x >= a + 1. */
double
gammaQContinuedFraction(double a, double x)
{
    const double tiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= 500; ++i) {
        double an = -static_cast<double>(i) *
                    (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = b + an / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        double delta = d * c;
        h *= delta;
        if (std::fabs(delta - 1.0) < 1e-16)
            break;
    }
    return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

} // anonymous namespace

double
regularizedLowerIncompleteGamma(double a, double x)
{
    requirePositive(a, "a");
    if (std::isinf(x) && x > 0.0)
        return 1.0;
    requireNonNegative(x, "x");
    if (x == 0.0)
        return 0.0;
    if (x < a + 1.0)
        return gammaPSeries(a, x);
    return 1.0 - gammaQContinuedFraction(a, x);
}

double
weibullTruncatedMean(double shape, double scale, double period)
{
    requirePositive(shape, "shape");
    requirePositive(scale, "scale");
    requireNonNegative(period, "period");
    if (period == 0.0)
        return 0.0;
    double a = 1.0 / shape;
    double x = std::pow(period / scale, shape);
    return scale / shape * std::tgamma(a) *
           regularizedLowerIncompleteGamma(a, x);
}

} // namespace sdnav::prob
