#include "prob/rng.hh"

#include <cmath>

#include "common/error.hh"

namespace sdnav::prob
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
    : seed_(seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
    // All-zero state is invalid for xoshiro; SplitMix64 cannot emit
    // four zeros in a row, but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 &&
        state_[3] == 0) {
        state_[0] = 1;
    }
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    require(lo <= hi, "uniform(lo, hi) requires lo <= hi");
    return lo + (hi - lo) * uniform();
}

double
Rng::exponential(double mean)
{
    requirePositive(mean, "mean");
    // -mean * log(1 - U); 1 - U in (0, 1] avoids log(0).
    return -mean * std::log1p(-uniform());
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    require(bound > 0, "uniformInt bound must be > 0");
    // Rejection sampling to remove modulo bias.
    std::uint64_t threshold = (~bound + 1) % bound; // (2^64 - bound) mod bound
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

Rng
Rng::deriveStream(std::uint64_t streamIndex) const
{
    // Mix the master seed with the stream index through SplitMix64 so
    // nearby indices give unrelated states.
    std::uint64_t mix = seed_ ^ (0xd1b54a32d192ed03ULL * (streamIndex + 1));
    std::uint64_t sm = mix;
    return Rng(splitMix64(sm));
}

} // namespace sdnav::prob
