/**
 * @file
 * Special functions needed by the analytic models: the regularized
 * lower incomplete gamma function P(a, x) (series expansion for
 * small x, Lentz continued fraction otherwise).
 *
 * P(a, x) = gamma(a, x) / Gamma(a) is, among other things, the CDF
 * of the Gamma distribution and the exact form of the truncated
 * Weibull mean used by the rejuvenation analysis:
 *
 *   integral_0^T exp(-(t/s)^k) dt = (s / k) Gamma(1/k) P(1/k, (T/s)^k)
 */

#ifndef SDNAV_PROB_SPECIAL_HH
#define SDNAV_PROB_SPECIAL_HH

namespace sdnav::prob
{

/**
 * Regularized lower incomplete gamma P(a, x), for a > 0, x >= 0.
 * Accurate to ~1e-14 over the ranges used here.
 */
double regularizedLowerIncompleteGamma(double a, double x);

/**
 * Expected value of min(X, T) for X ~ Weibull(shape, scale) — the
 * truncated mean / expected uptime until failure-or-period-T:
 * integral_0^T S(t) dt.
 *
 * @param shape Weibull shape k > 0.
 * @param scale Weibull scale s > 0.
 * @param period Truncation point T >= 0.
 */
double weibullTruncatedMean(double shape, double scale, double period);

} // namespace sdnav::prob

#endif // SDNAV_PROB_SPECIAL_HH
