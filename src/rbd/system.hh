/**
 * @file
 * A complete reliability block diagram system: the component table
 * (names and availabilities) plus the structure tree, with three
 * evaluation engines and component importance measures.
 */

#ifndef SDNAV_RBD_SYSTEM_HH
#define SDNAV_RBD_SYSTEM_HH

#include <optional>
#include <string>
#include <vector>

#include "bdd/bdd.hh"
#include "prob/rng.hh"
#include "rbd/block.hh"

namespace sdnav::rbd
{

/** Result of a Monte Carlo availability estimate. */
struct MonteCarloResult
{
    /** Point estimate of availability. */
    double estimate = 0.0;

    /** Standard error of the estimate. */
    double standardError = 0.0;

    /** Number of samples drawn. */
    std::size_t samples = 0;

    /** Lower edge of the 95% confidence interval (clamped to [0,1]). */
    double ci95Low() const;

    /** Upper edge of the 95% confidence interval (clamped to [0,1]). */
    double ci95High() const;

    /** True if the interval [ci95Low, ci95High] contains `value`. */
    bool brackets(double value) const;
};

/** Knobs for the importance ranking engines. */
struct ImportanceOptions
{
    /**
     * Run a sifting reorder pass on the compiled diagram before the
     * per-component restrict loop. Off by default: reordering changes
     * diagram shape (never values), and the paper-scale topologies
     * compile compactly under the natural component order.
     */
    bool reorder = false;

    /** Tuning for the reorder pass when enabled. */
    bdd::ReorderOptions reorderOptions{};
};

/** One row of an importance ranking. */
struct ImportanceEntry
{
    ComponentId component;
    std::string name;

    /** Birnbaum importance: dA_sys / dA_i. */
    double birnbaum;

    /**
     * Criticality importance: probability that the component is both
     * failed and critical, given the system is down. This is the
     * "weak link" measure the paper's conclusions call for.
     */
    double criticality;
};

/**
 * An RBD system: components with availabilities, a structure tree,
 * and evaluation.
 *
 * Evaluation engines:
 * - availabilityFormula(): recursive product/Poisson-binomial rules.
 *   Exact only when no component is shared between subtrees (the tree
 *   is then a tree of independent blocks); throws ModelError if the
 *   system shares components.
 * - availabilityExact(): compiles the structure function to a BDD and
 *   evaluates the probability exactly, handling shared components.
 * - availabilityMonteCarlo(): samples component states; useful as an
 *   independent statistical check and for very large systems.
 */
class RbdSystem
{
  public:
    RbdSystem() = default;

    /**
     * Add a component to the table.
     *
     * @param name Human-readable component name.
     * @param availability Steady-state availability in [0, 1].
     * @return The component's id for use in Block leaves.
     */
    ComponentId addComponent(std::string name, double availability);

    /** Set the structure tree. Must reference only known components. */
    void setRoot(Block root);

    /** The structure tree. Throws if not set. */
    const Block &root() const;

    /** Number of components in the table. */
    std::size_t componentCount() const { return availabilities_.size(); }

    /** A component's name. */
    const std::string &componentName(ComponentId id) const;

    /** A component's availability. */
    double componentAvailability(ComponentId id) const;

    /** Update a component's availability (for sweeps). */
    void setComponentAvailability(ComponentId id, double availability);

    /** True if any component appears in more than one leaf. */
    bool hasSharedComponents() const;

    /**
     * Availability by recursive block formulas (series product,
     * parallel complement product, heterogeneous k-of-n via the
     * Poisson-binomial tail). Exact for tree-independent systems.
     *
     * @throws ModelError if the system has shared components.
     */
    double availabilityFormula() const;

    /** Exact availability via BDD compilation. */
    double availabilityExact() const;

    /**
     * Monte Carlo availability estimate.
     *
     * @param samples Number of independent state samples.
     * @param rng Random stream to consume.
     */
    MonteCarloResult availabilityMonteCarlo(std::size_t samples,
                                            prob::Rng &rng) const;

    /**
     * Birnbaum importance of a component: the partial derivative of
     * system availability with respect to the component availability,
     * P[system up | comp up] - P[system up | comp down].
     */
    double birnbaumImportance(ComponentId id) const;

    /**
     * Criticality importance: Birnbaum scaled by the component's
     * unavailability over the system unavailability. Returns 0 when
     * the system unavailability is 0.
     */
    double criticalityImportance(ComponentId id) const;

    /** All components ranked by descending criticality importance. */
    std::vector<ImportanceEntry>
    rankImportance(const ImportanceOptions &options = {}) const;

    /**
     * Compile the structure function into the given BDD manager, with
     * component i mapped to BDD variable i.
     */
    bdd::NodeRef compile(bdd::BddManager &manager) const;

    /** A snapshot of the current per-component availabilities. */
    const std::vector<double> &
    availabilities() const
    {
        return availabilities_;
    }

  private:
    void checkComponent(ComponentId id) const;
    bdd::NodeRef compileBlock(bdd::BddManager &manager,
                              const Block &block) const;
    double formulaFor(const Block &block) const;

    std::vector<std::string> names_;
    std::vector<double> availabilities_;
    std::optional<Block> root_;
};

/**
 * A structure function compiled to a BDD once, for repeated
 * probability evaluation with varying per-component availabilities.
 *
 * availabilityExact() rebuilds the diagram on every call, which is
 * the dominant cost of sweep loops: the structure function depends
 * only on the topology, not on the availabilities. Compile once,
 * then evaluate per sweep point.
 *
 * Evaluation is const and touches no manager state, so one compiled
 * system can serve read-only evaluation from many threads
 * concurrently (give each thread its own ProbabilityScratch).
 */
class CompiledRbd
{
  public:
    /** Build-time knobs for a compiled structure function. */
    struct Options
    {
        /** Sift the diagram after compilation (values unchanged). */
        bool reorder = false;

        /** Tuning for the reorder pass when enabled. */
        bdd::ReorderOptions reorderOptions{};

        /**
         * Compile budget (wall deadline / live-node cap); enforced
         * across the whole build including the optional reorder
         * pass. Exceeding it throws bdd::BudgetExceeded out of the
         * constructor. Zeroed fields (the default) are unlimited.
         */
        bdd::StepBudget budget{};
    };

    /** Compile the system's structure function. */
    explicit CompiledRbd(const RbdSystem &system)
        : CompiledRbd(system, Options())
    {
    }

    /** Compile with explicit build-time knobs. */
    CompiledRbd(const RbdSystem &system, const Options &options);

    /**
     * Probability that the system is up under the given
     * per-component availabilities (indexed by ComponentId; must
     * cover every component in the structure function).
     */
    double probability(std::span<const double> availabilities) const;

    /** As probability(), reusing a caller-owned scratch buffer. */
    double probability(std::span<const double> availabilities,
                       bdd::ProbabilityScratch &scratch) const;

    /** Nodes reachable from the root (diagram size). */
    std::size_t nodeCount() const;

    /** Total nodes allocated in the manager (growth diagnostics). */
    std::size_t totalNodes() const { return manager_.totalNodes(); }

    /** The compiled root function. */
    bdd::NodeRef root() const { return root_; }

    /** The owning manager (read-only evaluation entry points). */
    const bdd::BddManager &manager() const { return manager_; }

  private:
    bdd::BddManager manager_;
    bdd::NodeRef root_;
};

} // namespace sdnav::rbd

#endif // SDNAV_RBD_SYSTEM_HH
