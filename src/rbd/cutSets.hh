/**
 * @file
 * Minimal cut set extraction.
 *
 * A *cut set* is a set of components whose simultaneous failure takes
 * the system down even with every other component up; it is minimal
 * if no proper subset is also a cut set. Minimal cut sets are the
 * failure-mode-analysis view of a structure function: order-1 sets
 * are single points of failure (the paper's vRouter processes), and
 * low-order sets name the dominant combinations (the paper's "one
 * Database supervisor plus a Database process on another node").
 *
 * Extraction walks the system's BDD once with memoization, combining
 * child families with subsumption filtering (valid for the coherent
 * structures RBDs produce). Enumeration can be truncated by order:
 * high-order cut sets of highly available components contribute
 * negligibly (their probability carries (1-A)^order).
 */

#ifndef SDNAV_RBD_CUT_SETS_HH
#define SDNAV_RBD_CUT_SETS_HH

#include <cstddef>
#include <string>
#include <vector>

#include "rbd/system.hh"

namespace sdnav::rbd
{

/** One minimal cut set with its rare-event probability. */
struct CutSet
{
    /** Component ids in ascending order. */
    std::vector<ComponentId> components;

    /**
     * Probability that exactly this set is failed (the product of the
     * member unavailabilities) — the rare-event contribution of the
     * cut set to system unavailability.
     */
    double probability = 0.0;

    /** Cut set order (number of components). */
    std::size_t order() const { return components.size(); }

    /** Render as "{a, b}" using the system's component names. */
    std::string describe(const RbdSystem &system) const;
};

/** Options controlling cut set extraction. */
struct CutSetOptions
{
    /** Drop cut sets larger than this order. */
    std::size_t maxOrder = 3;

    /**
     * Abort (throw ModelError) if intermediate families exceed this
     * many sets — a guard against non-sparse structures.
     */
    std::size_t maxSets = 200000;
};

/**
 * All minimal cut sets of the system up to the configured order,
 * sorted by descending probability (ties by ascending order).
 */
std::vector<CutSet> minimalCutSets(const RbdSystem &system,
                                   const CutSetOptions &options = {});

/**
 * Rare-event upper bound on system unavailability from a cut set
 * family: the sum of cut set probabilities. For highly available
 * components this is tight from above (inclusion-exclusion's first
 * term).
 */
double rareEventUnavailability(const std::vector<CutSet> &cutSets);

} // namespace sdnav::rbd

#endif // SDNAV_RBD_CUT_SETS_HH
