#include "rbd/block.hh"

#include <sstream>

#include "common/error.hh"

namespace sdnav::rbd
{

Block
component(ComponentId id)
{
    auto node = std::make_shared<Block::Node>();
    node->kind = Block::Kind::Component;
    node->component = id;
    return Block(std::move(node));
}

Block
series(std::vector<Block> children)
{
    require(!children.empty(), "series block requires children");
    auto node = std::make_shared<Block::Node>();
    node->kind = Block::Kind::Series;
    node->children = std::move(children);
    return Block(std::move(node));
}

Block
parallel(std::vector<Block> children)
{
    require(!children.empty(), "parallel block requires children");
    auto node = std::make_shared<Block::Node>();
    node->kind = Block::Kind::Parallel;
    node->children = std::move(children);
    return Block(std::move(node));
}

Block
kOfN(unsigned m, std::vector<Block> children)
{
    auto node = std::make_shared<Block::Node>();
    node->kind = Block::Kind::KOfN;
    node->required = m;
    node->children = std::move(children);
    return Block(std::move(node));
}

void
Block::collectComponents(std::vector<ComponentId> &out) const
{
    if (kind() == Kind::Component) {
        out.push_back(componentId());
        return;
    }
    for (const Block &child : children())
        child.collectComponents(out);
}

bool
Block::evaluate(const std::vector<bool> &componentUp) const
{
    switch (kind()) {
      case Kind::Component:
        require(componentId() < componentUp.size(),
                "component state vector too small");
        return componentUp[componentId()];
      case Kind::Series:
        for (const Block &child : children()) {
            if (!child.evaluate(componentUp))
                return false;
        }
        return true;
      case Kind::Parallel:
        for (const Block &child : children()) {
            if (child.evaluate(componentUp))
                return true;
        }
        return false;
      case Kind::KOfN: {
        unsigned up = 0;
        unsigned remaining = static_cast<unsigned>(children().size());
        for (const Block &child : children()) {
            if (child.evaluate(componentUp))
                ++up;
            --remaining;
            if (up >= required())
                return true;
            if (up + remaining < required())
                return false;
        }
        return up >= required();
      }
    }
    return false; // Unreachable.
}

std::string
Block::describe(const std::vector<std::string> &names) const
{
    std::ostringstream os;
    switch (kind()) {
      case Kind::Component:
        if (componentId() < names.size())
            os << names[componentId()];
        else
            os << "c" << componentId();
        break;
      case Kind::Series:
      case Kind::Parallel:
      case Kind::KOfN: {
        if (kind() == Kind::Series)
            os << "series(";
        else if (kind() == Kind::Parallel)
            os << "parallel(";
        else
            os << required() << "of" << children().size() << "(";
        bool first = true;
        for (const Block &child : children()) {
            if (!first)
                os << ", ";
            first = false;
            os << child.describe(names);
        }
        os << ")";
        break;
      }
    }
    return os.str();
}

} // namespace sdnav::rbd
