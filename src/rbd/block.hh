/**
 * @file
 * Reliability block diagram (RBD) structure AST.
 *
 * An RBD describes the Boolean structure function of a system: which
 * combinations of up components leave the system up. Blocks compose as
 * series ("all children required"), parallel ("any child suffices"),
 * and k-of-n ("at least m children required" — the quorum pattern at
 * the heart of the paper's models).
 *
 * Leaves reference components by index into an external component
 * table (see RbdSystem). The same component may appear in several
 * leaves — that is how shared infrastructure (a host under multiple
 * role VMs, a rack under multiple hosts) is expressed — and the
 * evaluation engines handle the induced dependence exactly.
 */

#ifndef SDNAV_RBD_BLOCK_HH
#define SDNAV_RBD_BLOCK_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace sdnav::rbd
{

/** Index of a component within an RbdSystem's component table. */
using ComponentId = std::size_t;

/**
 * A node of the RBD structure tree. Immutable and cheaply copyable
 * (shared internally); build with the free factory functions below.
 */
class Block
{
  public:
    /** The structural kind of a block. */
    enum class Kind { Component, Series, Parallel, KOfN };

    /** The kind of this block. */
    Kind kind() const { return node_->kind; }

    /** Component id (valid only for Kind::Component). */
    ComponentId componentId() const { return node_->component; }

    /** Required child count m (valid only for Kind::KOfN). */
    unsigned required() const { return node_->required; }

    /** Children (empty for Kind::Component). */
    const std::vector<Block> &children() const { return node_->children; }

    /** Collect every component id referenced under this block. */
    void collectComponents(std::vector<ComponentId> &out) const;

    /**
     * Evaluate the structure function on a concrete component-state
     * assignment.
     *
     * @param componentUp Per-component up/down states, indexed by
     *                    ComponentId.
     */
    bool evaluate(const std::vector<bool> &componentUp) const;

    /** Render a compact textual form, e.g. "2of3(c0, c1, c2)". */
    std::string describe(const std::vector<std::string> &names) const;

  private:
    struct Node
    {
        Kind kind;
        ComponentId component = 0;
        unsigned required = 0;
        std::vector<Block> children;
    };

    explicit Block(std::shared_ptr<const Node> node)
        : node_(std::move(node))
    {}

    std::shared_ptr<const Node> node_;

    friend Block component(ComponentId id);
    friend Block series(std::vector<Block> children);
    friend Block parallel(std::vector<Block> children);
    friend Block kOfN(unsigned m, std::vector<Block> children);
};

/** Leaf block referencing one component. */
Block component(ComponentId id);

/** Series block: up iff every child is up. Requires >= 1 child. */
Block series(std::vector<Block> children);

/** Parallel block: up iff any child is up. Requires >= 1 child. */
Block parallel(std::vector<Block> children);

/**
 * k-of-n block: up iff at least m children are up. m == 0 is constant
 * up; m > n is constant down (the paper's eq. (1) conventions).
 */
Block kOfN(unsigned m, std::vector<Block> children);

} // namespace sdnav::rbd

#endif // SDNAV_RBD_BLOCK_HH
