#include "rbd/cutSets.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "bdd/bdd.hh"
#include "common/error.hh"

namespace sdnav::rbd
{

std::string
CutSet::describe(const RbdSystem &system) const
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (ComponentId id : components) {
        if (!first)
            os << ", ";
        first = false;
        os << system.componentName(id);
    }
    os << "}";
    return os.str();
}

namespace
{

/** A family of sorted component-id sets. */
using Family = std::vector<std::vector<unsigned>>;

/** True if some member of `family` is a subset of `candidate`. */
bool
subsumed(const Family &family, const std::vector<unsigned> &candidate)
{
    for (const auto &member : family) {
        if (member.size() <= candidate.size() &&
            std::includes(candidate.begin(), candidate.end(),
                          member.begin(), member.end())) {
            return true;
        }
    }
    return false;
}

/**
 * Recursive minimal cut set extraction over the (coherent) success
 * BDD. Variables below a node all have larger indices, so sets from
 * child families never contain the node's variable.
 */
class Extractor
{
  public:
    Extractor(const bdd::BddManager &manager,
              const CutSetOptions &options)
        : manager_(manager), options_(options)
    {}

    const Family &
    cuts(bdd::NodeRef f)
    {
        auto it = memo_.find(f);
        if (it != memo_.end())
            return it->second;

        Family result;
        if (f == bdd::trueNode) {
            // A constant-true function cannot be failed.
        } else if (f == bdd::falseNode) {
            // Already failed: the empty set is the only minimal cut.
            result.push_back({});
        } else {
            unsigned var = manager_.nodeVariable(f);
            bdd::NodeRef high = manager_.nodeHigh(f);
            bdd::NodeRef low = manager_.nodeLow(f);

            const Family &f_high = cuts(high);
            // Copy: the recursive call below may invalidate the
            // reference via rehashing.
            Family high_family = f_high;
            const Family &f_low = cuts(low);

            result = high_family;
            for (const auto &base : f_low) {
                if (base.size() + 1 > options_.maxOrder)
                    continue;
                if (subsumed(high_family, base))
                    continue;
                std::vector<unsigned> with_var;
                with_var.reserve(base.size() + 1);
                with_var.push_back(var);
                with_var.insert(with_var.end(), base.begin(),
                                base.end());
                // var is smaller than everything in base: sorted.
                result.push_back(std::move(with_var));
            }
            require(result.size() <= options_.maxSets,
                    "cut set family exceeds the configured limit; "
                    "lower maxOrder or raise maxSets");
        }
        return memo_.emplace(f, std::move(result)).first->second;
    }

  private:
    const bdd::BddManager &manager_;
    const CutSetOptions &options_;
    std::unordered_map<bdd::NodeRef, Family> memo_;
};

} // anonymous namespace

std::vector<CutSet>
minimalCutSets(const RbdSystem &system, const CutSetOptions &options)
{
    require(options.maxOrder >= 1, "maxOrder must be at least 1");
    bdd::BddManager manager;
    bdd::NodeRef f = system.compile(manager);

    Extractor extractor(manager, options);
    const Family &family = extractor.cuts(f);

    std::vector<CutSet> result;
    result.reserve(family.size());
    for (const auto &members : family) {
        CutSet cut;
        cut.probability = 1.0;
        for (unsigned var : members) {
            cut.components.push_back(var);
            cut.probability *=
                1.0 - system.componentAvailability(var);
        }
        result.push_back(std::move(cut));
    }
    std::sort(result.begin(), result.end(),
              [](const CutSet &a, const CutSet &b) {
                  if (a.probability != b.probability)
                      return a.probability > b.probability;
                  if (a.order() != b.order())
                      return a.order() < b.order();
                  return a.components < b.components;
              });
    return result;
}

double
rareEventUnavailability(const std::vector<CutSet> &cutSets)
{
    double sum = 0.0;
    for (const CutSet &cut : cutSets)
        sum += cut.probability;
    return sum;
}

} // namespace sdnav::rbd
