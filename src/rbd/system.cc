#include "rbd/system.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.hh"
#include "obs/trace.hh"

namespace sdnav::rbd
{

double
MonteCarloResult::ci95Low() const
{
    return std::max(0.0, estimate - 1.96 * standardError);
}

double
MonteCarloResult::ci95High() const
{
    return std::min(1.0, estimate + 1.96 * standardError);
}

bool
MonteCarloResult::brackets(double value) const
{
    return value >= ci95Low() && value <= ci95High();
}

ComponentId
RbdSystem::addComponent(std::string name, double availability)
{
    requireProbability(availability, "availability");
    names_.push_back(std::move(name));
    availabilities_.push_back(availability);
    return availabilities_.size() - 1;
}

void
RbdSystem::setRoot(Block root)
{
    std::vector<ComponentId> refs;
    root.collectComponents(refs);
    for (ComponentId id : refs) {
        require(id < availabilities_.size(),
                "structure tree references unknown component");
    }
    root_ = std::move(root);
}

const Block &
RbdSystem::root() const
{
    require(root_.has_value(), "RbdSystem has no structure tree");
    return *root_;
}

void
RbdSystem::checkComponent(ComponentId id) const
{
    require(id < availabilities_.size(), "unknown component id");
}

const std::string &
RbdSystem::componentName(ComponentId id) const
{
    checkComponent(id);
    return names_[id];
}

double
RbdSystem::componentAvailability(ComponentId id) const
{
    checkComponent(id);
    return availabilities_[id];
}

void
RbdSystem::setComponentAvailability(ComponentId id, double availability)
{
    checkComponent(id);
    requireProbability(availability, "availability");
    availabilities_[id] = availability;
}

bool
RbdSystem::hasSharedComponents() const
{
    std::vector<ComponentId> refs;
    root().collectComponents(refs);
    std::unordered_set<ComponentId> seen;
    for (ComponentId id : refs) {
        if (!seen.insert(id).second)
            return true;
    }
    return false;
}

double
RbdSystem::formulaFor(const Block &block) const
{
    switch (block.kind()) {
      case Block::Kind::Component:
        return availabilities_[block.componentId()];
      case Block::Kind::Series: {
        double product = 1.0;
        for (const Block &child : block.children())
            product *= formulaFor(child);
        return product;
      }
      case Block::Kind::Parallel: {
        double down = 1.0;
        for (const Block &child : block.children())
            down *= 1.0 - formulaFor(child);
        return 1.0 - down;
      }
      case Block::Kind::KOfN: {
        const auto &children = block.children();
        unsigned m = block.required();
        if (m == 0)
            return 1.0;
        if (m > children.size())
            return 0.0;
        // Poisson-binomial tail by dynamic programming: up[j] is the
        // probability exactly j of the children processed so far are
        // up, with counts above m collapsed into bucket m.
        std::vector<double> up(m + 1, 0.0);
        up[0] = 1.0;
        for (const Block &child : children) {
            double a = formulaFor(child);
            for (unsigned j = m; j >= 1; --j)
                up[j] = up[j] * (1.0 - a) + up[j - 1] * a +
                        (j == m ? up[j] * a : 0.0);
            up[0] *= (1.0 - a);
        }
        return up[m];
      }
    }
    return 0.0; // Unreachable.
}

double
RbdSystem::availabilityFormula() const
{
    require(!hasSharedComponents(),
            "availabilityFormula() requires tree-independent structure; "
            "use availabilityExact() for shared components");
    return formulaFor(root());
}

bdd::NodeRef
RbdSystem::compileBlock(bdd::BddManager &manager, const Block &block) const
{
    switch (block.kind()) {
      case Block::Kind::Component:
        return manager.var(static_cast<unsigned>(block.componentId()));
      case Block::Kind::Series: {
        std::vector<bdd::NodeRef> refs;
        refs.reserve(block.children().size());
        for (const Block &child : block.children())
            refs.push_back(compileBlock(manager, child));
        return manager.andAll(refs);
      }
      case Block::Kind::Parallel: {
        std::vector<bdd::NodeRef> refs;
        refs.reserve(block.children().size());
        for (const Block &child : block.children())
            refs.push_back(compileBlock(manager, child));
        return manager.orAll(refs);
      }
      case Block::Kind::KOfN: {
        std::vector<bdd::NodeRef> refs;
        refs.reserve(block.children().size());
        for (const Block &child : block.children())
            refs.push_back(compileBlock(manager, child));
        return manager.atLeast(refs, block.required());
      }
    }
    return bdd::falseNode; // Unreachable.
}

bdd::NodeRef
RbdSystem::compile(bdd::BddManager &manager) const
{
    // The apply phase: every ite/andAll/orAll building the structure
    // function happens under this span.
    obs::TraceSpan trace_span("bdd.apply",
                              static_cast<std::uint64_t>(
                                  availabilities_.size()));
    return compileBlock(manager, root());
}

double
RbdSystem::availabilityExact() const
{
    bdd::BddManager manager;
    bdd::NodeRef f = compile(manager);
    return manager.probability(f, availabilities_);
}

MonteCarloResult
RbdSystem::availabilityMonteCarlo(std::size_t samples,
                                  prob::Rng &rng) const
{
    require(samples > 0, "Monte Carlo needs at least one sample");
    const Block &tree = root();
    std::vector<bool> state(availabilities_.size());
    std::size_t up_count = 0;
    for (std::size_t s = 0; s < samples; ++s) {
        for (std::size_t i = 0; i < availabilities_.size(); ++i)
            state[i] = rng.uniform() < availabilities_[i];
        if (tree.evaluate(state))
            ++up_count;
    }
    MonteCarloResult result;
    result.samples = samples;
    result.estimate =
        static_cast<double>(up_count) / static_cast<double>(samples);
    result.standardError =
        std::sqrt(result.estimate * (1.0 - result.estimate) /
                  static_cast<double>(samples));
    return result;
}

namespace
{

/** Wraps the build-once phase of a CompiledRbd in a trace span. */
bdd::NodeRef
compileTraced(const RbdSystem &system, bdd::BddManager &manager)
{
    obs::TraceSpan trace_span("bdd.compile");
    return system.compile(manager);
}

/**
 * Arms the manager's step budget (when limited) before the build so
 * the clock covers the whole compile, then compiles. The budget stays
 * armed for the constructor body (reorder pass); the constructor
 * disarms it before handing the object out, since evaluation must
 * never be interrupted.
 */
bdd::NodeRef
compileBudgeted(const RbdSystem &system, bdd::BddManager &manager,
                const CompiledRbd::Options &options)
{
    if (options.budget.limited())
        manager.setStepBudget(options.budget);
    return compileTraced(system, manager);
}

} // anonymous namespace

CompiledRbd::CompiledRbd(const RbdSystem &system,
                         const Options &options)
    : root_(compileBudgeted(system, manager_, options))
{
    // The compiled root is the one ref this object hands out, so it
    // (and everything it reaches) is pinned for the manager's
    // lifetime; any later GC or reorder safe point keeps it valid.
    manager_.addRoot(root_);
    if (options.reorder)
        manager_.reorderSifting(options.reorderOptions);
    // The build phase is over; evaluation never grows the manager and
    // must never be interrupted, so disarm the compile budget here.
    manager_.clearStepBudget();
    // This is also the moment the cache/table stats are final.
    manager_.recordMetrics();
}

double
CompiledRbd::probability(std::span<const double> availabilities) const
{
    return manager_.probability(root_, availabilities);
}

double
CompiledRbd::probability(std::span<const double> availabilities,
                         bdd::ProbabilityScratch &scratch) const
{
    return manager_.probability(root_, availabilities, scratch);
}

std::size_t
CompiledRbd::nodeCount() const
{
    return manager_.nodeCount(root_);
}

double
RbdSystem::birnbaumImportance(ComponentId id) const
{
    checkComponent(id);
    bdd::BddManager manager;
    bdd::NodeRef f = compile(manager);
    unsigned var = static_cast<unsigned>(id);
    bdd::RestrictScratch restrict_scratch;
    bdd::ProbabilityScratch prob_scratch;
    double with_up =
        manager.probability(manager.restrict(f, var, true,
                                             restrict_scratch),
                            availabilities_, prob_scratch);
    double with_down =
        manager.probability(manager.restrict(f, var, false,
                                             restrict_scratch),
                            availabilities_, prob_scratch);
    return with_up - with_down;
}

double
RbdSystem::criticalityImportance(ComponentId id) const
{
    checkComponent(id);
    double system_unavailability = 1.0 - availabilityExact();
    if (system_unavailability <= 0.0)
        return 0.0;
    double birnbaum = birnbaumImportance(id);
    return birnbaum * (1.0 - availabilities_[id]) / system_unavailability;
}

std::vector<ImportanceEntry>
RbdSystem::rankImportance(const ImportanceOptions &options) const
{
    // Compile once and reuse for all components. The root is pinned
    // so the per-component restrict intermediates — and nothing else
    // — are what the collections below reclaim.
    bdd::BddManager manager;
    bdd::NodeRef f = compile(manager);
    bdd::ScopedRoot root(manager, f);
    if (options.reorder)
        manager.reorderSifting(options.reorderOptions);
    bdd::ProbabilityScratch prob_scratch;
    bdd::RestrictScratch restrict_scratch;
    double availability =
        manager.probability(f, availabilities_, prob_scratch);
    double system_unavailability = 1.0 - availability;

    std::vector<ImportanceEntry> entries;
    entries.reserve(availabilities_.size());
    for (ComponentId id = 0; id < availabilities_.size(); ++id) {
        unsigned var = static_cast<unsigned>(id);
        double up = manager.probability(
            manager.restrict(f, var, true, restrict_scratch),
            availabilities_, prob_scratch);
        double down = manager.probability(
            manager.restrict(f, var, false, restrict_scratch),
            availabilities_, prob_scratch);
        double birnbaum = up - down;
        double criticality = system_unavailability > 0.0
            ? birnbaum * (1.0 - availabilities_[id]) / system_unavailability
            : 0.0;
        entries.push_back({id, names_[id], birnbaum, criticality});
        // Safe point: the cofactors above are dead, only f is live.
        manager.maybeCollect();
    }
    // One final collection so every ranking publishes its reclaim
    // stats (and a "bdd.gc" span) even when the diagram stayed small.
    manager.collectGarbage();
    // Tie-break on id so exactly-tied (symmetric) components rank in
    // a stable order regardless of evaluation order.
    std::sort(entries.begin(), entries.end(),
              [](const ImportanceEntry &a, const ImportanceEntry &b) {
                  if (a.criticality != b.criticality)
                      return a.criticality > b.criticality;
                  return a.component < b.component;
              });
    return entries;
}

} // namespace sdnav::rbd
