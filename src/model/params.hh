/**
 * @file
 * Model parameter sets with the paper's default values.
 *
 * HW-centric analysis (section V) treats each controller role as an
 * atomic element of availability A_C; SW-centric analysis (section
 * VI) works at process granularity with auto-restarted availability A
 * and manually-restarted availability A_S. Both share the VM / host /
 * rack platform availabilities.
 */

#ifndef SDNAV_MODEL_PARAMS_HH
#define SDNAV_MODEL_PARAMS_HH

#include "prob/processAvailability.hh"

namespace sdnav::model
{

/**
 * Whether the node-role supervisor process is required for continued
 * operation (the paper's two analysis cases).
 */
enum class SupervisorPolicy
{
    /**
     * Scenario 1 (optimistic upper bound): a supervisor failure
     * leaves the node-role running unsupervised; the supervisor is
     * restarted hitlessly in a later maintenance window.
     */
    NotRequired,

    /**
     * Scenario 2 (realistic lower bound): a supervisor failure forces
     * an immediate kill-and-restart of its whole node-role.
     */
    Required,
};

/** Short option tag: "1"/"2" per the paper's 1S/2S/1L/2L naming. */
char supervisorPolicyTag(SupervisorPolicy policy);

/** Parameters of the HW-centric models (paper section V). */
struct HwParams
{
    /** Per-role-instance availability A_C. */
    double roleAvailability = 0.9995;

    /** VM (including guest OS) availability A_V. */
    double vmAvailability = 0.99995;

    /** Host (including host OS and hypervisor) availability A_H. */
    double hostAvailability = 0.9999;

    /** Rack availability A_R. */
    double rackAvailability = 0.99999;

    /** @throws ModelError if any value is not a probability. */
    void validate() const;
};

/** Parameters of the SW-centric models (paper section VI). */
struct SwParams
{
    /** Supervised (auto-restarted) process availability A. */
    double processAvailability = 0.99998;

    /**
     * Unsupervised (manually restarted) process availability A_S;
     * also the availability of the supervisor process itself.
     */
    double manualProcessAvailability = 0.9998;

    /** VM availability A_V. */
    double vmAvailability = 0.99995;

    /** Host availability A_H. */
    double hostAvailability = 0.9999;

    /** Rack availability A_R. */
    double rackAvailability = 0.99999;

    /** @throws ModelError if any value is not a probability. */
    void validate() const;

    /**
     * Derive process availabilities from failure/restart timings:
     * A = F/(F+R), A_S = F/(F+R_S). Platform availabilities keep
     * their current values.
     */
    static SwParams fromTimings(const prob::ProcessTimings &timings);

    /**
     * The x-axis transform of the paper's Figures 4 and 5: shift the
     * *downtime* of both A and A_S by the given number of orders of
     * magnitude, in lock-step (positive = less downtime). Platform
     * availabilities are unchanged.
     */
    SwParams withDowntimeShift(double ordersOfMagnitude) const;
};

} // namespace sdnav::model

#endif // SDNAV_MODEL_PARAMS_HH
