#include "model/params.hh"

#include "common/error.hh"
#include "common/units.hh"

namespace sdnav::model
{

char
supervisorPolicyTag(SupervisorPolicy policy)
{
    return policy == SupervisorPolicy::NotRequired ? '1' : '2';
}

void
HwParams::validate() const
{
    requireProbability(roleAvailability, "roleAvailability");
    requireProbability(vmAvailability, "vmAvailability");
    requireProbability(hostAvailability, "hostAvailability");
    requireProbability(rackAvailability, "rackAvailability");
}

void
SwParams::validate() const
{
    requireProbability(processAvailability, "processAvailability");
    requireProbability(manualProcessAvailability,
                       "manualProcessAvailability");
    requireProbability(vmAvailability, "vmAvailability");
    requireProbability(hostAvailability, "hostAvailability");
    requireProbability(rackAvailability, "rackAvailability");
}

SwParams
SwParams::fromTimings(const prob::ProcessTimings &timings)
{
    SwParams params;
    params.processAvailability = timings.supervisedAvailability();
    params.manualProcessAvailability =
        timings.unsupervisedAvailability();
    return params;
}

SwParams
SwParams::withDowntimeShift(double ordersOfMagnitude) const
{
    SwParams shifted = *this;
    shifted.processAvailability =
        shiftAvailabilityDowntime(processAvailability, ordersOfMagnitude);
    shifted.manualProcessAvailability = shiftAvailabilityDowntime(
        manualProcessAvailability, ordersOfMagnitude);
    return shifted;
}

} // namespace sdnav::model
