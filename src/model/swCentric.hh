/**
 * @file
 * SW-centric availability models (paper section VI).
 *
 * The engine computes SDN control-plane and host data-plane
 * availability for ANY controller catalog on ANY deployment topology,
 * under either supervisor policy. It generalizes the paper's options
 * 1S / 2S / 1L / 2L (and covers the Medium topology the paper skips).
 *
 * Method — exactly the paper's conditioning argument, made generic:
 *
 * 1. Classify infrastructure (VMs, hosts, racks) into *shared*
 *    elements supporting multiple role instances (enumerated exactly)
 *    and *dedicated* elements supporting a single role instance
 *    (folded into that instance's independent availability rho, as in
 *    the paper's rho = A_V A_H for option 1L).
 * 2. For each joint up/down state of the shared elements, a role
 *    instance is "reachable" iff all its shared elements are up.
 * 3. Per role, the number of *usable* node instances among the
 *    reachable ones is Poisson-binomial in the per-instance rho
 *    (which includes the supervisor availability A_S under
 *    SupervisorPolicy::Required — the paper's eq. (14)).
 * 4. Given j usable instances, the role contributes the product over
 *    its quorum blocks of A_{m_b / j}(beta_b), where beta_b is the
 *    product of the block's member-process availabilities — auto-
 *    restarted processes at A, manual-restart processes at A_S (the
 *    paper's Table II distinction) — exactly eq. (13).
 *
 * Steps 2-4 factor per role, so the paper's four-fold sum in eq. (12)
 * collapses to a product of per-role sums.
 *
 * The host data plane is the product of the *shared* contribution
 * (same computation with the DP quorum columns) and the *local*
 * contribution A^K (times A_S when the vRouter supervisor is
 * required).
 */

#ifndef SDNAV_MODEL_SW_CENTRIC_HH
#define SDNAV_MODEL_SW_CENTRIC_HH

#include <cstddef>
#include <vector>

#include "fmea/catalog.hh"
#include "model/params.hh"
#include "topology/deployment.hh"

namespace sdnav::model
{

/**
 * SW-centric availability model of one catalog on one topology under
 * one supervisor policy. Construction precomputes the sharing
 * structure; evaluation is cheap, so parameter sweeps construct once
 * and evaluate per point.
 */
class SwAvailabilityModel
{
  public:
    /**
     * @param catalog Controller software catalog. The number of
     *                catalog roles must match the topology role count.
     * @param topo Deployment topology (validated).
     * @param policy Supervisor policy (scenario 1 or 2).
     */
    SwAvailabilityModel(const fmea::ControllerCatalog &catalog,
                        const topology::DeploymentTopology &topo,
                        SupervisorPolicy policy);

    /** SDN control-plane availability A_CP. */
    double controlPlaneAvailability(const SwParams &params) const;

    /**
     * Shared data-plane availability A_SDP: the controller-side
     * contribution that affects every host's DP at once.
     */
    double sharedDataPlaneAvailability(const SwParams &params) const;

    /**
     * Local data-plane availability A_LDP: the per-host vRouter
     * processes (and their supervisor under policy Required).
     */
    double localDataPlaneAvailability(const SwParams &params) const;

    /** Total per-host data-plane availability A_DP = A_SDP * A_LDP. */
    double hostDataPlaneAvailability(const SwParams &params) const;

    /** Availability for a plane (DP = total host DP). */
    double planeAvailability(const SwParams &params,
                             fmea::Plane plane) const;

    /** The supervisor policy this model was built with. */
    SupervisorPolicy policy() const { return policy_; }

    /** Number of enumerated shared infrastructure elements. */
    std::size_t sharedElementCount() const { return shared_.size(); }

  private:
    enum class ElementKind { Vm, Host, Rack };

    struct SharedElement
    {
        ElementKind kind;
        std::size_t index;
    };

    struct SlotInfo
    {
        /** Indices into shared_ that must all be up. */
        std::vector<std::size_t> sharedElements;
        bool vmDedicated = false;
        bool hostDedicated = false;
        bool rackDedicated = false;
    };

    double elementAvailability(const SharedElement &element,
                               const SwParams &params) const;
    double slotRho(const SlotInfo &slot, const SwParams &params) const;
    double sharedPlaneAvailability(const SwParams &params,
                                   fmea::Plane plane) const;

    const fmea::ControllerCatalog &catalog_;
    SupervisorPolicy policy_;
    std::size_t role_count_;
    std::size_t cluster_size_;
    std::vector<SharedElement> shared_;
    /** slots_[role * cluster_size_ + node]. */
    std::vector<SlotInfo> slots_;
};

/**
 * Convenience: build the model and return the plane availability in
 * one call (for one-off evaluations).
 */
double swAvailability(const fmea::ControllerCatalog &catalog,
                      const topology::DeploymentTopology &topo,
                      SupervisorPolicy policy, const SwParams &params,
                      fmea::Plane plane);

} // namespace sdnav::model

#endif // SDNAV_MODEL_SW_CENTRIC_HH
