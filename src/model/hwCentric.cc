#include "model/hwCentric.hh"

#include <cmath>
#include <string>

#include "common/error.hh"
#include "prob/kofn.hh"

namespace sdnav::model
{

using prob::kOfN;

double
hwSmallAvailability(const HwParams &params)
{
    params.validate();
    double ac = params.roleAvailability;
    double av = params.vmAvailability;
    double ah = params.hostAvailability;
    double ar = params.rackAvailability;
    double avh = av * ah;

    // Eq. (3): condition on how many {VM+host} pairs are up. With all
    // three up, the three "1 of 3" roles and one "2 of 3" role draw
    // from 3 nodes; with two up, from 2 nodes; one node up violates
    // the Database quorum.
    double three_up = std::pow(kOfN(1, 3, ac), 3) * kOfN(2, 3, ac) * avh;
    double two_up = 3.0 * std::pow(kOfN(1, 2, ac), 3) *
                    kOfN(2, 2, ac) * (1.0 - avh);
    return (three_up + two_up) * av * av * ah * ah * ar;
}

double
hwMediumAvailability(const HwParams &params)
{
    params.validate();
    double alpha = params.roleAvailability * params.vmAvailability;
    double ah = params.hostAvailability;
    double ar = params.rackAvailability;

    // Eq. (6). The (4 - 3A_H - A_R) factor is the paper's first-order
    // combination of the "two hosts up, both racks up" and "rack 2
    // down" cases. Note: the paper's printed eq. (6) omits the A_R
    // factor on the first (all-hosts-up) term; restoring it is
    // required to reproduce the paper's own quoted A_M = 0.999989
    // (and matches the exact RBD evaluation).
    double three_up = std::pow(kOfN(1, 3, alpha), 3) *
                      kOfN(2, 3, alpha) * ah * ar;
    double degraded = std::pow(kOfN(1, 2, alpha), 3) *
                      kOfN(2, 2, alpha) * (4.0 - 3.0 * ah - ar);
    return (three_up + degraded) * ah * ah * ar;
}

double
hwLargeAvailability(const HwParams &params)
{
    params.validate();
    double alpha = params.roleAvailability * params.vmAvailability *
                   params.hostAvailability;
    double ar = params.rackAvailability;

    // Eq. (8): condition on rack count; a single surviving rack
    // violates the Database quorum.
    double three_up = std::pow(kOfN(1, 3, alpha), 3) *
                      kOfN(2, 3, alpha) * ar;
    double two_up = std::pow(kOfN(1, 2, alpha), 3) * kOfN(2, 2, alpha) *
                    3.0 * (1.0 - ar);
    return (three_up + two_up) * ar * ar;
}

double
hwAvailability(topology::ReferenceKind kind, const HwParams &params)
{
    switch (kind) {
      case topology::ReferenceKind::Small:
        return hwSmallAvailability(params);
      case topology::ReferenceKind::Medium:
        return hwMediumAvailability(params);
      case topology::ReferenceKind::Large:
        return hwLargeAvailability(params);
    }
    throw ModelError("unknown reference topology kind");
}

double
hwSmallApproximation(const HwParams &params)
{
    params.validate();
    double alpha = params.roleAvailability * params.vmAvailability *
                   params.hostAvailability;
    return kOfN(2, 3, alpha) * params.rackAvailability;
}

double
hwMediumApproximation(const HwParams &params)
{
    return hwSmallApproximation(params);
}

double
hwLargeApproximation(const HwParams &params)
{
    params.validate();
    double alpha = params.roleAvailability * params.vmAvailability *
                   params.hostAvailability * params.rackAvailability;
    return kOfN(2, 3, alpha);
}

rbd::RbdSystem
hwExactSystem(const topology::DeploymentTopology &topo,
              const HwParams &params, const HwQuorumProfile &profile)
{
    params.validate();
    topo.validate();
    require(profile.roleCount() == topo.roleCount(),
            "quorum profile role count does not match topology");

    rbd::RbdSystem system;

    // Shared infrastructure components, in BDD-friendly order
    // (shared elements first).
    std::vector<rbd::ComponentId> racks;
    for (std::size_t r = 0; r < topo.rackCount(); ++r)
        racks.push_back(system.addComponent("rack" + std::to_string(r),
                                            params.rackAvailability));
    std::vector<rbd::ComponentId> hosts;
    for (std::size_t h = 0; h < topo.hostCount(); ++h)
        hosts.push_back(system.addComponent("host" + std::to_string(h),
                                            params.hostAvailability));
    std::vector<rbd::ComponentId> vms;
    for (std::size_t v = 0; v < topo.vmCount(); ++v)
        vms.push_back(system.addComponent("vm" + std::to_string(v),
                                          params.vmAvailability));

    // One quorum block per role over its node instances, each
    // instance in series with its VM / host / rack.
    std::size_t n = topo.clusterSize();
    std::vector<rbd::Block> role_blocks;
    for (std::size_t role = 0; role < topo.roleCount(); ++role) {
        std::vector<rbd::Block> instances;
        for (std::size_t node = 0; node < n; ++node) {
            rbd::ComponentId inst = system.addComponent(
                "role" + std::to_string(role) + "-node" +
                    std::to_string(node),
                params.roleAvailability);
            std::size_t vm = topo.vmOf(role, node);
            std::size_t host = topo.hostOfVm(vm);
            instances.push_back(rbd::series(
                {rbd::component(inst), rbd::component(vms[vm]),
                 rbd::component(hosts[host]),
                 rbd::component(racks[topo.rackOfHost(host)])}));
        }
        unsigned m = role < profile.anyOneRoles
            ? 1u : static_cast<unsigned>(n / 2 + 1);
        role_blocks.push_back(rbd::kOfN(m, std::move(instances)));
    }
    system.setRoot(rbd::series(std::move(role_blocks)));
    return system;
}

double
hwExactAvailability(const topology::DeploymentTopology &topo,
                    const HwParams &params,
                    const HwQuorumProfile &profile)
{
    return hwExactSystem(topo, params, profile).availabilityExact();
}

} // namespace sdnav::model

namespace sdnav::model
{

fmea::ControllerCatalog
hwCentricCatalog(const HwQuorumProfile &profile)
{
    fmea::ControllerCatalog catalog("HW-centric atomic roles");
    static const char *names[] = {"Config", "Control", "Analytics",
                                  "Database"};
    static const char tags[] = {'G', 'C', 'A', 'D'};
    for (unsigned role = 0; role < profile.roleCount(); ++role) {
        fmea::RoleSpec spec;
        if (role < 4 && profile.roleCount() == 4) {
            spec.name = names[role];
            spec.tag = tags[role];
        } else {
            spec.name = "Role" + std::to_string(role);
            spec.tag = static_cast<char>('0' + role % 10);
        }
        fmea::QuorumClass quorum = role < profile.anyOneRoles
            ? fmea::QuorumClass::AnyOne : fmea::QuorumClass::Majority;
        spec.processes.push_back({"role-" + spec.name,
                                  fmea::RestartMode::Auto, quorum,
                                  fmea::QuorumClass::None, "", "",
                                  "Atomic role element."});
        catalog.addRole(std::move(spec));
    }
    catalog.validate();
    return catalog;
}

SwParams
hwToSwParams(const HwParams &params)
{
    params.validate();
    SwParams sw;
    sw.processAvailability = params.roleAvailability;
    sw.manualProcessAvailability = params.roleAvailability;
    sw.vmAvailability = params.vmAvailability;
    sw.hostAvailability = params.hostAvailability;
    sw.rackAvailability = params.rackAvailability;
    return sw;
}

} // namespace sdnav::model
