/**
 * @file
 * HW-centric availability models (paper section V).
 *
 * Each of the four controller roles is an atomic element of
 * availability A_C; the Config, Control, and Analytics roles need "1
 * of 3" node instances up and the Database role needs "2 of 3". The
 * closed forms condition on the shared-infrastructure states exactly
 * as the paper derives them:
 *
 * - Small (eq. 3): shared {VM+host} per node, single rack.
 * - Medium (eq. 6): per-role VMs, per-node hosts, two racks. Note
 *   the paper's eq. (6) carries a deliberate first-order
 *   simplification (the (4 - 3A_H - A_R) factor); the exact value is
 *   available through hwExactAvailability().
 * - Large (eq. 8): everything dedicated, one rack per node.
 *
 * Each topology also has the paper's intuitive approximation
 * (A ~= A_{2/3} in series with whatever the quorum shares).
 */

#ifndef SDNAV_MODEL_HW_CENTRIC_HH
#define SDNAV_MODEL_HW_CENTRIC_HH

#include "fmea/catalog.hh"
#include "model/params.hh"
#include "rbd/system.hh"
#include "topology/deployment.hh"

namespace sdnav::model
{

/** Controller availability in the Small topology, paper eq. (3). */
double hwSmallAvailability(const HwParams &params);

/** Controller availability in the Medium topology, paper eq. (6). */
double hwMediumAvailability(const HwParams &params);

/** Controller availability in the Large topology, paper eq. (8). */
double hwLargeAvailability(const HwParams &params);

/** Closed form for a reference topology kind. */
double hwAvailability(topology::ReferenceKind kind,
                      const HwParams &params);

/**
 * The paper's Small/Medium approximation A ~= A_{2/3}(alpha) A_R with
 * alpha = A_C A_V A_H.
 */
double hwSmallApproximation(const HwParams &params);

/** Identical in form to hwSmallApproximation (the paper's A_M ~= A_S). */
double hwMediumApproximation(const HwParams &params);

/**
 * The paper's Large approximation A ~= A_{2/3}(alpha) with
 * alpha = A_C A_V A_H A_R.
 */
double hwLargeApproximation(const HwParams &params);

/**
 * Quorum structure of the HW-centric analysis: which roles need a
 * strict majority of node instances (the Database role in the paper)
 * versus any single instance.
 */
struct HwQuorumProfile
{
    /** Number of roles requiring at least one instance. */
    unsigned anyOneRoles = 3;

    /** Number of roles requiring a strict majority. */
    unsigned majorityRoles = 1;

    /** Total role count. */
    unsigned roleCount() const { return anyOneRoles + majorityRoles; }
};

/**
 * Build the exact HW-centric reliability block diagram for an
 * arbitrary deployment topology: one atomic component per role
 * instance, plus the topology's VMs, hosts, and racks as shared
 * components. Role index ordering: the first profile.anyOneRoles
 * roles are "1 of n", the rest are majority.
 *
 * The returned system's availabilityExact() is the ground-truth value
 * the closed forms are tested against.
 */
rbd::RbdSystem hwExactSystem(const topology::DeploymentTopology &topo,
                             const HwParams &params,
                             const HwQuorumProfile &profile = {});

/** Exact HW-centric availability of any deployment topology. */
double hwExactAvailability(const topology::DeploymentTopology &topo,
                           const HwParams &params,
                           const HwQuorumProfile &profile = {});

/**
 * The HW-centric analysis expressed as a degenerate controller
 * catalog: one atomic auto-restarted process per role, "1 of n" for
 * the first profile.anyOneRoles roles and majority for the rest.
 * Feeding this catalog (with hwToSwParams()) to the SW-centric engine
 * reproduces section V from section VI's machinery — the two models
 * are one framework.
 */
fmea::ControllerCatalog hwCentricCatalog(
    const HwQuorumProfile &profile = {});

/**
 * Map HW-centric parameters onto SW-centric ones for use with
 * hwCentricCatalog(): process availability A_C (both restart modes),
 * platform availabilities copied.
 */
SwParams hwToSwParams(const HwParams &params);

} // namespace sdnav::model

#endif // SDNAV_MODEL_HW_CENTRIC_HH
