#include "model/swCentric.hh"

#include <map>

#include "common/error.hh"
#include "prob/kofn.hh"

namespace sdnav::model
{

using fmea::Plane;
using fmea::QuorumBlock;
using fmea::RestartMode;

namespace
{

/** Availability of one process under the Table II distinction. */
double
processAvailability(RestartMode mode, const SwParams &params)
{
    return mode == RestartMode::Auto ? params.processAvailability
                                     : params.manualProcessAvailability;
}

} // anonymous namespace

SwAvailabilityModel::SwAvailabilityModel(
    const fmea::ControllerCatalog &catalog,
    const topology::DeploymentTopology &topo, SupervisorPolicy policy)
    : catalog_(catalog), policy_(policy),
      role_count_(topo.roleCount()), cluster_size_(topo.clusterSize())
{
    catalog.validate();
    topo.validate();
    require(catalog.roles().size() == topo.roleCount(),
            "catalog role count does not match topology role count");

    // Count role instances supported by each infrastructure element
    // to split shared from dedicated.
    std::vector<unsigned> vm_slots(topo.vmCount(), 0);
    std::vector<unsigned> host_slots(topo.hostCount(), 0);
    std::vector<unsigned> rack_slots(topo.rackCount(), 0);
    for (std::size_t role = 0; role < role_count_; ++role) {
        for (std::size_t node = 0; node < cluster_size_; ++node) {
            std::size_t vm = topo.vmOf(role, node);
            std::size_t host = topo.hostOfVm(vm);
            ++vm_slots[vm];
            ++host_slots[host];
            ++rack_slots[topo.rackOfHost(host)];
        }
    }

    std::map<std::pair<int, std::size_t>, std::size_t> shared_index;
    auto shared_id = [this, &shared_index](ElementKind kind,
                                           std::size_t index) {
        auto key = std::make_pair(static_cast<int>(kind), index);
        auto it = shared_index.find(key);
        if (it != shared_index.end())
            return it->second;
        std::size_t id = shared_.size();
        shared_.push_back({kind, index});
        shared_index.emplace(key, id);
        return id;
    };

    slots_.resize(role_count_ * cluster_size_);
    for (std::size_t role = 0; role < role_count_; ++role) {
        for (std::size_t node = 0; node < cluster_size_; ++node) {
            SlotInfo &slot = slots_[role * cluster_size_ + node];
            std::size_t vm = topo.vmOf(role, node);
            std::size_t host = topo.hostOfVm(vm);
            std::size_t rack = topo.rackOfHost(host);
            if (vm_slots[vm] == 1) {
                slot.vmDedicated = true;
            } else {
                slot.sharedElements.push_back(
                    shared_id(ElementKind::Vm, vm));
            }
            if (host_slots[host] == 1) {
                slot.hostDedicated = true;
            } else {
                slot.sharedElements.push_back(
                    shared_id(ElementKind::Host, host));
            }
            if (rack_slots[rack] == 1) {
                slot.rackDedicated = true;
            } else {
                slot.sharedElements.push_back(
                    shared_id(ElementKind::Rack, rack));
            }
        }
    }
    require(shared_.size() <= 24,
            "topology has too many shared infrastructure elements for "
            "exact enumeration (limit 24)");
}

double
SwAvailabilityModel::elementAvailability(const SharedElement &element,
                                         const SwParams &params) const
{
    switch (element.kind) {
      case ElementKind::Vm:
        return params.vmAvailability;
      case ElementKind::Host:
        return params.hostAvailability;
      case ElementKind::Rack:
        return params.rackAvailability;
    }
    return 0.0; // Unreachable.
}

double
SwAvailabilityModel::slotRho(const SlotInfo &slot,
                             const SwParams &params) const
{
    double rho = 1.0;
    if (slot.vmDedicated)
        rho *= params.vmAvailability;
    if (slot.hostDedicated)
        rho *= params.hostAvailability;
    if (slot.rackDedicated)
        rho *= params.rackAvailability;
    if (policy_ == SupervisorPolicy::Required)
        rho *= params.manualProcessAvailability;
    return rho;
}

double
SwAvailabilityModel::sharedPlaneAvailability(const SwParams &params,
                                             Plane plane) const
{
    params.validate();

    // Per-role block structure: required count m_b and member product
    // beta_b for every quorum block.
    struct BlockEval
    {
        unsigned required;
        double beta;
    };
    std::vector<std::vector<BlockEval>> role_blocks(role_count_);
    unsigned n = static_cast<unsigned>(cluster_size_);
    for (std::size_t role = 0; role < role_count_; ++role) {
        for (const QuorumBlock &block :
             catalog_.planeBlocks(role, plane)) {
            double beta = 1.0;
            for (std::size_t p : block.memberProcesses) {
                beta *= processAvailability(
                    catalog_.role(role).processes[p].restart, params);
            }
            role_blocks[role].push_back(
                {fmea::requiredCount(block.quorum, n), beta});
        }
    }

    // Given j usable node instances, the role availability term.
    // Precompute for j = 0..n per role.
    std::vector<std::vector<double>> role_avail(
        role_count_, std::vector<double>(cluster_size_ + 1, 1.0));
    for (std::size_t role = 0; role < role_count_; ++role) {
        for (std::size_t j = 0; j <= cluster_size_; ++j) {
            double product = 1.0;
            for (const BlockEval &block : role_blocks[role]) {
                product *= prob::kOfN(block.required,
                                      static_cast<unsigned>(j),
                                      block.beta);
            }
            role_avail[role][j] = product;
        }
    }

    // Per-slot rho (independent, non-enumerated availability).
    std::vector<double> rho(slots_.size());
    for (std::size_t s = 0; s < slots_.size(); ++s)
        rho[s] = slotRho(slots_[s], params);

    // Enumerate shared-element states.
    std::size_t state_count = std::size_t{1} << shared_.size();
    std::vector<double> element_avail(shared_.size());
    for (std::size_t e = 0; e < shared_.size(); ++e)
        element_avail[e] = elementAvailability(shared_[e], params);

    double total = 0.0;
    std::vector<double> pbin(cluster_size_ + 1);
    for (std::size_t state = 0; state < state_count; ++state) {
        double weight = 1.0;
        for (std::size_t e = 0; e < shared_.size(); ++e) {
            bool up = (state >> e) & 1;
            weight *= up ? element_avail[e] : 1.0 - element_avail[e];
        }
        if (weight == 0.0)
            continue;

        double conditional = 1.0;
        for (std::size_t role = 0; role < role_count_; ++role) {
            if (role_blocks[role].empty())
                continue; // Role does not constrain this plane.
            // Poisson-binomial over the reachable slots' rho:
            // pbin[j] = P[j slots usable].
            std::size_t reachable = 0;
            pbin[0] = 1.0;
            for (std::size_t node = 0; node < cluster_size_; ++node) {
                const SlotInfo &slot =
                    slots_[role * cluster_size_ + node];
                bool alive = true;
                for (std::size_t e : slot.sharedElements) {
                    if (!((state >> e) & 1)) {
                        alive = false;
                        break;
                    }
                }
                if (!alive)
                    continue;
                double r = rho[role * cluster_size_ + node];
                ++reachable;
                pbin[reachable] = 0.0;
                for (std::size_t j = reachable; j >= 1; --j)
                    pbin[j] = pbin[j] * (1.0 - r) + pbin[j - 1] * r;
                pbin[0] *= (1.0 - r);
            }
            double term = 0.0;
            for (std::size_t j = 0; j <= reachable; ++j)
                term += pbin[j] * role_avail[role][j];
            conditional *= term;
        }
        total += weight * conditional;
    }
    return total;
}

double
SwAvailabilityModel::controlPlaneAvailability(const SwParams &params) const
{
    return sharedPlaneAvailability(params, Plane::ControlPlane);
}

double
SwAvailabilityModel::sharedDataPlaneAvailability(
    const SwParams &params) const
{
    return sharedPlaneAvailability(params, Plane::DataPlane);
}

double
SwAvailabilityModel::localDataPlaneAvailability(
    const SwParams &params) const
{
    params.validate();
    double local = 1.0;
    for (const fmea::HostProcessSpec &proc : catalog_.hostProcesses()) {
        if (proc.requiredForDp)
            local *= processAvailability(proc.restart, params);
    }
    if (policy_ == SupervisorPolicy::Required)
        local *= params.manualProcessAvailability;
    return local;
}

double
SwAvailabilityModel::hostDataPlaneAvailability(const SwParams &params) const
{
    return sharedDataPlaneAvailability(params) *
           localDataPlaneAvailability(params);
}

double
SwAvailabilityModel::planeAvailability(const SwParams &params,
                                       Plane plane) const
{
    return plane == Plane::ControlPlane
        ? controlPlaneAvailability(params)
        : hostDataPlaneAvailability(params);
}

double
swAvailability(const fmea::ControllerCatalog &catalog,
               const topology::DeploymentTopology &topo,
               SupervisorPolicy policy, const SwParams &params,
               Plane plane)
{
    SwAvailabilityModel model(catalog, topo, policy);
    return model.planeAvailability(params, plane);
}

} // namespace sdnav::model
