#include "model/exactModel.hh"

#include <limits>
#include <string>
#include <vector>

#include "common/error.hh"

namespace sdnav::model
{

using fmea::Plane;
using fmea::QuorumBlock;
using fmea::RestartMode;

double
exactClassAvailability(ExactComponentClass cls, const SwParams &params)
{
    switch (cls) {
      case ExactComponentClass::Rack:
        return params.rackAvailability;
      case ExactComponentClass::Host:
        return params.hostAvailability;
      case ExactComponentClass::Vm:
        return params.vmAvailability;
      case ExactComponentClass::AutoProcess:
        return params.processAvailability;
      case ExactComponentClass::ManualProcess:
        return params.manualProcessAvailability;
    }
    return 0.0; // Unreachable.
}

rbd::RbdSystem
buildExactSystem(const fmea::ControllerCatalog &catalog,
                 const topology::DeploymentTopology &topo,
                 SupervisorPolicy policy, const SwParams &params,
                 Plane plane, std::vector<ExactComponentClass> *classes,
                 ExactVariableOrder order)
{
    catalog.validate();
    topo.validate();
    params.validate();
    require(catalog.roles().size() == topo.roleCount(),
            "catalog role count does not match topology role count");

    rbd::RbdSystem system;
    if (classes)
        classes->clear();
    auto add_component = [&](std::string name,
                             ExactComponentClass cls) {
        if (classes)
            classes->push_back(cls);
        return system.addComponent(std::move(name),
                                   exactClassAvailability(cls, params));
    };
    auto process_class = [](RestartMode mode) {
        return mode == RestartMode::Auto
            ? ExactComponentClass::AutoProcess
            : ExactComponentClass::ManualProcess;
    };

    // Every component slot starts unassigned; the two emission orders
    // below fill the same tables in different sequences, and the
    // block-building code underneath is order-agnostic.
    constexpr rbd::ComponentId no_id =
        std::numeric_limits<rbd::ComponentId>::max();
    std::size_t n = topo.clusterSize();
    std::size_t role_count = topo.roleCount();
    std::vector<rbd::ComponentId> racks(topo.rackCount(), no_id);
    std::vector<rbd::ComponentId> hosts(topo.hostCount(), no_id);
    std::vector<rbd::ComponentId> vms(topo.vmCount(), no_id);
    std::vector<rbd::ComponentId> supervisors;
    if (policy == SupervisorPolicy::Required)
        supervisors.assign(role_count * n, no_id);
    std::vector<std::vector<rbd::ComponentId>> procs(role_count * n);
    for (std::size_t role = 0; role < role_count; ++role) {
        std::size_t count = catalog.role(role).processes.size();
        for (std::size_t node = 0; node < n; ++node)
            procs[role * n + node].assign(count, no_id);
    }

    auto ensure_rack = [&](std::size_t r) {
        if (racks[r] == no_id)
            racks[r] = add_component("rack" + std::to_string(r),
                                     ExactComponentClass::Rack);
    };
    auto ensure_host = [&](std::size_t h) {
        if (hosts[h] == no_id)
            hosts[h] = add_component("host" + std::to_string(h),
                                     ExactComponentClass::Host);
    };
    auto ensure_vm = [&](std::size_t v) {
        if (vms[v] == no_id)
            vms[v] = add_component("vm" + std::to_string(v),
                                   ExactComponentClass::Vm);
    };
    auto ensure_supervisor = [&](std::size_t role, std::size_t node) {
        auto &slot = supervisors[role * n + node];
        if (slot == no_id) {
            slot = add_component("supervisor-" +
                                     catalog.role(role).name + "-" +
                                     std::to_string(node),
                                 ExactComponentClass::ManualProcess);
        }
    };
    auto add_process = [&](std::size_t role, std::size_t node,
                           std::size_t p) {
        auto &slot = procs[role * n + node][p];
        if (slot != no_id)
            return;
        const fmea::ProcessSpec &proc = catalog.role(role).processes[p];
        slot = add_component(proc.name + "-" + std::to_string(node),
                             process_class(proc.restart));
    };

    if (order == ExactVariableOrder::NodeMajor) {
        // Node-major: emit each node's infrastructure, supervisor,
        // and quorum processes as one contiguous variable group. The
        // only state a quorum block carries across node groups is its
        // own counter, so the diagram stays polynomial in n.
        for (std::size_t node = 0; node < n; ++node) {
            for (std::size_t role = 0; role < role_count; ++role) {
                std::size_t vm = topo.vmOf(role, node);
                std::size_t host = topo.hostOfVm(vm);
                ensure_rack(topo.rackOfHost(host));
                ensure_host(host);
                ensure_vm(vm);
                if (policy == SupervisorPolicy::Required)
                    ensure_supervisor(role, node);
                for (const QuorumBlock &block :
                     catalog.planeBlocks(role, plane)) {
                    for (std::size_t p : block.memberProcesses)
                        add_process(role, node, p);
                }
            }
        }
    } else {
        // Shared infrastructure first: racks, hosts, VMs, then
        // per-node supervisors (also effectively shared: every block
        // of a role on a node depends on the same supervisor), then
        // the plane's quorum processes grouped by block so each
        // block's counting structure touches a contiguous variable
        // range. This is the order every golden baseline was produced
        // with; it is compact at the paper's reference cluster sizes
        // but exponential in n (the process sections must remember
        // the whole infrastructure pattern).
        for (std::size_t r = 0; r < topo.rackCount(); ++r)
            ensure_rack(r);
        for (std::size_t h = 0; h < topo.hostCount(); ++h)
            ensure_host(h);
        for (std::size_t v = 0; v < topo.vmCount(); ++v)
            ensure_vm(v);
        if (policy == SupervisorPolicy::Required) {
            for (std::size_t role = 0; role < role_count; ++role) {
                for (std::size_t node = 0; node < n; ++node)
                    ensure_supervisor(role, node);
            }
        }
        for (std::size_t role = 0; role < role_count; ++role) {
            for (const QuorumBlock &block :
                 catalog.planeBlocks(role, plane)) {
                for (std::size_t node = 0; node < n; ++node) {
                    for (std::size_t p : block.memberProcesses)
                        add_process(role, node, p);
                }
            }
        }
    }

    // Plane-irrelevant processes (and, under NodeMajor, any infra the
    // placements never touched) are appended afterwards; they never
    // appear in the structure function but keep the component
    // inventory complete.
    for (std::size_t role = 0; role < role_count; ++role) {
        for (std::size_t node = 0; node < n; ++node) {
            for (std::size_t p = 0;
                 p < catalog.role(role).processes.size(); ++p) {
                add_process(role, node, p);
            }
        }
    }
    for (std::size_t r = 0; r < topo.rackCount(); ++r)
        ensure_rack(r);
    for (std::size_t h = 0; h < topo.hostCount(); ++h)
        ensure_host(h);
    for (std::size_t v = 0; v < topo.vmCount(); ++v)
        ensure_vm(v);

    // Quorum blocks.
    std::vector<rbd::Block> top;
    for (std::size_t role = 0; role < role_count; ++role) {
        for (const QuorumBlock &block : catalog.planeBlocks(role, plane)) {
            std::vector<rbd::Block> instances;
            instances.reserve(n);
            for (std::size_t node = 0; node < n; ++node) {
                std::vector<rbd::Block> parts;
                for (std::size_t p : block.memberProcesses) {
                    parts.push_back(rbd::component(
                        procs[role * n + node][p]));
                }
                std::size_t vm = topo.vmOf(role, node);
                std::size_t host = topo.hostOfVm(vm);
                parts.push_back(rbd::component(vms[vm]));
                parts.push_back(rbd::component(hosts[host]));
                parts.push_back(
                    rbd::component(racks[topo.rackOfHost(host)]));
                if (policy == SupervisorPolicy::Required) {
                    parts.push_back(rbd::component(
                        supervisors[role * n + node]));
                }
                instances.push_back(rbd::series(std::move(parts)));
            }
            top.push_back(
                rbd::kOfN(fmea::requiredCount(
                              block.quorum, static_cast<unsigned>(n)),
                          std::move(instances)));
        }
    }

    // Local data-plane contribution: the per-host vRouter processes.
    if (plane == Plane::DataPlane) {
        for (const fmea::HostProcessSpec &proc : catalog.hostProcesses()) {
            if (!proc.requiredForDp)
                continue;
            top.push_back(rbd::component(add_component(
                proc.name, process_class(proc.restart))));
        }
        if (policy == SupervisorPolicy::Required) {
            top.push_back(rbd::component(add_component(
                "supervisor-vrouter",
                ExactComponentClass::ManualProcess)));
        }
    }

    require(!top.empty(), "plane has no availability-relevant blocks");
    system.setRoot(rbd::series(std::move(top)));
    return system;
}

double
exactPlaneAvailability(const fmea::ControllerCatalog &catalog,
                       const topology::DeploymentTopology &topo,
                       SupervisorPolicy policy, const SwParams &params,
                       Plane plane)
{
    return buildExactSystem(catalog, topo, policy, params, plane)
        .availabilityExact();
}

namespace
{

/**
 * Helper so ExactPlaneModel's members initialize in one pass:
 * system_ and classes_ come out of the same build.
 */
rbd::RbdSystem
buildWithClasses(const fmea::ControllerCatalog &catalog,
                 const topology::DeploymentTopology &topo,
                 SupervisorPolicy policy, Plane plane,
                 ExactVariableOrder order,
                 std::vector<ExactComponentClass> &classes)
{
    // The table availabilities are placeholders (paper defaults);
    // evaluation always rebuilds the probability vector from the
    // classes and the caller's params.
    return buildExactSystem(catalog, topo, policy, SwParams{}, plane,
                            &classes, order);
}

} // anonymous namespace

ExactPlaneModel::ExactPlaneModel(const fmea::ControllerCatalog &catalog,
                                 const topology::DeploymentTopology &topo,
                                 SupervisorPolicy policy, Plane plane,
                                 const Options &options)
    : system_(buildWithClasses(catalog, topo, policy, plane,
                               options.order, classes_)),
      compiled_(system_,
                rbd::CompiledRbd::Options{options.reorderBdd,
                                          options.reorderOptions,
                                          options.budget})
{
}

double
ExactPlaneModel::availability(const SwParams &params) const
{
    bdd::ProbabilityScratch scratch;
    return availability(params, scratch);
}

double
ExactPlaneModel::availability(const SwParams &params,
                              bdd::ProbabilityScratch &scratch) const
{
    params.validate();
    // Small fixed-size stack vector would do; the probability vector
    // is one double per component, reused sizes are tiny next to the
    // BDD traversal itself.
    std::vector<double> probs(classes_.size());
    for (std::size_t i = 0; i < classes_.size(); ++i)
        probs[i] = exactClassAvailability(classes_[i], params);
    return compiled_.probability(probs, scratch);
}

} // namespace sdnav::model
