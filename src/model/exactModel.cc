#include "model/exactModel.hh"

#include <limits>
#include <string>
#include <vector>

#include "common/error.hh"

namespace sdnav::model
{

using fmea::Plane;
using fmea::QuorumBlock;
using fmea::RestartMode;

double
exactClassAvailability(ExactComponentClass cls, const SwParams &params)
{
    switch (cls) {
      case ExactComponentClass::Rack:
        return params.rackAvailability;
      case ExactComponentClass::Host:
        return params.hostAvailability;
      case ExactComponentClass::Vm:
        return params.vmAvailability;
      case ExactComponentClass::AutoProcess:
        return params.processAvailability;
      case ExactComponentClass::ManualProcess:
        return params.manualProcessAvailability;
    }
    return 0.0; // Unreachable.
}

rbd::RbdSystem
buildExactSystem(const fmea::ControllerCatalog &catalog,
                 const topology::DeploymentTopology &topo,
                 SupervisorPolicy policy, const SwParams &params,
                 Plane plane, std::vector<ExactComponentClass> *classes)
{
    catalog.validate();
    topo.validate();
    params.validate();
    require(catalog.roles().size() == topo.roleCount(),
            "catalog role count does not match topology role count");

    rbd::RbdSystem system;
    if (classes)
        classes->clear();
    auto add_component = [&](std::string name,
                             ExactComponentClass cls) {
        if (classes)
            classes->push_back(cls);
        return system.addComponent(std::move(name),
                                   exactClassAvailability(cls, params));
    };
    auto process_class = [](RestartMode mode) {
        return mode == RestartMode::Auto
            ? ExactComponentClass::AutoProcess
            : ExactComponentClass::ManualProcess;
    };

    // Shared infrastructure first: racks, hosts, VMs. Keeping shared
    // variables early in the BDD order bounds the diagram width.
    std::vector<rbd::ComponentId> racks;
    for (std::size_t r = 0; r < topo.rackCount(); ++r)
        racks.push_back(add_component("rack" + std::to_string(r),
                                      ExactComponentClass::Rack));
    std::vector<rbd::ComponentId> hosts;
    for (std::size_t h = 0; h < topo.hostCount(); ++h)
        hosts.push_back(add_component("host" + std::to_string(h),
                                      ExactComponentClass::Host));
    std::vector<rbd::ComponentId> vms;
    for (std::size_t v = 0; v < topo.vmCount(); ++v)
        vms.push_back(add_component("vm" + std::to_string(v),
                                    ExactComponentClass::Vm));

    // Per node-role supervisors (also effectively shared: every block
    // of a role on a node depends on the same supervisor).
    std::size_t n = topo.clusterSize();
    std::size_t role_count = topo.roleCount();
    std::vector<rbd::ComponentId> supervisors;
    if (policy == SupervisorPolicy::Required) {
        supervisors.resize(role_count * n);
        for (std::size_t role = 0; role < role_count; ++role) {
            for (std::size_t node = 0; node < n; ++node) {
                supervisors[role * n + node] = add_component(
                    "supervisor-" + catalog.role(role).name + "-" +
                        std::to_string(node),
                    ExactComponentClass::ManualProcess);
            }
        }
    }

    // Per-process components. Variable order matters enormously for
    // the BDD: group the plane's quorum-relevant processes by block
    // (each block's counting structure then touches a contiguous
    // variable range) rather than by node. Plane-irrelevant processes
    // are appended afterwards; they never appear in the structure
    // function but keep the component inventory complete.
    constexpr std::size_t unassigned =
        std::numeric_limits<std::size_t>::max();
    std::vector<std::vector<rbd::ComponentId>> procs(role_count * n);
    for (std::size_t role = 0; role < role_count; ++role) {
        std::size_t count = catalog.role(role).processes.size();
        for (std::size_t node = 0; node < n; ++node)
            procs[role * n + node].assign(count, unassigned);
    }
    auto add_process = [&](std::size_t role, std::size_t node,
                           std::size_t p) {
        auto &slot = procs[role * n + node][p];
        if (slot != unassigned)
            return;
        const fmea::ProcessSpec &proc = catalog.role(role).processes[p];
        slot = add_component(proc.name + "-" + std::to_string(node),
                             process_class(proc.restart));
    };
    for (std::size_t role = 0; role < role_count; ++role) {
        for (const QuorumBlock &block :
             catalog.planeBlocks(role, plane)) {
            for (std::size_t node = 0; node < n; ++node) {
                for (std::size_t p : block.memberProcesses)
                    add_process(role, node, p);
            }
        }
    }
    for (std::size_t role = 0; role < role_count; ++role) {
        for (std::size_t node = 0; node < n; ++node) {
            for (std::size_t p = 0;
                 p < catalog.role(role).processes.size(); ++p) {
                add_process(role, node, p);
            }
        }
    }

    // Quorum blocks.
    std::vector<rbd::Block> top;
    for (std::size_t role = 0; role < role_count; ++role) {
        for (const QuorumBlock &block : catalog.planeBlocks(role, plane)) {
            std::vector<rbd::Block> instances;
            instances.reserve(n);
            for (std::size_t node = 0; node < n; ++node) {
                std::vector<rbd::Block> parts;
                for (std::size_t p : block.memberProcesses) {
                    parts.push_back(rbd::component(
                        procs[role * n + node][p]));
                }
                std::size_t vm = topo.vmOf(role, node);
                std::size_t host = topo.hostOfVm(vm);
                parts.push_back(rbd::component(vms[vm]));
                parts.push_back(rbd::component(hosts[host]));
                parts.push_back(
                    rbd::component(racks[topo.rackOfHost(host)]));
                if (policy == SupervisorPolicy::Required) {
                    parts.push_back(rbd::component(
                        supervisors[role * n + node]));
                }
                instances.push_back(rbd::series(std::move(parts)));
            }
            top.push_back(
                rbd::kOfN(fmea::requiredCount(
                              block.quorum, static_cast<unsigned>(n)),
                          std::move(instances)));
        }
    }

    // Local data-plane contribution: the per-host vRouter processes.
    if (plane == Plane::DataPlane) {
        for (const fmea::HostProcessSpec &proc : catalog.hostProcesses()) {
            if (!proc.requiredForDp)
                continue;
            top.push_back(rbd::component(add_component(
                proc.name, process_class(proc.restart))));
        }
        if (policy == SupervisorPolicy::Required) {
            top.push_back(rbd::component(add_component(
                "supervisor-vrouter",
                ExactComponentClass::ManualProcess)));
        }
    }

    require(!top.empty(), "plane has no availability-relevant blocks");
    system.setRoot(rbd::series(std::move(top)));
    return system;
}

double
exactPlaneAvailability(const fmea::ControllerCatalog &catalog,
                       const topology::DeploymentTopology &topo,
                       SupervisorPolicy policy, const SwParams &params,
                       Plane plane)
{
    return buildExactSystem(catalog, topo, policy, params, plane)
        .availabilityExact();
}

namespace
{

/**
 * Helper so ExactPlaneModel's members initialize in one pass:
 * system_ and classes_ come out of the same build.
 */
rbd::RbdSystem
buildWithClasses(const fmea::ControllerCatalog &catalog,
                 const topology::DeploymentTopology &topo,
                 SupervisorPolicy policy, Plane plane,
                 std::vector<ExactComponentClass> &classes)
{
    // The table availabilities are placeholders (paper defaults);
    // evaluation always rebuilds the probability vector from the
    // classes and the caller's params.
    return buildExactSystem(catalog, topo, policy, SwParams{}, plane,
                            &classes);
}

} // anonymous namespace

ExactPlaneModel::ExactPlaneModel(const fmea::ControllerCatalog &catalog,
                                 const topology::DeploymentTopology &topo,
                                 SupervisorPolicy policy, Plane plane)
    : system_(buildWithClasses(catalog, topo, policy, plane, classes_)),
      compiled_(system_)
{
}

double
ExactPlaneModel::availability(const SwParams &params) const
{
    bdd::ProbabilityScratch scratch;
    return availability(params, scratch);
}

double
ExactPlaneModel::availability(const SwParams &params,
                              bdd::ProbabilityScratch &scratch) const
{
    params.validate();
    // Small fixed-size stack vector would do; the probability vector
    // is one double per component, reused sizes are tiny next to the
    // BDD traversal itself.
    std::vector<double> probs(classes_.size());
    for (std::size_t i = 0; i < classes_.size(); ++i)
        probs[i] = exactClassAvailability(classes_[i], params);
    return compiled_.probability(probs, scratch);
}

} // namespace sdnav::model
