/**
 * @file
 * Exact process-level structure-function models.
 *
 * Builds the full reliability block diagram of a controller catalog
 * deployed on a topology — every process, supervisor, VM, host, and
 * rack as an explicit component — so that BDD compilation (or Monte
 * Carlo sampling) yields the ground-truth plane availability against
 * which the closed-form SW-centric engine is validated.
 *
 * Structure, per plane:
 *
 *   plane up  =  AND over quorum blocks b:
 *                  at least m_b of the cluster's node instances of b,
 *   instance of b on node i  =  AND of b's member processes on i
 *                               AND node i's role VM, host, rack
 *                               AND node i's role supervisor
 *                                   (SupervisorPolicy::Required only).
 *
 * For the data plane the local vRouter processes (and the host
 * supervisor under policy Required) are appended in series.
 */

#ifndef SDNAV_MODEL_EXACT_MODEL_HH
#define SDNAV_MODEL_EXACT_MODEL_HH

#include "fmea/catalog.hh"
#include "model/params.hh"
#include "rbd/system.hh"
#include "topology/deployment.hh"

namespace sdnav::model
{

/**
 * Which SwParams field a component of the exact RBD draws its
 * availability from. The structure function itself never depends on
 * the parameter values, so recording the class per component lets a
 * sweep rebuild the per-component availability vector for new
 * parameters without rebuilding the system (see ExactPlaneModel).
 */
enum class ExactComponentClass
{
    Rack,
    Host,
    Vm,
    AutoProcess,
    ManualProcess,
};

/** The SwParams value an exact-model component class evaluates to. */
double exactClassAvailability(ExactComponentClass cls,
                              const SwParams &params);

/**
 * Variable (component) order the exact RBD builder emits. BDD size is
 * extremely order-sensitive; the right choice depends on the cluster
 * size.
 */
enum class ExactVariableOrder
{
    /**
     * Shared infrastructure first (racks, hosts, VMs), then per-node
     * supervisors, then processes grouped by quorum block. Compact at
     * the paper's reference cluster size (2N+1 = 3) and the order all
     * golden baselines were produced with — but the diagram must
     * remember the full infrastructure pattern across every process
     * section, which grows exponentially in the cluster size.
     */
    SharedInfrastructureFirst,

    /**
     * Node-major: each node's racks, hosts, VMs, supervisor, and
     * quorum processes occupy one contiguous variable group. Quorum
     * counting then crosses node-group boundaries with only the
     * per-block counters as state, keeping the diagram polynomial in
     * the cluster size — the order the 2N+1 scale-up benches use.
     */
    NodeMajor,
};

/**
 * Build the exact RBD for one plane of a catalog on a topology.
 *
 * Components are added in BDD-friendly order (shared infrastructure
 * first, then per-node supervisors and processes grouped by node) so
 * availabilityExact() stays cheap.
 *
 * @param classes When non-null, receives one ExactComponentClass per
 *                component, indexed by ComponentId.
 * @param order   Component emission order (see ExactVariableOrder);
 *                the default reproduces the golden baselines.
 */
rbd::RbdSystem buildExactSystem(
    const fmea::ControllerCatalog &catalog,
    const topology::DeploymentTopology &topo, SupervisorPolicy policy,
    const SwParams &params, fmea::Plane plane,
    std::vector<ExactComponentClass> *classes = nullptr,
    ExactVariableOrder order =
        ExactVariableOrder::SharedInfrastructureFirst);

/** Exact plane availability via BDD compilation of the full RBD. */
double exactPlaneAvailability(const fmea::ControllerCatalog &catalog,
                              const topology::DeploymentTopology &topo,
                              SupervisorPolicy policy,
                              const SwParams &params, fmea::Plane plane);

/**
 * Exact plane model compiled once, evaluated many times.
 *
 * exactPlaneAvailability() rebuilds the component table and
 * recompiles the BDD on every call even though only the per-variable
 * probabilities change between sweep points. This class does the
 * expensive work once per (catalog, topology, policy, plane) and
 * makes each sweep point a single linear-time BDD traversal.
 *
 * availability() is const and evaluation-only: one model can be
 * shared read-only across sweep worker threads, each thread passing
 * its own scratch.
 */
class ExactPlaneModel
{
  public:
    /** Build-time knobs; the default reproduces the natural
     *  component order the topology builder emits. */
    struct Options
    {
        /** Variable order the structure function is built with. */
        ExactVariableOrder order =
            ExactVariableOrder::SharedInfrastructureFirst;

        /**
         * Sift the compiled diagram (bdd::BddManager::reorderSifting)
         * after compilation. Shrinks node count on orders the builder
         * got wrong; availability values are unchanged.
         */
        bool reorderBdd = false;

        /** Tuning for the reorder pass when enabled. */
        bdd::ReorderOptions reorderOptions{};

        /**
         * Compile budget (wall deadline / live-node cap) forwarded to
         * the underlying CompiledRbd build; exceeding it throws
         * bdd::BudgetExceeded out of the constructor. Defaults to
         * unlimited.
         */
        bdd::StepBudget budget{};
    };

    ExactPlaneModel(const fmea::ControllerCatalog &catalog,
                    const topology::DeploymentTopology &topo,
                    SupervisorPolicy policy, fmea::Plane plane)
        : ExactPlaneModel(catalog, topo, policy, plane, Options())
    {
    }

    ExactPlaneModel(const fmea::ControllerCatalog &catalog,
                    const topology::DeploymentTopology &topo,
                    SupervisorPolicy policy, fmea::Plane plane,
                    const Options &options);

    /** Exact plane availability at the given parameters. */
    double availability(const SwParams &params) const;

    /** As availability(), reusing a caller-owned scratch buffer. */
    double availability(const SwParams &params,
                        bdd::ProbabilityScratch &scratch) const;

    /** The underlying component table and structure tree. */
    const rbd::RbdSystem &system() const { return system_; }

    /** Compiled diagram size (reachable nodes). */
    std::size_t bddNodeCount() const { return compiled_.nodeCount(); }

    /**
     * Total nodes allocated in the compiled manager. Evaluation must
     * never grow this; sweep benches assert it stays constant.
     */
    std::size_t totalBddNodes() const { return compiled_.totalNodes(); }

  private:
    // Declaration order is load-bearing: system_'s initializer fills
    // classes_, and compiled_ compiles system_.
    std::vector<ExactComponentClass> classes_;
    rbd::RbdSystem system_;
    rbd::CompiledRbd compiled_;
};

} // namespace sdnav::model

#endif // SDNAV_MODEL_EXACT_MODEL_HH
