/**
 * @file
 * Exact process-level structure-function models.
 *
 * Builds the full reliability block diagram of a controller catalog
 * deployed on a topology — every process, supervisor, VM, host, and
 * rack as an explicit component — so that BDD compilation (or Monte
 * Carlo sampling) yields the ground-truth plane availability against
 * which the closed-form SW-centric engine is validated.
 *
 * Structure, per plane:
 *
 *   plane up  =  AND over quorum blocks b:
 *                  at least m_b of the cluster's node instances of b,
 *   instance of b on node i  =  AND of b's member processes on i
 *                               AND node i's role VM, host, rack
 *                               AND node i's role supervisor
 *                                   (SupervisorPolicy::Required only).
 *
 * For the data plane the local vRouter processes (and the host
 * supervisor under policy Required) are appended in series.
 */

#ifndef SDNAV_MODEL_EXACT_MODEL_HH
#define SDNAV_MODEL_EXACT_MODEL_HH

#include "fmea/catalog.hh"
#include "model/params.hh"
#include "rbd/system.hh"
#include "topology/deployment.hh"

namespace sdnav::model
{

/**
 * Build the exact RBD for one plane of a catalog on a topology.
 *
 * Components are added in BDD-friendly order (shared infrastructure
 * first, then per-node supervisors and processes grouped by node) so
 * availabilityExact() stays cheap.
 */
rbd::RbdSystem buildExactSystem(const fmea::ControllerCatalog &catalog,
                                const topology::DeploymentTopology &topo,
                                SupervisorPolicy policy,
                                const SwParams &params,
                                fmea::Plane plane);

/** Exact plane availability via BDD compilation of the full RBD. */
double exactPlaneAvailability(const fmea::ControllerCatalog &catalog,
                              const topology::DeploymentTopology &topo,
                              SupervisorPolicy policy,
                              const SwParams &params, fmea::Plane plane);

} // namespace sdnav::model

#endif // SDNAV_MODEL_EXACT_MODEL_HH
