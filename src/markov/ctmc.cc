#include "markov/ctmc.hh"

#include <cmath>

#include "common/error.hh"

namespace sdnav::markov
{

StateId
Ctmc::addState(std::string name, bool up)
{
    names_.push_back(std::move(name));
    up_.push_back(up);
    return up_.size() - 1;
}

void
Ctmc::addTransition(StateId from, StateId to, double rate)
{
    require(from < up_.size() && to < up_.size(),
            "transition references unknown state");
    require(from != to, "self-transitions are not meaningful in a CTMC");
    requirePositive(rate, "rate");
    transitions_.push_back({from, to, rate});
}

const std::string &
Ctmc::stateName(StateId id) const
{
    require(id < names_.size(), "unknown state id");
    return names_[id];
}

bool
Ctmc::stateUp(StateId id) const
{
    require(id < up_.size(), "unknown state id");
    return up_[id];
}

Matrix
Ctmc::generator() const
{
    require(stateCount() > 0, "CTMC has no states");
    Matrix q(stateCount(), stateCount());
    for (const Transition &t : transitions_) {
        q.at(t.from, t.to) += t.rate;
        q.at(t.from, t.from) -= t.rate;
    }
    return q;
}

std::vector<double>
Ctmc::steadyState() const
{
    std::size_t n = stateCount();
    require(n > 0, "CTMC has no states");
    if (n == 1)
        return {1.0};

    // Solve pi Q = 0 with the normalization sum(pi) = 1 by replacing
    // the last balance equation: A = Q^T with last row set to ones,
    // b = (0, ..., 0, 1).
    Matrix a = generator().transposed();
    for (std::size_t j = 0; j < n; ++j)
        a.at(n - 1, j) = 1.0;
    std::vector<double> b(n, 0.0);
    b[n - 1] = 1.0;
    std::vector<double> pi = solveLinearSystem(a, b);

    // Clamp tiny negatives from rounding and renormalize.
    double total = 0.0;
    for (double &p : pi) {
        if (p < 0.0 && p > -1e-12)
            p = 0.0;
        require(p >= 0.0, "steady state solution is not a distribution "
                          "(chain may be reducible)");
        total += p;
    }
    require(total > 0.0, "steady state mass vanished");
    for (double &p : pi)
        p /= total;
    return pi;
}

double
Ctmc::steadyStateAvailability() const
{
    std::vector<double> pi = steadyState();
    double up = 0.0;
    for (std::size_t i = 0; i < pi.size(); ++i) {
        if (up_[i])
            up += pi[i];
    }
    return up;
}

std::vector<double>
Ctmc::transientDistribution(const std::vector<double> &initial, double t,
                            double tolerance) const
{
    std::size_t n = stateCount();
    require(initial.size() == n, "initial distribution size mismatch");
    requireNonNegative(t, "t");
    requirePositive(tolerance, "tolerance");
    if (t == 0.0)
        return initial;

    // Uniformization: P(t) = sum_k Poisson(k; Lambda t) P^k where
    // P = I + Q / Lambda and Lambda >= max exit rate.
    Matrix q = generator();
    double lambda = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        lambda = std::max(lambda, -q.at(i, i));
    if (lambda == 0.0)
        return initial; // No transitions at all.
    lambda *= 1.02; // Headroom keeps the DTMC aperiodic.

    Matrix p = q;
    p.scale(1.0 / lambda);
    p.add(Matrix::identity(n));

    double mean = lambda * t;
    std::vector<double> term = initial; // initial * P^k, k = 0.
    std::vector<double> result(n, 0.0);

    // Poisson weights by stable recurrence; start from the mode to
    // avoid underflow for very large mean is unnecessary here since we
    // accumulate forward with scaled weights.
    double log_weight = -mean; // log Poisson(0).
    double accumulated = 0.0;
    std::size_t k = 0;
    // Cap iterations generously: mean + 12 sqrt(mean) + 64.
    std::size_t max_k = static_cast<std::size_t>(
        mean + 12.0 * std::sqrt(mean + 1.0) + 64.0);
    for (;;) {
        double weight = std::exp(log_weight);
        for (std::size_t i = 0; i < n; ++i)
            result[i] += weight * term[i];
        accumulated += weight;
        if (1.0 - accumulated < tolerance || k >= max_k)
            break;
        ++k;
        log_weight += std::log(mean / static_cast<double>(k));
        term = p.leftMultiply(term);
    }

    // The truncated tail mass is redistributed by normalization.
    double total = 0.0;
    for (double v : result)
        total += v;
    if (total > 0.0) {
        for (double &v : result)
            v /= total;
    }
    return result;
}

double
Ctmc::transientAvailability(const std::vector<double> &initial,
                            double t) const
{
    std::vector<double> dist = transientDistribution(initial, t);
    double up = 0.0;
    for (std::size_t i = 0; i < dist.size(); ++i) {
        if (up_[i])
            up += dist[i];
    }
    return up;
}

double
Ctmc::intervalAvailability(const std::vector<double> &initial,
                           double horizon, std::size_t steps) const
{
    requirePositive(horizon, "horizon");
    require(steps >= 2 && steps % 2 == 0,
            "Simpson integration needs an even step count >= 2");
    double h = horizon / static_cast<double>(steps);
    double sum = transientAvailability(initial, 0.0) +
                 transientAvailability(initial, horizon);
    for (std::size_t i = 1; i < steps; ++i) {
        double weight = (i % 2 == 1) ? 4.0 : 2.0;
        sum += weight *
               transientAvailability(initial, h * static_cast<double>(i));
    }
    return sum * h / 3.0 / horizon;
}

double
Ctmc::meanTimeToFirstFailure(const std::vector<double> &initial) const
{
    std::size_t n = stateCount();
    require(initial.size() == n, "initial distribution size mismatch");

    std::vector<std::size_t> up_states;
    for (StateId s = 0; s < n; ++s) {
        if (up_[s])
            up_states.push_back(s);
        else
            require(initial[s] == 0.0,
                    "initial distribution must start in up states");
    }
    require(!up_states.empty(), "chain has no up states");

    // Solve Q_UU t = -1 for the expected hitting times of the down
    // set from each up state.
    Matrix q = generator();
    std::size_t m = up_states.size();
    Matrix quu(m, m);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < m; ++j)
            quu.at(i, j) = q.at(up_states[i], up_states[j]);
    std::vector<double> rhs(m, -1.0);
    std::vector<double> hitting = solveLinearSystem(quu, rhs);

    double mttf = 0.0;
    for (std::size_t i = 0; i < m; ++i)
        mttf += initial[up_states[i]] * hitting[i];
    return mttf;
}

} // namespace sdnav::markov
