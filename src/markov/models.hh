/**
 * @file
 * Canonical CTMC availability models: the two-state repairable
 * component behind A = F/(F+R), the supervisor-coupled process of
 * paper section VI.A, and repairable k-of-n blocks with limited
 * repair crews (which reduce to the paper's eq. (1) when repairs are
 * unconstrained).
 */

#ifndef SDNAV_MARKOV_MODELS_HH
#define SDNAV_MARKOV_MODELS_HH

#include "markov/ctmc.hh"
#include "prob/processAvailability.hh"

namespace sdnav::markov
{

/**
 * Two-state repairable component: UP --(1/mtbf)--> DOWN --(1/mttr)-->
 * UP. Steady-state availability is mtbf / (mtbf + mttr).
 *
 * @param mtbfHours Mean time between failures.
 * @param mttrHours Mean time to restore, > 0 (a zero-restore
 *                  component is trivially always up).
 */
Ctmc twoStateModel(double mtbfHours, double mttrHours);

/**
 * Scenario-2 supervisor-coupled process chain (paper section VI.A):
 * the process goes down both when it fails itself (auto-restarted in
 * R) and when its supervisor fails (node-role killed and manually
 * restarted in R_S).
 *
 * States: UP; AUTO_RESTART; NODE_RESTART. Availability of the chain
 * equals F* / (F* + R*) with F* = 1/(1/F + 1/F_s) and R* the
 * rate-weighted restart time — the paper's claim, derived instead of
 * assumed.
 *
 * @param timings Process timing parameters (F, R, R_S).
 * @param supervisorMtbfHours Supervisor MTBF F_s.
 */
Ctmc supervisorCoupledModel(const prob::ProcessTimings &timings,
                            double supervisorMtbfHours);

/**
 * Repairable k-of-n block as a birth-death chain on the number of
 * failed elements. Element failures are exponential with the given
 * MTBF; a limited pool of repair crews restores elements at rate
 * 1/mttr each.
 *
 * With crews >= n the failed-count distribution is binomial and the
 * availability equals the paper's eq. (1); with fewer crews repairs
 * queue and availability drops — the repair-capacity ablation.
 *
 * @param n Total elements.
 * @param m Required up elements (block up iff failed <= n - m).
 * @param mtbfHours Per-element MTBF.
 * @param mttrHours Per-element repair time.
 * @param repairCrews Number of parallel repair crews, >= 1.
 */
Ctmc kOfNRepairableModel(unsigned n, unsigned m, double mtbfHours,
                         double mttrHours, unsigned repairCrews);

/**
 * Closed-form steady-state distribution of a birth-death chain with
 * per-state birth rates lambda[i] (i -> i+1) and death rates mu[i]
 * (i+1 -> i). Sizes: lambda and mu both have n-1 entries for an
 * n-state chain.
 */
std::vector<double> birthDeathSteadyState(
    const std::vector<double> &birthRates,
    const std::vector<double> &deathRates);

} // namespace sdnav::markov

#endif // SDNAV_MARKOV_MODELS_HH
