/**
 * @file
 * Continuous-time Markov chain (CTMC) availability models.
 *
 * The paper's process-availability arguments (section VI.A) are
 * renewal/Markov arguments: A = F/(F+R) is the steady-state up
 * probability of a two-state repairable component, and the supervisor
 * coupling results follow from competing exponential failure causes.
 * This module lets those arguments be *derived* rather than assumed:
 * build the chain, solve pi Q = 0, and read off the availability.
 */

#ifndef SDNAV_MARKOV_CTMC_HH
#define SDNAV_MARKOV_CTMC_HH

#include <cstddef>
#include <string>
#include <vector>

#include "markov/matrix.hh"

namespace sdnav::markov
{

/** Identifier of a CTMC state. */
using StateId = std::size_t;

/**
 * A finite-state continuous-time Markov chain with named states and a
 * per-state "system up" flag.
 */
class Ctmc
{
  public:
    Ctmc() = default;

    /**
     * Add a state.
     *
     * @param name Diagnostic name.
     * @param up Whether the modeled system is up in this state.
     * @return The new state's id.
     */
    StateId addState(std::string name, bool up);

    /**
     * Add a transition with the given exponential rate. Multiple
     * transitions between the same pair accumulate.
     *
     * @param from Source state.
     * @param to Destination state (distinct from source).
     * @param rate Transition rate, > 0 (per unit time).
     */
    void addTransition(StateId from, StateId to, double rate);

    /** Number of states. */
    std::size_t stateCount() const { return up_.size(); }

    /** Name of a state. */
    const std::string &stateName(StateId id) const;

    /** Whether the system is up in a state. */
    bool stateUp(StateId id) const;

    /** The infinitesimal generator matrix Q. */
    Matrix generator() const;

    /**
     * Steady-state distribution pi solving pi Q = 0, sum(pi) = 1.
     * Requires the chain to be irreducible (a single recurrent class);
     * throws ModelError if the resulting system is singular.
     */
    std::vector<double> steadyState() const;

    /** Steady-state availability: sum of pi over up states. */
    double steadyStateAvailability() const;

    /**
     * Transient state distribution at time t from an initial
     * distribution, computed by uniformization (stable for the
     * stiff rates typical of availability models).
     *
     * @param initial Initial distribution (sums to 1).
     * @param t Elapsed time, >= 0.
     * @param tolerance Truncation tolerance of the Poisson sum.
     */
    std::vector<double> transientDistribution(
        const std::vector<double> &initial, double t,
        double tolerance = 1e-12) const;

    /** Transient availability: up-state mass at time t. */
    double transientAvailability(const std::vector<double> &initial,
                                 double t) const;

    /**
     * Expected interval availability over [0, horizon]: the time
     * average of transient availability, integrated numerically with
     * the given number of steps (Simpson's rule).
     */
    double intervalAvailability(const std::vector<double> &initial,
                                double horizon,
                                std::size_t steps = 128) const;

    /**
     * Mean time to first failure: the expected time until the chain
     * first enters any down state, starting from the given
     * distribution (which must place all its mass on up states).
     * Computed by solving the absorbing-chain equations
     * Q_UU t = -1 over the up states.
     *
     * @throws ModelError if the chain cannot reach a down state from
     *         some up state (singular system), or if the initial
     *         distribution has mass on down states.
     */
    double meanTimeToFirstFailure(
        const std::vector<double> &initial) const;

  private:
    struct Transition
    {
        StateId from;
        StateId to;
        double rate;
    };

    std::vector<std::string> names_;
    std::vector<bool> up_;
    std::vector<Transition> transitions_;
};

} // namespace sdnav::markov

#endif // SDNAV_MARKOV_CTMC_HH
