#include "markov/matrix.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.hh"

namespace sdnav::markov
{

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
    require(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

Matrix
Matrix::identity(std::size_t order)
{
    Matrix m(order, order);
    for (std::size_t i = 0; i < order; ++i)
        m.at(i, i) = 1.0;
    return m;
}

double &
Matrix::at(std::size_t row, std::size_t col)
{
    require(row < rows_ && col < cols_, "matrix index out of range");
    return data_[row * cols_ + col];
}

double
Matrix::at(std::size_t row, std::size_t col) const
{
    require(row < rows_ && col < cols_, "matrix index out of range");
    return data_[row * cols_ + col];
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    require(cols_ == other.rows_, "matrix product dimension mismatch");
    Matrix result(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            double v = data_[i * cols_ + k];
            if (v == 0.0)
                continue;
            for (std::size_t j = 0; j < other.cols_; ++j)
                result.data_[i * other.cols_ + j] +=
                    v * other.data_[k * other.cols_ + j];
        }
    }
    return result;
}

std::vector<double>
Matrix::multiply(const std::vector<double> &vec) const
{
    require(vec.size() == cols_, "matrix-vector dimension mismatch");
    std::vector<double> result(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < cols_; ++j)
            sum += data_[i * cols_ + j] * vec[j];
        result[i] = sum;
    }
    return result;
}

std::vector<double>
Matrix::leftMultiply(const std::vector<double> &vec) const
{
    require(vec.size() == rows_, "vector-matrix dimension mismatch");
    std::vector<double> result(cols_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        double v = vec[i];
        if (v == 0.0)
            continue;
        for (std::size_t j = 0; j < cols_; ++j)
            result[j] += v * data_[i * cols_ + j];
    }
    return result;
}

Matrix
Matrix::transposed() const
{
    Matrix result(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            result.at(j, i) = data_[i * cols_ + j];
    return result;
}

void
Matrix::scale(double factor)
{
    for (double &v : data_)
        v *= factor;
}

void
Matrix::add(const Matrix &other)
{
    require(rows_ == other.rows_ && cols_ == other.cols_,
            "matrix addition shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

double
Matrix::maxAbs() const
{
    double best = 0.0;
    for (double v : data_)
        best = std::max(best, std::fabs(v));
    return best;
}

std::string
Matrix::str(int precision) const
{
    std::ostringstream os;
    os << std::setprecision(precision);
    for (std::size_t i = 0; i < rows_; ++i) {
        os << "[";
        for (std::size_t j = 0; j < cols_; ++j) {
            if (j > 0)
                os << ", ";
            os << data_[i * cols_ + j];
        }
        os << "]\n";
    }
    return os.str();
}

std::vector<double>
solveLinearSystem(const Matrix &a, const std::vector<double> &b)
{
    require(a.rows() == a.cols(), "linear solve requires a square matrix");
    require(b.size() == a.rows(), "right-hand side size mismatch");
    std::size_t n = a.rows();

    // Augmented working copy.
    std::vector<std::vector<double>> work(n, std::vector<double>(n + 1));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            work[i][j] = a.at(i, j);
        work[i][n] = b[i];
    }

    // Forward elimination with partial pivoting.
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row) {
            if (std::fabs(work[row][col]) > std::fabs(work[pivot][col]))
                pivot = row;
        }
        require(std::fabs(work[pivot][col]) > 1e-300,
                "linear system is singular");
        std::swap(work[col], work[pivot]);
        for (std::size_t row = col + 1; row < n; ++row) {
            double factor = work[row][col] / work[col][col];
            if (factor == 0.0)
                continue;
            for (std::size_t j = col; j <= n; ++j)
                work[row][j] -= factor * work[col][j];
        }
    }

    // Back substitution.
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double sum = work[i][n];
        for (std::size_t j = i + 1; j < n; ++j)
            sum -= work[i][j] * x[j];
        x[i] = sum / work[i][i];
    }
    return x;
}

} // namespace sdnav::markov
