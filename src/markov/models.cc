#include "markov/models.hh"

#include <algorithm>

#include "common/error.hh"

namespace sdnav::markov
{

Ctmc
twoStateModel(double mtbfHours, double mttrHours)
{
    requirePositive(mtbfHours, "mtbfHours");
    requirePositive(mttrHours, "mttrHours");
    Ctmc chain;
    StateId up = chain.addState("up", true);
    StateId down = chain.addState("down", false);
    chain.addTransition(up, down, 1.0 / mtbfHours);
    chain.addTransition(down, up, 1.0 / mttrHours);
    return chain;
}

Ctmc
supervisorCoupledModel(const prob::ProcessTimings &timings,
                       double supervisorMtbfHours)
{
    timings.validate();
    requirePositive(supervisorMtbfHours, "supervisorMtbfHours");
    requirePositive(timings.autoRestartHours, "autoRestartHours");
    requirePositive(timings.manualRestartHours, "manualRestartHours");

    Ctmc chain;
    StateId up = chain.addState("up", true);
    StateId auto_restart = chain.addState("auto-restart", false);
    StateId node_restart = chain.addState("node-role-restart", false);
    chain.addTransition(up, auto_restart, 1.0 / timings.mtbfHours);
    chain.addTransition(auto_restart, up,
                        1.0 / timings.autoRestartHours);
    chain.addTransition(up, node_restart, 1.0 / supervisorMtbfHours);
    chain.addTransition(node_restart, up,
                        1.0 / timings.manualRestartHours);
    return chain;
}

Ctmc
kOfNRepairableModel(unsigned n, unsigned m, double mtbfHours,
                    double mttrHours, unsigned repairCrews)
{
    require(n >= 1, "k-of-n model needs at least one element");
    require(m >= 1 && m <= n, "required count must be in [1, n]");
    requirePositive(mtbfHours, "mtbfHours");
    requirePositive(mttrHours, "mttrHours");
    require(repairCrews >= 1, "need at least one repair crew");

    double failure_rate = 1.0 / mtbfHours;
    double repair_rate = 1.0 / mttrHours;

    Ctmc chain;
    for (unsigned failed = 0; failed <= n; ++failed) {
        bool up = (n - failed) >= m;
        chain.addState("failed=" + std::to_string(failed), up);
    }
    for (unsigned failed = 0; failed < n; ++failed) {
        // failed -> failed + 1: each of the (n - failed) working
        // elements can fail.
        chain.addTransition(failed, failed + 1,
                            static_cast<double>(n - failed) *
                                failure_rate);
        // failed + 1 -> failed: repairs proceed in parallel up to the
        // crew limit.
        unsigned active = std::min(failed + 1, repairCrews);
        chain.addTransition(failed + 1, failed,
                            static_cast<double>(active) * repair_rate);
    }
    return chain;
}

std::vector<double>
birthDeathSteadyState(const std::vector<double> &birthRates,
                      const std::vector<double> &deathRates)
{
    require(birthRates.size() == deathRates.size(),
            "birth/death rate vectors must match in size");
    std::size_t n = birthRates.size() + 1;
    std::vector<double> pi(n, 0.0);
    pi[0] = 1.0;
    for (std::size_t i = 1; i < n; ++i) {
        requirePositive(birthRates[i - 1], "birthRates");
        requirePositive(deathRates[i - 1], "deathRates");
        pi[i] = pi[i - 1] * birthRates[i - 1] / deathRates[i - 1];
    }
    double total = 0.0;
    for (double p : pi)
        total += p;
    for (double &p : pi)
        p /= total;
    return pi;
}

} // namespace sdnav::markov
