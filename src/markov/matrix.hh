/**
 * @file
 * Dense row-major matrix with the operations the CTMC solvers need.
 * Deliberately minimal: this is numeric plumbing, not a linear algebra
 * library.
 */

#ifndef SDNAV_MARKOV_MATRIX_HH
#define SDNAV_MARKOV_MATRIX_HH

#include <cstddef>
#include <string>
#include <vector>

namespace sdnav::markov
{

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Construct a rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** The identity matrix of the given order. */
    static Matrix identity(std::size_t order);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Element access. */
    double &at(std::size_t row, std::size_t col);
    double at(std::size_t row, std::size_t col) const;

    /** Matrix product; dimensions must agree. */
    Matrix multiply(const Matrix &other) const;

    /** Matrix-vector product; vec.size() must equal cols(). */
    std::vector<double> multiply(const std::vector<double> &vec) const;

    /** Row-vector times matrix: result_j = sum_i vec_i * M(i, j). */
    std::vector<double> leftMultiply(const std::vector<double> &vec) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /** Scale every element in place. */
    void scale(double factor);

    /** this += other (same shape). */
    void add(const Matrix &other);

    /** Maximum absolute element. */
    double maxAbs() const;

    /** Multiline text rendering for diagnostics. */
    std::string str(int precision = 6) const;

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<double> data_;
};

/**
 * Solve the linear system A x = b by Gaussian elimination with partial
 * pivoting. A is copied; the caller's matrix is untouched.
 *
 * @param a Square coefficient matrix.
 * @param b Right-hand side (size == a.rows()).
 * @return The solution vector.
 * @throws ModelError if the matrix is singular to working precision.
 */
std::vector<double> solveLinearSystem(const Matrix &a,
                                      const std::vector<double> &b);

} // namespace sdnav::markov

#endif // SDNAV_MARKOV_MATRIX_HH
