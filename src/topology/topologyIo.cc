#include "topology/topologyIo.hh"

#include <fstream>

#include "common/error.hh"

namespace sdnav::topology
{

json::Value
topologyToJson(const DeploymentTopology &topo)
{
    topo.validate();
    json::Value root = json::Value::makeObject();
    root.set("name", topo.name());
    root.set("roles", static_cast<double>(topo.roleCount()));
    root.set("nodes", static_cast<double>(topo.clusterSize()));
    root.set("racks", static_cast<double>(topo.rackCount()));

    json::Value hosts = json::Value::makeArray();
    for (std::size_t h = 0; h < topo.hostCount(); ++h)
        hosts.push(static_cast<double>(topo.rackOfHost(h)));
    root.set("hosts", std::move(hosts));

    json::Value vms = json::Value::makeArray();
    for (std::size_t v = 0; v < topo.vmCount(); ++v) {
        json::Value vm = json::Value::makeObject();
        vm.set("host", static_cast<double>(topo.hostOfVm(v)));
        json::Value placements = json::Value::makeArray();
        for (const RoleInstance &p : topo.vmPlacements(v)) {
            json::Value pair = json::Value::makeArray();
            pair.push(static_cast<double>(p.role));
            pair.push(static_cast<double>(p.node));
            placements.push(std::move(pair));
        }
        vm.set("placements", std::move(placements));
        vms.push(std::move(vm));
    }
    root.set("vms", std::move(vms));
    return root;
}

namespace
{

std::size_t
asIndex(const json::Value &value, const char *what)
{
    double number = value.asNumber();
    auto index = static_cast<std::size_t>(number);
    require(number >= 0.0 &&
                static_cast<double>(index) == number,
            std::string(what) + " must be a non-negative integer");
    return index;
}

} // anonymous namespace

DeploymentTopology
topologyFromJson(const json::Value &value)
{
    require(value.isObject(), "topology document must be an object");

    if (value.contains("reference")) {
        const std::string &kind = value.at("reference").asString();
        std::size_t roles =
            static_cast<std::size_t>(value.numberOr("roles", 4));
        std::size_t nodes =
            static_cast<std::size_t>(value.numberOr("nodes", 3));
        if (kind == "small")
            return smallTopology(roles, nodes);
        if (kind == "medium")
            return mediumTopology(roles, nodes);
        if (kind == "large")
            return largeTopology(roles, nodes);
        throw ModelError("unknown reference topology: '" + kind + "'");
    }

    std::size_t roles = asIndex(value.at("roles"), "roles");
    std::size_t nodes = asIndex(value.at("nodes"), "nodes");
    DeploymentTopology topo(value.stringOr("name", "unnamed"), roles,
                            nodes);

    std::size_t racks = asIndex(value.at("racks"), "racks");
    for (std::size_t r = 0; r < racks; ++r)
        topo.addRack();

    for (const json::Value &rack_of_host :
         value.at("hosts").asArray()) {
        topo.addHost(asIndex(rack_of_host, "host rack index"));
    }

    for (const json::Value &vm : value.at("vms").asArray()) {
        std::size_t host = asIndex(vm.at("host"), "vm host");
        std::vector<RoleInstance> placements;
        for (const json::Value &pair :
             vm.at("placements").asArray()) {
            const auto &items = pair.asArray();
            require(items.size() == 2,
                    "placement must be a [role, node] pair");
            placements.push_back({asIndex(items[0], "placement role"),
                                  asIndex(items[1],
                                          "placement node")});
        }
        topo.addVm(host, std::move(placements));
    }

    topo.validate();
    return topo;
}

DeploymentTopology
loadTopology(const std::string &path)
{
    return topologyFromJson(json::parseFile(path));
}

void
saveTopology(const DeploymentTopology &topo, const std::string &path)
{
    std::ofstream out(path);
    require(static_cast<bool>(out),
            "cannot open file for writing: " + path);
    out << topologyToJson(topo).dump(2) << "\n";
    require(static_cast<bool>(out), "failed writing " + path);
}

} // namespace sdnav::topology
