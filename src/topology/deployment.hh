/**
 * @file
 * Physical deployment topologies (paper section IV, Fig. 2).
 *
 * A deployment places every controller role instance (role x cluster
 * node) onto a VM, each VM onto a host, and each host into a rack.
 * The three reference topologies:
 *
 * - Small: all roles of a node share one VM (GCAD); one VM per host;
 *   all hosts in a single rack.
 * - Medium: each role in its own VM; one node's VMs share a host;
 *   a quorum of hosts shares rack 1, the rest are in rack 2.
 * - Large: each role in its own VM on its own host; each node's
 *   hosts share a rack, one rack per node.
 *
 * Topologies are pure structure: availabilities live in the models.
 * Generalizes beyond the paper's 3-node, 4-role configuration to any
 * cluster size and role count, plus fully custom layouts.
 */

#ifndef SDNAV_TOPOLOGY_DEPLOYMENT_HH
#define SDNAV_TOPOLOGY_DEPLOYMENT_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace sdnav::topology
{

/** The paper's reference topology kinds. */
enum class ReferenceKind { Small, Medium, Large };

/** Name of a reference kind ("Small"/"Medium"/"Large"). */
std::string referenceKindName(ReferenceKind kind);

/** Placement key: a role instance is (role index, node index). */
struct RoleInstance
{
    std::size_t role;
    std::size_t node;

    bool
    operator==(const RoleInstance &other) const
    {
        return role == other.role && node == other.node;
    }
};

/**
 * A physical deployment: racks, hosts, VMs, and the placement of each
 * role instance.
 */
class DeploymentTopology
{
  public:
    /**
     * Start building a deployment.
     *
     * @param name Diagnostic name.
     * @param roleCount Number of controller roles.
     * @param clusterSize Number of controller nodes (2N+1).
     */
    DeploymentTopology(std::string name, std::size_t roleCount,
                       std::size_t clusterSize);

    /** Add a rack; returns its index. */
    std::size_t addRack();

    /** Add a host in the given rack; returns the host index. */
    std::size_t addHost(std::size_t rack);

    /**
     * Add a VM on the given host carrying the given role instances;
     * returns the VM index.
     */
    std::size_t addVm(std::size_t host,
                      std::vector<RoleInstance> placements);

    /** Deployment name. */
    const std::string &name() const { return name_; }

    /** Number of roles. */
    std::size_t roleCount() const { return role_count_; }

    /** Number of cluster nodes. */
    std::size_t clusterSize() const { return cluster_size_; }

    /** Number of racks / hosts / VMs. */
    std::size_t rackCount() const { return rack_count_; }
    std::size_t hostCount() const { return host_rack_.size(); }
    std::size_t vmCount() const { return vms_.size(); }

    /** Rack of a host. */
    std::size_t rackOfHost(std::size_t host) const;

    /** Host of a VM. */
    std::size_t hostOfVm(std::size_t vm) const;

    /** Role instances placed on a VM. */
    const std::vector<RoleInstance> &vmPlacements(std::size_t vm) const;

    /** VM carrying a role instance. */
    std::size_t vmOf(std::size_t role, std::size_t node) const;

    /** Host carrying a role instance. */
    std::size_t hostOf(std::size_t role, std::size_t node) const;

    /** Rack containing a role instance. */
    std::size_t rackOf(std::size_t role, std::size_t node) const;

    /** True if the VM carries more than one role instance. */
    bool vmIsShared(std::size_t vm) const;

    /** True if any VM carries multiple role instances. */
    bool hasSharedVms() const;

    /**
     * Check completeness: every role instance placed exactly once,
     * all references in range. @throws ModelError on problems.
     */
    void validate() const;

    /** Human-readable layout summary. */
    std::string describe() const;

  private:
    std::string name_;
    std::size_t role_count_;
    std::size_t cluster_size_;
    std::size_t rack_count_ = 0;
    std::vector<std::size_t> host_rack_;

    struct Vm
    {
        std::size_t host;
        std::vector<RoleInstance> placements;
    };

    std::vector<Vm> vms_;
    // vm_of_[role * cluster_size_ + node], npos when unplaced.
    std::vector<std::size_t> vm_of_;
};

/**
 * The Small reference topology generalized to any cluster size and
 * role count: one shared VM per node, one host per node, one rack.
 */
DeploymentTopology smallTopology(std::size_t roleCount = 4,
                                 std::size_t clusterSize = 3);

/**
 * The Medium reference topology: per-role VMs, one node per host, a
 * quorum of hosts in rack 1 and the remainder in rack 2.
 */
DeploymentTopology mediumTopology(std::size_t roleCount = 4,
                                  std::size_t clusterSize = 3);

/**
 * The Large reference topology: per-role VMs on dedicated hosts, one
 * rack per node.
 */
DeploymentTopology largeTopology(std::size_t roleCount = 4,
                                 std::size_t clusterSize = 3);

/** Build a reference topology by kind. */
DeploymentTopology referenceTopology(ReferenceKind kind,
                                     std::size_t roleCount = 4,
                                     std::size_t clusterSize = 3);

/**
 * Large-style topology with a custom rack count: dedicated VM and
 * host per role instance, nodes assigned to racks round-robin. With
 * rackCount == clusterSize this is the Large topology; with 1 it is
 * a single-rack Large. Used by the rack ablation.
 */
DeploymentTopology rackSweepTopology(std::size_t rackCount,
                                     std::size_t roleCount = 4,
                                     std::size_t clusterSize = 3);

} // namespace sdnav::topology

#endif // SDNAV_TOPOLOGY_DEPLOYMENT_HH
