/**
 * @file
 * JSON serialization for deployment topologies.
 *
 * Document shape:
 *
 * ```json
 * {
 *   "name": "custom",
 *   "roles": 4,
 *   "nodes": 3,
 *   "racks": 2,
 *   "hosts": [0, 0, 1],
 *   "vms": [
 *     { "host": 0, "placements": [[0, 0], [1, 0]] },
 *     { "host": 1, "placements": [[0, 1]] }
 *   ]
 * }
 * ```
 *
 * `hosts[i]` is the rack index of host i; each placement pair is
 * [role, node]. Alternatively `"reference": "small" | "medium" |
 * "large"` (with optional roles/nodes) selects a reference topology.
 */

#ifndef SDNAV_TOPOLOGY_TOPOLOGY_IO_HH
#define SDNAV_TOPOLOGY_TOPOLOGY_IO_HH

#include <string>

#include "common/json.hh"
#include "topology/deployment.hh"

namespace sdnav::topology
{

/** Serialize a topology to JSON (explicit form, not "reference"). */
json::Value topologyToJson(const DeploymentTopology &topo);

/**
 * Build a topology from JSON (explicit or reference form). The
 * result is validated. @throws ModelError on malformed documents.
 */
DeploymentTopology topologyFromJson(const json::Value &value);

/** Load and validate a topology from a JSON file. */
DeploymentTopology loadTopology(const std::string &path);

/** Write a topology to a JSON file. @throws ModelError on I/O error. */
void saveTopology(const DeploymentTopology &topo,
                  const std::string &path);

} // namespace sdnav::topology

#endif // SDNAV_TOPOLOGY_TOPOLOGY_IO_HH
