#include "topology/deployment.hh"

#include <limits>
#include <sstream>

#include "common/error.hh"

namespace sdnav::topology
{

namespace
{
constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();
} // anonymous namespace

std::string
referenceKindName(ReferenceKind kind)
{
    switch (kind) {
      case ReferenceKind::Small:
        return "Small";
      case ReferenceKind::Medium:
        return "Medium";
      case ReferenceKind::Large:
        return "Large";
    }
    return "?";
}

DeploymentTopology::DeploymentTopology(std::string name,
                                       std::size_t roleCount,
                                       std::size_t clusterSize)
    : name_(std::move(name)), role_count_(roleCount),
      cluster_size_(clusterSize),
      vm_of_(roleCount * clusterSize, npos)
{
    require(roleCount >= 1, "deployment needs at least one role");
    require(clusterSize >= 1, "deployment needs at least one node");
}

std::size_t
DeploymentTopology::addRack()
{
    return rack_count_++;
}

std::size_t
DeploymentTopology::addHost(std::size_t rack)
{
    require(rack < rack_count_, "host references unknown rack");
    host_rack_.push_back(rack);
    return host_rack_.size() - 1;
}

std::size_t
DeploymentTopology::addVm(std::size_t host,
                          std::vector<RoleInstance> placements)
{
    require(host < host_rack_.size(), "VM references unknown host");
    require(!placements.empty(), "VM must carry at least one instance");
    std::size_t vm = vms_.size();
    for (const RoleInstance &p : placements) {
        require(p.role < role_count_, "placement role out of range");
        require(p.node < cluster_size_, "placement node out of range");
        std::size_t slot = p.role * cluster_size_ + p.node;
        require(vm_of_[slot] == npos,
                "role instance placed more than once");
        vm_of_[slot] = vm;
    }
    vms_.push_back({host, std::move(placements)});
    return vm;
}

std::size_t
DeploymentTopology::rackOfHost(std::size_t host) const
{
    require(host < host_rack_.size(), "unknown host");
    return host_rack_[host];
}

std::size_t
DeploymentTopology::hostOfVm(std::size_t vm) const
{
    require(vm < vms_.size(), "unknown VM");
    return vms_[vm].host;
}

const std::vector<RoleInstance> &
DeploymentTopology::vmPlacements(std::size_t vm) const
{
    require(vm < vms_.size(), "unknown VM");
    return vms_[vm].placements;
}

std::size_t
DeploymentTopology::vmOf(std::size_t role, std::size_t node) const
{
    require(role < role_count_ && node < cluster_size_,
            "role instance out of range");
    std::size_t vm = vm_of_[role * cluster_size_ + node];
    require(vm != npos, "role instance is not placed");
    return vm;
}

std::size_t
DeploymentTopology::hostOf(std::size_t role, std::size_t node) const
{
    return hostOfVm(vmOf(role, node));
}

std::size_t
DeploymentTopology::rackOf(std::size_t role, std::size_t node) const
{
    return rackOfHost(hostOf(role, node));
}

bool
DeploymentTopology::vmIsShared(std::size_t vm) const
{
    require(vm < vms_.size(), "unknown VM");
    return vms_[vm].placements.size() > 1;
}

bool
DeploymentTopology::hasSharedVms() const
{
    for (std::size_t vm = 0; vm < vms_.size(); ++vm) {
        if (vmIsShared(vm))
            return true;
    }
    return false;
}

void
DeploymentTopology::validate() const
{
    for (std::size_t role = 0; role < role_count_; ++role) {
        for (std::size_t node = 0; node < cluster_size_; ++node) {
            require(vm_of_[role * cluster_size_ + node] != npos,
                    "role instance (" + std::to_string(role) + ", " +
                        std::to_string(node) + ") is not placed");
        }
    }
}

std::string
DeploymentTopology::describe() const
{
    std::ostringstream os;
    os << name_ << ": " << role_count_ << " roles x " << cluster_size_
       << " nodes on " << vms_.size() << " VMs, " << host_rack_.size()
       << " hosts, " << rack_count_ << " racks\n";
    for (std::size_t vm = 0; vm < vms_.size(); ++vm) {
        os << "  VM" << vm << " on host" << vms_[vm].host << " (rack"
           << host_rack_[vms_[vm].host] << "):";
        for (const RoleInstance &p : vms_[vm].placements)
            os << " r" << p.role << "n" << p.node;
        os << "\n";
    }
    return os.str();
}

DeploymentTopology
smallTopology(std::size_t roleCount, std::size_t clusterSize)
{
    DeploymentTopology topo("Small", roleCount, clusterSize);
    std::size_t rack = topo.addRack();
    for (std::size_t node = 0; node < clusterSize; ++node) {
        std::size_t host = topo.addHost(rack);
        std::vector<RoleInstance> placements;
        placements.reserve(roleCount);
        for (std::size_t role = 0; role < roleCount; ++role)
            placements.push_back({role, node});
        topo.addVm(host, std::move(placements));
    }
    topo.validate();
    return topo;
}

DeploymentTopology
mediumTopology(std::size_t roleCount, std::size_t clusterSize)
{
    DeploymentTopology topo("Medium", roleCount, clusterSize);
    std::size_t rack1 = topo.addRack();
    std::size_t rack2 = topo.addRack();
    // A quorum of nodes shares rack 1 (the paper's H1, H2 in R1 for
    // a 3-node cluster); the rest are in rack 2.
    std::size_t quorum = clusterSize / 2 + 1;
    for (std::size_t node = 0; node < clusterSize; ++node) {
        std::size_t host = topo.addHost(node < quorum ? rack1 : rack2);
        for (std::size_t role = 0; role < roleCount; ++role)
            topo.addVm(host, {{role, node}});
    }
    topo.validate();
    return topo;
}

DeploymentTopology
largeTopology(std::size_t roleCount, std::size_t clusterSize)
{
    DeploymentTopology topo("Large", roleCount, clusterSize);
    for (std::size_t node = 0; node < clusterSize; ++node) {
        std::size_t rack = topo.addRack();
        for (std::size_t role = 0; role < roleCount; ++role) {
            std::size_t host = topo.addHost(rack);
            topo.addVm(host, {{role, node}});
        }
    }
    topo.validate();
    return topo;
}

DeploymentTopology
referenceTopology(ReferenceKind kind, std::size_t roleCount,
                  std::size_t clusterSize)
{
    switch (kind) {
      case ReferenceKind::Small:
        return smallTopology(roleCount, clusterSize);
      case ReferenceKind::Medium:
        return mediumTopology(roleCount, clusterSize);
      case ReferenceKind::Large:
        return largeTopology(roleCount, clusterSize);
    }
    throw ModelError("unknown reference topology kind");
}

DeploymentTopology
rackSweepTopology(std::size_t rackCount, std::size_t roleCount,
                  std::size_t clusterSize)
{
    require(rackCount >= 1, "need at least one rack");
    DeploymentTopology topo(
        "Large/" + std::to_string(rackCount) + "racks", roleCount,
        clusterSize);
    for (std::size_t rack = 0; rack < rackCount; ++rack)
        topo.addRack();
    for (std::size_t node = 0; node < clusterSize; ++node) {
        std::size_t rack = node % rackCount;
        for (std::size_t role = 0; role < roleCount; ++role) {
            std::size_t host = topo.addHost(rack);
            topo.addVm(host, {{role, node}});
        }
    }
    topo.validate();
    return topo;
}

} // namespace sdnav::topology
