#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hh"

namespace sdnav::json
{

Value::Value(bool value) : type_(Type::Bool), bool_(value) {}

Value::Value(double value) : type_(Type::Number), number_(value) {}

Value::Value(int value)
    : type_(Type::Number), number_(static_cast<double>(value))
{}

Value::Value(const char *value)
    : type_(Type::String), string_(value)
{}

Value::Value(std::string value)
    : type_(Type::String), string_(std::move(value))
{}

Value::Value(Array value) : type_(Type::Array), array_(std::move(value))
{}

Value::Value(Object value)
    : type_(Type::Object), object_(std::move(value))
{}

bool
Value::asBool() const
{
    require(type_ == Type::Bool, "JSON value is not a bool");
    return bool_;
}

double
Value::asNumber() const
{
    require(type_ == Type::Number, "JSON value is not a number");
    return number_;
}

const std::string &
Value::asString() const
{
    require(type_ == Type::String, "JSON value is not a string");
    return string_;
}

const Value::Array &
Value::asArray() const
{
    require(type_ == Type::Array, "JSON value is not an array");
    return array_;
}

const Value::Object &
Value::asObject() const
{
    require(type_ == Type::Object, "JSON value is not an object");
    return object_;
}

Value::Array &
Value::array()
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    require(type_ == Type::Array, "JSON value is not an array");
    return array_;
}

Value::Object &
Value::object()
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    require(type_ == Type::Object, "JSON value is not an object");
    return object_;
}

void
Value::push(Value value)
{
    array().push_back(std::move(value));
}

void
Value::set(const std::string &key, Value value)
{
    Object &members = object();
    for (auto &member : members) {
        if (member.first == key) {
            member.second = std::move(value);
            return;
        }
    }
    members.emplace_back(key, std::move(value));
}

bool
Value::contains(const std::string &key) const
{
    if (type_ != Type::Object)
        return false;
    for (const auto &member : object_) {
        if (member.first == key)
            return true;
    }
    return false;
}

const Value &
Value::at(const std::string &key) const
{
    require(type_ == Type::Object, "JSON value is not an object");
    for (const auto &member : object_) {
        if (member.first == key)
            return member.second;
    }
    throw ModelError("JSON object has no member '" + key + "'");
}

double
Value::numberOr(const std::string &key, double fallback) const
{
    return contains(key) ? at(key).asNumber() : fallback;
}

std::string
Value::stringOr(const std::string &key, std::string fallback) const
{
    return contains(key) ? at(key).asString() : std::move(fallback);
}

bool
Value::boolOr(const std::string &key, bool fallback) const
{
    return contains(key) ? at(key).asBool() : fallback;
}

bool
Value::operator==(const Value &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null:
        return true;
      case Type::Bool:
        return bool_ == other.bool_;
      case Type::Number:
        return number_ == other.number_;
      case Type::String:
        return string_ == other.string_;
      case Type::Array:
        return array_ == other.array_;
      case Type::Object:
        return object_ == other.object_;
    }
    return false;
}

namespace
{

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                // Widen through unsigned char: a plain signed char
                // would sign-extend bytes >= 0x80 into "￿ff80"
                // garbage if the escape set ever grows past the
                // control range.
                char buf[8];
                std::snprintf(
                    buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(
                        static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
formatNumber(std::string &out, double value)
{
    require(std::isfinite(value),
            "JSON cannot represent non-finite numbers");
    if (value == static_cast<double>(static_cast<long long>(value)) &&
        std::fabs(value) < 1e15) {
        out += std::to_string(static_cast<long long>(value));
        return;
    }
    // Shortest representation that round-trips exactly.
    for (int precision = 15; precision <= 17; ++precision) {
        std::ostringstream os;
        os.precision(precision);
        os << value;
        if (std::stod(os.str()) == value) {
            out += os.str();
            return;
        }
    }
    std::ostringstream os;
    os.precision(17);
    os << value;
    out += os.str();
}

} // anonymous namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&out, indent, depth](int extra) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * (depth + extra)),
                   ' ');
    };
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        formatNumber(out, number_);
        break;
      case Type::String:
        escapeString(out, string_);
        break;
      case Type::Array: {
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        bool first = true;
        for (const Value &item : array_) {
            if (!first)
                out += ',';
            first = false;
            newline(1);
            item.dumpTo(out, indent, depth + 1);
        }
        newline(0);
        out += ']';
        break;
      }
      case Type::Object: {
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        bool first = true;
        for (const auto &member : object_) {
            if (!first)
                out += ',';
            first = false;
            newline(1);
            escapeString(out, member.first);
            out += indent > 0 ? ": " : ":";
            member.second.dumpTo(out, indent, depth + 1);
        }
        newline(0);
        out += '}';
        break;
      }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent JSON parser with offset-bearing errors. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        skipWhitespace();
        Value value = parseValue(0);
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing content after JSON document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &message) const
    {
        std::ostringstream os;
        os << "JSON parse error at offset " << pos_ << ": " << message;
        throw ModelError(os.str());
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    char
    take()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_++];
    }

    void
    expect(char c)
    {
        if (take() != c)
            fail(std::string("expected '") + c + "'");
    }

    bool
    consumeLiteral(const char *literal)
    {
        std::size_t len = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, len, literal) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    Value
    parseValue(int depth)
    {
        if (depth > 128)
            fail("nesting too deep");
        skipWhitespace();
        char c = peek();
        switch (c) {
          case '{':
            return parseObject(depth);
          case '[':
            return parseArray(depth);
          case '"':
            return Value(parseString());
          case 't':
            if (consumeLiteral("true"))
                return Value(true);
            fail("invalid literal");
          case 'f':
            if (consumeLiteral("false"))
                return Value(false);
            fail("invalid literal");
          case 'n':
            if (consumeLiteral("null"))
                return Value();
            fail("invalid literal");
          default:
            return parseNumber();
        }
    }

    Value
    parseObject(int depth)
    {
        expect('{');
        Value result = Value::makeObject();
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return result;
        }
        for (;;) {
            skipWhitespace();
            if (peek() != '"')
                fail("expected object key string");
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            Value value = parseValue(depth + 1);
            if (result.contains(key))
                fail("duplicate object key '" + key + "'");
            result.set(key, std::move(value));
            skipWhitespace();
            char c = take();
            if (c == '}')
                return result;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Value
    parseArray(int depth)
    {
        expect('[');
        Value result = Value::makeArray();
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return result;
        }
        for (;;) {
            result.push(parseValue(depth + 1));
            skipWhitespace();
            char c = take();
            if (c == ']')
                return result;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            char c = take();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            char esc = take();
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = take();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code += 10 + h - 'a';
                    else if (h >= 'A' && h <= 'F')
                        code += 10 + h - 'A';
                    else
                        fail("invalid \\u escape");
                }
                // Encode as UTF-8 (basic multilingual plane only;
                // surrogate pairs are rejected as out of scope).
                if (code >= 0xd800 && code <= 0xdfff)
                    fail("surrogate pairs are not supported");
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("invalid escape sequence");
            }
        }
    }

    Value
    parseNumber()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            fail("invalid number");
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("digit required after decimal point");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("digit required in exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return Value(std::stod(text_.substr(start, pos_ - start)));
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // anonymous namespace

Value
parse(const std::string &text)
{
    Parser parser(text);
    return parser.parseDocument();
}

Value
parseFile(const std::string &path)
{
    std::ifstream in(path);
    require(static_cast<bool>(in), "cannot open JSON file: " + path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    return parse(content);
}

} // namespace sdnav::json
