/**
 * @file
 * Availability unit conversions.
 *
 * The paper quotes every result both as a steady-state availability
 * (e.g. 0.999989) and as expected downtime in minutes per year (m/y).
 * Figures 4 and 5 use an x-axis measured in "orders of magnitude of
 * downtime" relative to a default availability; these helpers implement
 * all of those conversions in one place.
 */

#ifndef SDNAV_COMMON_UNITS_HH
#define SDNAV_COMMON_UNITS_HH

namespace sdnav
{

/** Minutes in a (365-day) year, the paper's downtime normalization. */
constexpr double minutesPerYear = 365.0 * 24.0 * 60.0;

/** Hours in a (365-day) year. */
constexpr double hoursPerYear = 365.0 * 24.0;

/**
 * Convert a steady-state availability to expected downtime.
 *
 * @param availability Steady-state availability in [0, 1].
 * @return Expected downtime in minutes per year.
 */
double availabilityToDowntimeMinutesPerYear(double availability);

/**
 * Convert expected downtime back to availability.
 *
 * @param minutes Expected downtime in minutes per year (within one
 *                year's worth of minutes).
 * @return Steady-state availability in [0, 1].
 */
double downtimeMinutesPerYearToAvailability(double minutes);

/**
 * The "number of nines" of an availability: -log10(1 - A).
 *
 * For example 0.999 has 3 nines and 0.99999 has 5 nines. Returns
 * +infinity for A == 1.
 *
 * @param availability Steady-state availability in [0, 1).
 */
double availabilityNines(double availability);

/** Inverse of availabilityNines: A = 1 - 10^(-nines). */
double ninesToAvailability(double nines);

/**
 * Scale an availability's *downtime* by a power of ten, the x-axis
 * transform of the paper's Figures 4 and 5.
 *
 * An order-of-magnitude shift of `shift` multiplies unavailability by
 * 10^(-shift): shift = -1 means 10x more downtime (less reliable),
 * shift = +1 means 10x less downtime (more reliable), shift = 0 returns
 * the base availability unchanged.
 *
 * @param base Base availability in [0, 1].
 * @param shift Orders of magnitude of downtime reduction.
 * @return The shifted availability, clamped to [0, 1].
 */
double shiftAvailabilityDowntime(double base, double shift);

/**
 * Availability of a component from its failure/restore times, the
 * classic A = MTBF / (MTBF + MTTR).
 *
 * @param mtbf Mean time between failures (any time unit, > 0).
 * @param mttr Mean time to restore (same unit, >= 0).
 */
double availabilityFromMtbfMttr(double mtbf, double mttr);

/**
 * Mean time to restore implied by an availability at a given MTBF,
 * inverting A = F/(F+R): R = F(1-A)/A.
 *
 * @param availability Steady-state availability in (0, 1].
 * @param mtbf Mean time between failures (> 0).
 */
double mttrFromAvailability(double availability, double mtbf);

} // namespace sdnav

#endif // SDNAV_COMMON_UNITS_HH
