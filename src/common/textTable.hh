/**
 * @file
 * Simple aligned text-table formatter used by benches and examples to
 * print the paper's tables and figure data series.
 */

#ifndef SDNAV_COMMON_TEXT_TABLE_HH
#define SDNAV_COMMON_TEXT_TABLE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sdnav
{

/**
 * An aligned, monospace text table.
 *
 * Rows are added as vectors of preformatted cells; column widths are
 * computed at render time. A header row (if set) is separated from the
 * body by a rule.
 */
class TextTable
{
  public:
    TextTable() = default;

    /** Set the optional table title, printed above the header. */
    void title(std::string text) { title_ = std::move(text); }

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a body row. Rows may have differing cell counts. */
    void addRow(std::vector<std::string> cells);

    /**
     * Append a body row built from doubles formatted with the given
     * precision, prefixed by a label cell.
     */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 7);

    /** Number of body rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render the table to a string. */
    std::string str() const;

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (used for availability values). */
std::string formatFixed(double value, int precision);

/** Format a double in general (shortest reasonable) notation. */
std::string formatGeneral(double value, int significantDigits = 8);

} // namespace sdnav

#endif // SDNAV_COMMON_TEXT_TABLE_HH
