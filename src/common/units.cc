#include "common/units.hh"

#include <cmath>
#include <limits>

#include "common/error.hh"

namespace sdnav
{

double
availabilityToDowntimeMinutesPerYear(double availability)
{
    requireProbability(availability, "availability");
    return (1.0 - availability) * minutesPerYear;
}

double
downtimeMinutesPerYearToAvailability(double minutes)
{
    requireNonNegative(minutes, "minutes");
    require(minutes <= minutesPerYear,
            "downtime cannot exceed one year per year");
    return 1.0 - minutes / minutesPerYear;
}

double
availabilityNines(double availability)
{
    requireProbability(availability, "availability");
    if (availability >= 1.0)
        return std::numeric_limits<double>::infinity();
    return -std::log10(1.0 - availability);
}

double
ninesToAvailability(double nines)
{
    requireNonNegative(nines, "nines");
    return 1.0 - std::pow(10.0, -nines);
}

double
shiftAvailabilityDowntime(double base, double shift)
{
    requireProbability(base, "base");
    double unavailability = (1.0 - base) * std::pow(10.0, -shift);
    if (unavailability > 1.0)
        unavailability = 1.0;
    return 1.0 - unavailability;
}

double
availabilityFromMtbfMttr(double mtbf, double mttr)
{
    requirePositive(mtbf, "mtbf");
    requireNonNegative(mttr, "mttr");
    return mtbf / (mtbf + mttr);
}

double
mttrFromAvailability(double availability, double mtbf)
{
    requireProbability(availability, "availability");
    requirePositive(availability, "availability");
    requirePositive(mtbf, "mtbf");
    return mtbf * (1.0 - availability) / availability;
}

} // namespace sdnav
