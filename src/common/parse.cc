#include "common/parse.hh"

#include <cctype>
#include <charconv>
#include <cmath>

#include "common/error.hh"

namespace sdnav
{

namespace
{

/** True if every character could belong to a decimal number. */
bool
decimalOnly(const std::string &text)
{
    for (char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != 'e' && c != 'E' && c != '+' && c != '-') {
            return false;
        }
    }
    return true;
}

} // anonymous namespace

std::optional<double>
tryParseDouble(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    // std::from_chars is already strict about whitespace and hex, but
    // pre-filtering keeps locale-odd inputs ("0x1p3", "infinity")
    // from ever reaching it, and gives '+' its usual meaning, which
    // from_chars rejects.
    if (!decimalOnly(text))
        return std::nullopt;
    const char *first = text.data();
    const char *last = text.data() + text.size();
    if (*first == '+') {
        ++first;
        // Exactly one sign: "+-1" and "++1" are not numbers.
        if (first != last && (*first == '+' || *first == '-'))
            return std::nullopt;
    }
    double value = 0.0;
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last || !std::isfinite(value))
        return std::nullopt;
    return value;
}

double
parseDouble(const std::string &text, const std::string &what,
            double min, double max)
{
    std::optional<double> value = tryParseDouble(text);
    require(value.has_value(),
            what + ": '" + text + "' is not a number");
    require(*value >= min && *value <= max,
            what + ": " + text + " is out of range [" +
                std::to_string(min) + ", " + std::to_string(max) +
                "]");
    return *value;
}

std::size_t
parseCount(const std::string &text, const std::string &what,
           std::size_t max)
{
    require(!text.empty(), what + ": empty count");
    for (char c : text) {
        require(std::isdigit(static_cast<unsigned char>(c)),
                what + ": '" + text +
                    "' is not a non-negative integer");
    }
    std::size_t value = 0;
    auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    require(ec == std::errc() && ptr == text.data() + text.size(),
            what + ": '" + text + "' is not a non-negative integer");
    require(value <= max,
            what + ": " + text + " exceeds the maximum of " +
                std::to_string(max));
    return value;
}

} // namespace sdnav
