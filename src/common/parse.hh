/**
 * @file
 * Checked numeric parsing for untrusted text.
 *
 * Command-line options and network requests both arrive as strings;
 * a bare std::stod accepts trailing junk ("3x" parses as 3) and
 * throws an uncaught std::invalid_argument on garbage. These helpers
 * are strict: the whole string must be consumed, the value must be
 * finite, and an optional range is enforced. Errors throw ModelError
 * naming the offending input, so the CLI can map them to usage
 * failures and the query server to per-request error replies.
 */

#ifndef SDNAV_COMMON_PARSE_HH
#define SDNAV_COMMON_PARSE_HH

#include <cstddef>
#include <limits>
#include <optional>
#include <string>

namespace sdnav
{

/**
 * Parse a double strictly: the entire string must be a single finite
 * number (optional leading '+' or '-', no whitespace, no trailing
 * characters, no inf/nan/hex). Returns nullopt on any violation.
 */
std::optional<double> tryParseDouble(const std::string &text);

/**
 * Parse a finite double within [min, max].
 *
 * @param text The candidate number.
 * @param what Name used in error messages (e.g. "--mtbf").
 * @throws ModelError naming `what` on malformed input, trailing
 *         junk, non-finite values, or range violations.
 */
double parseDouble(
    const std::string &text, const std::string &what,
    double min = std::numeric_limits<double>::lowest(),
    double max = std::numeric_limits<double>::max());

/**
 * Parse a non-negative integer count within [0, max]. Rejects signs,
 * fractions, exponents, and trailing junk.
 *
 * @param text The candidate count.
 * @param what Name used in error messages (e.g. "--nodes").
 * @throws ModelError naming `what` on violations.
 */
std::size_t parseCount(
    const std::string &text, const std::string &what,
    std::size_t max = std::numeric_limits<std::size_t>::max());

} // namespace sdnav

#endif // SDNAV_COMMON_PARSE_HH
