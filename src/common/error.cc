#include "common/error.hh"

#include <cmath>
#include <sstream>

namespace sdnav
{

double
requireProbability(double value, const std::string &name)
{
    if (!(value >= 0.0 && value <= 1.0) || std::isnan(value)) {
        std::ostringstream os;
        os << name << " must be a probability in [0, 1], got " << value;
        throw ModelError(os.str());
    }
    return value;
}

double
requirePositive(double value, const std::string &name)
{
    if (!(value > 0.0) || std::isnan(value) || std::isinf(value)) {
        std::ostringstream os;
        os << name << " must be finite and > 0, got " << value;
        throw ModelError(os.str());
    }
    return value;
}

double
requireNonNegative(double value, const std::string &name)
{
    if (!(value >= 0.0) || std::isnan(value) || std::isinf(value)) {
        std::ostringstream os;
        os << name << " must be finite and >= 0, got " << value;
        throw ModelError(os.str());
    }
    return value;
}

} // namespace sdnav
