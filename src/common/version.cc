#include "common/version.hh"

#include <cstdio>
#include <cstdlib>

namespace sdnav::common
{

namespace
{

std::string
resolveGitSha()
{
    if (const char *env = std::getenv("GITHUB_SHA"))
        return env;
    std::string sha;
    if (FILE *pipe = popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buffer[128];
        if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr)
            sha = buffer;
        pclose(pipe);
    }
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    return sha.empty() ? "unknown" : sha;
}

} // anonymous namespace

const std::string &
gitSha()
{
    static const std::string sha = resolveGitSha();
    return sha;
}

} // namespace sdnav::common
