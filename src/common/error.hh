/**
 * @file
 * Error-handling primitives shared by every sdnav module.
 *
 * Following the gem5 fatal()/panic() distinction: user-caused errors
 * (bad parameters, malformed catalogs) throw ModelError; internal
 * invariant violations use assertions.
 */

#ifndef SDNAV_COMMON_ERROR_HH
#define SDNAV_COMMON_ERROR_HH

#include <stdexcept>
#include <string>

namespace sdnav
{

/**
 * Exception thrown for user-caused modeling errors: out-of-range
 * availabilities, inconsistent catalogs, malformed topologies, etc.
 */
class ModelError : public std::invalid_argument
{
  public:
    explicit ModelError(const std::string &what)
        : std::invalid_argument(what)
    {}
};

/**
 * Throw ModelError with the given message unless the condition holds.
 *
 * @param condition Predicate that must be true.
 * @param message Human-readable description of the violated requirement.
 */
inline void
require(bool condition, const std::string &message)
{
    if (!condition)
        throw ModelError(message);
}

/**
 * Validate that a value is a probability (within [0, 1]).
 *
 * @param value The candidate probability.
 * @param name Parameter name used in the error message.
 * @return The validated value, for use in initializer expressions.
 */
double requireProbability(double value, const std::string &name);

/**
 * Validate that a value is strictly positive.
 *
 * @param value The candidate value.
 * @param name Parameter name used in the error message.
 * @return The validated value.
 */
double requirePositive(double value, const std::string &name);

/**
 * Validate that a value is non-negative.
 *
 * @param value The candidate value.
 * @param name Parameter name used in the error message.
 * @return The validated value.
 */
double requireNonNegative(double value, const std::string &name);

} // namespace sdnav

#endif // SDNAV_COMMON_ERROR_HH
