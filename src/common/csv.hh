/**
 * @file
 * Minimal CSV emission for bench outputs, so figure series can be fed
 * straight into external plotting tools.
 */

#ifndef SDNAV_COMMON_CSV_HH
#define SDNAV_COMMON_CSV_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace sdnav
{

/**
 * A CSV document built row by row.
 *
 * Cells containing commas, quotes, or newlines are quoted per RFC 4180.
 */
class CsvWriter
{
  public:
    CsvWriter() = default;

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a row of preformatted cells. */
    void addRow(std::vector<std::string> cells);

    /** Append a row of a label followed by numeric cells. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 10);

    /** Render the document to a string. */
    std::string str() const;

    /** Write the document to a file. @return true on success. */
    bool writeFile(const std::string &path) const;

  private:
    static void emitRow(std::ostream &os,
                        const std::vector<std::string> &cells);
    static std::string escape(const std::string &cell);

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sdnav

#endif // SDNAV_COMMON_CSV_HH
