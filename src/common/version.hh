/**
 * @file
 * Build provenance: which commit is this binary from?
 *
 * Both the bench JSON artifacts and the server's `stats` reply stamp
 * their output with the revision, so a number on a dashboard is
 * always attributable to the code that produced it.
 */

#ifndef SDNAV_COMMON_VERSION_HH
#define SDNAV_COMMON_VERSION_HH

#include <string>

namespace sdnav::common
{

/**
 * Commit the binary ran from: $GITHUB_SHA in CI, `git rev-parse HEAD`
 * locally, "unknown" outside a work tree. Resolved once per process
 * and cached, so repeated callers (per-request stats) never fork.
 */
const std::string &gitSha();

} // namespace sdnav::common

#endif // SDNAV_COMMON_VERSION_HH
