#include "common/csv.hh"

#include <fstream>
#include <sstream>

#include "common/textTable.hh"

namespace sdnav
{

void
CsvWriter::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
CsvWriter::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
CsvWriter::addRow(const std::string &label,
                  const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(formatFixed(v, precision));
    rows_.push_back(std::move(cells));
}

std::string
CsvWriter::escape(const std::string &cell)
{
    bool needs_quote = cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::emitRow(std::ostream &os, const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            os << ',';
        os << escape(cells[i]);
    }
    os << '\n';
}

std::string
CsvWriter::str() const
{
    std::ostringstream os;
    if (!header_.empty())
        emitRow(os, header_);
    for (const auto &row : rows_)
        emitRow(os, row);
    return os.str();
}

bool
CsvWriter::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << str();
    return static_cast<bool>(out);
}

} // namespace sdnav
