/**
 * @file
 * A minimal JSON value model, parser, and serializer.
 *
 * Controller catalogs and deployment topologies are declarative data;
 * supporting them as JSON documents lets downstream users analyze
 * their own controllers without recompiling (see fmea/catalogIo and
 * topology/topologyIo, and the sdnav_cli tool). The dialect is
 * strict RFC-8259 JSON minus one extension: numbers are always
 * doubles. Object member order is preserved for deterministic
 * round-trips.
 */

#ifndef SDNAV_COMMON_JSON_HH
#define SDNAV_COMMON_JSON_HH

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace sdnav::json
{

/** A JSON value: null, bool, number, string, array, or object. */
class Value
{
  public:
    /** Discriminator of the stored alternative. */
    enum class Type { Null, Bool, Number, String, Array, Object };

    /** Objects preserve insertion order. */
    using Object = std::vector<std::pair<std::string, Value>>;
    using Array = std::vector<Value>;

    /** Construct null. */
    Value() = default;

    /** Construct from primitives. */
    Value(bool value);
    Value(double value);
    Value(int value);
    Value(const char *value);
    Value(std::string value);
    Value(Array value);
    Value(Object value);

    /** Factory helpers that read naturally at call sites. */
    static Value makeArray() { return Value(Array{}); }
    static Value makeObject() { return Value(Object{}); }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Checked accessors; throw ModelError on type mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Mutable array/object access (converts a null in place). */
    Array &array();
    Object &object();

    /** Append to an array value. */
    void push(Value value);

    /** Set an object member (replaces an existing key). */
    void set(const std::string &key, Value value);

    /** True if an object contains the key. */
    bool contains(const std::string &key) const;

    /**
     * Object member lookup. @throws ModelError when absent or when
     * this is not an object.
     */
    const Value &at(const std::string &key) const;

    /** Object member lookup with a default for absent keys. */
    double numberOr(const std::string &key, double fallback) const;
    std::string stringOr(const std::string &key,
                         std::string fallback) const;
    bool boolOr(const std::string &key, bool fallback) const;

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    bool operator==(const Value &other) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/**
 * Parse a JSON document.
 *
 * @param text The document.
 * @return The root value.
 * @throws ModelError with offset information on malformed input.
 */
Value parse(const std::string &text);

/** Parse the contents of a file. @throws ModelError on I/O failure. */
Value parseFile(const std::string &path);

} // namespace sdnav::json

#endif // SDNAV_COMMON_JSON_HH
