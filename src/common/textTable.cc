#include "common/textTable.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace sdnav
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::addRow(const std::string &label,
                  const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(formatFixed(v, precision));
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    // Compute column widths over header and all rows.
    std::vector<std::size_t> widths;
    auto widen = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    auto emit = [&os, &widths](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i > 0)
                os << "  ";
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << cells[i];
        }
        os << '\n';
    };

    if (!title_.empty())
        os << title_ << '\n';
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i > 0 ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
}

std::string
formatFixed(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
formatGeneral(double value, int significantDigits)
{
    std::ostringstream os;
    os << std::setprecision(significantDigits) << value;
    return os.str();
}

} // namespace sdnav
