/**
 * @file
 * sdnavd — the long-running availability-query server.
 *
 * Operators sweep what-if questions ("availability of catalog X on
 * topology Y with MTTR Z?") interactively; answering each one from a
 * fresh process pays a full BDD compilation per question. This
 * server keeps the compiled models hot: requests arrive as
 * newline-delimited JSON over a TCP socket (see server/protocol.hh),
 * a size-bounded LRU cache (server/ModelCache) compiles each
 * distinct (catalog, topology, nodes, policy, plane) once, and a
 * worker pool answers every repeat query with a microsecond-scale
 * evaluation against per-worker scratch buffers.
 *
 * Architecture (one thread each unless noted):
 *
 *   acceptor ── accepts connections, reaps finished sessions
 *   session (per connection) ── reads lines, parses requests,
 *     enqueues query jobs, assembles in-order reply lines
 *   worker (xN) ── pops jobs, serves models from the cache,
 *     evaluates availability, fulfills the session's futures
 *
 * The job queue is bounded: a full queue blocks the enqueuing
 * session (and therefore stops reading its socket), so backpressure
 * propagates to clients through TCP instead of growing memory.
 *
 * Failure isolation: a malformed, oversized, or invalid request
 * yields a JSON error reply on that connection and nothing else —
 * the worker pool and other sessions are untouched; a mid-line
 * disconnect just ends that session.
 *
 * Graceful shutdown (SIGINT in sdnavd, or the "shutdown" command):
 * stop accepting, let sessions finish their current request, drain
 * every queued job through the workers, then join all threads.
 */

#ifndef SDNAV_SERVER_SERVER_HH
#define SDNAV_SERVER_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "server/modelCache.hh"
#include "server/protocol.hh"

namespace sdnav::server
{

/** Server configuration. */
struct ServerOptions
{
    /** Listen port; 0 picks an ephemeral port (see Server::port()). */
    std::uint16_t port = 0;

    /** Worker threads; 0 = hardware concurrency. */
    std::size_t workers = 0;

    /** Bounded job-queue capacity (backpressure threshold). */
    std::size_t queueCapacity = 256;

    /** Compiled-model LRU capacity, in models. */
    std::size_t cacheCapacity = 16;

    /** Largest accepted request line, in bytes. */
    std::size_t maxLineBytes = 1 << 20;

    /** Largest accepted "queries" batch. */
    std::size_t maxBatch = 256;

    std::size_t
    resolvedWorkers() const
    {
        if (workers > 0)
            return workers;
        unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? hw : 2;
    }
};

/** One availability evaluation in flight through the worker pool. */
struct Job
{
    QuerySpec spec;
    std::promise<json::Value> result;
};

/**
 * Bounded MPMC job queue. push() blocks while full (backpressure)
 * and fails once closed; pop() drains remaining jobs after close()
 * before reporting exhaustion, so shutdown never drops queued work.
 */
class JobQueue
{
  public:
    explicit JobQueue(std::size_t capacity);

    /** Enqueue; blocks while full. False once the queue is closed. */
    bool push(Job &&job);

    /** Dequeue; blocks while empty. False when closed and drained. */
    bool pop(Job &job);

    /** Stop accepting pushes; pending jobs remain poppable. */
    void close();

    std::size_t depth() const;
    std::size_t capacity() const { return capacity_; }

  private:
    std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<Job> jobs_;
    bool closed_ = false;
};

class Server
{
  public:
    explicit Server(const ServerOptions &options);

    /** Stops and joins if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and spawn the acceptor and worker threads.
     * @throws ModelError when the socket cannot be bound.
     */
    void start();

    /** The bound port (the chosen one when options.port was 0). */
    std::uint16_t port() const { return port_; }

    /**
     * Begin graceful shutdown; returns immediately. Safe to call
     * from any thread, from a session handling the "shutdown"
     * command, and more than once.
     */
    void requestStop();

    /** Block until shutdown completes and every thread is joined. */
    void wait();

    /** True once requestStop() has been called. */
    bool
    stopping() const
    {
        return stopping_.load(std::memory_order_acquire);
    }

    /** The compiled-model cache (stats and tests). */
    const ModelCache &cache() const { return cache_; }

    /** The "stats" command payload. */
    json::Value statsJson() const;

  private:
    struct Session
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void acceptLoop();
    void sessionLoop(Session &session);
    void workerLoop();

    /** Handle one request line; returns the reply line. */
    std::string handleLine(const std::string &line);

    /** Reap finished session threads (acceptor housekeeping). */
    void reapSessions(bool joinAll);

    ServerOptions options_;
    ModelCache cache_;
    JobQueue queue_;

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> joined_{false};
    std::chrono::steady_clock::time_point startTime_{};

    std::thread acceptor_;
    std::vector<std::thread> workers_;
    std::mutex sessionsMutex_;
    std::list<std::unique_ptr<Session>> sessions_;

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> queries_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> connections_{0};
};

} // namespace sdnav::server

#endif // SDNAV_SERVER_SERVER_HH
