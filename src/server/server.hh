/**
 * @file
 * sdnavd — the long-running availability-query server.
 *
 * Operators sweep what-if questions ("availability of catalog X on
 * topology Y with MTTR Z?") interactively; answering each one from a
 * fresh process pays a full BDD compilation per question. This
 * server keeps the compiled models hot: requests arrive as
 * newline-delimited JSON over a TCP socket (see server/protocol.hh),
 * a size-bounded LRU cache (server/ModelCache) compiles each
 * distinct (catalog, topology, nodes, policy, plane) once, and a
 * worker pool answers every repeat query with a microsecond-scale
 * evaluation against per-worker scratch buffers.
 *
 * Architecture (one thread each unless noted):
 *
 *   acceptor ── accepts connections, reaps finished sessions
 *   session (per connection) ── reads lines, parses requests,
 *     enqueues query jobs, assembles in-order reply lines
 *   worker (xN) ── pops jobs, serves models from the cache,
 *     evaluates availability, fulfills the session's futures
 *
 * The job queue is bounded: a full queue blocks the enqueuing
 * session (and therefore stops reading its socket), so backpressure
 * propagates to clients through TCP instead of growing memory.
 *
 * Failure isolation: a malformed, oversized, or invalid request
 * yields a JSON error reply on that connection and nothing else —
 * the worker pool and other sessions are untouched; a mid-line
 * disconnect just ends that session.
 *
 * Graceful shutdown (SIGINT in sdnavd, or the "shutdown" command):
 * stop accepting, let sessions finish their current request, drain
 * every queued job through the workers, then join all threads.
 */

#ifndef SDNAV_SERVER_SERVER_HH
#define SDNAV_SERVER_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "server/modelCache.hh"
#include "server/promHttp.hh"
#include "server/protocol.hh"
#include "server/requestLog.hh"

namespace sdnav::server
{

/** Server configuration. */
struct ServerOptions
{
    /** Listen port; 0 picks an ephemeral port (see Server::port()). */
    std::uint16_t port = 0;

    /** Worker threads; 0 = hardware concurrency. */
    std::size_t workers = 0;

    /** Bounded job-queue capacity (backpressure threshold). */
    std::size_t queueCapacity = 256;

    /** Compiled-model LRU capacity, in models. */
    std::size_t cacheCapacity = 16;

    /** Largest accepted request line, in bytes. */
    std::size_t maxLineBytes = 1 << 20;

    /** Largest accepted "queries" batch. */
    std::size_t maxBatch = 256;

    /** JSONL per-request log path; empty = no request log. */
    std::string requestLogPath;

    /**
     * Slow-request threshold in milliseconds; a request slower than
     * this bumps server.slow_requests and drops an instant trace
     * event. 0 disables the check.
     */
    double slowMs = 0.0;

    /** Serve Prometheus exposition over HTTP when true. */
    bool promEnabled = false;

    /** Prometheus endpoint port; 0 picks an ephemeral port. */
    std::uint16_t promPort = 0;

    /**
     * Per-query compile budget: wall deadline in milliseconds and
     * live-BDD-node cap (0 = unlimited). A compile that exceeds
     * either returns a budget_exceeded error reply for that request;
     * the worker and the cache stay healthy. Enforcement is plain
     * control flow — it works in -DSDNAV_METRICS=OFF builds too.
     */
    double compileBudgetMs = 0.0;
    std::size_t compileNodeCap = 0;

    std::size_t
    resolvedWorkers() const
    {
        if (workers > 0)
            return workers;
        unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? hw : 2;
    }
};

/** Where one job's time went, reported back with its reply. */
struct JobTelemetry
{
    /** Queue entry to worker pickup. */
    double queueWaitMs = 0.0;

    /** Compile wall time when this job compiled; 0 on a hit. */
    double compileMs = 0.0;

    /** Model evaluation wall time. */
    double evalMs = 0.0;

    /** "hit", "miss", or "coalesced" (empty if the job failed). */
    const char *cache = "";

    /** True when the compile hit its StepBudget. */
    bool budgetExceeded = false;
};

/** A worker's answer: the reply fragment plus its telemetry. */
struct JobResult
{
    json::Value reply;
    JobTelemetry telemetry;
};

/** One availability evaluation in flight through the worker pool. */
struct Job
{
    QuerySpec spec;

    /** Request id the job belongs to (trace and request-log key). */
    std::uint64_t requestId = 0;

    /** When the session enqueued it (queue-wait attribution). */
    std::chrono::steady_clock::time_point enqueueTime{};

    std::promise<JobResult> result;
};

/**
 * Bounded MPMC job queue. push() blocks while full (backpressure)
 * and fails once closed; pop() drains remaining jobs after close()
 * before reporting exhaustion, so shutdown never drops queued work.
 */
class JobQueue
{
  public:
    explicit JobQueue(std::size_t capacity);

    /** Enqueue; blocks while full. False once the queue is closed. */
    bool push(Job &&job);

    /** Dequeue; blocks while empty. False when closed and drained. */
    bool pop(Job &job);

    /** Stop accepting pushes; pending jobs remain poppable. */
    void close();

    std::size_t depth() const;
    std::size_t capacity() const { return capacity_; }

  private:
    std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<Job> jobs_;
    bool closed_ = false;
};

class Server
{
  public:
    explicit Server(const ServerOptions &options);

    /** Stops and joins if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and spawn the acceptor and worker threads.
     * @throws ModelError when the socket cannot be bound.
     */
    void start();

    /** The bound port (the chosen one when options.port was 0). */
    std::uint16_t port() const { return port_; }

    /**
     * Begin graceful shutdown; returns immediately. Safe to call
     * from any thread, from a session handling the "shutdown"
     * command, and more than once.
     */
    void requestStop();

    /** Block until shutdown completes and every thread is joined. */
    void wait();

    /** True once requestStop() has been called. */
    bool
    stopping() const
    {
        return stopping_.load(std::memory_order_acquire);
    }

    /** The compiled-model cache (stats and tests). */
    const ModelCache &cache() const { return cache_; }

    /** The "stats" command payload. */
    json::Value statsJson() const;

    /**
     * The Prometheus endpoint's bound port; 0 unless options enabled
     * it and start() has run.
     */
    std::uint16_t promPort() const { return promHttp_.port(); }

    /** Requests slower than options.slowMs so far. */
    std::uint64_t
    slowRequests() const
    {
        return slowRequests_.load(std::memory_order_relaxed);
    }

  private:
    struct Session
    {
        int fd = -1;

        /** Client address, "ip:port" (request-log attribution). */
        std::string peer;

        std::thread thread;
        std::atomic<bool> done{false};
    };

    void acceptLoop();
    void sessionLoop(Session &session);
    void workerLoop();

    /** Handle one request line; returns the reply line. */
    std::string handleLine(const std::string &line,
                           const std::string &peer);

    /** Reap finished session threads (acceptor housekeeping). */
    void reapSessions(bool joinAll);

    ServerOptions options_;
    ModelCache cache_;
    JobQueue queue_;

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> joined_{false};
    std::chrono::steady_clock::time_point startTime_{};

    std::thread acceptor_;
    std::vector<std::thread> workers_;
    std::mutex sessionsMutex_;
    std::list<std::unique_ptr<Session>> sessions_;

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> queries_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> connections_{0};
    std::atomic<std::uint64_t> slowRequests_{0};

    /** Source of the monotonic per-request ids. */
    std::atomic<std::uint64_t> nextRequestId_{0};

    RequestLog requestLog_;
    PromHttpServer promHttp_;
};

} // namespace sdnav::server

#endif // SDNAV_SERVER_SERVER_HH
