#include "server/requestLog.hh"

#if SDNAV_METRICS_ENABLED

#include "common/error.hh"
#include "common/json.hh"

namespace sdnav::server
{

void
RequestLog::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    out_.open(path, std::ios::out | std::ios::app);
    require(out_.is_open(),
            "cannot open request log '" + path + "' for append");
    enabled_ = true;
}

void
RequestLog::append(const RequestRecord &record)
{
    if (!enabled_)
        return;
    // json::Value handles the string escaping (peer and key are
    // server-generated, but outcome-adjacent errors may not be).
    json::Value doc = json::Value::makeObject();
    doc.set("id", static_cast<double>(record.id));
    doc.set("peer", record.peer);
    doc.set("kind", record.kind);
    doc.set("key", record.key);
    doc.set("cache", record.cache);
    doc.set("queue_wait_ms", record.queueWaitMs);
    doc.set("compile_ms", record.compileMs);
    doc.set("eval_ms", record.evalMs);
    doc.set("reply_bytes", static_cast<double>(record.replyBytes));
    doc.set("latency_ms", record.latencyMs);
    doc.set("outcome", record.outcome);
    std::string line = doc.dump();

    std::lock_guard<std::mutex> lock(mutex_);
    out_ << line << '\n';
    // One flush per record: the log must survive a crashed or killed
    // server, which is exactly when it is needed.
    out_.flush();
}

} // namespace sdnav::server

#endif // SDNAV_METRICS_ENABLED
