#include "server/lineClient.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hh"

namespace sdnav::server
{

LineClient::~LineClient() { close(); }

LineClient::LineClient(LineClient &&other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_))
{
    other.fd_ = -1;
}

LineClient &
LineClient::operator=(LineClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buffer_ = std::move(other.buffer_);
        other.fd_ = -1;
    }
    return *this;
}

void
LineClient::connect(std::uint16_t port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    require(fd_ >= 0,
            std::string("socket() failed: ") + std::strerror(errno));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        std::string reason = std::strerror(errno);
        close();
        throw ModelError("connect to 127.0.0.1:" +
                         std::to_string(port) + " failed: " + reason);
    }
}

void
LineClient::sendLine(const std::string &line)
{
    sendRaw(line + "\n");
}

void
LineClient::sendRaw(const std::string &bytes)
{
    require(fd_ >= 0, "client is not connected");
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n = ::send(fd_, bytes.data() + sent,
                           bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ModelError(std::string("send failed: ") +
                             std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
}

std::string
LineClient::recvLine()
{
    require(fd_ >= 0, "client is not connected");
    for (;;) {
        std::size_t pos = buffer_.find('\n');
        if (pos != std::string::npos) {
            std::string line = buffer_.substr(0, pos);
            buffer_.erase(0, pos + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return line;
        }
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n == 0)
            throw ModelError("connection closed by server");
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw ModelError(std::string("recv failed: ") +
                             std::strerror(errno));
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

void
LineClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

} // namespace sdnav::server
