/**
 * @file
 * Per-request JSONL log for sdnavd (`--request-log FILE`).
 *
 * Metrics aggregate and the trace samples; the request log is the
 * ground truth in between — exactly one line per request, written
 * after the reply is assembled, so an operator can answer "what did
 * request 4711 cost, and where?" without correlating counters. One
 * record:
 *
 *   {"id": 4711, "peer": "127.0.0.1:52114", "kind": "query",
 *    "key": "catalog=opencontrail;topology=large;nodes=3;...",
 *    "cache": "hit" | "miss" | "coalesced" | "mixed" | "",
 *    "queue_wait_ms": 0.01, "compile_ms": 0.0, "eval_ms": 0.02,
 *    "reply_bytes": 213, "latency_ms": 0.21,
 *    "outcome": "ok" | "error" | "budget_exceeded"}
 *
 * Writes take one mutex and flush per record (a crashed server keeps
 * its log). Building with -DSDNAV_METRICS=OFF swaps in the same-API
 * no-op, so `--request-log` costs nothing in no-op builds.
 */

#ifndef SDNAV_SERVER_REQUEST_LOG_HH
#define SDNAV_SERVER_REQUEST_LOG_HH

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#ifndef SDNAV_METRICS_ENABLED
#define SDNAV_METRICS_ENABLED 1
#endif

namespace sdnav::server
{

/** Everything one request-log line records. */
struct RequestRecord
{
    /** Monotonic per-process request id (also in the trace spans). */
    std::uint64_t id = 0;

    /** Client address, "ip:port". */
    std::string peer;

    /** "query", "batch", or "cmd:<name>"; "invalid" on parse fail. */
    std::string kind;

    /** Model key for queries; empty for commands. */
    std::string key;

    /** Aggregate cache outcome; "mixed" when batch items disagree. */
    std::string cache;

    /** Summed over batch items; zero for commands. */
    double queueWaitMs = 0.0;
    double compileMs = 0.0;
    double evalMs = 0.0;

    /** Size of the reply line (without the newline). */
    std::size_t replyBytes = 0;

    /** Wall time from first parse to assembled reply. */
    double latencyMs = 0.0;

    /** "ok", "error", or "budget_exceeded". */
    std::string outcome;
};

#if SDNAV_METRICS_ENABLED

class RequestLog
{
  public:
    RequestLog() = default;
    RequestLog(const RequestLog &) = delete;
    RequestLog &operator=(const RequestLog &) = delete;

    /**
     * Open (append) the log file; records flow after this. @throws
     * ModelError when the path is not writable.
     */
    void open(const std::string &path);

    /** True once open() succeeded. */
    bool enabled() const { return enabled_; }

    /** Serialize and append one record (no-op until open()). */
    void append(const RequestRecord &record);

  private:
    std::mutex mutex_;
    std::ofstream out_;
    bool enabled_ = false;
};

#else // !SDNAV_METRICS_ENABLED — same API, empty bodies.

class RequestLog
{
  public:
    RequestLog() = default;
    RequestLog(const RequestLog &) = delete;
    RequestLog &operator=(const RequestLog &) = delete;

    void open(const std::string &) {}
    bool enabled() const { return false; }
    void append(const RequestRecord &) {}
};

#endif // SDNAV_METRICS_ENABLED

} // namespace sdnav::server

#endif // SDNAV_SERVER_REQUEST_LOG_HH
