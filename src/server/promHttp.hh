/**
 * @file
 * Minimal HTTP/1.1 endpoint serving the Prometheus exposition page
 * (`sdnavd --prom-port`).
 *
 * One thread, one request per connection: poll-accept, read the
 * request head, answer `GET /metrics` (and `GET /`) with
 * `Registry::global().prometheusText()`, anything else with 404,
 * close. Scrapes arrive every few seconds at most, so there is
 * nothing to pool; the cost is one registry fold per scrape, off the
 * query path entirely.
 *
 * The endpoint stays functional in -DSDNAV_METRICS=OFF builds — it
 * serves the registry's comment-only page, so a scraper pointed at a
 * no-op binary sees valid, empty exposition instead of a dead port.
 */

#ifndef SDNAV_SERVER_PROM_HTTP_HH
#define SDNAV_SERVER_PROM_HTTP_HH

#include <atomic>
#include <cstdint>
#include <thread>

namespace sdnav::server
{

class PromHttpServer
{
  public:
    PromHttpServer() = default;

    /** Stops and joins if still running. */
    ~PromHttpServer();

    PromHttpServer(const PromHttpServer &) = delete;
    PromHttpServer &operator=(const PromHttpServer &) = delete;

    /**
     * Bind 127.0.0.1:<port> (0 picks an ephemeral port, see port()),
     * listen, and spawn the serving thread.
     * @throws ModelError when the socket cannot be bound.
     */
    void start(std::uint16_t port);

    /** Stop serving and join; safe to call more than once. */
    void stop();

    /** The bound port (the chosen one when start() was given 0). */
    std::uint16_t port() const { return port_; }

    /** True between start() and stop(). */
    bool running() const { return listenFd_ >= 0; }

  private:
    void serveLoop();

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread thread_;
};

} // namespace sdnav::server

#endif // SDNAV_SERVER_PROM_HTTP_HH
