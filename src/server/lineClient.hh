/**
 * @file
 * Minimal blocking client for the sdnavd line protocol.
 *
 * One TCP connection, sendLine()/recvLine() in lockstep (or
 * pipelined — the server preserves per-connection reply order).
 * Shared by the test suite, the sdnav_load generator, and
 * bench_server, so every consumer exercises the same framing code.
 */

#ifndef SDNAV_SERVER_LINE_CLIENT_HH
#define SDNAV_SERVER_LINE_CLIENT_HH

#include <cstdint>
#include <string>

namespace sdnav::server
{

class LineClient
{
  public:
    LineClient() = default;

    /** Closes the connection. */
    ~LineClient();

    LineClient(const LineClient &) = delete;
    LineClient &operator=(const LineClient &) = delete;

    LineClient(LineClient &&other) noexcept;
    LineClient &operator=(LineClient &&other) noexcept;

    /**
     * Connect to 127.0.0.1:port.
     * @throws ModelError when the connection fails.
     */
    void connect(std::uint16_t port);

    bool connected() const { return fd_ >= 0; }

    /**
     * Send one request line (newline appended).
     * @throws ModelError when the peer is gone.
     */
    void sendLine(const std::string &line);

    /**
     * Send raw bytes exactly as given — no newline added. Lets tests
     * split a line across writes or abandon one mid-line.
     */
    void sendRaw(const std::string &bytes);

    /**
     * Receive one reply line (newline stripped).
     * @throws ModelError on EOF or a socket error.
     */
    std::string recvLine();

    /** Close the connection (abruptly, wherever the stream stands). */
    void close();

  private:
    int fd_ = -1;
    std::string buffer_;
};

} // namespace sdnav::server

#endif // SDNAV_SERVER_LINE_CLIENT_HH
