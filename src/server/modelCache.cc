#include "server/modelCache.hh"

#include <chrono>

#include "common/error.hh"
#include "obs/obs.hh"

namespace sdnav::server
{

namespace
{

obs::Counter &
hitCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("server.cache_hits");
    return c;
}

obs::Counter &
missCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("server.cache_misses");
    return c;
}

obs::Counter &
evictionCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("server.cache_evictions");
    return c;
}

obs::Timer &
compileTimer()
{
    static obs::Timer &t =
        obs::Registry::global().timer("server.compile");
    return t;
}

/**
 * Compile the model a spec describes. Paper-scale clusters keep the
 * golden SharedInfrastructureFirst order; larger clusters switch to
 * NodeMajor, which stays polynomial in the cluster size (PR 5) —
 * availability values are identical either way, only diagram shape
 * differs.
 */
std::shared_ptr<const model::ExactPlaneModel>
compileModel(const QuerySpec &spec, const bdd::StepBudget &budget)
{
    fmea::ControllerCatalog catalog = resolveCatalog(spec);
    topology::DeploymentTopology topo =
        resolveTopology(spec, catalog.roles().size());
    model::ExactPlaneModel::Options options;
    if (spec.nodes > 3)
        options.order = model::ExactVariableOrder::NodeMajor;
    options.budget = budget;
    return std::make_shared<const model::ExactPlaneModel>(
        catalog, topo, spec.policy, spec.plane, options);
}

} // anonymous namespace

ModelCache::ModelCache(std::size_t capacity) : capacity_(capacity)
{
    require(capacity >= 1, "model cache capacity must be >= 1");
}

void
ModelCache::setCompileBudget(const bdd::StepBudget &budget)
{
    std::lock_guard<std::mutex> lock(mutex_);
    compileBudget_ = budget;
}

CacheLookup
ModelCache::acquire(const QuerySpec &spec)
{
    std::string key = spec.modelKey();
    std::promise<CachedModel> promise;
    std::shared_future<CachedModel> future;
    bdd::StepBudget budget;
    bool compile = false;
    bool coalesced = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = index_.find(key);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            future = it->second->future;
            coalesced = !it->second->ready;
            ++hits_;
        } else {
            future = promise.get_future().share();
            lru_.push_front(Entry{key, future, false, 0});
            index_[key] = lru_.begin();
            ++misses_;
            budget = compileBudget_;
            compile = true;
        }
    }

    if (!compile) {
        hitCounter().add();
        // May be an in-flight compile: waiting here coalesces
        // concurrent misses onto one build.
        CachedModel cached = future.get();
        return {cached.model, true, coalesced, cached.compileMs};
    }

    missCounter().add();
    try {
        auto t0 = std::chrono::steady_clock::now();
        std::shared_ptr<const model::ExactPlaneModel> model =
            compileModel(spec, budget);
        double compileMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = index_.find(key);
            // The entry cannot have been evicted: eviction skips
            // entries whose compile has not finished.
            require(it != index_.end(),
                    "model cache lost an in-flight entry");
            it->second->ready = true;
            it->second->bddNodes = model->bddNodeCount();
            ++readyCount_;
            totalBddNodes_ += it->second->bddNodes;
            evictOverCapacityLocked();
        }
        compileTimer().record(compileMs);
        promise.set_value(CachedModel{model, compileMs});
        return {model, false, false, compileMs};
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = index_.find(key);
            if (it != index_.end()) {
                lru_.erase(it->second);
                index_.erase(it);
            }
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

void
ModelCache::evictOverCapacityLocked()
{
    while (readyCount_ > capacity_) {
        // Walk from the LRU tail past in-flight entries (they are
        // pinned until their compile lands).
        auto victim = lru_.end();
        for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
            if (it->ready) {
                victim = std::prev(it.base());
                break;
            }
        }
        if (victim == lru_.end())
            return;
        totalBddNodes_ -= victim->bddNodes;
        --readyCount_;
        ++evictions_;
        evictionCounter().add();
        index_.erase(victim->key);
        lru_.erase(victim);
    }
}

std::size_t
ModelCache::entryCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return readyCount_;
}

std::size_t
ModelCache::totalBddNodes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return totalBddNodes_;
}

std::vector<std::string>
ModelCache::keysMostRecentFirst() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> keys;
    keys.reserve(lru_.size());
    for (const Entry &entry : lru_)
        keys.push_back(entry.key);
    return keys;
}

std::uint64_t
ModelCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
ModelCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::uint64_t
ModelCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

} // namespace sdnav::server
