#include "server/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "bdd/bdd.hh"
#include "common/error.hh"
#include "common/version.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"

namespace sdnav::server
{

namespace
{

/** How often blocked accept/read loops re-check the stop flag. */
constexpr int kPollMs = 100;

obs::Counter &
requestCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("server.requests");
    return c;
}

obs::Counter &
queryCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("server.queries");
    return c;
}

obs::Counter &
errorCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("server.errors");
    return c;
}

obs::Counter &
connectionCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("server.connections");
    return c;
}

obs::Gauge &
queueDepthGauge()
{
    static obs::Gauge &g =
        obs::Registry::global().gauge("server.queue_depth");
    return g;
}

obs::Gauge &
queuePeakGauge()
{
    static obs::Gauge &g =
        obs::Registry::global().gauge("server.queue_peak");
    return g;
}

obs::Histogram &
latencyHistogram()
{
    static obs::Histogram &h = obs::Registry::global().histogram(
        "server.request_latency_ms");
    return h;
}

obs::Timer &
evalTimer()
{
    static obs::Timer &t =
        obs::Registry::global().timer("server.eval");
    return t;
}

obs::Counter &
slowRequestCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("server.slow_requests");
    return c;
}

obs::Counter &
oversizedLineCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("server.oversized_lines");
    return c;
}

obs::Counter &
compileAbortCounter()
{
    static obs::Counter &c =
        obs::Registry::global().counter("server.compile_aborts");
    return c;
}

double
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/**
 * Write a full buffer to a socket. MSG_NOSIGNAL turns a peer that
 * vanished mid-reply into an error return instead of SIGPIPE — the
 * session just ends; the server must not.
 */
bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // anonymous namespace

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity)
{
    require(capacity >= 1, "job queue capacity must be >= 1");
}

bool
JobQueue::push(Job &&job)
{
    std::unique_lock<std::mutex> lock(mutex_);
    notFull_.wait(lock, [this] {
        return closed_ || jobs_.size() < capacity_;
    });
    if (closed_)
        return false;
    jobs_.push_back(std::move(job));
    queueDepthGauge().set(static_cast<double>(jobs_.size()));
    queuePeakGauge().setMax(static_cast<double>(jobs_.size()));
    lock.unlock();
    notEmpty_.notify_one();
    return true;
}

bool
JobQueue::pop(Job &job)
{
    std::unique_lock<std::mutex> lock(mutex_);
    notEmpty_.wait(lock,
                   [this] { return closed_ || !jobs_.empty(); });
    if (jobs_.empty())
        return false; // closed and fully drained
    job = std::move(jobs_.front());
    jobs_.pop_front();
    queueDepthGauge().set(static_cast<double>(jobs_.size()));
    lock.unlock();
    notFull_.notify_one();
    return true;
}

void
JobQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    notFull_.notify_all();
    notEmpty_.notify_all();
}

std::size_t
JobQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_.size();
}

Server::Server(const ServerOptions &options)
    : options_(options), cache_(options.cacheCapacity),
      queue_(options.queueCapacity)
{
    require(options.maxLineBytes >= 64,
            "max line bytes must be >= 64");
    require(options.maxBatch >= 1, "max batch must be >= 1");
    if (options.compileBudgetMs > 0.0 || options.compileNodeCap > 0) {
        cache_.setCompileBudget(bdd::StepBudget{
            options.compileBudgetMs, options.compileNodeCap});
    }
}

Server::~Server()
{
    if (started_.load()) {
        requestStop();
        wait();
    }
}

void
Server::start()
{
    require(!started_.load(), "server already started");

    // Observability endpoints come up first: if the request log or
    // the Prometheus port is unusable, fail before accepting query
    // traffic we could not account for.
    if (!options_.requestLogPath.empty())
        requestLog_.open(options_.requestLogPath);
    if (options_.promEnabled)
        promHttp_.start(options_.promPort);

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    require(listenFd_ >= 0, std::string("socket() failed: ") +
                                std::strerror(errno));

    int enable = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof(enable));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        std::string reason = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw ModelError("bind to 127.0.0.1:" +
                         std::to_string(options_.port) +
                         " failed: " + reason);
    }
    if (::listen(listenFd_, 64) != 0) {
        std::string reason = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw ModelError("listen failed: " + reason);
    }

    socklen_t addrLen = sizeof(addr);
    require(::getsockname(listenFd_,
                          reinterpret_cast<sockaddr *>(&addr),
                          &addrLen) == 0,
            "getsockname failed");
    port_ = ntohs(addr.sin_port);

    startTime_ = std::chrono::steady_clock::now();
    started_.store(true);

    std::size_t workerCount = options_.resolvedWorkers();
    workers_.reserve(workerCount);
    for (std::size_t i = 0; i < workerCount; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void
Server::requestStop()
{
    stopping_.store(true, std::memory_order_release);
}

void
Server::wait()
{
    // Block until someone (signal handler, "shutdown" command, or a
    // test) asks for shutdown. The flag is also the session/acceptor
    // exit condition, so a plain poll keeps this signal-handler
    // compatible — no condvar a handler would have to notify.
    while (!stopping())
        std::this_thread::sleep_for(std::chrono::milliseconds(20));

    bool expected = false;
    if (!joined_.compare_exchange_strong(expected, true))
        return; // another wait() already ran the join sequence

    // Shutdown order matters: sessions may still be waiting on
    // worker futures, so workers stay alive until every session has
    // written its final reply and exited. Only then does closing the
    // queue let workers drain the remaining jobs and stop.
    if (acceptor_.joinable())
        acceptor_.join();
    reapSessions(true);
    queue_.close();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
    // The endpoint outlives the workers so a scrape can still see
    // the drain; it stops before the listen socket goes away.
    promHttp_.stop();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

void
Server::acceptLoop()
{
    while (!stopping()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, kPollMs);
        reapSessions(false);
        if (ready <= 0)
            continue;
        sockaddr_in peerAddr{};
        socklen_t peerLen = sizeof(peerAddr);
        int fd = ::accept(listenFd_,
                          reinterpret_cast<sockaddr *>(&peerAddr),
                          &peerLen);
        if (fd < 0)
            continue;
        connections_.fetch_add(1, std::memory_order_relaxed);
        connectionCounter().add();
        auto session = std::make_unique<Session>();
        session->fd = fd;
        char ip[INET_ADDRSTRLEN] = "?";
        ::inet_ntop(AF_INET, &peerAddr.sin_addr, ip, sizeof(ip));
        session->peer =
            std::string(ip) + ":" +
            std::to_string(ntohs(peerAddr.sin_port));
        Session *raw = session.get();
        {
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            sessions_.push_back(std::move(session));
        }
        raw->thread = std::thread([this, raw] {
            sessionLoop(*raw);
            raw->done.store(true, std::memory_order_release);
        });
    }
}

void
Server::reapSessions(bool joinAll)
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        Session &session = **it;
        if (joinAll || session.done.load(std::memory_order_acquire)) {
            if (session.thread.joinable())
                session.thread.join();
            it = sessions_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::sessionLoop(Session &session)
{
    std::string buffer;
    bool discarding = false;
    char chunk[4096];

    while (!stopping()) {
        pollfd pfd{session.fd, POLLIN, 0};
        int ready = ::poll(&pfd, 1, kPollMs);
        if (ready < 0 && errno != EINTR)
            break;
        if (ready <= 0)
            continue;
        ssize_t n = ::recv(session.fd, chunk, sizeof(chunk), 0);
        if (n == 0)
            break; // client closed (possibly mid-line: just ends)
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));

        for (;;) {
            std::size_t pos = buffer.find('\n');
            if (pos == std::string::npos) {
                if (discarding) {
                    // Still inside an already-rejected line; keep
                    // dropping bytes until its newline arrives.
                    buffer.clear();
                } else if (buffer.size() > options_.maxLineBytes) {
                    errors_.fetch_add(1, std::memory_order_relaxed);
                    errorCounter().add();
                    oversizedLineCounter().add();
                    if (!sendAll(session.fd,
                                 errorReplyLine(
                                     json::Value{},
                                     "request line exceeds " +
                                         std::to_string(
                                             options_.maxLineBytes) +
                                         " bytes") +
                                     "\n"))
                        goto done;
                    buffer.clear();
                    discarding = true;
                }
                break;
            }
            std::string line = buffer.substr(0, pos);
            buffer.erase(0, pos + 1);
            if (discarding) {
                // This newline terminates the rejected line; the
                // next line starts clean.
                discarding = false;
                continue;
            }
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            std::string reply = handleLine(line, session.peer);
            if (!sendAll(session.fd, reply + "\n"))
                goto done;
        }
    }

done:
    ::close(session.fd);
}

std::string
Server::handleLine(const std::string &line, const std::string &peer)
{
    auto t0 = std::chrono::steady_clock::now();
    std::uint64_t requestId =
        nextRequestId_.fetch_add(1, std::memory_order_relaxed) + 1;
    obs::TraceSpan request_span("server.request", requestId);
    requests_.fetch_add(1, std::memory_order_relaxed);
    requestCounter().add();

    RequestRecord record;
    record.id = requestId;
    record.peer = peer;

    // Every exit runs through here: measure, flag slow requests, and
    // append the request-log line after the reply is final.
    auto finish = [&](std::string reply) {
        double latency = elapsedMs(t0);
        latencyHistogram().record(latency);
        if (options_.slowMs > 0.0 && latency > options_.slowMs) {
            slowRequests_.fetch_add(1, std::memory_order_relaxed);
            slowRequestCounter().add();
            obs::Tracer::global().instant("server.slow_request",
                                          requestId);
        }
        record.replyBytes = reply.size();
        record.latencyMs = latency;
        requestLog_.append(record);
        return reply;
    };

    Request request;
    try {
        request = parseRequest(line, options_.maxBatch);
    } catch (const std::exception &e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        errorCounter().add();
        record.kind = "invalid";
        record.outcome = "error";
        return finish(errorReplyLine(json::Value{}, e.what()));
    }

    json::Value reply = json::Value::makeObject();
    if (!request.id.isNull())
        reply.set("id", request.id);

    record.outcome = "ok";
    switch (request.kind) {
    case Request::Kind::Ping:
        record.kind = "cmd:ping";
        reply.set("ok", true);
        reply.set("pong", true);
        return finish(reply.dump());
    case Request::Kind::Stats:
        record.kind = "cmd:stats";
        reply.set("ok", true);
        reply.set("stats", statsJson());
        return finish(reply.dump());
    case Request::Kind::Metrics:
        record.kind = "cmd:metrics";
        reply.set("ok", true);
        reply.set("metrics",
                  obs::Registry::global().prometheusText());
        return finish(reply.dump());
    case Request::Kind::Shutdown:
        record.kind = "cmd:shutdown";
        reply.set("ok", true);
        reply.set("stopping", true);
        requestStop();
        return finish(reply.dump());
    case Request::Kind::Query:
    case Request::Kind::Batch:
        break;
    }

    record.kind =
        request.kind == Request::Kind::Query ? "query" : "batch";
    if (request.kind == Request::Kind::Query && request.queries[0].ok)
        record.key = request.queries[0].spec.modelKey();
    else if (request.kind == Request::Kind::Batch)
        record.key = "batch";

    // Fan the query items out to the worker pool, then collect the
    // results in request order so replies stay deterministic.
    std::vector<std::future<JobResult>> pending(
        request.queries.size());
    std::vector<json::Value> results(request.queries.size());
    bool anyError = false;
    bool anyBudgetExceeded = false;
    const char *cacheAgg = nullptr;
    bool cacheMixed = false;
    for (std::size_t i = 0; i < request.queries.size(); ++i) {
        ParsedQuery &item = request.queries[i];
        if (!item.ok) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            errorCounter().add();
            anyError = true;
            json::Value failed = json::Value::makeObject();
            failed.set("ok", false);
            failed.set("error", item.error);
            results[i] = std::move(failed);
            continue;
        }
        queries_.fetch_add(1, std::memory_order_relaxed);
        queryCounter().add();
        Job job;
        job.spec = item.spec;
        job.requestId = requestId;
        job.enqueueTime = std::chrono::steady_clock::now();
        pending[i] = job.result.get_future();
        if (!queue_.push(std::move(job))) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            errorCounter().add();
            anyError = true;
            json::Value failed = json::Value::makeObject();
            failed.set("ok", false);
            failed.set("error", "server is shutting down");
            results[i] = std::move(failed);
            pending[i] = {};
        }
    }
    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (!pending[i].valid())
            continue;
        JobResult job_result = pending[i].get();
        const JobTelemetry &telemetry = job_result.telemetry;
        record.queueWaitMs += telemetry.queueWaitMs;
        record.compileMs += telemetry.compileMs;
        record.evalMs += telemetry.evalMs;
        if (telemetry.cache[0] != '\0') {
            if (cacheAgg == nullptr)
                cacheAgg = telemetry.cache;
            else if (std::strcmp(cacheAgg, telemetry.cache) != 0)
                cacheMixed = true;
        }
        if (telemetry.budgetExceeded)
            anyBudgetExceeded = true;
        if (job_result.reply.contains("ok") &&
            !job_result.reply.at("ok").asBool())
            anyError = true;
        results[i] = std::move(job_result.reply);
    }
    record.cache =
        cacheMixed ? "mixed" : (cacheAgg != nullptr ? cacheAgg : "");
    record.outcome = anyBudgetExceeded
                         ? "budget_exceeded"
                         : (anyError ? "error" : "ok");

    if (request.kind == Request::Kind::Query) {
        // Merge the single result into the id-bearing envelope.
        for (const auto &[key, value] : results[0].asObject())
            reply.set(key, value);
    } else {
        reply.set("ok", true);
        json::Value items = json::Value::makeArray();
        for (json::Value &result : results)
            items.push(std::move(result));
        reply.set("results", std::move(items));
    }
    return finish(reply.dump());
}

void
Server::workerLoop()
{
    Job job;
    while (queue_.pop(job)) {
        JobTelemetry telemetry;
        telemetry.queueWaitMs = elapsedMs(job.enqueueTime);
        obs::TraceSpan job_span("server.job", job.requestId);
        json::Value result = json::Value::makeObject();
        try {
            CacheLookup lookup;
            {
                obs::TraceSpan acquire_span("server.model_acquire",
                                            job.requestId);
                lookup = cache_.acquire(job.spec);
            }
            if (!lookup.hit)
                telemetry.compileMs = lookup.compileMs;
            telemetry.cache =
                lookup.hit ? (lookup.coalesced ? "coalesced" : "hit")
                           : "miss";
            auto t0 = std::chrono::steady_clock::now();
            double availability;
            {
                obs::TraceSpan eval_span("server.eval",
                                         job.requestId);
                thread_local bdd::ProbabilityScratch scratch;
                availability = lookup.model->availability(
                    job.spec.params, scratch);
            }
            double evalMs = elapsedMs(t0);
            evalTimer().record(evalMs);
            telemetry.evalMs = evalMs;
            result.set("ok", true);
            result.set("availability", availability);
            result.set("plane", job.spec.planeName());
            result.set("model_key", job.spec.modelKey());
            result.set("cache", telemetry.cache);
        } catch (const bdd::BudgetExceeded &e) {
            // A budget abort is a per-request answer, not a worker
            // failure: report what the compile had consumed and move
            // on. Coalesced waiters see the same exception through
            // the shared future and land here too.
            errors_.fetch_add(1, std::memory_order_relaxed);
            errorCounter().add();
            compileAbortCounter().add();
            obs::Tracer::global().instant("server.budget_exceeded",
                                          job.requestId);
            telemetry.budgetExceeded = true;
            result.set("ok", false);
            result.set("error", e.what());
            result.set("budget_exceeded", true);
            result.set("budget", e.budgetName());
            result.set("nodes_allocated",
                       static_cast<double>(e.nodesAllocated()));
            result.set("gc_runs", static_cast<double>(e.gcRuns()));
            result.set("elapsed_ms", e.elapsedMs());
        } catch (const std::exception &e) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            errorCounter().add();
            result.set("ok", false);
            result.set("error", e.what());
        }
        job.result.set_value(
            JobResult{std::move(result), telemetry});
    }
}

json::Value
Server::statsJson() const
{
    double uptimeS =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      startTime_)
            .count();
    std::uint64_t requests =
        requests_.load(std::memory_order_relaxed);

    json::Value stats = json::Value::makeObject();
    stats.set("uptime_s", uptimeS);
    // uptime_seconds is the self-describing alias scrapers key on;
    // uptime_s stays for existing clients.
    stats.set("uptime_seconds", uptimeS);
    stats.set("git_sha", common::gitSha());
    stats.set("qps", uptimeS > 0.0
                         ? static_cast<double>(requests) / uptimeS
                         : 0.0);
    stats.set("requests", static_cast<double>(requests));
    stats.set("slow_requests",
              static_cast<double>(
                  slowRequests_.load(std::memory_order_relaxed)));
    stats.set("queries",
              static_cast<double>(
                  queries_.load(std::memory_order_relaxed)));
    stats.set("errors",
              static_cast<double>(
                  errors_.load(std::memory_order_relaxed)));
    stats.set("connections",
              static_cast<double>(
                  connections_.load(std::memory_order_relaxed)));
    stats.set("workers",
              static_cast<double>(options_.resolvedWorkers()));

    json::Value cache = json::Value::makeObject();
    std::uint64_t hits = cache_.hits();
    std::uint64_t misses = cache_.misses();
    cache.set("hits", static_cast<double>(hits));
    cache.set("misses", static_cast<double>(misses));
    cache.set("evictions", static_cast<double>(cache_.evictions()));
    cache.set("entries", static_cast<double>(cache_.entryCount()));
    cache.set("capacity", static_cast<double>(cache_.capacity()));
    cache.set("hit_rate",
              hits + misses > 0
                  ? static_cast<double>(hits) /
                        static_cast<double>(hits + misses)
                  : 0.0);
    cache.set("bdd_nodes",
              static_cast<double>(cache_.totalBddNodes()));
    stats.set("cache", std::move(cache));

    json::Value queue = json::Value::makeObject();
    queue.set("depth", static_cast<double>(queue_.depth()));
    queue.set("capacity", static_cast<double>(queue_.capacity()));
    queue.set("peak", queuePeakGauge().value());
    stats.set("queue", std::move(queue));

    obs::HistogramStats latency = latencyHistogram().stats();
    json::Value latencyDoc = json::Value::makeObject();
    latencyDoc.set("count", static_cast<double>(latency.count));
    latencyDoc.set("mean_ms", latency.mean());
    latencyDoc.set("p50_ms", latency.p50);
    latencyDoc.set("p90_ms", latency.p90);
    latencyDoc.set("p99_ms", latency.p99);
    latencyDoc.set("max_ms", latency.max);
    stats.set("latency", std::move(latencyDoc));

    return stats;
}

} // namespace sdnav::server
