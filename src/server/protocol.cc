#include "server/protocol.hh"

#include <cmath>

#include "common/error.hh"
#include "fmea/openContrail.hh"
#include "prob/processAvailability.hh"

namespace sdnav::server
{

namespace
{

/** Reject unknown members so typos fail loudly, not silently. */
void
requireKnownMembers(const json::Value &doc,
                    std::initializer_list<const char *> allowed,
                    const std::string &context)
{
    for (const auto &[key, value] : doc.asObject()) {
        bool known = false;
        for (const char *candidate : allowed)
            known = known || key == candidate;
        require(known,
                context + ": unknown member '" + key + "'");
    }
}

/** A member that must be a JSON number if present. */
double
numberMember(const json::Value &doc, const std::string &key,
             double fallback)
{
    if (!doc.contains(key))
        return fallback;
    const json::Value &value = doc.at(key);
    require(value.isNumber(),
            "member '" + key + "' must be a number");
    return value.asNumber();
}

/** A member that must be a JSON string if present. */
std::string
stringMember(const json::Value &doc, const std::string &key,
             const std::string &fallback)
{
    if (!doc.contains(key))
        return fallback;
    const json::Value &value = doc.at(key);
    require(value.isString(),
            "member '" + key + "' must be a string");
    return value.asString();
}

model::SwParams
parseParams(const json::Value &doc)
{
    model::SwParams params;
    if (doc.contains("timings")) {
        const json::Value &timings = doc.at("timings");
        require(timings.isObject(),
                "member 'timings' must be an object");
        requireKnownMembers(timings,
                            {"mtbf", "restart", "manual-restart"},
                            "timings");
        prob::ProcessTimings t;
        t.mtbfHours = numberMember(timings, "mtbf", t.mtbfHours);
        t.autoRestartHours =
            numberMember(timings, "restart", t.autoRestartHours);
        t.manualRestartHours = numberMember(timings, "manual-restart",
                                            t.manualRestartHours);
        t.validate();
        params = model::SwParams::fromTimings(t);
    }
    if (doc.contains("params")) {
        const json::Value &overrides = doc.at("params");
        require(overrides.isObject(),
                "member 'params' must be an object");
        requireKnownMembers(overrides, {"a", "as", "av", "ah", "ar"},
                            "params");
        params.processAvailability = numberMember(
            overrides, "a", params.processAvailability);
        params.manualProcessAvailability = numberMember(
            overrides, "as", params.manualProcessAvailability);
        params.vmAvailability =
            numberMember(overrides, "av", params.vmAvailability);
        params.hostAvailability =
            numberMember(overrides, "ah", params.hostAvailability);
        params.rackAvailability =
            numberMember(overrides, "ar", params.rackAvailability);
    }
    params.validate();
    return params;
}

} // anonymous namespace

std::string
QuerySpec::modelKey() const
{
    return "catalog=" + catalog + ";topology=" + topology +
           ";nodes=" + std::to_string(nodes) + ";policy=" +
           (policy == model::SupervisorPolicy::Required
                ? "required"
                : "not-required") +
           ";plane=" + planeName();
}

std::string
QuerySpec::planeName() const
{
    return plane == fmea::Plane::DataPlane ? "dp" : "cp";
}

QuerySpec
parseQuerySpec(const json::Value &doc, bool inBatch)
{
    require(doc.isObject(), "query must be a JSON object");
    if (inBatch) {
        requireKnownMembers(doc,
                            {"catalog", "topology", "nodes", "policy",
                             "plane", "timings", "params"},
                            "batch query");
    } else {
        requireKnownMembers(doc,
                            {"id", "catalog", "topology", "nodes",
                             "policy", "plane", "timings", "params"},
                            "query");
    }

    QuerySpec spec;
    spec.catalog = stringMember(doc, "catalog", spec.catalog);
    require(spec.catalog == "opencontrail" ||
                spec.catalog == "raft" || spec.catalog == "fragile",
            "unknown catalog '" + spec.catalog +
                "' (expected opencontrail | raft | fragile)");

    spec.topology = stringMember(doc, "topology", spec.topology);
    require(spec.topology == "small" || spec.topology == "medium" ||
                spec.topology == "large",
            "unknown topology '" + spec.topology +
                "' (expected small | medium | large)");

    double nodes =
        numberMember(doc, "nodes", static_cast<double>(spec.nodes));
    require(nodes == std::floor(nodes) && nodes >= 1.0 &&
                nodes <= static_cast<double>(kMaxClusterNodes),
            "member 'nodes' must be an integer in [1, " +
                std::to_string(kMaxClusterNodes) + "]");
    spec.nodes = static_cast<std::size_t>(nodes);

    std::string policy = stringMember(doc, "policy", "required");
    if (policy == "required") {
        spec.policy = model::SupervisorPolicy::Required;
    } else if (policy == "not-required") {
        spec.policy = model::SupervisorPolicy::NotRequired;
    } else {
        throw ModelError("unknown policy '" + policy +
                         "' (expected required | not-required)");
    }

    std::string plane = stringMember(doc, "plane", "cp");
    if (plane == "cp") {
        spec.plane = fmea::Plane::ControlPlane;
    } else if (plane == "dp") {
        spec.plane = fmea::Plane::DataPlane;
    } else {
        throw ModelError("unknown plane '" + plane +
                         "' (expected cp | dp)");
    }

    spec.params = parseParams(doc);
    return spec;
}

Request
parseRequest(const std::string &line, std::size_t maxBatch)
{
    json::Value doc = json::parse(line);
    require(doc.isObject(), "request must be a JSON object");

    Request request;
    if (doc.contains("id"))
        request.id = doc.at("id");

    if (doc.contains("cmd")) {
        requireKnownMembers(doc, {"cmd", "id"}, "command");
        const json::Value &cmd = doc.at("cmd");
        require(cmd.isString(), "member 'cmd' must be a string");
        const std::string &name = cmd.asString();
        if (name == "ping") {
            request.kind = Request::Kind::Ping;
        } else if (name == "stats") {
            request.kind = Request::Kind::Stats;
        } else if (name == "metrics") {
            request.kind = Request::Kind::Metrics;
        } else if (name == "shutdown") {
            request.kind = Request::Kind::Shutdown;
        } else {
            throw ModelError(
                "unknown command '" + name +
                "' (expected ping | stats | metrics | shutdown)");
        }
        return request;
    }

    if (doc.contains("queries")) {
        requireKnownMembers(doc, {"queries", "id"}, "batch");
        const json::Value &items = doc.at("queries");
        require(items.isArray(),
                "member 'queries' must be an array");
        require(!items.asArray().empty(),
                "batch must contain at least one query");
        require(items.asArray().size() <= maxBatch,
                "batch of " +
                    std::to_string(items.asArray().size()) +
                    " exceeds the limit of " +
                    std::to_string(maxBatch));
        request.kind = Request::Kind::Batch;
        for (const json::Value &item : items.asArray()) {
            ParsedQuery parsed;
            try {
                parsed.spec = parseQuerySpec(item, true);
                parsed.ok = true;
            } catch (const std::exception &e) {
                parsed.error = e.what();
            }
            request.queries.push_back(std::move(parsed));
        }
        return request;
    }

    // A single query that fails validation still yields a Request so
    // the caller can echo the id in the error reply.
    request.kind = Request::Kind::Query;
    ParsedQuery parsed;
    try {
        parsed.spec = parseQuerySpec(doc, false);
        parsed.ok = true;
    } catch (const std::exception &e) {
        parsed.error = e.what();
    }
    request.queries.push_back(std::move(parsed));
    return request;
}

std::string
errorReplyLine(const json::Value &id, const std::string &reason)
{
    json::Value reply = json::Value::makeObject();
    if (!id.isNull())
        reply.set("id", id);
    reply.set("ok", false);
    reply.set("error", reason);
    return reply.dump();
}

fmea::ControllerCatalog
resolveCatalog(const QuerySpec &spec)
{
    if (spec.catalog == "raft")
        return fmea::raftStyleController();
    if (spec.catalog == "fragile")
        return fmea::fragileController();
    return fmea::openContrail3();
}

topology::DeploymentTopology
resolveTopology(const QuerySpec &spec, std::size_t roleCount)
{
    if (spec.topology == "small")
        return topology::smallTopology(roleCount, spec.nodes);
    if (spec.topology == "medium")
        return topology::mediumTopology(roleCount, spec.nodes);
    return topology::largeTopology(roleCount, spec.nodes);
}

} // namespace sdnav::server
