/**
 * @file
 * Size-bounded LRU cache of compiled exact plane models.
 *
 * Compiling an ExactPlaneModel (building the full RBD and its BDD)
 * costs milliseconds to hundreds of milliseconds; evaluating one at
 * new parameters is a microsecond-scale linear traversal. The cache
 * keys on QuerySpec::modelKey() — (catalog, topology, nodes, policy,
 * plane), never the parameters — so every repeat what-if query skips
 * compilation entirely.
 *
 * Concurrency: lookups take one mutex; compilation happens *outside*
 * it. Concurrent misses on the same key coalesce onto a single
 * compile (the losers wait on a shared_future and count as hits —
 * they never compiled). Concurrent misses on different keys compile
 * in parallel; each model owns its own BddManager, so builds are
 * independent. Served models are shared_ptr, so an entry evicted
 * while a worker still evaluates it stays alive until released.
 *
 * Accounting: entryCount() never exceeds capacity, and
 * totalBddNodes() tracks the summed reachable-node footprint of the
 * resident models — the number the `stats` command reports.
 */

#ifndef SDNAV_SERVER_MODEL_CACHE_HH
#define SDNAV_SERVER_MODEL_CACHE_HH

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/exactModel.hh"
#include "server/protocol.hh"

namespace sdnav::server
{

/** The cached compiled model plus its provenance. */
struct CachedModel
{
    std::shared_ptr<const model::ExactPlaneModel> model;

    /** Wall time the compile took, for reply diagnostics. */
    double compileMs = 0.0;
};

/** Result of one cache lookup. */
struct CacheLookup
{
    std::shared_ptr<const model::ExactPlaneModel> model;

    /** True when this call did not compile (resident or coalesced). */
    bool hit = false;

    /**
     * True when this call hit an entry whose compile was still in
     * flight and waited for it — a coalesced concurrent miss.
     */
    bool coalesced = false;

    /** Compile wall time of the model's original build. */
    double compileMs = 0.0;
};

class ModelCache
{
  public:
    /** @param capacity Maximum resident models (>= 1). */
    explicit ModelCache(std::size_t capacity);

    ModelCache(const ModelCache &) = delete;
    ModelCache &operator=(const ModelCache &) = delete;

    /**
     * Return the compiled model for a spec, compiling on miss and
     * evicting the least recently used entry when over capacity.
     * Thread-safe; throws only what model compilation throws.
     */
    CacheLookup acquire(const QuerySpec &spec);

    /**
     * Set the compile budget applied to every subsequent miss
     * compile. Zeroed fields (the default) are unlimited. A compile
     * that exceeds the budget throws bdd::BudgetExceeded out of
     * acquire(); the failed entry is dropped, not cached, so a later
     * acquire() of the same key compiles afresh.
     */
    void setCompileBudget(const bdd::StepBudget &budget);

    /** Resident (fully compiled) entries. */
    std::size_t entryCount() const;

    /** Maximum resident entries. */
    std::size_t capacity() const { return capacity_; }

    /** Summed bddNodeCount() of the resident models. */
    std::size_t totalBddNodes() const;

    /** Resident keys, most recently used first (for tests/stats). */
    std::vector<std::string> keysMostRecentFirst() const;

    /** Lifetime counters (also mirrored into obs metrics). */
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t evictions() const;

  private:
    struct Entry
    {
        std::string key;
        std::shared_future<CachedModel> future;
        bool ready = false;

        /** Node footprint, recorded once the compile finished. */
        std::size_t bddNodes = 0;
    };

    using EntryList = std::list<Entry>;

    /** Drop ready entries from the LRU tail until within capacity. */
    void evictOverCapacityLocked();

    std::size_t capacity_;
    bdd::StepBudget compileBudget_{}; // guarded by mutex_

    mutable std::mutex mutex_;
    EntryList lru_; // front = most recently used
    std::unordered_map<std::string, EntryList::iterator> index_;
    std::size_t readyCount_ = 0;
    std::size_t totalBddNodes_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace sdnav::server

#endif // SDNAV_SERVER_MODEL_CACHE_HH
