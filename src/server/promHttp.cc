#include "server/promHttp.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "common/error.hh"
#include "obs/obs.hh"

namespace sdnav::server
{

namespace
{

/** How often the blocked accept loop re-checks the stop flag. */
constexpr int kPromPollMs = 100;

/** Bounded read of one HTTP request head (through the blank line). */
std::string
readRequestHead(int fd)
{
    std::string head;
    char chunk[1024];
    while (head.size() < 8192 &&
           head.find("\r\n\r\n") == std::string::npos) {
        pollfd pfd{fd, POLLIN, 0};
        if (::poll(&pfd, 1, 1000) <= 0)
            break; // a scraper that stalls mid-request gets dropped
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        head.append(chunk, static_cast<std::size_t>(n));
    }
    return head;
}

bool
sendAllHttp(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
httpResponse(const std::string &status, const std::string &contentType,
             const std::string &body)
{
    return "HTTP/1.1 " + status +
           "\r\nContent-Type: " + contentType +
           "\r\nContent-Length: " + std::to_string(body.size()) +
           "\r\nConnection: close\r\n\r\n" + body;
}

} // anonymous namespace

PromHttpServer::~PromHttpServer() { stop(); }

void
PromHttpServer::start(std::uint16_t port)
{
    require(listenFd_ < 0, "prometheus endpoint already started");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    require(listenFd_ >= 0, std::string("socket() failed: ") +
                                std::strerror(errno));

    int enable = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof(enable));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 16) != 0) {
        std::string reason = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw ModelError("prometheus endpoint bind to 127.0.0.1:" +
                         std::to_string(port) + " failed: " + reason);
    }

    socklen_t addrLen = sizeof(addr);
    require(::getsockname(listenFd_,
                          reinterpret_cast<sockaddr *>(&addr),
                          &addrLen) == 0,
            "getsockname failed");
    port_ = ntohs(addr.sin_port);

    stopping_.store(false, std::memory_order_release);
    thread_ = std::thread([this] { serveLoop(); });
}

void
PromHttpServer::stop()
{
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

void
PromHttpServer::serveLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, kPromPollMs);
        if (ready <= 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;

        std::string head = readRequestHead(fd);
        std::size_t methodEnd = head.find(' ');
        std::size_t pathEnd = methodEnd == std::string::npos
                                  ? std::string::npos
                                  : head.find(' ', methodEnd + 1);
        std::string method = methodEnd == std::string::npos
                                 ? ""
                                 : head.substr(0, methodEnd);
        std::string path =
            pathEnd == std::string::npos
                ? ""
                : head.substr(methodEnd + 1, pathEnd - methodEnd - 1);

        std::string response;
        if (method == "GET" && (path == "/metrics" || path == "/")) {
            response = httpResponse(
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                obs::Registry::global().prometheusText());
        } else {
            response = httpResponse("404 Not Found",
                                    "text/plain; charset=utf-8",
                                    "not found\n");
        }
        sendAllHttp(fd, response);
        ::close(fd);
    }
}

} // namespace sdnav::server
