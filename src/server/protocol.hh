/**
 * @file
 * The sdnavd wire protocol: newline-delimited JSON requests.
 *
 * One request per line, one reply line per request. A request is
 * either a command or an availability query:
 *
 *   {"cmd": "ping" | "stats" | "metrics" | "shutdown", "id": <any>}
 *
 *   {"id": <any>,
 *    "catalog": "opencontrail" | "raft" | "fragile",
 *    "topology": "small" | "medium" | "large",
 *    "nodes": 3,
 *    "policy": "required" | "not-required",
 *    "plane": "cp" | "dp",
 *    "timings": {"mtbf": H, "restart": H, "manual-restart": H},
 *    "params": {"a": A, "as": A, "av": A, "ah": A, "ar": A}}
 *
 *   {"id": <any>, "queries": [<query object without id>, ...]}
 *
 * Every query field is optional (paper defaults apply). "timings"
 * derives the process availabilities from MTBF/restart hours
 * (A = F/(F+R), the operator's MTTR knob); "params" then overrides
 * individual availabilities. The "id" is echoed verbatim in the
 * reply so clients can pipeline.
 *
 * The cache key deliberately excludes the parameters: the compiled
 * structure function depends only on (catalog, topology, nodes,
 * policy, plane), so one cached model answers every parameter
 * variation with a linear-time evaluation (see server::ModelCache).
 *
 * Parsing is strict — unknown members, non-integral node counts, and
 * out-of-range availabilities are rejected with a reason — and
 * always failure-isolated: a malformed line yields an error *reply*,
 * never a dead session (see server::Server).
 */

#ifndef SDNAV_SERVER_PROTOCOL_HH
#define SDNAV_SERVER_PROTOCOL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.hh"
#include "fmea/catalog.hh"
#include "model/params.hh"
#include "topology/deployment.hh"

namespace sdnav::server
{

/** Largest accepted cluster size (bounds worst-case compile cost). */
inline constexpr std::size_t kMaxClusterNodes = 63;

/** One fully validated availability query. */
struct QuerySpec
{
    std::string catalog = "opencontrail";
    std::string topology = "large";
    std::size_t nodes = 3;
    model::SupervisorPolicy policy = model::SupervisorPolicy::Required;
    fmea::Plane plane = fmea::Plane::ControlPlane;
    model::SwParams params{};

    /**
     * Canonical compiled-model cache key. Parameters are excluded on
     * purpose: evaluation-time inputs must not fragment the cache.
     */
    std::string modelKey() const;

    /** "cp" or "dp". */
    std::string planeName() const;
};

/** A batch item: either a validated spec or its rejection reason. */
struct ParsedQuery
{
    bool ok = false;
    QuerySpec spec{};
    std::string error;
};

/** A parsed request line. */
struct Request
{
    enum class Kind { Query, Batch, Stats, Metrics, Ping, Shutdown };

    Kind kind = Kind::Query;

    /** Echoed back verbatim; null when the request had no id. */
    json::Value id{};

    /** One entry for Kind::Query, many for Kind::Batch. */
    std::vector<ParsedQuery> queries;
};

/**
 * Parse and validate one request line.
 *
 * Batch items fail individually (a bad item becomes a per-item error
 * in the reply, the rest still run); everything else — malformed
 * JSON, unknown members, a non-object document, an oversized batch —
 * throws ModelError describing the problem, which the server turns
 * into an error reply for this line only.
 *
 * @param line The request line (without the trailing newline).
 * @param maxBatch Largest accepted "queries" array.
 */
Request parseRequest(const std::string &line, std::size_t maxBatch);

/** Parse one query object (no "id" member allowed when inBatch). */
QuerySpec parseQuerySpec(const json::Value &doc, bool inBatch);

/**
 * Build the reply line (no trailing newline) for a failed request.
 *
 * @param id Echoed request id (null for unidentifiable requests).
 * @param reason Human-readable failure description.
 */
std::string errorReplyLine(const json::Value &id,
                           const std::string &reason);

/** Resolve the built-in catalog a validated spec names. */
fmea::ControllerCatalog resolveCatalog(const QuerySpec &spec);

/** Resolve the reference topology a validated spec names. */
topology::DeploymentTopology resolveTopology(const QuerySpec &spec,
                                             std::size_t roleCount);

} // namespace sdnav::server

#endif // SDNAV_SERVER_PROTOCOL_HH
