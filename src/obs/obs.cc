#include "obs/obs.hh"

#include <limits>
#include <unordered_map>

namespace sdnav::obs
{

#if SDNAV_METRICS_ENABLED

namespace
{

/**
 * Metric instance ids are allocated once and never reused, so a
 * thread-local cache entry for a destroyed metric can never alias a
 * newer metric that happens to land at the same address.
 */
std::atomic<std::uint64_t> next_metric_id{1};

/**
 * Per-thread cell cache: metric id -> that thread's cell. Entries for
 * dead metrics are simply never looked up again. The map is touched
 * only by its owning thread.
 */
thread_local std::unordered_map<std::uint64_t, void *> t_cell_cache;

std::uint64_t
allocateMetricId()
{
    return next_metric_id.fetch_add(1, std::memory_order_relaxed);
}

} // anonymous namespace

/**
 * One thread's accumulator. Written only by the owning thread (relaxed
 * atomics keep a concurrent snapshot race-free); cache-line aligned so
 * two threads' cells never share a line.
 */
struct alignas(64) Counter::Cell
{
    std::atomic<std::uint64_t> value{0};
};

Counter::Counter() : id_(allocateMetricId()) {}

Counter::~Counter() = default;

Counter::Cell &
Counter::cell()
{
    auto it = t_cell_cache.find(id_);
    if (it != t_cell_cache.end())
        return *static_cast<Cell *>(it->second);
    std::lock_guard<std::mutex> lock(mutex_);
    cells_.push_back(std::make_unique<Cell>());
    Cell *c = cells_.back().get();
    t_cell_cache.emplace(id_, c);
    return *c;
}

void
Counter::add(std::uint64_t n)
{
    auto &v = cell().value;
    v.store(v.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
}

std::uint64_t
Counter::value() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t sum = 0;
    for (const auto &c : cells_)
        sum += c->value.load(std::memory_order_relaxed);
    return sum;
}

void
Counter::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &c : cells_)
        c->value.store(0, std::memory_order_relaxed);
}

void
Gauge::setMax(double v)
{
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v,
                                         std::memory_order_relaxed)) {
    }
}

/** One thread's interval accumulator; see Counter::Cell. */
struct alignas(64) Timer::Cell
{
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> total{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

Timer::Timer() : id_(allocateMetricId()) {}

Timer::~Timer() = default;

Timer::Cell &
Timer::cell()
{
    auto it = t_cell_cache.find(id_);
    if (it != t_cell_cache.end())
        return *static_cast<Cell *>(it->second);
    std::lock_guard<std::mutex> lock(mutex_);
    cells_.push_back(std::make_unique<Cell>());
    Cell *c = cells_.back().get();
    t_cell_cache.emplace(id_, c);
    return *c;
}

void
Timer::record(double ms)
{
    Cell &c = cell();
    c.count.store(c.count.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    c.total.store(c.total.load(std::memory_order_relaxed) + ms,
                  std::memory_order_relaxed);
    if (ms < c.min.load(std::memory_order_relaxed))
        c.min.store(ms, std::memory_order_relaxed);
    if (ms > c.max.load(std::memory_order_relaxed))
        c.max.store(ms, std::memory_order_relaxed);
}

TimerStats
Timer::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    TimerStats folded;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    for (const auto &c : cells_) {
        std::uint64_t count = c->count.load(std::memory_order_relaxed);
        if (count == 0)
            continue;
        folded.count += count;
        folded.totalMs += c->total.load(std::memory_order_relaxed);
        min = std::min(min, c->min.load(std::memory_order_relaxed));
        max = std::max(max, c->max.load(std::memory_order_relaxed));
    }
    if (folded.count > 0) {
        folded.minMs = min;
        folded.maxMs = max;
    }
    return folded;
}

void
Timer::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &c : cells_) {
        c->count.store(0, std::memory_order_relaxed);
        c->total.store(0.0, std::memory_order_relaxed);
        c->min.store(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
        c->max.store(-std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
    }
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Timer &
Registry::timer(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = timers_[name];
    if (!slot)
        slot = std::make_unique<Timer>();
    return *slot;
}

json::Value
Registry::snapshot() const
{
    // Copy the metric pointers under the lock, fold outside it: the
    // fold takes each metric's own mutex, and lock ordering stays
    // one-at-a-time.
    std::vector<std::pair<std::string, const Counter *>> counters;
    std::vector<std::pair<std::string, const Gauge *>> gauges;
    std::vector<std::pair<std::string, const Timer *>> timers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[name, c] : counters_)
            counters.emplace_back(name, c.get());
        for (const auto &[name, g] : gauges_)
            gauges.emplace_back(name, g.get());
        for (const auto &[name, t] : timers_)
            timers.emplace_back(name, t.get());
    }

    json::Value root = json::Value::makeObject();
    root.set("enabled", true);
    json::Value counter_obj = json::Value::makeObject();
    for (const auto &[name, c] : counters)
        counter_obj.set(name, static_cast<double>(c->value()));
    root.set("counters", std::move(counter_obj));
    json::Value gauge_obj = json::Value::makeObject();
    for (const auto &[name, g] : gauges)
        gauge_obj.set(name, g->value());
    root.set("gauges", std::move(gauge_obj));
    json::Value timer_obj = json::Value::makeObject();
    for (const auto &[name, t] : timers) {
        TimerStats stats = t->stats();
        json::Value entry = json::Value::makeObject();
        entry.set("count", static_cast<double>(stats.count));
        entry.set("total_ms", stats.totalMs);
        entry.set("min_ms", stats.minMs);
        entry.set("mean_ms", stats.meanMs());
        entry.set("max_ms", stats.maxMs);
        timer_obj.set(name, std::move(entry));
    }
    root.set("timers", std::move(timer_obj));
    return root;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &entry : counters_)
        entry.second->reset();
    for (auto &entry : gauges_)
        entry.second->reset();
    for (auto &entry : timers_)
        entry.second->reset();
}

#else // !SDNAV_METRICS_ENABLED

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

json::Value
Registry::snapshot() const
{
    json::Value root = json::Value::makeObject();
    root.set("enabled", false);
    return root;
}

#endif // SDNAV_METRICS_ENABLED

} // namespace sdnav::obs
