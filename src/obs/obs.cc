#include "obs/obs.hh"

#include <array>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace sdnav::obs
{

#if SDNAV_METRICS_ENABLED

namespace
{

/**
 * Metric instance ids are allocated once and never reused, so a
 * thread-local cache entry for a destroyed metric can never alias a
 * newer metric that happens to land at the same address.
 */
std::atomic<std::uint64_t> next_metric_id{1};

/**
 * Per-thread cell cache: metric id -> that thread's cell. Entries for
 * dead metrics are simply never looked up again. The map is touched
 * only by its owning thread.
 */
thread_local std::unordered_map<std::uint64_t, void *> t_cell_cache;

std::uint64_t
allocateMetricId()
{
    return next_metric_id.fetch_add(1, std::memory_order_relaxed);
}

} // anonymous namespace

/**
 * One thread's accumulator. Written only by the owning thread (relaxed
 * atomics keep a concurrent snapshot race-free); cache-line aligned so
 * two threads' cells never share a line.
 */
struct alignas(64) Counter::Cell
{
    std::atomic<std::uint64_t> value{0};
};

Counter::Counter() : id_(allocateMetricId()) {}

Counter::~Counter() = default;

Counter::Cell &
Counter::cell()
{
    auto it = t_cell_cache.find(id_);
    if (it != t_cell_cache.end())
        return *static_cast<Cell *>(it->second);
    std::lock_guard<std::mutex> lock(mutex_);
    cells_.push_back(std::make_unique<Cell>());
    Cell *c = cells_.back().get();
    t_cell_cache.emplace(id_, c);
    return *c;
}

void
Counter::add(std::uint64_t n)
{
    auto &v = cell().value;
    v.store(v.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
}

std::uint64_t
Counter::value() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t sum = 0;
    for (const auto &c : cells_)
        sum += c->value.load(std::memory_order_relaxed);
    return sum;
}

void
Counter::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &c : cells_)
        c->value.store(0, std::memory_order_relaxed);
}

void
Gauge::setMax(double v)
{
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v,
                                         std::memory_order_relaxed)) {
    }
}

/** One thread's interval accumulator; see Counter::Cell. */
struct alignas(64) Timer::Cell
{
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> total{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

Timer::Timer() : id_(allocateMetricId()) {}

Timer::~Timer() = default;

Timer::Cell &
Timer::cell()
{
    auto it = t_cell_cache.find(id_);
    if (it != t_cell_cache.end())
        return *static_cast<Cell *>(it->second);
    std::lock_guard<std::mutex> lock(mutex_);
    cells_.push_back(std::make_unique<Cell>());
    Cell *c = cells_.back().get();
    t_cell_cache.emplace(id_, c);
    return *c;
}

void
Timer::record(double ms)
{
    Cell &c = cell();
    c.count.store(c.count.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    c.total.store(c.total.load(std::memory_order_relaxed) + ms,
                  std::memory_order_relaxed);
    if (ms < c.min.load(std::memory_order_relaxed))
        c.min.store(ms, std::memory_order_relaxed);
    if (ms > c.max.load(std::memory_order_relaxed))
        c.max.store(ms, std::memory_order_relaxed);
}

TimerStats
Timer::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    TimerStats folded;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    for (const auto &c : cells_) {
        std::uint64_t count = c->count.load(std::memory_order_relaxed);
        if (count == 0)
            continue;
        folded.count += count;
        folded.totalMs += c->total.load(std::memory_order_relaxed);
        min = std::min(min, c->min.load(std::memory_order_relaxed));
        max = std::max(max, c->max.load(std::memory_order_relaxed));
    }
    if (folded.count > 0) {
        folded.minMs = min;
        folded.maxMs = max;
    }
    return folded;
}

void
Timer::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &c : cells_) {
        c->count.store(0, std::memory_order_relaxed);
        c->total.store(0.0, std::memory_order_relaxed);
        c->min.store(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
        c->max.store(-std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
    }
}

namespace
{

/**
 * Histogram bucket layout: geometric buckets a factor 2^(1/8) apart
 * (~9% wide) from kHistMin up, plus an underflow bucket 0 and an
 * overflow bucket at the top. Index math is shared by record() and
 * the quantile fold so a value always lands where the fold looks.
 */
constexpr double kHistMin = 1e-3;
constexpr int kHistBucketsPerOctave = 8;
constexpr int kHistOctaves = 27; // 1e-3 .. ~1.3e5
constexpr int kHistBuckets =
    kHistOctaves * kHistBucketsPerOctave + 2;

int
histBucketIndex(double value)
{
    if (!(value > kHistMin)) // NaN and underflow both land at 0
        return 0;
    int index = 1 + static_cast<int>(std::floor(
                        std::log2(value / kHistMin) *
                        kHistBucketsPerOctave));
    return index >= kHistBuckets ? kHistBuckets - 1 : index;
}

/** Upper bound of a bucket, used as the quantile estimate. */
double
histBucketUpper(int index)
{
    if (index <= 0)
        return kHistMin;
    return kHistMin *
           std::exp2(static_cast<double>(index) /
                     kHistBucketsPerOctave);
}

} // anonymous namespace

/** One thread's bucket array; see Counter::Cell. */
struct alignas(64) Histogram::Cell
{
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> total{0.0};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

Histogram::Histogram() : id_(allocateMetricId()) {}

Histogram::~Histogram() = default;

Histogram::Cell &
Histogram::cell()
{
    auto it = t_cell_cache.find(id_);
    if (it != t_cell_cache.end())
        return *static_cast<Cell *>(it->second);
    std::lock_guard<std::mutex> lock(mutex_);
    cells_.push_back(std::make_unique<Cell>());
    Cell *c = cells_.back().get();
    t_cell_cache.emplace(id_, c);
    return *c;
}

void
Histogram::record(double value)
{
    Cell &c = cell();
    auto &bucket = c.buckets[histBucketIndex(value)];
    bucket.store(bucket.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    c.count.store(c.count.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    c.total.store(c.total.load(std::memory_order_relaxed) + value,
                  std::memory_order_relaxed);
    if (value > c.max.load(std::memory_order_relaxed))
        c.max.store(value, std::memory_order_relaxed);
}

HistogramStats
Histogram::stats() const
{
    std::array<std::uint64_t, kHistBuckets> folded{};
    HistogramStats result;
    double max = -std::numeric_limits<double>::infinity();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &c : cells_) {
            std::uint64_t count =
                c->count.load(std::memory_order_relaxed);
            if (count == 0)
                continue;
            result.count += count;
            result.total +=
                c->total.load(std::memory_order_relaxed);
            max = std::max(max,
                           c->max.load(std::memory_order_relaxed));
            for (int i = 0; i < kHistBuckets; ++i) {
                folded[i] +=
                    c->buckets[i].load(std::memory_order_relaxed);
            }
        }
    }
    if (result.count == 0)
        return result;
    result.max = max;
    auto quantileOf = [&folded, &result](double q) {
        std::uint64_t target = static_cast<std::uint64_t>(
            std::ceil(q * static_cast<double>(result.count)));
        if (target == 0)
            target = 1;
        std::uint64_t seen = 0;
        for (int i = 0; i < kHistBuckets; ++i) {
            seen += folded[i];
            if (seen >= target)
                return histBucketUpper(i);
        }
        return histBucketUpper(kHistBuckets - 1);
    };
    result.p50 = quantileOf(0.50);
    result.p90 = quantileOf(0.90);
    result.p99 = quantileOf(0.99);
    return result;
}

double
Histogram::quantile(double q) const
{
    std::array<std::uint64_t, kHistBuckets> folded{};
    std::uint64_t total = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &c : cells_) {
            total += c->count.load(std::memory_order_relaxed);
            for (int i = 0; i < kHistBuckets; ++i) {
                folded[i] +=
                    c->buckets[i].load(std::memory_order_relaxed);
            }
        }
    }
    if (total == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    if (target == 0)
        target = 1;
    std::uint64_t seen = 0;
    for (int i = 0; i < kHistBuckets; ++i) {
        seen += folded[i];
        if (seen >= target)
            return histBucketUpper(i);
    }
    return histBucketUpper(kHistBuckets - 1);
}

std::vector<HistogramBucket>
Histogram::cumulativeBuckets() const
{
    std::array<std::uint64_t, kHistBuckets> folded{};
    std::uint64_t total = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &c : cells_) {
            total += c->count.load(std::memory_order_relaxed);
            for (int i = 0; i < kHistBuckets; ++i) {
                folded[i] +=
                    c->buckets[i].load(std::memory_order_relaxed);
            }
        }
    }
    std::vector<HistogramBucket> buckets;
    if (total == 0)
        return buckets;
    // Emit a cumulative entry per occupied bucket; sparse output is
    // legal because the counts are cumulative. The overflow bucket
    // has no finite bound, so it folds into the final +Inf entry.
    std::uint64_t cumulative = 0;
    for (int i = 0; i < kHistBuckets - 1; ++i) {
        if (folded[i] == 0)
            continue;
        cumulative += folded[i];
        buckets.push_back(
            HistogramBucket{histBucketUpper(i), cumulative});
    }
    buckets.push_back(HistogramBucket{
        std::numeric_limits<double>::infinity(), total});
    return buckets;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &c : cells_) {
        for (auto &bucket : c->buckets)
            bucket.store(0, std::memory_order_relaxed);
        c->count.store(0, std::memory_order_relaxed);
        c->total.store(0.0, std::memory_order_relaxed);
        c->max.store(-std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
    }
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Timer &
Registry::timer(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = timers_[name];
    if (!slot)
        slot = std::make_unique<Timer>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

json::Value
Registry::snapshot() const
{
    // Copy the metric pointers under the lock, fold outside it: the
    // fold takes each metric's own mutex, and lock ordering stays
    // one-at-a-time.
    std::vector<std::pair<std::string, const Counter *>> counters;
    std::vector<std::pair<std::string, const Gauge *>> gauges;
    std::vector<std::pair<std::string, const Timer *>> timers;
    std::vector<std::pair<std::string, const Histogram *>> histograms;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[name, c] : counters_)
            counters.emplace_back(name, c.get());
        for (const auto &[name, g] : gauges_)
            gauges.emplace_back(name, g.get());
        for (const auto &[name, t] : timers_)
            timers.emplace_back(name, t.get());
        for (const auto &[name, h] : histograms_)
            histograms.emplace_back(name, h.get());
    }

    json::Value root = json::Value::makeObject();
    root.set("enabled", true);
    json::Value counter_obj = json::Value::makeObject();
    for (const auto &[name, c] : counters)
        counter_obj.set(name, static_cast<double>(c->value()));
    root.set("counters", std::move(counter_obj));
    json::Value gauge_obj = json::Value::makeObject();
    for (const auto &[name, g] : gauges)
        gauge_obj.set(name, g->value());
    root.set("gauges", std::move(gauge_obj));
    json::Value timer_obj = json::Value::makeObject();
    for (const auto &[name, t] : timers) {
        TimerStats stats = t->stats();
        json::Value entry = json::Value::makeObject();
        entry.set("count", static_cast<double>(stats.count));
        entry.set("total_ms", stats.totalMs);
        entry.set("min_ms", stats.minMs);
        entry.set("mean_ms", stats.meanMs());
        entry.set("max_ms", stats.maxMs);
        timer_obj.set(name, std::move(entry));
    }
    root.set("timers", std::move(timer_obj));
    json::Value histogram_obj = json::Value::makeObject();
    for (const auto &[name, h] : histograms) {
        HistogramStats stats = h->stats();
        json::Value entry = json::Value::makeObject();
        entry.set("count", static_cast<double>(stats.count));
        entry.set("mean", stats.mean());
        entry.set("p50", stats.p50);
        entry.set("p90", stats.p90);
        entry.set("p99", stats.p99);
        entry.set("max", stats.max);
        histogram_obj.set(name, std::move(entry));
    }
    root.set("histograms", std::move(histogram_obj));
    return root;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &entry : counters_)
        entry.second->reset();
    for (auto &entry : gauges_)
        entry.second->reset();
    for (auto &entry : timers_)
        entry.second->reset();
    for (auto &entry : histograms_)
        entry.second->reset();
}

#else // !SDNAV_METRICS_ENABLED

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

json::Value
Registry::snapshot() const
{
    json::Value root = json::Value::makeObject();
    root.set("enabled", false);
    return root;
}

#endif // SDNAV_METRICS_ENABLED

} // namespace sdnav::obs
