/**
 * @file
 * Execution tracing: span / instant events exported as Chrome
 * `trace_event` JSON (loadable in perfetto or chrome://tracing).
 *
 * The metrics library (obs.hh) answers "how much, in total"; the
 * tracer answers "when, on which thread". BDD compile / apply /
 * probability phases, sweep chunks, and per-replication simulation
 * runs record begin/end pairs into per-thread bounded buffers, so a
 * slow sweep or an imbalanced replication pool can be inspected on a
 * real timeline instead of inferred from folded timers.
 *
 * Design mirrors the per-thread-cell counters: a thread's first event
 * registers a buffer owned by the tracer (surviving thread exit), and
 * every later event touches only that buffer under an uncontended
 * per-buffer mutex. Event names must be string literals (or otherwise
 * outlive the tracer) — only the pointer is stored. Buffers are
 * bounded: once a thread's buffer is full, new begin events are
 * dropped *in pairs* with their matching end (spans nest LIFO per
 * thread, so a drop-depth counter suffices), keeping the exported
 * stream well-formed — every emitted "B" has its "E". Drops are
 * counted and reported in stats().
 *
 * The tracer starts disabled; a disabled begin/end is one relaxed
 * atomic load and a branch. Building with -DSDNAV_METRICS=OFF swaps
 * in the same-API no-op (writeFile still emits a valid empty trace,
 * so `sdnav_cli --trace` keeps its contract in no-op builds).
 */

#ifndef SDNAV_OBS_TRACE_HH
#define SDNAV_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hh"

#ifndef SDNAV_METRICS_ENABLED
#define SDNAV_METRICS_ENABLED 1
#endif

namespace sdnav::obs
{

/** Folded view of tracer activity across all threads. */
struct TraceStats
{
    /** Events currently buffered (spans count twice: B and E). */
    std::uint64_t recorded = 0;

    /** Events rejected because a thread's buffer was full. */
    std::uint64_t dropped = 0;

    /** Threads that have recorded at least one event. */
    std::size_t threads = 0;
};

#if SDNAV_METRICS_ENABLED

/**
 * Process-wide event collector. Typical use is the RAII guard:
 *
 *     obs::TraceSpan span("sweep.chunk", chunkIndex);
 *
 * which records nothing until Tracer::global().enable() has run
 * (the CLI enables it when --trace FILE is passed).
 */
class Tracer
{
  public:
    /** Per-thread event budget when enable() is given no override. */
    static constexpr std::size_t kDefaultCapacity = 1u << 16;

    /** The process-wide tracer every subsystem records into. */
    static Tracer &global();

    Tracer();
    ~Tracer();
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Start collecting, with the given per-thread event budget.
     * Call before spawning workers; events recorded while disabled
     * are discarded for free.
     */
    void enable(std::size_t perThreadCapacity = kDefaultCapacity);

    /** Stop collecting (buffered events are kept for export). */
    void disable();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_acquire);
    }

    /** Open a span on the calling thread ("B" event). */
    void begin(const char *name);
    void begin(const char *name, std::uint64_t arg);

    /** Close the innermost open span ("E" event). */
    void end(const char *name);

    /** A point event on the calling thread's track ("i" event). */
    void instant(const char *name);
    void instant(const char *name, std::uint64_t arg);

    /**
     * Serialize all buffered events as a Chrome trace_event object:
     *
     *   {"displayTimeUnit": "ms",
     *    "traceEvents": [process/thread "M" metadata...,
     *                    B/E/i events, ts-sorted, in microseconds]}
     *
     * Threads appear as tid 1..N in registration order under pid 1.
     * Safe to call while writers are active (each buffer is copied
     * under its mutex), but a quiescent export is the useful one.
     */
    json::Value chromeTrace() const;

    /**
     * Write chromeTrace() to a file. @throws std::runtime_error when
     * the path is not writable.
     */
    void writeFile(const std::string &path) const;

    TraceStats stats() const;

    /** Drop all buffered events and disable (for test setup). */
    void reset();

  private:
    struct Buffer;

    Buffer &buffer();

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_{};
    std::size_t capacity_ = kDefaultCapacity;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Buffer>> buffers_;
    std::uint64_t id_;
};

/**
 * RAII span guard: begin on construction, end on destruction. The
 * enabled check happens once, in the constructor, so a span whose
 * begin was recorded always records its end even if the tracer is
 * disabled mid-span.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name,
                       Tracer &tracer = Tracer::global())
        : tracer_(&tracer), name_(name), active_(tracer.enabled())
    {
        if (active_)
            tracer_->begin(name_);
    }

    TraceSpan(const char *name, std::uint64_t arg,
              Tracer &tracer = Tracer::global())
        : tracer_(&tracer), name_(name), active_(tracer.enabled())
    {
        if (active_)
            tracer_->begin(name_, arg);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    ~TraceSpan()
    {
        if (active_)
            tracer_->end(name_);
    }

  private:
    Tracer *tracer_;
    const char *name_;
    bool active_;
};

#else // !SDNAV_METRICS_ENABLED — same API, empty bodies.

class Tracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = 0;

    static Tracer &global();

    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    void enable(std::size_t = 0) {}
    void disable() {}
    bool enabled() const { return false; }
    void begin(const char *) {}
    void begin(const char *, std::uint64_t) {}
    void end(const char *) {}
    void instant(const char *) {}
    void instant(const char *, std::uint64_t) {}

    /** {"displayTimeUnit": "ms", "traceEvents": []} — still valid. */
    json::Value chromeTrace() const;

    /** Writes the empty-but-valid trace so --trace keeps working. */
    void writeFile(const std::string &path) const;

    TraceStats stats() const { return {}; }
    void reset() {}
};

class TraceSpan
{
  public:
    explicit TraceSpan(const char *, Tracer & = Tracer::global()) {}
    TraceSpan(const char *, std::uint64_t,
              Tracer & = Tracer::global())
    {
    }
    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;
    ~TraceSpan() {} // user-provided: keeps guards warning-free

  private:
};

#endif // SDNAV_METRICS_ENABLED

} // namespace sdnav::obs

#endif // SDNAV_OBS_TRACE_HH
