#include "obs/trace.hh"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace sdnav::obs
{

namespace
{

/** Writes chromeTrace() with a trailing newline; shared with the
 *  no-op build so --trace behaves identically there. */
void
dumpTraceFile(const json::Value &trace, const std::string &path)
{
    std::ofstream out(path);
    out << trace.dump(2) << "\n";
    if (!out.good())
        throw std::runtime_error("cannot write trace file: " + path);
}

json::Value
emptyTraceRoot()
{
    json::Value root = json::Value::makeObject();
    root.set("displayTimeUnit", "ms");
    root.set("traceEvents", json::Value::makeArray());
    return root;
}

} // anonymous namespace

#if SDNAV_METRICS_ENABLED

namespace
{

/** Tracer ids are never reused; see the metric-id comment in obs.cc. */
std::atomic<std::uint64_t> next_tracer_id{1};

/** Per-thread buffer cache: tracer id -> this thread's buffer. */
thread_local std::unordered_map<std::uint64_t, void *> t_buffer_cache;

enum class Phase : std::uint8_t { Begin, End, Instant };

struct Event
{
    const char *name;
    std::uint64_t tsNs;
    std::uint64_t arg;
    Phase phase;
    bool hasArg;
};

} // anonymous namespace

/**
 * One thread's event log. Only the owning thread appends, but the
 * export path copies concurrently, so every access goes through the
 * (uncontended on the hot path) per-buffer mutex.
 */
struct alignas(64) Tracer::Buffer
{
    std::mutex mutex;
    std::vector<Event> events;

    /** Events rejected because the buffer was full. */
    std::uint64_t dropped = 0;

    /**
     * Open spans whose begin was dropped. Spans nest LIFO per
     * thread, so while this is non-zero the incoming ends belong to
     * dropped begins and are dropped too — recorded B/E events stay
     * perfectly paired.
     */
    std::uint64_t dropDepth = 0;
};

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

Tracer::Tracer()
    : id_(next_tracer_id.fetch_add(1, std::memory_order_relaxed))
{
}

Tracer::~Tracer() = default;

void
Tracer::enable(std::size_t perThreadCapacity)
{
    // Publish the epoch and capacity before the flag: recorders load
    // enabled_ with acquire, so they always see both.
    capacity_ = perThreadCapacity > 0 ? perThreadCapacity : 1;
    epoch_ = std::chrono::steady_clock::now();
    enabled_.store(true, std::memory_order_release);
}

void
Tracer::disable()
{
    enabled_.store(false, std::memory_order_release);
}

Tracer::Buffer &
Tracer::buffer()
{
    auto it = t_buffer_cache.find(id_);
    if (it != t_buffer_cache.end())
        return *static_cast<Buffer *>(it->second);
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<Buffer>());
    Buffer *b = buffers_.back().get();
    t_buffer_cache.emplace(id_, b);
    return *b;
}

namespace
{

std::uint64_t
nanosSince(std::chrono::steady_clock::time_point epoch)
{
    auto delta = std::chrono::steady_clock::now() - epoch;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  delta)
                  .count();
    return ns > 0 ? static_cast<std::uint64_t>(ns) : 0u;
}

} // anonymous namespace

void
Tracer::begin(const char *name)
{
    if (!enabled())
        return;
    std::uint64_t ts = nanosSince(epoch_);
    Buffer &b = buffer();
    std::lock_guard<std::mutex> lock(b.mutex);
    if (b.events.size() < capacity_ && b.dropDepth == 0) {
        b.events.push_back({name, ts, 0, Phase::Begin, false});
    } else {
        // Full (or already inside a dropped span): drop this span
        // whole — its end will be swallowed by dropDepth.
        ++b.dropped;
        ++b.dropDepth;
    }
}

void
Tracer::begin(const char *name, std::uint64_t arg)
{
    if (!enabled())
        return;
    std::uint64_t ts = nanosSince(epoch_);
    Buffer &b = buffer();
    std::lock_guard<std::mutex> lock(b.mutex);
    if (b.events.size() < capacity_ && b.dropDepth == 0) {
        b.events.push_back({name, ts, arg, Phase::Begin, true});
    } else {
        ++b.dropped;
        ++b.dropDepth;
    }
}

void
Tracer::end(const char *name)
{
    if (!enabled())
        return;
    std::uint64_t ts = nanosSince(epoch_);
    Buffer &b = buffer();
    std::lock_guard<std::mutex> lock(b.mutex);
    if (b.dropDepth > 0) {
        // This end closes a span whose begin was dropped.
        --b.dropDepth;
        ++b.dropped;
        return;
    }
    // A recorded begin always gets its end, even past the soft
    // capacity: the overshoot is bounded by the open-span depth at
    // the moment the buffer filled.
    b.events.push_back({name, ts, 0, Phase::End, false});
}

void
Tracer::instant(const char *name)
{
    if (!enabled())
        return;
    std::uint64_t ts = nanosSince(epoch_);
    Buffer &b = buffer();
    std::lock_guard<std::mutex> lock(b.mutex);
    if (b.events.size() < capacity_)
        b.events.push_back({name, ts, 0, Phase::Instant, false});
    else
        ++b.dropped;
}

void
Tracer::instant(const char *name, std::uint64_t arg)
{
    if (!enabled())
        return;
    std::uint64_t ts = nanosSince(epoch_);
    Buffer &b = buffer();
    std::lock_guard<std::mutex> lock(b.mutex);
    if (b.events.size() < capacity_)
        b.events.push_back({name, ts, arg, Phase::Instant, true});
    else
        ++b.dropped;
}

json::Value
Tracer::chromeTrace() const
{
    // Copy buffer pointers under the registry lock, then each
    // buffer's events under its own lock — same one-at-a-time lock
    // ordering as Registry::snapshot().
    std::vector<Buffer *> buffers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &b : buffers_)
            buffers.push_back(b.get());
    }

    struct Placed
    {
        Event event;
        std::size_t tid;
    };
    std::vector<Placed> placed;
    for (std::size_t i = 0; i < buffers.size(); ++i) {
        std::lock_guard<std::mutex> lock(buffers[i]->mutex);
        for (const Event &event : buffers[i]->events)
            placed.push_back({event, i + 1});
    }
    // Stable: per-thread order (and therefore B/E nesting) survives
    // equal timestamps.
    std::stable_sort(placed.begin(), placed.end(),
                     [](const Placed &a, const Placed &b) {
                         return a.event.tsNs < b.event.tsNs;
                     });

    json::Value events = json::Value::makeArray();
    json::Value process = json::Value::makeObject();
    process.set("ph", "M");
    process.set("pid", 1);
    process.set("tid", 0);
    process.set("name", "process_name");
    json::Value process_args = json::Value::makeObject();
    process_args.set("name", "sdnav");
    process.set("args", std::move(process_args));
    events.push(std::move(process));
    for (std::size_t i = 0; i < buffers.size(); ++i) {
        json::Value meta = json::Value::makeObject();
        meta.set("ph", "M");
        meta.set("pid", 1);
        meta.set("tid", static_cast<double>(i + 1));
        meta.set("name", "thread_name");
        json::Value args = json::Value::makeObject();
        args.set("name", "sdnav-thread-" + std::to_string(i + 1));
        meta.set("args", std::move(args));
        events.push(std::move(meta));
    }

    for (const Placed &p : placed) {
        json::Value entry = json::Value::makeObject();
        entry.set("name", p.event.name);
        switch (p.event.phase) {
        case Phase::Begin:
            entry.set("ph", "B");
            break;
        case Phase::End:
            entry.set("ph", "E");
            break;
        case Phase::Instant:
            entry.set("ph", "i");
            entry.set("s", "t"); // thread-scoped instant
            break;
        }
        entry.set("ts", static_cast<double>(p.event.tsNs) / 1000.0);
        entry.set("pid", 1);
        entry.set("tid", static_cast<double>(p.tid));
        if (p.event.hasArg) {
            json::Value args = json::Value::makeObject();
            args.set("arg", static_cast<double>(p.event.arg));
            entry.set("args", std::move(args));
        }
        events.push(std::move(entry));
    }

    json::Value root = emptyTraceRoot();
    root.set("traceEvents", std::move(events));
    return root;
}

void
Tracer::writeFile(const std::string &path) const
{
    dumpTraceFile(chromeTrace(), path);
}

TraceStats
Tracer::stats() const
{
    std::vector<Buffer *> buffers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &b : buffers_)
            buffers.push_back(b.get());
    }
    TraceStats folded;
    folded.threads = buffers.size();
    for (Buffer *b : buffers) {
        std::lock_guard<std::mutex> lock(b->mutex);
        folded.recorded += b->events.size();
        folded.dropped += b->dropped;
    }
    return folded;
}

void
Tracer::reset()
{
    disable();
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &b : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(b->mutex);
        b->events.clear();
        b->dropped = 0;
        b->dropDepth = 0;
    }
}

#else // !SDNAV_METRICS_ENABLED

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

json::Value
Tracer::chromeTrace() const
{
    return emptyTraceRoot();
}

void
Tracer::writeFile(const std::string &path) const
{
    dumpTraceFile(chromeTrace(), path);
}

#endif // SDNAV_METRICS_ENABLED

} // namespace sdnav::obs
