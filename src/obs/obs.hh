/**
 * @file
 * Lightweight runtime metrics: counters, gauges, and scoped timers.
 *
 * The parallel simulation and sweep engines are judged by measured
 * behaviour — events/sec, cache hit rates, worker imbalance — but
 * until now that evidence only existed as human-readable timing text.
 * This library gives the hot subsystems a zero-dependency place to
 * record those numbers and one `Registry::snapshot()` that serializes
 * them through common/json, so the CLI (`--metrics`), every bench
 * binary (`BENCH_<name>.json`), and the CI perf gate all read the
 * same machine-readable artifact.
 *
 * Thread-safety model: counters and timers accumulate into per-thread
 * cells (registered on a thread's first touch, folded at snapshot
 * time), so the hot path is an uncontended relaxed atomic update —
 * no locks, no shared cache line ping-pong. Gauges are a single
 * atomic with set / set-max semantics. A concurrent snapshot is safe
 * and sees some consistent partial sum; quiescent snapshots are
 * exact. Counter folds are integer sums, so any counter whose
 * per-thread increments are deterministic folds to a bit-identical
 * value for every thread count.
 *
 * Building with -DSDNAV_METRICS=OFF defines SDNAV_METRICS_ENABLED=0
 * and swaps every class for an empty-bodied no-op with the same API,
 * so instrumented code compiles away without #ifdefs at call sites.
 */

#ifndef SDNAV_OBS_OBS_HH
#define SDNAV_OBS_OBS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hh"

#ifndef SDNAV_METRICS_ENABLED
#define SDNAV_METRICS_ENABLED 1
#endif

namespace sdnav::obs
{

/** Folded view of one timer across all threads. */
struct TimerStats
{
    /** Number of recorded intervals. */
    std::uint64_t count = 0;

    /** Sum of recorded intervals (milliseconds). */
    double totalMs = 0.0;

    /** Shortest recorded interval; 0 when count == 0. */
    double minMs = 0.0;

    /** Longest recorded interval; 0 when count == 0. */
    double maxMs = 0.0;

    double
    meanMs() const
    {
        return count > 0 ? totalMs / static_cast<double>(count) : 0.0;
    }
};

/** Folded view of one histogram across all threads. */
struct HistogramStats
{
    /** Number of recorded values. */
    std::uint64_t count = 0;

    /** Sum of recorded values. */
    double total = 0.0;

    /** Largest recorded value; 0 when count == 0. */
    double max = 0.0;

    /** Quantile estimates from the log-spaced buckets. */
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;

    double
    mean() const
    {
        return count > 0 ? total / static_cast<double>(count) : 0.0;
    }
};

/**
 * One cumulative histogram bucket: the count of recorded values <=
 * upperBound. The top bucket reports upperBound = +infinity, matching
 * the Prometheus `le="+Inf"` convention.
 */
struct HistogramBucket
{
    double upperBound = 0.0;
    std::uint64_t cumulativeCount = 0;
};

#if SDNAV_METRICS_ENABLED

/**
 * A monotonic counter. add() touches only the calling thread's cell;
 * value() folds all cells (exact once writers are quiescent).
 */
class Counter
{
  public:
    Counter();
    ~Counter();
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    /** Increment this thread's cell. */
    void add(std::uint64_t n = 1);

    /** Sum over every thread's cell. */
    std::uint64_t value() const;

    /** Zero every cell (for test setup; not for concurrent use). */
    void reset();

  private:
    struct Cell;

    Cell &cell();

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Cell>> cells_;
    std::uint64_t id_;
};

/** A single value with set / set-max semantics (e.g. high-water marks). */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    /** Overwrite the value. */
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    /** Raise the value to v if v is larger (atomic max). */
    void setMax(double v);

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Reset to zero (for test setup; not for concurrent use). */
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * A wall-clock interval accumulator (count / total / min / max in
 * milliseconds), per-thread cells like Counter.
 */
class Timer
{
  public:
    Timer();
    ~Timer();
    Timer(const Timer &) = delete;
    Timer &operator=(const Timer &) = delete;

    /** Record one interval, in milliseconds. */
    void record(double ms);

    /** Fold all cells. */
    TimerStats stats() const;

    /** Zero every cell (for test setup; not for concurrent use). */
    void reset();

  private:
    struct Cell;

    Cell &cell();

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Cell>> cells_;
    std::uint64_t id_;
};

/**
 * A latency/size distribution with quantile estimates, per-thread
 * cells like Counter. Values land in geometrically spaced buckets
 * (~9% wide, covering 1e-3 .. ~1e5 with under/overflow buckets), so
 * a quantile read is exact to one bucket width — tight enough for a
 * p99 report, and recording stays an uncontended array increment.
 * The query server's `stats` command and BENCH_server.json read
 * their p99 from here.
 */
class Histogram
{
  public:
    Histogram();
    ~Histogram();
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Record one value into this thread's cell. */
    void record(double value);

    /** Fold all cells into counts, total, max, and quantiles. */
    HistogramStats stats() const;

    /**
     * One folded quantile (q in [0, 1]); the upper bound of the
     * bucket holding the q-th value. 0 when empty.
     */
    double quantile(double q) const;

    /**
     * Folded cumulative buckets for exposition: one entry per bucket
     * that received at least one value, in ascending upper-bound
     * order, each carrying the count of values <= its bound; the
     * final entry is always the +Inf bucket with the total count.
     * Empty when no values were recorded.
     */
    std::vector<HistogramBucket> cumulativeBuckets() const;

    /** Zero every cell (for test setup; not for concurrent use). */
    void reset();

  private:
    struct Cell;

    Cell &cell();

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Cell>> cells_;
    std::uint64_t id_;
};

/** RAII wall-clock scope: records into the timer on destruction. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer &timer)
        : timer_(&timer), start_(std::chrono::steady_clock::now())
    {
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        auto end = std::chrono::steady_clock::now();
        timer_->record(
            std::chrono::duration<double, std::milli>(end - start_)
                .count());
    }

  private:
    Timer *timer_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Named metric store. Metrics are created on first lookup and live
 * for the registry's lifetime, so callers may cache references:
 *
 *     static obs::Counter &hits =
 *         obs::Registry::global().counter("bdd.ite_cache_hits");
 *     hits.add();
 *
 * Names are dotted lowercase `subsystem.metric`. snapshot() emits all
 * metrics in name order, so two snapshots of equal state serialize
 * identically.
 */
class Registry
{
  public:
    /** The process-wide registry every subsystem records into. */
    static Registry &global();

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Timer &timer(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Serialize every metric:
     *
     *   {"enabled": true,
     *    "counters": {name: value, ...},
     *    "gauges":   {name: value, ...},
     *    "timers":   {name: {"count", "total_ms", "min_ms",
     *                        "mean_ms", "max_ms"}, ...},
     *    "histograms": {name: {"count", "mean", "p50", "p90",
     *                          "p99", "max"}, ...}}
     */
    json::Value snapshot() const;

    /**
     * Render every metric in Prometheus text exposition format
     * (version 0.0.4): counters as `<name>_total`, gauges plain,
     * timers as `<name>_ms_sum` / `<name>_ms_count`, histograms as
     * cumulative `<name>_bucket{le="..."}` series plus `<name>_sum`
     * and `<name>_count`. Dots in metric names become underscores.
     */
    std::string prometheusText() const;

    /** Zero every metric (keeps registrations and cached references). */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Timer>> timers_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

#else // !SDNAV_METRICS_ENABLED — same API, empty bodies.

class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void add(std::uint64_t = 1) {}
    std::uint64_t value() const { return 0; }
    void reset() {}
};

class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void set(double) {}
    void setMax(double) {}
    double value() const { return 0.0; }
    void reset() {}
};

class Timer
{
  public:
    Timer() = default;
    Timer(const Timer &) = delete;
    Timer &operator=(const Timer &) = delete;

    void record(double) {}
    TimerStats stats() const { return {}; }
    void reset() {}
};

class Histogram
{
  public:
    Histogram() = default;
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void record(double) {}
    HistogramStats stats() const { return {}; }
    double quantile(double) const { return 0.0; }
    std::vector<HistogramBucket> cumulativeBuckets() const
    {
        return {};
    }
    void reset() {}
};

class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer &) {}
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;
};

class Registry
{
  public:
    static Registry &global();

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    Counter &counter(const std::string &) { return counter_; }
    Gauge &gauge(const std::string &) { return gauge_; }
    Timer &timer(const std::string &) { return timer_; }
    Histogram &histogram(const std::string &) { return histogram_; }

    /** {"enabled": false} — consumers can tell a no-op build apart. */
    json::Value snapshot() const;

    /** A comment-only document — scrapers see a valid, empty page. */
    std::string prometheusText() const;

    void reset() {}

  private:
    Counter counter_;
    Gauge gauge_;
    Timer timer_;
    Histogram histogram_;
};

#endif // SDNAV_METRICS_ENABLED

} // namespace sdnav::obs

#endif // SDNAV_OBS_OBS_HH
