/**
 * @file
 * Prometheus text exposition (version 0.0.4) for the obs registry.
 *
 * Rendering lives apart from obs.cc because it is a cold path with a
 * wire-format contract: `sdnavd --prom-port` and the `metrics`
 * protocol command both serve exactly this text, and the CI smoke
 * test greps it. The mapping from the registry's dotted names:
 *
 *   counter  server.requests         -> server_requests_total
 *   gauge    server.queue_depth      -> server_queue_depth
 *   timer    server.eval             -> server_eval_ms_sum / _ms_count
 *   histogram server.request_latency_ms
 *        -> server_request_latency_ms_bucket{le="..."} (cumulative)
 *           + server_request_latency_ms_sum / _count
 *
 * A -DSDNAV_METRICS=OFF build serves a comment-only page, so scrapers
 * pointed at a no-op binary see valid (empty) exposition rather than
 * an error.
 */

#include "obs/obs.hh"

#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

namespace sdnav::obs
{

#if SDNAV_METRICS_ENABLED

namespace
{

/** Dotted metric name -> Prometheus-legal [a-zA-Z0-9_:] name. */
std::string
promName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char ch : name) {
        unsigned char u = static_cast<unsigned char>(ch);
        if (std::isalnum(u) || ch == '_' || ch == ':')
            out.push_back(ch);
        else
            out.push_back('_');
    }
    if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])))
        out.insert(out.begin(), '_');
    return out;
}

/** Shortest round-trip decimal; Prometheus reads +Inf specially. */
std::string
promNumber(double value)
{
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    if (std::isnan(value))
        return "NaN";
    std::ostringstream out;
    out.precision(std::numeric_limits<double>::max_digits10);
    out << value;
    return out.str();
}

} // anonymous namespace

std::string
Registry::prometheusText() const
{
    // Same locking discipline as snapshot(): copy the stable metric
    // pointers under the registry lock, fold each metric outside it.
    std::vector<std::pair<std::string, const Counter *>> counters;
    std::vector<std::pair<std::string, const Gauge *>> gauges;
    std::vector<std::pair<std::string, const Timer *>> timers;
    std::vector<std::pair<std::string, const Histogram *>> histograms;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[name, c] : counters_)
            counters.emplace_back(name, c.get());
        for (const auto &[name, g] : gauges_)
            gauges.emplace_back(name, g.get());
        for (const auto &[name, t] : timers_)
            timers.emplace_back(name, t.get());
        for (const auto &[name, h] : histograms_)
            histograms.emplace_back(name, h.get());
    }

    std::ostringstream out;
    for (const auto &[name, c] : counters) {
        std::string metric = promName(name) + "_total";
        out << "# TYPE " << metric << " counter\n";
        out << metric << ' ' << c->value() << '\n';
    }
    for (const auto &[name, g] : gauges) {
        std::string metric = promName(name);
        out << "# TYPE " << metric << " gauge\n";
        out << metric << ' ' << promNumber(g->value()) << '\n';
    }
    for (const auto &[name, t] : timers) {
        TimerStats stats = t->stats();
        std::string metric = promName(name) + "_ms";
        out << "# TYPE " << metric << " summary\n";
        out << metric << "_sum " << promNumber(stats.totalMs) << '\n';
        out << metric << "_count " << stats.count << '\n';
    }
    for (const auto &[name, h] : histograms) {
        HistogramStats stats = h->stats();
        std::string metric = promName(name);
        out << "# TYPE " << metric << " histogram\n";
        for (const HistogramBucket &bucket : h->cumulativeBuckets()) {
            out << metric << "_bucket{le=\""
                << promNumber(bucket.upperBound) << "\"} "
                << bucket.cumulativeCount << '\n';
        }
        if (stats.count == 0)
            out << metric << "_bucket{le=\"+Inf\"} 0\n";
        out << metric << "_sum " << promNumber(stats.total) << '\n';
        out << metric << "_count " << stats.count << '\n';
    }
    return out.str();
}

#else // !SDNAV_METRICS_ENABLED

std::string
Registry::prometheusText() const
{
    return "# sdnav metrics disabled (built with -DSDNAV_METRICS=OFF)\n";
}

#endif // SDNAV_METRICS_ENABLED

} // namespace sdnav::obs
