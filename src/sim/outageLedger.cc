#include "sim/outageLedger.hh"

#include <algorithm>

#include "common/error.hh"

namespace sdnav::sim
{

const char *
componentClassName(ComponentClass cls)
{
    switch (cls) {
    case ComponentClass::Rack:
        return "rack";
    case ComponentClass::Host:
        return "host";
    case ComponentClass::Vm:
        return "vm";
    case ComponentClass::Process:
        return "process";
    case ComponentClass::Supervisor:
        return "supervisor";
    case ComponentClass::Rediscovery:
        return "rediscovery";
    case ComponentClass::Other:
        return "other";
    }
    return "other";
}

namespace
{

bool
hasPrefix(const std::string &name, const char *prefix)
{
    return name.rfind(prefix, 0) == 0;
}

} // anonymous namespace

ComponentClass
componentClassFromName(const std::string &name)
{
    if (hasPrefix(name, "rack"))
        return ComponentClass::Rack;
    if (hasPrefix(name, "host"))
        return ComponentClass::Host;
    if (hasPrefix(name, "vm"))
        return ComponentClass::Vm;
    if (hasPrefix(name, "supervisor"))
        return ComponentClass::Supervisor;
    // Everything else in the exact model (and in hand-built RBD
    // systems) is a controller software process.
    return ComponentClass::Process;
}

void
ClassTotals::add(const ClassTotals &other)
{
    episodes += other.episodes;
    prolongedEpisodes += other.prolongedEpisodes;
    downtimeHours += other.downtimeHours;
    maxEpisodeHours = std::max(maxEpisodeHours, other.maxEpisodeHours);
}

std::size_t
AttributionTotals::episodes() const
{
    std::size_t sum = 0;
    for (const ClassTotals &totals : classes)
        sum += totals.episodes;
    return sum;
}

double
AttributionTotals::downtimeHours() const
{
    double sum = 0.0;
    for (const ClassTotals &totals : classes)
        sum += totals.downtimeHours;
    return sum;
}

void
AttributionTotals::add(const AttributionTotals &other)
{
    for (std::size_t i = 0; i < kComponentClassCount; ++i)
        classes[i].add(other.classes[i]);
    censoredEpisodes += other.censoredEpisodes;
    censoredHours += other.censoredHours;
    observedHours += other.observedHours;
}

OutageLedger::OutageLedger(bool initiallyUp) : up_(initiallyUp) {}

void
OutageLedger::closeEpisode(double time, bool censored)
{
    double duration = time - episode_start_;
    ClassTotals &cls =
        totals_.classes[static_cast<std::size_t>(episode_class_)];
    ++cls.episodes;
    cls.downtimeHours += duration;
    cls.maxEpisodeHours = std::max(cls.maxEpisodeHours, duration);
    for (std::size_t i = 0; i < kComponentClassCount; ++i) {
        if (prolonged_mask_ & (1u << i))
            ++totals_.classes[i].prolongedEpisodes;
    }
    if (censored) {
        ++totals_.censoredEpisodes;
        totals_.censoredHours += duration;
    }
    prolonged_mask_ = 0;
}

void
OutageLedger::observe(double time, bool up, const OutageCause &cause)
{
    require(!finished_, "OutageLedger already finished");
    require(time >= last_time_, "OutageLedger time went backwards");
    last_time_ = time;
    if (up_ == up) {
        // Redundant observation; a failure landing while an episode
        // is already open prolongs it (once per class per episode —
        // the initiating class can prolong its own episode only via
        // a *second* failure, which is what the mask records).
        if (!up && cause.failure)
            prolonged_mask_ |= static_cast<std::uint8_t>(
                1u << static_cast<std::size_t>(cause.cls));
        return;
    }
    if (!up) {
        episode_start_ = time;
        episode_class_ = cause.cls;
    } else {
        closeEpisode(time, false);
    }
    up_ = up;
}

void
OutageLedger::finish(double time)
{
    require(!finished_, "OutageLedger already finished");
    require(time >= last_time_, "OutageLedger time went backwards");
    if (!up_)
        closeEpisode(time, true);
    totals_.observedHours += time;
    finished_ = true;
}

} // namespace sdnav::sim
