/**
 * @file
 * Per-failure-mode downtime attribution for the simulators.
 *
 * The paper's claims are about *which component class* (rack, host,
 * VM, process, supervisor) contributes which minutes/year of control-
 * and data-plane downtime, but an UptimeTracker only says how long
 * the plane was down, not why. The OutageLedger closes that gap: the
 * simulators tag every state observation with the triggering
 * component (class + index) and whether it was a failure or a repair,
 * and the ledger attributes each outage episode's full duration to
 * its *initiating* cause — the event that flipped the observable
 * down. Failures of other classes that land while the episode is
 * already open are tallied as *prolonging* causes (once per class per
 * episode), and an episode still open at the horizon is folded in but
 * flagged as right-censored, mirroring UptimeTracker's censoring fix.
 *
 * Attributing whole episodes to the initiating class makes the
 * invariant exact by construction: the per-class downtime rows sum to
 * the total downtime (the acceptance bar is 1e-12). AttributionTotals
 * folds across replications with plain ordered addition, so merging
 * in replication order is bit-identical for any worker thread count,
 * like every other accounting in src/sim.
 */

#ifndef SDNAV_SIM_OUTAGE_LEDGER_HH
#define SDNAV_SIM_OUTAGE_LEDGER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sdnav::sim
{

/**
 * The component classes the paper's FMEA attributes downtime to,
 * plus Rediscovery (the controller-restart re-learning window, a
 * *phase* rather than a component — Sakic & Kellerer attribute RAFT
 * downtime per phase the same way) and Other for the initial state /
 * unclassifiable causes.
 */
enum class ComponentClass : std::uint8_t {
    Rack = 0,
    Host,
    Vm,
    Process,
    Supervisor,
    Rediscovery,
    Other,
};

inline constexpr std::size_t kComponentClassCount = 7;

/** Stable lowercase label ("rack", "host", ... ) for tables/CSV. */
const char *componentClassName(ComponentClass cls);

/**
 * Classify a component by its model name, matching the conventions
 * of model::buildExactSystem and analysis::classifyMtbfs: "rack*",
 * "host*", "vm*", "supervisor*" prefixes; anything else is a
 * controller process.
 */
ComponentClass componentClassFromName(const std::string &name);

/** The event behind a state observation. */
struct OutageCause
{
    ComponentClass cls = ComponentClass::Other;

    /** Component index within the simulator's own numbering. */
    std::size_t index = 0;

    /** True for a failure event, false for a repair/recovery. */
    bool failure = false;
};

/** Downtime attributed to one component class. */
struct ClassTotals
{
    /** Episodes initiated by this class (censored one included). */
    std::size_t episodes = 0;

    /** Episodes initiated by *another* class during which a failure
     *  of this class landed (counted once per episode). */
    std::size_t prolongedEpisodes = 0;

    /** Sum of initiated episode durations, in hours. */
    double downtimeHours = 0.0;

    /** Longest initiated episode, in hours. */
    double maxEpisodeHours = 0.0;

    void add(const ClassTotals &other);
};

/**
 * Attribution for one observable (or the ordered fold of many):
 * per-class totals plus censoring and the observation denominator.
 */
struct AttributionTotals
{
    std::array<ClassTotals, kComponentClassCount> classes{};

    /** Final episodes cut short by the horizon. */
    std::size_t censoredEpisodes = 0;

    /** Hours contributed by those censored episodes (also included
     *  in the per-class downtimeHours). */
    double censoredHours = 0.0;

    /** Observable-hours the totals were accumulated over (horizon x
     *  observables x replications after folding). */
    double observedHours = 0.0;

    const ClassTotals &
    of(ComponentClass cls) const
    {
        return classes[static_cast<std::size_t>(cls)];
    }

    /** Sum of per-class episode counts. */
    std::size_t episodes() const;

    /** Sum of per-class downtime — equals total observable downtime
     *  because every episode is attributed to exactly one class. */
    double downtimeHours() const;

    /**
     * Fold another observable/replication in. Plain ordered `+=`
     * per field: folding a fixed sequence in a fixed order is
     * bit-identical regardless of which threads produced the parts.
     */
    void add(const AttributionTotals &other);
};

/**
 * Attributes one observable's outage episodes to causes. Drive it
 * exactly like an UptimeTracker — observe() each (possibly
 * redundant) state at non-decreasing times, finish() at the horizon
 * — but with the causing event attached.
 */
class OutageLedger
{
  public:
    explicit OutageLedger(bool initiallyUp = true);

    /** Record a state observation caused by the given event. */
    void observe(double time, bool up, const OutageCause &cause);

    /** Close the trajectory; adds `time` to observedHours and
     *  flags a still-open episode as censored. */
    void finish(double time);

    /** Valid after finish(). */
    const AttributionTotals &totals() const { return totals_; }

  private:
    void closeEpisode(double time, bool censored);

    bool up_;
    bool finished_ = false;
    double last_time_ = 0.0;
    double episode_start_ = 0.0;
    ComponentClass episode_class_ = ComponentClass::Other;
    std::uint8_t prolonged_mask_ = 0;
    AttributionTotals totals_;
};

} // namespace sdnav::sim

#endif // SDNAV_SIM_OUTAGE_LEDGER_HH
