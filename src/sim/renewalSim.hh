/**
 * @file
 * Generic alternating-renewal availability simulator.
 *
 * Every component of an RBD system alternates independently between
 * up (time-to-failure distribution) and down (time-to-repair
 * distribution); the system state is the structure function of the
 * component states. This is the discrete-event counterpart of the
 * static probability models: by the renewal-reward theorem its
 * long-run availability converges to the analytic value computed
 * from the per-component means — for *any* distribution shapes.
 * The simulator therefore both validates the closed forms (the
 * paper's stated future work) and demonstrates the distribution-
 * insensitivity of the steady state.
 */

#ifndef SDNAV_SIM_RENEWAL_SIM_HH
#define SDNAV_SIM_RENEWAL_SIM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "prob/distributions.hh"
#include "rbd/system.hh"
#include "sim/outageLedger.hh"
#include "sim/stats.hh"

namespace sdnav::sim
{

/** Failure/repair behavior of one component. */
struct ComponentTimings
{
    /** Time-to-failure distribution (hours). */
    std::unique_ptr<prob::Distribution> timeToFailure;

    /** Time-to-repair distribution (hours). */
    std::unique_ptr<prob::Distribution> timeToRepair;

    /** Steady-state availability implied by the two means. */
    double impliedAvailability() const;
};

/**
 * Exponential failure/repair timings realizing a target availability
 * at a given MTBF: repair mean = mtbf (1 - a) / a.
 */
ComponentTimings exponentialTimings(double availability,
                                    double mtbfHours);

/**
 * Like exponentialTimings but with a deterministic repair time and
 * Weibull(shape) failures of the same means — used to show shape
 * insensitivity.
 */
ComponentTimings weibullTimings(double availability, double mtbfHours,
                                double shape);

/** Configuration of a renewal simulation run. */
struct RenewalSimConfig
{
    /** Total simulated time in hours. */
    double horizonHours = 2.0e6;

    /** Number of batches for the confidence interval. */
    std::size_t batches = 20;

    /** Master RNG seed. */
    std::uint64_t seed = 0x5eedULL;
};

/** Results of a renewal simulation run. */
struct RenewalSimResult
{
    /** Batch-means availability estimate with CI. */
    BatchMeansResult availability;

    /** Number of system outages observed. */
    std::size_t outageCount = 0;

    /** Mean system outage duration (hours). */
    double meanOutageHours = 0.0;

    /** Longest observed outage (hours). */
    double maxOutageHours = 0.0;

    /** Total state-transition events processed. */
    std::size_t events = 0;

    /** Peak pending-event count (deterministic per seed). */
    std::size_t queueHighWater = 0;

    /** Final episodes right-censored by the horizon (0 or 1 for a
     *  single run; summed across replications when merged). */
    std::size_t censoredOutages = 0;

    /** Hours contributed by censored episodes (lower bounds). */
    double censoredOutageHours = 0.0;

    /**
     * Downtime attributed per component class (components classified
     * by name prefix: "rack", "host", "vm", "supervisor", else
     * process). The class rows sum to the total system downtime.
     */
    AttributionTotals attribution;
};

/**
 * Simulate the RBD system with the given per-component timings.
 *
 * @param system The structure; component ids index `timings`.
 * @param timings One entry per system component.
 * @param config Run configuration.
 */
RenewalSimResult simulateRenewalSystem(
    const rbd::RbdSystem &system,
    const std::vector<ComponentTimings> &timings,
    const RenewalSimConfig &config);

/**
 * Convenience: exponential timings realizing each component's
 * availability from the system's component table at a common MTBF.
 */
std::vector<ComponentTimings> exponentialTimingsFor(
    const rbd::RbdSystem &system, double mtbfHours);

} // namespace sdnav::sim

#endif // SDNAV_SIM_RENEWAL_SIM_HH
