#include "sim/replication.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"
#include "prob/rng.hh"

namespace sdnav::sim
{

namespace
{

/**
 * Run `jobs` indexed tasks over a worker pool. Work is claimed from a
 * shared atomic counter, so any replication can run on any thread;
 * callers must make task results depend only on the index.
 */
template <typename Body>
void
runPool(std::size_t jobs, std::size_t threads, const Body &body)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    threads = std::min(threads, jobs);
    if (threads <= 1) {
        for (std::size_t i = 0; i < jobs; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;
    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= jobs)
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                return;
            }
        }
    };
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
        workers.emplace_back(worker);
    for (std::thread &w : workers)
        w.join();
    if (error)
        std::rethrow_exception(error);
}

/**
 * Run one replication body under the per-replication wall timer and
 * accumulate total busy milliseconds for the events/sec gauge.
 */
template <typename Body>
void
timedReplication(std::atomic<double> &busy_ms_total, const Body &body)
{
    auto t0 = std::chrono::steady_clock::now();
    {
        obs::ScopedTimer scope(
            obs::Registry::global().timer("sim.replication_wall"));
        body();
    }
    auto t1 = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    double cur = busy_ms_total.load(std::memory_order_relaxed);
    while (!busy_ms_total.compare_exchange_weak(
        cur, cur + ms, std::memory_order_relaxed)) {
    }
}

/** Publish pooled throughput after a replicated run. */
void
recordReplicationThroughput(std::size_t replications,
                            std::size_t events, double busy_ms)
{
    obs::Registry &registry = obs::Registry::global();
    registry.counter("sim.replications").add(replications);
    if (busy_ms > 0.0) {
        registry.gauge("sim.events_per_sec")
            .set(static_cast<double>(events) / (busy_ms / 1000.0));
    }
}

} // anonymous namespace

void
ReplicatedSimConfig::validate() const
{
    require(replications >= 1, "need at least one replication");
}

std::uint64_t
replicationSeed(std::uint64_t baseSeed, std::size_t replica)
{
    return prob::Rng(baseSeed).deriveStream(replica).seed();
}

double
PooledEstimate::halfWidth95() const
{
    if (replications < 2) {
        if (batchesPerReplication < 2)
            return 0.0;
        return tCritical95(batchesPerReplication - 1) *
               withinStandardError;
    }
    return tCritical95(replications - 1) * acrossStandardError;
}

bool
PooledEstimate::brackets(double value) const
{
    double hw = halfWidth95();
    return value >= mean - hw && value <= mean + hw;
}

PooledEstimate
poolEstimates(const std::vector<BatchMeansResult> &perReplication)
{
    require(!perReplication.empty(),
            "pooling needs at least one replication");
    PooledEstimate pooled;
    pooled.replications = perReplication.size();
    pooled.batchesPerReplication = perReplication.front().batches;

    double r = static_cast<double>(perReplication.size());
    double sum = 0.0;
    for (const BatchMeansResult &rep : perReplication)
        sum += rep.mean;
    pooled.mean = sum / r;

    // The grand mean averages R independent replication means, each
    // with its own batch-means standard error: var(grand) =
    // sum(se_i^2) / R^2.
    double within_ss = 0.0;
    for (const BatchMeansResult &rep : perReplication)
        within_ss += rep.standardError * rep.standardError;
    pooled.withinStandardError = std::sqrt(within_ss) / r;

    if (perReplication.size() >= 2) {
        double ss = 0.0;
        for (const BatchMeansResult &rep : perReplication) {
            double d = rep.mean - pooled.mean;
            ss += d * d;
        }
        double variance = ss / (r - 1.0);
        pooled.acrossStandardError = std::sqrt(variance / r);
    }
    return pooled;
}

namespace
{

/**
 * Merge outage episode statistics from per-replication (count, mean,
 * max) triples, in replication order.
 */
struct OutageMerger
{
    std::size_t count = 0;
    double total_hours = 0.0;
    double max_hours = 0.0;

    void
    add(std::size_t rep_count, double rep_mean, double rep_max)
    {
        count += rep_count;
        total_hours += rep_mean * static_cast<double>(rep_count);
        max_hours = std::max(max_hours, rep_max);
    }

    double
    meanHours() const
    {
        return count > 0 ? total_hours / static_cast<double>(count)
                         : 0.0;
    }
};

} // anonymous namespace

ReplicatedControllerResult
simulateControllerReplicated(const fmea::ControllerCatalog &catalog,
                             const topology::DeploymentTopology &topo,
                             model::SupervisorPolicy policy,
                             const ControllerSimConfig &perReplication,
                             const ReplicatedSimConfig &replication)
{
    replication.validate();

    std::vector<ControllerSimResult> results(replication.replications);
    std::atomic<double> busy_ms{0.0};
    runPool(replication.replications, replication.threads,
            [&](std::size_t replica) {
                obs::TraceSpan trace_span("sim.replication", replica);
                timedReplication(busy_ms, [&] {
                    ControllerSimConfig config = perReplication;
                    config.seed =
                        replicationSeed(replication.baseSeed, replica);
                    results[replica] = simulateController(
                        catalog, topo, policy, config);
                });
            });

    ReplicatedControllerResult merged;
    std::vector<BatchMeansResult> cp, dp;
    cp.reserve(results.size());
    dp.reserve(results.size());
    OutageMerger outages;
    double redisc_sum = 0.0;
    for (const ControllerSimResult &rep : results) {
        cp.push_back(rep.cpAvailability);
        dp.push_back(rep.dpAvailability);
        outages.add(rep.cpOutages, rep.cpMeanOutageHours,
                    rep.cpMaxOutageHours);
        redisc_sum += rep.rediscoveryDowntimeFraction;
        merged.events += rep.events;
        merged.dpMeasured = rep.dpMeasured;
        merged.cpCensoredOutages += rep.cpCensoredOutages;
        merged.cpAttribution.add(rep.cpAttribution);
        merged.dpAttribution.add(rep.dpAttribution);
    }
    merged.cpAvailability = poolEstimates(cp);
    merged.dpAvailability = poolEstimates(dp);
    merged.cpOutages = outages.count;
    merged.cpMeanOutageHours = outages.meanHours();
    merged.cpMaxOutageHours = outages.max_hours;
    merged.rediscoveryDowntimeFraction =
        redisc_sum / static_cast<double>(results.size());
    merged.perReplication = std::move(results);
    recordReplicationThroughput(replication.replications,
                                merged.events,
                                busy_ms.load(std::memory_order_relaxed));
    return merged;
}

ReplicatedRenewalResult
simulateRenewalSystemReplicated(
    const rbd::RbdSystem &system,
    const std::vector<ComponentTimings> &timings,
    const RenewalSimConfig &perReplication,
    const ReplicatedSimConfig &replication)
{
    replication.validate();

    std::vector<RenewalSimResult> results(replication.replications);
    std::atomic<double> busy_ms{0.0};
    runPool(replication.replications, replication.threads,
            [&](std::size_t replica) {
                obs::TraceSpan trace_span("sim.replication", replica);
                timedReplication(busy_ms, [&] {
                    RenewalSimConfig config = perReplication;
                    config.seed =
                        replicationSeed(replication.baseSeed, replica);
                    results[replica] =
                        simulateRenewalSystem(system, timings, config);
                });
            });

    ReplicatedRenewalResult merged;
    std::vector<BatchMeansResult> avail;
    avail.reserve(results.size());
    OutageMerger outages;
    for (const RenewalSimResult &rep : results) {
        avail.push_back(rep.availability);
        outages.add(rep.outageCount, rep.meanOutageHours,
                    rep.maxOutageHours);
        merged.events += rep.events;
        merged.censoredOutages += rep.censoredOutages;
        merged.attribution.add(rep.attribution);
    }
    merged.availability = poolEstimates(avail);
    merged.outageCount = outages.count;
    merged.meanOutageHours = outages.meanHours();
    merged.maxOutageHours = outages.max_hours;
    merged.perReplication = std::move(results);
    recordReplicationThroughput(replication.replications,
                                merged.events,
                                busy_ms.load(std::memory_order_relaxed));
    return merged;
}

} // namespace sdnav::sim
