/**
 * @file
 * Statistics collection for the availability simulators: interval
 * uptime accounting, outage episode tracking, and batch-means
 * confidence intervals for steady-state availability estimates.
 */

#ifndef SDNAV_SIM_STATS_HH
#define SDNAV_SIM_STATS_HH

#include <cstddef>
#include <vector>

namespace sdnav::sim
{

/**
 * Tracks the up/down trajectory of one observable (a plane, a host
 * DP) across simulated time and accumulates uptime and outage
 * statistics.
 */
class UptimeTracker
{
  public:
    /** Start tracking at time 0 in the given state. */
    explicit UptimeTracker(bool initiallyUp = true);

    /**
     * Record a (possibly redundant) state observation at a time.
     * Time must be non-decreasing across calls.
     */
    void observe(double time, bool up);

    /** Close the trajectory at the final time. */
    void finish(double time);

    /** Total observed time. */
    double totalTime() const { return total_time_; }

    /** Total up time. */
    double upTime() const { return up_time_; }

    /** Availability estimate upTime / totalTime. */
    double availability() const;

    /** Number of distinct outage episodes. */
    std::size_t outageCount() const { return outage_count_; }

    /** Mean outage duration (0 if no outages). */
    double meanOutageDuration() const;

    /** Longest single outage. */
    double maxOutageDuration() const { return max_outage_; }

    /**
     * True when finish() closed an outage still in progress: the
     * final episode was right-censored by the horizon, so its
     * duration (included in the totals above) is a lower bound, not
     * an observed outage length.
     */
    bool finalOutageCensored() const { return censored_; }

    /** Duration of the censored final episode (0 when none). */
    double censoredOutageDuration() const { return censored_duration_; }

    /** Outages that closed before the horizon (excludes a censored
     *  final episode). */
    std::size_t
    closedOutageCount() const
    {
        return censored_ ? outage_count_ - 1 : outage_count_;
    }

  private:
    void advanceTo(double time);

    bool up_;
    double last_time_ = 0.0;
    double up_time_ = 0.0;
    double total_time_ = 0.0;
    double outage_start_ = 0.0;
    double outage_total_ = 0.0;
    double max_outage_ = 0.0;
    double censored_duration_ = 0.0;
    std::size_t outage_count_ = 0;
    bool censored_ = false;
    bool finished_ = false;
};

/**
 * Batch-means estimator: the horizon is split into equal batches, the
 * per-batch availabilities are treated as (approximately) independent
 * samples, and a t-interval is formed.
 */
struct BatchMeansResult
{
    /** Point estimate (mean of batch availabilities). */
    double mean = 0.0;

    /** Standard error of the mean. */
    double standardError = 0.0;

    /** Number of batches. */
    std::size_t batches = 0;

    /** Half width of the 95% confidence interval. */
    double halfWidth95() const;

    /** True if value lies within mean +- halfWidth95(). */
    bool brackets(double value) const;
};

/** Compute batch means from per-batch availability samples. */
BatchMeansResult batchMeans(const std::vector<double> &samples);

/**
 * Two-sided 95% Student-t critical value for the given degrees of
 * freedom; the normal approximation beyond 30 df.
 */
double tCritical95(std::size_t degreesOfFreedom);

/**
 * Fold one finished simulation run into the global obs registry:
 * counters "sim.events" / "sim.runs" and the "sim.queue_high_water"
 * set-max gauge. Both discrete-event engines call this once per run
 * from whatever worker thread ran the replication; event counts are
 * per-seed deterministic, so the folded totals are thread-count
 * independent.
 */
void recordSimMetrics(std::size_t events, std::size_t queueHighWater);

} // namespace sdnav::sim

#endif // SDNAV_SIM_STATS_HH
