#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "obs/obs.hh"

namespace sdnav::sim
{

UptimeTracker::UptimeTracker(bool initiallyUp)
    : up_(initiallyUp)
{}

void
UptimeTracker::advanceTo(double time)
{
    require(time >= last_time_, "UptimeTracker time went backwards");
    double delta = time - last_time_;
    total_time_ += delta;
    if (up_)
        up_time_ += delta;
    last_time_ = time;
}

void
UptimeTracker::observe(double time, bool up)
{
    require(!finished_, "UptimeTracker already finished");
    advanceTo(time);
    if (up_ == up)
        return;
    if (!up) {
        outage_start_ = time;
        ++outage_count_;
    } else {
        double duration = time - outage_start_;
        outage_total_ += duration;
        max_outage_ = std::max(max_outage_, duration);
    }
    up_ = up;
}

void
UptimeTracker::finish(double time)
{
    require(!finished_, "UptimeTracker already finished");
    advanceTo(time);
    if (!up_) {
        // The horizon cut an outage short: fold the partial duration
        // into the totals (so availability stays exact) but flag it
        // as right-censored so downstream attribution can report it
        // as a lower bound instead of a closed episode.
        double duration = time - outage_start_;
        outage_total_ += duration;
        max_outage_ = std::max(max_outage_, duration);
        censored_ = true;
        censored_duration_ = duration;
    }
    finished_ = true;
}

double
UptimeTracker::availability() const
{
    return total_time_ > 0.0 ? up_time_ / total_time_ : 1.0;
}

double
UptimeTracker::meanOutageDuration() const
{
    return outage_count_ > 0
        ? outage_total_ / static_cast<double>(outage_count_) : 0.0;
}

double
tCritical95(std::size_t degreesOfFreedom)
{
    // Two-sided t critical values for 95%, by degrees of freedom;
    // beyond 30 the normal approximation is used.
    static const double t_table[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
    require(degreesOfFreedom >= 1, "t critical value needs df >= 1");
    return degreesOfFreedom <= 30 ? t_table[degreesOfFreedom - 1]
                                  : 1.96;
}

double
BatchMeansResult::halfWidth95() const
{
    if (batches < 2)
        return 0.0;
    return tCritical95(batches - 1) * standardError;
}

bool
BatchMeansResult::brackets(double value) const
{
    double hw = halfWidth95();
    return value >= mean - hw && value <= mean + hw;
}

BatchMeansResult
batchMeans(const std::vector<double> &samples)
{
    require(samples.size() >= 2, "batch means needs >= 2 batches");
    BatchMeansResult result;
    result.batches = samples.size();
    double sum = 0.0;
    for (double s : samples)
        sum += s;
    result.mean = sum / static_cast<double>(samples.size());
    double ss = 0.0;
    for (double s : samples) {
        double d = s - result.mean;
        ss += d * d;
    }
    double variance = ss / static_cast<double>(samples.size() - 1);
    result.standardError =
        std::sqrt(variance / static_cast<double>(samples.size()));
    return result;
}

void
recordSimMetrics(std::size_t events, std::size_t queueHighWater)
{
    static obs::Counter &event_counter =
        obs::Registry::global().counter("sim.events");
    static obs::Counter &run_counter =
        obs::Registry::global().counter("sim.runs");
    static obs::Gauge &queue_gauge =
        obs::Registry::global().gauge("sim.queue_high_water");
    event_counter.add(events);
    run_counter.add();
    queue_gauge.setMax(static_cast<double>(queueHighWater));
}

} // namespace sdnav::sim
