#include "sim/controllerSim.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <queue>

#include "common/error.hh"
#include "common/units.hh"
#include "obs/trace.hh"
#include "prob/rng.hh"

namespace sdnav::sim
{

using fmea::Plane;
using fmea::QuorumBlock;
using fmea::RestartMode;
using model::SupervisorPolicy;

namespace
{

constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

/** Event kinds processed by the simulation loop. */
enum class EventKind
{
    InfraFlip,  ///< Rack/host/VM toggles between up and down.
    ProcFail,   ///< A controller or vRouter process fails.
    ProcRepair, ///< A process restart completes.
    SupFail,    ///< A supervisor fails.
    SupRepair,  ///< A supervisor restart (or maintenance) completes.
    Rediscover, ///< A vRouter agent retries control-node discovery.
};

struct Event
{
    double time;
    std::uint64_t seq;
    EventKind kind;
    std::size_t index;

    bool
    operator>(const Event &other) const
    {
        if (time != other.time)
            return time > other.time;
        return seq > other.seq;
    }
};

} // anonymous namespace

model::SwParams
staticParamsFor(const ControllerSimConfig &config)
{
    model::SwParams params;
    params.processAvailability = config.process.supervisedAvailability();
    params.manualProcessAvailability =
        config.process.unsupervisedAvailability();
    params.vmAvailability = config.vmAvailability;
    params.hostAvailability = config.hostAvailability;
    params.rackAvailability = config.rackAvailability;
    return params;
}

/**
 * The simulation engine. A single class keeps the (considerable)
 * shared state manageable; the public entry point constructs it, runs
 * the event loop, and extracts results.
 */
class ControllerSimulation
{
  public:
    ControllerSimulation(const fmea::ControllerCatalog &catalog,
                         const topology::DeploymentTopology &topo,
                         SupervisorPolicy policy,
                         const ControllerSimConfig &config)
        : catalog_(catalog), topo_(topo), policy_(policy),
          config_(config), rng_(config.seed)
    {
        catalog.validate();
        topo.validate();
        config.process.validate();
        require(catalog.roles().size() == topo.roleCount(),
                "catalog role count does not match topology");
        require(config.horizonHours > 0.0, "horizon must be positive");
        require(config.batches >= 2, "need at least two batches");
        build();
    }

    ControllerSimResult run();

  private:
    // --- static structure -------------------------------------------
    struct BlockRef
    {
        std::size_t role;
        unsigned required;
        std::vector<std::size_t> members; // process index within role
    };

    void build();
    void scheduleInfra(std::size_t index, double now);
    void scheduleProcFailure(std::size_t pid, double now);
    void scheduleSupFailure(std::size_t sid, double now);
    void push(double time, EventKind kind, std::size_t index);

    bool infraChainUp(std::size_t role, std::size_t node) const;
    bool nodeRoleUsable(std::size_t role, std::size_t node) const;
    bool blockInstanceUp(const BlockRef &block, std::size_t node) const;
    bool blockSatisfied(const BlockRef &block) const;
    bool controlBlockServing(std::size_t node) const;
    bool localHostUp(std::size_t host) const;

    void handle(const Event &event);
    OutageCause causeOf(const Event &event) const;
    void evaluate(double time, const OutageCause &cause);
    void accumulate(double time);
    void recordBatches(double time);
    void attemptRediscovery(std::size_t host, double time);

    double repairTime(RestartMode mode, bool supervisor_up);

    // --- inputs ------------------------------------------------------
    const fmea::ControllerCatalog &catalog_;
    const topology::DeploymentTopology &topo_;
    SupervisorPolicy policy_;
    ControllerSimConfig config_;
    prob::Rng rng_;

    // --- component state ---------------------------------------------
    // Infra components: racks, then hosts, then VMs, flat.
    std::vector<bool> infra_up_;
    std::vector<double> infra_mtbf_;
    std::vector<double> infra_mttr_;
    std::size_t host_base_ = 0;
    std::size_t vm_base_ = 0;

    // Controller processes, flattened (role, node, proc).
    std::vector<bool> proc_up_;
    std::vector<RestartMode> proc_mode_;
    std::vector<std::size_t> proc_sup_; // supervisor id
    std::vector<std::size_t> role_offset_;
    std::size_t n_ = 0;          // cluster size
    std::size_t role_count_ = 0;

    // Supervisors: controller (role, node) then one per vRouter host.
    std::vector<bool> sup_up_;

    // vRouter host processes, flattened (host, proc).
    std::size_t vr_proc_base_ = 0;   // offset into proc arrays
    std::size_t vr_procs_per_host_ = 0;
    std::size_t vr_sup_base_ = 0;

    // Quorum blocks.
    std::vector<BlockRef> cp_blocks_;
    std::vector<BlockRef> dp_blocks_;        // excluding control block
    std::size_t control_role_ = npos;        // role of control block
    BlockRef control_block_;                 // DP connectivity block
    bool has_control_block_ = false;

    // Connection state per monitored host.
    std::vector<std::array<std::size_t, 2>> slots_;
    std::vector<bool> rediscover_pending_;
    std::vector<bool> serving_; // per controller node

    // --- event queue ---------------------------------------------------
    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    std::uint64_t seq_ = 0;

    // --- accounting ---------------------------------------------------
    double last_time_ = 0.0;
    bool cp_up_ = true;
    double dp_fraction_ = 1.0;
    double redisc_fraction_ = 0.0;
    double cp_uptime_ = 0.0;
    double dp_hosthours_up_ = 0.0;
    double redisc_hosthours_ = 0.0;
    UptimeTracker cp_tracker_{true};
    OutageLedger cp_ledger_{true};
    std::vector<OutageLedger> dp_ledgers_;  // one per monitored host
    std::vector<bool> host_dp_up_;
    std::vector<double> cp_batches_;
    std::vector<double> dp_batches_;
    double batch_cp_mark_ = 0.0;
    double batch_dp_mark_ = 0.0;
    std::size_t next_batch_ = 1;
    std::size_t events_ = 0;
    std::size_t queue_hwm_ = 0;
};

void
ControllerSimulation::push(double time, EventKind kind, std::size_t index)
{
    require(time >= last_time_, "event scheduled in the past");
    queue_.push({time, seq_++, kind, index});
    queue_hwm_ = std::max(queue_hwm_, queue_.size());
}

void
ControllerSimulation::build()
{
    n_ = topo_.clusterSize();
    role_count_ = topo_.roleCount();

    // Infra: racks, hosts, VMs.
    std::size_t racks = topo_.rackCount();
    std::size_t hosts = topo_.hostCount();
    std::size_t vms = topo_.vmCount();
    host_base_ = racks;
    vm_base_ = racks + hosts;
    infra_up_.assign(racks + hosts + vms, true);
    infra_mtbf_.resize(infra_up_.size());
    infra_mttr_.resize(infra_up_.size());
    for (std::size_t r = 0; r < racks; ++r) {
        infra_mtbf_[r] = config_.rackMtbfHours;
        infra_mttr_[r] = mttrFromAvailability(config_.rackAvailability,
                                              config_.rackMtbfHours);
    }
    for (std::size_t h = 0; h < hosts; ++h) {
        infra_mtbf_[host_base_ + h] = config_.hostMtbfHours;
        infra_mttr_[host_base_ + h] = mttrFromAvailability(
            config_.hostAvailability, config_.hostMtbfHours);
    }
    for (std::size_t v = 0; v < vms; ++v) {
        infra_mtbf_[vm_base_ + v] = config_.vmMtbfHours;
        infra_mttr_[vm_base_ + v] = mttrFromAvailability(
            config_.vmAvailability, config_.vmMtbfHours);
    }

    // Controller processes and supervisors.
    role_offset_.resize(role_count_ + 1, 0);
    for (std::size_t role = 0; role < role_count_; ++role) {
        role_offset_[role + 1] = role_offset_[role] +
            catalog_.role(role).processes.size() * n_;
    }
    std::size_t controller_procs = role_offset_[role_count_];
    std::size_t controller_sups = role_count_ * n_;

    vr_procs_per_host_ = catalog_.hostProcesses().size();
    vr_proc_base_ = controller_procs;
    std::size_t total_procs = controller_procs +
        vr_procs_per_host_ * config_.monitoredHosts;
    vr_sup_base_ = controller_sups;
    std::size_t total_sups =
        controller_sups + config_.monitoredHosts;

    proc_up_.assign(total_procs, true);
    proc_mode_.resize(total_procs);
    proc_sup_.resize(total_procs);
    sup_up_.assign(total_sups, true);

    for (std::size_t role = 0; role < role_count_; ++role) {
        const auto &procs = catalog_.role(role).processes;
        for (std::size_t node = 0; node < n_; ++node) {
            for (std::size_t p = 0; p < procs.size(); ++p) {
                std::size_t pid = role_offset_[role] +
                    node * procs.size() + p;
                proc_mode_[pid] = procs[p].restart;
                proc_sup_[pid] = role * n_ + node;
            }
        }
    }
    for (std::size_t host = 0; host < config_.monitoredHosts; ++host) {
        for (std::size_t p = 0; p < vr_procs_per_host_; ++p) {
            std::size_t pid = vr_proc_base_ +
                host * vr_procs_per_host_ + p;
            proc_mode_[pid] = catalog_.hostProcesses()[p].restart;
            proc_sup_[pid] = vr_sup_base_ + host;
        }
    }

    // Quorum blocks.
    for (std::size_t role = 0; role < role_count_; ++role) {
        for (const QuorumBlock &block :
             catalog_.planeBlocks(role, Plane::ControlPlane)) {
            cp_blocks_.push_back(
                {role,
                 fmea::requiredCount(block.quorum,
                                     static_cast<unsigned>(n_)),
                 block.memberProcesses});
        }
        for (const QuorumBlock &block :
             catalog_.planeBlocks(role, Plane::DataPlane)) {
            BlockRef ref{role,
                         fmea::requiredCount(
                             block.quorum, static_cast<unsigned>(n_)),
                         block.memberProcesses};
            // The multi-member any-one DP block is the control block
            // whose connectivity the rediscovery model tracks.
            if (config_.modelRediscovery &&
                block.memberProcesses.size() > 1 &&
                block.quorum == fmea::QuorumClass::AnyOne &&
                !has_control_block_) {
                control_block_ = ref;
                control_role_ = role;
                has_control_block_ = true;
            } else {
                dp_blocks_.push_back(std::move(ref));
            }
        }
    }

    // Connection slots: host i starts on nodes i % n and (i+1) % n.
    serving_.assign(n_, true);
    slots_.resize(config_.monitoredHosts);
    rediscover_pending_.assign(config_.monitoredHosts, false);
    for (std::size_t host = 0; host < config_.monitoredHosts; ++host) {
        slots_[host][0] = host % n_;
        slots_[host][1] = n_ > 1 ? (host + 1) % n_ : npos;
    }

    // Per-host DP attribution: everything starts up.
    dp_ledgers_.resize(config_.monitoredHosts);
    host_dp_up_.assign(config_.monitoredHosts, true);

    // Initial failure events.
    for (std::size_t i = 0; i < infra_up_.size(); ++i)
        scheduleInfra(i, 0.0);
    for (std::size_t pid = 0; pid < proc_up_.size(); ++pid)
        scheduleProcFailure(pid, 0.0);
    for (std::size_t sid = 0; sid < sup_up_.size(); ++sid)
        scheduleSupFailure(sid, 0.0);
}

// The next-transition anchor is the handled event's time, passed
// explicitly: `last_time_` is an accounting cursor that only advances
// on positive deltas, so with coincident events (maintenance
// boundaries, deterministic repairs) it is not a safe anchor.

void
ControllerSimulation::scheduleInfra(std::size_t index, double now)
{
    double hold = infra_up_[index]
        ? rng_.exponential(infra_mtbf_[index])
        : rng_.exponential(infra_mttr_[index]);
    push(now + hold, EventKind::InfraFlip, index);
}

void
ControllerSimulation::scheduleProcFailure(std::size_t pid, double now)
{
    push(now + rng_.exponential(config_.process.mtbfHours),
         EventKind::ProcFail, pid);
}

void
ControllerSimulation::scheduleSupFailure(std::size_t sid, double now)
{
    push(now + rng_.exponential(config_.supervisorMtbfHours),
         EventKind::SupFail, sid);
}

double
ControllerSimulation::repairTime(RestartMode mode, bool supervisor_up)
{
    bool manual = mode == RestartMode::Manual || !supervisor_up;
    return rng_.exponential(manual ? config_.process.manualRestartHours
                                   : config_.process.autoRestartHours);
}

bool
ControllerSimulation::infraChainUp(std::size_t role,
                                   std::size_t node) const
{
    std::size_t vm = topo_.vmOf(role, node);
    std::size_t host = topo_.hostOfVm(vm);
    std::size_t rack = topo_.rackOfHost(host);
    return infra_up_[vm_base_ + vm] && infra_up_[host_base_ + host] &&
           infra_up_[rack];
}

bool
ControllerSimulation::nodeRoleUsable(std::size_t role,
                                     std::size_t node) const
{
    if (!infraChainUp(role, node))
        return false;
    if (policy_ == SupervisorPolicy::Required &&
        !sup_up_[role * n_ + node]) {
        return false;
    }
    return true;
}

bool
ControllerSimulation::blockInstanceUp(const BlockRef &block,
                                      std::size_t node) const
{
    if (!nodeRoleUsable(block.role, node))
        return false;
    std::size_t procs_per_node =
        catalog_.role(block.role).processes.size();
    for (std::size_t p : block.members) {
        std::size_t pid = role_offset_[block.role] +
            node * procs_per_node + p;
        if (!proc_up_[pid])
            return false;
    }
    return true;
}

bool
ControllerSimulation::blockSatisfied(const BlockRef &block) const
{
    unsigned up = 0;
    for (std::size_t node = 0; node < n_; ++node) {
        if (blockInstanceUp(block, node)) {
            if (++up >= block.required)
                return true;
        }
    }
    return block.required == 0;
}

bool
ControllerSimulation::controlBlockServing(std::size_t node) const
{
    return blockInstanceUp(control_block_, node);
}

bool
ControllerSimulation::localHostUp(std::size_t host) const
{
    if (policy_ == SupervisorPolicy::Required &&
        !sup_up_[vr_sup_base_ + host]) {
        return false;
    }
    const auto &host_procs = catalog_.hostProcesses();
    for (std::size_t p = 0; p < vr_procs_per_host_; ++p) {
        if (!host_procs[p].requiredForDp)
            continue;
        if (!proc_up_[vr_proc_base_ + host * vr_procs_per_host_ + p])
            return false;
    }
    return true;
}

void
ControllerSimulation::accumulate(double time)
{
    double delta = time - last_time_;
    if (delta > 0.0) {
        if (cp_up_)
            cp_uptime_ += delta;
        dp_hosthours_up_ += dp_fraction_ * delta;
        redisc_hosthours_ += redisc_fraction_ * delta;
        last_time_ = time;
    }
}

void
ControllerSimulation::recordBatches(double time)
{
    double batch_length = config_.horizonHours /
        static_cast<double>(config_.batches);
    while (next_batch_ <= config_.batches &&
           static_cast<double>(next_batch_) * batch_length <= time) {
        double boundary = static_cast<double>(next_batch_) * batch_length;
        accumulate(boundary);
        cp_batches_.push_back((cp_uptime_ - batch_cp_mark_) /
                              batch_length);
        dp_batches_.push_back((dp_hosthours_up_ - batch_dp_mark_) /
                              batch_length);
        batch_cp_mark_ = cp_uptime_;
        batch_dp_mark_ = dp_hosthours_up_;
        ++next_batch_;
    }
}

/**
 * The attribution cause of a just-handled event. Called after
 * handle(), so component state reflects the event: an InfraFlip is a
 * failure exactly when the component is now down.
 */
OutageCause
ControllerSimulation::causeOf(const Event &event) const
{
    switch (event.kind) {
      case EventKind::InfraFlip: {
        ComponentClass cls = event.index < host_base_
            ? ComponentClass::Rack
            : event.index < vm_base_ ? ComponentClass::Host
                                     : ComponentClass::Vm;
        return {cls, event.index, !infra_up_[event.index]};
      }
      case EventKind::ProcFail:
        return {ComponentClass::Process, event.index, true};
      case EventKind::ProcRepair:
        return {ComponentClass::Process, event.index, false};
      case EventKind::SupFail:
        return {ComponentClass::Supervisor, event.index, true};
      case EventKind::SupRepair:
        return {ComponentClass::Supervisor, event.index, false};
      case EventKind::Rediscover:
        return {ComponentClass::Rediscovery, event.index, false};
    }
    return {};
}

void
ControllerSimulation::evaluate(double time, const OutageCause &cause)
{
    // Control plane.
    bool cp = true;
    for (const BlockRef &block : cp_blocks_) {
        if (!blockSatisfied(block)) {
            cp = false;
            break;
        }
    }

    // Shared DP without the connectivity block.
    bool shared_dp = true;
    for (const BlockRef &block : dp_blocks_) {
        if (!blockSatisfied(block)) {
            shared_dp = false;
            break;
        }
    }

    // Serving set and rediscovery triggers.
    bool any_serving = true;
    if (has_control_block_) {
        any_serving = false;
        for (std::size_t node = 0; node < n_; ++node) {
            bool serving = controlBlockServing(node);
            if (serving)
                any_serving = true;
            if (serving_[node] && !serving) {
                // Connections to this node just dropped.
                for (std::size_t host = 0;
                     host < config_.monitoredHosts; ++host) {
                    if ((slots_[host][0] == node ||
                         slots_[host][1] == node) &&
                        !rediscover_pending_[host]) {
                        rediscover_pending_[host] = true;
                        push(time + config_.rediscoveryDelayHours,
                             EventKind::Rediscover, host);
                    }
                }
            }
            serving_[node] = serving;
        }
    }

    // Per-host DP.
    std::size_t hosts_up = 0;
    std::size_t hosts_redisc = 0;
    for (std::size_t host = 0; host < config_.monitoredHosts; ++host) {
        bool connected = true;
        if (has_control_block_) {
            connected = false;
            for (std::size_t slot_node : slots_[host]) {
                if (slot_node != npos && serving_[slot_node]) {
                    connected = true;
                    break;
                }
            }
        }
        bool rest = shared_dp && localHostUp(host);
        bool redisc_only = rest && !connected && any_serving;
        if (rest && connected) {
            ++hosts_up;
        } else if (redisc_only) {
            // Down purely because rediscovery has not completed.
            ++hosts_redisc;
        }

        // Attribution: a host episode opening as a pure re-learning
        // window belongs to the Rediscovery phase; otherwise to the
        // class of the event that flipped the host. The ledger call
        // is skipped on the common nothing-changed-and-up path.
        bool host_up = rest && connected;
        if (host_up != host_dp_up_[host]) {
            dp_ledgers_[host].observe(
                time, host_up,
                redisc_only
                    ? OutageCause{ComponentClass::Rediscovery, host,
                                  true}
                    : cause);
            host_dp_up_[host] = host_up;
        } else if (!host_up && cause.failure) {
            dp_ledgers_[host].observe(time, host_up, cause);
        }
    }

    cp_tracker_.observe(time, cp);
    cp_ledger_.observe(time, cp, cause);
    cp_up_ = cp;
    if (config_.monitoredHosts > 0) {
        dp_fraction_ = static_cast<double>(hosts_up) /
            static_cast<double>(config_.monitoredHosts);
        redisc_fraction_ = static_cast<double>(hosts_redisc) /
            static_cast<double>(config_.monitoredHosts);
    } else {
        // No monitored hosts: there is no DP to measure. Accumulate
        // zero host-hours rather than the initial 1.0, which would
        // report perfect DP availability for an unmeasured plane;
        // the result carries dpMeasured = false.
        dp_fraction_ = 0.0;
        redisc_fraction_ = 0.0;
    }
}

void
ControllerSimulation::attemptRediscovery(std::size_t host, double time)
{
    rediscover_pending_[host] = false;
    auto &slots = slots_[host];
    // Refill every slot that is not currently serving.
    for (std::size_t s = 0; s < 2; ++s) {
        if (slots[s] != npos && serving_[slots[s]])
            continue;
        std::size_t other = slots[1 - s];
        std::size_t choice = npos;
        // Deterministic scan with a random start to spread load.
        std::size_t start = n_ > 0 ? rng_.uniformInt(n_) : 0;
        for (std::size_t k = 0; k < n_; ++k) {
            std::size_t node = (start + k) % n_;
            if (node != other && serving_[node]) {
                choice = node;
                break;
            }
        }
        if (choice != npos) {
            slots[s] = choice;
        } else if (!rediscover_pending_[host]) {
            rediscover_pending_[host] = true;
            push(time + config_.rediscoveryDelayHours,
                 EventKind::Rediscover, host);
        }
    }
}

void
ControllerSimulation::handle(const Event &event)
{
    switch (event.kind) {
      case EventKind::InfraFlip:
        infra_up_[event.index] = !infra_up_[event.index];
        scheduleInfra(event.index, event.time);
        break;
      case EventKind::ProcFail:
        if (proc_up_[event.index]) {
            proc_up_[event.index] = false;
            double repair = repairTime(proc_mode_[event.index],
                                       sup_up_[proc_sup_[event.index]]);
            push(event.time + repair, EventKind::ProcRepair,
                 event.index);
        }
        break;
      case EventKind::ProcRepair:
        proc_up_[event.index] = true;
        scheduleProcFailure(event.index, event.time);
        break;
      case EventKind::SupFail:
        if (sup_up_[event.index]) {
            sup_up_[event.index] = false;
            double restore;
            if (policy_ == SupervisorPolicy::NotRequired) {
                // Hitless restore at the next maintenance boundary.
                double interval = config_.maintenanceIntervalHours;
                double next_window =
                    (std::floor(event.time / interval) + 1.0) * interval;
                restore = next_window - event.time;
            } else {
                restore = rng_.exponential(
                    config_.process.manualRestartHours);
            }
            push(event.time + restore, EventKind::SupRepair,
                 event.index);
        }
        break;
      case EventKind::SupRepair:
        sup_up_[event.index] = true;
        scheduleSupFailure(event.index, event.time);
        break;
      case EventKind::Rediscover:
        attemptRediscovery(event.index, event.time);
        break;
    }
}

ControllerSimResult
ControllerSimulation::run()
{
    obs::TraceSpan trace_span("sim.controller_run", config_.seed);
    evaluate(0.0, {});
    while (!queue_.empty()) {
        Event event = queue_.top();
        if (event.time >= config_.horizonHours)
            break;
        queue_.pop();
        ++events_;
        recordBatches(event.time);
        accumulate(event.time);
        handle(event);
        // The tracker and ledgers are fed inside evaluate() at the
        // event's own time, so outage boundaries land on the actual
        // state flip, consistent with the uptime integration.
        evaluate(event.time, causeOf(event));
    }
    recordBatches(config_.horizonHours);
    accumulate(config_.horizonHours);
    cp_tracker_.finish(config_.horizonHours);
    cp_ledger_.finish(config_.horizonHours);

    ControllerSimResult result;
    result.cpAvailability = batchMeans(cp_batches_);
    result.dpAvailability = batchMeans(dp_batches_);
    result.dpMeasured = config_.monitoredHosts > 0;
    result.cpOutages = cp_tracker_.outageCount();
    result.cpMeanOutageHours = cp_tracker_.meanOutageDuration();
    result.cpMaxOutageHours = cp_tracker_.maxOutageDuration();
    result.cpCensoredOutages =
        cp_tracker_.finalOutageCensored() ? 1 : 0;
    result.cpCensoredOutageHours = cp_tracker_.censoredOutageDuration();
    result.cpAttribution = cp_ledger_.totals();
    for (OutageLedger &ledger : dp_ledgers_) {
        ledger.finish(config_.horizonHours);
        result.dpAttribution.add(ledger.totals());
    }
    result.rediscoveryDowntimeFraction =
        config_.horizonHours > 0.0
            ? redisc_hosthours_ / config_.horizonHours
            : 0.0;
    result.events = events_;
    result.queueHighWater = queue_hwm_;
    recordSimMetrics(events_, queue_hwm_);
    return result;
}

ControllerSimResult
simulateController(const fmea::ControllerCatalog &catalog,
                   const topology::DeploymentTopology &topo,
                   SupervisorPolicy policy,
                   const ControllerSimConfig &config)
{
    ControllerSimulation sim(catalog, topo, policy, config);
    return sim.run();
}

} // namespace sdnav::sim
