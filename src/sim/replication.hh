/**
 * @file
 * Parallel multi-replication layer over the discrete-event
 * simulators.
 *
 * A single long run gives confidence intervals only through batch
 * means, whose batches are serially correlated; the standard remedy
 * (Sakic & Kellerer's RAFT study, Nencioni et al.'s Möbius model) is
 * many independent replications. This layer runs R replications of
 * `simulateController` / `simulateRenewalSystem` across a thread
 * pool and pools their estimates.
 *
 * Reproducibility contract: replication r is seeded with
 * `prob::Rng(baseSeed).deriveStream(r)`, which depends only on
 * (baseSeed, r) — never on scheduling — and results are merged in
 * replication order. A run with `threads = N` is therefore
 * bit-identical to `threads = 1` for the same base seed.
 */

#ifndef SDNAV_SIM_REPLICATION_HH
#define SDNAV_SIM_REPLICATION_HH

#include <cstdint>
#include <vector>

#include "sim/controllerSim.hh"
#include "sim/renewalSim.hh"
#include "sim/stats.hh"

namespace sdnav::sim
{

/**
 * How to replicate a simulation: R independent replications of one
 * per-replication configuration, spread over a thread pool. The
 * per-replication config (horizon, rates, batches) travels alongside
 * as the engine-specific `ControllerSimConfig` / `RenewalSimConfig`;
 * its `seed` field is ignored and replaced by the derived stream.
 */
struct ReplicatedSimConfig
{
    /** Number of independent replications, >= 1. */
    std::size_t replications = 8;

    /** Worker threads; 0 means one per hardware thread. */
    std::size_t threads = 0;

    /** Master seed from which every replication stream derives. */
    std::uint64_t baseSeed = 0xc0ffeeULL;

    /** Throw ModelError if out of range. */
    void validate() const;
};

/**
 * The seed replication `replica` runs with: the construction seed of
 * `prob::Rng(baseSeed).deriveStream(replica)`.
 */
std::uint64_t replicationSeed(std::uint64_t baseSeed,
                              std::size_t replica);

/**
 * Availability estimate pooled over replications, separating the two
 * variance sources: the spread of the R replication means (the
 * statistically honest CI basis — replications are fully independent)
 * and the within-replication batch-means error (reported so a
 * suspiciously large ratio across/within can flag unconverged runs).
 */
struct PooledEstimate
{
    /** Grand mean over replication means (equal horizons). */
    double mean = 0.0;

    /**
     * Standard error of the grand mean from the across-replication
     * sample variance; 0 when only one replication ran.
     */
    double acrossStandardError = 0.0;

    /**
     * Standard error of the grand mean propagated from the
     * per-replication batch-means standard errors.
     */
    double withinStandardError = 0.0;

    /** Number of replications pooled. */
    std::size_t replications = 0;

    /** Batches per replication. */
    std::size_t batchesPerReplication = 0;

    /**
     * Half width of the 95% CI. Uses the across-replication t
     * interval (R - 1 df); with a single replication it falls back to
     * the within-replication batch-means interval.
     */
    double halfWidth95() const;

    /** True if value lies within mean +- halfWidth95(). */
    bool brackets(double value) const;
};

/** Pool per-replication batch-means estimates (replication order). */
PooledEstimate poolEstimates(
    const std::vector<BatchMeansResult> &perReplication);

/** Replicated behavioral controller simulation results. */
struct ReplicatedControllerResult
{
    /** Pooled control-plane availability. */
    PooledEstimate cpAvailability;

    /** Pooled mean per-host data-plane availability. */
    PooledEstimate dpAvailability;

    /** False when no monitored hosts existed to measure DP on. */
    bool dpMeasured = true;

    /** CP outages summed over replications. */
    std::size_t cpOutages = 0;

    /** Mean CP outage duration over all episodes of all replications. */
    double cpMeanOutageHours = 0.0;

    /** Longest CP outage across replications. */
    double cpMaxOutageHours = 0.0;

    /** Mean rediscovery downtime fraction across replications. */
    double rediscoveryDowntimeFraction = 0.0;

    /** CP episodes right-censored by the horizon, summed. */
    std::size_t cpCensoredOutages = 0;

    /** Events summed over replications. */
    std::size_t events = 0;

    /** CP downtime attribution folded in replication order —
     *  bit-identical for any thread count. */
    AttributionTotals cpAttribution;

    /** Per-host DP attribution folded in replication order. */
    AttributionTotals dpAttribution;

    /** Per-replication results, in replication order. */
    std::vector<ControllerSimResult> perReplication;
};

/** Replicated renewal simulation results. */
struct ReplicatedRenewalResult
{
    /** Pooled system availability. */
    PooledEstimate availability;

    /** Outages summed over replications. */
    std::size_t outageCount = 0;

    /** Mean outage duration over all episodes of all replications. */
    double meanOutageHours = 0.0;

    /** Longest outage across replications. */
    double maxOutageHours = 0.0;

    /** Final episodes right-censored by the horizon, summed. */
    std::size_t censoredOutages = 0;

    /** Events summed over replications. */
    std::size_t events = 0;

    /** Downtime attribution folded in replication order —
     *  bit-identical for any thread count. */
    AttributionTotals attribution;

    /** Per-replication results, in replication order. */
    std::vector<RenewalSimResult> perReplication;
};

/**
 * Run R independent replications of the behavioral controller
 * simulation and pool the estimates.
 *
 * @param perReplication Configuration of each replication; its seed
 *                       is overridden per replication.
 */
ReplicatedControllerResult simulateControllerReplicated(
    const fmea::ControllerCatalog &catalog,
    const topology::DeploymentTopology &topo,
    model::SupervisorPolicy policy,
    const ControllerSimConfig &perReplication,
    const ReplicatedSimConfig &replication);

/**
 * Run R independent replications of the renewal simulation and pool
 * the estimates. The timings are shared read-only across threads
 * (distributions are stateless).
 */
ReplicatedRenewalResult simulateRenewalSystemReplicated(
    const rbd::RbdSystem &system,
    const std::vector<ComponentTimings> &timings,
    const RenewalSimConfig &perReplication,
    const ReplicatedSimConfig &replication);

} // namespace sdnav::sim

#endif // SDNAV_SIM_REPLICATION_HH
