#include "sim/renewalSim.hh"

#include <algorithm>
#include <queue>

#include "common/error.hh"
#include "common/units.hh"
#include "obs/trace.hh"

namespace sdnav::sim
{

namespace
{

/**
 * Availability 1.0 implies a zero repair mean, which no positive
 * repair distribution can represent. Model the component as an
 * (effectively) never-failing one instead — the event loop needs no
 * special case and every timing factory degenerates identically.
 *
 * @return true if the timings were replaced with the degenerate pair.
 */
bool
makeNeverFailingIfPerfect(ComponentTimings &t, double mttr)
{
    if (mttr > 0.0)
        return false;
    t.timeToFailure =
        std::make_unique<prob::ExponentialDistribution>(1e18);
    t.timeToRepair =
        std::make_unique<prob::DeterministicDistribution>(1.0);
    return true;
}

} // anonymous namespace

double
ComponentTimings::impliedAvailability() const
{
    double f = timeToFailure->mean();
    double r = timeToRepair->mean();
    return f / (f + r);
}

ComponentTimings
exponentialTimings(double availability, double mtbfHours)
{
    requireProbability(availability, "availability");
    requirePositive(availability, "availability");
    requirePositive(mtbfHours, "mtbfHours");
    ComponentTimings t;
    double mttr = mttrFromAvailability(availability, mtbfHours);
    if (makeNeverFailingIfPerfect(t, mttr))
        return t;
    t.timeToFailure =
        std::make_unique<prob::ExponentialDistribution>(mtbfHours);
    t.timeToRepair =
        std::make_unique<prob::ExponentialDistribution>(mttr);
    return t;
}

ComponentTimings
weibullTimings(double availability, double mtbfHours, double shape)
{
    requireProbability(availability, "availability");
    requirePositive(availability, "availability");
    requirePositive(mtbfHours, "mtbfHours");
    ComponentTimings t;
    double mttr = mttrFromAvailability(availability, mtbfHours);
    if (makeNeverFailingIfPerfect(t, mttr))
        return t;
    t.timeToFailure = std::make_unique<prob::WeibullDistribution>(
        prob::WeibullDistribution::withMean(shape, mtbfHours));
    t.timeToRepair =
        std::make_unique<prob::DeterministicDistribution>(mttr);
    return t;
}

std::vector<ComponentTimings>
exponentialTimingsFor(const rbd::RbdSystem &system, double mtbfHours)
{
    std::vector<ComponentTimings> timings;
    timings.reserve(system.componentCount());
    for (rbd::ComponentId id = 0; id < system.componentCount(); ++id) {
        timings.push_back(exponentialTimings(
            system.componentAvailability(id), mtbfHours));
    }
    return timings;
}

RenewalSimResult
simulateRenewalSystem(const rbd::RbdSystem &system,
                      const std::vector<ComponentTimings> &timings,
                      const RenewalSimConfig &config)
{
    require(timings.size() == system.componentCount(),
            "timings must cover every component");
    requirePositive(config.horizonHours, "horizonHours");
    require(config.batches >= 2, "need at least two batches");

    obs::TraceSpan trace_span("sim.renewal_run", config.seed);
    prob::Rng rng(config.seed);
    std::size_t n = system.componentCount();

    // Class of each component, for downtime attribution.
    std::vector<ComponentClass> classes;
    classes.reserve(n);
    for (rbd::ComponentId id = 0; id < n; ++id)
        classes.push_back(
            componentClassFromName(system.componentName(id)));

    // Event: (time, component). Earliest first; ties broken by
    // insertion order via the sequence number for determinism.
    struct Event
    {
        double time;
        std::uint64_t seq;
        std::size_t component;

        bool
        operator>(const Event &other) const
        {
            if (time != other.time)
                return time > other.time;
            return seq > other.seq;
        }
    };
    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
    std::size_t queue_hwm = 0;

    std::vector<bool> up(n, true);
    std::uint64_t seq = 0;
    for (std::size_t c = 0; c < n; ++c) {
        double t = timings[c].timeToFailure->sample(rng);
        queue.push({t, seq++, c});
    }
    queue_hwm = queue.size();

    const rbd::Block &root = system.root();
    bool system_up = root.evaluate(up);
    UptimeTracker tracker(system_up);
    OutageLedger ledger(system_up);

    double batch_length =
        config.horizonHours / static_cast<double>(config.batches);
    std::vector<double> batch_avail;
    batch_avail.reserve(config.batches);
    double batch_start_up = 0.0;
    std::size_t next_batch = 1;

    std::size_t events = 0;
    while (!queue.empty()) {
        Event ev = queue.top();
        if (ev.time >= config.horizonHours)
            break;
        queue.pop();
        ++events;

        // Close out any batch boundaries crossed before this event.
        while (next_batch <= config.batches &&
               static_cast<double>(next_batch) * batch_length <=
                   ev.time) {
            double boundary =
                static_cast<double>(next_batch) * batch_length;
            tracker.observe(boundary, system_up);
            batch_avail.push_back(
                (tracker.upTime() - batch_start_up) / batch_length);
            batch_start_up = tracker.upTime();
            ++next_batch;
        }

        // Flip the component and schedule its next transition.
        up[ev.component] = !up[ev.component];
        double hold = up[ev.component]
            ? timings[ev.component].timeToFailure->sample(rng)
            : timings[ev.component].timeToRepair->sample(rng);
        queue.push({ev.time + hold, seq++, ev.component});
        queue_hwm = std::max(queue_hwm, queue.size());

        bool now_up = root.evaluate(up);
        // The ledger sees every component event (a failure during an
        // open outage prolongs it); the tracker only needs flips.
        ledger.observe(ev.time, now_up,
                       {classes[ev.component], ev.component,
                        !up[ev.component]});
        if (now_up != system_up) {
            tracker.observe(ev.time, now_up);
            system_up = now_up;
        }
    }

    // Close remaining batches.
    while (next_batch <= config.batches) {
        double boundary = static_cast<double>(next_batch) * batch_length;
        tracker.observe(boundary, system_up);
        batch_avail.push_back(
            (tracker.upTime() - batch_start_up) / batch_length);
        batch_start_up = tracker.upTime();
        ++next_batch;
    }
    tracker.finish(config.horizonHours);
    ledger.finish(config.horizonHours);

    RenewalSimResult result;
    result.availability = batchMeans(batch_avail);
    result.outageCount = tracker.outageCount();
    result.meanOutageHours = tracker.meanOutageDuration();
    result.maxOutageHours = tracker.maxOutageDuration();
    result.events = events;
    result.queueHighWater = queue_hwm;
    result.censoredOutages = tracker.finalOutageCensored() ? 1 : 0;
    result.censoredOutageHours = tracker.censoredOutageDuration();
    result.attribution = ledger.totals();
    recordSimMetrics(events, queue_hwm);
    return result;
}

} // namespace sdnav::sim
