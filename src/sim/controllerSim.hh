/**
 * @file
 * Behavioral discrete-event simulator of a distributed SDN controller
 * deployment — the validation-by-simulation the paper lists as future
 * work.
 *
 * Beyond the independence assumptions of the static models, the
 * simulator captures the process-level *dynamics* of section III:
 *
 * - Supervisor semantics. Scenario 1 (NotRequired): a failed
 *   supervisor waits for the next maintenance window (hitless
 *   restore), and any process that fails while its supervisor is down
 *   needs a slow manual restart (R_S) instead of the fast
 *   auto-restart (R) — the paper's exposure-window argument, enacted
 *   rather than averaged. Scenario 2 (Required): a supervisor failure
 *   takes its whole node-role down until the manual restart
 *   completes.
 * - vRouter control-connection rediscovery. Each monitored compute
 *   host is connected to two Control nodes; when a connected control
 *   process dies the agent rediscovers a surviving one after a
 *   configurable delay (the paper's "typically within a minute").
 *   The static model assumes this transient is negligible; the
 *   simulator measures it.
 *
 * Infrastructure (racks, hosts, VMs) and processes fail and repair as
 * independent alternating renewals; plane state is evaluated from the
 * catalog's quorum blocks on every event.
 */

#ifndef SDNAV_SIM_CONTROLLER_SIM_HH
#define SDNAV_SIM_CONTROLLER_SIM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fmea/catalog.hh"
#include "model/params.hh"
#include "prob/processAvailability.hh"
#include "sim/outageLedger.hh"
#include "sim/stats.hh"
#include "topology/deployment.hh"

namespace sdnav::sim
{

/** Timing configuration of a behavioral simulation. */
struct ControllerSimConfig
{
    /** Process failure/restart times (F, R, R_S). */
    prob::ProcessTimings process;

    /** Supervisor MTBF (restart time is process.manualRestartHours). */
    double supervisorMtbfHours = 5000.0;

    /**
     * Scenario-1 maintenance cadence: a failed supervisor is restored
     * at the next multiple of this interval.
     */
    double maintenanceIntervalHours = 10.0;

    /** VM / host / rack MTBFs (MTTRs derive from availabilities). */
    double vmMtbfHours = 10000.0;
    double hostMtbfHours = 43800.0;
    double rackMtbfHours = 438000.0;

    /** VM / host / rack availabilities (paper defaults). */
    double vmAvailability = 0.99995;
    double hostAvailability = 0.9999;
    double rackAvailability = 0.99999;

    /** Number of monitored compute hosts running vRouters. */
    std::size_t monitoredHosts = 24;

    /** Agent rediscovery delay after losing a control connection. */
    double rediscoveryDelayHours = 1.0 / 60.0;

    /**
     * When false, the control-plane connection model is disabled and
     * host DP connectivity uses the static "any serving node exists"
     * rule — for apples-to-apples validation of the closed forms.
     */
    bool modelRediscovery = true;

    /** Total simulated hours. */
    double horizonHours = 2.0e6;

    /** Batch count for confidence intervals. */
    std::size_t batches = 20;

    /** Master seed. */
    std::uint64_t seed = 0xc0ffeeULL;
};

/** Results of a behavioral simulation run. */
struct ControllerSimResult
{
    /** Control-plane availability with CI. */
    BatchMeansResult cpAvailability;

    /**
     * Mean per-host data-plane availability with CI. Meaningful only
     * when `dpMeasured`; an unmonitored run reports 0, not a fake
     * perfect DP.
     */
    BatchMeansResult dpAvailability;

    /** False when `monitoredHosts == 0` left nothing to measure. */
    bool dpMeasured = true;

    /** CP outage episode statistics. */
    std::size_t cpOutages = 0;
    double cpMeanOutageHours = 0.0;
    double cpMaxOutageHours = 0.0;

    /** CP episodes right-censored by the horizon (0 or 1 for one
     *  run; summed across replications when merged). */
    std::size_t cpCensoredOutages = 0;

    /** Hours contributed by censored CP episodes (lower bounds). */
    double cpCensoredOutageHours = 0.0;

    /**
     * CP downtime attributed to the class of the event that opened
     * each episode (rack / host / vm / process / supervisor). Rows
     * sum to the total CP downtime.
     */
    AttributionTotals cpAttribution;

    /**
     * Per-host DP downtime attribution, summed over monitored hosts
     * in host order. Episodes that begin as a pure control-connection
     * re-learning window are attributed to the Rediscovery phase
     * rather than to the component that triggered them.
     */
    AttributionTotals dpAttribution;

    /**
     * Fraction of total host-hours lost to control-connection
     * rediscovery transients specifically (0 when the connection
     * model is disabled).
     */
    double rediscoveryDowntimeFraction = 0.0;

    /**
     * Peak pending-event count — a pure function of the seed, so it
     * is identical for any thread count in a replicated run.
     */
    std::size_t queueHighWater = 0;

    /** Total events processed. */
    std::size_t events = 0;
};

/**
 * Run the behavioral simulation of a catalog on a topology under a
 * supervisor policy.
 */
ControllerSimResult simulateController(
    const fmea::ControllerCatalog &catalog,
    const topology::DeploymentTopology &topo,
    model::SupervisorPolicy policy, const ControllerSimConfig &config);

/**
 * The SwParams whose static models the simulation should converge to
 * (availabilities implied by the configured timings).
 */
model::SwParams staticParamsFor(const ControllerSimConfig &config);

} // namespace sdnav::sim

#endif // SDNAV_SIM_CONTROLLER_SIM_HH
