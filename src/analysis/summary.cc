#include "analysis/summary.hh"

#include <sstream>

#include "common/units.hh"

namespace sdnav::analysis
{

TextTable
availabilitySummary(const std::string &title,
                    const std::vector<SummaryEntry> &entries)
{
    TextTable table;
    table.title(title);
    table.header({"configuration", "availability", "unavailability",
                  "downtime (m/y)", "nines"});
    for (const SummaryEntry &entry : entries) {
        table.addRow(
            {entry.label, formatFixed(entry.availability, 8),
             formatGeneral(1.0 - entry.availability, 4),
             formatFixed(
                 availabilityToDowntimeMinutesPerYear(entry.availability),
                 2),
             formatFixed(availabilityNines(entry.availability), 2)});
    }
    return table;
}

std::string
summaryLine(const std::string &label, double availability)
{
    std::ostringstream os;
    os << label << ": A=" << formatFixed(availability, 8) << " ("
       << formatFixed(
              availabilityToDowntimeMinutesPerYear(availability), 2)
       << " m/y, " << formatFixed(availabilityNines(availability), 2)
       << " nines)";
    return os.str();
}

} // namespace sdnav::analysis
