#include "analysis/attribution.hh"

#include <algorithm>

#include "common/units.hh"

namespace sdnav::analysis
{

using sim::ComponentClass;
using sim::componentClassFromName;
using sim::componentClassName;
using sim::kComponentClassCount;

AttributionReport
attributionReport(const sim::AttributionTotals &totals)
{
    AttributionReport report;
    report.observedHours = totals.observedHours;
    report.censoredEpisodes = totals.censoredEpisodes;
    report.censoredHours = totals.censoredHours;

    // Fixed class-enum order for the sum: the report total is the
    // exact value the rows must add back up to.
    double total = 0.0;
    for (const sim::ClassTotals &cls : totals.classes)
        total += cls.downtimeHours;
    report.totalDowntimeHours = total;

    for (std::size_t i = 0; i < kComponentClassCount; ++i) {
        const sim::ClassTotals &cls = totals.classes[i];
        if (cls.episodes == 0 && cls.prolongedEpisodes == 0)
            continue;
        AttributionRow row;
        row.cls = static_cast<ComponentClass>(i);
        row.episodes = cls.episodes;
        row.prolongedEpisodes = cls.prolongedEpisodes;
        row.downtimeHours = cls.downtimeHours;
        row.share = total > 0.0 ? cls.downtimeHours / total : 0.0;
        if (report.observedHours > 0.0) {
            double unavailability =
                cls.downtimeHours / report.observedHours;
            row.minutesPerYear = unavailability * minutesPerYear;
            row.availability = 1.0 - unavailability;
        }
        report.rows.push_back(row);
    }
    std::stable_sort(report.rows.begin(), report.rows.end(),
                     [](const AttributionRow &a,
                        const AttributionRow &b) {
                         return a.downtimeHours > b.downtimeHours;
                     });
    return report;
}

std::array<double, kComponentClassCount>
analyticClassShares(const rbd::RbdSystem &system)
{
    // One ranking pass computes every component's criticality from a
    // single BDD compilation; calling criticalityImportance() per
    // component would recompile the diagram three times per
    // component. Accumulate in component-id order (the ranking is
    // sorted by criticality) so the sums are independent of the
    // ranking order.
    std::vector<double> criticality_by_id(system.componentCount(),
                                          0.0);
    for (const rbd::ImportanceEntry &entry : system.rankImportance())
        criticality_by_id[entry.component] = entry.criticality;

    std::array<double, kComponentClassCount> shares{};
    double total = 0.0;
    for (rbd::ComponentId id = 0; id < system.componentCount();
         ++id) {
        double criticality = criticality_by_id[id];
        std::size_t cls = static_cast<std::size_t>(
            componentClassFromName(system.componentName(id)));
        shares[cls] += criticality;
        total += criticality;
    }
    if (total > 0.0) {
        for (double &share : shares)
            share /= total;
    }
    return shares;
}

void
attachAnalyticShares(AttributionReport &report,
                     const rbd::RbdSystem &system)
{
    std::array<double, kComponentClassCount> shares =
        analyticClassShares(system);
    report.hasAnalytic = true;
    std::array<bool, kComponentClassCount> present{};
    for (AttributionRow &row : report.rows) {
        std::size_t cls = static_cast<std::size_t>(row.cls);
        row.analyticShare = shares[cls];
        present[cls] = true;
    }
    // A class the closed forms consider critical but the simulation
    // never saw initiate an outage still deserves a row — that gap
    // is exactly what the cross-check is for.
    for (std::size_t i = 0; i < kComponentClassCount; ++i) {
        if (present[i] || shares[i] <= 0.0)
            continue;
        AttributionRow row;
        row.cls = static_cast<ComponentClass>(i);
        row.analyticShare = shares[i];
        report.rows.push_back(row);
    }
}

namespace
{

std::vector<std::string>
rowCells(const AttributionRow &row, bool hasAnalytic)
{
    std::vector<std::string> cells = {
        componentClassName(row.cls),
        std::to_string(row.episodes),
        std::to_string(row.prolongedEpisodes),
        formatGeneral(row.downtimeHours, 8),
        formatFixed(row.share, 4),
        formatGeneral(row.minutesPerYear, 6),
        formatFixed(row.availability, 7),
    };
    if (hasAnalytic) {
        cells.push_back(row.analyticShare >= 0.0
                            ? formatFixed(row.analyticShare, 4)
                            : std::string("-"));
    }
    return cells;
}

std::vector<std::string>
headerCells(bool hasAnalytic)
{
    std::vector<std::string> cells = {
        "class",    "episodes", "prolonged", "downtime_h",
        "share",    "min/year", "availability",
    };
    if (hasAnalytic)
        cells.push_back("analytic_share");
    return cells;
}

std::vector<std::string>
totalCells(const AttributionReport &report, bool hasAnalytic)
{
    std::size_t episodes = 0;
    std::size_t prolonged = 0;
    double share = 0.0;
    for (const AttributionRow &row : report.rows) {
        episodes += row.episodes;
        prolonged += row.prolongedEpisodes;
        share += row.share;
    }
    double unavailability = report.observedHours > 0.0
        ? report.totalDowntimeHours / report.observedHours
        : 0.0;
    std::vector<std::string> cells = {
        "total",
        std::to_string(episodes),
        std::to_string(prolonged),
        formatGeneral(report.totalDowntimeHours, 8),
        formatFixed(share, 4),
        formatGeneral(unavailability * minutesPerYear, 6),
        formatFixed(1.0 - unavailability, 7),
    };
    if (hasAnalytic)
        cells.push_back("");
    return cells;
}

std::vector<std::string>
censoredCells(const AttributionReport &report, bool hasAnalytic)
{
    std::vector<std::string> cells = {
        "censored",
        std::to_string(report.censoredEpisodes),
        "",
        formatGeneral(report.censoredHours, 8),
        "",
        "",
        "",
    };
    if (hasAnalytic)
        cells.push_back("");
    return cells;
}

} // anonymous namespace

TextTable
attributionTable(const std::string &title,
                 const AttributionReport &report)
{
    TextTable table;
    table.title(title);
    table.header(headerCells(report.hasAnalytic));
    for (const AttributionRow &row : report.rows)
        table.addRow(rowCells(row, report.hasAnalytic));
    table.addRow(totalCells(report, report.hasAnalytic));
    if (report.censoredEpisodes > 0)
        table.addRow(censoredCells(report, report.hasAnalytic));
    return table;
}

CsvWriter
attributionCsv(const AttributionReport &report)
{
    CsvWriter csv;
    csv.header(headerCells(report.hasAnalytic));
    for (const AttributionRow &row : report.rows)
        csv.addRow(rowCells(row, report.hasAnalytic));
    csv.addRow(totalCells(report, report.hasAnalytic));
    if (report.censoredEpisodes > 0)
        csv.addRow(censoredCells(report, report.hasAnalytic));
    return csv;
}

} // namespace sdnav::analysis
