#include "analysis/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "obs/obs.hh"
#include "obs/trace.hh"

namespace sdnav::analysis
{

std::size_t
SweepOptions::resolvedThreads() const
{
    std::size_t t = threads;
    if (t == 0) {
        t = std::thread::hardware_concurrency();
        if (t == 0)
            t = 1;
    }
    return t;
}

namespace
{

/**
 * Chunk size giving each worker ~4 chunks to claim: large enough that
 * the atomic claim is off the per-point path, small enough that an
 * uneven grid (expensive points clustered at one end) still balances.
 */
std::size_t
autoChunk(std::size_t points, std::size_t threads)
{
    std::size_t chunks_wanted = threads * 4;
    std::size_t chunk = (points + chunks_wanted - 1) / chunks_wanted;
    return std::max<std::size_t>(1, chunk);
}

/**
 * Publish one executed sweep: how it was chunked, each worker's busy
 * time, and the busy-time imbalance (max-min)/max across workers — 0
 * means perfectly balanced claiming, 1 means a worker sat idle the
 * whole sweep. "sweep.points" is thread-count independent;
 * "sweep.chunks" legitimately varies with the pool size.
 */
void
recordSweepMetrics(std::size_t points, std::size_t chunks,
                   const std::vector<double> &worker_busy_ms)
{
    obs::Registry &registry = obs::Registry::global();
    registry.counter("sweep.points").add(points);
    registry.counter("sweep.chunks").add(chunks);
    registry.counter("sweep.runs").add();
    obs::Timer &busy = registry.timer("sweep.worker_busy");
    double max_busy = 0.0;
    double min_busy = worker_busy_ms.empty()
        ? 0.0
        : std::numeric_limits<double>::infinity();
    for (double ms : worker_busy_ms) {
        busy.record(ms);
        max_busy = std::max(max_busy, ms);
        min_busy = std::min(min_busy, ms);
    }
    if (worker_busy_ms.size() > 1 && max_busy > 0.0) {
        registry.gauge("sweep.imbalance")
            .setMax((max_busy - min_busy) / max_busy);
    }
}

} // anonymous namespace

void
forEachGridPoint(std::size_t points,
                 const std::function<void(std::size_t)> &body,
                 const SweepOptions &options)
{
    if (points == 0)
        return;

    std::size_t threads = std::min(options.resolvedThreads(), points);
    std::size_t chunk = options.chunk != 0
        ? options.chunk
        : autoChunk(points, threads);
    std::size_t chunk_count = (points + chunk - 1) / chunk;
    threads = std::min(threads, chunk_count);

    using clock = std::chrono::steady_clock;

    if (threads <= 1) {
        obs::TraceSpan trace_span("sweep.serial", points);
        auto t0 = clock::now();
        for (std::size_t i = 0; i < points; ++i)
            body(i);
        double busy =
            std::chrono::duration<double, std::milli>(clock::now() - t0)
                .count();
        recordSweepMetrics(points, chunk_count, {busy});
        return;
    }

    // Workers claim whole chunks from a shared counter. Any chunk may
    // run on any thread; determinism comes from results being keyed
    // by grid index, not by completion order. A failure in any worker
    // raises the abort flag so the rest stop claiming instead of
    // draining the remaining grid for a result that will be thrown
    // away.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> abort{false};
    std::mutex error_mutex;
    std::exception_ptr error;
    std::vector<double> worker_busy_ms(threads, 0.0);
    auto worker = [&](std::size_t slot) {
        auto t0 = clock::now();
        while (!abort.load(std::memory_order_relaxed)) {
            std::size_t c = next.fetch_add(1);
            if (c >= chunk_count)
                break;
            std::size_t begin = c * chunk;
            std::size_t end = std::min(points, begin + chunk);
            obs::TraceSpan trace_span("sweep.chunk", c);
            try {
                for (std::size_t i = begin; i < end; ++i)
                    body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                abort.store(true, std::memory_order_relaxed);
                break;
            }
        }
        // Each slot is written by exactly one worker and read only
        // after join().
        worker_busy_ms[slot] =
            std::chrono::duration<double, std::milli>(clock::now() - t0)
                .count();
    };
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
        workers.emplace_back(worker, t);
    for (std::thread &w : workers)
        w.join();
    recordSweepMetrics(points, chunk_count, worker_busy_ms);
    if (error)
        std::rethrow_exception(error);
}

} // namespace sdnav::analysis
