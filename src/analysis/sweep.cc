#include "analysis/sweep.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace sdnav::analysis
{

std::size_t
SweepOptions::resolvedThreads() const
{
    std::size_t t = threads;
    if (t == 0) {
        t = std::thread::hardware_concurrency();
        if (t == 0)
            t = 1;
    }
    return t;
}

namespace
{

/**
 * Chunk size giving each worker ~4 chunks to claim: large enough that
 * the atomic claim is off the per-point path, small enough that an
 * uneven grid (expensive points clustered at one end) still balances.
 */
std::size_t
autoChunk(std::size_t points, std::size_t threads)
{
    std::size_t chunks_wanted = threads * 4;
    std::size_t chunk = (points + chunks_wanted - 1) / chunks_wanted;
    return std::max<std::size_t>(1, chunk);
}

} // anonymous namespace

void
forEachGridPoint(std::size_t points,
                 const std::function<void(std::size_t)> &body,
                 const SweepOptions &options)
{
    if (points == 0)
        return;

    std::size_t threads = std::min(options.resolvedThreads(), points);
    std::size_t chunk = options.chunk != 0
        ? options.chunk
        : autoChunk(points, threads);
    std::size_t chunk_count = (points + chunk - 1) / chunk;
    threads = std::min(threads, chunk_count);

    if (threads <= 1) {
        for (std::size_t i = 0; i < points; ++i)
            body(i);
        return;
    }

    // Workers claim whole chunks from a shared counter. Any chunk may
    // run on any thread; determinism comes from results being keyed
    // by grid index, not by completion order.
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;
    auto worker = [&] {
        for (;;) {
            std::size_t c = next.fetch_add(1);
            if (c >= chunk_count)
                return;
            std::size_t begin = c * chunk;
            std::size_t end = std::min(points, begin + chunk);
            try {
                for (std::size_t i = begin; i < end; ++i)
                    body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                return;
            }
        }
    };
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
        workers.emplace_back(worker);
    for (std::thread &w : workers)
        w.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace sdnav::analysis
