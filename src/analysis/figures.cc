#include "analysis/figures.hh"

#include <cmath>

#include "bdd/bdd.hh"
#include "common/error.hh"
#include "model/exactModel.hh"
#include "model/hwCentric.hh"
#include "model/swCentric.hh"
#include "topology/deployment.hh"

namespace sdnav::analysis
{

TextTable
FigureData::toTable(int precision) const
{
    TextTable table;
    table.title(title);
    std::vector<std::string> header{xLabel};
    for (const std::string &label : labels)
        header.push_back(label);
    table.header(std::move(header));
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::vector<std::string> row{formatGeneral(xs[i], 6)};
        for (const auto &series : ys)
            row.push_back(formatFixed(series[i], precision));
        table.addRow(std::move(row));
    }
    return table;
}

CsvWriter
FigureData::toCsv(int precision) const
{
    CsvWriter csv;
    std::vector<std::string> header{xLabel};
    for (const std::string &label : labels)
        header.push_back(label);
    csv.header(std::move(header));
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::vector<std::string> row{formatGeneral(xs[i], 10)};
        for (const auto &series : ys)
            row.push_back(formatFixed(series[i], precision));
        csv.addRow(std::move(row));
    }
    return csv;
}

double
FigureData::valueAt(const std::string &label, double x) const
{
    for (std::size_t s = 0; s < labels.size(); ++s) {
        if (labels[s] != label)
            continue;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            if (std::fabs(xs[i] - x) < 1e-12)
                return ys[s][i];
        }
        throw ModelError("x value not on the figure grid");
    }
    throw ModelError("unknown series label: " + label);
}

namespace
{

std::vector<double>
linspace(double lo, double hi, std::size_t points)
{
    require(points >= 2, "need at least two sweep points");
    require(lo <= hi, "sweep range is inverted");
    std::vector<double> xs(points);
    for (std::size_t i = 0; i < points; ++i) {
        xs[i] = lo + (hi - lo) * static_cast<double>(i) /
                         static_cast<double>(points - 1);
    }
    return xs;
}

} // anonymous namespace

FigureData
figure3(const model::HwParams &base, double lo, double hi,
        std::size_t points, const SweepOptions &sweep)
{
    FigureData fig;
    fig.title = "Figure 3. Controller availability vs role availability "
                "A_C (HW-centric)";
    fig.xLabel = "A_C";
    fig.yLabel = "controller availability";
    fig.xs = linspace(lo, hi, points);
    fig.labels = {"Small", "Medium", "Large"};
    fig.ys.assign(3, std::vector<double>(points));
    forEachGridPoint(
        points,
        [&](std::size_t i) {
            model::HwParams params = base;
            params.roleAvailability = fig.xs[i];
            fig.ys[0][i] = model::hwSmallAvailability(params);
            fig.ys[1][i] = model::hwMediumAvailability(params);
            fig.ys[2][i] = model::hwLargeAvailability(params);
        },
        sweep);
    return fig;
}

namespace
{

/** The four paper options over the small/large reference topologies. */
struct SwOption
{
    topology::DeploymentTopology topo;
    model::SupervisorPolicy policy;
};

std::vector<SwOption>
swOptions(const fmea::ControllerCatalog &catalog)
{
    topology::DeploymentTopology small =
        topology::smallTopology(catalog.roles().size());
    topology::DeploymentTopology large =
        topology::largeTopology(catalog.roles().size());
    std::vector<SwOption> options;
    options.push_back({small, model::SupervisorPolicy::NotRequired});
    options.push_back({small, model::SupervisorPolicy::Required});
    options.push_back({large, model::SupervisorPolicy::NotRequired});
    options.push_back({large, model::SupervisorPolicy::Required});
    return options;
}

FigureData
swFigureSkeleton(const std::string &title, const std::string &yLabel,
                 std::size_t points)
{
    FigureData fig;
    fig.title = title;
    fig.xLabel = "downtime shift (orders of magnitude)";
    fig.yLabel = yLabel;
    fig.xs = linspace(-1.0, 1.0, points);
    fig.labels = {"1S", "2S", "1L", "2L"};
    fig.ys.assign(4, std::vector<double>(points));
    return fig;
}

FigureData
swFigure(const fmea::ControllerCatalog &catalog,
         const model::SwParams &base, std::size_t points,
         fmea::Plane plane, const std::string &title,
         const std::string &yLabel, const SweepOptions &sweep)
{
    FigureData fig = swFigureSkeleton(title, yLabel, points);

    // Construct the four engines once (cheap but not free), then
    // flatten options x points into one grid so a wide machine stays
    // busy even with few points per series. planeAvailability() is
    // const, so the models are shared read-only across the pool.
    std::vector<SwOption> options = swOptions(catalog);
    std::vector<model::SwAvailabilityModel> engines;
    engines.reserve(options.size());
    for (const SwOption &opt : options)
        engines.emplace_back(catalog, opt.topo, opt.policy);
    forEachGridPoint(
        options.size() * points,
        [&](std::size_t job) {
            std::size_t opt = job / points;
            std::size_t i = job % points;
            model::SwParams params = base.withDowntimeShift(fig.xs[i]);
            fig.ys[opt][i] = engines[opt].planeAvailability(params,
                                                            plane);
        },
        sweep);
    return fig;
}

FigureData
exactSwFigure(const fmea::ControllerCatalog &catalog,
              const model::SwParams &base, std::size_t points,
              fmea::Plane plane, const std::string &title,
              const std::string &yLabel, const SweepOptions &sweep)
{
    FigureData fig = swFigureSkeleton(title, yLabel, points);

    // Build-once / evaluate-many: each option's structure function is
    // compiled to a BDD a single time; every sweep point is then one
    // read-only probability traversal. One scratch per worker thread
    // keeps the hot loop allocation-free.
    std::vector<SwOption> options = swOptions(catalog);
    std::vector<model::ExactPlaneModel> engines;
    engines.reserve(options.size());
    for (const SwOption &opt : options)
        engines.emplace_back(catalog, opt.topo, opt.policy, plane);
    forEachGridPoint(
        options.size() * points,
        [&](std::size_t job) {
            static thread_local bdd::ProbabilityScratch scratch;
            std::size_t opt = job / points;
            std::size_t i = job % points;
            model::SwParams params = base.withDowntimeShift(fig.xs[i]);
            fig.ys[opt][i] = engines[opt].availability(params, scratch);
        },
        sweep);
    return fig;
}

} // anonymous namespace

FigureData
figure4(const fmea::ControllerCatalog &catalog,
        const model::SwParams &base, std::size_t points,
        const SweepOptions &sweep)
{
    return swFigure(catalog, base, points, fmea::Plane::ControlPlane,
                    "Figure 4. SDN CP availability A_CP (SW-centric)",
                    "A_CP", sweep);
}

FigureData
figure5(const fmea::ControllerCatalog &catalog,
        const model::SwParams &base, std::size_t points,
        const SweepOptions &sweep)
{
    return swFigure(catalog, base, points, fmea::Plane::DataPlane,
                    "Figure 5. Host DP availability A_DP (SW-centric)",
                    "A_DP", sweep);
}

FigureData
figure4Exact(const fmea::ControllerCatalog &catalog,
             const model::SwParams &base, std::size_t points,
             const SweepOptions &sweep)
{
    return exactSwFigure(
        catalog, base, points, fmea::Plane::ControlPlane,
        "Figure 4 (exact). SDN CP availability A_CP (BDD)", "A_CP",
        sweep);
}

FigureData
figure5Exact(const fmea::ControllerCatalog &catalog,
             const model::SwParams &base, std::size_t points,
             const SweepOptions &sweep)
{
    return exactSwFigure(
        catalog, base, points, fmea::Plane::DataPlane,
        "Figure 5 (exact). Host DP availability A_DP (BDD)", "A_DP",
        sweep);
}

} // namespace sdnav::analysis
