#include "analysis/figures.hh"

#include <cmath>

#include "common/error.hh"
#include "model/hwCentric.hh"
#include "model/swCentric.hh"
#include "topology/deployment.hh"

namespace sdnav::analysis
{

TextTable
FigureData::toTable(int precision) const
{
    TextTable table;
    table.title(title);
    std::vector<std::string> header{xLabel};
    for (const std::string &label : labels)
        header.push_back(label);
    table.header(std::move(header));
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::vector<std::string> row{formatGeneral(xs[i], 6)};
        for (const auto &series : ys)
            row.push_back(formatFixed(series[i], precision));
        table.addRow(std::move(row));
    }
    return table;
}

CsvWriter
FigureData::toCsv(int precision) const
{
    CsvWriter csv;
    std::vector<std::string> header{xLabel};
    for (const std::string &label : labels)
        header.push_back(label);
    csv.header(std::move(header));
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::vector<std::string> row{formatGeneral(xs[i], 10)};
        for (const auto &series : ys)
            row.push_back(formatFixed(series[i], precision));
        csv.addRow(std::move(row));
    }
    return csv;
}

double
FigureData::valueAt(const std::string &label, double x) const
{
    for (std::size_t s = 0; s < labels.size(); ++s) {
        if (labels[s] != label)
            continue;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            if (std::fabs(xs[i] - x) < 1e-12)
                return ys[s][i];
        }
        throw ModelError("x value not on the figure grid");
    }
    throw ModelError("unknown series label: " + label);
}

namespace
{

std::vector<double>
linspace(double lo, double hi, std::size_t points)
{
    require(points >= 2, "need at least two sweep points");
    require(lo <= hi, "sweep range is inverted");
    std::vector<double> xs(points);
    for (std::size_t i = 0; i < points; ++i) {
        xs[i] = lo + (hi - lo) * static_cast<double>(i) /
                         static_cast<double>(points - 1);
    }
    return xs;
}

} // anonymous namespace

FigureData
figure3(const model::HwParams &base, double lo, double hi,
        std::size_t points)
{
    FigureData fig;
    fig.title = "Figure 3. Controller availability vs role availability "
                "A_C (HW-centric)";
    fig.xLabel = "A_C";
    fig.yLabel = "controller availability";
    fig.xs = linspace(lo, hi, points);
    fig.labels = {"Small", "Medium", "Large"};
    fig.ys.assign(3, std::vector<double>(points));
    for (std::size_t i = 0; i < points; ++i) {
        model::HwParams params = base;
        params.roleAvailability = fig.xs[i];
        fig.ys[0][i] = model::hwSmallAvailability(params);
        fig.ys[1][i] = model::hwMediumAvailability(params);
        fig.ys[2][i] = model::hwLargeAvailability(params);
    }
    return fig;
}

namespace
{

FigureData
swFigure(const fmea::ControllerCatalog &catalog,
         const model::SwParams &base, std::size_t points,
         fmea::Plane plane, const std::string &title,
         const std::string &yLabel)
{
    FigureData fig;
    fig.title = title;
    fig.xLabel = "downtime shift (orders of magnitude)";
    fig.yLabel = yLabel;
    fig.xs = linspace(-1.0, 1.0, points);
    fig.labels = {"1S", "2S", "1L", "2L"};
    fig.ys.assign(4, std::vector<double>(points));

    topology::DeploymentTopology small =
        topology::smallTopology(catalog.roles().size());
    topology::DeploymentTopology large =
        topology::largeTopology(catalog.roles().size());
    struct Option
    {
        const topology::DeploymentTopology *topo;
        model::SupervisorPolicy policy;
    };
    const Option options[4] = {
        {&small, model::SupervisorPolicy::NotRequired},
        {&small, model::SupervisorPolicy::Required},
        {&large, model::SupervisorPolicy::NotRequired},
        {&large, model::SupervisorPolicy::Required},
    };
    for (std::size_t opt = 0; opt < 4; ++opt) {
        model::SwAvailabilityModel swmodel(catalog, *options[opt].topo,
                                           options[opt].policy);
        for (std::size_t i = 0; i < points; ++i) {
            model::SwParams params = base.withDowntimeShift(fig.xs[i]);
            fig.ys[opt][i] = swmodel.planeAvailability(params, plane);
        }
    }
    return fig;
}

} // anonymous namespace

FigureData
figure4(const fmea::ControllerCatalog &catalog,
        const model::SwParams &base, std::size_t points)
{
    return swFigure(catalog, base, points, fmea::Plane::ControlPlane,
                    "Figure 4. SDN CP availability A_CP (SW-centric)",
                    "A_CP");
}

FigureData
figure5(const fmea::ControllerCatalog &catalog,
        const model::SwParams &base, std::size_t points)
{
    return swFigure(catalog, base, points, fmea::Plane::DataPlane,
                    "Figure 5. Host DP availability A_DP (SW-centric)",
                    "A_DP");
}

} // namespace sdnav::analysis
