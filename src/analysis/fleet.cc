#include "analysis/fleet.hh"

#include <cmath>
#include <limits>

#include "common/error.hh"
#include "common/units.hh"
#include "prob/kofn.hh"

namespace sdnav::analysis
{

void
FleetModel::validate() const
{
    require(sites >= 1, "fleet needs at least one site");
    requireProbability(siteAvailability, "siteAvailability");
    requireNonNegative(siteOutagesPerHour, "siteOutagesPerHour");
}

double
FleetModel::expectedSitesDown() const
{
    validate();
    return static_cast<double>(sites) * (1.0 - siteAvailability);
}

double
FleetModel::probabilityAnySiteDown() const
{
    validate();
    return 1.0 - std::pow(siteAvailability,
                          static_cast<double>(sites));
}

double
FleetModel::probabilityAtLeastUp(std::size_t k) const
{
    validate();
    return prob::kOfN(static_cast<unsigned>(k),
                      static_cast<unsigned>(sites), siteAvailability);
}

double
FleetModel::fleetOutagesPerYear() const
{
    validate();
    return static_cast<double>(sites) * siteOutagesPerHour *
           hoursPerYear;
}

double
FleetModel::probabilityOutageWithin(double horizonHours) const
{
    validate();
    requireNonNegative(horizonHours, "horizonHours");
    double rate = static_cast<double>(sites) * siteOutagesPerHour;
    return 1.0 - std::exp(-rate * horizonHours);
}

double
FleetModel::meanTimeBetweenFleetOutagesHours() const
{
    validate();
    double rate = static_cast<double>(sites) * siteOutagesPerHour;
    if (rate <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / rate;
}

FleetModel
fleetFromProfile(std::size_t sites, const OutageProfile &profile)
{
    FleetModel fleet;
    fleet.sites = sites;
    fleet.siteAvailability = profile.availability;
    fleet.siteOutagesPerHour = profile.outagesPerHour;
    fleet.validate();
    return fleet;
}

TextTable
fleetTable(const std::string &title, const FleetModel &fleet)
{
    fleet.validate();
    TextTable table;
    table.title(title);
    table.header({"sites", "E[sites down]", "P[any down]",
                  "fleet outages/year", "P[outage within 1y]"});
    table.addRow({std::to_string(fleet.sites),
                  formatGeneral(fleet.expectedSitesDown(), 4),
                  formatGeneral(fleet.probabilityAnySiteDown(), 4),
                  formatFixed(fleet.fleetOutagesPerYear(), 2),
                  formatFixed(
                      fleet.probabilityOutageWithin(hoursPerYear),
                      4)});
    return table;
}

} // namespace sdnav::analysis
