/**
 * @file
 * Generators for the paper's evaluation figures as labeled data
 * series (printable as text tables or CSV for external plotting).
 *
 * - Figure 3: HW-centric controller availability vs role availability
 *   A_C for the Small / Medium / Large topologies.
 * - Figure 4: SW-centric SDN control-plane availability vs process
 *   availability (x-axis in orders of magnitude of downtime) for
 *   options 1S / 2S / 1L / 2L.
 * - Figure 5: SW-centric host data-plane availability, same sweep.
 */

#ifndef SDNAV_ANALYSIS_FIGURES_HH
#define SDNAV_ANALYSIS_FIGURES_HH

#include <string>
#include <vector>

#include "analysis/sweep.hh"
#include "common/csv.hh"
#include "common/textTable.hh"
#include "fmea/catalog.hh"
#include "model/params.hh"

namespace sdnav::analysis
{

/** A set of y-series over a common x grid. */
struct FigureData
{
    /** Figure title. */
    std::string title;

    /** x-axis label. */
    std::string xLabel;

    /** y-axis label. */
    std::string yLabel;

    /** The common x grid. */
    std::vector<double> xs;

    /** Series labels, one per series. */
    std::vector<std::string> labels;

    /** ys[series][point]. */
    std::vector<std::vector<double>> ys;

    /** Render as an aligned text table (x + one column per series). */
    TextTable toTable(int precision = 7) const;

    /** Render as CSV. */
    CsvWriter toCsv(int precision = 10) const;

    /** y value of a labeled series at an x (exact match required). */
    double valueAt(const std::string &label, double x) const;
};

/**
 * Figure 3: sweep A_C over [lo, hi]; series "Small", "Medium",
 * "Large" from the HW-centric closed forms.
 *
 * All figure sweeps run on the parallel sweep executor; results are
 * bit-identical for any `sweep.threads`.
 */
FigureData figure3(const model::HwParams &base, double lo = 0.999,
                   double hi = 1.0, std::size_t points = 21,
                   const SweepOptions &sweep = {});

/**
 * Figure 4: sweep the process-availability downtime shift over
 * [-1, +1] orders of magnitude; series "1S", "2S", "1L", "2L" of SDN
 * CP availability from the SW-centric engine.
 */
FigureData figure4(const fmea::ControllerCatalog &catalog,
                   const model::SwParams &base,
                   std::size_t points = 21,
                   const SweepOptions &sweep = {});

/** Figure 5: same sweep for total per-host DP availability. */
FigureData figure5(const fmea::ControllerCatalog &catalog,
                   const model::SwParams &base,
                   std::size_t points = 21,
                   const SweepOptions &sweep = {});

/**
 * Figure 4 from the exact BDD structure functions instead of the
 * SW-centric closed forms: each option's diagram is compiled once
 * (ExactPlaneModel) and re-evaluated per sweep point across the
 * thread pool. Ground truth for the closed-form figures, and the
 * showcase workload for build-once/evaluate-many.
 */
FigureData figure4Exact(const fmea::ControllerCatalog &catalog,
                        const model::SwParams &base,
                        std::size_t points = 21,
                        const SweepOptions &sweep = {});

/** Exact-BDD variant of Figure 5 (host DP availability). */
FigureData figure5Exact(const fmea::ControllerCatalog &catalog,
                        const model::SwParams &base,
                        std::size_t points = 21,
                        const SweepOptions &sweep = {});

} // namespace sdnav::analysis

#endif // SDNAV_ANALYSIS_FIGURES_HH
