#include "analysis/sensitivity.hh"

#include <algorithm>

#include "common/units.hh"
#include "model/hwCentric.hh"
#include "model/swCentric.hh"

namespace sdnav::analysis
{

template <typename P>
std::vector<SensitivityRow>
parameterSensitivity(
    const P &base,
    const std::vector<std::pair<std::string, double P::*>> &fields,
    const std::function<double(const P &)> &evaluate,
    const SweepOptions &sweep)
{
    std::vector<SensitivityRow> rows(fields.size());
    double base_avail = evaluate(base);
    // One grid point per parameter: each point makes three
    // independent evaluations (lo, hi, improved), so the executor
    // parallelizes across parameters.
    forEachGridPoint(
        fields.size(),
        [&](std::size_t f) {
            const auto &[name, member] = fields[f];
            SensitivityRow row;
            row.parameter = name;
            row.baseValue = base.*member;

            // Central difference, step scaled to the parameter's
            // unavailability so near-1 values stay in range.
            double h = std::max(1e-9, (1.0 - row.baseValue) * 0.01);
            P lo = base, hi = base;
            lo.*member = std::max(0.0, row.baseValue - h);
            hi.*member = std::min(1.0, row.baseValue + h);
            row.derivative = (evaluate(hi) - evaluate(lo)) /
                             ((hi.*member) - (lo.*member));

            // 10x less downtime for this parameter alone.
            P improved = base;
            improved.*member =
                shiftAvailabilityDowntime(row.baseValue, 1.0);
            row.improvedAvailability = evaluate(improved);
            row.downtimeSavedMinutes =
                availabilityToDowntimeMinutesPerYear(base_avail) -
                availabilityToDowntimeMinutesPerYear(
                    row.improvedAvailability);
            rows[f] = std::move(row);
        },
        sweep);
    std::sort(rows.begin(), rows.end(),
              [](const SensitivityRow &a, const SensitivityRow &b) {
                  return a.downtimeSavedMinutes > b.downtimeSavedMinutes;
              });
    return rows;
}

// Explicit instantiations for the two parameter blocks.
template std::vector<SensitivityRow>
parameterSensitivity<model::HwParams>(
    const model::HwParams &,
    const std::vector<std::pair<std::string, double model::HwParams::*>> &,
    const std::function<double(const model::HwParams &)> &,
    const SweepOptions &);

template std::vector<SensitivityRow>
parameterSensitivity<model::SwParams>(
    const model::SwParams &,
    const std::vector<std::pair<std::string, double model::SwParams::*>> &,
    const std::function<double(const model::SwParams &)> &,
    const SweepOptions &);

std::vector<SensitivityRow>
hwSensitivity(topology::ReferenceKind kind, const model::HwParams &params,
              const SweepOptions &sweep)
{
    std::vector<std::pair<std::string, double model::HwParams::*>> fields{
        {"A_C (role)", &model::HwParams::roleAvailability},
        {"A_V (VM)", &model::HwParams::vmAvailability},
        {"A_H (host)", &model::HwParams::hostAvailability},
        {"A_R (rack)", &model::HwParams::rackAvailability},
    };
    return parameterSensitivity<model::HwParams>(
        params, fields,
        [kind](const model::HwParams &p) {
            return model::hwAvailability(kind, p);
        },
        sweep);
}

std::vector<SensitivityRow>
swSensitivity(const fmea::ControllerCatalog &catalog,
              const topology::DeploymentTopology &topo,
              model::SupervisorPolicy policy,
              const model::SwParams &params, fmea::Plane plane,
              const SweepOptions &sweep)
{
    std::vector<std::pair<std::string, double model::SwParams::*>> fields{
        {"A (auto process)", &model::SwParams::processAvailability},
        {"A_S (manual process)",
         &model::SwParams::manualProcessAvailability},
        {"A_V (VM)", &model::SwParams::vmAvailability},
        {"A_H (host)", &model::SwParams::hostAvailability},
        {"A_R (rack)", &model::SwParams::rackAvailability},
    };
    model::SwAvailabilityModel swmodel(catalog, topo, policy);
    return parameterSensitivity<model::SwParams>(
        params, fields,
        [&swmodel, plane](const model::SwParams &p) {
            return swmodel.planeAvailability(p, plane);
        },
        sweep);
}

TextTable
sensitivityTable(const std::string &title,
                 const std::vector<SensitivityRow> &rows)
{
    TextTable table;
    table.title(title);
    table.header({"parameter", "base value", "dA_sys/dA_param",
                  "A_sys at 10x less param DT", "m/y saved"});
    for (const SensitivityRow &row : rows) {
        table.addRow({row.parameter, formatFixed(row.baseValue, 6),
                      formatGeneral(row.derivative, 4),
                      formatFixed(row.improvedAvailability, 8),
                      formatFixed(row.downtimeSavedMinutes, 2)});
    }
    return table;
}

} // namespace sdnav::analysis
