/**
 * @file
 * Fleet-level analysis: many independent edge sites.
 *
 * The paper's rack-separation argument is a fleet argument: "for a
 * network or content or video service provider with 500 edge sites,
 * a yearly outage may be unacceptable." These helpers lift per-site
 * availability and outage frequency to fleet-level quantities:
 * expected sites down, the probability that any site is down, k-of-N
 * fleet availability, and the probability of experiencing at least
 * one site outage within a horizon (Poisson superposition of the
 * sites' outage processes).
 */

#ifndef SDNAV_ANALYSIS_FLEET_HH
#define SDNAV_ANALYSIS_FLEET_HH

#include <cstddef>
#include <string>

#include "analysis/outage.hh"
#include "common/textTable.hh"

namespace sdnav::analysis
{

/** A fleet of independent, identical sites. */
struct FleetModel
{
    /** Number of sites, >= 1. */
    std::size_t sites = 1;

    /** Steady-state availability of one site. */
    double siteAvailability = 1.0;

    /** One site's outage frequency, per hour (>= 0). */
    double siteOutagesPerHour = 0.0;

    /** @throws ModelError on invalid fields. */
    void validate() const;

    /** Expected number of sites down at a random instant. */
    double expectedSitesDown() const;

    /** Probability that at least one site is down right now. */
    double probabilityAnySiteDown() const;

    /** Probability that at least k of the sites are up. */
    double probabilityAtLeastUp(std::size_t k) const;

    /** Expected fleet-wide outage events per year. */
    double fleetOutagesPerYear() const;

    /**
     * Probability of at least one site outage within the given
     * horizon (Poisson arrivals at the fleet rate).
     *
     * @param horizonHours Horizon length in hours, >= 0.
     */
    double probabilityOutageWithin(double horizonHours) const;

    /**
     * Mean time between fleet outage events (hours); infinity when
     * sites never fail.
     */
    double meanTimeBetweenFleetOutagesHours() const;
};

/** Build a fleet model from a site's outage profile. */
FleetModel fleetFromProfile(std::size_t sites,
                            const OutageProfile &profile);

/** Render fleet statistics as a table. */
TextTable fleetTable(const std::string &title, const FleetModel &fleet);

} // namespace sdnav::analysis

#endif // SDNAV_ANALYSIS_FLEET_HH
