#include "analysis/rejuvenation.hh"

#include <cmath>
#include <limits>

#include "common/error.hh"
#include "prob/special.hh"

namespace sdnav::analysis
{

namespace
{

/** Weibull scale realizing the model's mean at its shape. */
double
weibullScale(double shape, double mean)
{
    return mean / std::tgamma(1.0 + 1.0 / shape);
}

/** Weibull survival S(t). */
double
survival(double shape, double scale, double t)
{
    if (t <= 0.0)
        return 1.0;
    return std::exp(-std::pow(t / scale, shape));
}

/**
 * integral_0^T S(t) dt, exactly, via the regularized incomplete
 * gamma function (see prob/special.hh).
 */
double
expectedUptime(double shape, double scale, double period)
{
    return prob::weibullTruncatedMean(shape, scale, period);
}

} // anonymous namespace

void
RejuvenationModel::validate() const
{
    requirePositive(weibullShape, "weibullShape");
    requirePositive(mtbfHours, "mtbfHours");
    requirePositive(failureRepairHours, "failureRepairHours");
    requireNonNegative(restartHours, "restartHours");
}

double
RejuvenationModel::availability(double periodHours) const
{
    validate();
    if (periodHours <= 0.0 || std::isinf(periodHours))
        return baselineAvailability();
    double scale = weibullScale(weibullShape, mtbfHours);
    double up = expectedUptime(weibullShape, scale, periodHours);
    double fail_prob =
        1.0 - survival(weibullShape, scale, periodHours);
    double down = fail_prob * failureRepairHours +
                  (1.0 - fail_prob) * restartHours;
    return up / (up + down);
}

double
RejuvenationModel::baselineAvailability() const
{
    validate();
    // Without rejuvenation every cycle ends in failure: the classic
    // MTBF / (MTBF + R).
    return mtbfHours / (mtbfHours + failureRepairHours);
}

double
RejuvenationModel::optimalPeriodHours() const
{
    validate();
    // Golden-section search on log-period over a wide bracket.
    double lo = std::log(std::max(restartHours, 1e-3));
    double hi = std::log(mtbfHours * 100.0);
    const double phi = 0.5 * (std::sqrt(5.0) - 1.0);
    double a = lo, b = hi;
    double c = b - phi * (b - a);
    double d = a + phi * (b - a);
    auto value = [this](double log_t) {
        return availability(std::exp(log_t));
    };
    double fc = value(c), fd = value(d);
    for (int i = 0; i < 200; ++i) {
        if (fc > fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = value(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = value(d);
        }
    }
    double best_period = std::exp(0.5 * (a + b));
    double best = availability(best_period);
    // Accept a finite optimum only for a meaningful improvement
    // (relative to the baseline's unavailability) so numerical
    // integration noise cannot manufacture one in the memoryless
    // case.
    double baseline = baselineAvailability();
    if (best - baseline <= 1e-6 * (1.0 - baseline))
        return std::numeric_limits<double>::infinity();
    return best_period;
}

} // namespace sdnav::analysis
