/**
 * @file
 * Deterministic parallel sweep executor.
 *
 * Every figure, table, and sensitivity study in this library is a
 * parameter sweep: evaluate a pure function at each point of a fixed
 * grid. This executor chunks the grid across a std::thread pool
 * (same claim-from-an-atomic-counter plumbing as the simulation
 * replication layer) and writes each result into its grid slot, so
 * the output is in grid order and bit-identical for any thread count:
 * result i depends only on eval(i), never on scheduling.
 *
 * Callers must make eval(i) depend only on i and on state that is
 * safe to read concurrently (the analytic models are const-evaluable
 * after construction; see SwAvailabilityModel and ExactPlaneModel).
 */

#ifndef SDNAV_ANALYSIS_SWEEP_HH
#define SDNAV_ANALYSIS_SWEEP_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace sdnav::analysis
{

/** How to spread a sweep over worker threads. */
struct SweepOptions
{
    /** Worker threads; 0 means one per hardware thread. */
    std::size_t threads = 0;

    /**
     * Grid points per claimed chunk; 0 picks a size that gives each
     * thread several chunks (dynamic load balancing) while keeping
     * the claim counter off the per-point path.
     */
    std::size_t chunk = 0;

    /** Threads resolved against the hardware (never 0). */
    std::size_t resolvedThreads() const;
};

/**
 * Run body(i) for every i in [0, points) across the pool described by
 * `options`. Exceptions from body are rethrown (first one wins) after
 * all workers have stopped.
 */
void forEachGridPoint(std::size_t points,
                      const std::function<void(std::size_t)> &body,
                      const SweepOptions &options = {});

/**
 * Evaluate a grid and collect the results in grid order.
 *
 * @param points Number of grid points.
 * @param eval Pure evaluation function of the grid index.
 * @return results[i] == eval(i), independent of options.threads.
 */
template <typename Eval>
auto
sweepGrid(std::size_t points, Eval &&eval,
          const SweepOptions &options = {})
    -> std::vector<decltype(eval(std::size_t{0}))>
{
    std::vector<decltype(eval(std::size_t{0}))> results(points);
    forEachGridPoint(
        points, [&](std::size_t i) { results[i] = eval(i); }, options);
    return results;
}

} // namespace sdnav::analysis

#endif // SDNAV_ANALYSIS_SWEEP_HH
