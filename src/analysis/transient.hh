/**
 * @file
 * Transient (time-dependent) system availability.
 *
 * The closed forms in the paper are steady-state quantities. For
 * operational questions — "how available is the controller in the
 * first hours after a site power-up?", "how fast does a freshly
 * repaired site return to steady state?" — the point availability
 * A_sys(t) is needed. With independent two-state exponential
 * components this is exact and cheap: each component's availability
 * at time t has the closed form
 *
 *   from up:   a(t) = A + (1 - A) e^(-t / (MTBF (1 - A)))
 *   from down: a(t) = A (1 - e^(-t / (MTBF (1 - A))))
 *
 * and the system value is the structure-function probability at the
 * per-component a_i(t), evaluated through the BDD engine (so shared
 * infrastructure is handled exactly). Cross-checked against the CTMC
 * uniformization solver on small systems in the tests.
 */

#ifndef SDNAV_ANALYSIS_TRANSIENT_HH
#define SDNAV_ANALYSIS_TRANSIENT_HH

#include <string>
#include <vector>

#include "common/textTable.hh"
#include "rbd/system.hh"

namespace sdnav::analysis
{

/** Initial condition of every component. */
enum class InitialCondition
{
    AllUp,  ///< Fresh system: every component operational at t = 0.
    AllDown ///< Site power-up / disaster restart: everything down.
};

/**
 * Component point availability at time t for a two-state exponential
 * component of steady-state availability `availability` and the given
 * MTBF, from the given initial state.
 */
double componentTransient(double availability, double mtbfHours,
                          double tHours, InitialCondition initial);

/**
 * System point availability at each requested time.
 *
 * @param system Structure and steady-state component availabilities.
 * @param mtbfHours Common component MTBF.
 * @param timesHours Evaluation times (hours, >= 0).
 * @param initial Initial condition of all components.
 */
std::vector<double> systemTransient(const rbd::RbdSystem &system,
                                    double mtbfHours,
                                    const std::vector<double> &timesHours,
                                    InitialCondition initial);

/**
 * First time (hours) at which the system availability is within
 * `tolerance` of its steady-state value and stays there, found by
 * scanning geometrically spaced times and refining by bisection.
 *
 * @param system Structure and availabilities.
 * @param mtbfHours Common component MTBF.
 * @param initial Initial condition.
 * @param tolerance Absolute availability tolerance, > 0.
 */
double timeToSteadyState(const rbd::RbdSystem &system, double mtbfHours,
                         InitialCondition initial,
                         double tolerance = 1e-9);

/** Render a transient curve as a table of (t, A(t)). */
TextTable transientTable(const std::string &title,
                         const std::vector<double> &timesHours,
                         const std::vector<double> &availability);

} // namespace sdnav::analysis

#endif // SDNAV_ANALYSIS_TRANSIENT_HH
