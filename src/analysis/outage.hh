/**
 * @file
 * Analytic outage frequency and duration.
 *
 * The paper stresses that availability alone hides outage *texture*:
 * "the single-rack topology may experience no rack-related downtime
 * for many years followed by a highly-publicized extended outage."
 * For a system of independently repairable components, the classic
 * frequency-duration relations make that texture analytic:
 *
 *   system unavailability      U = 1 - A_sys
 *   system outage frequency    nu = sum_i I_B(i) * w_i
 *   mean outage duration       MDT = U / nu
 *   mean time between outages  MTBO = A_sys / nu
 *
 * where I_B(i) is component i's Birnbaum importance (the probability
 * the system is critical in i) and w_i = 1 / (MTBF_i + MTTR_i) is the
 * component's unconditional failure frequency. The discrete-event
 * simulator (sim/renewalSim) measures the same quantities empirically
 * and the tests hold the two together.
 */

#ifndef SDNAV_ANALYSIS_OUTAGE_HH
#define SDNAV_ANALYSIS_OUTAGE_HH

#include <string>
#include <vector>

#include "common/textTable.hh"
#include "rbd/system.hh"

namespace sdnav::analysis
{

/** Frequency-duration profile of a system. */
struct OutageProfile
{
    /** Steady-state system availability. */
    double availability = 1.0;

    /** System outage frequency, per hour. */
    double outagesPerHour = 0.0;

    /** Expected outages per (365-day) year. */
    double outagesPerYear() const;

    /** Mean outage duration in hours (0 if no outages). */
    double meanOutageHours() const;

    /** Mean up time between outages in hours (inf if none). */
    double meanTimeBetweenOutagesHours() const;

    /** Expected downtime, minutes per year. */
    double downtimeMinutesPerYear() const;
};

/**
 * Per-component contribution to the system outage frequency: how many
 * system outages per year are *initiated* by this component failing
 * while critical.
 */
struct OutageContribution
{
    rbd::ComponentId component;
    std::string name;

    /** Outages per year initiated by this component. */
    double outagesPerYear;

    /** Share of the total outage frequency. */
    double share;
};

/**
 * Compute the frequency-duration profile of an RBD system whose
 * components all have the given MTBF (their MTTRs follow from the
 * component availabilities, as in sim::exponentialTimingsFor).
 *
 * @param system The structure and component availabilities.
 * @param mtbfHours Common per-component MTBF.
 */
OutageProfile outageProfile(const rbd::RbdSystem &system,
                            double mtbfHours);

/**
 * Compute the profile with per-component MTBFs.
 *
 * @param system The structure and component availabilities.
 * @param mtbfHours One MTBF per component.
 */
OutageProfile outageProfile(const rbd::RbdSystem &system,
                            const std::vector<double> &mtbfHours);

/**
 * Per-component outage initiation ranking (descending), with the
 * given common MTBF.
 */
std::vector<OutageContribution> outageContributions(
    const rbd::RbdSystem &system, double mtbfHours);

/** Ranking with per-component MTBFs. */
std::vector<OutageContribution> outageContributions(
    const rbd::RbdSystem &system,
    const std::vector<double> &mtbfHours);

/** Render a profile as a short table. */
TextTable outageProfileTable(const std::string &title,
                             const OutageProfile &profile);

/**
 * Per-class MTBF defaults for systems built by model::buildExactSystem
 * (components are classified by name: "rack*", "host*", "vm*",
 * everything else is a process or supervisor). Defaults follow the
 * paper's discussion: processes 5000 h, VMs ~1 year, hosts ~5 years,
 * racks ~500 years.
 */
struct MtbfClasses
{
    double processHours = 5000.0;
    double vmHours = 8760.0;
    double hostHours = 43800.0;
    double rackHours = 4380000.0;
};

/** Build the per-component MTBF vector for a system by name class. */
std::vector<double> classifyMtbfs(const rbd::RbdSystem &system,
                                  const MtbfClasses &classes = {});

} // namespace sdnav::analysis

#endif // SDNAV_ANALYSIS_OUTAGE_HH
