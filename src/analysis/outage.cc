#include "analysis/outage.hh"

#include <algorithm>
#include <limits>

#include "bdd/bdd.hh"
#include "common/error.hh"
#include "common/units.hh"

namespace sdnav::analysis
{

double
OutageProfile::outagesPerYear() const
{
    return outagesPerHour * hoursPerYear;
}

double
OutageProfile::meanOutageHours() const
{
    if (outagesPerHour <= 0.0)
        return 0.0;
    return (1.0 - availability) / outagesPerHour;
}

double
OutageProfile::meanTimeBetweenOutagesHours() const
{
    if (outagesPerHour <= 0.0)
        return std::numeric_limits<double>::infinity();
    return availability / outagesPerHour;
}

double
OutageProfile::downtimeMinutesPerYear() const
{
    return availabilityToDowntimeMinutesPerYear(availability);
}

namespace
{

/**
 * Shared worker: Birnbaum importances from one BDD compilation, then
 * the frequency-duration algebra.
 */
OutageProfile
profileImpl(const rbd::RbdSystem &system,
            const std::vector<double> &mtbf_hours,
            std::vector<OutageContribution> *contributions)
{
    require(mtbf_hours.size() == system.componentCount(),
            "need one MTBF per component");

    bdd::BddManager manager;
    bdd::NodeRef f = system.compile(manager);
    // Pin the structure function: the restrict loop below litters the
    // manager with cofactor intermediates, and the periodic safe-point
    // collections must reclaim exactly those.
    bdd::ScopedRoot root(manager, f);
    bdd::ProbabilityScratch prob_scratch;
    bdd::RestrictScratch restrict_scratch;

    std::vector<double> probs;
    probs.reserve(system.componentCount());
    for (rbd::ComponentId id = 0; id < system.componentCount(); ++id)
        probs.push_back(system.componentAvailability(id));

    OutageProfile profile;
    profile.availability = manager.probability(f, probs, prob_scratch);

    double nu = 0.0;
    for (rbd::ComponentId id = 0; id < system.componentCount(); ++id) {
        requirePositive(mtbf_hours[id], "mtbfHours");
        double a = probs[id];
        unsigned var = static_cast<unsigned>(id);
        double up = manager.probability(
            manager.restrict(f, var, true, restrict_scratch), probs,
            prob_scratch);
        double down = manager.probability(
            manager.restrict(f, var, false, restrict_scratch), probs,
            prob_scratch);
        double birnbaum = up - down;
        manager.maybeCollect();
        // Unconditional component failure frequency: the component
        // completes one up-down cycle every MTBF + MTTR hours, and
        // MTTR = MTBF (1 - a) / a, so the cycle time is MTBF / a.
        double frequency = a > 0.0 ? a / mtbf_hours[id] : 0.0;
        double rate = birnbaum * frequency;
        nu += rate;
        if (contributions) {
            contributions->push_back(
                {id, system.componentName(id), rate * hoursPerYear,
                 0.0});
        }
    }
    profile.outagesPerHour = nu;
    if (contributions && nu > 0.0) {
        for (OutageContribution &c : *contributions)
            c.share = c.outagesPerYear / (nu * hoursPerYear);
        std::sort(contributions->begin(), contributions->end(),
                  [](const OutageContribution &a,
                     const OutageContribution &b) {
                      return a.outagesPerYear > b.outagesPerYear;
                  });
    }
    return profile;
}

} // anonymous namespace

OutageProfile
outageProfile(const rbd::RbdSystem &system, double mtbfHours)
{
    std::vector<double> mtbfs(system.componentCount(), mtbfHours);
    return profileImpl(system, mtbfs, nullptr);
}

OutageProfile
outageProfile(const rbd::RbdSystem &system,
              const std::vector<double> &mtbfHours)
{
    return profileImpl(system, mtbfHours, nullptr);
}

std::vector<OutageContribution>
outageContributions(const rbd::RbdSystem &system, double mtbfHours)
{
    std::vector<double> mtbfs(system.componentCount(), mtbfHours);
    std::vector<OutageContribution> contributions;
    profileImpl(system, mtbfs, &contributions);
    return contributions;
}

std::vector<OutageContribution>
outageContributions(const rbd::RbdSystem &system,
                    const std::vector<double> &mtbfHours)
{
    std::vector<OutageContribution> contributions;
    profileImpl(system, mtbfHours, &contributions);
    return contributions;
}

TextTable
outageProfileTable(const std::string &title, const OutageProfile &profile)
{
    TextTable table;
    table.title(title);
    table.header({"availability", "downtime m/y", "outages/year",
                  "mean outage (h)", "MTBO (h)"});
    table.addRow({formatFixed(profile.availability, 8),
                  formatFixed(profile.downtimeMinutesPerYear(), 2),
                  formatFixed(profile.outagesPerYear(), 4),
                  formatFixed(profile.meanOutageHours(), 3),
                  formatGeneral(profile.meanTimeBetweenOutagesHours(),
                                6)});
    return table;
}

std::vector<double>
classifyMtbfs(const rbd::RbdSystem &system, const MtbfClasses &classes)
{
    std::vector<double> mtbfs;
    mtbfs.reserve(system.componentCount());
    for (rbd::ComponentId id = 0; id < system.componentCount(); ++id) {
        const std::string &name = system.componentName(id);
        double mtbf = classes.processHours;
        if (name.rfind("rack", 0) == 0)
            mtbf = classes.rackHours;
        else if (name.rfind("host", 0) == 0)
            mtbf = classes.hostHours;
        else if (name.rfind("vm", 0) == 0)
            mtbf = classes.vmHours;
        mtbfs.push_back(mtbf);
    }
    return mtbfs;
}

} // namespace sdnav::analysis
