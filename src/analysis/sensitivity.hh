/**
 * @file
 * Parametric sensitivity analysis: how much each input availability
 * moves the system availability. This is the paper's stated purpose
 * of the framework — "quantify sensitivity to underlying platform and
 * process resiliency" — made explicit.
 *
 * Two measures per parameter:
 * - the partial derivative dA_system / dA_parameter (Birnbaum-style
 *   importance at the model level), and
 * - the yearly downtime saved if the parameter's own downtime were
 *   reduced by one order of magnitude (the actionable form).
 */

#ifndef SDNAV_ANALYSIS_SENSITIVITY_HH
#define SDNAV_ANALYSIS_SENSITIVITY_HH

#include <functional>
#include <string>
#include <vector>

#include "analysis/sweep.hh"
#include "common/textTable.hh"
#include "fmea/catalog.hh"
#include "model/params.hh"
#include "topology/deployment.hh"

namespace sdnav::analysis
{

/** One parameter's sensitivity results. */
struct SensitivityRow
{
    /** Parameter name (e.g. "A_H (host)"). */
    std::string parameter;

    /** The parameter's base value. */
    double baseValue = 0.0;

    /** dA_system / dA_parameter (central finite difference). */
    double derivative = 0.0;

    /** System availability with this parameter's downtime cut 10x. */
    double improvedAvailability = 0.0;

    /** Yearly downtime saved by that 10x improvement (minutes). */
    double downtimeSavedMinutes = 0.0;
};

/**
 * Generic sensitivity sweep: for each named parameter (accessed via
 * getter/setter pairs on a parameter block P), compute the derivative
 * and the 10x-improvement effect of `evaluate`.
 *
 * Rows are evaluated on the parallel sweep executor; `evaluate` must
 * be safe to call concurrently (the analytic engines are). Results
 * are identical for any `sweep.threads`.
 */
template <typename P>
std::vector<SensitivityRow> parameterSensitivity(
    const P &base,
    const std::vector<std::pair<std::string, double P::*>> &fields,
    const std::function<double(const P &)> &evaluate,
    const SweepOptions &sweep = {});

/** HW-centric sensitivity for a reference topology. */
std::vector<SensitivityRow> hwSensitivity(
    topology::ReferenceKind kind, const model::HwParams &params,
    const SweepOptions &sweep = {});

/** SW-centric sensitivity for a catalog/topology/policy/plane. */
std::vector<SensitivityRow> swSensitivity(
    const fmea::ControllerCatalog &catalog,
    const topology::DeploymentTopology &topo,
    model::SupervisorPolicy policy, const model::SwParams &params,
    fmea::Plane plane, const SweepOptions &sweep = {});

/** Render sensitivity rows as a table. */
TextTable sensitivityTable(const std::string &title,
                           const std::vector<SensitivityRow> &rows);

} // namespace sdnav::analysis

#endif // SDNAV_ANALYSIS_SENSITIVITY_HH
