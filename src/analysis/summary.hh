/**
 * @file
 * Availability summary rendering: the paper quotes every result as an
 * availability, a downtime in minutes/year, and implicitly a count of
 * nines; these helpers format all three consistently.
 */

#ifndef SDNAV_ANALYSIS_SUMMARY_HH
#define SDNAV_ANALYSIS_SUMMARY_HH

#include <string>
#include <utility>
#include <vector>

#include "common/textTable.hh"

namespace sdnav::analysis
{

/** One labeled availability result. */
struct SummaryEntry
{
    std::string label;
    double availability;
};

/**
 * Render labeled availabilities as a table with availability,
 * unavailability, downtime (minutes/year), and nines columns.
 */
TextTable availabilitySummary(const std::string &title,
                              const std::vector<SummaryEntry> &entries);

/** One-line rendering: "label: A=0.99998873 (5.92 m/y, 4.9 nines)". */
std::string summaryLine(const std::string &label, double availability);

} // namespace sdnav::analysis

#endif // SDNAV_ANALYSIS_SUMMARY_HH
