/**
 * @file
 * Software rejuvenation analysis.
 *
 * The paper closes by suggesting "automation to reduce downtime and
 * improve vRouter availability". One classic such automation is
 * *rejuvenation*: proactively restarting a process every T hours to
 * reset age-related degradation. Whether that helps depends entirely
 * on the failure-time distribution's shape:
 *
 * - increasing hazard (Weibull shape > 1, wear-out): restarting
 *   young processes avoids the dangerous old age; an optimal finite
 *   period exists when restarts are cheaper than repairs.
 * - exponential (shape = 1, memoryless) or decreasing hazard:
 *   rejuvenation only adds restart downtime and can never help —
 *   the classic negative result, reproduced by the tests.
 *
 * The model is an alternating renewal process: a cycle runs until
 * the process fails (repair time R_f) or reaches age T (planned
 * restart downtime R_p), whichever comes first.
 *
 *   E[uptime per cycle]  = integral_0^T S(t) dt
 *   E[downtime per cycle] = F(T) R_f + S(T) R_p
 *   A(T) = E[up] / (E[up] + E[down])
 *
 * with S the survival function and F = 1 - S.
 */

#ifndef SDNAV_ANALYSIS_REJUVENATION_HH
#define SDNAV_ANALYSIS_REJUVENATION_HH

#include <functional>

namespace sdnav::analysis
{

/** Parameters of a rejuvenation policy evaluation. */
struct RejuvenationModel
{
    /** Weibull shape of the time-to-failure (1 = exponential). */
    double weibullShape = 1.0;

    /** Mean time to failure (hours). */
    double mtbfHours = 5000.0;

    /** Repair downtime after an (unplanned) failure, hours. */
    double failureRepairHours = 1.0;

    /** Downtime of a planned rejuvenation restart, hours. */
    double restartHours = 0.05;

    /** @throws ModelError on invalid fields. */
    void validate() const;

    /**
     * Steady-state availability under rejuvenation period T (hours).
     * T = infinity (or <= 0 treated as "never") gives the
     * no-rejuvenation baseline.
     */
    double availability(double periodHours) const;

    /** The no-rejuvenation baseline availability. */
    double baselineAvailability() const;

    /**
     * The rejuvenation period minimizing unavailability, found by
     * golden-section search over [restartHours, horizon]; returns
     * +infinity when no finite period beats the baseline (the
     * memoryless / infant-mortality case).
     */
    double optimalPeriodHours() const;
};

} // namespace sdnav::analysis

#endif // SDNAV_ANALYSIS_REJUVENATION_HH
