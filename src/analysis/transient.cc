#include "analysis/transient.hh"

#include <cmath>

#include "bdd/bdd.hh"
#include "common/error.hh"

namespace sdnav::analysis
{

double
componentTransient(double availability, double mtbfHours, double tHours,
                   InitialCondition initial)
{
    requireProbability(availability, "availability");
    requirePositive(mtbfHours, "mtbfHours");
    requireNonNegative(tHours, "tHours");
    if (availability >= 1.0) {
        // Never fails; from down it also never repairs (MTTR = 0
        // means instant), treat as up immediately.
        return 1.0;
    }
    // Combined rate lambda + mu = 1 / (MTBF (1 - A)).
    double combined = 1.0 / (mtbfHours * (1.0 - availability));
    double decay = std::exp(-combined * tHours);
    if (initial == InitialCondition::AllUp)
        return availability + (1.0 - availability) * decay;
    return availability * (1.0 - decay);
}

std::vector<double>
systemTransient(const rbd::RbdSystem &system, double mtbfHours,
                const std::vector<double> &timesHours,
                InitialCondition initial)
{
    bdd::BddManager manager;
    bdd::NodeRef f = system.compile(manager);

    std::vector<double> result;
    result.reserve(timesHours.size());
    std::vector<double> probs(system.componentCount());
    for (double t : timesHours) {
        for (rbd::ComponentId id = 0; id < system.componentCount();
             ++id) {
            probs[id] = componentTransient(
                system.componentAvailability(id), mtbfHours, t,
                initial);
        }
        result.push_back(manager.probability(f, probs));
    }
    return result;
}

double
timeToSteadyState(const rbd::RbdSystem &system, double mtbfHours,
                  InitialCondition initial, double tolerance)
{
    requirePositive(tolerance, "tolerance");
    double steady = system.availabilityExact();
    auto deviation = [&](double t) {
        return std::fabs(
            systemTransient(system, mtbfHours, {t}, initial)[0] -
            steady);
    };
    if (deviation(0.0) <= tolerance)
        return 0.0;
    // Geometric scan for an upper bracket. Component relaxation
    // times are MTBF (1 - A) hours, so this converges quickly.
    double hi = 1e-3;
    while (deviation(hi) > tolerance) {
        hi *= 2.0;
        require(hi < 1e12, "system does not reach steady state");
    }
    double lo = hi / 2.0;
    for (int i = 0; i < 60; ++i) {
        double mid = 0.5 * (lo + hi);
        if (deviation(mid) > tolerance)
            lo = mid;
        else
            hi = mid;
    }
    return hi;
}

TextTable
transientTable(const std::string &title,
               const std::vector<double> &timesHours,
               const std::vector<double> &availability)
{
    require(timesHours.size() == availability.size(),
            "times and availabilities must align");
    TextTable table;
    table.title(title);
    table.header({"t (hours)", "A_sys(t)"});
    for (std::size_t i = 0; i < timesHours.size(); ++i) {
        table.addRow({formatGeneral(timesHours[i], 6),
                      formatFixed(availability[i], 8)});
    }
    return table;
}

} // namespace sdnav::analysis
