/**
 * @file
 * Downtime-attribution report: simulated per-class downtime shares
 * from the OutageLedger, cross-checked against analytic importance
 * measures from the BDD structure function.
 *
 * The paper's FMEA argues about which component class dominates
 * unavailability; the simulators now measure that directly (the
 * ledger attributes every outage episode to the class of its
 * initiating event), and the closed forms predict it independently
 * (criticality importance — the probability a component is the
 * failed critical element given the system is down — grouped by
 * class). This report renders the two side by side as availability
 * and minutes/year through the existing table/CSV writers, so a
 * disagreement between simulation and closed form can be localized
 * to a cause instead of just detected.
 */

#ifndef SDNAV_ANALYSIS_ATTRIBUTION_HH
#define SDNAV_ANALYSIS_ATTRIBUTION_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/textTable.hh"
#include "rbd/system.hh"
#include "sim/outageLedger.hh"

namespace sdnav::analysis
{

/** One component class's slice of the simulated downtime. */
struct AttributionRow
{
    sim::ComponentClass cls = sim::ComponentClass::Other;

    /** Episodes this class initiated (censored final one included). */
    std::size_t episodes = 0;

    /** Episodes of other classes this class's failures prolonged. */
    std::size_t prolongedEpisodes = 0;

    /** Attributed downtime over all observed hours. */
    double downtimeHours = 0.0;

    /** Fraction of the total simulated downtime (rows sum to 1). */
    double share = 0.0;

    /** Attributed downtime normalized to minutes per year per
     *  observable. */
    double minutesPerYear = 0.0;

    /** Availability lost to this class alone: 1 - attributed
     *  downtime / observed hours. */
    double availability = 1.0;

    /**
     * Analytic share of system unavailability predicted for this
     * class (criticality importance grouped by component class,
     * normalized); negative when no analytic model was attached.
     */
    double analyticShare = -1.0;
};

/** The rendered attribution: per-class rows plus integrity totals. */
struct AttributionReport
{
    /** Active classes, descending attributed downtime (ties in
     *  class-enum order); classes with no activity are omitted. */
    std::vector<AttributionRow> rows;

    /** Sum of row downtimes == total observable downtime (exact:
     *  every episode lands in exactly one class). */
    double totalDowntimeHours = 0.0;

    /** Observable-hours the totals cover. */
    double observedHours = 0.0;

    /** Episodes right-censored by the horizon. */
    std::size_t censoredEpisodes = 0;

    /** Hours contributed by censored episodes. */
    double censoredHours = 0.0;

    /** True once attachAnalyticShares() populated analyticShare. */
    bool hasAnalytic = false;
};

/** Build the report from folded ledger totals. */
AttributionReport attributionReport(
    const sim::AttributionTotals &totals);

/**
 * The analytic counterpart: each component's criticality importance
 * grouped by class (classified by component name, the same
 * convention the renewal simulator uses) and normalized to shares
 * summing to 1. All-zero when no component is ever critical.
 */
std::array<double, sim::kComponentClassCount> analyticClassShares(
    const rbd::RbdSystem &system);

/** Attach analyticClassShares(system) to an existing report. */
void attachAnalyticShares(AttributionReport &report,
                          const rbd::RbdSystem &system);

/** Render as an aligned text table (with a totals row). */
TextTable attributionTable(const std::string &title,
                           const AttributionReport &report);

/** Render as CSV with the same columns as the text table. */
CsvWriter attributionCsv(const AttributionReport &report);

} // namespace sdnav::analysis

#endif // SDNAV_ANALYSIS_ATTRIBUTION_HH
