/**
 * @file
 * Renderers that regenerate the paper's Tables I-III (plus a full
 * FMEA effects report) from any ControllerCatalog.
 */

#ifndef SDNAV_FMEA_REPORT_HH
#define SDNAV_FMEA_REPORT_HH

#include <string>

#include "common/textTable.hh"
#include "fmea/catalog.hh"

namespace sdnav::fmea
{

/**
 * Paper Table I: per-process failure modes — role, process name, and
 * the "m of n" CP and DP requirements at the given cluster size.
 */
TextTable nodeProcessTable(const ControllerCatalog &catalog,
                           unsigned clusterSize = 3);

/** Paper Table II: counts of processes by restart mode by role. */
TextTable restartModeTable(const ControllerCatalog &catalog);

/**
 * Paper Table III: counts of quorum blocks by quorum type (M = strict
 * majority, N = any-one) by role, for both planes, with the summary
 * row of sums.
 */
TextTable quorumTypeTable(const ControllerCatalog &catalog);

/**
 * Full FMEA report: every process and host process with its restart
 * mode, requirements, and failure-effect prose.
 */
std::string fmeaReport(const ControllerCatalog &catalog,
                       unsigned clusterSize = 3);

} // namespace sdnav::fmea

#endif // SDNAV_FMEA_REPORT_HH
