#include "fmea/catalog.hh"

#include <map>
#include <set>
#include <sstream>

#include "common/error.hh"

namespace sdnav::fmea
{

unsigned
requiredCount(QuorumClass quorum, unsigned clusterSize)
{
    require(clusterSize >= 1, "cluster size must be >= 1");
    switch (quorum) {
      case QuorumClass::None:
        return 0;
      case QuorumClass::AnyOne:
        return 1;
      case QuorumClass::Majority:
        return clusterSize / 2 + 1;
    }
    return 0; // Unreachable.
}

std::string
quorumNotation(QuorumClass quorum, unsigned clusterSize)
{
    std::ostringstream os;
    os << requiredCount(quorum, clusterSize) << " of " << clusterSize;
    return os.str();
}

ControllerCatalog::ControllerCatalog(std::string name)
    : name_(std::move(name))
{}

std::size_t
ControllerCatalog::addRole(RoleSpec role)
{
    require(!role.name.empty(), "role name must not be empty");
    roles_.push_back(std::move(role));
    return roles_.size() - 1;
}

void
ControllerCatalog::addHostProcess(HostProcessSpec process)
{
    require(!process.name.empty(), "host process name must not be empty");
    host_processes_.push_back(std::move(process));
}

const RoleSpec &
ControllerCatalog::role(std::size_t index) const
{
    require(index < roles_.size(), "role index out of range");
    return roles_[index];
}

unsigned
ControllerCatalog::requiredHostProcessCount() const
{
    unsigned count = 0;
    for (const HostProcessSpec &p : host_processes_) {
        if (p.requiredForDp)
            ++count;
    }
    return count;
}

std::vector<QuorumBlock>
ControllerCatalog::planeBlocks(std::size_t roleIndex, Plane plane) const
{
    const RoleSpec &r = role(roleIndex);
    std::vector<QuorumBlock> blocks;
    // Preserve declaration order: named shared blocks appear at the
    // position of their first member.
    std::map<std::string, std::size_t> shared_index;
    for (std::size_t p = 0; p < r.processes.size(); ++p) {
        const ProcessSpec &proc = r.processes[p];
        QuorumClass quorum = plane == Plane::ControlPlane
            ? proc.cpQuorum : proc.dpQuorum;
        const std::string &block_name = plane == Plane::ControlPlane
            ? proc.cpBlock : proc.dpBlock;
        if (quorum == QuorumClass::None)
            continue;
        if (block_name.empty()) {
            blocks.push_back({proc.name, roleIndex, quorum, {p}});
            continue;
        }
        auto it = shared_index.find(block_name);
        if (it == shared_index.end()) {
            shared_index.emplace(block_name, blocks.size());
            blocks.push_back({block_name, roleIndex, quorum, {p}});
        } else {
            QuorumBlock &block = blocks[it->second];
            require(block.quorum == quorum,
                    "processes in block '" + block_name +
                        "' disagree on quorum class");
            block.memberProcesses.push_back(p);
        }
    }
    return blocks;
}

std::vector<QuorumBlock>
ControllerCatalog::allPlaneBlocks(Plane plane) const
{
    std::vector<QuorumBlock> all;
    for (std::size_t r = 0; r < roles_.size(); ++r) {
        auto blocks = planeBlocks(r, plane);
        all.insert(all.end(), blocks.begin(), blocks.end());
    }
    return all;
}

RestartCounts
ControllerCatalog::restartCounts(std::size_t roleIndex) const
{
    const RoleSpec &r = role(roleIndex);
    RestartCounts counts;
    for (const ProcessSpec &proc : r.processes) {
        if (proc.restart == RestartMode::Auto)
            ++counts.autoRestart;
        else
            ++counts.manualRestart;
    }
    return counts;
}

QuorumCounts
ControllerCatalog::quorumCounts(std::size_t roleIndex, Plane plane) const
{
    QuorumCounts counts;
    for (const QuorumBlock &block : planeBlocks(roleIndex, plane)) {
        if (block.quorum == QuorumClass::Majority)
            ++counts.majority;
        else if (block.quorum == QuorumClass::AnyOne)
            ++counts.anyOne;
    }
    return counts;
}

unsigned
ControllerCatalog::totalMajorityBlocks(Plane plane) const
{
    unsigned total = 0;
    for (std::size_t r = 0; r < roles_.size(); ++r)
        total += quorumCounts(r, plane).majority;
    return total;
}

unsigned
ControllerCatalog::totalAnyOneBlocks(Plane plane) const
{
    unsigned total = 0;
    for (std::size_t r = 0; r < roles_.size(); ++r)
        total += quorumCounts(r, plane).anyOne;
    return total;
}

void
ControllerCatalog::validate() const
{
    require(!roles_.empty(), "catalog has no roles");
    std::set<std::string> role_names;
    for (const RoleSpec &r : roles_) {
        require(role_names.insert(r.name).second,
                "duplicate role name: " + r.name);
        std::set<std::string> process_names;
        for (const ProcessSpec &p : r.processes) {
            require(!p.name.empty(), "process name must not be empty");
            require(process_names.insert(p.name).second,
                    "duplicate process name in role " + r.name + ": " +
                        p.name);
        }
    }
    std::set<std::string> host_names;
    for (const HostProcessSpec &p : host_processes_) {
        require(host_names.insert(p.name).second,
                "duplicate host process name: " + p.name);
    }
    // Force block construction for both planes so inconsistent shared
    // blocks are caught here.
    for (std::size_t r = 0; r < roles_.size(); ++r) {
        (void)planeBlocks(r, Plane::ControlPlane);
        (void)planeBlocks(r, Plane::DataPlane);
    }
}

} // namespace sdnav::fmea
