#include "fmea/openContrail.hh"

namespace sdnav::fmea
{

ControllerCatalog
openContrail3()
{
    ControllerCatalog catalog("OpenContrail 3.x");

    RoleSpec config;
    config.name = "Config";
    config.tag = 'G';
    config.processes = {
        {"config-api", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "",
         "Northbound API unavailable on this node; CP create/read/"
         "update/delete requests served by surviving instances."},
        {"discovery", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::AnyOne, "", "",
         "Service location lookups fail on this node; both CP and "
         "host DP need at least one discovery instance."},
        {"schema", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "",
         "High-level to low-level object transformation stalls until "
         "another schema transformer picks up."},
        {"svc-monitor", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "",
         "Service-chain monitoring lost on this node."},
        {"ifmap", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "",
         "Southbound push of low-level config to Control nodes "
         "unavailable from this node."},
        {"device-manager", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "",
         "Physical device configuration management lost on this node."},
    };
    catalog.addRole(std::move(config));

    RoleSpec control;
    control.name = "Control";
    control.tag = 'C';
    control.processes = {
        {"control", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::AnyOne, "control+dns+named", "",
         "vrouter-agents connected to this instance rediscover a "
         "surviving control process (~1 minute); if no control "
         "process survives, BGP forwarding tables are flushed and "
         "every host DP goes down."},
        {"dns", RestartMode::Auto, QuorumClass::None,
         QuorumClass::AnyOne, "control+dns+named", "",
         "VM DNS requests served by this node fail over; the DP "
         "needs {control+dns+named} co-located on one node."},
        {"named", RestartMode::Auto, QuorumClass::None,
         QuorumClass::AnyOne, "control+dns+named", "",
         "Companion DNS daemon; same block requirement as dns."},
    };
    catalog.addRole(std::move(control));

    RoleSpec analytics;
    analytics.name = "Analytics";
    analytics.tag = 'A';
    analytics.processes = {
        {"analytics-api", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "",
         "Operational data queries fail on this node."},
        {"alarm-gen", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "",
         "Alarm generation paused on this node."},
        {"collector", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "",
         "Data generators fail over to surviving collectors."},
        {"query-engine", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "",
         "Historical analytics queries fail on this node."},
        {"redis", RestartMode::Manual, QuorumClass::AnyOne,
         QuorumClass::None, "", "",
         "Real-time analytics cache lost; not under supervisor "
         "control, requires manual restart."},
    };
    catalog.addRole(std::move(analytics));

    RoleSpec database;
    database.name = "Database";
    database.tag = 'D';
    database.processes = {
        {"cassandra-config", RestartMode::Manual, QuorumClass::Majority,
         QuorumClass::None, "", "",
         "Config persistence quorum member; losing the majority halts "
         "CP configuration operations."},
        {"cassandra-analytics", RestartMode::Manual,
         QuorumClass::Majority, QuorumClass::None, "", "",
         "Analytics persistence quorum member."},
        {"kafka", RestartMode::Manual, QuorumClass::Majority,
         QuorumClass::None, "", "",
         "Event/alarm streaming bus quorum member."},
        {"zookeeper", RestartMode::Manual, QuorumClass::Majority,
         QuorumClass::None, "", "",
         "ID-uniqueness ensemble member; majority loss halts CP "
         "object creation."},
    };
    catalog.addRole(std::move(database));

    catalog.addHostProcess(
        {"vrouter-agent", RestartMode::Auto, true,
         "Policy evaluation for the host's flows stops; prefixes of "
         "VMs on the host disappear from routing advertisements; the "
         "entire host DP is down until restart."});
    catalog.addHostProcess(
        {"vrouter-dpdk", RestartMode::Auto, true,
         "User-space forwarding path stops; the vRouter function "
         "cannot execute and the host DP is down."});

    catalog.validate();
    return catalog;
}

ControllerCatalog
raftStyleController()
{
    ControllerCatalog catalog("Raft-style monolithic controller");

    RoleSpec core;
    core.name = "Core";
    core.tag = 'R';
    core.processes = {
        {"raft-consensus", RestartMode::Auto, QuorumClass::Majority,
         QuorumClass::Majority, "", "",
         "Cluster leader election and replicated store; majority "
         "loss halts both planes."},
        {"flow-manager", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::AnyOne, "", "",
         "Flow programming service."},
        {"northbound-api", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "",
         "REST/NETCONF front end."},
        {"topology-store", RestartMode::Auto, QuorumClass::Majority,
         QuorumClass::None, "", "",
         "Replicated topology view."},
    };
    catalog.addRole(std::move(core));

    RoleSpec apps;
    apps.name = "Apps";
    apps.tag = 'P';
    apps.processes = {
        {"l2-switch-app", RestartMode::Auto, QuorumClass::AnyOne,
         QuorumClass::None, "", "", "Learning-switch application."},
        {"stats-app", RestartMode::Manual, QuorumClass::AnyOne,
         QuorumClass::None, "", "", "Statistics collection."},
    };
    catalog.addRole(std::move(apps));

    catalog.addHostProcess(
        {"openflow-agent", RestartMode::Auto, true,
         "Host switch loses its controller session; DP down for the "
         "host until restart."});

    catalog.validate();
    return catalog;
}

ControllerCatalog
fragileController()
{
    ControllerCatalog catalog("Fragile singleton controller");

    RoleSpec brain;
    brain.name = "Brain";
    brain.tag = 'B';
    brain.processes = {
        {"scheduler", RestartMode::Manual, QuorumClass::Majority,
         QuorumClass::Majority, "", "",
         "Quorum-based scheduler, manual restart."},
        {"state-db", RestartMode::Manual, QuorumClass::Majority,
         QuorumClass::Majority, "", "",
         "Quorum state store, manual restart."},
        {"api", RestartMode::Manual, QuorumClass::AnyOne,
         QuorumClass::None, "", "", "Manual-restart API server."},
    };
    catalog.addRole(std::move(brain));

    catalog.addHostProcess(
        {"forwarder", RestartMode::Manual, true,
         "Manual-restart host forwarder: a per-host single point of "
         "failure with slow recovery."});

    catalog.validate();
    return catalog;
}

} // namespace sdnav::fmea
