/**
 * @file
 * JSON serialization for controller catalogs, so controllers can be
 * declared in data files and analyzed without recompiling.
 *
 * Document shape:
 *
 * ```json
 * {
 *   "name": "OpenContrail 3.x",
 *   "roles": [
 *     { "name": "Config", "tag": "G",
 *       "processes": [
 *         { "name": "config-api", "restart": "auto",
 *           "cp": "any-one", "dp": "none",
 *           "cpBlock": "", "dpBlock": "",
 *           "effect": "..." } ] } ],
 *   "hostProcesses": [
 *     { "name": "vrouter-agent", "restart": "auto",
 *       "requiredForDp": true, "effect": "..." } ]
 * }
 * ```
 *
 * Quorum classes: "none", "any-one", "majority". Restart modes:
 * "auto", "manual". Optional fields (blocks, effects, tag) may be
 * omitted.
 */

#ifndef SDNAV_FMEA_CATALOG_IO_HH
#define SDNAV_FMEA_CATALOG_IO_HH

#include <string>

#include "common/json.hh"
#include "fmea/catalog.hh"

namespace sdnav::fmea
{

/** Serialize a catalog to a JSON value. */
json::Value catalogToJson(const ControllerCatalog &catalog);

/**
 * Build a catalog from a JSON value. The result is validated.
 * @throws ModelError on malformed documents.
 */
ControllerCatalog catalogFromJson(const json::Value &value);

/** Load and validate a catalog from a JSON file. */
ControllerCatalog loadCatalog(const std::string &path);

/** Write a catalog to a JSON file. @throws ModelError on I/O error. */
void saveCatalog(const ControllerCatalog &catalog,
                 const std::string &path);

/** Parse "auto"/"manual". */
RestartMode restartModeFromString(const std::string &text);

/** Render RestartMode as "auto"/"manual". */
std::string restartModeToString(RestartMode mode);

/** Parse "none"/"any-one"/"majority". */
QuorumClass quorumClassFromString(const std::string &text);

/** Render QuorumClass as "none"/"any-one"/"majority". */
std::string quorumClassToString(QuorumClass quorum);

} // namespace sdnav::fmea

#endif // SDNAV_FMEA_CATALOG_IO_HH
