#include "fmea/catalogIo.hh"

#include <fstream>

#include "common/error.hh"

namespace sdnav::fmea
{

RestartMode
restartModeFromString(const std::string &text)
{
    if (text == "auto")
        return RestartMode::Auto;
    if (text == "manual")
        return RestartMode::Manual;
    throw ModelError("unknown restart mode: '" + text +
                     "' (expected \"auto\" or \"manual\")");
}

std::string
restartModeToString(RestartMode mode)
{
    return mode == RestartMode::Auto ? "auto" : "manual";
}

QuorumClass
quorumClassFromString(const std::string &text)
{
    if (text == "none")
        return QuorumClass::None;
    if (text == "any-one")
        return QuorumClass::AnyOne;
    if (text == "majority")
        return QuorumClass::Majority;
    throw ModelError("unknown quorum class: '" + text +
                     "' (expected \"none\", \"any-one\", or "
                     "\"majority\")");
}

std::string
quorumClassToString(QuorumClass quorum)
{
    switch (quorum) {
      case QuorumClass::None:
        return "none";
      case QuorumClass::AnyOne:
        return "any-one";
      case QuorumClass::Majority:
        return "majority";
    }
    return "none";
}

json::Value
catalogToJson(const ControllerCatalog &catalog)
{
    json::Value root = json::Value::makeObject();
    root.set("name", catalog.name());

    json::Value roles = json::Value::makeArray();
    for (const RoleSpec &role : catalog.roles()) {
        json::Value role_value = json::Value::makeObject();
        role_value.set("name", role.name);
        role_value.set("tag", std::string(1, role.tag));
        json::Value processes = json::Value::makeArray();
        for (const ProcessSpec &proc : role.processes) {
            json::Value p = json::Value::makeObject();
            p.set("name", proc.name);
            p.set("restart", restartModeToString(proc.restart));
            p.set("cp", quorumClassToString(proc.cpQuorum));
            p.set("dp", quorumClassToString(proc.dpQuorum));
            if (!proc.cpBlock.empty())
                p.set("cpBlock", proc.cpBlock);
            if (!proc.dpBlock.empty())
                p.set("dpBlock", proc.dpBlock);
            if (!proc.failureEffect.empty())
                p.set("effect", proc.failureEffect);
            processes.push(std::move(p));
        }
        role_value.set("processes", std::move(processes));
        roles.push(std::move(role_value));
    }
    root.set("roles", std::move(roles));

    json::Value host_processes = json::Value::makeArray();
    for (const HostProcessSpec &proc : catalog.hostProcesses()) {
        json::Value p = json::Value::makeObject();
        p.set("name", proc.name);
        p.set("restart", restartModeToString(proc.restart));
        p.set("requiredForDp", proc.requiredForDp);
        if (!proc.failureEffect.empty())
            p.set("effect", proc.failureEffect);
        host_processes.push(std::move(p));
    }
    root.set("hostProcesses", std::move(host_processes));
    return root;
}

ControllerCatalog
catalogFromJson(const json::Value &value)
{
    require(value.isObject(), "catalog document must be an object");
    ControllerCatalog catalog(value.stringOr("name", "unnamed"));

    require(value.contains("roles"),
            "catalog document needs a \"roles\" array");
    for (const json::Value &role_value : value.at("roles").asArray()) {
        RoleSpec role;
        role.name = role_value.at("name").asString();
        std::string tag = role_value.stringOr("tag", "?");
        require(!tag.empty(), "role tag must not be empty");
        role.tag = tag[0];
        if (role_value.contains("processes")) {
            for (const json::Value &p :
                 role_value.at("processes").asArray()) {
                ProcessSpec proc;
                proc.name = p.at("name").asString();
                proc.restart = restartModeFromString(
                    p.stringOr("restart", "auto"));
                proc.cpQuorum = quorumClassFromString(
                    p.stringOr("cp", "none"));
                proc.dpQuorum = quorumClassFromString(
                    p.stringOr("dp", "none"));
                proc.cpBlock = p.stringOr("cpBlock", "");
                proc.dpBlock = p.stringOr("dpBlock", "");
                proc.failureEffect = p.stringOr("effect", "");
                role.processes.push_back(std::move(proc));
            }
        }
        catalog.addRole(std::move(role));
    }

    if (value.contains("hostProcesses")) {
        for (const json::Value &p :
             value.at("hostProcesses").asArray()) {
            HostProcessSpec proc;
            proc.name = p.at("name").asString();
            proc.restart =
                restartModeFromString(p.stringOr("restart", "auto"));
            proc.requiredForDp = p.boolOr("requiredForDp", true);
            proc.failureEffect = p.stringOr("effect", "");
            catalog.addHostProcess(std::move(proc));
        }
    }

    catalog.validate();
    return catalog;
}

ControllerCatalog
loadCatalog(const std::string &path)
{
    return catalogFromJson(json::parseFile(path));
}

void
saveCatalog(const ControllerCatalog &catalog, const std::string &path)
{
    std::ofstream out(path);
    require(static_cast<bool>(out),
            "cannot open file for writing: " + path);
    out << catalogToJson(catalog).dump(2) << "\n";
    require(static_cast<bool>(out), "failed writing " + path);
}

} // namespace sdnav::fmea
