#include "fmea/report.hh"

#include <sstream>

namespace sdnav::fmea
{

TextTable
nodeProcessTable(const ControllerCatalog &catalog, unsigned clusterSize)
{
    TextTable table;
    table.title("Table I. " + catalog.name() +
                " node process and failure modes");
    table.header({"Role", "Process Name", "SDN CP", "Host DP"});
    for (const RoleSpec &role : catalog.roles()) {
        for (const ProcessSpec &proc : role.processes) {
            table.addRow({role.name, proc.name,
                          quorumNotation(proc.cpQuorum, clusterSize),
                          quorumNotation(proc.dpQuorum, clusterSize)});
        }
    }
    for (const HostProcessSpec &proc : catalog.hostProcesses()) {
        table.addRow({"vRouter", proc.name,
                      "0 of 1",
                      proc.requiredForDp ? "1 of 1" : "0 of 1"});
    }
    return table;
}

TextTable
restartModeTable(const ControllerCatalog &catalog)
{
    TextTable table;
    table.title("Table II. Counts of processes by restart mode by role");
    std::vector<std::string> header{"Restart Mode"};
    for (const RoleSpec &role : catalog.roles())
        header.push_back(role.name);
    table.header(std::move(header));

    std::vector<std::string> auto_row{"Auto"};
    std::vector<std::string> manual_row{"Manual"};
    for (std::size_t r = 0; r < catalog.roles().size(); ++r) {
        RestartCounts counts = catalog.restartCounts(r);
        auto_row.push_back(std::to_string(counts.autoRestart));
        manual_row.push_back(std::to_string(counts.manualRestart));
    }
    table.addRow(std::move(auto_row));
    table.addRow(std::move(manual_row));
    return table;
}

TextTable
quorumTypeTable(const ControllerCatalog &catalog)
{
    TextTable table;
    table.title("Table III. Counts of processes by quorum type by role "
                "(M = majority, N = any-one)");
    table.header({"Role", "CP M", "CP N", "DP M", "DP N"});
    unsigned cp_m = 0, cp_n = 0, dp_m = 0, dp_n = 0;
    for (std::size_t r = 0; r < catalog.roles().size(); ++r) {
        QuorumCounts cp = catalog.quorumCounts(r, Plane::ControlPlane);
        QuorumCounts dp = catalog.quorumCounts(r, Plane::DataPlane);
        table.addRow({catalog.role(r).name + " " +
                          std::string(1, catalog.role(r).tag),
                      std::to_string(cp.majority),
                      std::to_string(cp.anyOne),
                      std::to_string(dp.majority),
                      std::to_string(dp.anyOne)});
        cp_m += cp.majority;
        cp_n += cp.anyOne;
        dp_m += dp.majority;
        dp_n += dp.anyOne;
    }
    table.addRow({"Sums", std::to_string(cp_m), std::to_string(cp_n),
                  std::to_string(dp_m), std::to_string(dp_n)});
    return table;
}

std::string
fmeaReport(const ControllerCatalog &catalog, unsigned clusterSize)
{
    std::ostringstream os;
    os << "FMEA report: " << catalog.name() << "\n";
    os << std::string(72, '=') << "\n";
    for (const RoleSpec &role : catalog.roles()) {
        os << "\nRole " << role.name << " (" << role.tag << ")\n";
        os << std::string(72, '-') << "\n";
        for (const ProcessSpec &proc : role.processes) {
            os << "  " << proc.name << " ["
               << (proc.restart == RestartMode::Auto ? "auto" : "manual")
               << " restart; CP "
               << quorumNotation(proc.cpQuorum, clusterSize) << ", DP "
               << quorumNotation(proc.dpQuorum, clusterSize);
            if (!proc.dpBlock.empty())
                os << ", DP block '" << proc.dpBlock << "'";
            os << "]\n";
            if (!proc.failureEffect.empty())
                os << "      effect: " << proc.failureEffect << "\n";
        }
    }
    if (!catalog.hostProcesses().empty()) {
        os << "\nPer-host vRouter processes\n";
        os << std::string(72, '-') << "\n";
        for (const HostProcessSpec &proc : catalog.hostProcesses()) {
            os << "  " << proc.name << " ["
               << (proc.restart == RestartMode::Auto ? "auto" : "manual")
               << " restart; DP "
               << (proc.requiredForDp ? "1 of 1" : "0 of 1") << "]\n";
            if (!proc.failureEffect.empty())
                os << "      effect: " << proc.failureEffect << "\n";
        }
    }
    return os.str();
}

} // namespace sdnav::fmea
